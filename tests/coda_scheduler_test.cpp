// Tests for the CODA multi-array scheduler: array routing, reservation
// accounting, borrowing, abort/requeue preemption, cross-array migration and
// online tuning — all through the real engine.
#include <gtest/gtest.h>

#include "coda/coda_scheduler.h"
#include "sim/engine.h"
#include "workload/heat.h"

namespace coda::core {
namespace {

using perfmodel::ModelId;

workload::JobSpec gpu_spec(cluster::JobId id, ModelId model, int gpus,
                           double iterations, cluster::TenantId tenant = 0) {
  workload::JobSpec spec;
  spec.id = id;
  spec.tenant = tenant;
  spec.kind = workload::JobKind::kGpuTraining;
  spec.model = model;
  spec.train_config = perfmodel::TrainConfig{1, gpus, 0};
  spec.iterations = iterations;
  spec.requested_cpus = 2 * gpus;
  return spec;
}

workload::JobSpec cpu_spec(cluster::JobId id, int cores, double work,
                           cluster::TenantId tenant = 10) {
  workload::JobSpec spec;
  spec.id = id;
  spec.tenant = tenant;
  spec.kind = workload::JobKind::kCpu;
  spec.cpu_cores = cores;
  spec.cpu_work_core_s = work;
  spec.mem_bw_gbps = 0.5 * cores;
  spec.bw_bound_fraction = 0.1;
  return spec;
}

struct Rig {
  explicit Rig(int nodes, CodaConfig config = {})
      : coda(config), engine(make_config(nodes), &coda) {}

  static sim::EngineConfig make_config(int nodes) {
    sim::EngineConfig cfg;
    cfg.cluster.node_count = nodes;
    return cfg;
  }

  CodaScheduler coda;
  sim::ClusterEngine engine;
};

TEST(CodaScheduler, AssignsAllocatorCoresNotRequested) {
  Rig rig(2);
  // VGG16 1N1G: owner asks 2 (typical under-provisioning); CODA starts at
  // the CV default 3 and converges to the optimum 3.
  rig.engine.inject(gpu_spec(1, ModelId::kVgg16, 1, 1e6), 0.0);
  rig.engine.run_until(1.0);
  bool found = false;
  for (const auto& node : rig.engine.cluster().nodes()) {
    if (node.hosts(1)) {
      EXPECT_EQ(node.allocation_of(1)->cpus, 3);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CodaScheduler, TuningConvergesToOptimumAndRecordsOutcome) {
  Rig rig(2);
  rig.engine.inject(gpu_spec(1, ModelId::kWavenet, 1, 1e7), 0.0);
  // Wavenet: N_start = 5 (Speech default), optimum 6. Run long enough for
  // the 90-second profiling steps to converge.
  rig.engine.run_until(3600.0);
  ASSERT_EQ(rig.coda.tuning_outcomes().size(), 1u);
  const auto& outcome = rig.coda.tuning_outcomes()[0];
  EXPECT_EQ(outcome.model, ModelId::kWavenet);
  EXPECT_EQ(outcome.requested_cpus, 2);
  EXPECT_EQ(outcome.start_cpus, 5);
  perfmodel::TrainPerf perf;
  EXPECT_NEAR(outcome.final_cpus,
              perf.optimal_cores(ModelId::kWavenet, {1, 1, 0}), 1);
  EXPECT_GE(outcome.profile_steps, 2);
  EXPECT_LE(outcome.profile_steps, 10);
  // The converged allocation is live on the node.
  for (const auto& node : rig.engine.cluster().nodes()) {
    if (node.hosts(1)) {
      EXPECT_EQ(node.allocation_of(1)->cpus, outcome.final_cpus);
    }
  }
  // History recorded for future N_start.
  EXPECT_EQ(rig.coda.history().size(), 1u);
}

TEST(CodaScheduler, FourGpuJobsLandInFourArray) {
  Rig rig(5);  // four_array = nodes {0,1}, one_array = {2,3,4}
  EXPECT_TRUE(rig.coda.node_in_four_array(0));
  EXPECT_TRUE(rig.coda.node_in_four_array(1));
  EXPECT_FALSE(rig.coda.node_in_four_array(2));
  rig.engine.inject(gpu_spec(1, ModelId::kResnet50, 4, 1e6), 0.0);
  rig.engine.inject(gpu_spec(2, ModelId::kVgg16, 1, 1e6), 0.0);
  rig.engine.run_until(1.0);
  // The 4-GPU job sits on a four-array node, the 1-GPU job elsewhere.
  bool four_on_four = false;
  bool one_on_one = false;
  for (const auto& node : rig.engine.cluster().nodes()) {
    if (node.hosts(1)) {
      four_on_four = rig.coda.node_in_four_array(node.id());
    }
    if (node.hosts(2)) {
      one_on_one = !rig.coda.node_in_four_array(node.id());
    }
  }
  EXPECT_TRUE(four_on_four);
  EXPECT_TRUE(one_on_one);
}

TEST(CodaScheduler, CpuJobsBorrowIdleReservedCoresAndGetEvicted) {
  CodaConfig config;
  config.reserved_cores_per_node = 20;
  config.reservation_update_period_s = 0.0;  // keep the partition fixed
  Rig rig(1, config);  // single node: all one-array (round(0.4) == 0)
  // 24-core CPU job: the CPU array only owns 8 cores, so 16 are borrowed.
  rig.engine.inject(cpu_spec(1, 24, 1e9), 0.0);
  rig.engine.run_until(1.0);
  EXPECT_TRUE(rig.engine.cluster().node(0).hosts(1));
  EXPECT_EQ(rig.coda.reclaimable_cpus(0), 24);
  // A short 4-GPU training job arrives and needs 12 reserved cores: the
  // borrower is aborted and re-queued at the array head (Sec. V-C).
  rig.engine.inject(gpu_spec(2, ModelId::kResnet50, 4, 100.0), 10.0);
  rig.engine.run_until(11.0);
  EXPECT_TRUE(rig.engine.cluster().node(0).hosts(2));
  EXPECT_FALSE(rig.engine.cluster().node(0).hosts(1));
  EXPECT_EQ(rig.coda.preemptions(), 1);
  EXPECT_EQ(rig.engine.records().at(1).preempt_count, 1);
  // Once the training job completes, the aborted CPU job restarts from
  // scratch (its progress was lost).
  rig.engine.run_until(120.0);
  EXPECT_TRUE(rig.engine.records().at(2).completed);
  EXPECT_TRUE(rig.engine.cluster().node(0).hosts(1));
}

TEST(CodaScheduler, CpuJobsPreferNonReservedCores) {
  CodaConfig config;
  config.reserved_cores_per_node = 20;
  config.reservation_update_period_s = 0.0;
  Rig rig(1, config);
  rig.engine.inject(cpu_spec(1, 6, 1e9), 0.0);  // fits the 8-core CPU array
  rig.engine.run_until(1.0);
  EXPECT_EQ(rig.coda.reclaimable_cpus(0), 0);  // no borrowing happened
}

TEST(CodaScheduler, OneGpuJobsBorrowFourArrayAndMigrateBack) {
  CodaConfig config;
  config.reservation_update_period_s = 0.0;
  Rig rig(2, config);  // node 0 = four-array, node 1 = one-array
  // Fill the one-array node's GPUs with 1-GPU jobs.
  for (cluster::JobId id = 1; id <= 5; ++id) {
    rig.engine.inject(gpu_spec(id, ModelId::kTransformer, 1, 1e8,
                               static_cast<cluster::TenantId>(id)), 0.0);
  }
  // Two more 1-GPU jobs must borrow the four-array node.
  rig.engine.inject(gpu_spec(6, ModelId::kTransformer, 1, 1e8, 6), 1.0);
  rig.engine.inject(gpu_spec(7, ModelId::kTransformer, 1, 1e8, 7), 1.0);
  rig.engine.run_until(2.0);
  EXPECT_TRUE(rig.engine.cluster().node(0).hosts(6));
  EXPECT_TRUE(rig.engine.cluster().node(0).hosts(7));
  // A 4-GPU job reclaims its sub-array: borrowers are live-migrated.
  rig.engine.inject(gpu_spec(8, ModelId::kResnet50, 4, 1e5, 8), 10.0);
  rig.engine.run_until(11.0);
  EXPECT_TRUE(rig.engine.cluster().node(0).hosts(8));
  EXPECT_GE(rig.coda.migrations(), 2);
  // Migration preserves progress: preempt_count grows but work is kept
  // (the jobs are still running somewhere or queued, never restarted from
  // zero — asserted via preempt bookkeeping).
  EXPECT_GE(rig.engine.records().at(6).preempt_count +
                rig.engine.records().at(7).preempt_count,
            2);
}

TEST(CodaScheduler, UserFacingBorrowersAreNeverEvicted) {
  CodaConfig config;
  config.reserved_cores_per_node = 20;
  config.reservation_update_period_s = 0.0;
  Rig rig(1, config);
  // A user-facing inference job borrows deep into the reservation.
  auto inference = cpu_spec(1, 24, 1e9, 7);
  inference.user_facing = true;
  rig.engine.inject(inference, 0.0);
  rig.engine.run_until(1.0);
  EXPECT_TRUE(rig.engine.cluster().node(0).hosts(1));
  EXPECT_EQ(rig.coda.reclaimable_cpus(0), 0);  // nothing evictable
  // A GPU job that would need those cores cannot preempt it and queues.
  rig.engine.inject(gpu_spec(2, ModelId::kResnet50, 4, 100.0), 10.0);
  rig.engine.run_until(11.0);
  EXPECT_FALSE(rig.engine.cluster().node(0).hosts(2));
  EXPECT_EQ(rig.coda.preemptions(), 0);
  EXPECT_EQ(rig.coda.pending_gpu_jobs(), 1u);
  EXPECT_EQ(rig.engine.records().at(1).preempt_count, 0);
}

TEST(CodaScheduler, DrfOrderWithinCpuArray) {
  CodaConfig config;
  config.reservation_update_period_s = 0.0;
  Rig rig(1, config);
  // Tenant 10 hogs the CPU array; tenant 11's job should start first once
  // space frees even though it arrived later.
  rig.engine.inject(cpu_spec(1, 8, 1e9, 10), 0.0);
  rig.engine.run_until(1.0);
  rig.engine.inject(cpu_spec(2, 8, 1e9, 10), 2.0);
  rig.engine.inject(cpu_spec(3, 8, 1e9, 11), 3.0);
  rig.engine.run_until(4.0);
  // Both are running (borrowing allowed), but tenant 11 got priority: with
  // only one free slot the DRF order favors the zero-usage tenant.
  EXPECT_TRUE(rig.engine.cluster().node(0).hosts(3));
}

TEST(CodaScheduler, PendingDemandReflectsAllocatorCores) {
  CodaConfig config;
  config.reservation_update_period_s = 0.0;
  Rig rig(1, config);
  // Saturate all GPUs.
  rig.engine.inject(gpu_spec(1, ModelId::kResnet50, 4, 1e9, 1), 0.0);
  rig.engine.inject(gpu_spec(2, ModelId::kVgg16, 1, 1e9, 2), 0.0);
  rig.engine.run_until(1.0);
  rig.engine.inject(gpu_spec(3, ModelId::kVgg16, 1, 1e9, 3), 2.0);
  rig.engine.run_until(3.0);
  EXPECT_EQ(rig.coda.pending_gpu_jobs(), 1u);
  auto demand = rig.coda.min_pending_gpu_demand();
  ASSERT_TRUE(demand.has_value());
  EXPECT_EQ(demand->gpus_per_node, 1);
  EXPECT_EQ(demand->cpus_per_node, 3);  // CV default N_start
}

TEST(CodaScheduler, ReservationUpdatesFromHistory) {
  CodaConfig config;
  config.reservation_update_period_s = 100.0;
  Rig rig(4, config);
  EXPECT_EQ(rig.coda.reserved_cores_per_node(), 20);
  // Complete a couple of jobs long enough for their tuning sessions to
  // converge, then let the periodic update re-derive the reservation.
  rig.engine.inject(gpu_spec(1, ModelId::kTransformer, 1, 3000.0, 1), 0.0);
  rig.engine.inject(gpu_spec(2, ModelId::kVgg16, 1, 4000.0, 2), 0.0);
  rig.engine.run_until(4000.0);
  ASSERT_GE(rig.coda.history().size(), 2u);
  // mean cores/GPU for {Transformer: 2, VGG: 3} = 2.5; x5 GPUs -> 12-13.
  EXPECT_LT(rig.coda.reserved_cores_per_node(), 20);
  EXPECT_GE(rig.coda.reserved_cores_per_node(), 10);
}

TEST(CodaScheduler, MultiArrayDisabledUsesWholeCluster) {
  CodaConfig config;
  config.multi_array_enabled = false;
  Rig rig(2, config);
  EXPECT_EQ(rig.coda.reserved_cores_per_node(), 0);
  EXPECT_FALSE(rig.coda.node_in_four_array(0));
  rig.engine.inject(gpu_spec(1, ModelId::kResnet50, 4, 1e5), 0.0);
  rig.engine.inject(cpu_spec(2, 24, 1e5), 0.0);
  rig.engine.run_until(1.0);
  // Both start immediately: no reservation, one flat array.
  EXPECT_EQ(rig.engine.running_jobs(), 2u);
}

TEST(CodaScheduler, StaticBandwidthCapsApplyAtCpuJobStart) {
  CodaConfig config;
  config.eliminator.enabled = false;
  config.static_bw_cap_gbps = 10.0;  // Kelp-like baseline
  config.reservation_update_period_s = 0.0;
  Rig rig(2, config);  // node 0 has MBA (fraction 0.5), node 1 does not
  // A bandwidth-heavy batch job: capped to 10 GB/s the moment it starts on
  // the MBA node, so its Amdahl-bound progress slows accordingly.
  auto hog = cpu_spec(1, 8, 8.0 * 100.0);
  hog.mem_bw_gbps = 40.0;
  hog.bw_bound_fraction = 0.5;
  rig.engine.inject(hog, 0.0);
  rig.engine.run_until(1.0);
  const auto sample0 = rig.engine.sample(0);
  const auto sample1 = rig.engine.sample(1);
  const double achieved = sample0.total_gbps + sample1.total_gbps;
  EXPECT_NEAR(achieved, 10.0, 1e-6);  // capped from 40
  // rate factor = 1/(0.5 + 0.5*4) = 0.4 -> 100 s of work takes 250 s.
  rig.engine.drain(1e6);
  EXPECT_NEAR(rig.engine.records().at(1).finish_time, 250.0, 1e-6);
}

TEST(CodaScheduler, StaticCapsSkipUserFacingJobs) {
  CodaConfig config;
  config.eliminator.enabled = false;
  config.static_bw_cap_gbps = 10.0;
  config.reservation_update_period_s = 0.0;
  Rig rig(2, config);
  auto inference = cpu_spec(1, 8, 8.0 * 100.0);
  inference.mem_bw_gbps = 40.0;
  inference.user_facing = true;
  rig.engine.inject(inference, 0.0);
  rig.engine.run_until(1.0);
  const double achieved =
      rig.engine.sample(0).total_gbps + rig.engine.sample(1).total_gbps;
  EXPECT_NEAR(achieved, 40.0, 1e-6);  // uncapped
}

TEST(CodaScheduler, NodeFailureDuringTuningScrubsThrottleAndRestarts) {
  Rig rig(1);
  // A sensitive trainer and a bandwidth hog share the only node: the
  // eliminator's periodic checks throttle the hog while the trainer's
  // adaptive-allocation session is still profiling (steps take 90 s).
  // Wavenet starts at the Speech N_start of 5 cores (optimum 6), so its
  // prep stage is exposed and bandwidth pressure visibly drops its GPU
  // utilization.
  rig.engine.inject(gpu_spec(1, ModelId::kWavenet, 1, 1e7), 0.0);
  // 20 threads x 8 GB/s = 160 GB/s pushes the node past its 150 GB/s.
  auto hog = workload::make_heat_job(workload::HeatParams{20}, 1e9);
  hog.id = 2;
  rig.engine.inject(hog, 0.0);
  rig.engine.run_until(60.0);
  ASSERT_TRUE(rig.coda.eliminator().is_throttled(2));
  ASSERT_EQ(rig.coda.tuning_outcomes().size(), 0u);  // session still open

  // The node dies mid-session: both jobs are evicted, the open tuning
  // session must be cancelled, and the hog's throttle record scrubbed.
  ASSERT_TRUE(rig.engine.fail_node(0).ok());
  EXPECT_FALSE(rig.coda.eliminator().is_throttled(2));
  EXPECT_EQ(rig.engine.records().at(1).evict_count, 1);
  EXPECT_EQ(rig.engine.records().at(2).evict_count, 1);

  ASSERT_TRUE(rig.engine.recover_node(0).ok());
  rig.engine.run_until(400.0);
  // Both jobs restarted cleanly; the trainer re-entered tuning.
  EXPECT_TRUE(rig.engine.cluster().node(0).hosts(1));
  EXPECT_TRUE(rig.engine.cluster().node(0).hosts(2));
  EXPECT_EQ(rig.engine.records().at(1).restart_count, 1);
  EXPECT_EQ(rig.engine.records().at(2).restart_count, 1);
}

TEST(CodaScheduler, MultiNodeJobsTunePerNode) {
  Rig rig(4);
  workload::JobSpec spec = gpu_spec(1, ModelId::kDeepSpeech, 2, 1e7);
  spec.train_config = perfmodel::TrainConfig{2, 2, 0};
  rig.engine.inject(spec, 0.0);
  rig.engine.run_until(3600.0);
  ASSERT_EQ(rig.coda.tuning_outcomes().size(), 1u);
  const int final_cpus = rig.coda.tuning_outcomes()[0].final_cpus;
  EXPECT_LE(final_cpus, 2);  // multi-node demand collapses (Sec. IV-B2)
  int nodes_hosting = 0;
  for (const auto& node : rig.engine.cluster().nodes()) {
    if (node.hosts(1)) {
      ++nodes_hosting;
      EXPECT_EQ(node.allocation_of(1)->cpus, final_cpus);
    }
  }
  EXPECT_EQ(nodes_hosting, 2);
}

}  // namespace
}  // namespace coda::core
