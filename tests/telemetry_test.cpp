// Tests for the simulated MBA controller and the metric registry.
#include <gtest/gtest.h>

#include "telemetry/mba.h"
#include "telemetry/mbm.h"
#include "telemetry/metrics.h"

namespace coda::telemetry {
namespace {

cluster::Cluster make_cluster() {
  cluster::ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.mba_fraction = 0.5;  // nodes 0,1 have MBA; 2,3 do not
  return cluster::Cluster(cfg);
}

TEST(Mba, SetAndClearCaps) {
  auto cluster = make_cluster();
  MbaController mba(&cluster);
  EXPECT_LT(mba.cap(0, 1), 0.0);  // uncapped by default
  ASSERT_TRUE(mba.set_cap(0, 1, 12.5).ok());
  EXPECT_DOUBLE_EQ(mba.cap(0, 1), 12.5);
  EXPECT_EQ(mba.active_caps(), 1u);
  mba.clear_cap(0, 1);
  EXPECT_LT(mba.cap(0, 1), 0.0);
  mba.clear_cap(0, 1);  // idempotent
}

TEST(Mba, RejectsNonMbaNodes) {
  auto cluster = make_cluster();
  MbaController mba(&cluster);
  auto status = mba.set_cap(3, 1, 10.0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kFailedPrecondition);
  EXPECT_EQ(mba.active_caps(), 0u);
}

TEST(Mba, RejectsNegativeCap) {
  auto cluster = make_cluster();
  MbaController mba(&cluster);
  EXPECT_FALSE(mba.set_cap(0, 1, -1.0).ok());
}

TEST(Mba, ClearJobRemovesAllCaps) {
  auto cluster = make_cluster();
  MbaController mba(&cluster);
  ASSERT_TRUE(mba.set_cap(0, 7, 5.0).ok());
  ASSERT_TRUE(mba.set_cap(1, 7, 6.0).ok());
  ASSERT_TRUE(mba.set_cap(1, 8, 7.0).ok());
  mba.clear_job(7);
  EXPECT_LT(mba.cap(0, 7), 0.0);
  EXPECT_LT(mba.cap(1, 7), 0.0);
  EXPECT_DOUBLE_EQ(mba.cap(1, 8), 7.0);
}

TEST(NodeBandwidthSample, PressureComputation) {
  NodeBandwidthSample s;
  s.capacity_gbps = 150.0;
  s.total_gbps = 120.0;
  EXPECT_DOUBLE_EQ(s.pressure(), 0.8);
  s.capacity_gbps = 0.0;
  EXPECT_DOUBLE_EQ(s.pressure(), 0.0);
}

TEST(Metrics, CountersAccumulate) {
  MetricRegistry m;
  EXPECT_DOUBLE_EQ(m.counter("x"), 0.0);
  m.increment("x");
  m.increment("x", 2.5);
  EXPECT_DOUBLE_EQ(m.counter("x"), 3.5);
  EXPECT_EQ(m.counters().size(), 1u);
}

TEST(Metrics, SeriesRecordSamples) {
  MetricRegistry m;
  m.sample("s", 1.0, 10.0);
  m.sample("s", 2.0, 20.0);
  EXPECT_EQ(m.series("s").size(), 2u);
  EXPECT_DOUBLE_EQ(m.series("s").mean(), 15.0);
  EXPECT_TRUE(m.series("unknown").empty());
}

TEST(Metrics, OpenMetricsExposition) {
  MetricRegistry m;
  m.increment("jobs.completed", 3.0);
  m.sample("queue depth", 1.0, 7.0);  // space must sanitize to '_'
  const MetricSnapshot snap = snapshot(m);

  const std::string labelled = format_openmetrics(snap, "shard=\"2\"");
  EXPECT_NE(labelled.find("# TYPE coda_jobs_completed gauge\n"),
            std::string::npos);
  EXPECT_NE(labelled.find("coda_jobs_completed{shard=\"2\"} 3\n"),
            std::string::npos);
  EXPECT_NE(labelled.find("coda_queue_depth{shard=\"2\"} 7\n"),
            std::string::npos);
  // No exposition terminator: the caller concatenates per-shard blocks and
  // appends the single `# EOF` itself.
  EXPECT_EQ(labelled.find("# EOF"), std::string::npos);

  const std::string bare = format_openmetrics(snap, "");
  EXPECT_NE(bare.find("coda_jobs_completed 3\n"), std::string::npos);
  EXPECT_EQ(bare.find('{'), std::string::npos);
}

}  // namespace
}  // namespace coda::telemetry
