// Tests for the full-report serialization (report_io) and the on-disk
// content-addressed report cache: lossless round-trips, hit/miss behaviour,
// key sensitivity to config changes, and corrupt-entry recovery.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/report_cache.h"
#include "sim/report_io.h"
#include "workload/trace_gen.h"

namespace coda::sim {
namespace {

namespace fs = std::filesystem;

std::vector<workload::JobSpec> tiny_trace(uint64_t seed) {
  auto cfg = standard_week_trace(seed);
  cfg.duration_s = 4.0 * 3600.0;
  cfg.cpu_jobs = 50;
  cfg.gpu_jobs = 25;
  return workload::TraceGenerator(cfg).generate();
}

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.engine.cluster.node_count = 8;
  cfg.drain_slack_s = 86400.0;
  return cfg;
}

// CODA exercises every report field (tuning outcomes, eliminator stats,
// preemptions), so a CODA replay is the round-trip worst case.
ExperimentReport sample_report(uint64_t seed = 3) {
  return run_experiment(Policy::kCoda, tiny_trace(seed), tiny_config());
}

class TempCacheDir {
 public:
  explicit TempCacheDir(const char* name)
      : path_(fs::temp_directory_path() / name) {
    fs::remove_all(path_);
  }
  ~TempCacheDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

TEST(ReportSerialization, RoundTripIsLossless) {
  const auto report = sample_report();
  const std::string text = serialize_report(report);
  const auto parsed = deserialize_report(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;

  // Re-serializing the parsed report must reproduce the bytes exactly —
  // hexfloat encoding makes every double round-trip bit-for-bit.
  EXPECT_EQ(serialize_report(parsed.value()), text);

  const auto& r = parsed.value();
  EXPECT_EQ(r.scheduler, report.scheduler);
  EXPECT_EQ(r.submitted, report.submitted);
  EXPECT_EQ(r.completed, report.completed);
  EXPECT_EQ(r.events_dispatched, report.events_dispatched);
  EXPECT_EQ(r.records.size(), report.records.size());
  EXPECT_EQ(r.tuning_outcomes.size(), report.tuning_outcomes.size());
  EXPECT_EQ(r.gpu_active_series.size(), report.gpu_active_series.size());
  EXPECT_EQ(r.queue_by_tenant.size(), report.queue_by_tenant.size());
  EXPECT_DOUBLE_EQ(r.gpu_util_active, report.gpu_util_active);
  EXPECT_DOUBLE_EQ(r.frag_rate, report.frag_rate);
}

TEST(ReportSerialization, RejectsTruncatedAndGarbageInput) {
  EXPECT_FALSE(deserialize_report("").ok());
  EXPECT_FALSE(deserialize_report("not a report at all\n").ok());
  const std::string text = serialize_report(sample_report());
  EXPECT_FALSE(deserialize_report(text.substr(0, text.size() / 2)).ok());
}

TEST(ReportCacheKey, SensitiveToEveryInput) {
  const auto trace = tiny_trace(5);
  const auto cfg = tiny_config();
  const std::string base = experiment_cache_key(Policy::kCoda, trace, cfg);
  EXPECT_EQ(base.size(), 16u);

  // Policy change.
  EXPECT_NE(base, experiment_cache_key(Policy::kFifo, trace, cfg));

  // Any config knob change.
  auto cfg2 = cfg;
  cfg2.coda.eliminator.bw_threshold += 0.01;
  EXPECT_NE(base, experiment_cache_key(Policy::kCoda, trace, cfg2));
  auto cfg3 = cfg;
  cfg3.engine.metrics_period_s *= 2.0;
  EXPECT_NE(base, experiment_cache_key(Policy::kCoda, trace, cfg3));

  // Any trace change.
  auto trace2 = trace;
  trace2.back().submit_time += 1.0;
  EXPECT_NE(base, experiment_cache_key(Policy::kCoda, trace2, cfg));

  // Determinism: same inputs, same key.
  EXPECT_EQ(base, experiment_cache_key(Policy::kCoda, trace, cfg));
}

TEST(ReportCache, MissThenStoreThenHit) {
  TempCacheDir dir("coda_report_cache_test_hit");
  ReportCache cache(dir.path().string());
  ASSERT_TRUE(cache.enabled());

  const auto report = sample_report();
  const std::string key = "0123456789abcdef";
  EXPECT_FALSE(cache.load(key).has_value());

  ASSERT_TRUE(cache.store(key, report).ok());
  const auto hit = cache.load(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(serialize_report(*hit), serialize_report(report));

  // A different key is still a miss.
  EXPECT_FALSE(cache.load("fedcba9876543210").has_value());
}

TEST(ReportCache, CorruptEntryIsAMissAndGetsDeleted) {
  TempCacheDir dir("coda_report_cache_test_corrupt");
  ReportCache cache(dir.path().string());
  const auto report = sample_report();
  const std::string key = "00000000deadbeef";
  ASSERT_TRUE(cache.store(key, report).ok());

  // Flip one payload byte: the checksum must catch it.
  const std::string path = cache.path_for(key);
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(contents.size(), 64u);
  contents[contents.size() / 2] ^= 0x1;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }
  EXPECT_FALSE(cache.load(key).has_value());
  // The corrupt file is removed so the next store can repopulate it.
  EXPECT_FALSE(fs::exists(path));

  // Outright garbage is likewise a silent miss.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "???" << std::endl;
  }
  EXPECT_FALSE(cache.load(key).has_value());

  // And the entry can be rebuilt.
  ASSERT_TRUE(cache.store(key, report).ok());
  EXPECT_TRUE(cache.load(key).has_value());
}

TEST(ReportCache, StaleSchemaVersionIsAMiss) {
  TempCacheDir dir("coda_report_cache_test_stale");
  ReportCache cache(dir.path().string());
  const std::string key = "0000000000000001";
  ASSERT_TRUE(cache.store(key, sample_report()).ok());

  // Rewrite the header with a schema version from "the future".
  const std::string path = cache.path_for(key);
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  const auto space = contents.find(' ');
  ASSERT_NE(space, std::string::npos);
  contents.replace(space + 1, 1, "9");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }
  EXPECT_FALSE(cache.load(key).has_value());
}

TEST(ReportCache, NoCacheEnvDisablesEverything) {
  const char* saved = std::getenv("CODA_NO_CACHE");
  const std::string saved_value = saved != nullptr ? saved : "";
  ASSERT_EQ(setenv("CODA_NO_CACHE", "1", 1), 0);

  TempCacheDir dir("coda_report_cache_test_disabled");
  ReportCache cache(dir.path().string());
  EXPECT_FALSE(cache.enabled());

  if (saved != nullptr) {
    ASSERT_EQ(setenv("CODA_NO_CACHE", saved_value.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("CODA_NO_CACHE"), 0);
  }
}

TEST(ReportCache, DefaultDirHonoursEnvOverride) {
  const char* saved = std::getenv("CODA_CACHE_DIR");
  const std::string saved_value = saved != nullptr ? saved : "";

  ASSERT_EQ(setenv("CODA_CACHE_DIR", "/tmp/coda_cache_override", 1), 0);
  EXPECT_EQ(ReportCache::default_dir(), "/tmp/coda_cache_override");
  ASSERT_EQ(unsetenv("CODA_CACHE_DIR"), 0);
  EXPECT_EQ(ReportCache::default_dir(), ".report_cache");

  if (saved != nullptr) {
    ASSERT_EQ(setenv("CODA_CACHE_DIR", saved_value.c_str(), 1), 0);
  }
}

}  // namespace
}  // namespace coda::sim
