// Tripwires that keep the experiment-config surface area honest.
//
// Two pieces of code must enumerate every knob in sim::ExperimentConfig:
//
//   * src/service/journal.cpp  — the CODA_JOURNAL_V2_FIELDS X-macro (the
//     journal header; a missing field makes a non-default session replay
//     under the wrong config), and
//   * src/sim/report_cache.cpp — experiment_cache_key (a missing field
//     makes the cache return a stale report for a changed config).
//
// Neither can see a new struct field automatically, so this test fails the
// build when a config struct changes size on the reference platform
// (x86-64 Linux, the CI target). If a static_assert below fires:
//
//   1. add the new field to CODA_JOURNAL_V2_FIELDS in journal.cpp (writer
//      and parser pick it up automatically; bump kExpectedV2Fields below),
//   2. mix the field into experiment_cache_key in report_cache.cpp,
//   3. update the sizeof constant here.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "service/journal.h"
#include "service/server.h"
#include "sim/experiment.h"

namespace coda {
namespace {

#if defined(__x86_64__) && defined(__linux__)
static_assert(sizeof(sched::RetryPolicy) == 32,
              "RetryPolicy changed: update CODA_JOURNAL_V2_FIELDS "
              "(journal.cpp) and experiment_cache_key (report_cache.cpp)");
static_assert(sizeof(sim::FailureConfig) == 24,
              "FailureConfig changed: update CODA_JOURNAL_V2_FIELDS "
              "(journal.cpp) and experiment_cache_key (report_cache.cpp)");
static_assert(sizeof(cluster::NodeConfig) == 40,
              "NodeConfig changed: update CODA_JOURNAL_V2_FIELDS "
              "(journal.cpp) and experiment_cache_key (report_cache.cpp)");
static_assert(sizeof(cluster::ClusterConfig) == 104,
              "ClusterConfig changed: update CODA_JOURNAL_V2_FIELDS "
              "(journal.cpp) and experiment_cache_key (report_cache.cpp)");
static_assert(sizeof(sim::EngineConfig) == 144,
              "EngineConfig changed: update CODA_JOURNAL_V2_FIELDS "
              "(journal.cpp) and experiment_cache_key (report_cache.cpp)");
static_assert(sizeof(core::AllocatorConfig) == 48,
              "AllocatorConfig changed: update CODA_JOURNAL_V2_FIELDS "
              "(journal.cpp) and experiment_cache_key (report_cache.cpp)");
static_assert(sizeof(core::EliminatorConfig) == 56,
              "EliminatorConfig changed: update CODA_JOURNAL_V2_FIELDS "
              "(journal.cpp) and experiment_cache_key (report_cache.cpp)");
static_assert(sizeof(core::CodaConfig) == 144,
              "CodaConfig changed: update CODA_JOURNAL_V2_FIELDS "
              "(journal.cpp) and experiment_cache_key (report_cache.cpp)");
static_assert(sizeof(sim::ExperimentConfig) == 360,
              "ExperimentConfig changed: update CODA_JOURNAL_V2_FIELDS "
              "(journal.cpp) and experiment_cache_key (report_cache.cpp)");
// The service-side structs are not journaled, but their knobs are wired
// through from_env() / codad flag parsing and documented in DESIGN.md §8 —
// growing them must prompt a pass over both.
static_assert(sizeof(service::ServiceLimits) == 20,
              "ServiceLimits changed: wire the knob through from_env() and "
              "document it (DESIGN.md service section)");
static_assert(sizeof(service::ServerConfig) == 592,
              "ServerConfig changed: wire the knob through codad's flag "
              "parser and document it (DESIGN.md service section)");
#endif

// The number of `config.` lines the v2 header carries. Duplicated from
// journal.cpp's kV2FieldCount on purpose: growing the X-macro without
// thinking about the cache key (step 2 above) should fail a test, not
// silently agree with itself.
constexpr int kExpectedV2Fields = 43;

TEST(ConfigCoverage, V2HeaderCarriesEveryField) {
  service::SessionSpec session;
  session.config.horizon_s = 3600.0;
  const std::string header = service::serialize_session_header(session);

  std::set<std::string> keys;
  std::istringstream lines(header);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.compare(0, 7, "config.") != 0) {
      continue;
    }
    const auto space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string key = line.substr(0, space);
    EXPECT_TRUE(keys.insert(key).second) << "duplicate key " << key;
    EXPECT_GT(line.size(), space + 1) << "empty value for " << key;
  }
  EXPECT_EQ(static_cast<int>(keys.size()), kExpectedV2Fields);
}

// A default-config header must parse back to a default config: every
// serialized value is accepted by its own parser, and removing a field
// from the writer trips the parser's completeness check.
TEST(ConfigCoverage, DefaultHeaderRoundTrips) {
  service::SessionSpec session;
  session.config.horizon_s = 7200.0;
  const std::string header = service::serialize_session_header(session);
  auto parsed = service::parse_journal(header);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(service::serialize_session_header(parsed->session), header);
}

}  // namespace
}  // namespace coda
