// Paper-fact tests for the DNN performance model: every qualitative claim of
// Sec. IV (Figs. 3, 5, 6 and the multi-node findings) must re-emerge from
// the calibrated model.
#include <gtest/gtest.h>

#include <map>

#include "perfmodel/characterization.h"
#include "perfmodel/dnn_model.h"
#include "perfmodel/train_perf.h"
#include "util/csv.h"
#include "workload/heat.h"

namespace coda::perfmodel {
namespace {

class PerModel : public testing::TestWithParam<ModelId> {
 protected:
  TrainPerf perf_;
};

INSTANTIATE_TEST_SUITE_P(AllModels, PerModel, testing::ValuesIn(kAllModels),
                         [](const testing::TestParamInfo<ModelId>& info) {
                           return std::string(to_string(info.param));
                         });

// Fig. 3: training speed and GPU utilization rise with cores, then plateau.
TEST_P(PerModel, UtilizationRisesThenPlateaus) {
  const ModelId m = GetParam();
  const auto cfg = config_1n1g();
  const int opt = perf_.optimal_cores(m, cfg);
  for (int c = 1; c < opt; ++c) {
    EXPECT_LT(perf_.gpu_utilization(m, cfg, c),
              perf_.gpu_utilization(m, cfg, c + 1))
        << "util must strictly rise below the optimum, c=" << c;
  }
  // Past the optimum it never improves meaningfully (Fig. 3: flat with a
  // slight drop).
  const double at_opt = perf_.gpu_utilization(m, cfg, opt);
  for (int c = opt; c <= 20; ++c) {
    EXPECT_LE(perf_.gpu_utilization(m, cfg, c), at_opt * 1.001);
  }
}

// Fig. 3 / Sec. V-B: utilization and training speed move together and peak
// at the same core count.
TEST_P(PerModel, UtilizationTracksThroughput) {
  const ModelId m = GetParam();
  const auto cfg = config_1n1g();
  for (int c = 1; c < 16; ++c) {
    const double du = perf_.gpu_utilization(m, cfg, c + 1) -
                      perf_.gpu_utilization(m, cfg, c);
    const double dt =
        perf_.throughput(m, cfg, c + 1) - perf_.throughput(m, cfg, c);
    if (dt > 1e-9) {
      EXPECT_GE(du, 0.0) << "throughput rose but utilization fell at " << c;
    }
  }
}

// Fig. 3: "most of the models do not gain the best performance with the
// 2-CPU configuration except Transformer with 1N1G".
TEST(PaperFacts, OnlyTransformerIsOptimalAtTwoCores1N1G) {
  TrainPerf perf;
  for (ModelId m : kAllModels) {
    const int opt = perf.optimal_cores(m, config_1n1g());
    if (m == ModelId::kTransformer || m == ModelId::kInceptionV3) {
      // InceptionV3 is the deepest CV net and also saturates at 2; the
      // paper's wording highlights Transformer.
      EXPECT_LE(opt, 2) << to_string(m);
    } else {
      EXPECT_GT(opt, 2) << to_string(m);
    }
  }
}

// Fig. 5 calibration targets (1N1G, default batch).
TEST(PaperFacts, OptimalCores1N1GMatchCalibration) {
  const std::map<ModelId, int> expected = {
      {ModelId::kAlexnet, 6},     {ModelId::kVgg16, 3},
      {ModelId::kInceptionV3, 2}, {ModelId::kResnet50, 3},
      {ModelId::kBiAttFlow, 5},   {ModelId::kTransformer, 2},
      {ModelId::kWavenet, 6},     {ModelId::kDeepSpeech, 4},
  };
  TrainPerf perf;
  for (const auto& [m, cores] : expected) {
    EXPECT_EQ(perf.optimal_cores(m, config_1n1g()), cores) << to_string(m);
  }
}

// Sec. IV-B1: CV demand is anti-correlated with model complexity — the
// simpler the network, the more CPUs it needs.
TEST(PaperFacts, SimplerCvModelsNeedMoreCores) {
  TrainPerf perf;
  const int alexnet = perf.optimal_cores(ModelId::kAlexnet, config_1n1g());
  const int vgg = perf.optimal_cores(ModelId::kVgg16, config_1n1g());
  const int inception =
      perf.optimal_cores(ModelId::kInceptionV3, config_1n1g());
  EXPECT_GT(alexnet, vgg);
  EXPECT_GE(vgg, inception);
}

// Sec. IV-B1: Wavenet re-cuts audio each iteration and needs more cores
// than DeepSpeech.
TEST(PaperFacts, WavenetNeedsMoreCoresThanDeepSpeech) {
  TrainPerf perf;
  EXPECT_GT(perf.optimal_cores(ModelId::kWavenet, config_1n1g()),
            perf.optimal_cores(ModelId::kDeepSpeech, config_1n1g()));
}

// Fig. 5: "all models except Alexnet have the same CPU demands in the
// default BS configuration and the maximum BS configuration".
TEST_P(PerModel, BatchSizeInvarianceExceptAlexnet) {
  const ModelId m = GetParam();
  TrainPerf perf;
  const int at_default = perf.optimal_cores(m, config_1n1g());
  const int at_max =
      perf.optimal_cores(m, config_1n1g(model_params(m).max_batch));
  if (m == ModelId::kAlexnet) {
    EXPECT_GT(at_max, at_default);
  } else {
    EXPECT_EQ(at_max, at_default);
  }
}

// Sec. IV-B2: on one node the demand grows with the GPU count, with a
// model-specific slope.
TEST_P(PerModel, MultiGpuDemandGrows) {
  const ModelId m = GetParam();
  TrainPerf perf;
  const int g1 = perf.optimal_cores(m, config_1n1g());
  const int g2 = perf.optimal_cores(m, TrainConfig{1, 2, 0});
  const int g4 = perf.optimal_cores(m, config_1n4g());
  EXPECT_GE(g2, g1);
  EXPECT_GT(g4, g2);
  EXPECT_LE(g4, 14) << "1N4G optima stay within Fig. 14's adjustment range";
}

// Sec. IV-B2: multi-node runs need no more than two cores...
TEST_P(PerModel, MultiNodeDemandAtMostTwoCores) {
  TrainPerf perf;
  EXPECT_LE(perf.optimal_cores(GetParam(), config_2n4g()), 2);
}

// ...and lose 25-30% throughput versus the single-node 4-GPU run.
TEST_P(PerModel, MultiNodeDegradation25To30Percent) {
  const ModelId m = GetParam();
  TrainPerf perf;
  const auto c14 = config_1n4g();
  const auto c24 = config_2n4g();
  const double t14 =
      perf.throughput(m, c14, perf.optimal_cores(m, c14));
  const double t24 =
      perf.throughput(m, c24, perf.optimal_cores(m, c24));
  const double degradation = 1.0 - t24 / t14;
  EXPECT_GE(degradation, 0.22) << to_string(m);
  EXPECT_LE(degradation, 0.31) << to_string(m);
}

// A slower interconnect exposes more communication time.
TEST(PaperFacts, SlowerNetworkDegradesMultiNodeMore) {
  TrainPerf perf;
  TrainConfig fast = config_2n4g();
  TrainConfig slow = config_2n4g();
  slow.net_gbps = fast.net_gbps / 2.0;
  EXPECT_LT(perf.iter_time(ModelId::kResnet50, fast, 2),
            perf.iter_time(ModelId::kResnet50, slow, 2));
}

// Fig. 6: CV bandwidth demand anti-correlated with complexity; NLP tiny.
TEST(PaperFacts, BandwidthOrderingMatchesFig6) {
  TrainPerf perf;
  const auto cfg = config_1n1g();
  const auto bw = [&](ModelId m) {
    return perf.mem_bw_demand_gbps(m, cfg, perf.optimal_cores(m, cfg));
  };
  EXPECT_GT(bw(ModelId::kAlexnet), bw(ModelId::kVgg16));
  EXPECT_GT(bw(ModelId::kVgg16), bw(ModelId::kInceptionV3));
  // NLP models are the smallest consumers.
  for (ModelId m : {ModelId::kAlexnet, ModelId::kVgg16,
                    ModelId::kInceptionV3, ModelId::kResnet50,
                    ModelId::kWavenet, ModelId::kDeepSpeech}) {
    EXPECT_GT(bw(m), bw(ModelId::kTransformer));
    EXPECT_GT(bw(m), bw(ModelId::kBiAttFlow));
  }
  // Wavenet > DeepSpeech (audio re-cut).
  EXPECT_GT(bw(ModelId::kWavenet), bw(ModelId::kDeepSpeech));
}

// Fig. 6: Wavenet's bandwidth grows with batch size, DeepSpeech's does not.
TEST(PaperFacts, BatchSizeBandwidthScaling) {
  TrainPerf perf;
  const auto bw = [&](ModelId m, int bs) {
    const auto cfg = config_1n1g(bs);
    return perf.mem_bw_demand_gbps(m, cfg, perf.optimal_cores(m, cfg));
  };
  EXPECT_GT(bw(ModelId::kWavenet, model_params(ModelId::kWavenet).max_batch),
            bw(ModelId::kWavenet, 0) * 1.2);
  EXPECT_NEAR(
      bw(ModelId::kDeepSpeech, model_params(ModelId::kDeepSpeech).max_batch),
      bw(ModelId::kDeepSpeech, 0), 0.3);
}

// Fig. 6: multi-GPU bandwidth demand grows linearly with the GPU count.
TEST_P(PerModel, BandwidthLinearInGpuCount) {
  const ModelId m = GetParam();
  TrainPerf perf;
  const auto c1 = config_1n1g();
  const auto c4 = config_1n4g();
  const double b1 = perf.mem_bw_demand_gbps(m, c1, perf.optimal_cores(m, c1));
  const double b4 = perf.mem_bw_demand_gbps(m, c4, perf.optimal_cores(m, c4));
  EXPECT_NEAR(b4 / b1, 4.0, 0.15);
}

// A core-starved job moves less data per second.
TEST_P(PerModel, StarvedJobDemandsLessBandwidth) {
  const ModelId m = GetParam();
  TrainPerf perf;
  const auto cfg = config_1n4g();
  const int opt = perf.optimal_cores(m, cfg);
  if (opt > 1) {
    EXPECT_LT(perf.mem_bw_demand_gbps(m, cfg, 1),
              perf.mem_bw_demand_gbps(m, cfg, opt));
  }
}

// Sec. IV-C3: only Alexnet and Resnet50 have a large PCIe appetite.
TEST(PaperFacts, PcieDemandsMatchSec4C3) {
  TrainPerf perf;
  const auto cfg = config_1n1g();
  const auto pcie = [&](ModelId m) {
    return perf.pcie_demand_gbps(m, cfg, perf.optimal_cores(m, cfg));
  };
  EXPECT_GE(pcie(ModelId::kAlexnet), 6.0);
  EXPECT_GE(pcie(ModelId::kResnet50), 6.0);
  // NLP and speech models consume less than 1 GB/s.
  for (ModelId m : {ModelId::kBiAttFlow, ModelId::kTransformer,
                    ModelId::kWavenet, ModelId::kDeepSpeech}) {
    EXPECT_LT(pcie(m), 1.0) << to_string(m);
  }
  // No model consumes more than half of PCIe 3.0 x16 (16 GB/s).
  for (ModelId m : kAllModels) {
    EXPECT_LE(pcie(m), 8.0) << to_string(m);
  }
}

// N_start defaults of Sec. V-B1.
TEST(PaperFacts, StartCoreDefaults) {
  EXPECT_EQ(default_start_cores(ModelCategory::kCV), 3);
  EXPECT_EQ(default_start_cores(ModelCategory::kNLP), 5);
  EXPECT_EQ(default_start_cores(ModelCategory::kSpeech), 5);
}

// Table I sanity: names, categories and parameter plausibility.
TEST(ModelZoo, TableIInventory) {
  EXPECT_EQ(kModelCount, 8);
  EXPECT_STREQ(to_string(ModelId::kBiAttFlow), "BAT");
  EXPECT_EQ(model_params(ModelId::kAlexnet).category, ModelCategory::kCV);
  EXPECT_EQ(model_params(ModelId::kTransformer).category,
            ModelCategory::kNLP);
  EXPECT_EQ(model_params(ModelId::kDeepSpeech).category,
            ModelCategory::kSpeech);
  for (ModelId m : kAllModels) {
    const auto& p = model_params(m);
    EXPECT_EQ(p.id, m);
    EXPECT_GT(p.gpu_time_s, 0.0);
    EXPECT_GT(p.prep_work_core_s, 0.0);
    EXPECT_GT(p.util_ceiling, 0.4);
    EXPECT_LE(p.util_ceiling, 1.0);
    EXPECT_GT(p.max_batch, p.default_batch);
    EXPECT_GE(p.multi_node_slowdown, 1.0);
    EXPECT_GT(p.llc_sensitivity, 0.0);
    EXPECT_LT(p.llc_sensitivity, 0.1);  // "not sensitive to LLC contention"
  }
}

TEST(TrainConfig, NamesAndHelpers) {
  EXPECT_EQ(config_1n1g().name(), "1N1G");
  EXPECT_EQ(config_1n4g().name(), "1N4G");
  EXPECT_EQ(config_2n4g().name(), "2N4G");
  EXPECT_EQ(config_2n4g().total_gpus(), 4);
}

TEST(TrainPerf, SamplesPerSecondScalesWithGpusAndBatch) {
  TrainPerf perf;
  const ModelId m = ModelId::kVgg16;
  const int opt1 = perf.optimal_cores(m, config_1n1g());
  const int opt4 = perf.optimal_cores(m, config_1n4g());
  const double s1 = perf.samples_per_second(m, config_1n1g(), opt1);
  const double s4 = perf.samples_per_second(m, config_1n4g(), opt4);
  EXPECT_NEAR(s4 / s1, 4.0, 0.2);
}

TEST(Characterization, CoreSweepCoversEveryModelAndConfig) {
  const auto sweep = core_sweep(12);
  EXPECT_EQ(sweep.size(), 8u * 2u * 12u);
  for (const auto& p : sweep) {
    EXPECT_GE(p.gpu_util, 0.0);
    EXPECT_LE(p.gpu_util, 1.0);
    EXPECT_GT(p.samples_per_s, 0.0);
  }
  // The sweep reproduces the per-model optimum.
  TrainPerf perf;
  for (const auto& p : sweep) {
    if (p.config == "1N1G" &&
        p.cores == perf.optimal_cores(p.model, config_1n1g())) {
      EXPECT_NEAR(p.gpu_util,
                  perf.gpu_utilization(p.model, config_1n1g(), p.cores),
                  1e-12);
    }
  }
}

TEST(Characterization, ConfigSummariesMatchDirectQueries) {
  TrainPerf perf;
  const auto summaries = config_summaries();
  EXPECT_EQ(summaries.size(), 8u * 4u * 2u);
  for (const auto& s : summaries) {
    if (s.config == "1N4G" && !s.max_batch) {
      EXPECT_EQ(s.optimal_cores,
                perf.optimal_cores(s.model, config_1n4g()));
    }
  }
}

TEST(Characterization, ContentionSweepMonotoneInPressure) {
  const auto sweep = contention_sweep({0, 8, 16, 24, 28});
  std::map<ModelId, double> last;
  for (const auto& p : sweep) {
    EXPECT_LE(p.normalized_perf, 1.0 + 1e-9);
    if (last.count(p.model) > 0) {
      EXPECT_LE(p.normalized_perf, last[p.model] + 1e-9)
          << to_string(p.model);
    }
    last[p.model] = p.normalized_perf;
  }
}

// Pins the HEAT constants inlined in characterization.cpp to the canonical
// workload::HeatParams defaults (perfmodel cannot include workload).
TEST(Characterization, HeatConstantsStayInSync) {
  const workload::HeatParams params;
  EXPECT_DOUBLE_EQ(params.bw_per_thread_gbps, 8.0);
  EXPECT_DOUBLE_EQ(params.llc_mb_per_thread, 1.2);
  EXPECT_DOUBLE_EQ(params.bw_bound_fraction, 0.9);
}

TEST(Characterization, SavesCsvFiles) {
  const std::string dir = testing::TempDir();
  ASSERT_TRUE(save_characterization_csv(dir).ok());
  for (const char* name :
       {"fig3_cores.csv", "fig5_fig6_summary.csv", "fig7_contention.csv"}) {
    auto doc = util::read_csv_file(dir + "/" + name);
    ASSERT_TRUE(doc.ok()) << name;
    EXPECT_GT(doc->rows.size(), 8u) << name;
  }
  EXPECT_FALSE(save_characterization_csv("/nonexistent_dir_xyz").ok());
}

TEST(TrainPerf, RepeatedDemandProbesReturnIdenticalBits) {
  // mem_bw/pcie demand derive from the cached per-(model, config) optimum;
  // repeated calls must be bit-identical (the scheduler compares demands
  // against thresholds, so even 1-ulp jitter would flip decisions) and must
  // not rebuild the invariants each time.
  TrainPerf perf;
  const TrainConfig configs[] = {config_1n1g(), config_1n4g(), config_2n4g()};
  for (ModelId id : kAllModels) {
    for (const TrainConfig& cfg : configs) {
      for (int cores : {1, 4, 16, 28}) {
        const double mem = perf.mem_bw_demand_gbps(id, cfg, cores);
        const double pcie = perf.pcie_demand_gbps(id, cfg, cores);
        for (int i = 0; i < 3; ++i) {
          ASSERT_EQ(perf.mem_bw_demand_gbps(id, cfg, cores), mem)
              << to_string(id) << " " << cfg.name() << " cores=" << cores;
          ASSERT_EQ(perf.pcie_demand_gbps(id, cfg, cores), pcie)
              << to_string(id) << " " << cfg.name() << " cores=" << cores;
        }
      }
    }
  }
  const uint64_t builds = perf.cache_stats().invariant_builds;
  EXPECT_LE(builds, static_cast<uint64_t>(kModelCount) * 3u);
  perf.mem_bw_demand_gbps(ModelId::kAlexnet, config_1n1g(), 8);
  EXPECT_EQ(perf.cache_stats().invariant_builds, builds);
}

TEST(TrainPerf, ContentionInflatesIterTime) {
  TrainPerf perf;
  ContentionFactors hot;
  hot.prep_inflation = 2.0;
  const ModelId m = ModelId::kBiAttFlow;
  const auto cfg = config_1n1g();
  const int opt = perf.optimal_cores(m, cfg);
  EXPECT_GT(perf.iter_time(m, cfg, opt, hot), perf.iter_time(m, cfg, opt));
  EXPECT_LT(perf.gpu_utilization(m, cfg, opt, hot),
            perf.gpu_utilization(m, cfg, opt));
}

}  // namespace
}  // namespace coda::perfmodel
