// Unit tests for the util module: RNG, statistics, time series, strings,
// CSV and Result.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/csv.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timeseries.h"

namespace coda::util {
namespace {

// ---------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsIndependentOfParentDrawCount) {
  // Forking with the same tag from the same state gives the same stream.
  Rng parent(7);
  Rng child1 = parent.fork(42);
  Rng child2 = parent.fork(42);
  EXPECT_EQ(child1.next_u64(), child2.next_u64());
  // Different tags give different streams.
  Rng child3 = parent.fork(43);
  Rng child4 = parent.fork(42);
  EXPECT_NE(child3.next_u64(), child4.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(3.0, 8.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 8.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of {2,3,4,5,6} show up
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(rng.exponential(2.0));
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(rng.normal(10.0, 3.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng rng(19);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) {
    samples.push_back(rng.lognormal(1.0, 0.5));
  }
  EXPECT_NEAR(percentile(samples, 0.5), std::exp(1.0), 0.1);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.bounded_pareto(10.0, 1000.0, 1.3);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 1000.0);
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) {
    counts[rng.weighted_index(weights)] += 1;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

// -------------------------------------------------------------------- stats

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
}

TEST(Percentile, BatchMatchesSingle) {
  std::vector<double> v = {5.0, 1.0, 9.0, 3.0, 7.0};
  auto ps = percentiles(v, {0.1, 0.5, 0.99});
  EXPECT_DOUBLE_EQ(ps[0], percentile(v, 0.1));
  EXPECT_DOUBLE_EQ(ps[1], percentile(v, 0.5));
  EXPECT_DOUBLE_EQ(ps[2], percentile(v, 0.99));
}

TEST(EmpiricalCdf, FractionAndQuantile) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(3.0), 0.6);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(100.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
}

TEST(EmpiricalCdf, EvaluateGrid) {
  EmpiricalCdf cdf({10.0, 20.0});
  auto ys = cdf.evaluate({5.0, 10.0, 15.0, 25.0});
  EXPECT_DOUBLE_EQ(ys[0], 0.0);
  EXPECT_DOUBLE_EQ(ys[1], 0.5);
  EXPECT_DOUBLE_EQ(ys[2], 0.5);
  EXPECT_DOUBLE_EQ(ys[3], 1.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(3.0);
  h.add(3.5);
  h.add(-100.0);  // clamps into first bin
  h.add(100.0);   // clamps into last bin
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

// --------------------------------------------------------------- timeseries

TEST(TimeSeries, MeansAndWindow) {
  TimeSeries ts;
  ts.add(0.0, 1.0);
  ts.add(10.0, 3.0);
  ts.add(20.0, 5.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 3.0);
  EXPECT_DOUBLE_EQ(ts.min(), 1.0);
  EXPECT_DOUBLE_EQ(ts.max(), 5.0);
  EXPECT_DOUBLE_EQ(ts.mean_in_window(5.0, 25.0), 4.0);
  EXPECT_DOUBLE_EQ(ts.mean_in_window(100.0, 200.0), 0.0);
}

TEST(TimeSeries, TimeWeightedMeanSampleAndHold) {
  TimeSeries ts;
  ts.add(0.0, 1.0);   // holds for 10s
  ts.add(10.0, 3.0);  // holds for 30s within [0, 40)
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(0.0, 40.0), (10.0 + 90.0) / 40.0);
}

TEST(TimeSeries, ResampleFillsEmptyBuckets) {
  TimeSeries ts;
  ts.add(0.0, 2.0);
  ts.add(25.0, 6.0);
  auto points = ts.resample(0.0, 30.0, 10.0);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].value, 2.0);
  EXPECT_DOUBLE_EQ(points[1].value, 2.0);  // empty bucket carries previous
  EXPECT_DOUBLE_EQ(points[2].value, 6.0);
}

// ------------------------------------------------------------------ strings

TEST(Strings, Strfmt) {
  EXPECT_EQ(strfmt("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strfmt("%.2f", 1.234), "1.23");
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, TrimAndJoin) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(Strings, FormatDuration) {
  EXPECT_EQ(format_duration(5.5), "5.5s");
  EXPECT_EQ(format_duration(125.0), "2m05s");
  EXPECT_EQ(format_duration(3661.0), "1h01m");
}

TEST(Strings, FormatPercent) {
  EXPECT_EQ(format_percent(0.621), "62.1%");
}

// ---------------------------------------------------------------------- csv

TEST(Csv, RoundTrip) {
  CsvDocument doc;
  doc.header = {"a", "b"};
  doc.rows = {{"1", "2"}, {"3", "4"}};
  auto parsed = parse_csv(to_csv(doc));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, doc.header);
  EXPECT_EQ(parsed->rows, doc.rows);
}

TEST(Csv, RejectsRaggedRows) {
  auto parsed = parse_csv("a,b\n1,2,3\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kParseError);
}

TEST(Csv, RejectsEmptyInput) {
  EXPECT_FALSE(parse_csv("").ok());
}

TEST(Csv, ColumnLookup) {
  CsvDocument doc;
  doc.header = {"x", "y"};
  EXPECT_EQ(*doc.column("y"), 1u);
  EXPECT_FALSE(doc.column("z").ok());
}

TEST(Csv, FileRoundTrip) {
  CsvDocument doc;
  doc.header = {"k"};
  doc.rows = {{"v"}};
  const std::string path = testing::TempDir() + "/coda_csv_test.csv";
  ASSERT_TRUE(write_csv_file(path, doc).ok());
  auto loaded = read_csv_file(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows, doc.rows);
  EXPECT_FALSE(read_csv_file("/nonexistent/coda.csv").ok());
}

// ------------------------------------------------------------------- result

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(0), 42);

  Result<int> bad = Error{ErrorCode::kNotFound, "missing"};
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(Result, StatusOkAndError) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  Status bad = Error{ErrorCode::kIoError, "io"};
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kIoError);
}

TEST(Result, ErrorCodeNames) {
  EXPECT_STREQ(to_string(ErrorCode::kParseError), "parse_error");
  EXPECT_STREQ(to_string(ErrorCode::kResourceExhausted),
               "resource_exhausted");
}

// -------------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  t.add_note("a note");
  const std::string out = t.to_string();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("name   | value"), std::string::npos);
  EXPECT_NE(out.find("note: a note"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace coda::util
