// End-to-end integration tests: full trace replays under FIFO, DRF and CODA
// and the headline comparisons of the paper's evaluation.
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "util/stats.h"
#include "workload/heat.h"

namespace coda::sim {
namespace {

std::vector<workload::JobSpec> day_trace(uint64_t seed, double days = 1.0,
                                         int cpu_per_day = 2500,
                                         int gpu_per_day = 1250) {
  auto cfg = standard_week_trace(seed);
  cfg.duration_s = days * 86400.0;
  cfg.cpu_jobs = static_cast<int>(cpu_per_day * days);
  cfg.gpu_jobs = static_cast<int>(gpu_per_day * days);
  return workload::TraceGenerator(cfg).generate();
}

TEST(Integration, AllPoliciesCompleteAModestTrace) {
  const auto trace = day_trace(3, 0.5, 1200, 400);  // light load
  for (auto policy : {Policy::kFifo, Policy::kDrf, Policy::kCoda}) {
    const auto report = run_experiment(policy, trace);
    EXPECT_EQ(report.completed, trace.size()) << report.scheduler;
    EXPECT_GT(report.gpu_util_active, 0.2) << report.scheduler;
    EXPECT_EQ(report.records.size(), trace.size());
  }
}

TEST(Integration, DeterministicReplay) {
  const auto trace = day_trace(5, 0.25, 600, 250);
  const auto a = run_experiment(Policy::kCoda, trace);
  const auto b = run_experiment(Policy::kCoda, trace);
  EXPECT_DOUBLE_EQ(a.gpu_util_active, b.gpu_util_active);
  EXPECT_DOUBLE_EQ(a.gpu_active_rate, b.gpu_active_rate);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.preemptions, b.preemptions);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].finish_time, b.records[i].finish_time);
  }
}

// The paper's headline (Fig. 10): CODA beats FIFO and DRF on GPU
// utilization by a wide margin at saturation load.
TEST(Integration, CodaImprovesGpuUtilization) {
  const auto trace = day_trace(7, 1.0);
  const auto fifo = run_experiment(Policy::kFifo, trace);
  const auto drf = run_experiment(Policy::kDrf, trace);
  const auto coda = run_experiment(Policy::kCoda, trace);
  EXPECT_GT(coda.gpu_util_active, fifo.gpu_util_active + 0.08);
  EXPECT_GT(coda.gpu_util_active, drf.gpu_util_active + 0.08);
  // Within the calibrated band of the paper's numbers.
  EXPECT_NEAR(fifo.gpu_util_active, 0.454, 0.06);
  EXPECT_NEAR(coda.gpu_util_active, 0.621, 0.06);
}

// Sec. VI-C: CODA nearly eliminates fragmentation.
TEST(Integration, CodaReducesFragmentation) {
  const auto trace = day_trace(7, 1.0);
  const auto fifo = run_experiment(Policy::kFifo, trace);
  const auto coda = run_experiment(Policy::kCoda, trace);
  EXPECT_LT(coda.frag_rate, fifo.frag_rate);
  EXPECT_LT(coda.frag_rate, 0.04);
}

// Fig. 11: the bulk of GPU jobs start without queueing under CODA, while
// FIFO queues heavily at the same load.
TEST(Integration, CodaShortensGpuQueueing) {
  const auto trace = day_trace(7, 1.0);
  const auto fifo = run_experiment(Policy::kFifo, trace);
  const auto coda = run_experiment(Policy::kCoda, trace);
  const auto frac_fast = [](const std::vector<double>& q, double limit) {
    size_t n = 0;
    for (double v : q) {
      n += v <= limit ? 1 : 0;
    }
    return q.empty() ? 0.0 : static_cast<double>(n) / q.size();
  };
  EXPECT_GT(frac_fast(coda.gpu_queue_times, 1.0), 0.7);
  EXPECT_LT(frac_fast(fifo.gpu_queue_times, 1.0),
            frac_fast(coda.gpu_queue_times, 1.0));
  // CPU jobs are not starved by CODA (Sec. VI-A promise).
  EXPECT_GT(frac_fast(coda.cpu_queue_times, 180.0), 0.9);
}

// Fig. 14: CODA both grows under-provisioned jobs and slims over-asking
// ones.
TEST(Integration, TuningAdjustsBothDirections) {
  const auto trace = day_trace(7, 0.5);
  const auto coda = run_experiment(Policy::kCoda, trace);
  ASSERT_FALSE(coda.tuning_outcomes.empty());
  int more = 0;
  int fewer = 0;
  for (const auto& outcome : coda.tuning_outcomes) {
    if (outcome.final_cpus > outcome.requested_cpus) {
      ++more;
    } else if (outcome.final_cpus < outcome.requested_cpus) {
      ++fewer;
    }
  }
  EXPECT_GT(more, 0);
  EXPECT_GT(fewer, 0);
  // Most jobs get more cores (they asked for 1-2 per GPU), a solid minority
  // gets slimmed (the >10-core requesters), matching Fig. 14's split.
  EXPECT_GT(more, fewer);
}

// Sec. VI-E: disabling the eliminator hurts DNN jobs when bandwidth-heavy
// CPU jobs roam free. A focused workload (latency-sensitive NLP trainers +
// HEAT-grade CPU jobs on a small cluster) makes the effect deterministic.
TEST(Integration, EliminatorAblation) {
  std::vector<workload::JobSpec> trace;
  cluster::JobId next_id = 1;
  for (int i = 0; i < 6; ++i) {
    workload::JobSpec gpu;
    gpu.id = next_id++;
    gpu.tenant = static_cast<cluster::TenantId>(i % 4);
    gpu.kind = workload::JobKind::kGpuTraining;
    gpu.model = i % 2 == 0 ? perfmodel::ModelId::kTransformer
                           : perfmodel::ModelId::kBiAttFlow;
    gpu.train_config = perfmodel::TrainConfig{1, 1, 0};
    gpu.iterations = 3000.0;
    gpu.requested_cpus = 2;
    gpu.submit_time = 0.0;
    trace.push_back(gpu);
  }
  for (int i = 0; i < 8; ++i) {
    auto hog = workload::make_heat_job(workload::HeatParams{8}, 4.0e4);
    hog.id = next_id++;
    hog.tenant = static_cast<cluster::TenantId>(10 + i % 5);
    hog.submit_time = 5.0;
    trace.push_back(hog);
  }

  ExperimentConfig on;
  on.engine.cluster.node_count = 4;
  on.horizon_s = 1200.0;
  ExperimentConfig off = on;
  off.coda.eliminator.enabled = false;
  const auto with = run_experiment(Policy::kCoda, trace, on);
  const auto without = run_experiment(Policy::kCoda, trace, off);
  EXPECT_GT(with.eliminator_stats.mba_throttles +
                with.eliminator_stats.core_halvings,
            0);
  EXPECT_EQ(without.eliminator_stats.mba_throttles, 0);
  EXPECT_EQ(without.eliminator_stats.core_halvings, 0);
  // Throttled bandwidth hogs take longer; protected trainers finish sooner.
  // (Aggregate time-averaged utilization is not a reliable signal here:
  // faster completions change the later sample composition — the per-job
  // comparison below is the direct Sec. VI-E effect.)
  double gpu_time_with = 0.0;
  double gpu_time_without = 0.0;
  for (size_t i = 0; i < with.records.size(); ++i) {
    if (with.records[i].spec.is_gpu_job()) {
      gpu_time_with += with.records[i].finish_time;
      gpu_time_without += without.records[i].finish_time;
    }
  }
  EXPECT_LT(gpu_time_with, gpu_time_without);
}

// Resource-conservation invariant: after draining, nothing is allocated and
// every record is consistent.
TEST(Integration, RecordsAreConsistent) {
  const auto trace = day_trace(13, 0.25, 600, 250);
  const auto report = run_experiment(Policy::kCoda, trace);
  for (const auto& record : report.records) {
    ASSERT_TRUE(record.completed);
    EXPECT_GE(record.first_start_time, record.submit_time);
    EXPECT_GT(record.finish_time, record.first_start_time);
    EXPECT_GE(record.queue_time_total, 0.0);
    EXPECT_GE(record.initial_queue_time(), 0.0);
    EXPECT_LE(record.initial_queue_time(), record.queue_time_total + 1e-9);
    if (record.spec.is_gpu_job()) {
      EXPECT_GE(record.final_cpus, 1);
    }
  }
}

// Per-user fairness (Fig. 12): every tenant gets queue samples and CODA's
// worst-tenant tail beats FIFO's.
TEST(Integration, PerTenantTails) {
  const auto trace = day_trace(7, 1.0);
  const auto fifo = run_experiment(Policy::kFifo, trace);
  const auto coda = run_experiment(Policy::kCoda, trace);
  ASSERT_EQ(coda.queue_by_tenant.size(), 20u);
  double fifo_worst = 0.0;
  double coda_worst = 0.0;
  for (const auto& [tenant, queues] : fifo.queue_by_tenant) {
    fifo_worst = std::max(fifo_worst, util::percentile(queues, 0.99));
  }
  for (const auto& [tenant, queues] : coda.queue_by_tenant) {
    coda_worst = std::max(coda_worst, util::percentile(queues, 0.99));
  }
  EXPECT_LT(coda_worst, fifo_worst);
}

}  // namespace
}  // namespace coda::sim
