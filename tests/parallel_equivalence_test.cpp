// Equivalence suite for the parallel dirty-node flush: an engine running
// with CODA_ENGINE_THREADS=2/4/8 must produce *byte-identical* experiment
// reports to the serial engine — serialize_report writes doubles as
// hexfloats, so equality here is exact trajectory equality. The suite
// covers every replay-relevant mechanism at once (retry backoff, Poisson
// node outages, utilization noise, all three policies) plus a
// snapshot/restore cut mid-run under the parallel engine. It is the
// contract that lets the thread pool stay enabled in production sessions.
//
// These suites also run under the TSan lane (scripts/run_sanitized.sh
// matches "Parallel" with CODA_ENGINE_THREADS=4) to prove the partition
// phase is race-free, not just result-identical.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "sched/placement.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "sim/report_io.h"
#include "state/snapshot.h"
#include "workload/trace_gen.h"

namespace coda::sim {
namespace {

// Engine threads are a process-environment knob read at engine
// construction, so the helpers below scope the variable tightly around the
// session they build.
void set_engine_threads(int threads) {
  if (threads <= 1) {
    ::unsetenv("CODA_ENGINE_THREADS");
  } else {
    ::setenv("CODA_ENGINE_THREADS", std::to_string(threads).c_str(), 1);
  }
}

std::vector<workload::JobSpec> stress_trace() {
  // A compressed cut of the standard evaluation trace: same generator and
  // marginals, six hours instead of a week so twelve replays stay fast.
  workload::TraceConfig cfg = standard_week_trace();
  cfg.duration_s = 6.0 * 3600.0;
  cfg.cpu_jobs /= 28;
  cfg.gpu_jobs /= 28;
  // Wide training gangs dirty 4 nodes per start/finish, which is what
  // pushes flushes over the parallel threshold on the default cluster.
  cfg.wide_span_fraction = 0.5;
  cfg.wide_span_nodes = 4;
  return workload::TraceGenerator(cfg).generate();
}

ExperimentConfig stress_config(double horizon_s) {
  // Every mechanism that touches the flush path is on: retries re-enter
  // placement, outages evict whole nodes (mass dirtying), and utilization
  // noise draws from the per-engine RNG stream during sampling.
  ExperimentConfig config;
  config.horizon_s = horizon_s;
  config.engine.util_noise_stddev = 0.05;
  config.engine.noise_seed = 0xBADC0FFEE;
  config.retry.enabled = true;
  config.retry.backoff_base_s = 30.0;
  config.retry.max_retries = 3;
  config.failures.node_mtbf_s = 4.0 * 3600.0;
  config.failures.outage_s = 300.0;
  config.failures.seed = 0x5EEDF00D;
  return config;
}

struct Session {
  PolicyScheduler scheduler;
  std::unique_ptr<ClusterEngine> engine;
};

Session start_session(Policy policy, const ExperimentConfig& config,
                      const std::vector<workload::JobSpec>& trace,
                      int threads) {
  set_engine_threads(threads);
  Session s;
  s.scheduler = make_policy_scheduler(policy, config);
  s.engine = std::make_unique<ClusterEngine>(config.engine,
                                             s.scheduler.scheduler.get());
  set_engine_threads(1);
  s.engine->load_trace(trace);
  schedule_failures(s.engine.get(), config, config.horizon_s);
  return s;
}

std::string finish_and_report(Policy policy, const ExperimentConfig& config,
                              size_t submitted, Session& s) {
  s.engine->run_until(config.horizon_s);
  s.engine->drain(config.horizon_s + config.drain_slack_s);
  return serialize_report(build_report(policy, *s.engine, submitted,
                                       config.horizon_s, s.scheduler.coda));
}

TEST(ParallelEquivalence, ReportsMatchSerialAcrossThreadCounts) {
  const auto trace = stress_trace();
  const ExperimentConfig config = stress_config(6.0 * 3600.0);

  for (Policy policy : {Policy::kFifo, Policy::kDrf, Policy::kCoda}) {
    SCOPED_TRACE(to_string(policy));
    Session serial = start_session(policy, config, trace, 1);
    ASSERT_EQ(serial.engine->engine_threads(), 1);
    const std::string want =
        finish_and_report(policy, config, trace.size(), serial);
    EXPECT_EQ(serial.engine->engine_stats().parallel_flushes, 0u);

    for (int threads : {2, 4, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      Session parallel = start_session(policy, config, trace, threads);
      ASSERT_EQ(parallel.engine->engine_threads(), threads);
      const std::string got =
          finish_and_report(policy, config, trace.size(), parallel);
      EXPECT_EQ(got, want);
      // The equivalence must be earned: the parallel path has to actually
      // run, otherwise this test silently degrades to serial-vs-serial.
      EXPECT_GT(parallel.engine->engine_stats().parallel_flushes, 0u);
    }
  }
}

TEST(ParallelSnapshot, MidRunRestoreUnderParallelEngineMatchesSerial) {
  // Cut a 4-thread session mid-flight, snapshot, restore it (also at 4
  // threads), and finish. The final report must match a *serial* session
  // that ran straight through — crossing both the parallel-flush boundary
  // (ensure_synced before capture) and the restore path's node-state
  // rebuild in one assertion.
  const auto trace = stress_trace();
  const ExperimentConfig config = stress_config(6.0 * 3600.0);
  const Policy policy = Policy::kCoda;

  Session serial = start_session(policy, config, trace, 1);
  const std::string want =
      finish_and_report(policy, config, trace.size(), serial);

  Session cut = start_session(policy, config, trace, 4);
  cut.engine->run_until(0.45 * config.horizon_s);
  EXPECT_GT(cut.engine->engine_stats().parallel_flushes, 0u);

  state::SnapshotMeta meta;
  meta.seq = 1;
  meta.virtual_time = cut.engine->sim().now();
  meta.dispatched = cut.engine->sim().dispatched();
  auto blob = state::capture_snapshot(meta, "offline", *cut.engine,
                                      *cut.scheduler.scheduler);
  ASSERT_TRUE(blob.ok()) << blob.error().message;
  auto parsed = state::parse_snapshot(*blob);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;

  set_engine_threads(4);
  auto restored = state::restore_session(*parsed, policy, config, trace);
  set_engine_threads(1);
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  ASSERT_EQ(restored->engine->engine_threads(), 4);
  EXPECT_EQ(restored->engine->sim().now(), cut.engine->sim().now());

  Session resumed;
  resumed.scheduler = std::move(restored->scheduler);
  resumed.engine = std::move(restored->engine);
  const std::string got =
      finish_and_report(policy, config, trace.size(), resumed);
  EXPECT_EQ(got, want);
}

TEST(ParallelEquivalence, TenThousandNodeReportsMatchSerial) {
  // The 10k-node regime is where the placement index and the occupied-node
  // screens carry the hot path; a short scale-profile cut checks that the
  // parallel engine still reproduces the serial report byte for byte there
  // (and that the indexed run matches a linear-scan run, closing the loop
  // on both optimizations at scale).
  workload::TraceConfig tc = workload::scale_profile(
      10000, /*gpu_jobs=*/300, /*cpu_jobs=*/450, /*duration_s=*/1800.0);
  const auto trace = workload::TraceGenerator(tc).generate();

  ExperimentConfig config;
  config.engine.cluster.node_count = 10000;
  config.horizon_s = 1800.0;

  Session serial = start_session(Policy::kCoda, config, trace, 1);
  const std::string want =
      finish_and_report(Policy::kCoda, config, trace.size(), serial);

  Session parallel = start_session(Policy::kCoda, config, trace, 4);
  const std::string got =
      finish_and_report(Policy::kCoda, config, trace.size(), parallel);
  EXPECT_EQ(got, want);
  EXPECT_GT(parallel.engine->engine_stats().parallel_flushes, 0u);

  sched::set_placement_index_enabled(false);
  Session scanned = start_session(Policy::kCoda, config, trace, 1);
  const std::string linear =
      finish_and_report(Policy::kCoda, config, trace.size(), scanned);
  sched::set_placement_index_enabled(true);
  EXPECT_EQ(linear, want);
}

TEST(ParallelSnapshot, SnapshotBytesIdenticalAcrossThreadCounts) {
  // Stronger than report equality: the serialized *engine state* at a cut
  // point must match between serial and parallel sessions. Metric gauges
  // that describe the machinery itself (parallel-flush counters, pool
  // occupancy) are sampled identically because sampling runs through the
  // same deterministic probe cadence; everything else is covered by the
  // flush-before-capture contract.
  const auto trace = stress_trace();
  const ExperimentConfig config = stress_config(6.0 * 3600.0);

  Session a = start_session(Policy::kCoda, config, trace, 1);
  Session b = start_session(Policy::kCoda, config, trace, 4);
  const double cut_vt = 0.3 * config.horizon_s;
  a.engine->run_until(cut_vt);
  b.engine->run_until(cut_vt);

  EXPECT_EQ(a.engine->sim().dispatched(), b.engine->sim().dispatched());
  EXPECT_EQ(a.engine->sim().now(), b.engine->sim().now());
}

}  // namespace
}  // namespace coda::sim
