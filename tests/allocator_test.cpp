// Tests for the adaptive CPU allocator: N_start rules (Sec. V-B1) and the
// feedback tuner (Sec. V-B2), validated against the performance model as
// ground truth.
#include <gtest/gtest.h>

#include <cmath>

#include "coda/allocator.h"
#include "perfmodel/train_perf.h"

namespace coda::core {
namespace {

workload::JobSpec gpu_spec(perfmodel::ModelId model,
                           perfmodel::TrainConfig cfg = {},
                           cluster::TenantId tenant = 0) {
  workload::JobSpec spec;
  spec.id = 1;
  spec.tenant = tenant;
  spec.kind = workload::JobKind::kGpuTraining;
  spec.model = model;
  spec.train_config = cfg;
  spec.requested_cpus = 2;
  return spec;
}

// Runs a full tuning session against the analytic model; returns the final
// core count and steps used.
struct TuneResult {
  int final_cores = 0;
  int steps = 0;
};

TuneResult run_session(AdaptiveCpuAllocator& allocator,
                       const workload::JobSpec& spec,
                       const perfmodel::TrainPerf& perf) {
  const cluster::JobId id = spec.id;
  int cores = allocator.start_cores(spec);
  allocator.begin(id, spec, cores);
  while (!allocator.converged(id)) {
    const double util =
        perf.gpu_utilization(spec.model, spec.train_config, cores);
    auto next = allocator.step(id, util);
    if (!next.has_value()) {
      break;
    }
    cores = *next;
  }
  TuneResult result;
  result.final_cores = allocator.current_cores(id);
  result.steps = allocator.profile_steps(id);
  return result;
}

// ------------------------------------------------------------------ N_start

TEST(StartCores, CategoryDefaultsScaleWithLocalGpus) {
  HistoryLog history;
  AdaptiveCpuAllocator allocator(AllocatorConfig{}, &history);
  auto cv = gpu_spec(perfmodel::ModelId::kResnet50);
  EXPECT_EQ(allocator.start_cores(cv), 3);
  cv.train_config.gpus_per_node = 4;
  EXPECT_EQ(allocator.start_cores(cv), 12);
  auto nlp = gpu_spec(perfmodel::ModelId::kBiAttFlow);
  EXPECT_EQ(allocator.start_cores(nlp), 5);
  auto speech = gpu_spec(perfmodel::ModelId::kWavenet);
  EXPECT_EQ(allocator.start_cores(speech), 5);
}

TEST(StartCores, HintsAdjustStart) {
  HistoryLog history;
  AdaptiveCpuAllocator allocator(AllocatorConfig{}, &history);
  auto spec = gpu_spec(perfmodel::ModelId::kWavenet);  // default 5
  spec.hints.pipelined = true;                         // -1
  EXPECT_EQ(allocator.start_cores(spec), 4);
  spec.hints.large_weights = true;                     // -1
  EXPECT_EQ(allocator.start_cores(spec), 3);
  spec.hints.complex_prep = true;                      // +1
  EXPECT_EQ(allocator.start_cores(spec), 4);
}

TEST(StartCores, OwnerHistoryOverridesDefaults) {
  HistoryLog history;
  history.record(HistoryRecord{7, perfmodel::ModelCategory::kSpeech,
                               perfmodel::ModelId::kWavenet, 1, 1, 6});
  history.record(HistoryRecord{7, perfmodel::ModelCategory::kSpeech,
                               perfmodel::ModelId::kDeepSpeech, 1, 1, 4});
  AdaptiveCpuAllocator allocator(AllocatorConfig{}, &history);
  auto spec = gpu_spec(perfmodel::ModelId::kWavenet, {}, 7);
  // Largest historical core count in the category (Sec. V-B1).
  EXPECT_EQ(allocator.start_cores(spec), 6);
  // A different tenant is unaffected.
  auto other = gpu_spec(perfmodel::ModelId::kWavenet, {}, 8);
  EXPECT_EQ(allocator.start_cores(other), 5);
}

TEST(StartCores, HistoryPrefersSameGpuShape) {
  HistoryLog history;
  history.record(HistoryRecord{7, perfmodel::ModelCategory::kCV,
                               perfmodel::ModelId::kAlexnet, 1, 4, 13});
  history.record(HistoryRecord{7, perfmodel::ModelCategory::kCV,
                               perfmodel::ModelId::kAlexnet, 1, 1, 6});
  AdaptiveCpuAllocator allocator(AllocatorConfig{}, &history);
  auto spec = gpu_spec(perfmodel::ModelId::kAlexnet, {}, 7);  // 1N1G
  EXPECT_EQ(allocator.start_cores(spec), 6);
}

TEST(StartCores, WorstCaseNoCategoryUsesAnyHistory) {
  HistoryLog history;
  AdaptiveCpuAllocator allocator(AllocatorConfig{}, &history);
  auto spec = gpu_spec(perfmodel::ModelId::kDeepSpeech, {}, 9);
  spec.hints.category_known = false;
  // No history at all: conservative default (4 per local GPU).
  EXPECT_EQ(allocator.start_cores(spec), 4);
  history.record(HistoryRecord{9, perfmodel::ModelCategory::kNLP,
                               perfmodel::ModelId::kTransformer, 1, 1, 7});
  EXPECT_EQ(allocator.start_cores(spec), 7);
}

// -------------------------------------------------------------------- tuner

class TunerPerModel : public testing::TestWithParam<perfmodel::ModelId> {};

INSTANTIATE_TEST_SUITE_P(
    AllModels, TunerPerModel, testing::ValuesIn(perfmodel::kAllModels),
    [](const testing::TestParamInfo<perfmodel::ModelId>& info) {
      return std::string(perfmodel::to_string(info.param));
    });

TEST_P(TunerPerModel, ConvergesNearOptimum1N1G) {
  HistoryLog history;
  AdaptiveCpuAllocator allocator(AllocatorConfig{}, &history);
  perfmodel::TrainPerf perf;
  auto spec = gpu_spec(GetParam());
  const auto result = run_session(allocator, spec, perf);
  const int opt = perf.optimal_cores(GetParam(), spec.train_config);
  EXPECT_NEAR(result.final_cores, opt, 1) << "steps=" << result.steps;
  EXPECT_LE(result.steps, AllocatorConfig{}.max_profile_steps);
  // The found allocation is within 2% of the best utilization.
  EXPECT_GE(perf.gpu_utilization(GetParam(), spec.train_config,
                                 result.final_cores),
            perf.gpu_utilization(GetParam(), spec.train_config, opt) * 0.98);
}

TEST_P(TunerPerModel, ConvergesNearOptimum1N4G) {
  HistoryLog history;
  AdaptiveCpuAllocator allocator(AllocatorConfig{}, &history);
  perfmodel::TrainPerf perf;
  auto spec = gpu_spec(GetParam(), perfmodel::config_1n4g());
  const auto result = run_session(allocator, spec, perf);
  const int opt = perf.optimal_cores(GetParam(), spec.train_config);
  EXPECT_GE(perf.gpu_utilization(GetParam(), spec.train_config,
                                 result.final_cores),
            perf.gpu_utilization(GetParam(), spec.train_config, opt) * 0.97);
}

TEST_P(TunerPerModel, WarmHistoryConvergesInAtMostFourSteps) {
  // Table II: with a reasonable N_start the optimum is found in 3-4
  // profiling steps. A warm owner history lands N_start at N_opt.
  perfmodel::TrainPerf perf;
  HistoryLog history;
  const auto& params = perfmodel::model_params(GetParam());
  const int opt = perf.optimal_cores(GetParam(), {});
  history.record(
      HistoryRecord{0, params.category, GetParam(), 1, 1, opt});
  AdaptiveCpuAllocator allocator(AllocatorConfig{}, &history);
  auto spec = gpu_spec(GetParam());
  const auto result = run_session(allocator, spec, perf);
  EXPECT_EQ(result.final_cores, opt);
  EXPECT_LE(result.steps, 4);
}

TEST(Tuner, WalksDownFromOverAllocation) {
  // A user asked for 20+ cores; the tuner must slim the job down.
  HistoryLog history;
  history.record(HistoryRecord{3, perfmodel::ModelCategory::kSpeech,
                               perfmodel::ModelId::kDeepSpeech, 1, 1, 20});
  AdaptiveCpuAllocator allocator(AllocatorConfig{}, &history);
  perfmodel::TrainPerf perf;
  auto spec = gpu_spec(perfmodel::ModelId::kDeepSpeech, {}, 3);
  const auto result = run_session(allocator, spec, perf);
  const int opt = perf.optimal_cores(perfmodel::ModelId::kDeepSpeech, {});
  EXPECT_LE(result.final_cores, opt + 1);
  EXPECT_GE(perf.gpu_utilization(spec.model, spec.train_config,
                                 result.final_cores),
            perf.gpu_utilization(spec.model, spec.train_config, opt) * 0.98);
}

TEST(Tuner, FinishRecordsHistory) {
  HistoryLog history;
  AdaptiveCpuAllocator allocator(AllocatorConfig{}, &history);
  perfmodel::TrainPerf perf;
  auto spec = gpu_spec(perfmodel::ModelId::kVgg16);
  run_session(allocator, spec, perf);
  EXPECT_TRUE(allocator.tracking(spec.id));
  allocator.finish(spec.id);
  EXPECT_FALSE(allocator.tracking(spec.id));
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history.records()[0].model, perfmodel::ModelId::kVgg16);
  EXPECT_NEAR(history.records()[0].optimal_cores,
              perf.optimal_cores(perfmodel::ModelId::kVgg16, {}), 1);
}

TEST(Tuner, CancelDropsSessionWithoutHistory) {
  HistoryLog history;
  AdaptiveCpuAllocator allocator(AllocatorConfig{}, &history);
  auto spec = gpu_spec(perfmodel::ModelId::kVgg16);
  allocator.begin(spec.id, spec, 3);
  allocator.step(spec.id, 0.5);
  allocator.cancel(spec.id);
  EXPECT_FALSE(allocator.tracking(spec.id));
  allocator.finish(spec.id);  // no-op
  EXPECT_EQ(history.size(), 0u);
}

TEST(Tuner, SettleForcesConvergence) {
  HistoryLog history;
  AdaptiveCpuAllocator allocator(AllocatorConfig{}, &history);
  auto spec = gpu_spec(perfmodel::ModelId::kWavenet);
  allocator.begin(spec.id, spec, 5);
  allocator.step(spec.id, 0.4);
  allocator.settle(spec.id, 7);
  EXPECT_TRUE(allocator.converged(spec.id));
  EXPECT_EQ(allocator.current_cores(spec.id), 7);
}

TEST(Tuner, StepBudgetIsHardCap) {
  AllocatorConfig cfg;
  cfg.max_profile_steps = 3;
  HistoryLog history;
  AdaptiveCpuAllocator allocator(cfg, &history);
  auto spec = gpu_spec(perfmodel::ModelId::kAlexnet);
  allocator.begin(spec.id, spec, 2);
  // Feed a pathological utilization signal; the session must still stop.
  int steps = 0;
  while (!allocator.converged(spec.id) && steps < 10) {
    allocator.step(spec.id, 0.5 + 0.001 * steps);
    ++steps;
  }
  EXPECT_LE(allocator.profile_steps(spec.id), 3);
  EXPECT_TRUE(allocator.converged(spec.id));
}

class SearchModes : public testing::TestWithParam<SearchMode> {};

INSTANTIATE_TEST_SUITE_P(Modes, SearchModes,
                         testing::Values(SearchMode::kHillClimb,
                                         SearchMode::kStepwise,
                                         SearchMode::kOneShot),
                         [](const testing::TestParamInfo<SearchMode>& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST_P(SearchModes, AllModesReachNearOptimalUtilization) {
  perfmodel::TrainPerf perf;
  for (perfmodel::ModelId m : perfmodel::kAllModels) {
    core::HistoryLog history;
    AllocatorConfig cfg;
    cfg.search_mode = GetParam();
    AdaptiveCpuAllocator allocator(cfg, &history);
    auto spec = gpu_spec(m);
    const auto result = run_session(allocator, spec, perf);
    const int opt = perf.optimal_cores(m, spec.train_config);
    EXPECT_GE(
        perf.gpu_utilization(m, spec.train_config, result.final_cores),
        perf.gpu_utilization(m, spec.train_config, opt) * 0.95)
        << to_string(m) << " mode=" << to_string(GetParam());
    EXPECT_LE(result.steps, cfg.max_profile_steps);
  }
}

TEST(SearchModes, StepwiseWalksOneCoreAtATime) {
  perfmodel::TrainPerf perf;
  core::HistoryLog history;
  AllocatorConfig cfg;
  cfg.search_mode = SearchMode::kStepwise;
  AdaptiveCpuAllocator allocator(cfg, &history);
  auto spec = gpu_spec(perfmodel::ModelId::kWavenet);  // start 5, opt 6
  allocator.begin(spec.id, spec, 2);
  int cores = 2;
  int max_delta = 0;
  while (!allocator.converged(spec.id)) {
    auto next = allocator.step(
        spec.id, perf.gpu_utilization(spec.model, spec.train_config, cores));
    if (!next.has_value()) {
      break;
    }
    max_delta = std::max(max_delta, std::abs(*next - cores));
    cores = *next;
  }
  // Pure +/-1 steps, except the single revert from the down-probe back
  // past N_start (a delta of 2). No multi-core jumps.
  EXPECT_LE(max_delta, 2);
}

TEST(SearchModes, OneShotStopsAfterSingleJump) {
  perfmodel::TrainPerf perf;
  core::HistoryLog history;
  AllocatorConfig cfg;
  cfg.search_mode = SearchMode::kOneShot;
  AdaptiveCpuAllocator allocator(cfg, &history);
  auto spec = gpu_spec(perfmodel::ModelId::kAlexnet);
  allocator.begin(spec.id, spec, 1);  // far below the optimum of 6
  int cores = 1;
  while (!allocator.converged(spec.id)) {
    auto next = allocator.step(
        spec.id, perf.gpu_utilization(spec.model, spec.train_config, cores));
    if (!next.has_value()) {
      break;
    }
    cores = *next;
  }
  // probe + jump + one confirmation measurement.
  EXPECT_LE(allocator.profile_steps(spec.id), 3);
  EXPECT_GT(allocator.current_cores(spec.id), 1);
}

// ------------------------------------------------------------------ history

TEST(History, MeanCoresPerGpuAndFourGpuFraction) {
  HistoryLog history;
  EXPECT_FALSE(history.mean_cores_per_gpu().has_value());
  EXPECT_FALSE(history.four_gpu_fraction().has_value());
  history.record(HistoryRecord{0, perfmodel::ModelCategory::kCV,
                               perfmodel::ModelId::kAlexnet, 1, 1, 6});
  history.record(HistoryRecord{0, perfmodel::ModelCategory::kCV,
                               perfmodel::ModelId::kAlexnet, 1, 4, 12});
  EXPECT_DOUBLE_EQ(*history.mean_cores_per_gpu(), (6.0 + 3.0) / 2.0);
  // GPU-demand weighted: 4 of 5 GPUs belong to the 4-GPU job.
  EXPECT_DOUBLE_EQ(*history.four_gpu_fraction(), 4.0 / 5.0);
}

}  // namespace
}  // namespace coda::core
