// Tests for the simulation engine: job lifecycle, exact rate integration,
// contention coupling, preemption, resize and telemetry probes.
#include <gtest/gtest.h>

#include "sched/fifo.h"
#include "sim/engine.h"
#include "workload/heat.h"

namespace coda::sim {
namespace {

using perfmodel::ModelId;
using perfmodel::TrainPerf;

// Scheduler stub that gives tests manual control over the engine callbacks.
class ProbeScheduler : public sched::Scheduler {
 public:
  const char* name() const override { return "probe"; }
  void submit(const workload::JobSpec& spec) override {
    submitted.push_back(spec);
  }
  void on_job_finished(const workload::JobSpec& spec) override {
    finished.push_back(spec.id);
  }
  void kick() override { ++kicks; }
  void on_job_evicted(const workload::JobSpec& spec) override {
    evicted.push_back(spec.id);
  }
  size_t pending_jobs() const override { return 0; }
  size_t pending_gpu_jobs() const override { return 0; }
  std::optional<PendingGpuDemand> min_pending_gpu_demand() const override {
    return demand;
  }

  sched::SchedulerEnv& env() { return env_; }

  std::vector<workload::JobSpec> submitted;
  std::vector<cluster::JobId> evicted;
  std::vector<cluster::JobId> finished;
  std::optional<PendingGpuDemand> demand;
  int kicks = 0;
};

EngineConfig small_engine_config(int nodes = 2) {
  EngineConfig cfg;
  cfg.cluster.node_count = nodes;
  return cfg;
}

workload::JobSpec gpu_spec(cluster::JobId id, ModelId model,
                           double iterations, int requested = 2) {
  workload::JobSpec spec;
  spec.id = id;
  spec.kind = workload::JobKind::kGpuTraining;
  spec.model = model;
  spec.train_config = perfmodel::TrainConfig{1, 1, 0};
  spec.iterations = iterations;
  spec.requested_cpus = requested;
  return spec;
}

workload::JobSpec cpu_spec(cluster::JobId id, int cores, double work) {
  workload::JobSpec spec;
  spec.id = id;
  spec.kind = workload::JobKind::kCpu;
  spec.cpu_cores = cores;
  spec.cpu_work_core_s = work;
  spec.mem_bw_gbps = 1.0;
  return spec;
}

sched::Placement on_node(cluster::NodeId node, int cpus, int gpus) {
  sched::Placement p;
  p.nodes.push_back(sched::NodePlacement{node, cpus, gpus});
  return p;
}

TEST(Engine, GpuJobFinishesAtAnalyticTime) {
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(), &probe);
  const double iters = 1000.0;
  engine.inject(gpu_spec(1, ModelId::kVgg16, iters), 0.0);
  engine.run_until(0.0);  // arrival fires
  ASSERT_EQ(probe.submitted.size(), 1u);
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 3, 1)).ok());
  engine.drain(1e7);
  TrainPerf perf;
  const double expected = iters * perf.iter_time(ModelId::kVgg16, {}, 3);
  const auto& record = engine.records().at(1);
  EXPECT_TRUE(record.completed);
  EXPECT_NEAR(record.finish_time, expected, 1e-6);
  EXPECT_EQ(record.final_cpus, 3);
  EXPECT_EQ(probe.finished, (std::vector<cluster::JobId>{1}));
  // Resources fully released.
  EXPECT_EQ(engine.cluster().used_cpus(), 0);
  EXPECT_EQ(engine.cluster().used_gpus(), 0);
}

TEST(Engine, CpuJobRateIsCoresTimesFactor) {
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(), &probe);
  engine.inject(cpu_spec(1, 4, 400.0), 0.0);
  engine.run_until(0.0);
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 4, 0)).ok());
  engine.drain(1e7);
  EXPECT_NEAR(engine.records().at(1).finish_time, 100.0, 1e-6);
}

TEST(Engine, StartRejectsInfeasibleAndUnknownJobs) {
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(), &probe);
  engine.inject(cpu_spec(1, 4, 100.0), 0.0);
  engine.run_until(0.0);
  EXPECT_FALSE(probe.env().start_job(99, on_node(0, 1, 0)).ok());
  EXPECT_FALSE(probe.env().start_job(1, on_node(0, 64, 0)).ok());
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 4, 0)).ok());
  EXPECT_FALSE(probe.env().start_job(1, on_node(1, 4, 0)).ok());
}

TEST(Engine, MultiNodeStartRollsBackOnFailure) {
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(2), &probe);
  auto spec = gpu_spec(1, ModelId::kResnet50, 100.0);
  spec.train_config = perfmodel::TrainConfig{2, 2, 0};
  engine.inject(spec, 0.0);
  engine.run_until(0.0);
  sched::Placement p;
  p.nodes.push_back(sched::NodePlacement{0, 2, 2});
  p.nodes.push_back(sched::NodePlacement{1, 64, 2});  // infeasible second leg
  EXPECT_FALSE(probe.env().start_job(1, p).ok());
  EXPECT_EQ(engine.cluster().used_cpus(), 0);
  EXPECT_EQ(engine.cluster().used_gpus(), 0);
}

TEST(Engine, ContentionSlowsGpuJob) {
  // An NLP job co-located with a HEAT hog finishes later than solo.
  TrainPerf perf;
  const double iters = 500.0;
  const auto run_with_heat = [&](bool heat) {
    ProbeScheduler probe;
    ClusterEngine engine(small_engine_config(1), &probe);
    engine.inject(gpu_spec(1, ModelId::kTransformer, iters), 0.0);
    if (heat) {
      auto hog = workload::make_heat_job(workload::HeatParams{20}, 1e9);
      hog.id = 2;
      engine.inject(hog, 0.0);
    }
    engine.run_until(0.0);
    EXPECT_TRUE(probe.env().start_job(1, on_node(0, 2, 1)).ok());
    if (heat) {
      EXPECT_TRUE(probe.env().start_job(2, on_node(0, 20, 0)).ok());
    }
    engine.run_until(1e6);
    return engine.records().at(1).finish_time;
  };
  const double solo = run_with_heat(false);
  const double loaded = run_with_heat(true);
  EXPECT_NEAR(solo, iters * perf.iter_time(ModelId::kTransformer, {}, 2),
              1e-6);
  EXPECT_GT(loaded, solo * 1.2);
}

TEST(Engine, ResizeChangesRateMidFlight) {
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(1), &probe);
  TrainPerf perf;
  const double iters = 1000.0;
  engine.inject(gpu_spec(1, ModelId::kWavenet, iters), 0.0);
  engine.run_until(0.0);
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 1, 1)).ok());
  const double t1 = perf.iter_time(ModelId::kWavenet, {}, 1);
  const double t6 = perf.iter_time(ModelId::kWavenet, {}, 6);
  // Let half the work run on 1 core, then grow to 6 cores.
  const double switch_time = (iters / 2.0) * t1;
  engine.run_until(switch_time);
  ASSERT_TRUE(probe.env().resize_job(1, 0, 6).ok());
  engine.drain(1e8);
  EXPECT_NEAR(engine.records().at(1).finish_time,
              switch_time + (iters / 2.0) * t6, 1e-5);
}

TEST(Engine, ResizeFailsWithoutFreeCores) {
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(1), &probe);
  engine.inject(cpu_spec(1, 20, 1e6), 0.0);
  engine.inject(cpu_spec(2, 8, 1e6), 0.0);
  engine.run_until(0.0);
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 20, 0)).ok());
  ASSERT_TRUE(probe.env().start_job(2, on_node(0, 8, 0)).ok());
  EXPECT_FALSE(probe.env().resize_job(1, 0, 21).ok());
  EXPECT_TRUE(probe.env().resize_job(1, 0, 10).ok());
  EXPECT_FALSE(probe.env().resize_job(99, 0, 1).ok());
}

TEST(Engine, PreemptLosesOrKeepsProgress) {
  for (bool keep : {false, true}) {
    ProbeScheduler probe;
    ClusterEngine engine(small_engine_config(1), &probe);
    engine.inject(cpu_spec(1, 2, 200.0), 0.0);  // 100 s at 2 cores
    engine.run_until(0.0);
    ASSERT_TRUE(probe.env().start_job(1, on_node(0, 2, 0)).ok());
    engine.run_until(50.0);  // half done
    ASSERT_TRUE(probe.env().preempt_job(1, keep).ok());
    EXPECT_EQ(engine.cluster().used_cpus(), 0);
    engine.run_until(60.0);
    ASSERT_TRUE(probe.env().start_job(1, on_node(0, 2, 0)).ok());
    engine.drain(1e7);
    const auto& record = engine.records().at(1);
    EXPECT_EQ(record.preempt_count, 1);
    const double expected = keep ? 60.0 + 50.0 : 60.0 + 100.0;
    EXPECT_NEAR(record.finish_time, expected, 1e-6) << "keep=" << keep;
  }
}

TEST(Engine, CheckpointRollbackResumesFromBoundary) {
  // 400 core-s on 2 cores (rate 2, 200 s solo), checkpointing every 60 s.
  // An abort at t=150 rolls back to the t=120 boundary: 30 s of progress
  // (60 core-s) is wasted, and 160 core-s remain.
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(1), &probe);
  auto spec = cpu_spec(1, 2, 400.0);
  spec.checkpoint_interval_s = 60.0;
  engine.inject(spec, 0.0);
  engine.run_until(0.0);
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 2, 0)).ok());
  engine.run_until(150.0);
  ASSERT_TRUE(probe.env().preempt_job(1, /*keep_progress=*/false).ok());
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 2, 0)).ok());
  engine.drain(1e7);
  const auto& record = engine.records().at(1);
  EXPECT_TRUE(record.completed);
  EXPECT_NEAR(record.finish_time, 150.0 + 160.0 / 2.0, 1e-6);
  EXPECT_NEAR(record.wasted_core_s, 60.0, 1e-6);
  EXPECT_NEAR(record.busy_core_s, (150.0 + 80.0) * 2.0, 1e-6);
  // A scheduler-initiated abort is a preemption, not a failure eviction.
  EXPECT_EQ(record.preempt_count, 1);
  EXPECT_EQ(record.evict_count, 0);
  EXPECT_EQ(record.restart_count, 0);
}

TEST(Engine, EvictionWithoutCheckpointWastesWholeStint) {
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(2), &probe);
  engine.inject(cpu_spec(1, 2, 200.0), 0.0);  // 100 s at 2 cores
  engine.run_until(0.0);
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 2, 0)).ok());
  engine.run_until(50.0);
  ASSERT_TRUE(engine.fail_node(0).ok());
  // All 100 core-s computed so far are lost.
  ASSERT_TRUE(probe.env().start_job(1, on_node(1, 2, 0)).ok());
  engine.drain(1e7);
  const auto& record = engine.records().at(1);
  EXPECT_NEAR(record.finish_time, 50.0 + 100.0, 1e-6);
  EXPECT_NEAR(record.wasted_core_s, 100.0, 1e-6);
  EXPECT_NEAR(record.busy_core_s, 300.0, 1e-6);
  EXPECT_EQ(record.evict_count, 1);
  EXPECT_EQ(record.restart_count, 1);  // the post-eviction start
}

TEST(Engine, CheckpointOverheadAmortizesIntoRate) {
  // Writing a checkpoint stalls 25 s out of every 100 s of wall time, so
  // the effective rate is scaled by 100/125 and 400 core-s on 2 cores take
  // 250 s instead of 200 s.
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(1), &probe);
  auto spec = cpu_spec(1, 2, 400.0);
  spec.checkpoint_interval_s = 100.0;
  spec.checkpoint_overhead_s = 25.0;
  engine.inject(spec, 0.0);
  engine.run_until(0.0);
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 2, 0)).ok());
  engine.drain(1e7);
  EXPECT_NEAR(engine.records().at(1).finish_time, 250.0, 1e-6);
}

TEST(Engine, AbandonClosesOutEvictedJob) {
  ProbeScheduler probe;
  EngineConfig cfg = small_engine_config(1);
  cfg.record_events = true;
  ClusterEngine engine(cfg, &probe);
  engine.inject(cpu_spec(1, 2, 1e6), 0.0);
  engine.run_until(0.0);
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 2, 0)).ok());
  engine.run_until(10.0);
  ASSERT_TRUE(engine.fail_node(0).ok());
  ASSERT_EQ(probe.evicted, (std::vector<cluster::JobId>{1}));
  probe.env().abandon_job(1);
  const auto& record = engine.records().at(1);
  EXPECT_TRUE(record.abandoned);
  EXPECT_FALSE(record.completed);
  EXPECT_LT(record.finish_time, 0.0);
  EXPECT_EQ(engine.abandoned_jobs(), 1u);
  EXPECT_EQ(engine.event_log().count(EventKind::kAbandon), 1u);
  EXPECT_DOUBLE_EQ(engine.metrics().counter("jobs_abandoned"), 1.0);
  // The drain condition counts the abandoned job as settled: with every
  // job finished-or-abandoned the drain returns without hitting the cap.
  engine.drain(1e7);
  EXPECT_LT(engine.sim().now(), 1e6);
}

TEST(Engine, QueueTimeAccountsPreemptions) {
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(1), &probe);
  engine.inject(cpu_spec(1, 2, 200.0), 10.0);
  engine.run_until(20.0);  // waited 10 s already
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 2, 0)).ok());
  engine.run_until(30.0);
  ASSERT_TRUE(probe.env().preempt_job(1, true).ok());
  engine.run_until(45.0);  // 15 s pending again
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 2, 0)).ok());
  engine.drain(1e7);
  const auto& record = engine.records().at(1);
  EXPECT_NEAR(record.initial_queue_time(), 10.0, 1e-9);
  EXPECT_NEAR(record.queue_time_total, 25.0, 1e-9);
}

TEST(Engine, BandwidthSampleReportsPerJobTraffic) {
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(1), &probe);
  auto hog = workload::make_heat_job(workload::HeatParams{4}, 1e9);
  hog.id = 1;
  engine.inject(hog, 0.0);
  engine.inject(gpu_spec(2, ModelId::kAlexnet, 1e9, 6), 0.0);
  engine.run_until(0.0);
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 4, 0)).ok());
  ASSERT_TRUE(probe.env().start_job(2, on_node(0, 6, 1)).ok());
  engine.run_until(1.0);
  const auto sample = probe.env().bandwidth->sample(0);
  ASSERT_EQ(sample.jobs.size(), 2u);
  EXPECT_GT(sample.total_gbps, 30.0);  // 32 (HEAT) + ~14 (Alexnet)
  double heat_bw = 0.0;
  double gpu_bw = 0.0;
  for (const auto& jb : sample.jobs) {
    (jb.is_gpu_job ? gpu_bw : heat_bw) = jb.gbps;
  }
  EXPECT_NEAR(heat_bw, 32.0, 1.0);
  EXPECT_NEAR(gpu_bw, 14.0, 1.5);
}

TEST(Engine, BandwidthSampleExcludesJobsFinishedSinceRecompute) {
  // A job that finishes between a node recompute and a probe must not
  // appear in the sample — neither as a row nor inside total_gbps. Checked
  // in both engine modes: total_gbps is summed from the surviving rows, not
  // copied from the (possibly stale) contention report.
  for (bool incremental : {true, false}) {
    SCOPED_TRACE(incremental ? "incremental" : "eager");
    ProbeScheduler probe;
    EngineConfig cfg = small_engine_config(1);
    cfg.incremental_recompute = incremental;
    ClusterEngine engine(cfg, &probe);
    auto shortjob = workload::make_heat_job(workload::HeatParams{4}, 100.0);
    shortjob.id = 1;  // 25 s at 4 cores
    auto longjob = workload::make_heat_job(workload::HeatParams{4}, 4000.0);
    longjob.id = 2;
    engine.inject(shortjob, 0.0);
    engine.inject(longjob, 0.0);
    engine.run_until(0.0);
    ASSERT_TRUE(probe.env().start_job(1, on_node(0, 4, 0)).ok());
    ASSERT_TRUE(probe.env().start_job(2, on_node(0, 4, 0)).ok());

    // Probe exactly at the short job's finish instant, then after it.
    for (double t : {25.0, 30.0}) {
      engine.run_until(t);
      const auto sample = probe.env().bandwidth->sample(0);
      ASSERT_EQ(sample.jobs.size(), 1u) << "t=" << t;
      EXPECT_EQ(sample.jobs[0].job, 2u);
      EXPECT_DOUBLE_EQ(sample.total_gbps, sample.jobs[0].gbps);
    }
    EXPECT_TRUE(engine.records().at(1).completed);
  }
}

TEST(Engine, HotPathCountersPublished) {
  ProbeScheduler probe;
  EngineConfig cfg = small_engine_config(1);
  cfg.metrics_period_s = 10.0;
  ClusterEngine engine(cfg, &probe);
  engine.inject(gpu_spec(1, ModelId::kVgg16, 1e9), 0.0);
  engine.inject(gpu_spec(2, ModelId::kResnet50, 1e9, 4), 0.0);
  engine.run_until(0.0);
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 3, 1)).ok());
  ASSERT_TRUE(probe.env().start_job(2, on_node(0, 4, 1)).ok());
  engine.run_until(35.0);

  const auto& stats = engine.engine_stats();
  EXPECT_GT(stats.node_recomputes, 0u);
  EXPECT_GT(stats.rate_updates, 0u);
  EXPECT_GT(stats.dirty_flushes, 0u);
  EXPECT_GT(engine.perf().cache_stats().hits, 0u);

  // Republished as metric counters on every metrics tick.
  EXPECT_GT(engine.metrics().counter("engine_node_recomputes"), 0.0);
  EXPECT_GT(engine.metrics().counter("engine_rate_updates"), 0.0);
  EXPECT_GT(engine.metrics().counter("perf_cache_hits"), 0.0);
  EXPECT_EQ(engine.metrics().counter("engine_node_recomputes"),
            static_cast<double>(stats.node_recomputes));
}

TEST(Engine, GpuUtilizationProbe) {
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(1), &probe);
  engine.inject(gpu_spec(1, ModelId::kVgg16, 1e9), 0.0);
  engine.run_until(0.0);
  EXPECT_LT(probe.env().gpu_util->gpu_utilization(1), 0.0);  // not running
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 3, 1)).ok());
  engine.run_until(1.0);
  TrainPerf perf;
  EXPECT_NEAR(probe.env().gpu_util->gpu_utilization(1),
              perf.gpu_utilization(ModelId::kVgg16, {}, 3), 1e-9);
  EXPECT_NEAR(engine.expected_gpu_utilization(1),
              perf.gpu_utilization(ModelId::kVgg16, {}, 3), 1e-9);
}

TEST(Engine, MbaCapSlowsCpuJobAndEngineAppliesIt) {
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(1), &probe);
  auto hog = workload::make_heat_job(workload::HeatParams{8}, 6400.0);
  hog.id = 1;  // 64 GB/s demand, 800 s at 8 cores unthrottled
  engine.inject(hog, 0.0);
  engine.run_until(0.0);
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 8, 0)).ok());
  ASSERT_TRUE(probe.env().set_bw_cap(0, 1, 32.0).ok());
  engine.drain(1e7);
  // Amdahl with f=0.9, bandwidth ratio 2 -> rate factor 1/1.9.
  EXPECT_NEAR(engine.records().at(1).finish_time, 800.0 * 1.9, 1e-6);
}

TEST(Engine, MetricsSampledPeriodically) {
  ProbeScheduler probe;
  EngineConfig cfg = small_engine_config(1);
  cfg.metrics_period_s = 10.0;
  ClusterEngine engine(cfg, &probe);
  engine.inject(gpu_spec(1, ModelId::kVgg16, 1e9), 0.0);
  engine.run_until(0.0);
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 3, 1)).ok());
  engine.run_until(35.0);
  const auto& active = engine.metrics().series("gpu_active_rate");
  ASSERT_EQ(active.size(), 3u);  // t = 10, 20, 30
  EXPECT_DOUBLE_EQ(active.at(0).value, 1.0 / 5.0);
  const auto& util = engine.metrics().series("gpu_util_active");
  TrainPerf perf;
  EXPECT_NEAR(util.at(0).value,
              perf.gpu_utilization(ModelId::kVgg16, {}, 3), 1e-9);
}

TEST(Engine, FragmentationMetricUsesPendingDemand) {
  ProbeScheduler probe;
  EngineConfig cfg = small_engine_config(1);
  cfg.metrics_period_s = 10.0;
  ClusterEngine engine(cfg, &probe);
  engine.inject(cpu_spec(1, 27, 1e9), 0.0);
  engine.run_until(0.0);
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 27, 0)).ok());
  // 5 idle GPUs, 1 free core; a pending job needing 2 cores cannot fit.
  probe.demand = sched::Scheduler::PendingGpuDemand{1, 2};
  engine.run_until(10.0);
  EXPECT_DOUBLE_EQ(engine.metrics().series("gpu_frag_rate").at(0).value, 1.0);
  // Without pending demand, idle GPUs are not fragmentation.
  probe.demand.reset();
  engine.run_until(20.0);
  EXPECT_DOUBLE_EQ(engine.metrics().series("gpu_frag_rate").at(1).value, 0.0);
}

TEST(Engine, NodeFailureEvictsResidentJobs) {
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(2), &probe);
  engine.inject(cpu_spec(1, 2, 200.0), 0.0);
  engine.inject(gpu_spec(2, ModelId::kVgg16, 1e6), 0.0);
  engine.run_until(0.0);
  ASSERT_TRUE(probe.env().start_job(1, on_node(0, 2, 0)).ok());
  ASSERT_TRUE(probe.env().start_job(2, on_node(1, 3, 1)).ok());
  engine.run_until(10.0);

  ASSERT_TRUE(engine.fail_node(0).ok());
  EXPECT_EQ(probe.evicted, (std::vector<cluster::JobId>{1}));
  EXPECT_TRUE(engine.cluster().node(0).failed());
  EXPECT_EQ(engine.cluster().node(0).free_cpus(), 0);
  EXPECT_FALSE(engine.cluster().node(0).can_fit(1, 0));
  EXPECT_EQ(engine.node_failures(), 1);
  // The survivor on node 1 is untouched.
  EXPECT_TRUE(engine.cluster().node(1).hosts(2));
  // Restarting on the failed node is rejected; a healthy node works, and
  // the evicted job lost its progress.
  EXPECT_FALSE(probe.env().start_job(1, on_node(0, 2, 0)).ok());
  ASSERT_TRUE(probe.env().start_job(1, on_node(1, 2, 0)).ok());
  engine.run_until(200.0);
  EXPECT_NEAR(engine.records().at(1).finish_time, 10.0 + 100.0, 1e-6);

  // Double-fail and bad-recover are rejected; recovery reopens the node.
  EXPECT_FALSE(engine.fail_node(0).ok());
  EXPECT_FALSE(engine.recover_node(1).ok());
  ASSERT_TRUE(engine.recover_node(0).ok());
  EXPECT_TRUE(engine.cluster().node(0).can_fit(1, 0));
}

TEST(Engine, MultiNodeJobDiesWhenOneLegFails) {
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(2), &probe);
  auto spec = gpu_spec(1, ModelId::kDeepSpeech, 1e6);
  spec.train_config = perfmodel::TrainConfig{2, 2, 0};
  engine.inject(spec, 0.0);
  engine.run_until(0.0);
  sched::Placement p;
  p.nodes.push_back(sched::NodePlacement{0, 2, 2});
  p.nodes.push_back(sched::NodePlacement{1, 2, 2});
  ASSERT_TRUE(probe.env().start_job(1, p).ok());
  engine.run_until(5.0);
  ASSERT_TRUE(engine.fail_node(1).ok());
  EXPECT_EQ(probe.evicted, (std::vector<cluster::JobId>{1}));
  // Both legs released, including the healthy one.
  EXPECT_FALSE(engine.cluster().node(0).hosts(1));
  EXPECT_EQ(engine.cluster().node(0).used_cpus(), 0);
}

TEST(Engine, ScheduledOutageFailsAndRecovers) {
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(1), &probe);
  engine.schedule_node_outage(0, 100.0, 50.0);
  engine.run_until(120.0);
  EXPECT_TRUE(engine.cluster().node(0).failed());
  engine.run_until(200.0);
  EXPECT_FALSE(engine.cluster().node(0).failed());
  EXPECT_EQ(engine.node_failures(), 1);
  EXPECT_DOUBLE_EQ(engine.metrics().counter("node_failures"), 1.0);
}

TEST(Engine, RejectsDuplicateInjection) {
  ProbeScheduler probe;
  ClusterEngine engine(small_engine_config(1), &probe);
  engine.inject(cpu_spec(1, 1, 10.0), 0.0);
  EXPECT_DEATH(engine.inject(cpu_spec(1, 1, 10.0), 1.0), "duplicate");
}

}  // namespace
}  // namespace coda::sim
