// Tests for the snapshot subsystem (src/state): serde primitives, the
// snapshot container, durable file plumbing, and the headline property —
// a session snapshotted at ANY event boundary and restored must finish
// with the exact report bytes of the session that was never interrupted.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "perfmodel/contention.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "sim/report_io.h"
#include "state/serde.h"
#include "state/snapshot.h"
#include "util/rng.h"
#include "util/timeseries.h"
#include "workload/trace_gen.h"

namespace coda::state {
namespace {

// ----------------------------------------------------------------- serde

TEST(Serde, WriterReaderRoundTripsEveryValueKind) {
  Writer w;
  const double ugly = -0x1.91eb851eb851fp+1;  // no finite decimal expansion
  w.line("mixed", ugly, uint64_t{0xFFFFFFFFFFFFFFF0ull}, int64_t{-42}, true,
         std::string_view("token"));
  w.line("blob_bytes", size_t{5});
  w.raw("ab\ncd");
  w.line("tail", 0.0);

  Reader r(w.text());
  ASSERT_TRUE(r.expect("mixed"));
  const double back = r.f64();
  EXPECT_EQ(std::memcmp(&back, &ugly, sizeof(double)), 0);  // bit-exact
  EXPECT_EQ(r.u64(), 0xFFFFFFFFFFFFFFF0ull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.b());
  EXPECT_EQ(r.token(), "token");
  ASSERT_TRUE(r.expect("blob_bytes"));
  const uint64_t n = r.u64();
  EXPECT_EQ(r.bytes(n), "ab\ncd");  // raw blob may contain newlines
  ASSERT_TRUE(r.expect("tail"));
  EXPECT_EQ(r.f64(), 0.0);
  EXPECT_TRUE(r.ok());
}

TEST(Serde, ReaderPoisonsOnMismatchAndStaysPoisoned) {
  Writer w;
  w.line("alpha", 1.0);
  w.line("beta", 2.0);
  Reader r(w.text());
  EXPECT_FALSE(r.expect("gamma"));  // wrong key
  EXPECT_FALSE(r.ok());
  // Every later getter is a zero-value no-op; loops guarded on ok() stop.
  EXPECT_EQ(r.f64(), 0.0);
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.expect("beta"));
  EXPECT_FALSE(r.status().ok());
}

TEST(Serde, ReaderPoisonsOnMissingTokenAndTruncatedBlob) {
  {
    Reader r("solo 1\n");
    ASSERT_TRUE(r.expect("solo"));
    EXPECT_EQ(r.u64(), 1u);
    EXPECT_EQ(r.u64(), 0u);  // no second token on the line
    EXPECT_FALSE(r.ok());
  }
  {
    Reader r("blob 10\nshort\n");
    ASSERT_TRUE(r.expect("blob"));
    const uint64_t n = r.u64();
    EXPECT_EQ(n, 10u);
    r.bytes(n);  // only 6 bytes remain
    EXPECT_FALSE(r.ok());
  }
  {
    Reader r("num abc\n");
    ASSERT_TRUE(r.expect("num"));
    r.f64();
    EXPECT_FALSE(r.ok());
  }
}

// ------------------------------------------------------------- container

TEST(Snapshot, ParseRejectsCorruptContainers) {
  EXPECT_FALSE(parse_snapshot("").ok());
  EXPECT_FALSE(parse_snapshot("NOT_A_SNAPSHOT 1\n").ok());
  // Right magic, wrong version.
  EXPECT_FALSE(parse_snapshot("CODA_SNAPSHOT 99\n").ok());
  // Truncated embedded session blob.
  EXPECT_FALSE(parse_snapshot("CODA_SNAPSHOT 1\n"
                              "meta 1 0x1p+0 0 0 0\n"
                              "session_bytes 100\nshort")
                   .ok());
}

TEST(Snapshot, FindLatestSnapshotPicksMaxSequence) {
  const std::string stem =
      "/tmp/coda_state_test_latest_" +
      std::to_string(static_cast<long long>(::getpid())) + ".journal.SNAP.";
  EXPECT_EQ(find_latest_snapshot(stem).error().code,
            util::ErrorCode::kNotFound);
  ASSERT_TRUE(write_file_durable(stem + "2", "two").ok());
  ASSERT_TRUE(write_file_durable(stem + "10", "ten").ok());
  ASSERT_TRUE(write_file_durable(stem + "9", "nine").ok());
  // Non-numeric suffixes are not snapshots and must be ignored.
  ASSERT_TRUE(write_file_durable(stem + "10.tmp", "junk").ok());
  auto latest = find_latest_snapshot(stem);
  ASSERT_TRUE(latest.ok()) << latest.error().message;
  EXPECT_EQ(*latest, stem + "10");  // numeric, not lexicographic, order
  for (const char* suffix : {"2", "10", "9", "10.tmp"}) {
    std::remove((stem + suffix).c_str());
  }
}

TEST(Snapshot, WriteFileDurableReplacesAtomically) {
  const std::string path =
      "/tmp/coda_state_test_durable_" +
      std::to_string(static_cast<long long>(::getpid()));
  ASSERT_TRUE(write_file_durable(path, "first contents").ok());
  ASSERT_TRUE(write_file_durable(path, "second").ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "second");
  // No temp sibling left behind.
  struct stat st {};
  EXPECT_NE(::stat((path + ".tmp").c_str(), &st), 0);
  std::remove(path.c_str());
}

// ------------------------------------------------------ sizeof tripwires
//
// save_state/load_state enumerate these structs field by field. Growing
// one without teaching the serializer silently drops the new field from
// snapshots — restored sessions would diverge. If a size below changes,
// update sim/engine_state.cpp (and the scheduler/state serializers) AND
// this expectation in the same commit.

TEST(Snapshot, SerializedStructSizeTripwires) {
  EXPECT_EQ(sizeof(sim::JobRecord), 224u);
  EXPECT_EQ(sizeof(sim::ClusterEngine::EngineStats), 72u);
  EXPECT_EQ(sizeof(perfmodel::ResourceFootprint), 80u);
  EXPECT_EQ(sizeof(perfmodel::ContentionFactors), 16u);
  EXPECT_EQ(sizeof(perfmodel::JobContention), 40u);
  EXPECT_EQ(sizeof(perfmodel::NodeContentionReport), 56u);
  EXPECT_EQ(sizeof(util::TimePoint), 16u);
  EXPECT_EQ(sizeof(SnapshotMeta), 40u);
}

// ----------------------------------------- snapshot/restore determinism

struct OfflineSession {
  sim::PolicyScheduler scheduler;
  std::unique_ptr<sim::ClusterEngine> engine;
};

OfflineSession start_session(sim::Policy policy,
                             const sim::ExperimentConfig& config,
                             const std::vector<workload::JobSpec>& trace) {
  OfflineSession s;
  s.scheduler = sim::make_policy_scheduler(policy, config);
  s.engine = std::make_unique<sim::ClusterEngine>(config.engine,
                                                  s.scheduler.scheduler.get());
  s.engine->load_trace(trace);
  sim::schedule_failures(s.engine.get(), config, config.horizon_s);
  return s;
}

std::string finish_and_report(sim::Policy policy,
                              const sim::ExperimentConfig& config,
                              size_t submitted, sim::PolicyScheduler& ps,
                              sim::ClusterEngine& engine) {
  engine.run_until(config.horizon_s);
  engine.drain(config.horizon_s + config.drain_slack_s);
  return sim::serialize_report(
      sim::build_report(policy, engine, submitted, config.horizon_s,
                        ps.coda));
}

// Snapshot `session` at its current clock and rebuild it from the blob.
util::Result<RestoredSession> snapshot_and_restore(
    sim::Policy policy, const sim::ExperimentConfig& config,
    const std::vector<workload::JobSpec>& trace,
    const OfflineSession& session) {
  SnapshotMeta meta;
  meta.seq = 1;
  meta.virtual_time = session.engine->sim().now();
  meta.dispatched = session.engine->sim().dispatched();
  auto blob = capture_snapshot(meta, "offline", *session.engine,
                               *session.scheduler.scheduler);
  if (!blob.ok()) {
    return blob.error();
  }
  auto parsed = parse_snapshot(*blob);
  if (!parsed.ok()) {
    return parsed.error();
  }
  EXPECT_EQ(parsed->session_text, "offline");
  return restore_session(*parsed, policy, config, trace);
}

TEST(Snapshot, RestoreAtRandomCutsReproducesReportBytes) {
  // The subsystem's headline property, randomized: pick a session with
  // every replay-relevant mechanism enabled at random (retry backoff,
  // Poisson node outages, utilization noise, any policy), cut it at a
  // random virtual time, snapshot/restore, and finish both twins. The
  // serialized reports — every counter, time series and per-job record —
  // must match byte for byte.
  util::Rng rng(0xC0DA5EED);
  for (int iter = 0; iter < 6; ++iter) {
    auto trace_cfg = sim::standard_week_trace(1000 + iter);
    trace_cfg.duration_s = 2.0 * 3600.0;
    trace_cfg.cpu_jobs = static_cast<int>(rng.uniform_int(20, 50));
    trace_cfg.gpu_jobs = static_cast<int>(rng.uniform_int(10, 30));
    const auto trace = workload::TraceGenerator(trace_cfg).generate();

    const auto policy = static_cast<sim::Policy>(rng.uniform_int(0, 2));
    sim::ExperimentConfig config;
    config.horizon_s = trace_cfg.duration_s;
    config.drain_slack_s = 86400.0;
    config.engine.cluster.node_count = static_cast<int>(rng.uniform_int(4, 10));
    config.engine.util_noise_stddev = rng.bernoulli(0.5) ? 0.05 : 0.0;
    config.engine.noise_seed = rng.next_u64();
    config.engine.record_events = rng.bernoulli(0.5);
    config.retry.enabled = rng.bernoulli(0.7);
    config.retry.backoff_base_s = 30.0;
    config.retry.max_retries = 3;
    if (rng.bernoulli(0.7)) {
      config.failures.node_mtbf_s = 1800.0;
      config.failures.outage_s = 300.0;
      config.failures.seed = rng.next_u64();
    }

    // Twin A runs straight through; twin B is cut mid-flight.
    OfflineSession uninterrupted = start_session(policy, config, trace);
    OfflineSession cut = start_session(policy, config, trace);
    const double cut_vt = rng.uniform(0.0, config.horizon_s);
    cut.engine->run_until(cut_vt);

    auto restored = snapshot_and_restore(policy, config, trace, cut);
    ASSERT_TRUE(restored.ok())
        << "iter " << iter << " cut_vt " << cut_vt << ": "
        << restored.error().message;
    EXPECT_EQ(restored->engine->sim().now(), cut.engine->sim().now());
    EXPECT_EQ(restored->engine->sim().dispatched(),
              cut.engine->sim().dispatched());

    const std::string want = finish_and_report(
        policy, config, trace.size(), uninterrupted.scheduler,
        *uninterrupted.engine);
    const std::string got =
        finish_and_report(policy, config, trace.size(), restored->scheduler,
                          *restored->engine);
    EXPECT_EQ(got, want) << "iter " << iter << " policy "
                         << sim::to_string(policy) << " cut_vt " << cut_vt;
  }
}

TEST(Snapshot, RestoreDuringDrainReproducesReportBytes) {
  // Cut *past* the horizon, mid-drain: retries, backoff timers and finish
  // events are in flight with no new arrivals. The restored twin must
  // still drain to identical bytes.
  auto trace_cfg = sim::standard_week_trace(77);
  trace_cfg.duration_s = 2.0 * 3600.0;
  trace_cfg.cpu_jobs = 30;
  trace_cfg.gpu_jobs = 15;
  const auto trace = workload::TraceGenerator(trace_cfg).generate();
  sim::ExperimentConfig config;
  config.horizon_s = trace_cfg.duration_s;
  config.drain_slack_s = 86400.0;
  config.engine.cluster.node_count = 6;
  config.retry.enabled = true;
  config.failures.node_mtbf_s = 1800.0;
  config.failures.outage_s = 300.0;

  OfflineSession uninterrupted = start_session(sim::Policy::kCoda, config,
                                               trace);
  OfflineSession cut = start_session(sim::Policy::kCoda, config, trace);
  // Both twins run the same 600s past the horizon (periodics keep ticking
  // under run_until; only drain() stops with the last job) — the cut twin
  // is then snapshotted inside that window.
  uninterrupted.engine->run_until(config.horizon_s + 600.0);
  cut.engine->run_until(config.horizon_s + 600.0);

  auto restored =
      snapshot_and_restore(sim::Policy::kCoda, config, trace, cut);
  ASSERT_TRUE(restored.ok()) << restored.error().message;

  const std::string want = finish_and_report(
      sim::Policy::kCoda, config, trace.size(), uninterrupted.scheduler,
      *uninterrupted.engine);
  const std::string got = finish_and_report(
      sim::Policy::kCoda, config, trace.size(), restored->scheduler,
      *restored->engine);
  EXPECT_EQ(got, want);
}

TEST(Snapshot, RestoreThenLiveInjectionMatchesDirectInjection) {
  // The service's restore path injects the journal tail into a restored
  // engine. Equivalent offline: injecting a job after restore must match
  // injecting the same job into the never-interrupted twin.
  auto trace_cfg = sim::standard_week_trace(7);
  trace_cfg.duration_s = 3600.0;
  trace_cfg.cpu_jobs = 20;
  trace_cfg.gpu_jobs = 10;
  const auto trace = workload::TraceGenerator(trace_cfg).generate();
  sim::ExperimentConfig config;
  config.horizon_s = trace_cfg.duration_s;
  config.drain_slack_s = 86400.0;
  config.engine.cluster.node_count = 4;

  workload::JobSpec extra;
  extra.id = 1000000;
  extra.kind = workload::JobKind::kCpu;
  extra.cpu_cores = 3;
  extra.cpu_work_core_s = 900.0;
  extra.mem_bw_gbps = 1.0;
  extra.llc_mb = 2.0;
  const double inject_t = 1800.0;
  extra.submit_time = inject_t;

  auto with_extra = trace;
  with_extra.push_back(extra);

  OfflineSession uninterrupted =
      start_session(sim::Policy::kDrf, config, trace);
  OfflineSession cut = start_session(sim::Policy::kDrf, config, trace);
  const double cut_vt = 1200.0;
  uninterrupted.engine->run_until(cut_vt);
  cut.engine->run_until(cut_vt);

  // Restore against the trace that includes the future injection — the
  // service builds this list from the embedded journal + tail.
  auto restored =
      snapshot_and_restore(sim::Policy::kDrf, config, with_extra, cut);
  ASSERT_TRUE(restored.ok()) << restored.error().message;

  uninterrupted.engine->inject(extra, inject_t);
  restored->engine->inject(extra, inject_t);

  const std::string want = finish_and_report(
      sim::Policy::kDrf, config, trace.size() + 1, uninterrupted.scheduler,
      *uninterrupted.engine);
  const std::string got = finish_and_report(
      sim::Policy::kDrf, config, trace.size() + 1, restored->scheduler,
      *restored->engine);
  EXPECT_EQ(got, want);
}

TEST(Snapshot, RestoreRejectsUnknownJobIds) {
  // A snapshot referencing a job id absent from the supplied trace means
  // the embedded session and the state section disagree — fail loudly
  // instead of restoring a half-session.
  auto trace_cfg = sim::standard_week_trace(3);
  trace_cfg.duration_s = 3600.0;
  trace_cfg.cpu_jobs = 10;
  trace_cfg.gpu_jobs = 5;
  const auto trace = workload::TraceGenerator(trace_cfg).generate();
  sim::ExperimentConfig config;
  config.horizon_s = trace_cfg.duration_s;
  config.engine.cluster.node_count = 4;

  OfflineSession session = start_session(sim::Policy::kFifo, config, trace);
  session.engine->run_until(600.0);

  SnapshotMeta meta;
  meta.seq = 1;
  meta.virtual_time = session.engine->sim().now();
  meta.dispatched = session.engine->sim().dispatched();
  auto blob = capture_snapshot(meta, "", *session.engine,
                               *session.scheduler.scheduler);
  ASSERT_TRUE(blob.ok()) << blob.error().message;
  auto parsed = parse_snapshot(*blob);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;

  const std::vector<workload::JobSpec> empty_trace;
  auto restored =
      restore_session(*parsed, sim::Policy::kFifo, config, empty_trace);
  EXPECT_FALSE(restored.ok());
}

}  // namespace
}  // namespace coda::state
