// Tests for the node contention model, including the Fig. 7 paper facts
// (HEAT antagonist pressure on each model).
#include <gtest/gtest.h>

#include "perfmodel/contention.h"
#include "workload/heat.h"

namespace coda::perfmodel {
namespace {

cluster::NodeConfig node_config() { return cluster::NodeConfig{}; }

ResourceFootprint gpu_footprint(ModelId m, int gpus = 1) {
  TrainPerf perf;
  TrainConfig cfg{1, gpus, 0};
  const auto& p = model_params(m);
  ResourceFootprint fp;
  fp.job = static_cast<cluster::JobId>(m) + 1;
  fp.is_gpu_job = true;
  fp.mem_bw_gbps = perf.mem_bw_demand_gbps(m, cfg, perf.optimal_cores(m, cfg));
  fp.pcie_gbps = perf.pcie_demand_gbps(m, cfg, perf.optimal_cores(m, cfg));
  fp.llc_mb = perf.llc_demand_mb(m, cfg);
  fp.bw_latency_sensitivity = p.bw_latency_sensitivity;
  fp.bw_share_dependence = p.bw_share_dependence;
  fp.llc_sensitivity = p.llc_sensitivity;
  return fp;
}

ResourceFootprint heat_footprint(int threads) {
  const auto spec =
      workload::make_heat_job(workload::HeatParams{threads}, 1000.0);
  ResourceFootprint fp;
  fp.job = 999;
  fp.is_gpu_job = false;
  fp.mem_bw_gbps = spec.mem_bw_gbps;
  fp.llc_mb = spec.llc_mb;
  fp.bw_bound_fraction = spec.bw_bound_fraction;
  return fp;
}

// Performance of model m co-located with HEAT(threads), normalized to solo.
double normalized_perf(ModelId m, int heat_threads) {
  NodeContentionModel model;
  TrainPerf perf;
  TrainConfig cfg{1, 1, 0};
  const int opt = perf.optimal_cores(m, cfg);
  auto report = model.resolve(
      node_config(), {gpu_footprint(m), heat_footprint(heat_threads)});
  const double solo = perf.throughput(m, cfg, opt);
  const double loaded =
      perf.throughput(m, cfg, opt, report.jobs[0].factors);
  return loaded / solo;
}

TEST(NodeContentionModel, NoContentionWhenUnderCapacity) {
  NodeContentionModel model;
  auto report = model.resolve(
      node_config(), {gpu_footprint(ModelId::kVgg16), heat_footprint(2)});
  EXPECT_LT(report.mem_pressure, 0.75);
  for (const auto& jc : report.jobs) {
    EXPECT_DOUBLE_EQ(jc.factors.prep_inflation, 1.0);
    EXPECT_DOUBLE_EQ(jc.factors.gpu_inflation, 1.0);
  }
  // Achieved bandwidth equals demand below capacity.
  EXPECT_NEAR(report.jobs[1].achieved_bw_gbps, heat_footprint(2).mem_bw_gbps,
              1e-9);
}

TEST(NodeContentionModel, ProportionalSharingAboveCapacity) {
  NodeContentionModel model;
  auto big = heat_footprint(28);  // 224 GB/s demand vs 150 capacity
  auto report = model.resolve(node_config(), {big, big});
  EXPECT_GT(report.mem_pressure, 1.0);
  const double total_achieved =
      report.jobs[0].achieved_bw_gbps + report.jobs[1].achieved_bw_gbps;
  EXPECT_NEAR(total_achieved, node_config().mem_bw_gbps, 1e-6);
  EXPECT_NEAR(report.jobs[0].achieved_bw_gbps,
              report.jobs[1].achieved_bw_gbps, 1e-9);
}

TEST(NodeContentionModel, MbaCapLimitsDemand) {
  NodeContentionModel model;
  auto capped = heat_footprint(28);
  capped.mem_bw_cap_gbps = 30.0;
  auto report = model.resolve(node_config(), {capped});
  EXPECT_NEAR(report.total_demand_gbps, 30.0, 1e-9);
  EXPECT_NEAR(report.jobs[0].achieved_bw_gbps, 30.0, 1e-9);
  // The capped job slows down per its bandwidth-bound fraction (Amdahl).
  EXPECT_LT(report.jobs[0].cpu_rate_factor, 1.0);
}

TEST(NodeContentionModel, CpuRateFactorFollowsAmdahl) {
  NodeContentionModel model;
  auto fp = heat_footprint(10);  // 80 GB/s
  fp.mem_bw_cap_gbps = 40.0;     // halved
  auto report = model.resolve(node_config(), {fp});
  // f = 0.9, ratio = 2 -> rate = 1 / (0.1 + 0.9*2) = 0.526
  EXPECT_NEAR(report.jobs[0].cpu_rate_factor, 1.0 / (0.1 + 1.8), 1e-6);
}

// ---- Fig. 7 paper facts ----

TEST(Fig7, NlpModelsLoseAtLeastHalfUnderHeavyPressure) {
  EXPECT_LE(normalized_perf(ModelId::kBiAttFlow, 28), 0.62);
  EXPECT_LE(normalized_perf(ModelId::kTransformer, 28), 0.62);
}

TEST(Fig7, ComplexCvModelsAreInsensitive) {
  EXPECT_GE(normalized_perf(ModelId::kVgg16, 28), 0.90);
  EXPECT_GE(normalized_perf(ModelId::kInceptionV3, 28), 0.90);
  EXPECT_GE(normalized_perf(ModelId::kResnet50, 28), 0.90);
}

TEST(Fig7, AlexnetIsBandwidthSensitive) {
  EXPECT_LE(normalized_perf(ModelId::kAlexnet, 28), 0.85);
}

TEST(Fig7, DeepSpeechMoreSensitiveThanWavenet) {
  EXPECT_LT(normalized_perf(ModelId::kDeepSpeech, 28),
            normalized_perf(ModelId::kWavenet, 28));
}

TEST(Fig7, PressureGrowsWithHeatThreads) {
  double prev = 1.0;
  for (int threads : {4, 12, 20, 28}) {
    const double perf = normalized_perf(ModelId::kTransformer, threads);
    EXPECT_LE(perf, prev + 1e-9);
    prev = perf;
  }
}

TEST(Fig7, LlcPressureAloneBarelyMatters) {
  // A cache-hungry but bandwidth-light antagonist: all models insensitive.
  NodeContentionModel model;
  ResourceFootprint cache_hog;
  cache_hog.job = 77;
  cache_hog.is_gpu_job = false;
  cache_hog.mem_bw_gbps = 1.0;
  cache_hog.llc_mb = 80.0;  // well past the 38.5 MB LLC
  TrainPerf perf;
  for (ModelId m : kAllModels) {
    auto report =
        model.resolve(node_config(), {gpu_footprint(m), cache_hog});
    const TrainConfig cfg{1, 1, 0};
    const int opt = perf.optimal_cores(m, cfg);
    const double ratio = perf.throughput(m, cfg, opt, report.jobs[0].factors) /
                         perf.throughput(m, cfg, opt);
    EXPECT_GE(ratio, 0.95) << to_string(m);
  }
}

// Sec. IV-C3: co-locating two high-PCIe models (Alexnet/Resnet50) costs
// 5-10%; low-PCIe pairs are free.
TEST(Sec4C3, PcieColocationPenalties) {
  NodeContentionModel model;
  TrainPerf perf;
  const TrainConfig cfg{1, 1, 0};

  const auto pair_perf = [&](ModelId a, ModelId b) {
    auto report =
        model.resolve(node_config(), {gpu_footprint(a), gpu_footprint(b)});
    const int opt = perf.optimal_cores(a, cfg);
    return perf.throughput(a, cfg, opt, report.jobs[0].factors) /
           perf.throughput(a, cfg, opt);
  };

  // Two heavy PCIe consumers: noticeable 5-10% degradation.
  const double heavy = pair_perf(ModelId::kAlexnet, ModelId::kResnet50);
  EXPECT_LE(heavy, 0.97);
  EXPECT_GE(heavy, 0.88);
  // NLP + speech: no degradation.
  EXPECT_GE(pair_perf(ModelId::kTransformer, ModelId::kDeepSpeech), 0.995);
  // Heavy + light: light job unaffected by PCIe (below knee).
  EXPECT_GE(pair_perf(ModelId::kWavenet, ModelId::kVgg16), 0.99);
}

// Parameterized invariants of the contention model, per model.
class ContentionInvariants : public testing::TestWithParam<ModelId> {};

INSTANTIATE_TEST_SUITE_P(AllModels, ContentionInvariants,
                         testing::ValuesIn(kAllModels),
                         [](const testing::TestParamInfo<ModelId>& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(ContentionInvariants, AchievedBandwidthNeverExceedsDemand) {
  NodeContentionModel model;
  for (int threads : {0, 8, 16, 24, 28}) {
    std::vector<ResourceFootprint> fps = {gpu_footprint(GetParam())};
    if (threads > 0) {
      fps.push_back(heat_footprint(threads));
    }
    const auto report = model.resolve(node_config(), fps);
    double total = 0.0;
    for (size_t i = 0; i < fps.size(); ++i) {
      EXPECT_LE(report.jobs[i].achieved_bw_gbps,
                fps[i].mem_bw_gbps + 1e-9);
      EXPECT_GE(report.jobs[i].achieved_bw_gbps, 0.0);
      total += report.jobs[i].achieved_bw_gbps;
    }
    EXPECT_LE(total, node_config().mem_bw_gbps + 1e-6);
  }
}

TEST_P(ContentionInvariants, FactorsAreSlowdownsNeverSpeedups) {
  NodeContentionModel model;
  const auto report = model.resolve(
      node_config(), {gpu_footprint(GetParam()), heat_footprint(28)});
  EXPECT_GE(report.jobs[0].factors.prep_inflation, 1.0);
  EXPECT_GE(report.jobs[0].factors.gpu_inflation, 1.0);
  EXPECT_LE(report.jobs[1].cpu_rate_factor, 1.0 + 1e-12);
  EXPECT_GT(report.jobs[1].cpu_rate_factor, 0.0);
}

TEST_P(ContentionInvariants, MorePressureNeverHelps) {
  NodeContentionModel model;
  double prev_inflation = 0.0;
  for (int threads : {4, 12, 20, 28}) {
    const auto report = model.resolve(
        node_config(), {gpu_footprint(GetParam()), heat_footprint(threads)});
    EXPECT_GE(report.jobs[0].factors.prep_inflation, prev_inflation - 1e-12);
    prev_inflation = report.jobs[0].factors.prep_inflation;
  }
}

TEST(NodeContentionModel, EmptyNodeResolvesCleanly) {
  NodeContentionModel model;
  const auto report = model.resolve(node_config(), {});
  EXPECT_DOUBLE_EQ(report.total_demand_gbps, 0.0);
  EXPECT_DOUBLE_EQ(report.mem_pressure, 0.0);
  EXPECT_TRUE(report.jobs.empty());
}

TEST(NodeContentionModel, ReportOrderMatchesInputOrder) {
  NodeContentionModel model;
  std::vector<ResourceFootprint> fps;
  for (cluster::JobId id = 10; id < 15; ++id) {
    auto fp = heat_footprint(2);
    fp.job = id;
    fps.push_back(fp);
  }
  const auto report = model.resolve(node_config(), fps);
  ASSERT_EQ(report.jobs.size(), fps.size());
  for (size_t i = 0; i < fps.size(); ++i) {
    EXPECT_EQ(report.jobs[i].job, fps[i].job);
  }
}

TEST(Heat, JobSpecScalesWithThreads) {
  workload::HeatParams params;
  params.threads = 4;
  const auto spec = workload::make_heat_job(params, 400.0);
  EXPECT_EQ(spec.cpu_cores, 4);
  EXPECT_DOUBLE_EQ(spec.mem_bw_gbps, 32.0);
  EXPECT_DOUBLE_EQ(spec.cpu_work_core_s, 400.0);
  EXPECT_FALSE(spec.is_gpu_job());
}

}  // namespace
}  // namespace coda::perfmodel
