// Tests for placement search and the FIFO/DRF baseline schedulers, driven
// through a minimal fake engine environment.
#include <gtest/gtest.h>

#include <vector>

#include "sched/drf.h"
#include "sched/fifo.h"
#include "sched/placement.h"

namespace coda::sched {
namespace {

workload::JobSpec gpu_job(cluster::JobId id, cluster::TenantId tenant,
                          int gpus, int cpus) {
  workload::JobSpec spec;
  spec.id = id;
  spec.tenant = tenant;
  spec.kind = workload::JobKind::kGpuTraining;
  spec.model = perfmodel::ModelId::kResnet50;
  spec.train_config = perfmodel::TrainConfig{1, gpus, 0};
  spec.requested_cpus = cpus;
  spec.iterations = 100;
  return spec;
}

workload::JobSpec cpu_job(cluster::JobId id, cluster::TenantId tenant,
                          int cores) {
  workload::JobSpec spec;
  spec.id = id;
  spec.tenant = tenant;
  spec.kind = workload::JobKind::kCpu;
  spec.cpu_cores = cores;
  spec.cpu_work_core_s = 100;
  return spec;
}

// Minimal engine stand-in: start_job allocates directly on the cluster.
class FakeEngine {
 public:
  explicit FakeEngine(int nodes, int cores = 8, int gpus = 2)
      : cluster_(make_config(nodes, cores, gpus)) {}

  SchedulerEnv env() {
    SchedulerEnv e;
    e.sim = &sim_;
    e.cluster = &cluster_;
    e.start_job = [this](cluster::JobId id, const Placement& p) {
      for (const auto& np : p.nodes) {
        auto status = cluster_.node(np.node).allocate(id, np.cpus, np.gpus);
        if (!status.ok()) {
          return status;
        }
      }
      started_.push_back(id);
      placements_[id] = p;
      return util::Status::Ok();
    };
    e.preempt_job = [this](cluster::JobId id, bool) {
      cluster_.release_everywhere(id);
      return util::Status::Ok();
    };
    e.resize_job = [](cluster::JobId, cluster::NodeId, int) {
      return util::Status::Ok();
    };
    return e;
  }

  void finish(cluster::JobId id) { cluster_.release_everywhere(id); }

  cluster::Cluster& cluster() { return cluster_; }
  const std::vector<cluster::JobId>& started() const { return started_; }
  const Placement& placement_of(cluster::JobId id) {
    return placements_.at(id);
  }

 private:
  static cluster::ClusterConfig make_config(int nodes, int cores, int gpus) {
    cluster::ClusterConfig cfg;
    cfg.node_count = nodes;
    cfg.node.cores = cores;
    cfg.node.gpus = gpus;
    return cfg;
  }

  cluster::Cluster cluster_;
  simcore::Simulator sim_;
  std::vector<cluster::JobId> started_;
  std::map<cluster::JobId, Placement> placements_;
};

// ---------------------------------------------------------------- placement

TEST(Placement, BaselineRequestShapes) {
  auto g = gpu_job(1, 0, 4, 8);
  auto req = baseline_request(g);
  EXPECT_EQ(req.nodes, 1);
  EXPECT_EQ(req.gpus_per_node, 4);
  EXPECT_EQ(req.cpus_per_node, 8);
  auto c = cpu_job(2, 0, 3);
  req = baseline_request(c);
  EXPECT_EQ(req.gpus_per_node, 0);
  EXPECT_EQ(req.cpus_per_node, 3);
}

TEST(Placement, BestFitPacksTightest) {
  FakeEngine engine(3);
  // Node 0: 1 GPU used; node 1: empty; node 2: 1 GPU + 6 cores used.
  ASSERT_TRUE(engine.cluster().node(0).allocate(90, 2, 1).ok());
  ASSERT_TRUE(engine.cluster().node(2).allocate(91, 6, 1).ok());
  PlacementRequest req{1, 1, 2};
  auto placement = find_placement(engine.cluster(), req);
  ASSERT_TRUE(placement.has_value());
  // Node 2 leaves 0 free GPUs after, the tightest fit.
  EXPECT_EQ(placement->nodes[0].node, 2u);
}

TEST(Placement, RespectsFilter) {
  FakeEngine engine(3);
  PlacementRequest req{1, 1, 1};
  auto placement = find_placement(
      engine.cluster(), req,
      [](const cluster::Node& n) { return n.id() == 1; });
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->nodes[0].node, 1u);
}

TEST(Placement, MultiNodePlacementsUseDistinctNodes) {
  FakeEngine engine(3);
  PlacementRequest req{2, 2, 3};
  auto placement = find_placement(engine.cluster(), req);
  ASSERT_TRUE(placement.has_value());
  ASSERT_EQ(placement->nodes.size(), 2u);
  EXPECT_NE(placement->nodes[0].node, placement->nodes[1].node);
  EXPECT_EQ(placement->total_gpus(), 4);
  EXPECT_EQ(placement->total_cpus(), 6);
}

TEST(Placement, FailsWhenNothingFits) {
  FakeEngine engine(1);
  EXPECT_FALSE(
      find_placement(engine.cluster(), PlacementRequest{1, 3, 1}).has_value());
  EXPECT_FALSE(
      find_placement(engine.cluster(), PlacementRequest{2, 1, 1}).has_value());
}

TEST(Placement, CountFeasibleProbes) {
  FakeEngine engine(2);  // 2 nodes x (8 cores, 2 gpus)
  EXPECT_EQ(count_feasible(engine.cluster(), PlacementRequest{1, 1, 4},
                           any_node(), 100),
            4);
  EXPECT_EQ(count_feasible(engine.cluster(), PlacementRequest{1, 0, 3},
                           any_node(), 100),
            4);  // floor(8/3) per node
  EXPECT_EQ(count_feasible(engine.cluster(), PlacementRequest{1, 1, 1},
                           any_node(), 3),
            3);  // limited
}

// --------------------------------------------------------------------- FIFO

TEST(Fifo, StartsInArrivalOrder) {
  FakeEngine engine(2);
  FifoScheduler fifo;
  fifo.attach(engine.env());
  fifo.submit(gpu_job(1, 0, 1, 2));
  fifo.submit(cpu_job(2, 1, 2));
  fifo.kick();
  EXPECT_EQ(engine.started(), (std::vector<cluster::JobId>{1, 2}));
  EXPECT_EQ(fifo.pending(), 0u);
}

TEST(Fifo, StrictModeBlocksHeadOfLine) {
  FakeEngine engine(1);  // 8 cores, 2 gpus
  FifoScheduler fifo(/*backfill_window=*/1);
  fifo.attach(engine.env());
  fifo.submit(cpu_job(1, 0, 8));  // fills all cores
  fifo.submit(cpu_job(2, 0, 8));  // cannot fit -> blocks
  fifo.submit(cpu_job(3, 0, 1));  // would fit, but strict FIFO blocks
  fifo.kick();
  EXPECT_EQ(engine.started().size(), 1u);
  EXPECT_EQ(fifo.pending(), 2u);
  // Finishing the head unblocks in order.
  engine.finish(1);
  fifo.on_job_finished(cpu_job(1, 0, 8));
  fifo.kick();
  EXPECT_EQ(engine.started(), (std::vector<cluster::JobId>{1, 2}));
}

TEST(Fifo, BackfillStartsFittingJobsBehindBlockedHead) {
  FakeEngine engine(1);  // 8 cores, 2 gpus
  FifoScheduler fifo;    // default SLURM-like backfill window
  fifo.attach(engine.env());
  fifo.submit(cpu_job(1, 0, 6));
  fifo.submit(cpu_job(2, 0, 8));  // blocked: only 2 cores left
  fifo.submit(cpu_job(3, 0, 2));  // backfills around #2
  fifo.kick();
  EXPECT_EQ(engine.started(), (std::vector<cluster::JobId>{1, 3}));
  EXPECT_EQ(fifo.pending(), 1u);
}

TEST(Fifo, BackfillWindowIsBounded) {
  FakeEngine engine(1);
  FifoScheduler fifo(/*backfill_window=*/2);
  fifo.attach(engine.env());
  fifo.submit(cpu_job(1, 0, 8));  // fills the node
  fifo.submit(cpu_job(2, 0, 8));  // blocked
  fifo.submit(cpu_job(3, 0, 8));  // blocked, still inside window? no: the
                                  // window covers 2 examined jobs only
  fifo.submit(cpu_job(4, 0, 1));  // fits, but lies beyond the window
  fifo.kick();
  EXPECT_EQ(engine.started().size(), 1u);
}

TEST(Fifo, TracksPendingGpuJobs) {
  FakeEngine engine(1);
  FifoScheduler fifo;
  fifo.attach(engine.env());
  fifo.submit(cpu_job(1, 0, 8));
  fifo.submit(gpu_job(2, 0, 1, 8));
  fifo.kick();
  EXPECT_EQ(fifo.pending_gpu_jobs(), 1u);
  auto demand = fifo.min_pending_gpu_demand();
  ASSERT_TRUE(demand.has_value());
  EXPECT_EQ(demand->gpus_per_node, 1);
  EXPECT_EQ(demand->cpus_per_node, 8);
}

TEST(Fifo, NoPendingGpuDemandWhenOnlyCpuQueued) {
  FakeEngine engine(1);
  FifoScheduler fifo;
  fifo.attach(engine.env());
  fifo.submit(cpu_job(1, 0, 8));
  fifo.submit(cpu_job(2, 0, 8));
  fifo.kick();
  EXPECT_FALSE(fifo.min_pending_gpu_demand().has_value());
}

// ---------------------------------------------------------------------- DRF

TEST(Drf, FavorsLowestDominantShare) {
  FakeEngine engine(2);  // totals: 16 cores, 4 gpus
  DrfScheduler drf;
  drf.attach(engine.env());
  // Tenant 0 already runs a big GPU job -> large dominant share.
  drf.submit(gpu_job(1, 0, 2, 2));
  drf.kick();
  EXPECT_NEAR(drf.dominant_share(0), 0.5, 1e-9);
  // Both tenants queue one job each; tenant 1 (share 0) goes first.
  drf.submit(gpu_job(2, 0, 1, 2));
  drf.submit(gpu_job(3, 1, 1, 2));
  drf.kick();
  ASSERT_EQ(engine.started().size(), 3u);
  EXPECT_EQ(engine.started()[1], 3u);
  EXPECT_EQ(engine.started()[2], 2u);
}

TEST(Drf, DominantShareUsesMaxDimension) {
  FakeEngine engine(2);  // 16 cores, 4 gpus
  DrfScheduler drf;
  drf.attach(engine.env());
  drf.submit(cpu_job(1, 3, 8));  // cpu share 0.5, gpu share 0
  drf.kick();
  EXPECT_NEAR(drf.dominant_share(3), 0.5, 1e-9);
  drf.on_job_finished(cpu_job(1, 3, 8));
  EXPECT_NEAR(drf.dominant_share(3), 0.0, 1e-9);
}

TEST(Drf, SkipsBlockedTenantWithoutHeadOfLineBlocking) {
  FakeEngine engine(1);  // 8 cores, 2 gpus
  DrfScheduler drf;
  drf.attach(engine.env());
  drf.submit(gpu_job(1, 0, 2, 6));  // takes both GPUs
  drf.kick();
  drf.submit(gpu_job(2, 1, 1, 1));  // blocked: no GPUs left
  drf.submit(cpu_job(3, 2, 2));     // fits: other tenant proceeds
  drf.kick();
  EXPECT_EQ(engine.started(), (std::vector<cluster::JobId>{1, 3}));
  EXPECT_EQ(drf.pending(), 1u);
  EXPECT_EQ(drf.pending_gpu_jobs(), 1u);
}

TEST(Drf, PerTenantQueueStaysFifo) {
  FakeEngine engine(1);
  DrfScheduler drf;
  drf.attach(engine.env());
  drf.submit(gpu_job(1, 0, 2, 2));  // head, takes both GPUs
  drf.submit(cpu_job(2, 0, 1));     // behind head of the same tenant
  drf.kick();
  drf.submit(gpu_job(3, 0, 1, 1));
  drf.kick();
  // Tenant 0's queue is FIFO: jobs 3 and 2 wait behind... job 2 is at the
  // head now (after 1 started); job 2 fits and starts; 3 blocked on GPUs.
  EXPECT_EQ(engine.started(), (std::vector<cluster::JobId>{1, 2}));
  auto demand = drf.min_pending_gpu_demand();
  ASSERT_TRUE(demand.has_value());
  EXPECT_EQ(demand->gpus_per_node, 1);
}

TEST(Drf, MinPendingDemandPicksSmallest) {
  FakeEngine engine(1);
  DrfScheduler drf;
  drf.attach(engine.env());
  drf.submit(gpu_job(1, 0, 2, 8));  // fills node
  drf.kick();
  drf.submit(gpu_job(2, 1, 2, 4));
  drf.submit(gpu_job(3, 2, 1, 6));
  drf.kick();
  auto demand = drf.min_pending_gpu_demand();
  ASSERT_TRUE(demand.has_value());
  EXPECT_EQ(demand->gpus_per_node, 1);
  EXPECT_EQ(demand->cpus_per_node, 6);
}

TEST(Schedulers, ReclaimableDefaultsToZero) {
  FakeEngine engine(1);
  FifoScheduler fifo;
  fifo.attach(engine.env());
  EXPECT_EQ(fifo.reclaimable_cpus(0), 0);
}

// ------------------------------------------------------------ retry policy

TEST(Fifo, EvictionWithoutRetryPolicyRequeuesImmediately) {
  FakeEngine engine(1);
  FifoScheduler fifo;
  fifo.attach(engine.env());
  auto job = cpu_job(1, 0, 2);
  fifo.submit(job);
  fifo.kick();
  ASSERT_EQ(engine.started().size(), 1u);
  engine.finish(1);
  fifo.on_job_evicted(job);  // legacy path: straight back to the head
  EXPECT_EQ(fifo.pending(), 1u);
  fifo.kick();
  EXPECT_EQ(engine.started(), (std::vector<cluster::JobId>{1, 1}));
}

TEST(Fifo, RetryBackoffDelaysResubmissionExponentially) {
  FakeEngine engine(1);
  FifoScheduler fifo;
  auto env = engine.env();
  std::vector<cluster::JobId> abandoned;
  env.abandon_job = [&](cluster::JobId id) { abandoned.push_back(id); };
  fifo.attach(env);
  RetryPolicy policy;
  policy.enabled = true;
  policy.backoff_base_s = 10.0;
  policy.backoff_max_s = 15.0;
  policy.max_retries = 2;
  fifo.set_retry_policy(policy);

  auto job = cpu_job(1, 0, 2);
  fifo.submit(job);
  fifo.kick();
  ASSERT_EQ(engine.started().size(), 1u);

  // First eviction: no immediate requeue; resubmission fires 10 s later.
  engine.finish(1);
  fifo.on_job_evicted(job);
  EXPECT_EQ(fifo.pending(), 0u);
  EXPECT_EQ(fifo.eviction_count(1), 1);
  env.sim->run_until(9.999);
  EXPECT_EQ(engine.started().size(), 1u);
  env.sim->run_until(10.0);
  EXPECT_EQ(engine.started().size(), 2u);

  // Second eviction doubles the delay to 20 s, clamped at 15 s: the job is
  // back at t = 10 + 15 = 25, not earlier.
  engine.finish(1);
  fifo.on_job_evicted(job);
  env.sim->run_until(24.999);
  EXPECT_EQ(engine.started().size(), 2u);
  env.sim->run_until(25.0);
  EXPECT_EQ(engine.started().size(), 3u);

  // Third eviction exceeds max_retries = 2: the job is abandoned, never
  // resubmitted, and its eviction counter is released.
  engine.finish(1);
  fifo.on_job_evicted(job);
  env.sim->run_until(1000.0);
  EXPECT_EQ(engine.started().size(), 3u);
  EXPECT_EQ(abandoned, (std::vector<cluster::JobId>{1}));
  EXPECT_EQ(fifo.eviction_count(1), 0);
}

TEST(Drf, RetryAbandonStillReleasesAccounting) {
  FakeEngine engine(2);  // totals: 16 cores, 4 gpus
  DrfScheduler drf;
  auto env = engine.env();
  std::vector<cluster::JobId> abandoned;
  env.abandon_job = [&](cluster::JobId id) { abandoned.push_back(id); };
  drf.attach(env);
  RetryPolicy policy;
  policy.enabled = true;
  policy.max_retries = 0;  // first eviction already abandons
  drf.set_retry_policy(policy);

  auto job = gpu_job(1, 0, 1, 2);
  drf.submit(job);
  drf.kick();
  ASSERT_EQ(engine.started().size(), 1u);
  EXPECT_NEAR(drf.dominant_share(0), 0.25, 1e-9);  // 1 of 4 GPUs
  engine.finish(1);
  drf.on_job_evicted(job);
  // The abandoned job no longer counts against its tenant's share, and it
  // never re-enters the queue.
  EXPECT_NEAR(drf.dominant_share(0), 0.0, 1e-9);
  EXPECT_EQ(drf.pending(), 0u);
  EXPECT_EQ(abandoned, (std::vector<cluster::JobId>{1}));
  env.sim->run_all();
  EXPECT_EQ(engine.started().size(), 1u);
}

}  // namespace
}  // namespace coda::sched
