// Unit tests for the cluster model: allocation ledger invariants, resize,
// aggregate rates and fragmentation accounting.
#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace coda::cluster {
namespace {

NodeConfig small_node() {
  NodeConfig cfg;
  cfg.cores = 8;
  cfg.gpus = 2;
  return cfg;
}

TEST(Node, AllocateReleaseAccounting) {
  Node node(0, small_node());
  EXPECT_EQ(node.free_cpus(), 8);
  EXPECT_EQ(node.free_gpus(), 2);
  ASSERT_TRUE(node.allocate(1, 3, 1).ok());
  EXPECT_EQ(node.free_cpus(), 5);
  EXPECT_EQ(node.free_gpus(), 1);
  EXPECT_TRUE(node.hosts(1));
  ASSERT_TRUE(node.release(1).ok());
  EXPECT_EQ(node.free_cpus(), 8);
  EXPECT_EQ(node.free_gpus(), 2);
  EXPECT_FALSE(node.hosts(1));
}

TEST(Node, RejectsOverAllocation) {
  Node node(0, small_node());
  auto status = node.allocate(1, 9, 0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kResourceExhausted);
  EXPECT_FALSE(node.allocate(1, 1, 3).ok());
}

TEST(Node, RejectsDoubleAllocation) {
  Node node(0, small_node());
  ASSERT_TRUE(node.allocate(1, 1, 0).ok());
  auto status = node.allocate(1, 1, 0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kFailedPrecondition);
}

TEST(Node, RejectsZeroAllocation) {
  Node node(0, small_node());
  EXPECT_FALSE(node.allocate(1, 0, 0).ok());
  EXPECT_FALSE(node.allocate(1, -1, 1).ok());
}

TEST(Node, ResizeCpusGrowAndShrink) {
  Node node(0, small_node());
  ASSERT_TRUE(node.allocate(1, 2, 1).ok());
  ASSERT_TRUE(node.resize_cpus(1, 6).ok());
  EXPECT_EQ(node.free_cpus(), 2);
  ASSERT_TRUE(node.resize_cpus(1, 1).ok());
  EXPECT_EQ(node.free_cpus(), 7);
  EXPECT_EQ(node.allocation_of(1)->cpus, 1);
  // Growing past capacity fails and leaves state unchanged.
  EXPECT_FALSE(node.resize_cpus(1, 9).ok());
  EXPECT_EQ(node.allocation_of(1)->cpus, 1);
  // Resizing an unknown job fails.
  EXPECT_FALSE(node.resize_cpus(99, 2).ok());
}

TEST(Node, ReleaseUnknownJobFails) {
  Node node(0, small_node());
  auto status = node.release(42);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kNotFound);
}

TEST(Node, JobKindQueries) {
  Node node(0, small_node());
  ASSERT_TRUE(node.allocate(1, 2, 1).ok());
  ASSERT_TRUE(node.allocate(2, 3, 0).ok());
  EXPECT_EQ(node.gpu_jobs(), (std::vector<JobId>{1}));
  EXPECT_EQ(node.cpu_only_jobs(), (std::vector<JobId>{2}));
}

TEST(Cluster, BuildsNodesWithMbaFraction) {
  ClusterConfig cfg;
  cfg.node_count = 10;
  cfg.node = small_node();
  cfg.mba_fraction = 0.3;
  Cluster cluster(cfg);
  ASSERT_EQ(cluster.node_count(), 10u);
  int mba = 0;
  for (const auto& node : cluster.nodes()) {
    mba += node.config().mba_capable ? 1 : 0;
  }
  EXPECT_EQ(mba, 3);
  EXPECT_EQ(cluster.total_cpus(), 80);
  EXPECT_EQ(cluster.total_gpus(), 20);
}

TEST(Cluster, ActiveRates) {
  ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.node = small_node();
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.node(0).allocate(1, 4, 1).ok());
  EXPECT_DOUBLE_EQ(cluster.cpu_active_rate(), 4.0 / 16.0);
  EXPECT_DOUBLE_EQ(cluster.gpu_active_rate(), 1.0 / 4.0);
  EXPECT_EQ(cluster.used_cpus(), 4);
  EXPECT_EQ(cluster.used_gpus(), 1);
}

TEST(Cluster, FragmentationCountsCpuStarvedIdleGpus) {
  ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.node = small_node();
  Cluster cluster(cfg);
  // Node 0: all 8 cores consumed, 2 GPUs idle -> fragmented.
  ASSERT_TRUE(cluster.node(0).allocate(1, 8, 0).ok());
  EXPECT_DOUBLE_EQ(cluster.gpu_fragmentation_rate(2), 2.0 / 4.0);
  // Node 1 keeps cores, not fragmented.
  ASSERT_TRUE(cluster.node(1).allocate(2, 2, 0).ok());
  EXPECT_DOUBLE_EQ(cluster.gpu_fragmentation_rate(2), 2.0 / 4.0);
}

TEST(Cluster, ReleaseEverywhereHandlesMultiNodeJobs) {
  ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.node = small_node();
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.node(0).allocate(7, 1, 1).ok());
  ASSERT_TRUE(cluster.node(2).allocate(7, 1, 1).ok());
  EXPECT_EQ(cluster.release_everywhere(7), 2);
  EXPECT_EQ(cluster.used_cpus(), 0);
  EXPECT_EQ(cluster.release_everywhere(7), 0);
}

TEST(ResourceVector, Arithmetic) {
  ResourceVector a{3, 1};
  ResourceVector b{1, 1};
  EXPECT_EQ(a + b, (ResourceVector{4, 2}));
  EXPECT_EQ(a - b, (ResourceVector{2, 0}));
  EXPECT_TRUE(b.fits_within(a));
  EXPECT_FALSE(a.fits_within(b));
  EXPECT_TRUE((a - b).non_negative());
  EXPECT_FALSE((b - a).non_negative());
}

}  // namespace
}  // namespace coda::cluster
