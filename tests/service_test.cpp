// Tests for the codad service layer: mailbox ordering under concurrent
// producers, protocol framing across split reads, admission backpressure,
// strict env parsing, and the headline guarantee — an offline replay of a
// live session's journal reproduces its ExperimentReport byte-for-byte.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/journal.h"
#include "service/mailbox.h"
#include "service/protocol.h"
#include "service/restore.h"
#include "service/server.h"
#include "sim/report_io.h"
#include "sim/runner.h"
#include "state/snapshot.h"
#include "util/env.h"
#include "util/rng.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace coda::service {
namespace {

// ---------------------------------------------------------------- mailbox

TEST(Mailbox, DrainOrderIsPushOrder) {
  Mailbox<int> box(16);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(box.try_push(i));
  }
  std::vector<int> out;
  EXPECT_EQ(box.drain(&out), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
  EXPECT_EQ(box.size(), 0u);
}

TEST(Mailbox, BoundedPushFailsWhenFullAndAfterClose) {
  Mailbox<int> box(2);
  EXPECT_TRUE(box.try_push(1));
  EXPECT_TRUE(box.try_push(2));
  EXPECT_FALSE(box.try_push(3));  // full: the admission-control path
  std::vector<int> out;
  box.drain(&out);
  EXPECT_TRUE(box.try_push(4));
  box.close();
  EXPECT_FALSE(box.try_push(5));
  // Items queued before close stay drainable (the final sweep relies on
  // this to answer every pending command at shutdown).
  out.clear();
  EXPECT_EQ(box.drain(&out), 1u);
  EXPECT_EQ(out[0], 4);
}

TEST(Mailbox, ConcurrentProducersPreservePerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  // Encoded as producer * 1'000'000 + sequence so the consumer can check
  // each producer's subsequence independently.
  Mailbox<int> box(256);
  std::vector<int> consumed;
  consumed.reserve(kProducers * kPerProducer);
  std::thread consumer([&] {
    while (consumed.size() <
           static_cast<size_t>(kProducers) * kPerProducer) {
      box.drain_until(&consumed, std::chrono::steady_clock::now() +
                                     std::chrono::milliseconds(50));
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!box.try_push(p * 1000000 + i)) {
          std::this_thread::yield();  // full: retry, as a connection would
        }
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  consumer.join();
  ASSERT_EQ(consumed.size(), static_cast<size_t>(kProducers) * kPerProducer);
  std::vector<int> next_seq(kProducers, 0);
  for (int value : consumed) {
    const int p = value / 1000000;
    const int seq = value % 1000000;
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(seq, next_seq[static_cast<size_t>(p)]);
    ++next_seq[static_cast<size_t>(p)];
  }
}

// ---------------------------------------------------------------- framing

TEST(LineReader, ReassemblesArbitrarySplits) {
  const std::string stream = "PING\nSUBMIT 1,2,3\r\nSTATUS 7\n";
  // Feed the same byte stream one byte at a time, in pairs, and all at
  // once: every chunking must yield the same three lines.
  for (size_t chunk : {size_t{1}, size_t{2}, stream.size()}) {
    LineReader reader(256);
    std::vector<std::string> lines;
    for (size_t off = 0; off < stream.size(); off += chunk) {
      const size_t n = std::min(chunk, stream.size() - off);
      ASSERT_TRUE(reader.feed(stream.data() + off, n, &lines));
    }
    ASSERT_EQ(lines.size(), 3u) << "chunk=" << chunk;
    EXPECT_EQ(lines[0], "PING");
    EXPECT_EQ(lines[1], "SUBMIT 1,2,3");  // CRLF stripped
    EXPECT_EQ(lines[2], "STATUS 7");
    EXPECT_EQ(reader.pending_bytes(), 0u);
  }
}

TEST(LineReader, KeepsPartialLinePending) {
  LineReader reader(256);
  std::vector<std::string> lines;
  ASSERT_TRUE(reader.feed("STAT", 4, &lines));
  EXPECT_TRUE(lines.empty());
  EXPECT_EQ(reader.pending_bytes(), 4u);
  ASSERT_TRUE(reader.feed("US 9\n", 5, &lines));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "STATUS 9");
}

TEST(LineReader, PoisonsOnOversizedLine) {
  LineReader reader(8);
  std::vector<std::string> lines;
  EXPECT_FALSE(reader.feed("0123456789abcdef", 16, &lines));
  EXPECT_TRUE(reader.poisoned());
  // Poison is sticky: even a tiny follow-up chunk is rejected.
  EXPECT_FALSE(reader.feed("\n", 1, &lines));
  EXPECT_TRUE(lines.empty());
}

// --------------------------------------------------------------- protocol

TEST(Protocol, RequestParsing) {
  auto ping = parse_request("PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->verb, Verb::kPing);

  auto submit = parse_request("SUBMIT 0,1,cpu,0,Alexnet");
  ASSERT_TRUE(submit.ok());
  EXPECT_EQ(submit->verb, Verb::kSubmit);
  EXPECT_EQ(submit->arg, "0,1,cpu,0,Alexnet");

  auto status = parse_request("STATUS 42");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->verb, Verb::kStatus);
  EXPECT_EQ(status->job_id, 42u);

  EXPECT_FALSE(parse_request("").ok());
  EXPECT_FALSE(parse_request("FROB").ok());
  EXPECT_FALSE(parse_request("SUBMIT").ok());    // missing row
  EXPECT_FALSE(parse_request("STATUS").ok());    // missing id
  EXPECT_FALSE(parse_request("STATUS abc").ok());
  EXPECT_FALSE(parse_request("PING extra").ok());
}

TEST(Protocol, ResponseRoundTrip) {
  auto ok = parse_response(format_ok("id=3 vt=1.500"));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->kind, Response::Kind::kOk);
  EXPECT_EQ(ok->payload, "id=3 vt=1.500");

  auto err = parse_response(
      format_err(util::ErrorCode::kNotFound, "no such\njob"));
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->kind, Response::Kind::kErr);
  EXPECT_EQ(err->code, util::ErrorCode::kNotFound);
  // Newlines are sanitized so a message can never forge a protocol line.
  EXPECT_EQ(err->payload.find('\n'), std::string::npos);

  auto busy = parse_response(format_busy(250));
  ASSERT_TRUE(busy.ok());
  EXPECT_EQ(busy->kind, Response::Kind::kBusy);
  EXPECT_EQ(busy->retry_after_ms, 250);

  EXPECT_FALSE(parse_response("WAT 1").ok());
}

// ------------------------------------------------------------- env parser

TEST(Env, ParseStrictInt) {
  ASSERT_TRUE(util::parse_strict_int("42", 1).ok());
  EXPECT_EQ(*util::parse_strict_int("42", 1), 42);
  EXPECT_FALSE(util::parse_strict_int("", 1).ok());
  EXPECT_FALSE(util::parse_strict_int("abc", 1).ok());
  EXPECT_FALSE(util::parse_strict_int("4x", 1).ok());   // trailing junk
  EXPECT_FALSE(util::parse_strict_int("0", 1).ok());    // below minimum
  EXPECT_FALSE(util::parse_strict_int("-3", 1).ok());
  EXPECT_FALSE(util::parse_strict_int("99999999999999999999", 1).ok());
}

TEST(Env, ParseStrictDouble) {
  ASSERT_TRUE(util::parse_strict_double("2.5", 0.0).ok());
  EXPECT_DOUBLE_EQ(*util::parse_strict_double("2.5", 0.0), 2.5);
  ASSERT_TRUE(util::parse_strict_double("0x1.8p+1", 0.0).ok());  // hexfloat
  EXPECT_DOUBLE_EQ(*util::parse_strict_double("0x1.8p+1", 0.0), 3.0);
  EXPECT_FALSE(util::parse_strict_double("", 0.0).ok());
  EXPECT_FALSE(util::parse_strict_double("fast", 0.0).ok());
  EXPECT_FALSE(util::parse_strict_double("2.5x", 0.0).ok());  // trailing junk
  EXPECT_FALSE(util::parse_strict_double("-1", 0.0).ok());    // below minimum
  EXPECT_FALSE(util::parse_strict_double("1e999", 0.0).ok());  // overflow
}

TEST(Env, ParseStrictU64) {
  ASSERT_TRUE(util::parse_strict_u64("18446744073709551615").ok());
  EXPECT_EQ(*util::parse_strict_u64("18446744073709551615"),
            0xFFFFFFFFFFFFFFFFull);
  EXPECT_FALSE(util::parse_strict_u64("").ok());
  EXPECT_FALSE(util::parse_strict_u64("-1").ok());  // strtoull would wrap
  EXPECT_FALSE(util::parse_strict_u64("7up").ok());
  EXPECT_FALSE(util::parse_strict_u64("18446744073709551616").ok());
}

TEST(Env, EnvIntFallsBackOnMalformedValue) {
  ::setenv("CODA_TEST_KNOB", "7", 1);
  EXPECT_EQ(util::env_int("CODA_TEST_KNOB", 3), 7);
  ::setenv("CODA_TEST_KNOB", "zero", 1);
  EXPECT_EQ(util::env_int("CODA_TEST_KNOB", 3), 3);
  ::setenv("CODA_TEST_KNOB", "0", 1);
  EXPECT_EQ(util::env_int("CODA_TEST_KNOB", 3), 3);
  ::unsetenv("CODA_TEST_KNOB");
  EXPECT_EQ(util::env_int("CODA_TEST_KNOB", 3), 3);
}

TEST(Env, RunnerDefaultWorkersRejectsMalformedCodaJobs) {
  ::setenv("CODA_JOBS", "3", 1);
  EXPECT_EQ(sim::Runner::default_workers(), 3);
  ::setenv("CODA_JOBS", "abc", 1);
  const int fallback = sim::Runner::default_workers();
  EXPECT_GE(fallback, 1);
  ::setenv("CODA_JOBS", "-2", 1);
  EXPECT_EQ(sim::Runner::default_workers(), fallback);
  ::unsetenv("CODA_JOBS");
}

// ------------------------------------------------------- live server tests

std::string tiny_trace_csv(uint64_t seed) {
  auto cfg = sim::standard_week_trace(seed);
  cfg.duration_s = 2.0 * 3600.0;
  cfg.cpu_jobs = 40;
  cfg.gpu_jobs = 20;
  return workload::trace_to_csv(workload::TraceGenerator(cfg).generate());
}

ServerConfig tiny_server_config(const std::string& tag, double speedup) {
  ServerConfig config;
  config.session.policy = sim::Policy::kCoda;
  config.session.config.engine.cluster.node_count = 8;
  config.session.config.horizon_s = 2.0 * 3600.0;
  config.session.config.drain_slack_s = 86400.0;
  config.session.speedup = speedup;
  config.session.base_trace_csv = tiny_trace_csv(11);
  config.journal_path =
      "/tmp/coda_service_test_" + tag + "_" +
      std::to_string(static_cast<long long>(::getpid())) + ".journal";
  config.unix_socket_path =
      "/tmp/coda_service_test_" + tag + "_" +
      std::to_string(static_cast<long long>(::getpid())) + ".sock";
  return config;
}

std::string submit_row(int cores, double work) {
  workload::JobSpec job;
  job.kind = workload::JobKind::kCpu;
  job.cpu_cores = cores;
  job.cpu_work_core_s = work;
  job.mem_bw_gbps = 1.0;
  job.llc_mb = 2.0;
  return workload::job_to_csv_row(job);
}

TEST(Server, JournalReplayReproducesLiveReportByteForByte) {
  // As-fast-as-possible pacing: the engine reaches the horizon at once and
  // every live SUBMIT lands at nextafter(horizon) — the collision-heaviest
  // injection point, which is exactly what replay must reproduce.
  ServerConfig config = tiny_server_config("afap", 0.0);
  const std::string journal_path = config.journal_path;
  const Endpoint endpoint{config.unix_socket_path, -1};
  Server server(std::move(config));
  ASSERT_TRUE(server.start().ok());

  auto client = Client::connect(endpoint);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->ping().ok());
  for (int i = 0; i < 3; ++i) {
    auto resp = client->submit_row(submit_row(2 + i, 600.0 * (i + 1)));
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp->ok()) << resp->payload;
  }
  // Duplicate id: 1 is a base-trace job.
  {
    workload::JobSpec job;
    job.id = 1;
    job.kind = workload::JobKind::kCpu;
    job.cpu_work_core_s = 10.0;
    auto resp = client->submit_row(workload::job_to_csv_row(job));
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->kind, Response::Kind::kErr);
  }
  {
    auto resp = client->status(999999);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->kind, Response::Kind::kErr);
    EXPECT_EQ(resp->code, util::ErrorCode::kNotFound);
  }
  auto drained = client->drain();
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(drained->ok()) << drained->payload;
  ASSERT_TRUE(client->shutdown().ok());
  server.wait();
  ASSERT_TRUE(server.drained());

  const std::string live_report = server.report_text();
  ASSERT_FALSE(live_report.empty());
  auto replayed = replay_journal_file(journal_path);
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  EXPECT_EQ(sim::serialize_report(*replayed), live_report);
  // The report file codad leaves on disk is the same bytes.
  std::FILE* f = std::fopen((journal_path + ".report").c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string on_disk;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    on_disk.append(buf, n);
  }
  std::fclose(f);
  EXPECT_EQ(on_disk, live_report);
  std::remove(journal_path.c_str());
  std::remove((journal_path + ".report").c_str());
}

TEST(Server, PacedSubmissionsReplayByteForByte) {
  // Fast-but-paced: the 2-hour session compresses to ~70ms of wall time,
  // so the three SUBMITs land at scattered mid-run virtual times instead
  // of piling up at the horizon.
  ServerConfig config = tiny_server_config("paced", 100000.0);
  const std::string journal_path = config.journal_path;
  const Endpoint endpoint{config.unix_socket_path, -1};
  Server server(std::move(config));
  ASSERT_TRUE(server.start().ok());

  auto client = Client::connect(endpoint);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 3; ++i) {
    auto resp = client->submit_row(submit_row(2, 300.0));
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp->ok()) << resp->payload;
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  ASSERT_TRUE(client->drain().ok());
  ASSERT_TRUE(client->shutdown().ok());
  server.wait();

  auto replayed = replay_journal_file(journal_path);
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  EXPECT_EQ(sim::serialize_report(*replayed), server.report_text());
  std::remove(journal_path.c_str());
  std::remove((journal_path + ".report").c_str());
}

TEST(Server, ConnectionLimitAnswersBusy) {
  ServerConfig config = tiny_server_config("connlimit", 0.0);
  const std::string journal_path = config.journal_path;
  config.journal_path.clear();  // journaling not under test here
  config.limits.max_connections = 1;
  const Endpoint endpoint{config.unix_socket_path, -1};
  Server server(std::move(config));
  ASSERT_TRUE(server.start().ok());

  auto first = Client::connect(endpoint);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->ping().ok());  // proves the slot is held

  auto second = Client::connect(endpoint);
  ASSERT_TRUE(second.ok());  // connect() succeeds; the acceptor then
                             // answers BUSY and closes.
  auto resp = second->call("PING");
  // Either we read the BUSY line, or the server closed before our write
  // landed — both are the backpressure path, never a hang.
  if (resp.ok()) {
    EXPECT_EQ(resp->kind, Response::Kind::kBusy);
    EXPECT_GT(resp->retry_after_ms, 0);
  }
  ASSERT_TRUE(first->shutdown().ok());
  server.wait();
  (void)journal_path;
}

TEST(Server, ShutdownAnswersEveryInflightCommand) {
  // Regression: a command drained into the same mailbox batch as SHUTDOWN
  // used to be discarded unanswered, leaving its connection blocked forever
  // on its reply slot and deadlocking wait(). Hammer the mailbox from
  // several connections while SHUTDOWN lands; every call must resolve with
  // a reply or a clean disconnect, and wait() must return.
  ServerConfig config = tiny_server_config("shutdownrace", 0.0);
  config.journal_path.clear();  // journaling not under test here
  const Endpoint endpoint{config.unix_socket_path, -1};
  Server server(std::move(config));
  ASSERT_TRUE(server.start().ok());

  std::vector<std::thread> pingers;
  for (int p = 0; p < 4; ++p) {
    pingers.emplace_back([&endpoint] {
      auto client = Client::connect(endpoint);
      if (!client.ok()) {
        return;
      }
      // Runs until the server closes the socket; a dropped reply would
      // hang this call (and the test) forever.
      while (client->call("PING").ok()) {
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto admin = Client::connect(endpoint);
  ASSERT_TRUE(admin.ok());
  ASSERT_TRUE(admin->shutdown().ok());
  server.wait();
  for (auto& t : pingers) {
    t.join();
  }
}

// ---------------------------------------------------------------- journal

TEST(Journal, RejectsCorruptInput) {
  EXPECT_FALSE(parse_journal("").ok());
  EXPECT_FALSE(parse_journal("CODA_JOURNAL v99\n").ok());
  // Valid magic but missing the required horizon.
  EXPECT_FALSE(parse_journal("CODA_JOURNAL v1\npolicy CODA\n").ok());
}

TEST(Journal, WriterProducesReparsableSession) {
  SessionSpec session;
  session.policy = sim::Policy::kDrf;
  session.config.horizon_s = 1234.5;
  session.config.engine.cluster.node_count = 5;
  session.speedup = 60.0;
  session.base_trace_csv = workload::trace_csv_header() + "\n";
  const std::string path =
      "/tmp/coda_journal_roundtrip_" +
      std::to_string(static_cast<long long>(::getpid())) + ".journal";
  {
    auto writer = JournalWriter::open(path, session);
    ASSERT_TRUE(writer.ok()) << writer.error().message;
    ASSERT_TRUE(writer->append_submit(17.25, 9, submit_row(2, 60.0)).ok());
    writer->note("mid-session comment");
    ASSERT_TRUE(writer->append_submit(18.5, 10, submit_row(1, 30.0)).ok());
  }
  auto loaded = load_journal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded->session.policy, sim::Policy::kDrf);
  EXPECT_EQ(loaded->session.config.engine.cluster.node_count, 5);
  EXPECT_DOUBLE_EQ(loaded->session.config.horizon_s, 1234.5);
  EXPECT_EQ(loaded->session.base_trace_csv, session.base_trace_csv);
  ASSERT_EQ(loaded->submissions.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->submissions[0].virtual_time, 17.25);
  EXPECT_EQ(loaded->submissions[0].job_id, 9u);
  EXPECT_DOUBLE_EQ(loaded->submissions[1].virtual_time, 18.5);
  EXPECT_EQ(loaded->submissions[1].job_id, 10u);
  std::remove(path.c_str());
}

TEST(Journal, Uint64FieldsAboveInt64MaxRoundTrip) {
  // noise_seed and job ids are written with %llu; values >= 2^63 must
  // parse back (a signed parser rejects them, making the journal fail its
  // own replay).
  SessionSpec session;
  session.config.horizon_s = 100.0;
  session.config.engine.noise_seed = 0x8000000000000001ull;
  const std::string path =
      "/tmp/coda_journal_u64_" +
      std::to_string(static_cast<long long>(::getpid())) + ".journal";
  const uint64_t big_id = 0xFFFFFFFFFFFFFFF0ull;
  {
    auto writer = JournalWriter::open(path, session);
    ASSERT_TRUE(writer.ok()) << writer.error().message;
    ASSERT_TRUE(writer->append_submit(1.5, big_id, submit_row(1, 30.0)).ok());
  }
  auto loaded = load_journal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded->session.config.engine.noise_seed, 0x8000000000000001ull);
  ASSERT_EQ(loaded->submissions.size(), 1u);
  EXPECT_EQ(loaded->submissions[0].job_id, big_id);
  std::remove(path.c_str());
}

// ------------------------------------------------ journal v2 config block

// A SessionSpec with every journaled knob off its default — the adversarial
// input for header round-trip and live-vs-replay tests.
SessionSpec non_default_session() {
  SessionSpec session;
  session.policy = sim::Policy::kCoda;
  session.speedup = 0.0;
  auto& c = session.config;
  c.horizon_s = 2.0 * 3600.0;
  c.drain_slack_s = 86400.0;
  auto& cluster = c.engine.cluster;
  cluster.node_count = 8;
  cluster.node.cores = 24;
  cluster.node.mem_bw_gbps = 120.0;
  cluster.mba_fraction = 0.25;
  cluster.cpu_only_node_count = 2;
  cluster.cpu_only_node.cores = 32;
  cluster.cpu_only_node.mba_capable = false;
  c.engine.util_noise_stddev = 0.05;
  c.engine.noise_seed = 99;
  c.engine.record_events = true;
  c.engine.incremental_recompute = false;
  c.retry.enabled = true;
  c.retry.backoff_base_s = 45.0;
  c.retry.backoff_max_s = 900.0;
  c.retry.max_retries = 3;
  c.failures.node_mtbf_s = 1800.0;
  c.failures.outage_s = 450.0;
  c.failures.seed = 77;
  c.coda.allocator.search_mode = core::SearchMode::kStepwise;
  c.coda.allocator.profile_step_s = 60.0;
  c.coda.allocator.improvement_eps = 0.01;
  c.coda.allocator.max_cores = 20;
  c.coda.eliminator.bw_threshold = 0.6;
  c.coda.eliminator.mba_throttle_factor = 0.4;
  c.coda.eliminator.release_when_calm = true;
  c.coda.eliminator.release_threshold = 0.5;
  c.coda.reserved_cores_per_node = 16;
  c.coda.four_gpu_node_fraction = 0.25;
  c.coda.multi_array_enabled = false;
  c.coda.cpu_preemption_enabled = false;
  c.coda.static_bw_cap_gbps = 100.0;
  return session;
}

TEST(Journal, V1FixtureParsesWithDefaultConfig) {
  // A verbatim header from the previous release (nine legacy keys, no
  // config block). It must keep loading, with every v2 field taking the
  // library default — which is exactly what the v1 daemon ran with.
  const std::string v1 =
      "CODA_JOURNAL v1\n"
      "policy DRF\n"
      "nodes 5\n"
      "metrics_period 0x1.ep+5\n"
      "frag_min_cpus 2\n"
      "noise_stddev 0x0p+0\n"
      "noise_seed 12345\n"
      "horizon 0x1.c2p+12\n"
      "drain_slack 0x1.518p+17\n"
      "speedup 0x1.c2p+11\n"
      "base_trace_bytes 0\n";
  auto parsed = parse_journal(v1);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed->session.policy, sim::Policy::kDrf);
  EXPECT_EQ(parsed->session.config.engine.cluster.node_count, 5);
  EXPECT_DOUBLE_EQ(parsed->session.config.horizon_s, 7200.0);
  // Spot-check defaults across the config structs v1 never recorded.
  const sim::ExperimentConfig defaults;
  EXPECT_EQ(parsed->session.config.retry.enabled, defaults.retry.enabled);
  EXPECT_EQ(parsed->session.config.retry.max_retries,
            defaults.retry.max_retries);
  EXPECT_DOUBLE_EQ(parsed->session.config.failures.node_mtbf_s,
                   defaults.failures.node_mtbf_s);
  EXPECT_EQ(parsed->session.config.coda.multi_array_enabled,
            defaults.coda.multi_array_enabled);
  EXPECT_EQ(parsed->session.config.coda.allocator.search_mode,
            defaults.coda.allocator.search_mode);
  EXPECT_EQ(parsed->session.config.engine.cluster.cpu_only_node_count,
            defaults.engine.cluster.cpu_only_node_count);
  // A v1 header must not smuggle in v2 config keys.
  EXPECT_FALSE(parse_journal("CODA_JOURNAL v1\n"
                             "horizon 0x1p+10\n"
                             "config.retry.enabled 1\n"
                             "base_trace_bytes 0\n")
                   .ok());
}

TEST(Journal, V2RejectsUnknownDuplicateAndMissingConfigKeys) {
  const std::string header = serialize_session_header(non_default_session());
  const std::string marker = "base_trace_bytes";
  const auto at = header.find(marker);
  ASSERT_NE(at, std::string::npos);

  // Unknown key: a journal from a future build with a field this build
  // does not understand must fail loudly, not replay under a wrong config.
  std::string unknown = header;
  unknown.insert(at, "config.retry.jitter 0x1p+0\n");
  auto r = parse_journal(unknown);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("unknown config key"), std::string::npos)
      << r.error().message;

  // Duplicate key.
  const std::string line = "config.retry.enabled 1\n";
  const auto line_at = header.find(line);
  ASSERT_NE(line_at, std::string::npos);
  std::string dup = header;
  dup.insert(at, line);
  EXPECT_FALSE(parse_journal(dup).ok());

  // Missing key: a v2 header must carry the complete config block.
  std::string missing = header;
  missing.erase(line_at, line.size());
  r = parse_journal(missing);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("config.retry.enabled"),
            std::string::npos)
      << r.error().message;
}

TEST(Journal, RejectsOutOfRangeNumbers) {
  // Overflowing doubles and ints must be parse errors, not +inf / UB —
  // the ERANGE discipline trace_io already applies.
  const std::string stem = "CODA_JOURNAL v1\nhorizon ";
  EXPECT_FALSE(parse_journal(stem + "1e999\nbase_trace_bytes 0\n").ok());
  EXPECT_FALSE(
      parse_journal(stem + "0x1p+99999\nbase_trace_bytes 0\n").ok());
  EXPECT_FALSE(parse_journal("CODA_JOURNAL v1\nhorizon 0x1p+10\n"
                             "nodes 99999999999999999999\n"
                             "base_trace_bytes 0\n")
                   .ok());
}

TEST(Journal, RandomizedSessionHeaderRoundTrips) {
  // Property: for any SessionSpec, writing a journal and loading it back
  // reproduces every config field bit-for-bit — asserted by comparing the
  // re-serialized header text, which encodes doubles as hexfloats.
  // Draws stay in normal double range: strtod flags subnormals ERANGE on
  // glibc and the parser (deliberately) treats that as corruption.
  util::Rng rng(20260807);
  const std::string path =
      "/tmp/coda_journal_fuzz_" +
      std::to_string(static_cast<long long>(::getpid())) + ".journal";
  for (int iter = 0; iter < 20; ++iter) {
    SessionSpec session;
    session.policy = static_cast<sim::Policy>(rng.uniform_int(0, 2));
    session.speedup = rng.uniform(0.0, 1e6);
    auto& c = session.config;
    c.horizon_s = rng.uniform(1.0, 1e9);
    c.drain_slack_s = rng.uniform(0.0, 1e7);
    auto& cluster = c.engine.cluster;
    cluster.node_count = static_cast<int>(rng.uniform_int(1, 500));
    cluster.node.cores = static_cast<int>(rng.uniform_int(1, 128));
    cluster.node.gpus = static_cast<int>(rng.uniform_int(0, 16));
    cluster.node.mem_bw_gbps = rng.uniform(1.0, 1000.0);
    cluster.node.pcie_gbps = rng.uniform(1.0, 128.0);
    cluster.node.llc_mb = rng.uniform(1.0, 256.0);
    cluster.node.mba_capable = rng.bernoulli(0.5);
    cluster.mba_fraction = rng.uniform(0.0, 1.0);
    cluster.cpu_only_node_count = static_cast<int>(rng.uniform_int(0, 50));
    cluster.cpu_only_node.cores = static_cast<int>(rng.uniform_int(1, 128));
    cluster.cpu_only_node.mem_bw_gbps = rng.uniform(1.0, 1000.0);
    c.engine.metrics_period_s = rng.uniform(1.0, 3600.0);
    c.engine.frag_min_cpus = static_cast<int>(rng.uniform_int(1, 8));
    c.engine.util_noise_stddev = rng.uniform(0.0, 0.5);
    c.engine.noise_seed = rng.next_u64();
    c.engine.record_events = rng.bernoulli(0.5);
    c.engine.incremental_recompute = rng.bernoulli(0.5);
    c.retry.enabled = rng.bernoulli(0.5);
    c.retry.backoff_base_s = rng.uniform(1.0, 600.0);
    c.retry.backoff_max_s = rng.uniform(600.0, 86400.0);
    c.retry.max_retries = static_cast<int>(rng.uniform_int(0, 100));
    c.failures.node_mtbf_s = rng.uniform(0.0, 1e6);
    c.failures.outage_s = rng.uniform(1.0, 1e5);
    c.failures.seed = rng.next_u64();
    c.coda.allocator.search_mode =
        static_cast<core::SearchMode>(rng.uniform_int(0, 2));
    c.coda.allocator.profile_step_s = rng.uniform(1.0, 600.0);
    c.coda.allocator.max_profile_steps =
        static_cast<int>(rng.uniform_int(1, 50));
    c.coda.allocator.improvement_eps = rng.uniform(0.0, 0.1);
    c.coda.allocator.plateau_util = rng.uniform(0.0, 1.0);
    c.coda.allocator.min_cores = static_cast<int>(rng.uniform_int(1, 4));
    c.coda.allocator.max_cores = static_cast<int>(rng.uniform_int(4, 128));
    c.coda.eliminator.enabled = rng.bernoulli(0.5);
    c.coda.eliminator.check_period_s = rng.uniform(1.0, 600.0);
    c.coda.eliminator.bw_threshold = rng.uniform(0.0, 1.0);
    c.coda.eliminator.util_drop_tolerance = rng.uniform(0.0, 0.2);
    c.coda.eliminator.mba_throttle_factor = rng.uniform(0.0, 1.0);
    c.coda.eliminator.release_when_calm = rng.bernoulli(0.5);
    c.coda.eliminator.release_threshold = rng.uniform(0.0, 1.0);
    c.coda.reserved_cores_per_node = static_cast<int>(rng.uniform_int(0, 64));
    c.coda.four_gpu_node_fraction = rng.uniform(0.0, 1.0);
    c.coda.reservation_update_period_s = rng.uniform(60.0, 1e5);
    c.coda.multi_array_enabled = rng.bernoulli(0.5);
    c.coda.cpu_preemption_enabled = rng.bernoulli(0.5);
    c.coda.static_bw_cap_gbps = rng.uniform(0.0, 500.0);

    {
      auto writer = JournalWriter::open(path, session);
      ASSERT_TRUE(writer.ok()) << writer.error().message;
    }
    auto loaded = load_journal(path);
    ASSERT_TRUE(loaded.ok()) << "iter " << iter << ": "
                             << loaded.error().message;
    EXPECT_EQ(serialize_session_header(loaded->session),
              serialize_session_header(session))
        << "iter " << iter;
    // Bit-exactness spot check on a hexfloat field (text equality above
    // already implies it; this documents the invariant directly).
    EXPECT_EQ(std::memcmp(&loaded->session.config.failures.node_mtbf_s,
                          &c.failures.node_mtbf_s, sizeof(double)),
              0);
  }
  std::remove(path.c_str());
}

TEST(Server, NonDefaultSessionReplaysByteForByte) {
  // The headline bugfix scenario: a session with every knob off default —
  // retry backoff, Poisson failure injection, utilization noise, CPU-only
  // nodes, CODA ablations. Its journal must record the full config (v2)
  // and replay to the daemon's exact report bytes. Under the v1 format
  // this replayed under defaults and diverged.
  ServerConfig config = tiny_server_config("nondefault", 0.0);
  config.session = non_default_session();
  config.session.base_trace_csv = tiny_trace_csv(11);
  const std::string journal_path = config.journal_path;
  const Endpoint endpoint{config.unix_socket_path, -1};
  Server server(std::move(config));
  ASSERT_TRUE(server.start().ok());

  auto client = Client::connect(endpoint);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 3; ++i) {
    auto resp = client->submit_row(submit_row(2 + i, 600.0 * (i + 1)));
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp->ok()) << resp->payload;
  }
  ASSERT_TRUE(client->drain().ok());
  ASSERT_TRUE(client->shutdown().ok());
  server.wait();
  ASSERT_TRUE(server.drained());

  const std::string live_report = server.report_text();
  ASSERT_FALSE(live_report.empty());

  auto journal = load_journal(journal_path);
  ASSERT_TRUE(journal.ok()) << journal.error().message;
  SessionSpec expected = non_default_session();
  expected.base_trace_csv = tiny_trace_csv(11);
  const std::string expected_header = serialize_session_header(expected);
  EXPECT_EQ(expected_header.rfind("CODA_JOURNAL v2\n", 0), 0u);
  EXPECT_EQ(serialize_session_header(journal->session), expected_header);

  auto replayed = replay_journal_file(journal_path);
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  // The injected failures actually fired (seed 77 / MTBF 1800s over the
  // 2-hour horizon is a deterministic, non-empty outage schedule), and the
  // non-default retry policy shaped the run both live and offline.
  EXPECT_GT(replayed->node_failures, 0);
  EXPECT_EQ(sim::serialize_report(*replayed), live_report);
  std::remove(journal_path.c_str());
  std::remove((journal_path + ".report").c_str());
}

// ------------------------------------------------- pipelining and shards

TEST(LineReader, WholeBatchOfCommandsInOneChunk) {
  // A pipelining client writes a whole window in one send(); one recv()
  // must frame every command.
  std::string stream;
  for (int i = 0; i < 16; ++i) {
    stream += "CID " + std::to_string(i) + " PING\n";
  }
  LineReader reader(256);
  std::vector<std::string> lines;
  ASSERT_TRUE(reader.feed(stream.data(), stream.size(), &lines));
  ASSERT_EQ(lines.size(), 16u);
  EXPECT_EQ(lines[0], "CID 0 PING");
  EXPECT_EQ(lines[15], "CID 15 PING");
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(LineReader, ChunkSplitMidCommandAcrossBatches) {
  // A read boundary in the middle of one command of a multi-command batch:
  // complete lines frame immediately, the partial one carries over.
  LineReader reader(256);
  std::vector<std::string> lines;
  const std::string first = "PING\nSTATUS 7\nSUBM";
  const std::string second = "IT 1,2,cpu\nPING\n";
  ASSERT_TRUE(reader.feed(first.data(), first.size(), &lines));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(reader.pending_bytes(), 4u);  // "SUBM"
  ASSERT_TRUE(reader.feed(second.data(), second.size(), &lines));
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[2], "SUBMIT 1,2,cpu");
  EXPECT_EQ(lines[3], "PING");
}

TEST(LineReader, FeedViewsMatchesFeedAcrossSplits) {
  // The zero-copy path the server uses must frame exactly like feed(),
  // whether a line sits inside one chunk or spans the carry buffer.
  const std::string stream = "CID 1 SHARD 0 PING\r\nSTATUS 5\nPI";
  for (size_t chunk : {size_t{1}, size_t{3}, stream.size()}) {
    LineReader reader(64);
    std::vector<std::string> lines;
    for (size_t off = 0; off < stream.size(); off += chunk) {
      const size_t n = std::min(chunk, stream.size() - off);
      ASSERT_TRUE(reader.feed_views(
          stream.data() + off, n,
          [&lines](std::string_view line) { lines.emplace_back(line); }));
    }
    ASSERT_EQ(lines.size(), 2u) << "chunk=" << chunk;
    EXPECT_EQ(lines[0], "CID 1 SHARD 0 PING");
    EXPECT_EQ(lines[1], "STATUS 5");
    EXPECT_EQ(reader.pending_bytes(), 2u);  // "PI"
  }
}

TEST(Protocol, EnvelopeParsing) {
  auto bare = parse_envelope("PING");
  ASSERT_TRUE(bare.ok());
  EXPECT_FALSE(bare->has_cid);
  EXPECT_EQ(bare->shard, -1);

  auto cid = parse_envelope("CID 42 STATUS 7");
  ASSERT_TRUE(cid.ok());
  EXPECT_TRUE(cid->has_cid);
  EXPECT_EQ(cid->cid, 42u);
  EXPECT_EQ(cid->request.verb, Verb::kStatus);

  // Both prefixes, either order.
  for (const char* line :
       {"CID 9 SHARD 3 PING", "SHARD 3 CID 9 PING"}) {
    auto env = parse_envelope(line);
    ASSERT_TRUE(env.ok()) << line;
    EXPECT_TRUE(env->has_cid);
    EXPECT_EQ(env->cid, 9u);
    EXPECT_EQ(env->shard, 3);
    EXPECT_EQ(env->request.verb, Verb::kPing);
  }

  EXPECT_FALSE(parse_envelope("CID 1 CID 2 PING").ok());      // duplicate
  EXPECT_FALSE(parse_envelope("SHARD 0 SHARD 1 PING").ok());  // duplicate
  EXPECT_FALSE(parse_envelope("CID x PING").ok());
  EXPECT_FALSE(parse_envelope("SHARD 9999999 PING").ok());    // out of range
  EXPECT_FALSE(parse_envelope("CID 7").ok());                 // no request
}

TEST(Mailbox, BatchPushAcceptsPrefixUpToCapacity) {
  Mailbox<int> box(4);
  std::vector<int> batch{1, 2, 3, 4, 5, 6};
  EXPECT_EQ(box.try_push_batch(&batch), 4u);  // capacity bound
  std::vector<int> drained;
  box.drain(&drained);
  ASSERT_EQ(drained.size(), 4u);
  EXPECT_EQ(drained[0], 1);
  EXPECT_EQ(drained[3], 4);
  box.close();
  std::vector<int> more{7};
  EXPECT_EQ(box.try_push_batch(&more), 0u);  // closed accepts nothing
}

ServerConfig sharded_server_config(const std::string& tag, int shards) {
  ServerConfig config = tiny_server_config(tag, 0.0);
  config.limits.shards = shards;
  return config;
}

TEST(Server, PipelinedCidsCompleteAcrossShards) {
  ServerConfig config = sharded_server_config("pipeline", 2);
  config.journal_path.clear();
  const Endpoint endpoint{config.unix_socket_path, -1};
  Server server(std::move(config));
  ASSERT_TRUE(server.start().ok());
  ASSERT_EQ(server.shard_count(), 2);

  auto client = Client::connect(endpoint);
  ASSERT_TRUE(client.ok());
  // A whole window written before reading anything, alternating shards:
  // replies may interleave across shards but every CID must come back
  // exactly once, stamped by the shard that served it.
  constexpr int kWindow = 32;
  for (int i = 0; i < kWindow; ++i) {
    const std::string line = "CID " + std::to_string(100 + i) + " SHARD " +
                             std::to_string(i % 2) + " PING";
    ASSERT_TRUE(client->send(line).ok());
  }
  std::vector<bool> seen(kWindow, false);
  for (int i = 0; i < kWindow; ++i) {
    auto tagged = client->recv_tagged();
    ASSERT_TRUE(tagged.ok()) << tagged.error().message;
    ASSERT_TRUE(tagged->has_cid);
    const int idx = static_cast<int>(tagged->cid) - 100;
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, kWindow);
    EXPECT_FALSE(seen[static_cast<size_t>(idx)]) << "duplicate CID";
    seen[static_cast<size_t>(idx)] = true;
    EXPECT_TRUE(tagged->response.ok());
    const std::string want_shard = "shard=" + std::to_string(idx % 2);
    EXPECT_NE(tagged->response.payload.find(want_shard), std::string::npos)
        << tagged->response.payload;
  }
  // Un-CID'd replies still come back in request order after the window.
  auto plain = client->call("PING");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->ok());
  ASSERT_TRUE(client->shutdown().ok());
  server.wait();
}

TEST(Server, TwoShardJournalsReplayAndMatchSingleShardRuns) {
  // Shard isolation: each shard of a 2-shard session must journal exactly
  // its own submissions, replay byte-identically, AND match the report of
  // a fresh single-shard server fed the same submissions — proving the
  // shards really are independent deterministic engines.
  ServerConfig config = sharded_server_config("twoshard", 2);
  const std::string stem = config.journal_path;
  const Endpoint endpoint{config.unix_socket_path, -1};
  std::vector<std::string> shard_reports(2);
  {
    Server server(std::move(config));
    ASSERT_TRUE(server.start().ok());
    auto client = Client::connect(endpoint);
    ASSERT_TRUE(client.ok());
    auto r0 = client->call("SHARD 0 SUBMIT " + submit_row(2, 600.0));
    ASSERT_TRUE(r0.ok());
    EXPECT_TRUE(r0->ok()) << r0->payload;
    auto r1 = client->call("SHARD 1 SUBMIT " + submit_row(4, 1200.0));
    ASSERT_TRUE(r1.ok());
    EXPECT_TRUE(r1->ok()) << r1->payload;
    ASSERT_TRUE(client->drain().ok());
    ASSERT_TRUE(client->shutdown().ok());
    server.wait();
    ASSERT_TRUE(server.drained());
    shard_reports[0] = server.report_text(0);
    shard_reports[1] = server.report_text(1);
  }
  ASSERT_FALSE(shard_reports[0].empty());
  ASSERT_FALSE(shard_reports[1].empty());
  // The different submissions must have produced different outcomes.
  EXPECT_NE(shard_reports[0], shard_reports[1]);

  for (int k = 0; k < 2; ++k) {
    const std::string journal = stem + ".shard" + std::to_string(k);
    auto replayed = replay_journal_file(journal);
    ASSERT_TRUE(replayed.ok()) << replayed.error().message;
    EXPECT_EQ(sim::serialize_report(*replayed),
              shard_reports[static_cast<size_t>(k)])
        << "shard " << k;
    std::remove(journal.c_str());
    std::remove((journal + ".report").c_str());
  }

  // Same-seed single-shard servers, one per shard's submission stream.
  for (int k = 0; k < 2; ++k) {
    ServerConfig single =
        tiny_server_config("single" + std::to_string(k), 0.0);
    single.journal_path.clear();
    const Endpoint ep{single.unix_socket_path, -1};
    Server server(std::move(single));
    ASSERT_TRUE(server.start().ok());
    auto client = Client::connect(ep);
    ASSERT_TRUE(client.ok());
    auto resp = client->submit_row(
        k == 0 ? submit_row(2, 600.0) : submit_row(4, 1200.0));
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp->ok()) << resp->payload;
    ASSERT_TRUE(client->drain().ok());
    ASSERT_TRUE(client->shutdown().ok());
    server.wait();
    EXPECT_EQ(server.report_text(0), shard_reports[static_cast<size_t>(k)])
        << "single-shard run " << k;
  }
}

TEST(Server, HttpMetricsServedOnSameListener) {
  ServerConfig config = sharded_server_config("http", 2);
  config.journal_path.clear();
  const std::string socket_path = config.unix_socket_path;
  Server server(std::move(config));
  ASSERT_TRUE(server.start().ok());

  auto scrape = [&socket_path](const std::string& request) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_TRUE(::send(fd, request.data(), request.size(), 0) >= 0);
    std::string body;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      body.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return body;
  };

  const std::string resp = scrape("GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK", 0), 0u) << resp.substr(0, 80);
  EXPECT_NE(resp.find("application/openmetrics-text"), std::string::npos);
  // Serving-layer block plus one block per shard, labelled.
  EXPECT_NE(resp.find("coda_serve_connections_active"), std::string::npos);
  EXPECT_NE(resp.find("coda_shard_virtual_time{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(resp.find("coda_shard_virtual_time{shard=\"1\"}"),
            std::string::npos);
  // OpenMetrics exposition must close with the EOF marker.
  const std::string tail = "# EOF\n";
  ASSERT_GE(resp.size(), tail.size());
  EXPECT_EQ(resp.substr(resp.size() - tail.size()), tail);

  const std::string miss = scrape("GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_EQ(miss.rfind("HTTP/1.0 404", 0), 0u) << miss.substr(0, 80);

  server.request_shutdown();
  server.wait();
}

// ------------------------------------------------- auth & snapshot/restore

std::string read_file_or_empty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return {};
  }
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

long long file_size_or(const std::string& path, long long fallback) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<long long>(st.st_size)
                                        : fallback;
}

TEST(Server, AuthGatesEverythingButPing) {
  ServerConfig config = tiny_server_config("auth", 0.0);
  config.journal_path.clear();
  config.auth_token = "sekrit";
  const std::string socket_path = config.unix_socket_path;
  const Endpoint endpoint{socket_path, -1};
  Server server(std::move(config));
  ASSERT_TRUE(server.start().ok());

  auto client = Client::connect(endpoint);
  ASSERT_TRUE(client.ok());
  // PING is the liveness probe — it must answer before authentication.
  auto ping = client->ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_TRUE(ping->ok());
  // Everything else is denied until AUTH succeeds.
  auto denied = client->cluster();
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied->kind, Response::Kind::kErr);
  EXPECT_EQ(denied->code, util::ErrorCode::kPermissionDenied);
  // A wrong token is refused and does not flip the connection to authed.
  auto bad = client->auth("wrong");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->kind, Response::Kind::kErr);
  EXPECT_EQ(bad->code, util::ErrorCode::kPermissionDenied);
  denied = client->metrics();
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied->kind, Response::Kind::kErr);
  // The right token unlocks the session for this connection only.
  auto good = client->auth("sekrit");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->ok()) << good->payload;
  auto cluster = client->cluster();
  ASSERT_TRUE(cluster.ok());
  EXPECT_TRUE(cluster->ok()) << cluster->payload;

  // A second connection starts unauthenticated — auth is per connection,
  // not per process.
  auto other = Client::connect(endpoint);
  ASSERT_TRUE(other.ok());
  auto still_denied = other->cluster();
  ASSERT_TRUE(still_denied.ok());
  EXPECT_EQ(still_denied->kind, Response::Kind::kErr);
  EXPECT_EQ(still_denied->code, util::ErrorCode::kPermissionDenied);

  // The HTTP scrape path refuses too (token-bearing scrapes are not part
  // of the wire protocol; operators must front it with a local proxy).
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
    ASSERT_GE(::send(fd, request.data(), request.size(), 0), 0);
    std::string body;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      body.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    EXPECT_EQ(body.rfind("HTTP/1.0 401", 0), 0u) << body.substr(0, 80);
  }

  ASSERT_TRUE(client->shutdown().ok());
  server.wait();
}

TEST(Server, SnapshotRequiresJournal) {
  ServerConfig config = tiny_server_config("snapnojournal", 0.0);
  config.journal_path.clear();
  const Endpoint endpoint{config.unix_socket_path, -1};
  Server server(std::move(config));
  ASSERT_TRUE(server.start().ok());
  auto client = Client::connect(endpoint);
  ASSERT_TRUE(client.ok());
  auto resp = client->snapshot();
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->kind, Response::Kind::kErr);
  EXPECT_EQ(resp->code, util::ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(client->shutdown().ok());
  server.wait();
}

TEST(Server, SnapshotRestoreResumesByteIdentically) {
  // The tentpole guarantee, end to end: an interrupted daemon (SNAPSHOT,
  // then killed without draining) restarted with --restore must finish
  // with the exact report bytes of an uninterrupted daemon fed the same
  // submissions. AFAP pacing makes the two runs' injection instants
  // deterministic, so the uninterrupted twin is a fair byte reference.
  const std::vector<std::string> rows = {
      submit_row(2, 600.0),  submit_row(3, 1200.0), submit_row(4, 1800.0),
      submit_row(5, 2400.0), submit_row(6, 3000.0), submit_row(7, 3600.0)};

  // Reference: uninterrupted session, all six submissions.
  std::string ref_report;
  {
    ServerConfig config = tiny_server_config("snapref", 0.0);
    const std::string journal_path = config.journal_path;
    const Endpoint endpoint{config.unix_socket_path, -1};
    Server server(std::move(config));
    ASSERT_TRUE(server.start().ok());
    auto client = Client::connect(endpoint);
    ASSERT_TRUE(client.ok());
    for (const std::string& row : rows) {
      auto resp = client->submit_row(row);
      ASSERT_TRUE(resp.ok());
      ASSERT_TRUE(resp->ok()) << resp->payload;
    }
    ASSERT_TRUE(client->drain().ok());
    ASSERT_TRUE(client->shutdown().ok());
    server.wait();
    ASSERT_TRUE(server.drained());
    ref_report = server.report_text();
    ASSERT_FALSE(ref_report.empty());
    std::remove(journal_path.c_str());
    std::remove((journal_path + ".report").c_str());
  }

  // Interrupted: three submissions, SNAPSHOT (truncates the journal),
  // three more, then SHUTDOWN without an explicit DRAIN. A graceful
  // shutdown still finishes the session at exit (so a report exists,
  // mirroring SIGTERM) — but the restore path below ignores that and
  // rebuilds purely from snapshot + journal tail, which is exactly what
  // a kill -9 leaves behind (serve_smoke.sh exercises the real kill -9).
  ServerConfig config = tiny_server_config("snapcut", 0.0);
  config.journal_fsync = true;  // the satellite flag, exercised live
  const std::string journal_path = config.journal_path;
  const std::string socket_path = config.unix_socket_path;
  const Endpoint endpoint{socket_path, -1};
  {
    Server server(std::move(config));
    ASSERT_TRUE(server.start().ok());
    auto client = Client::connect(endpoint);
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 3; ++i) {
      auto resp = client->submit_row(rows[static_cast<size_t>(i)]);
      ASSERT_TRUE(resp.ok());
      ASSERT_TRUE(resp->ok()) << resp->payload;
    }
    const long long before = file_size_or(journal_path, -1);
    ASSERT_GT(before, 0);
    auto snap = client->snapshot();
    ASSERT_TRUE(snap.ok());
    ASSERT_TRUE(snap->ok()) << snap->payload;
    EXPECT_NE(snap->payload.find("seq=1"), std::string::npos)
        << snap->payload;
    // Compaction: the journal shrank back to its header — the three
    // S-lines now live inside the snapshot.
    const long long after = file_size_or(journal_path, -1);
    ASSERT_GT(after, 0);
    EXPECT_LT(after, before);
    auto tail = load_journal(journal_path);
    ASSERT_TRUE(tail.ok()) << tail.error().message;
    EXPECT_TRUE(tail->submissions.empty());
    for (int i = 3; i < 6; ++i) {
      auto resp = client->submit_row(rows[static_cast<size_t>(i)]);
      ASSERT_TRUE(resp.ok());
      ASSERT_TRUE(resp->ok()) << resp->payload;
    }
    ASSERT_TRUE(client->shutdown().ok());
    server.wait();
    // Graceful exit drained the session (the SIGTERM guarantee); the
    // journal tail and snapshot on disk are unaffected by that drain.
    EXPECT_TRUE(server.drained());
  }

  const std::string snap_path = journal_path + ".SNAP.1";
  ASSERT_GT(file_size_or(snap_path, -1), 0);

  // Offline restore: snapshot + journal tail replays to the reference
  // bytes (this is what `coda_cli replay --snapshot` runs).
  {
    auto replayed = replay_from_snapshot(snap_path, journal_path);
    ASSERT_TRUE(replayed.ok()) << replayed.error().message;
    EXPECT_EQ(sim::serialize_report(*replayed), ref_report);
  }

  // Live restore: a fresh daemon on the same journal with restore=true
  // resumes the session and drains to the reference bytes.
  {
    ServerConfig restored = tiny_server_config("snapcut", 0.0);
    restored.restore = true;
    Server server(std::move(restored));
    ASSERT_TRUE(server.start().ok());
    auto client = Client::connect(endpoint);
    ASSERT_TRUE(client.ok());
    // The restore counters surface through METRICS.
    auto metrics = client->metrics();
    ASSERT_TRUE(metrics.ok());
    ASSERT_TRUE(metrics->ok()) << metrics->payload;
    EXPECT_NE(metrics->payload.find("restore_ms"), std::string::npos)
        << metrics->payload;
    EXPECT_NE(metrics->payload.find("snapshots_taken"), std::string::npos);
    ASSERT_TRUE(client->drain().ok());
    ASSERT_TRUE(client->shutdown().ok());
    server.wait();
    ASSERT_TRUE(server.drained());
    EXPECT_EQ(server.report_text(), ref_report);
  }

  std::remove(journal_path.c_str());
  std::remove((journal_path + ".report").c_str());
  std::remove(snap_path.c_str());
}

TEST(Server, PacedSnapshotReplaysFromSnapshotByteForByte) {
  // Mid-run snapshot under wall-clock pacing: submissions land at
  // scattered virtual times, the capture point is wherever the clock
  // happened to be, and the snapshot + truncated-journal pair must still
  // reproduce the live session's exact report offline.
  ServerConfig config = tiny_server_config("snappaced", 100000.0);
  const std::string journal_path = config.journal_path;
  const Endpoint endpoint{config.unix_socket_path, -1};
  Server server(std::move(config));
  ASSERT_TRUE(server.start().ok());

  auto client = Client::connect(endpoint);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 2; ++i) {
    auto resp = client->submit_row(submit_row(2, 300.0));
    ASSERT_TRUE(resp.ok());
    ASSERT_TRUE(resp->ok()) << resp->payload;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  auto snap = client->snapshot();
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(snap->ok()) << snap->payload;
  for (int i = 0; i < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    auto resp = client->submit_row(submit_row(3, 450.0));
    ASSERT_TRUE(resp.ok());
    ASSERT_TRUE(resp->ok()) << resp->payload;
  }
  ASSERT_TRUE(client->drain().ok());
  ASSERT_TRUE(client->shutdown().ok());
  server.wait();
  ASSERT_TRUE(server.drained());

  const std::string live_report = server.report_text();
  ASSERT_FALSE(live_report.empty());
  auto replayed = replay_from_snapshot(journal_path + ".SNAP.1",
                                       journal_path);
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  EXPECT_EQ(sim::serialize_report(*replayed), live_report);
  std::remove(journal_path.c_str());
  std::remove((journal_path + ".report").c_str());
  std::remove((journal_path + ".SNAP.1").c_str());
}

TEST(Server, SecondSnapshotSupersedesFirstAcrossRestores) {
  // Two snapshots in one session: restore must pick .SNAP.2, reject a
  // stale-journal pairing, and still land on the uninterrupted bytes.
  const std::vector<std::string> rows = {
      submit_row(2, 600.0), submit_row(3, 1200.0), submit_row(4, 1800.0),
      submit_row(5, 2400.0)};
  std::string ref_report;
  {
    ServerConfig config = tiny_server_config("snap2ref", 0.0);
    const std::string journal_path = config.journal_path;
    const Endpoint endpoint{config.unix_socket_path, -1};
    Server server(std::move(config));
    ASSERT_TRUE(server.start().ok());
    auto client = Client::connect(endpoint);
    ASSERT_TRUE(client.ok());
    for (const std::string& row : rows) {
      auto resp = client->submit_row(row);
      ASSERT_TRUE(resp.ok());
      ASSERT_TRUE(resp->ok()) << resp->payload;
    }
    ASSERT_TRUE(client->drain().ok());
    ASSERT_TRUE(client->shutdown().ok());
    server.wait();
    ref_report = server.report_text();
    std::remove(journal_path.c_str());
    std::remove((journal_path + ".report").c_str());
  }

  ServerConfig config = tiny_server_config("snap2cut", 0.0);
  const std::string journal_path = config.journal_path;
  const Endpoint endpoint{config.unix_socket_path, -1};
  {
    Server server(std::move(config));
    ASSERT_TRUE(server.start().ok());
    auto client = Client::connect(endpoint);
    ASSERT_TRUE(client.ok());
    auto submit_one = [&client, &rows](int i) {
      auto resp = client->submit_row(rows[static_cast<size_t>(i)]);
      ASSERT_TRUE(resp.ok());
      ASSERT_TRUE(resp->ok()) << resp->payload;
    };
    submit_one(0);
    auto snap = client->snapshot();
    ASSERT_TRUE(snap.ok());
    ASSERT_TRUE(snap->ok()) << snap->payload;
    submit_one(1);
    submit_one(2);
    snap = client->snapshot();
    ASSERT_TRUE(snap.ok());
    ASSERT_TRUE(snap->ok()) << snap->payload;
    EXPECT_NE(snap->payload.find("seq=2"), std::string::npos)
        << snap->payload;
    submit_one(3);
    ASSERT_TRUE(client->shutdown().ok());
    server.wait();
  }

  // find_latest_snapshot picks seq 2.
  auto latest = state::find_latest_snapshot(journal_path + ".SNAP.");
  ASSERT_TRUE(latest.ok()) << latest.error().message;
  EXPECT_EQ(*latest, journal_path + ".SNAP.2");

  auto replayed = replay_from_snapshot(*latest, journal_path);
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  EXPECT_EQ(sim::serialize_report(*replayed), ref_report);

  std::remove(journal_path.c_str());
  std::remove((journal_path + ".report").c_str());
  std::remove((journal_path + ".SNAP.1").c_str());
  std::remove((journal_path + ".SNAP.2").c_str());
}

TEST(Server, RestoreShardRejectsCrossEpochJournal) {
  // A snapshot paired with a journal whose entries predate it (vt <=
  // snapshot vt) is a different truncation epoch — restoring would replay
  // jobs the snapshot already contains. restore_shard must refuse.
  ServerConfig config = tiny_server_config("snapepoch", 100000.0);
  const std::string journal_path = config.journal_path;
  const Endpoint endpoint{config.unix_socket_path, -1};
  std::string pre_snapshot_journal;
  {
    Server server(std::move(config));
    ASSERT_TRUE(server.start().ok());
    auto client = Client::connect(endpoint);
    ASSERT_TRUE(client.ok());
    auto resp = client->submit_row(submit_row(2, 300.0));
    ASSERT_TRUE(resp.ok());
    ASSERT_TRUE(resp->ok()) << resp->payload;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    pre_snapshot_journal = read_file_or_empty(journal_path);
    ASSERT_FALSE(pre_snapshot_journal.empty());
    auto snap = client->snapshot();
    ASSERT_TRUE(snap.ok());
    ASSERT_TRUE(snap->ok()) << snap->payload;
    ASSERT_TRUE(client->shutdown().ok());
    server.wait();
  }
  // Re-plant the pre-snapshot journal next to the snapshot: its S-line's
  // vt is before the capture point.
  {
    std::FILE* f = std::fopen(journal_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(pre_snapshot_journal.data(), 1,
                          pre_snapshot_journal.size(), f),
              pre_snapshot_journal.size());
    std::fclose(f);
  }
  auto shard = restore_shard(journal_path + ".SNAP.1", journal_path);
  ASSERT_FALSE(shard.ok());
  EXPECT_EQ(shard.error().code, util::ErrorCode::kFailedPrecondition);
  EXPECT_NE(shard.error().message.find("truncation epoch"),
            std::string::npos)
      << shard.error().message;
  std::remove(journal_path.c_str());
  std::remove((journal_path + ".SNAP.1").c_str());
}

}  // namespace
}  // namespace coda::service
