// Tests for the real-time contention eliminator (Sec. V-D), driven through
// the real engine so MBM samples and MBA caps are live.
#include <gtest/gtest.h>

#include "coda/eliminator.h"
#include "sim/engine.h"
#include "workload/heat.h"

namespace coda::core {
namespace {

using perfmodel::ModelId;

class ProbeScheduler : public sched::Scheduler {
 public:
  const char* name() const override { return "probe"; }
  void submit(const workload::JobSpec&) override {}
  void on_job_finished(const workload::JobSpec&) override {}
  void kick() override {}
  void on_job_evicted(const workload::JobSpec& spec) override {
    evicted.push_back(spec.id);
  }
  size_t pending_jobs() const override { return 0; }
  size_t pending_gpu_jobs() const override { return 0; }
  std::optional<PendingGpuDemand> min_pending_gpu_demand() const override {
    return std::nullopt;
  }
  std::vector<cluster::JobId> evicted;
  sched::SchedulerEnv& env() { return env_; }
};

struct Rig {
  explicit Rig(bool mba_capable, bool record_events = false)
      : probe(), engine(make_config(mba_capable, record_events), &probe) {}

  static sim::EngineConfig make_config(bool mba_capable, bool record_events) {
    sim::EngineConfig cfg;
    cfg.cluster.node_count = 1;
    cfg.cluster.mba_fraction = mba_capable ? 1.0 : 0.0;
    cfg.record_events = record_events;
    return cfg;
  }

  // Places a latency-sensitive GPU job and a HEAT hog on node 0. The hog
  // pushes the node past the 75% threshold and the GPU job's utilization
  // below expectation.
  void place_contended_pair(int heat_threads = 16) {
    workload::JobSpec gpu;
    gpu.id = 1;
    gpu.kind = workload::JobKind::kGpuTraining;
    gpu.model = ModelId::kTransformer;
    gpu.iterations = 1e9;
    engine.inject(gpu, 0.0);
    auto hog = workload::make_heat_job(workload::HeatParams{heat_threads}, 1e9);
    hog.id = 2;
    engine.inject(hog, 0.0);
    engine.run_until(0.0);
    sched::Placement p1;
    p1.nodes.push_back(sched::NodePlacement{0, 2, 1});
    ASSERT_TRUE(probe.env().start_job(1, p1).ok());
    sched::Placement p2;
    p2.nodes.push_back(sched::NodePlacement{0, heat_threads, 0});
    ASSERT_TRUE(probe.env().start_job(2, p2).ok());
    engine.run_until(1.0);
  }

  double expected_util(cluster::JobId job) const {
    return engine.expected_gpu_utilization(job);
  }

  ProbeScheduler probe;
  sim::ClusterEngine engine;
};

TEST(Eliminator, ThrottlesWithMbaWhenAvailable) {
  Rig rig(/*mba_capable=*/true);
  rig.place_contended_pair();
  const double before = rig.engine.gpu_utilization(1);
  EXPECT_LT(before, rig.expected_util(1) * 0.97);  // genuinely suffering

  ContentionEliminator elim(EliminatorConfig{}, &rig.probe.env());
  elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  EXPECT_EQ(elim.stats().mba_throttles, 1);
  EXPECT_EQ(elim.stats().core_halvings, 0);
  rig.engine.run_until(2.0);
  EXPECT_GT(rig.engine.gpu_utilization(1), before);
}

TEST(Eliminator, HalvesCoresWithoutMba) {
  Rig rig(/*mba_capable=*/false);
  rig.place_contended_pair();
  ContentionEliminator elim(EliminatorConfig{}, &rig.probe.env());
  elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  EXPECT_EQ(elim.stats().mba_throttles, 0);
  EXPECT_EQ(elim.stats().core_halvings, 1);
  // The CPU job now holds half the cores.
  EXPECT_EQ(rig.engine.cluster().node(0).allocation_of(2)->cpus, 8);
}

TEST(Eliminator, ResizeCallbackFires) {
  Rig rig(/*mba_capable=*/false);
  rig.place_contended_pair();
  cluster::JobId resized = 0;
  int new_cores = 0;
  ContentionEliminator elim(
      EliminatorConfig{}, &rig.probe.env(),
      [&](cluster::JobId job, cluster::NodeId, int cores) {
        resized = job;
        new_cores = cores;
      });
  elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  EXPECT_EQ(resized, 2u);
  EXPECT_EQ(new_cores, 8);
}

TEST(Eliminator, IdleNodeBelowThresholdUntouched) {
  Rig rig(/*mba_capable=*/true);
  rig.place_contended_pair(/*heat_threads=*/4);  // 32 GB/s, far below 75%
  ContentionEliminator elim(EliminatorConfig{}, &rig.probe.env());
  elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  EXPECT_EQ(elim.stats().mba_throttles, 0);
  EXPECT_EQ(elim.stats().core_halvings, 0);
  EXPECT_EQ(elim.stats().nodes_over_threshold, 0);
}

TEST(Eliminator, NoActionWithoutGpuUtilizationDrop) {
  // Pressure above threshold but the co-located GPU job is insensitive:
  // the eliminator must leave the CPU job alone (Sec. V-D requires both
  // conditions).
  Rig rig(/*mba_capable=*/true);
  workload::JobSpec gpu;
  gpu.id = 1;
  gpu.kind = workload::JobKind::kGpuTraining;
  gpu.model = ModelId::kInceptionV3;  // near-insensitive to contention
  gpu.iterations = 1e9;
  rig.engine.inject(gpu, 0.0);
  auto hog = workload::make_heat_job(workload::HeatParams{15}, 1e9);
  hog.id = 2;
  rig.engine.inject(hog, 0.0);
  rig.engine.run_until(0.0);
  sched::Placement p1;
  p1.nodes.push_back(sched::NodePlacement{0, 2, 1});
  ASSERT_TRUE(rig.probe.env().start_job(1, p1).ok());
  sched::Placement p2;
  p2.nodes.push_back(sched::NodePlacement{0, 15, 0});
  ASSERT_TRUE(rig.probe.env().start_job(2, p2).ok());
  rig.engine.run_until(1.0);

  // 15 x 8 = 120 GB/s > 112.5 threshold, but Inception's util barely moves.
  EXPECT_GT(rig.probe.env().bandwidth->sample(0).pressure(), 0.75);
  ContentionEliminator elim(EliminatorConfig{}, &rig.probe.env());
  elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  EXPECT_EQ(elim.stats().mba_throttles, 0);
  EXPECT_EQ(elim.stats().core_halvings, 0);
}

TEST(Eliminator, UserFacingInferenceIsNeverThrottled) {
  // Two equal bandwidth hogs beside a sensitive trainer; the user-facing
  // one must be spared (Sec. V-A) and the other throttled.
  Rig rig(/*mba_capable=*/true);
  workload::JobSpec gpu;
  gpu.id = 1;
  gpu.kind = workload::JobKind::kGpuTraining;
  gpu.model = ModelId::kTransformer;
  gpu.iterations = 1e9;
  rig.engine.inject(gpu, 0.0);
  auto inference = workload::make_heat_job(workload::HeatParams{8}, 1e9);
  inference.id = 2;
  inference.user_facing = true;
  rig.engine.inject(inference, 0.0);
  auto batch = workload::make_heat_job(workload::HeatParams{8}, 1e9);
  batch.id = 3;
  rig.engine.inject(batch, 0.0);
  rig.engine.run_until(0.0);
  sched::Placement p1;
  p1.nodes.push_back(sched::NodePlacement{0, 2, 1});
  ASSERT_TRUE(rig.probe.env().start_job(1, p1).ok());
  for (cluster::JobId id : {2, 3}) {
    sched::Placement p;
    p.nodes.push_back(sched::NodePlacement{0, 8, 0});
    ASSERT_TRUE(rig.probe.env().start_job(id, p).ok());
  }
  rig.engine.run_until(1.0);

  ContentionEliminator elim(
      EliminatorConfig{}, &rig.probe.env(), nullptr,
      [](cluster::JobId job) { return job == 2; });
  elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  EXPECT_GE(elim.stats().mba_throttles, 1);
  // Only the batch hog was capped; clearing job 3's caps restores pressure,
  // proving job 2 holds none.
  rig.probe.env().clear_bw_cap(0, 3);
  const auto sample = rig.probe.env().bandwidth->sample(0);
  EXPECT_GT(sample.pressure(), 0.75);
}

TEST(Eliminator, ReleaseRestoresCapsWhenPressureSubsides) {
  // Extension (release_when_calm): a cap set while a second hog was active
  // is released after that hog leaves and pressure stays safely low.
  Rig rig(/*mba_capable=*/true);
  rig.place_contended_pair(/*heat_threads=*/10);  // 80 GB/s
  auto second = workload::make_heat_job(workload::HeatParams{10}, 1e9);
  second.id = 3;
  rig.engine.inject(second, 1.0);
  rig.engine.run_until(1.0);
  sched::Placement p;
  p.nodes.push_back(sched::NodePlacement{0, 10, 0});
  ASSERT_TRUE(rig.probe.env().start_job(3, p).ok());
  rig.engine.run_until(2.0);

  EliminatorConfig cfg;
  cfg.release_when_calm = true;
  ContentionEliminator elim(cfg, &rig.probe.env());
  elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  ASSERT_GE(elim.stats().mba_throttles, 1);

  // The second hog leaves; pressure collapses; caps come off.
  ASSERT_TRUE(rig.probe.env().preempt_job(3, false).ok());
  rig.engine.run_until(3.0);
  elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  EXPECT_GE(elim.stats().releases, 1);
  rig.engine.run_until(4.0);
  // The surviving hog runs unthrottled again (~80 GB/s + trainer).
  EXPECT_GT(rig.probe.env().bandwidth->sample(0).total_gbps, 75.0);
}

TEST(Eliminator, ReleaseGuardsAgainstOscillation) {
  // A single over-threshold hog: releasing its cap would immediately push
  // the node back over the trigger, so the guard must keep it throttled.
  Rig rig(/*mba_capable=*/true);
  rig.place_contended_pair(/*heat_threads=*/16);  // 128 GB/s -> 0.87
  EliminatorConfig cfg;
  cfg.release_when_calm = true;
  ContentionEliminator elim(cfg, &rig.probe.env());
  elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  ASSERT_EQ(elim.stats().mba_throttles, 1);
  // Pressure is now ~0.44, below the release threshold — but restoring
  // would bounce straight back over 0.75.
  for (int i = 0; i < 5; ++i) {
    rig.engine.run_until(2.0 + i);
    elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  }
  EXPECT_EQ(elim.stats().releases, 0);
  EXPECT_EQ(elim.stats().mba_throttles, 1);  // no re-throttle churn either
}

TEST(Eliminator, ForgetJobClearsLiveMbaCap) {
  // A scheduler abort bypasses the engine's stop path from the eliminator's
  // point of view: forget_job must drop the throttle record AND the cap, or
  // the cap would shadow the job's next run.
  Rig rig(/*mba_capable=*/true);
  rig.place_contended_pair();
  ContentionEliminator elim(EliminatorConfig{}, &rig.probe.env());
  elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  ASSERT_EQ(elim.stats().mba_throttles, 1);
  ASSERT_TRUE(elim.is_throttled(2));

  elim.forget_job(2);
  EXPECT_FALSE(elim.is_throttled(2));
  rig.engine.run_until(2.0);
  // The cap is gone: the hog's full traffic returns.
  EXPECT_GT(rig.probe.env().bandwidth->sample(0).pressure(), 0.75);
}

TEST(Eliminator, ForgetAfterEngineStopEmitsNoSpuriousClear) {
  // When the job already left through an engine stop path (finish, failure
  // eviction), the engine cleared its caps; forget_job must only drop the
  // record, not emit a second bw_cap_clear event.
  Rig rig(/*mba_capable=*/true, /*record_events=*/true);
  rig.place_contended_pair();
  ContentionEliminator elim(EliminatorConfig{}, &rig.probe.env());
  elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  ASSERT_TRUE(elim.is_throttled(2));

  ASSERT_TRUE(rig.probe.env().preempt_job(2, /*keep_progress=*/false).ok());
  // The engine dropped the cap internally (no clear event); forgetting the
  // job afterwards must not fabricate one.
  const auto& log = rig.engine.event_log();
  ASSERT_EQ(log.count(sim::EventKind::kBwCap), 1u);
  ASSERT_EQ(log.count(sim::EventKind::kBwCapClear), 0u);
  elim.forget_job(2);
  EXPECT_FALSE(elim.is_throttled(2));
  EXPECT_EQ(log.count(sim::EventKind::kBwCapClear), 0u);
}

TEST(Eliminator, ReleaseProjectionScalesHalvedCoresBack) {
  // Core-halving path: the achieved bandwidth is measured on HALVED cores.
  // The release projection must scale it back by original/current cores;
  // an unscaled projection (40/150 here) would sit below the 0.75 trigger
  // and release a job whose restored traffic (x2) bounces the node over.
  Rig rig(/*mba_capable=*/false);
  rig.place_contended_pair(/*heat_threads=*/10);  // 80 GB/s hog (job 2)
  auto second = workload::make_heat_job(workload::HeatParams{10}, 1e9);
  second.id = 3;
  rig.engine.inject(second, 1.0);
  rig.engine.run_until(1.0);
  sched::Placement p;
  p.nodes.push_back(sched::NodePlacement{0, 10, 0});
  ASSERT_TRUE(rig.probe.env().start_job(3, p).ok());
  rig.engine.run_until(2.0);

  EliminatorConfig cfg;
  cfg.release_when_calm = true;
  ContentionEliminator elim(cfg, &rig.probe.env());
  // 80 + 80 + trainer >> 112.5: both hogs are halved to 5 cores.
  elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  ASSERT_EQ(elim.stats().core_halvings, 2);
  ASSERT_EQ(rig.engine.cluster().node(0).allocation_of(2)->cpus, 5);

  // The second hog leaves; pressure drops to ~(40 + trainer)/150 < 0.55,
  // so the release pass runs — but restoring job 2 to 10 cores would add
  // ~2 x 40/150 and cross the 0.75 trigger again, so it must stay halved.
  ASSERT_TRUE(rig.probe.env().preempt_job(3, false).ok());
  rig.engine.run_until(3.0);
  elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  EXPECT_EQ(elim.stats().releases, 0);
  EXPECT_TRUE(elim.is_throttled(2));
  EXPECT_EQ(rig.engine.cluster().node(0).allocation_of(2)->cpus, 5);
}

TEST(Eliminator, DisabledDoesNothing) {
  Rig rig(/*mba_capable=*/true);
  rig.place_contended_pair();
  EliminatorConfig cfg;
  cfg.enabled = false;
  ContentionEliminator elim(cfg, &rig.probe.env());
  elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  EXPECT_EQ(elim.stats().checks, 0);
  EXPECT_EQ(elim.stats().mba_throttles, 0);
}

TEST(Eliminator, DnnJobsAreNeverThrottled) {
  // Two GPU jobs alone can exceed the threshold in principle; the
  // eliminator must not touch them (only CPU jobs are throttled).
  Rig rig(/*mba_capable=*/true);
  rig.place_contended_pair();
  ContentionEliminator elim(EliminatorConfig{}, &rig.probe.env());
  elim.check_all([&](cluster::JobId j) { return rig.expected_util(j); });
  // The GPU job's core allocation is untouched.
  EXPECT_EQ(rig.engine.cluster().node(0).allocation_of(1)->cpus, 2);
}

}  // namespace
}  // namespace coda::core
