// Property-based tests: randomized workloads swept across seeds and
// policies, checking invariants that must hold for *every* trace —
// conservation of resources, physical lower bounds on completion times,
// queue-accounting consistency, metric ranges, and cross-policy sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "coda/coda_scheduler.h"
#include "sched/drf.h"
#include "sched/fifo.h"
#include "sim/experiment.h"
#include "workload/trace_gen.h"

namespace coda::sim {
namespace {

struct Case {
  uint64_t seed;
  Policy policy;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return std::string(to_string(info.param.policy)) + "_seed" +
         std::to_string(info.param.seed);
}

class ReplayProperties : public testing::TestWithParam<Case> {
 protected:
  static std::vector<workload::JobSpec> trace_for(uint64_t seed) {
    auto cfg = standard_week_trace(seed);
    cfg.duration_s = 0.25 * 86400.0;
    cfg.cpu_jobs = 500;
    cfg.gpu_jobs = 220;
    return workload::TraceGenerator(cfg).generate();
  }
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReplayProperties,
    testing::Values(Case{101, Policy::kFifo}, Case{101, Policy::kDrf},
                    Case{101, Policy::kCoda}, Case{202, Policy::kFifo},
                    Case{202, Policy::kDrf}, Case{202, Policy::kCoda},
                    Case{303, Policy::kCoda}, Case{404, Policy::kCoda},
                    Case{505, Policy::kCoda}),
    case_name);

TEST_P(ReplayProperties, InvariantsHoldOnRandomTraces) {
  const auto trace = trace_for(GetParam().seed);
  const auto report = run_experiment(GetParam().policy, trace);
  perfmodel::TrainPerf perf;

  // Every job completes at this load, exactly once, with consistent
  // bookkeeping.
  EXPECT_EQ(report.completed, trace.size());
  ASSERT_EQ(report.records.size(), trace.size());

  for (const auto& record : report.records) {
    ASSERT_TRUE(record.completed) << record.spec.label();
    // Causality.
    EXPECT_GE(record.first_start_time, record.submit_time - 1e-9);
    EXPECT_GT(record.finish_time, record.first_start_time - 1e-9);
    EXPECT_GE(record.queue_time_total, -1e-9);
    EXPECT_LE(record.initial_queue_time(),
              record.queue_time_total + 1e-9);
    EXPECT_GE(record.preempt_count, 0);

    // Physical lower bound on processing time: no scheduler can run a job
    // faster than its work at the best possible allocation with zero
    // contention.
    const double processing =
        record.finish_time - record.first_start_time;
    if (record.spec.is_gpu_job()) {
      const double floor_iter = perf.iter_time(
          record.spec.model, record.spec.train_config, /*cores=*/26);
      EXPECT_GE(processing,
                record.spec.iterations * floor_iter * (1.0 - 1e-9))
          << record.spec.label();
      EXPECT_GE(record.final_cpus, 1);
      EXPECT_LE(record.final_cpus, 26);
    } else {
      EXPECT_GE(processing, record.spec.cpu_work_core_s /
                                    std::max(1, record.spec.cpu_cores) -
                                1e-6)
          << record.spec.label();
    }
  }

  // Metric samples stay in range.
  for (const auto& p : report.gpu_active_series.points()) {
    EXPECT_GE(p.value, 0.0);
    EXPECT_LE(p.value, 1.0);
  }
  for (const auto& p : report.gpu_util_series.points()) {
    EXPECT_GE(p.value, 0.0);
    EXPECT_LE(p.value, 1.0);
  }
  EXPECT_GE(report.frag_rate, 0.0);
  EXPECT_LE(report.frag_rate + report.frag_case2_rate, 1.0 + 1e-9);

  // Queue samples cover every job exactly once.
  EXPECT_EQ(report.gpu_queue_times.size() + report.cpu_queue_times.size(),
            trace.size());
  size_t by_tenant = 0;
  for (const auto& [tenant, queues] : report.queue_by_tenant) {
    by_tenant += queues.size();
  }
  EXPECT_EQ(by_tenant, trace.size());
}

TEST_P(ReplayProperties, WorkConservationAcrossPreemptions) {
  // A preempted-without-progress CPU job still finishes with at least its
  // full work worth of processing accumulated over its runs; this is
  // implied by the lower-bound check above plus preempt accounting, but
  // here we verify the queue/processing decomposition sums to the
  // end-to-end latency.
  const auto trace = trace_for(GetParam().seed);
  const auto report = run_experiment(GetParam().policy, trace);
  for (const auto& record : report.records) {
    if (record.preempt_count == 0) {
      const double decomposition =
          record.initial_queue_time() +
          (record.finish_time - record.first_start_time);
      EXPECT_NEAR(decomposition, record.end_to_end_latency(), 1e-6)
          << record.spec.label();
    } else {
      // With preemptions, total pending + total running spans the latency.
      EXPECT_LE(record.queue_time_total,
                record.end_to_end_latency() + 1e-6);
    }
  }
}

TEST_P(ReplayProperties, SurvivesNodeOutages) {
  // Inject rolling outages (one node down every 2 simulated hours for 30
  // minutes); every job must still complete, with consistent records.
  const auto trace = trace_for(GetParam().seed);
  std::unique_ptr<sched::Scheduler> scheduler;
  switch (GetParam().policy) {
    case Policy::kFifo:
      scheduler = std::make_unique<sched::FifoScheduler>();
      break;
    case Policy::kDrf:
      scheduler = std::make_unique<sched::DrfScheduler>();
      break;
    case Policy::kCoda:
      scheduler = std::make_unique<core::CodaScheduler>(core::CodaConfig{});
      break;
  }
  ClusterEngine engine(EngineConfig{}, scheduler.get());
  engine.load_trace(trace);
  for (int i = 0; i < 6; ++i) {
    engine.schedule_node_outage(
        static_cast<cluster::NodeId>((GetParam().seed + 13 * i) % 80),
        3600.0 + i * 7200.0, 1800.0);
  }
  engine.drain(6.0 * 86400.0);
  EXPECT_EQ(engine.finished_jobs(), trace.size());
  EXPECT_EQ(engine.node_failures(), 6);
  for (const auto& [id, record] : engine.records()) {
    EXPECT_TRUE(record.completed) << record.spec.label();
    EXPECT_GE(record.preempt_count, 0);
  }
  // No node left in the failed state, nothing still allocated.
  for (const auto& node : engine.cluster().nodes()) {
    EXPECT_FALSE(node.failed());
  }
  EXPECT_EQ(engine.cluster().used_cpus(), 0);
  EXPECT_EQ(engine.cluster().used_gpus(), 0);
}

// CODA-specific properties over random traces.
class CodaProperties : public testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CodaProperties,
                         testing::Values(11, 22, 33, 44));

TEST_P(CodaProperties, TuningOutcomesAreSane) {
  auto cfg = standard_week_trace(GetParam());
  cfg.duration_s = 0.25 * 86400.0;
  cfg.cpu_jobs = 300;
  cfg.gpu_jobs = 250;
  const auto trace = workload::TraceGenerator(cfg).generate();
  const auto report = run_experiment(Policy::kCoda, trace);
  perfmodel::TrainPerf perf;

  size_t gpu_jobs = 0;
  for (const auto& spec : trace) {
    gpu_jobs += spec.is_gpu_job() ? 1 : 0;
  }
  // Every completed GPU job produces exactly one tuning outcome — a
  // migration cancels the session and the restart opens a fresh one, so
  // the count is invariant to migrations.
  EXPECT_EQ(report.tuning_outcomes.size(), gpu_jobs);
  for (const auto& outcome : report.tuning_outcomes) {
    EXPECT_GE(outcome.start_cpus, 1);
    EXPECT_LE(outcome.start_cpus, 26);
    EXPECT_GE(outcome.final_cpus, 1);
    EXPECT_LE(outcome.final_cpus, 26);
    EXPECT_GE(outcome.profile_steps, 0);
    EXPECT_LE(outcome.profile_steps, 10);
  }

  // Jobs that ran long enough to converge end close to the model optimum.
  int converged = 0;
  int near_opt = 0;
  for (const auto& outcome : report.tuning_outcomes) {
    if (outcome.profile_steps < 2) {
      continue;  // finished before the tuner had a chance
    }
    ++converged;
    // Look the job's config up from the trace.
    const auto& spec = trace[static_cast<size_t>(outcome.job - 1)];
    const int opt = perf.optimal_cores(spec.model, spec.train_config);
    if (std::abs(outcome.final_cpus - opt) <= 2) {
      ++near_opt;
    }
  }
  if (converged >= 10) {
    EXPECT_GE(static_cast<double>(near_opt) / converged, 0.7);
  }
}

}  // namespace
}  // namespace coda::sim
