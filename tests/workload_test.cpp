// Tests for the trace generator (paper workload marginals), tenants and
// trace serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "workload/tenant.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace coda::workload {
namespace {

TraceConfig small_config(uint64_t seed = 42) {
  TraceConfig cfg;
  cfg.seed = seed;
  cfg.duration_s = 2.0 * 86400.0;
  cfg.cpu_jobs = 3000;
  cfg.gpu_jobs = 2000;
  return cfg;
}

TEST(Tenants, StandardPopulation) {
  const auto tenants = standard_tenants();
  ASSERT_EQ(tenants.size(), 20u);
  int lab = 0;
  int company = 0;
  int cpu_only = 0;
  for (const auto& t : tenants) {
    switch (t.cls) {
      case TenantClass::kResearchLab:
        ++lab;
        EXPECT_FALSE(t.preferred_models.empty());
        break;
      case TenantClass::kAiCompany:
        ++company;
        break;
      case TenantClass::kCpuOnly:
        ++cpu_only;
        EXPECT_TRUE(t.preferred_models.empty());
        break;
    }
  }
  EXPECT_EQ(lab, 5);
  EXPECT_EQ(company, 10);
  EXPECT_EQ(cpu_only, 5);
  // Users 15-19 are the CPU-only ones (Fig. 12).
  for (int i = 15; i < 20; ++i) {
    EXPECT_EQ(tenants[static_cast<size_t>(i)].cls, TenantClass::kCpuOnly);
  }
}

TEST(TraceGenerator, DeterministicForSeed) {
  const auto a = TraceGenerator(small_config(7)).generate();
  const auto b = TraceGenerator(small_config(7)).generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_DOUBLE_EQ(a[i].iterations, b[i].iterations);
  }
  const auto c = TraceGenerator(small_config(8)).generate();
  bool any_diff = false;
  for (size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    any_diff |= a[i].submit_time != c[i].submit_time;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TraceGenerator, SortedWithConsecutiveIds) {
  const auto trace = TraceGenerator(small_config()).generate();
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, i + 1);
    if (i > 0) {
      EXPECT_GE(trace[i].submit_time, trace[i - 1].submit_time);
    }
    EXPECT_LT(trace[i].submit_time, small_config().duration_s);
  }
}

// The published marginals of Sec. III / VI-A re-emerge from the generator.
TEST(TraceGenerator, MarginalsMatchPaper) {
  auto cfg = small_config();
  cfg.cpu_jobs = 15000;
  cfg.gpu_jobs = 5000;
  const auto trace = TraceGenerator(cfg).generate();
  const auto s = TraceGenerator::summarize(trace);
  EXPECT_EQ(s.cpu_jobs, 15000);
  EXPECT_EQ(s.gpu_jobs, 5000);
  // Fig. 2d: 76.1% request 1-2 cores per GPU (plus a sliver of the 3-10
  // bucket whose absolute ask also lands at <= 2 per GPU on 4-GPU jobs);
  // 15.3% request > 10.
  EXPECT_NEAR(s.frac_gpu_req_1_2_cores, 0.787, 0.04);
  EXPECT_NEAR(s.frac_gpu_req_gt10_cores, 0.153, 0.03);
  // Sec. VI-F: 68.5% of training jobs run > 1 h, 39.6% > 2 h.
  EXPECT_NEAR(s.frac_gpu_runtime_gt_1h, 0.685, 0.03);
  EXPECT_NEAR(s.frac_gpu_runtime_gt_2h, 0.396, 0.03);
  // Sec. VI-E: ~0.5% of CPU jobs are bandwidth hogs.
  EXPECT_NEAR(s.frac_heavy_bw_cpu, 0.005, 0.004);
  EXPECT_NEAR(s.frac_gpu_multi_node, 0.10, 0.03);
}

TEST(TraceGenerator, UserFacingInferenceComesFromCompanies) {
  auto cfg = small_config();
  cfg.cpu_jobs = 10000;
  cfg.gpu_jobs = 0;
  const auto trace = TraceGenerator(cfg).generate();
  int company_cpu = 0;
  int company_user_facing = 0;
  for (const auto& spec : trace) {
    if (spec.user_facing) {
      // Only the AI companies (tenants 5-14) run user-facing inference.
      EXPECT_GE(spec.tenant, 5u);
      EXPECT_LT(spec.tenant, 15u);
    }
    if (spec.tenant >= 5 && spec.tenant < 15) {
      ++company_cpu;
      company_user_facing += spec.user_facing ? 1 : 0;
    }
  }
  ASSERT_GT(company_cpu, 0);
  EXPECT_NEAR(static_cast<double>(company_user_facing) / company_cpu,
              cfg.user_facing_cpu_fraction, 0.03);
  const auto s = TraceGenerator::summarize(trace);
  EXPECT_GT(s.frac_user_facing_cpu, 0.05);
}

TEST(TraceGenerator, CpuOnlyUsersNeverSubmitGpuJobs) {
  const auto trace = TraceGenerator(small_config()).generate();
  for (const auto& spec : trace) {
    if (spec.tenant >= 15) {
      EXPECT_FALSE(spec.is_gpu_job()) << spec.label();
    }
  }
}

TEST(TraceGenerator, ResearchLabDominatesGpuSubmissions) {
  const auto trace = TraceGenerator(small_config()).generate();
  int lab_gpu = 0;
  int company_gpu = 0;
  for (const auto& spec : trace) {
    if (spec.is_gpu_job()) {
      (spec.tenant < 5 ? lab_gpu : company_gpu) += 1;
    }
  }
  EXPECT_GT(lab_gpu, company_gpu);
}

TEST(TraceGenerator, DiurnalCpuArrivals) {
  auto cfg = small_config();
  cfg.cpu_jobs = 20000;
  cfg.gpu_jobs = 0;
  cfg.diurnal_amplitude = 0.8;
  const auto trace = TraceGenerator(cfg).generate();
  // Peak quarter-day (rate 1+A at sin=1, t around 6h +- 3h) vs trough
  // (around 18h): arrival counts should differ strongly.
  int peak = 0;
  int trough = 0;
  for (const auto& spec : trace) {
    const double tod = std::fmod(spec.submit_time, 86400.0);
    if (tod > 3.0 * 3600 && tod < 9.0 * 3600) {
      ++peak;
    } else if (tod > 15.0 * 3600 && tod < 21.0 * 3600) {
      ++trough;
    }
  }
  EXPECT_GT(peak, trough * 3);
}

TEST(TraceGenerator, GpuJobsCarryPositiveWork) {
  const auto trace = TraceGenerator(small_config()).generate();
  for (const auto& spec : trace) {
    if (spec.is_gpu_job()) {
      EXPECT_GE(spec.iterations, 1.0);
      EXPECT_GE(spec.requested_cpus, 1);
      EXPECT_LE(spec.requested_cpus, 24);
      const double ideal = TraceGenerator::ideal_gpu_runtime(spec);
      EXPECT_GE(ideal, 250.0);
      EXPECT_LE(ideal, 49.0 * 3600.0);
    } else {
      EXPECT_GT(spec.cpu_work_core_s, 0.0);
      EXPECT_GE(spec.cpu_cores, 1);
      EXPECT_GT(spec.mem_bw_gbps, 0.0);
    }
  }
}

TEST(TraceIo, RoundTripPreservesJobs) {
  auto cfg = small_config();
  cfg.cpu_jobs = 200;
  cfg.gpu_jobs = 200;
  const auto trace = TraceGenerator(cfg).generate();
  auto parsed = trace_from_csv(trace_to_csv(trace));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    const auto& a = trace[i];
    const auto& b = (*parsed)[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.tenant, b.tenant);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_NEAR(a.submit_time, b.submit_time, 1e-3);
    if (a.is_gpu_job()) {
      EXPECT_EQ(a.model, b.model);
      EXPECT_EQ(a.train_config.nodes, b.train_config.nodes);
      EXPECT_EQ(a.train_config.gpus_per_node, b.train_config.gpus_per_node);
      EXPECT_NEAR(a.iterations, b.iterations, 0.1);
      EXPECT_EQ(a.requested_cpus, b.requested_cpus);
      EXPECT_EQ(a.hints.pipelined, b.hints.pipelined);
    } else {
      EXPECT_EQ(a.cpu_cores, b.cpu_cores);
      EXPECT_NEAR(a.cpu_work_core_s, b.cpu_work_core_s, 1e-3);
      EXPECT_NEAR(a.mem_bw_gbps, b.mem_bw_gbps, 1e-3);
    }
  }
}

TEST(TraceIo, FileRoundTrip) {
  auto cfg = small_config();
  cfg.cpu_jobs = 50;
  cfg.gpu_jobs = 50;
  const auto trace = TraceGenerator(cfg).generate();
  const std::string path = testing::TempDir() + "/coda_trace_test.csv";
  ASSERT_TRUE(save_trace(path, trace).ok());
  auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), trace.size());
  EXPECT_FALSE(load_trace("/nonexistent/trace.csv").ok());
}

TEST(TraceIo, RejectsCorruptHeader) {
  auto parsed = trace_from_csv("id,bogus\n1,2\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, util::ErrorCode::kParseError);
}

TEST(TraceIo, RejectsUnknownModelAndKind) {
  auto cfg = small_config();
  cfg.cpu_jobs = 0;
  cfg.gpu_jobs = 1;
  const auto trace = TraceGenerator(cfg).generate();
  std::string csv = trace_to_csv(trace);
  std::string broken = csv;
  const auto model_name =
      std::string(perfmodel::to_string(trace[0].model));
  broken.replace(broken.find(model_name), model_name.size(), "NotAModel");
  EXPECT_FALSE(trace_from_csv(broken).ok());
  std::string broken2 = csv;
  broken2.replace(broken2.find(",gpu,"), 5, ",xyz,");
  EXPECT_FALSE(trace_from_csv(broken2).ok());
}

// One hand-built job of each kind with distinctive field values, so the
// corruption tests below can string-replace without ambiguity.
JobSpec distinctive_gpu_spec() {
  JobSpec g;
  g.id = 1;
  g.tenant = 3;
  g.kind = JobKind::kGpuTraining;
  g.model = perfmodel::ModelId::kResnet50;
  g.train_config = perfmodel::TrainConfig{1, 2, 0};
  g.submit_time = 11.0;
  g.iterations = 567.0;
  g.requested_cpus = 4;
  return g;
}

JobSpec distinctive_cpu_spec() {
  JobSpec c;
  c.id = 2;
  c.tenant = 16;
  c.kind = JobKind::kCpu;
  c.submit_time = 13.0;
  c.cpu_cores = 6;
  c.cpu_work_core_s = 789.0;
  c.mem_bw_gbps = 21.0;
  return c;
}

void replace_once(std::string& text, const std::string& from,
                  const std::string& to) {
  const size_t at = text.find(from);
  ASSERT_NE(at, std::string::npos) << "pattern '" << from << "' not in csv";
  text.replace(at, from.size(), to);
}

TEST(TraceIo, RejectsMalformedNumbersWithRowContext) {
  // The old atoi/strtod reader silently turned these into 0; each must now
  // fail with kParseError naming the row and column.
  const std::string good = trace_to_csv({distinctive_gpu_spec()});

  std::string bad = good;
  replace_once(bad, "567.0", "56x.0");  // iterations
  auto parsed = trace_from_csv(bad);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, util::ErrorCode::kParseError);
  EXPECT_NE(parsed.error().message.find("iterations"), std::string::npos);
  EXPECT_NE(parsed.error().message.find("row 1"), std::string::npos);

  bad = good;
  replace_once(bad, "567.0", "");  // empty field
  EXPECT_FALSE(trace_from_csv(bad).ok());

  bad = good;
  replace_once(bad, "11.000", "-11.000");  // negative submit_time
  EXPECT_FALSE(trace_from_csv(bad).ok());

  bad = good;
  replace_once(bad, "567.0", "1e999999");  // out of double range
  EXPECT_FALSE(trace_from_csv(bad).ok());
}

TEST(TraceIo, RejectsSemanticallyInvalidJobs) {
  // Rows that parse as numbers but describe an unrunnable job.
  auto zero_nodes = distinctive_gpu_spec();
  zero_nodes.train_config.nodes = 0;
  auto parsed = trace_from_csv(trace_to_csv({zero_nodes}));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("nodes"), std::string::npos);

  auto zero_gpus = distinctive_gpu_spec();
  zero_gpus.train_config.gpus_per_node = 0;
  EXPECT_FALSE(trace_from_csv(trace_to_csv({zero_gpus})).ok());

  auto zero_cores = distinctive_cpu_spec();
  zero_cores.cpu_cores = 0;
  EXPECT_FALSE(trace_from_csv(trace_to_csv({zero_cores})).ok());

  auto bad_ckpt = distinctive_cpu_spec();
  bad_ckpt.checkpoint_interval_s = -600.0;
  EXPECT_FALSE(trace_from_csv(trace_to_csv({bad_ckpt})).ok());
}

TEST(TraceIo, CheckpointFieldsRoundTrip) {
  auto gpu = distinctive_gpu_spec();
  gpu.checkpoint_interval_s = 3600.0;
  gpu.checkpoint_overhead_s = 42.5;
  auto cpu = distinctive_cpu_spec();  // checkpointing off by default
  auto parsed = trace_from_csv(trace_to_csv({gpu, cpu}));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_NEAR((*parsed)[0].checkpoint_interval_s, 3600.0, 1e-3);
  EXPECT_NEAR((*parsed)[0].checkpoint_overhead_s, 42.5, 1e-3);
  EXPECT_TRUE((*parsed)[0].checkpointing());
  EXPECT_DOUBLE_EQ((*parsed)[1].checkpoint_interval_s, 0.0);
  EXPECT_FALSE((*parsed)[1].checkpointing());
}

TEST(JobSpec, LabelsAndHelpers) {
  JobSpec gpu;
  gpu.id = 3;
  gpu.kind = JobKind::kGpuTraining;
  gpu.model = perfmodel::ModelId::kWavenet;
  gpu.train_config = perfmodel::TrainConfig{2, 2, 0};
  EXPECT_EQ(gpu.nodes_needed(), 2);
  EXPECT_EQ(gpu.gpus_per_node(), 2);
  EXPECT_EQ(gpu.total_gpus(), 4);
  EXPECT_NE(gpu.label().find("Wavenet"), std::string::npos);

  JobSpec cpu;
  cpu.kind = JobKind::kCpu;
  cpu.cpu_cores = 4;
  EXPECT_EQ(cpu.nodes_needed(), 1);
  EXPECT_EQ(cpu.total_gpus(), 0);
  EXPECT_NE(cpu.label().find("cpu"), std::string::npos);
}

}  // namespace
}  // namespace coda::workload
