// Tests for the analysis outputs: the scheduling event log and the CSV
// report exporter.
#include <gtest/gtest.h>

#include "sched/fifo.h"
#include "sim/engine.h"
#include "sim/event_log.h"
#include "sim/experiment.h"
#include "sim/report_io.h"
#include "util/csv.h"
#include "workload/trace_gen.h"

namespace coda::sim {
namespace {

workload::JobSpec cpu_spec(cluster::JobId id, int cores, double work) {
  workload::JobSpec spec;
  spec.id = id;
  spec.kind = workload::JobKind::kCpu;
  spec.cpu_cores = cores;
  spec.cpu_work_core_s = work;
  spec.mem_bw_gbps = 1.0;
  return spec;
}

TEST(EventLog, DisabledRecordsNothing) {
  EventLog log(false);
  log.record(1.0, EventKind::kArrival, 1);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(log.enabled());
}

TEST(EventLog, CountsAndPerJobFilter) {
  EventLog log(true);
  log.record(1.0, EventKind::kArrival, 1);
  log.record(2.0, EventKind::kStart, 1, 0, 4);
  log.record(3.0, EventKind::kArrival, 2);
  log.record(4.0, EventKind::kFinish, 1);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.count(EventKind::kArrival), 2u);
  EXPECT_EQ(log.count(EventKind::kFinish), 1u);
  EXPECT_EQ(log.count(EventKind::kEvict), 0u);
  const auto job1 = log.for_job(1);
  ASSERT_EQ(job1.size(), 3u);
  EXPECT_EQ(job1[1].kind, EventKind::kStart);
  EXPECT_DOUBLE_EQ(job1[1].value, 4.0);
}

TEST(EventLog, EngineRecordsFullLifecycle) {
  sched::FifoScheduler fifo;
  EngineConfig config;
  config.cluster.node_count = 2;
  config.record_events = true;
  ClusterEngine engine(config, &fifo);
  engine.inject(cpu_spec(1, 2, 100.0), 5.0);
  engine.schedule_node_outage(1, 10.0, 20.0);
  engine.drain(1e5);

  const auto& log = engine.event_log();
  EXPECT_EQ(log.count(EventKind::kArrival), 1u);
  EXPECT_EQ(log.count(EventKind::kStart), 1u);
  EXPECT_EQ(log.count(EventKind::kFinish), 1u);
  EXPECT_EQ(log.count(EventKind::kNodeFail), 1u);
  EXPECT_EQ(log.count(EventKind::kNodeRecover), 1u);
  const auto job = log.for_job(1);
  ASSERT_GE(job.size(), 3u);
  EXPECT_EQ(job.front().kind, EventKind::kArrival);
  EXPECT_DOUBLE_EQ(job.front().t, 5.0);
  EXPECT_EQ(job.back().kind, EventKind::kFinish);
}

TEST(EventLog, EvictionRecordedOnFailure) {
  sched::FifoScheduler fifo;
  EngineConfig config;
  config.cluster.node_count = 1;
  config.record_events = true;
  ClusterEngine engine(config, &fifo);
  engine.inject(cpu_spec(1, 2, 1e6), 0.0);
  engine.run_until(1.0);
  ASSERT_TRUE(engine.fail_node(0).ok());
  const auto& log = engine.event_log();
  EXPECT_EQ(log.count(EventKind::kEvict), 1u);
  // The evicted job restarts after recovery.
  ASSERT_TRUE(engine.recover_node(0).ok());
  engine.run_until(2.0);
  EXPECT_EQ(log.count(EventKind::kStart), 2u);
}

TEST(EventLog, SaveCsvRoundTrips) {
  EventLog log(true);
  log.record(1.5, EventKind::kStart, 7, 3, 12.0);
  log.record(2.5, EventKind::kBwCap, 8, 0, 25.5);
  const std::string path = testing::TempDir() + "/coda_events.csv";
  ASSERT_TRUE(log.save_csv(path).ok());
  auto doc = util::read_csv_file(path);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0][1], "start");
  EXPECT_EQ(doc->rows[0][2], "7");
  EXPECT_EQ(doc->rows[1][1], "bw_cap");
  EXPECT_EQ(doc->rows[1][4], "25.500");
}

TEST(EventKindNames, AllDistinct) {
  std::set<std::string> names;
  for (int k = 0; k <= static_cast<int>(EventKind::kAbandon); ++k) {
    names.insert(to_string(static_cast<EventKind>(k)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(EventKind::kAbandon) + 1);
}

TEST(ReportIo, SerializationRoundTripsFailureFields) {
  ExperimentReport report;
  report.scheduler = "CODA";
  report.submitted = 3;
  report.completed = 1;
  report.abandoned = 1;
  report.node_failures = 2;
  report.evictions = 4;
  report.restarts = 3;
  report.busy_gpu_s = 10.5;
  report.wasted_gpu_s = 1.25;
  report.gpu_goodput = 1.0 - 1.25 / 10.5;
  report.busy_core_s = 700.0;
  report.wasted_core_s = 50.0;
  report.cpu_goodput = 1.0 - 50.0 / 700.0;

  JobRecord rec;
  rec.spec.id = 9;
  rec.spec.kind = workload::JobKind::kCpu;
  rec.spec.cpu_cores = 2;
  rec.spec.cpu_work_core_s = 100.0;
  rec.spec.checkpoint_interval_s = 600.0;
  rec.spec.checkpoint_overhead_s = 5.0;
  rec.evict_count = 2;
  rec.restart_count = 1;
  rec.abandoned = true;
  rec.busy_core_s = 123.5;
  rec.wasted_core_s = 25.0;
  report.records.push_back(rec);

  const std::string blob = serialize_report(report);
  auto parsed = deserialize_report(blob);
  ASSERT_TRUE(parsed.ok());
  // Hexfloat serialization is lossless: byte equality is full equality.
  EXPECT_EQ(serialize_report(*parsed), blob);
  EXPECT_EQ(parsed->abandoned, 1u);
  EXPECT_EQ(parsed->node_failures, 2);
  EXPECT_EQ(parsed->evictions, 4);
  EXPECT_EQ(parsed->restarts, 3);
  EXPECT_DOUBLE_EQ(parsed->gpu_goodput, report.gpu_goodput);
  EXPECT_DOUBLE_EQ(parsed->cpu_goodput, report.cpu_goodput);
  ASSERT_EQ(parsed->records.size(), 1u);
  const auto& r = parsed->records[0];
  EXPECT_EQ(r.evict_count, 2);
  EXPECT_EQ(r.restart_count, 1);
  EXPECT_TRUE(r.abandoned);
  EXPECT_DOUBLE_EQ(r.busy_core_s, 123.5);
  EXPECT_DOUBLE_EQ(r.wasted_core_s, 25.0);
  EXPECT_DOUBLE_EQ(r.spec.checkpoint_interval_s, 600.0);
  EXPECT_DOUBLE_EQ(r.spec.checkpoint_overhead_s, 5.0);
}

TEST(ReportIo, SavesThreeCsvFiles) {
  auto cfg = standard_week_trace(3);
  cfg.duration_s = 0.1 * 86400.0;
  cfg.cpu_jobs = 100;
  cfg.gpu_jobs = 60;
  const auto trace = workload::TraceGenerator(cfg).generate();
  const auto report = run_experiment(Policy::kCoda, trace);

  const std::string dir = testing::TempDir();
  ASSERT_TRUE(save_report_csv(report, dir, "t").ok());

  auto summary = util::read_csv_file(dir + "/t_summary.csv");
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary->rows.size(), 1u);
  EXPECT_EQ(summary->rows[0][0], "CODA");
  EXPECT_EQ(summary->rows[0][1], std::to_string(trace.size()));
  ASSERT_TRUE(summary->column("gpu_goodput").ok());

  auto series = util::read_csv_file(dir + "/t_series.csv");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->rows.size(), report.gpu_active_series.size());
  ASSERT_TRUE(series->column("gpu_util").ok());

  auto jobs = util::read_csv_file(dir + "/t_jobs.csv");
  ASSERT_TRUE(jobs.ok());
  EXPECT_EQ(jobs->rows.size(), trace.size());
  ASSERT_TRUE(jobs->column("queue_s").ok());
  ASSERT_TRUE(jobs->column("wasted_gpu_s").ok());
}

TEST(ReportIo, FailsOnUnwritableDirectory) {
  ExperimentReport report;
  EXPECT_FALSE(save_report_csv(report, "/nonexistent_dir_xyz", "t").ok());
}

}  // namespace
}  // namespace coda::sim
