// Unit tests for the discrete-event core: ordering, cancellation, periodic
// events and clock semantics.
#include <gtest/gtest.h>

#include <vector>

#include "simcore/event_queue.h"
#include "simcore/simulator.h"

namespace coda::simcore {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, CancelledEventsAreSkipped) {
  EventQueue q;
  int fired = 0;
  auto h1 = q.push(1.0, [&] { ++fired; });
  auto h2 = q.push(2.0, [&] { fired += 10; });
  EXPECT_TRUE(h1.pending());
  h1.cancel();
  EXPECT_FALSE(h1.pending());
  EXPECT_EQ(q.live_count(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  q.pop().fn();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(fired, 10);
  EXPECT_FALSE(h2.pending());  // fired events report not-pending
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  int fired = 0;
  auto h = q.push(1.0, [&] { ++fired; });
  q.pop().fn();
  h.cancel();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(5.0, [&] { times.push_back(sim.now()); });
  sim.schedule_after(2.0, [&] { times.push_back(sim.now()); });
  sim.run_all();
  EXPECT_EQ(times, (std::vector<double>{2.0, 5.0}));
  EXPECT_EQ(sim.dispatched(), 2u);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.schedule_at(10.5, [&] { ++fired; });
  sim.run_until(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  sim.run_until(11.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrains) {
  Simulator sim;
  sim.run_until(100.0);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, EventsScheduledDuringDispatchRun) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(1.0, [&] {
    sim.schedule_after(1.0, [&] { times.push_back(sim.now()); });
  });
  sim.run_all();
  EXPECT_EQ(times, (std::vector<double>{2.0}));
}

TEST(Simulator, PeriodicFiresRepeatedlyUntilCancelled) {
  Simulator sim;
  int ticks = 0;
  auto handle = sim.schedule_periodic(10.0, [&] { ++ticks; });
  sim.run_until(35.0);
  EXPECT_EQ(ticks, 3);  // t = 10, 20, 30
  handle.cancel();
  sim.run_until(100.0);
  EXPECT_EQ(ticks, 3);
}

TEST(Simulator, PeriodicCancelFromInsideCallback) {
  Simulator sim;
  int ticks = 0;
  EventHandle handle;
  handle = sim.schedule_periodic(1.0, [&] {
    if (++ticks == 2) {
      handle.cancel();
    }
  });
  sim.run_until(10.0);
  EXPECT_EQ(ticks, 2);
}

TEST(Simulator, TwoPeriodicsInterleaveDeterministically) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_periodic(2.0, [&] { order.push_back(1); });
  sim.schedule_periodic(2.0, [&] { order.push_back(2); });
  sim.run_until(4.0);
  // Same period, first registered fires first at each tick.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(Simulator, ScheduleAfterZeroDelayRunsAtNow) {
  Simulator sim;
  double when = -1.0;
  sim.schedule_at(3.0, [&] {
    sim.schedule_after(0.0, [&] { when = sim.now(); });
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(when, 3.0);
}

}  // namespace
}  // namespace coda::simcore
