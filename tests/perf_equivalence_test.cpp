// Equivalence suite for the hot-path optimizations: the memoized TrainPerf
// must be bit-for-bit identical to the reference (unmemoized) arithmetic,
// and the incremental (dirty-set) engine must produce byte-identical
// experiment reports to the eager reference engine. These tests are the
// contract that lets the memo/incremental paths stay on by default.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>

#include "perfmodel/train_perf.h"
#include "sim/experiment.h"
#include "sim/report_io.h"
#include "workload/trace_gen.h"

namespace coda::perfmodel {
namespace {

uint64_t bits(double v) {
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// The contention grid covers the interesting regimes: none, epsilon (hash
// quantization must not conflate it with none), moderate, the eliminator
// threshold region, and HEAT-grade starvation; GPU inflation spans the PCIe
// knee. Values are deliberately not round so the exact-bit key is exercised.
constexpr double kPrepInflations[] = {1.0, 1.0000001, 1.03, 1.25, 2.0, 7.5};
constexpr double kGpuInflations[] = {1.0, 1.01, 1.4};

TEST(PerfEquivalence, MemoizedMatchesReferenceBitForBit) {
  TrainPerf memo;
  TrainPerf ref;
  ref.set_memoize(false);
  ASSERT_TRUE(memo.memoize());
  ASSERT_FALSE(ref.memoize());

  const TrainConfig configs[] = {config_1n1g(), config_1n4g(), config_2n4g()};
  for (ModelId id : kAllModels) {
    for (const TrainConfig& cfg : configs) {
      for (int cores = 1; cores <= 64; ++cores) {
        for (double pi : kPrepInflations) {
          for (double gi : kGpuInflations) {
            const ContentionFactors f{pi, gi};
            SCOPED_TRACE(std::string(to_string(id)) + " " + cfg.name() +
                         " cores=" + std::to_string(cores) +
                         " pi=" + std::to_string(pi) +
                         " gi=" + std::to_string(gi));
            ASSERT_EQ(bits(memo.prep_time(id, cfg, cores, f)),
                      bits(ref.prep_time(id, cfg, cores, f)));
            ASSERT_EQ(bits(memo.gpu_phase_time(id, cfg, f)),
                      bits(ref.gpu_phase_time(id, cfg, f)));
            ASSERT_EQ(bits(memo.iter_time(id, cfg, cores, f)),
                      bits(ref.iter_time(id, cfg, cores, f)));
            ASSERT_EQ(bits(memo.gpu_utilization(id, cfg, cores, f)),
                      bits(ref.gpu_utilization(id, cfg, cores, f)));
            ASSERT_EQ(bits(memo.throughput(id, cfg, cores, f)),
                      bits(ref.throughput(id, cfg, cores, f)));
            ASSERT_EQ(bits(memo.samples_per_second(id, cfg, cores, f)),
                      bits(ref.samples_per_second(id, cfg, cores, f)));
          }
        }
      }
    }
  }
  // The grid revisits every (model, cfg, cores, factors) point six times
  // (once per probe), so the memo must be doing real work by the end.
  EXPECT_GT(memo.cache_stats().hits, memo.cache_stats().misses);
  EXPECT_EQ(ref.cache_stats().hits, 0u);
}

TEST(PerfEquivalence, OptimalCoresAndDemandsMatchReference) {
  TrainPerf memo;
  TrainPerf ref;
  ref.set_memoize(false);

  const TrainConfig configs[] = {config_1n1g(), config_1n4g(), config_2n4g()};
  for (ModelId id : kAllModels) {
    for (const TrainConfig& cfg : configs) {
      SCOPED_TRACE(std::string(to_string(id)) + " " + cfg.name());
      for (int max_cores : {4, 28, 64}) {
        EXPECT_EQ(memo.optimal_cores(id, cfg, max_cores),
                  ref.optimal_cores(id, cfg, max_cores));
        EXPECT_EQ(memo.optimal_cores(id, cfg, max_cores, 0.05),
                  ref.optimal_cores(id, cfg, max_cores, 0.05));
      }
      for (int cores = 1; cores <= 64; ++cores) {
        ASSERT_EQ(bits(memo.mem_bw_demand_gbps(id, cfg, cores)),
                  bits(ref.mem_bw_demand_gbps(id, cfg, cores)))
            << "cores=" << cores;
        ASSERT_EQ(bits(memo.pcie_demand_gbps(id, cfg, cores)),
                  bits(ref.pcie_demand_gbps(id, cfg, cores)))
            << "cores=" << cores;
        ASSERT_EQ(bits(memo.llc_demand_mb(id, cfg)),
                  bits(ref.llc_demand_mb(id, cfg)));
      }
    }
  }
}

TEST(PerfEquivalence, RepeatedCallsHitTheCacheAndStayIdentical) {
  TrainPerf perf;
  const TrainConfig cfg = config_1n4g();
  const ContentionFactors f{1.3777, 1.0421};

  const double first = perf.iter_time(ModelId::kResnet50, cfg, 9, f);
  const auto after_first = perf.cache_stats();
  EXPECT_GE(after_first.misses, 1u);

  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(bits(perf.iter_time(ModelId::kResnet50, cfg, 9, f)),
              bits(first));
  }
  const auto after_loop = perf.cache_stats();
  EXPECT_EQ(after_loop.misses, after_first.misses);
  EXPECT_GE(after_loop.hits, after_first.hits + 100);

  // Toggling memoization clears the caches and still returns the same bits.
  perf.set_memoize(false);
  EXPECT_EQ(bits(perf.iter_time(ModelId::kResnet50, cfg, 9, f)), bits(first));
  perf.set_memoize(true);
  EXPECT_EQ(perf.cache_stats().hits, 0u);
  EXPECT_EQ(bits(perf.iter_time(ModelId::kResnet50, cfg, 9, f)), bits(first));
}

TEST(PerfEquivalence, NearIdenticalFactorsDoNotConflate) {
  // Two factor pairs closer than the hash quantization step must still
  // evaluate independently: equality on the exact bits, never the hash.
  TrainPerf memo;
  TrainPerf ref;
  ref.set_memoize(false);
  const TrainConfig cfg = config_1n1g();
  const double base = 1.25;
  const double nudged = std::nextafter(base, 2.0);
  for (ModelId id : kAllModels) {
    const ContentionFactors fa{base, 1.0};
    const ContentionFactors fb{nudged, 1.0};
    ASSERT_EQ(bits(memo.iter_time(id, cfg, 7, fa)),
              bits(ref.iter_time(id, cfg, 7, fa)));
    ASSERT_EQ(bits(memo.iter_time(id, cfg, 7, fb)),
              bits(ref.iter_time(id, cfg, 7, fb)));
  }
}

}  // namespace
}  // namespace coda::perfmodel

namespace coda::sim {
namespace {

std::vector<workload::JobSpec> small_seed_trace() {
  // A compressed cut of the standard evaluation trace: same generator and
  // marginals, half a day instead of a week so the four replays stay fast.
  workload::TraceConfig cfg = standard_week_trace();
  cfg.duration_s = 43200.0;
  cfg.cpu_jobs /= 14;
  cfg.gpu_jobs /= 14;
  return workload::TraceGenerator(cfg).generate();
}

// The incremental engine (dirty-set batching, reschedule skips, memoized
// perf model) must reproduce the eager reference engine's report *byte for
// byte* — serialize_report writes doubles as hexfloats, so this is exact
// trajectory equality, not tolerance-based agreement.
TEST(ReportEquivalence, IncrementalMatchesEagerByteForByte) {
  const auto trace = small_seed_trace();
  for (Policy policy : {Policy::kFifo, Policy::kCoda}) {
    SCOPED_TRACE(to_string(policy));
    ExperimentConfig incremental;
    incremental.engine.incremental_recompute = true;
    ExperimentConfig eager;
    eager.engine.incremental_recompute = false;

    const ExperimentReport a = run_experiment(policy, trace, incremental);
    const ExperimentReport b = run_experiment(policy, trace, eager);
    EXPECT_EQ(serialize_report(a), serialize_report(b));
    EXPECT_EQ(a.events_dispatched, b.events_dispatched);
    EXPECT_EQ(a.completed, b.completed);
  }
}

}  // namespace
}  // namespace coda::sim
