// Tests for the thread-pool experiment runner: parallel batches must be
// byte-identical to serial execution, results must come back in submission
// order, and the CODA_JOBS=1 path must degenerate to inline execution.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/report_cache.h"
#include "sim/report_io.h"
#include "sim/runner.h"
#include "workload/trace_gen.h"

namespace coda::sim {
namespace {

namespace fs = std::filesystem;

// A deliberately small replay (minutes of simulated time, dozens of jobs)
// so the suite stays fast while still exercising every report field.
std::vector<workload::JobSpec> tiny_trace(uint64_t seed) {
  auto cfg = standard_week_trace(seed);
  cfg.duration_s = 4.0 * 3600.0;
  cfg.cpu_jobs = 60;
  cfg.gpu_jobs = 30;
  return workload::TraceGenerator(cfg).generate();
}

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.engine.cluster.node_count = 8;
  cfg.drain_slack_s = 86400.0;
  return cfg;
}

std::vector<Runner::Job> mixed_batch(
    const std::vector<workload::JobSpec>& trace) {
  std::vector<Runner::Job> jobs(4);
  jobs[0].policy = Policy::kFifo;
  jobs[1].policy = Policy::kDrf;
  jobs[2].policy = Policy::kCoda;
  jobs[3].policy = Policy::kCoda;
  jobs[3].config.coda.cpu_preemption_enabled = false;
  for (auto& job : jobs) {
    job.trace = &trace;
    auto base = tiny_config();
    base.coda = job.config.coda;
    job.config = base;
  }
  return jobs;
}

TEST(Runner, ParallelMatchesSerialByteForByte) {
  const auto trace = tiny_trace(7);
  const auto jobs = mixed_batch(trace);

  const auto serial = Runner(1).run(jobs);
  const auto parallel = Runner(4).run(jobs);

  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(parallel.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    // Serialization is lossless (hexfloat doubles), so byte equality of the
    // serialized form is full equality of the reports.
    EXPECT_EQ(serialize_report(serial[i]), serialize_report(parallel[i]))
        << "job " << i << " diverged between serial and parallel execution";
  }
}

TEST(Runner, ResultsArriveInSubmissionOrder) {
  const auto trace = tiny_trace(11);
  const auto jobs = mixed_batch(trace);
  const auto reports = Runner(4).run(jobs);
  ASSERT_EQ(reports.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(reports[i].scheduler, to_string(jobs[i].policy)) << "slot " << i;
    EXPECT_EQ(reports[i].submitted, trace.size());
  }
}

TEST(Runner, MoreWorkersThanJobsIsFine) {
  const auto trace = tiny_trace(13);
  std::vector<Runner::Job> jobs(1);
  jobs[0].policy = Policy::kFifo;
  jobs[0].trace = &trace;
  jobs[0].config = tiny_config();
  const auto reports = Runner(16).run(jobs);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_GT(reports[0].completed, 0u);
}

TEST(Runner, CodaJobsEnvControlsDefaultWorkers) {
  const char* saved = std::getenv("CODA_JOBS");
  const std::string saved_value = saved != nullptr ? saved : "";

  ASSERT_EQ(setenv("CODA_JOBS", "1", 1), 0);
  EXPECT_EQ(Runner::default_workers(), 1);
  EXPECT_EQ(Runner().workers(), 1);

  ASSERT_EQ(setenv("CODA_JOBS", "7", 1), 0);
  EXPECT_EQ(Runner::default_workers(), 7);

  // Garbage and non-positive values fall back to hardware concurrency.
  ASSERT_EQ(setenv("CODA_JOBS", "0", 1), 0);
  EXPECT_GE(Runner::default_workers(), 1);
  ASSERT_EQ(setenv("CODA_JOBS", "banana", 1), 0);
  EXPECT_GE(Runner::default_workers(), 1);

  if (saved != nullptr) {
    ASSERT_EQ(setenv("CODA_JOBS", saved_value.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("CODA_JOBS"), 0);
  }
}

TEST(Runner, SingleWorkerRunsInline) {
  // CODA_JOBS=1 must produce the same reports as any other worker count.
  const auto trace = tiny_trace(17);
  const auto jobs = mixed_batch(trace);
  const auto inline_reports = Runner(1).run(jobs);
  const auto pooled_reports = Runner(3).run(jobs);
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(serialize_report(inline_reports[i]),
              serialize_report(pooled_reports[i]));
  }
}

TEST(Runner, FailureRetryCheckpointReplayIsDeterministic) {
  // Node churn + checkpoint rollback + backoff retries involve an RNG (the
  // outage schedule) and delayed resubmission events; the whole pipeline
  // must still replay byte-identically under the parallel runner.
  auto trace = tiny_trace(23);
  for (auto& spec : trace) {
    spec.checkpoint_interval_s = 900.0;
  }
  auto cfg = tiny_config();
  cfg.retry.enabled = true;
  cfg.retry.backoff_base_s = 30.0;
  cfg.retry.backoff_max_s = 600.0;
  cfg.retry.max_retries = 5;
  cfg.failures.node_mtbf_s = 1800.0;
  cfg.failures.outage_s = 600.0;
  cfg.failures.seed = 3;

  std::vector<Runner::Job> jobs(3);
  jobs[0].policy = Policy::kFifo;
  jobs[1].policy = Policy::kDrf;
  jobs[2].policy = Policy::kCoda;
  for (auto& job : jobs) {
    job.trace = &trace;
    job.config = cfg;
  }

  const auto serial = Runner(1).run(jobs);
  const auto parallel = Runner(3).run(jobs);
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(serialize_report(serial[i]), serialize_report(parallel[i]))
        << "policy " << serial[i].scheduler
        << " diverged between serial and parallel execution";
    // The churn actually hit the replay, and no job fell through the
    // cracks: everything either completed or was reported abandoned.
    EXPECT_GT(serial[i].node_failures, 0) << serial[i].scheduler;
    EXPECT_EQ(serial[i].completed + serial[i].abandoned,
              serial[i].submitted)
        << serial[i].scheduler;
    EXPECT_LE(serial[i].restarts, serial[i].evictions);
    EXPECT_GE(serial[i].gpu_goodput, 0.0);
    EXPECT_LE(serial[i].gpu_goodput, 1.0);
  }
}

TEST(Runner, CacheTurnsRerunsIntoHits) {
  const fs::path dir =
      fs::temp_directory_path() / "coda_runner_cache_test";
  fs::remove_all(dir);
  ReportCache cache(dir.string());

  const auto trace = tiny_trace(19);
  const auto jobs = mixed_batch(trace);

  const auto cold = Runner(2).run(jobs, &cache);
  // Every job should now have a cache entry on disk.
  size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    entries += e.is_regular_file() ? 1 : 0;
  }
  EXPECT_EQ(entries, jobs.size());

  const auto warm = Runner(2).run(jobs, &cache);
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(serialize_report(cold[i]), serialize_report(warm[i]));
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace coda::sim
