// Randomized equivalence suite for the incremental placement index.
//
// Drives a cluster through thousands of random mutations (allocate, resize,
// release, failure toggles, CPU-bias updates) and checks after every step
// that the indexed query paths return exactly what the linear scans return:
// find_placement / count_feasible via the runtime toggle, and the CODA side
// queries (best_adjusted_fit, best_free_cpu_fit, eviction candidates, the
// fragmentation bucket sum) against brute-force recomputation from the
// nodes. The index is pure derived state — any divergence here is a
// maintenance bug, not a modelling choice.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "cluster/cluster.h"
#include "sched/placement.h"
#include "util/rng.h"

namespace coda {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NodeId;
using cluster::PlacementIndex;

// Restores the global toggle even when an assertion aborts the test body.
struct IndexToggle {
  explicit IndexToggle(bool enabled) { sched::set_placement_index_enabled(enabled); }
  ~IndexToggle() { sched::set_placement_index_enabled(true); }
};

ClusterConfig mixed_cluster() {
  ClusterConfig cfg;
  cfg.node_count = 24;
  cfg.node.cores = 12;
  cfg.node.gpus = 4;
  cfg.cpu_only_node_count = 8;
  cfg.cpu_only_node.cores = 16;
  cfg.cpu_only_node.gpus = 0;
  return cfg;
}

bool placements_equal(const std::optional<sched::Placement>& a,
                      const std::optional<sched::Placement>& b) {
  if (a.has_value() != b.has_value()) {
    return false;
  }
  if (!a.has_value()) {
    return true;
  }
  if (a->nodes.size() != b->nodes.size()) {
    return false;
  }
  for (size_t i = 0; i < a->nodes.size(); ++i) {
    if (a->nodes[i].node != b->nodes[i].node ||
        a->nodes[i].cpus != b->nodes[i].cpus ||
        a->nodes[i].gpus != b->nodes[i].gpus) {
      return false;
    }
  }
  return true;
}

// Brute-force mirrors of the CODA-side index queries, computed straight
// from the nodes and the published bias table.
NodeId brute_best_adjusted_fit(const Cluster& cluster, int cpus) {
  NodeId best = PlacementIndex::kNone;
  int best_adj = 0;
  for (const auto& node : cluster.nodes()) {
    const int bias = cluster.placement_index().cpu_bias(node.id());
    const int adj = std::max(0, node.free_cpus() - bias);
    if (adj < cpus) {
      continue;
    }
    if (best == PlacementIndex::kNone || adj < best_adj) {
      best = node.id();
      best_adj = adj;
    }
  }
  return best;
}

NodeId brute_best_free_cpu_fit(const Cluster& cluster, int cpus) {
  NodeId best = PlacementIndex::kNone;
  int best_free = 0;
  for (const auto& node : cluster.nodes()) {
    if (node.free_cpus() < cpus) {
      continue;
    }
    if (best == PlacementIndex::kNone || node.free_cpus() < best_free) {
      best = node.id();
      best_free = node.free_cpus();
    }
  }
  return best;
}

std::vector<NodeId> brute_eviction_candidates(const Cluster& cluster,
                                              int gpus, int cpus_below) {
  std::vector<NodeId> out;
  for (const auto& node : cluster.nodes()) {
    if (node.free_gpus() >= gpus && node.free_cpus() < cpus_below) {
      out.push_back(node.id());
    }
  }
  return out;
}

long long brute_free_gpu_sum_below(const Cluster& cluster, int gpus) {
  long long total = 0;
  for (const auto& node : cluster.nodes()) {
    if (node.free_gpus() > 0 && node.free_gpus() < gpus) {
      total += node.free_gpus();
    }
  }
  return total;
}

TEST(PlacementIndexProperty, RandomWalkMatchesLinearScan) {
  Cluster cluster(mixed_cluster());
  util::Rng rng(0xC0DA5CA1Eull);
  // Live allocations: (job -> node), single-node for simplicity — the index
  // only sees per-node free counts, so multi-node jobs add no new states.
  std::map<cluster::JobId, NodeId> live;
  cluster::JobId next_job = 1;

  const int kSteps = 4000;
  for (int step = 0; step < kSteps; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    if (op <= 3) {  // allocate
      const NodeId node =
          static_cast<NodeId>(rng.uniform_int(0, cluster.node_count() - 1));
      const int cpus = static_cast<int>(rng.uniform_int(1, 6));
      const int gpus = static_cast<int>(
          rng.uniform_int(0, std::min(2, cluster.node(node).total_gpus())));
      if (cluster.node(node).can_fit(cpus, gpus)) {
        ASSERT_TRUE(cluster.node(node).allocate(next_job, cpus, gpus).ok());
        live[next_job] = node;
        ++next_job;
      }
    } else if (op <= 5 && !live.empty()) {  // release
      auto it = live.begin();
      std::advance(it, rng.uniform_int(0, live.size() - 1));
      if (!cluster.node(it->second).failed()) {
        ASSERT_TRUE(cluster.node(it->second).release(it->first).ok());
        live.erase(it);
      }
    } else if (op == 6 && !live.empty()) {  // resize
      auto it = live.begin();
      std::advance(it, rng.uniform_int(0, live.size() - 1));
      cluster::Node& node = cluster.node(it->second);
      if (!node.failed()) {
        const int new_cpus = static_cast<int>(rng.uniform_int(1, 8));
        (void)node.resize_cpus(it->first, new_cpus);  // may not fit; fine
      }
    } else if (op == 7) {  // failure toggle
      const NodeId node =
          static_cast<NodeId>(rng.uniform_int(0, cluster.node_count() - 1));
      if (cluster.node(node).failed()) {
        cluster.node(node).set_failed(false);
      } else if (cluster.node(node).allocations().empty()) {
        // The engine evicts residents before failing a node; mirror that
        // precondition by only failing empty nodes.
        cluster.node(node).set_failed(true);
      }
    } else {  // publish a reservation bias
      const NodeId node =
          static_cast<NodeId>(rng.uniform_int(0, cluster.node_count() - 1));
      cluster.placement_index().set_cpu_bias(
          node, static_cast<int>(rng.uniform_int(0, 10)));
    }

    // --- indexed vs linear find_placement / count_feasible -------------
    sched::PlacementRequest req;
    req.nodes = static_cast<int>(rng.uniform_int(1, 3));
    req.gpus_per_node = static_cast<int>(rng.uniform_int(0, 4));
    req.cpus_per_node = static_cast<int>(rng.uniform_int(1, 8));
    PlacementIndex::IdRange range;
    if (rng.uniform() < 0.5) {
      const NodeId a =
          static_cast<NodeId>(rng.uniform_int(0, cluster.node_count()));
      const NodeId b =
          static_cast<NodeId>(rng.uniform_int(0, cluster.node_count()));
      range.lo = std::min(a, b);
      range.hi = std::max(a, b);
    }
    const int limit = static_cast<int>(rng.uniform_int(1, 12));

    std::optional<sched::Placement> indexed;
    std::optional<sched::Placement> scanned;
    int indexed_count = 0;
    int scanned_count = 0;
    {
      IndexToggle on(true);
      indexed = sched::find_placement(cluster, req, range);
      indexed_count = sched::count_feasible(cluster, req, range, limit);
    }
    {
      IndexToggle off(false);
      scanned = sched::find_placement(cluster, req, range);
      scanned_count = sched::count_feasible(cluster, req, range, limit);
    }
    ASSERT_TRUE(placements_equal(indexed, scanned))
        << "step " << step << " req={" << req.nodes << ","
        << req.gpus_per_node << "," << req.cpus_per_node << "} range=["
        << range.lo << "," << range.hi << ")";
    ASSERT_EQ(indexed_count, scanned_count) << "step " << step;

    // --- CODA side queries vs brute force -------------------------------
    const PlacementIndex& index = cluster.placement_index();
    const int k = static_cast<int>(rng.uniform_int(1, 12));
    ASSERT_EQ(index.best_adjusted_fit(k), brute_best_adjusted_fit(cluster, k))
        << "step " << step << " k=" << k;
    ASSERT_EQ(index.best_free_cpu_fit(k),
              brute_best_free_cpu_fit(cluster, k))
        << "step " << step << " k=" << k;
    const int eg = static_cast<int>(rng.uniform_int(1, 4));
    const int ec = static_cast<int>(rng.uniform_int(0, 8));
    std::vector<NodeId> candidates;
    index.collect_eviction_candidates(eg, ec, {}, &candidates);
    std::sort(candidates.begin(), candidates.end());
    ASSERT_EQ(candidates, brute_eviction_candidates(cluster, eg, ec))
        << "step " << step << " eg=" << eg << " ec=" << ec;
    ASSERT_EQ(index.free_gpu_sum_below(eg),
              brute_free_gpu_sum_below(cluster, eg))
        << "step " << step << " eg=" << eg;
  }
  // The walk must actually exercise the cluster, not no-op through it.
  EXPECT_GT(next_job, 500u);
  EXPECT_GT(cluster.placement_index().generation(), 1000u);
}

// The generation counter must move on every observable index change — the
// schedulers key their failed-shape dedup caches on it, so a missed bump
// would let a stale "this shape cannot place" verdict suppress a feasible
// placement.
TEST(PlacementIndexProperty, GenerationAdvancesOnObservableChanges) {
  Cluster cluster(mixed_cluster());
  PlacementIndex& index = cluster.placement_index();
  const uint64_t g0 = index.generation();
  ASSERT_TRUE(cluster.node(0).allocate(1, 2, 1).ok());
  const uint64_t g1 = index.generation();
  EXPECT_GT(g1, g0);
  // Re-publishing an unchanged bias is not an observable change.
  index.set_cpu_bias(0, 0);
  EXPECT_EQ(index.generation(), g1);
  index.set_cpu_bias(0, 3);
  EXPECT_GT(index.generation(), g1);
  const uint64_t g2 = index.generation();
  ASSERT_TRUE(cluster.node(0).release(1).ok());
  EXPECT_GT(index.generation(), g2);
}

}  // namespace
}  // namespace coda
