file(REMOVE_RECURSE
  "libcoda_sim.a"
)
