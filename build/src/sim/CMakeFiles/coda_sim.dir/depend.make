# Empty dependencies file for coda_sim.
# This may be replaced when dependencies are built.
