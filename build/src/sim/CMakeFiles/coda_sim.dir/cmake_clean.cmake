file(REMOVE_RECURSE
  "CMakeFiles/coda_sim.dir/engine.cpp.o"
  "CMakeFiles/coda_sim.dir/engine.cpp.o.d"
  "CMakeFiles/coda_sim.dir/event_log.cpp.o"
  "CMakeFiles/coda_sim.dir/event_log.cpp.o.d"
  "CMakeFiles/coda_sim.dir/experiment.cpp.o"
  "CMakeFiles/coda_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/coda_sim.dir/report_io.cpp.o"
  "CMakeFiles/coda_sim.dir/report_io.cpp.o.d"
  "libcoda_sim.a"
  "libcoda_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coda_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
