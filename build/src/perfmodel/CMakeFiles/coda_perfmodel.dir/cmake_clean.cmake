file(REMOVE_RECURSE
  "CMakeFiles/coda_perfmodel.dir/characterization.cpp.o"
  "CMakeFiles/coda_perfmodel.dir/characterization.cpp.o.d"
  "CMakeFiles/coda_perfmodel.dir/contention.cpp.o"
  "CMakeFiles/coda_perfmodel.dir/contention.cpp.o.d"
  "CMakeFiles/coda_perfmodel.dir/model_zoo.cpp.o"
  "CMakeFiles/coda_perfmodel.dir/model_zoo.cpp.o.d"
  "CMakeFiles/coda_perfmodel.dir/train_perf.cpp.o"
  "CMakeFiles/coda_perfmodel.dir/train_perf.cpp.o.d"
  "libcoda_perfmodel.a"
  "libcoda_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coda_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
