# Empty dependencies file for coda_perfmodel.
# This may be replaced when dependencies are built.
