
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/characterization.cpp" "src/perfmodel/CMakeFiles/coda_perfmodel.dir/characterization.cpp.o" "gcc" "src/perfmodel/CMakeFiles/coda_perfmodel.dir/characterization.cpp.o.d"
  "/root/repo/src/perfmodel/contention.cpp" "src/perfmodel/CMakeFiles/coda_perfmodel.dir/contention.cpp.o" "gcc" "src/perfmodel/CMakeFiles/coda_perfmodel.dir/contention.cpp.o.d"
  "/root/repo/src/perfmodel/model_zoo.cpp" "src/perfmodel/CMakeFiles/coda_perfmodel.dir/model_zoo.cpp.o" "gcc" "src/perfmodel/CMakeFiles/coda_perfmodel.dir/model_zoo.cpp.o.d"
  "/root/repo/src/perfmodel/train_perf.cpp" "src/perfmodel/CMakeFiles/coda_perfmodel.dir/train_perf.cpp.o" "gcc" "src/perfmodel/CMakeFiles/coda_perfmodel.dir/train_perf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/coda_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
