file(REMOVE_RECURSE
  "libcoda_perfmodel.a"
)
