file(REMOVE_RECURSE
  "libcoda_sched.a"
)
