# Empty compiler generated dependencies file for coda_sched.
# This may be replaced when dependencies are built.
