file(REMOVE_RECURSE
  "CMakeFiles/coda_sched.dir/drf.cpp.o"
  "CMakeFiles/coda_sched.dir/drf.cpp.o.d"
  "CMakeFiles/coda_sched.dir/fifo.cpp.o"
  "CMakeFiles/coda_sched.dir/fifo.cpp.o.d"
  "CMakeFiles/coda_sched.dir/placement.cpp.o"
  "CMakeFiles/coda_sched.dir/placement.cpp.o.d"
  "libcoda_sched.a"
  "libcoda_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coda_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
