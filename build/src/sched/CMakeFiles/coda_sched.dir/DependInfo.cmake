
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/drf.cpp" "src/sched/CMakeFiles/coda_sched.dir/drf.cpp.o" "gcc" "src/sched/CMakeFiles/coda_sched.dir/drf.cpp.o.d"
  "/root/repo/src/sched/fifo.cpp" "src/sched/CMakeFiles/coda_sched.dir/fifo.cpp.o" "gcc" "src/sched/CMakeFiles/coda_sched.dir/fifo.cpp.o.d"
  "/root/repo/src/sched/placement.cpp" "src/sched/CMakeFiles/coda_sched.dir/placement.cpp.o" "gcc" "src/sched/CMakeFiles/coda_sched.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/coda_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/coda_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/coda_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/coda_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/coda_perfmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
