file(REMOVE_RECURSE
  "libcoda_workload.a"
)
