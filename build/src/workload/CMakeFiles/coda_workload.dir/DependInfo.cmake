
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/heat.cpp" "src/workload/CMakeFiles/coda_workload.dir/heat.cpp.o" "gcc" "src/workload/CMakeFiles/coda_workload.dir/heat.cpp.o.d"
  "/root/repo/src/workload/job.cpp" "src/workload/CMakeFiles/coda_workload.dir/job.cpp.o" "gcc" "src/workload/CMakeFiles/coda_workload.dir/job.cpp.o.d"
  "/root/repo/src/workload/tenant.cpp" "src/workload/CMakeFiles/coda_workload.dir/tenant.cpp.o" "gcc" "src/workload/CMakeFiles/coda_workload.dir/tenant.cpp.o.d"
  "/root/repo/src/workload/trace_gen.cpp" "src/workload/CMakeFiles/coda_workload.dir/trace_gen.cpp.o" "gcc" "src/workload/CMakeFiles/coda_workload.dir/trace_gen.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/coda_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/coda_workload.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/coda_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/coda_perfmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
