file(REMOVE_RECURSE
  "CMakeFiles/coda_workload.dir/heat.cpp.o"
  "CMakeFiles/coda_workload.dir/heat.cpp.o.d"
  "CMakeFiles/coda_workload.dir/job.cpp.o"
  "CMakeFiles/coda_workload.dir/job.cpp.o.d"
  "CMakeFiles/coda_workload.dir/tenant.cpp.o"
  "CMakeFiles/coda_workload.dir/tenant.cpp.o.d"
  "CMakeFiles/coda_workload.dir/trace_gen.cpp.o"
  "CMakeFiles/coda_workload.dir/trace_gen.cpp.o.d"
  "CMakeFiles/coda_workload.dir/trace_io.cpp.o"
  "CMakeFiles/coda_workload.dir/trace_io.cpp.o.d"
  "libcoda_workload.a"
  "libcoda_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coda_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
