# Empty dependencies file for coda_workload.
# This may be replaced when dependencies are built.
