file(REMOVE_RECURSE
  "libcoda_core.a"
)
