# Empty compiler generated dependencies file for coda_core.
# This may be replaced when dependencies are built.
