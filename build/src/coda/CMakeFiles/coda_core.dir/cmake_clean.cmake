file(REMOVE_RECURSE
  "CMakeFiles/coda_core.dir/allocator.cpp.o"
  "CMakeFiles/coda_core.dir/allocator.cpp.o.d"
  "CMakeFiles/coda_core.dir/coda_scheduler.cpp.o"
  "CMakeFiles/coda_core.dir/coda_scheduler.cpp.o.d"
  "CMakeFiles/coda_core.dir/eliminator.cpp.o"
  "CMakeFiles/coda_core.dir/eliminator.cpp.o.d"
  "CMakeFiles/coda_core.dir/history.cpp.o"
  "CMakeFiles/coda_core.dir/history.cpp.o.d"
  "libcoda_core.a"
  "libcoda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
