# Empty compiler generated dependencies file for coda_simcore.
# This may be replaced when dependencies are built.
