file(REMOVE_RECURSE
  "libcoda_simcore.a"
)
