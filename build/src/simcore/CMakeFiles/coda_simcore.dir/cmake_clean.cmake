file(REMOVE_RECURSE
  "CMakeFiles/coda_simcore.dir/event_queue.cpp.o"
  "CMakeFiles/coda_simcore.dir/event_queue.cpp.o.d"
  "CMakeFiles/coda_simcore.dir/simulator.cpp.o"
  "CMakeFiles/coda_simcore.dir/simulator.cpp.o.d"
  "libcoda_simcore.a"
  "libcoda_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coda_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
