file(REMOVE_RECURSE
  "libcoda_telemetry.a"
)
