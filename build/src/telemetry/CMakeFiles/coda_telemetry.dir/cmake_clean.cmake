file(REMOVE_RECURSE
  "CMakeFiles/coda_telemetry.dir/mba.cpp.o"
  "CMakeFiles/coda_telemetry.dir/mba.cpp.o.d"
  "CMakeFiles/coda_telemetry.dir/metrics.cpp.o"
  "CMakeFiles/coda_telemetry.dir/metrics.cpp.o.d"
  "libcoda_telemetry.a"
  "libcoda_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coda_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
