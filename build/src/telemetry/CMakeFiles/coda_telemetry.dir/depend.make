# Empty dependencies file for coda_telemetry.
# This may be replaced when dependencies are built.
