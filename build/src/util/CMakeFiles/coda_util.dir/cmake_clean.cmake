file(REMOVE_RECURSE
  "CMakeFiles/coda_util.dir/csv.cpp.o"
  "CMakeFiles/coda_util.dir/csv.cpp.o.d"
  "CMakeFiles/coda_util.dir/logging.cpp.o"
  "CMakeFiles/coda_util.dir/logging.cpp.o.d"
  "CMakeFiles/coda_util.dir/result.cpp.o"
  "CMakeFiles/coda_util.dir/result.cpp.o.d"
  "CMakeFiles/coda_util.dir/rng.cpp.o"
  "CMakeFiles/coda_util.dir/rng.cpp.o.d"
  "CMakeFiles/coda_util.dir/stats.cpp.o"
  "CMakeFiles/coda_util.dir/stats.cpp.o.d"
  "CMakeFiles/coda_util.dir/strings.cpp.o"
  "CMakeFiles/coda_util.dir/strings.cpp.o.d"
  "CMakeFiles/coda_util.dir/table.cpp.o"
  "CMakeFiles/coda_util.dir/table.cpp.o.d"
  "CMakeFiles/coda_util.dir/timeseries.cpp.o"
  "CMakeFiles/coda_util.dir/timeseries.cpp.o.d"
  "libcoda_util.a"
  "libcoda_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coda_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
