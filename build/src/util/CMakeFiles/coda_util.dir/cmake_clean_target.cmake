file(REMOVE_RECURSE
  "libcoda_util.a"
)
