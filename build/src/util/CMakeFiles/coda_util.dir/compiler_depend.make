# Empty compiler generated dependencies file for coda_util.
# This may be replaced when dependencies are built.
