file(REMOVE_RECURSE
  "CMakeFiles/coda_cluster.dir/cluster.cpp.o"
  "CMakeFiles/coda_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/coda_cluster.dir/node.cpp.o"
  "CMakeFiles/coda_cluster.dir/node.cpp.o.d"
  "libcoda_cluster.a"
  "libcoda_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coda_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
