# Empty compiler generated dependencies file for coda_cluster.
# This may be replaced when dependencies are built.
