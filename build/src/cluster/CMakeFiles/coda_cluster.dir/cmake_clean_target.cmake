file(REMOVE_RECURSE
  "libcoda_cluster.a"
)
