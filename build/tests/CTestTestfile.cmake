# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/simcore_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/contention_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/allocator_test[1]_include.cmake")
include("/root/repo/build/tests/eliminator_test[1]_include.cmake")
include("/root/repo/build/tests/coda_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
