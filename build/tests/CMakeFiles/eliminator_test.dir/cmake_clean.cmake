file(REMOVE_RECURSE
  "CMakeFiles/eliminator_test.dir/eliminator_test.cpp.o"
  "CMakeFiles/eliminator_test.dir/eliminator_test.cpp.o.d"
  "eliminator_test"
  "eliminator_test.pdb"
  "eliminator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eliminator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
