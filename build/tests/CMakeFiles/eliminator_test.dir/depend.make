# Empty dependencies file for eliminator_test.
# This may be replaced when dependencies are built.
