file(REMOVE_RECURSE
  "CMakeFiles/coda_scheduler_test.dir/coda_scheduler_test.cpp.o"
  "CMakeFiles/coda_scheduler_test.dir/coda_scheduler_test.cpp.o.d"
  "coda_scheduler_test"
  "coda_scheduler_test.pdb"
  "coda_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coda_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
