# Empty dependencies file for coda_scheduler_test.
# This may be replaced when dependencies are built.
