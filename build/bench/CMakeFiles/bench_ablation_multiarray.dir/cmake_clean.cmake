file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiarray.dir/bench_ablation_multiarray.cpp.o"
  "CMakeFiles/bench_ablation_multiarray.dir/bench_ablation_multiarray.cpp.o.d"
  "bench_ablation_multiarray"
  "bench_ablation_multiarray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiarray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
