# Empty dependencies file for bench_ablation_multiarray.
# This may be replaced when dependencies are built.
