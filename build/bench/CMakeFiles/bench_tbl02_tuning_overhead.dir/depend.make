# Empty dependencies file for bench_tbl02_tuning_overhead.
# This may be replaced when dependencies are built.
