file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl02_tuning_overhead.dir/bench_tbl02_tuning_overhead.cpp.o"
  "CMakeFiles/bench_tbl02_tuning_overhead.dir/bench_tbl02_tuning_overhead.cpp.o.d"
  "bench_tbl02_tuning_overhead"
  "bench_tbl02_tuning_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl02_tuning_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
