# Empty compiler generated dependencies file for bench_fig14_tuning_dist.
# This may be replaced when dependencies are built.
