file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_tuning_dist.dir/bench_fig14_tuning_dist.cpp.o"
  "CMakeFiles/bench_fig14_tuning_dist.dir/bench_fig14_tuning_dist.cpp.o.d"
  "bench_fig14_tuning_dist"
  "bench_fig14_tuning_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_tuning_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
