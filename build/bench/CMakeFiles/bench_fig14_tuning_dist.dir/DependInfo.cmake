
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig14_tuning_dist.cpp" "bench/CMakeFiles/bench_fig14_tuning_dist.dir/bench_fig14_tuning_dist.cpp.o" "gcc" "bench/CMakeFiles/bench_fig14_tuning_dist.dir/bench_fig14_tuning_dist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/coda_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coda/CMakeFiles/coda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/coda_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/coda_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/coda_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/coda_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/coda_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/coda_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
