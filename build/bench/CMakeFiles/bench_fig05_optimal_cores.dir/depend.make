# Empty dependencies file for bench_fig05_optimal_cores.
# This may be replaced when dependencies are built.
