file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_optimal_cores.dir/bench_fig05_optimal_cores.cpp.o"
  "CMakeFiles/bench_fig05_optimal_cores.dir/bench_fig05_optimal_cores.cpp.o.d"
  "bench_fig05_optimal_cores"
  "bench_fig05_optimal_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_optimal_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
