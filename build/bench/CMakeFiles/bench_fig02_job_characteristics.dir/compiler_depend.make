# Empty compiler generated dependencies file for bench_fig02_job_characteristics.
# This may be replaced when dependencies are built.
