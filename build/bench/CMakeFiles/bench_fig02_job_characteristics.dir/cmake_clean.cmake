file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_job_characteristics.dir/bench_fig02_job_characteristics.cpp.o"
  "CMakeFiles/bench_fig02_job_characteristics.dir/bench_fig02_job_characteristics.cpp.o.d"
  "bench_fig02_job_characteristics"
  "bench_fig02_job_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_job_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
