# Empty dependencies file for bench_ext_static_partition.
# This may be replaced when dependencies are built.
