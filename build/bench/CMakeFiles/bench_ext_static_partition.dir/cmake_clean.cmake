file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_static_partition.dir/bench_ext_static_partition.cpp.o"
  "CMakeFiles/bench_ext_static_partition.dir/bench_ext_static_partition.cpp.o.d"
  "bench_ext_static_partition"
  "bench_ext_static_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_static_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
