# Empty dependencies file for bench_fig01_cluster_trend.
# This may be replaced when dependencies are built.
