# Empty dependencies file for bench_fig06_bandwidth_demand.
# This may be replaced when dependencies are built.
