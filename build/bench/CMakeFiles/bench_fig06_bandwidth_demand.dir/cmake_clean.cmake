file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_bandwidth_demand.dir/bench_fig06_bandwidth_demand.cpp.o"
  "CMakeFiles/bench_fig06_bandwidth_demand.dir/bench_fig06_bandwidth_demand.cpp.o.d"
  "bench_fig06_bandwidth_demand"
  "bench_fig06_bandwidth_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_bandwidth_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
