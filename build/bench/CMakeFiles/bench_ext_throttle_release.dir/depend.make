# Empty dependencies file for bench_ext_throttle_release.
# This may be replaced when dependencies are built.
