file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_throttle_release.dir/bench_ext_throttle_release.cpp.o"
  "CMakeFiles/bench_ext_throttle_release.dir/bench_ext_throttle_release.cpp.o.d"
  "bench_ext_throttle_release"
  "bench_ext_throttle_release.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_throttle_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
