file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_per_user_tail.dir/bench_fig12_per_user_tail.cpp.o"
  "CMakeFiles/bench_fig12_per_user_tail.dir/bench_fig12_per_user_tail.cpp.o.d"
  "bench_fig12_per_user_tail"
  "bench_fig12_per_user_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_per_user_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
