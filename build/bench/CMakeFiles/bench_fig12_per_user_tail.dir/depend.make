# Empty dependencies file for bench_fig12_per_user_tail.
# This may be replaced when dependencies are built.
