# Empty compiler generated dependencies file for bench_ext_failure_resilience.
# This may be replaced when dependencies are built.
