file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6g_generality.dir/bench_sec6g_generality.cpp.o"
  "CMakeFiles/bench_sec6g_generality.dir/bench_sec6g_generality.cpp.o.d"
  "bench_sec6g_generality"
  "bench_sec6g_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6g_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
