# Empty compiler generated dependencies file for bench_sec6g_generality.
# This may be replaced when dependencies are built.
