file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_contention.dir/bench_fig07_contention.cpp.o"
  "CMakeFiles/bench_fig07_contention.dir/bench_fig07_contention.cpp.o.d"
  "bench_fig07_contention"
  "bench_fig07_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
