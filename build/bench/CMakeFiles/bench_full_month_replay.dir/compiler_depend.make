# Empty compiler generated dependencies file for bench_full_month_replay.
# This may be replaced when dependencies are built.
