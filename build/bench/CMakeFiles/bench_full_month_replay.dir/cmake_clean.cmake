file(REMOVE_RECURSE
  "CMakeFiles/bench_full_month_replay.dir/bench_full_month_replay.cpp.o"
  "CMakeFiles/bench_full_month_replay.dir/bench_full_month_replay.cpp.o.d"
  "bench_full_month_replay"
  "bench_full_month_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_full_month_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
