# Empty compiler generated dependencies file for coda_bench_common.
# This may be replaced when dependencies are built.
