file(REMOVE_RECURSE
  "libcoda_bench_common.a"
)
