file(REMOVE_RECURSE
  "CMakeFiles/coda_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/coda_bench_common.dir/bench_common.cpp.o.d"
  "libcoda_bench_common.a"
  "libcoda_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coda_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
