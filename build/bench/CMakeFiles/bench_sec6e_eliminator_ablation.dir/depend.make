# Empty dependencies file for bench_sec6e_eliminator_ablation.
# This may be replaced when dependencies are built.
