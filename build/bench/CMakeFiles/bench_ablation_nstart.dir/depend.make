# Empty dependencies file for bench_ablation_nstart.
# This may be replaced when dependencies are built.
