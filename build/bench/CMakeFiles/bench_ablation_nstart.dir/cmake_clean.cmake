file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nstart.dir/bench_ablation_nstart.cpp.o"
  "CMakeFiles/bench_ablation_nstart.dir/bench_ablation_nstart.cpp.o.d"
  "bench_ablation_nstart"
  "bench_ablation_nstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
