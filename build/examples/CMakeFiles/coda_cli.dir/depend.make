# Empty dependencies file for coda_cli.
# This may be replaced when dependencies are built.
