file(REMOVE_RECURSE
  "CMakeFiles/coda_cli.dir/coda_cli.cpp.o"
  "CMakeFiles/coda_cli.dir/coda_cli.cpp.o.d"
  "coda_cli"
  "coda_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coda_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
