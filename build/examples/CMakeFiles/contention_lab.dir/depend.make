# Empty dependencies file for contention_lab.
# This may be replaced when dependencies are built.
