// The CODA scheduling system (paper Sec. V): multi-array job scheduler +
// adaptive CPU allocator + real-time contention eliminator behind the common
// Scheduler interface.
//
// Resources are split into a CPU array and a GPU array; the GPU array
// reserves CPU cores on every node for GPU jobs and is itself split into a
// 4-GPU sub-array (jobs needing >= 4 GPUs) and a 1-GPU sub-array. DRF is
// applied *inside* each array (by CPU usage in the CPU array, by GPU usage
// in the GPU arrays). Bursty CPU jobs may borrow idle reserved cores and are
// aborted back to the head of their queue when a GPU job needs the cores;
// 1-GPU jobs may borrow 4-GPU sub-array nodes and are live-migrated out when
// a 4-GPU job arrives (container migration keeps their progress).
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "coda/allocator.h"
#include "coda/eliminator.h"
#include "coda/history.h"
#include "perfmodel/train_perf.h"
#include "sched/placement.h"
#include "sched/scheduler.h"

namespace coda::core {

struct CodaConfig {
  AllocatorConfig allocator;
  EliminatorConfig eliminator;

  // CPU cores reserved for GPU jobs on every node ("derived from historical
  // statistical information"; this is the cold-start value).
  int reserved_cores_per_node = 20;
  // Fraction of nodes assigned to the 4-GPU sub-array (cold-start value).
  double four_gpu_node_fraction = 0.40;
  // Re-derive both from the history log this often (0 disables).
  double reservation_update_period_s = 6.0 * 3600.0;

  // Ablation switches. With multi_array_enabled=false all nodes form one
  // array with no reservation (adaptive allocation + eliminator still work).
  bool multi_array_enabled = true;
  bool cpu_preemption_enabled = true;

  // Kelp-style *static* bandwidth partitioning (related-work baseline): cap
  // every CPU job at this many GB/s on MBA-capable nodes the moment it
  // starts, regardless of observed contention. 0 disables. Compare against
  // the paper's reactive eliminator with bench_ext_static_partition.
  double static_bw_cap_gbps = 0.0;
};

class CodaScheduler : public sched::Scheduler {
 public:
  explicit CodaScheduler(const CodaConfig& config);

  const char* name() const override { return "CODA"; }

  void attach(const sched::SchedulerEnv& env) override;
  void submit(const workload::JobSpec& spec) override;
  void on_job_finished(const workload::JobSpec& spec) override;
  void on_job_evicted(const workload::JobSpec& spec) override;
  void kick() override;

  // ---- introspection (tests, benches) ----
  const HistoryLog& history() const { return history_; }
  const EliminatorStats& eliminator_stats() const {
    return eliminator_->stats();
  }
  const ContentionEliminator& eliminator() const { return *eliminator_; }
  const AdaptiveCpuAllocator& allocator() const { return allocator_; }

  // Audit of the adaptive allocation, one entry per started GPU job
  // (Fig. 14 / Table II): what the owner asked for vs what CODA converged
  // to, and the profiling steps spent.
  struct TuningOutcome {
    cluster::JobId job = 0;
    perfmodel::ModelId model = perfmodel::ModelId::kAlexnet;
    int requested_cpus = 0;
    int start_cpus = 0;
    int final_cpus = 0;
    int profile_steps = 0;
  };
  const std::vector<TuningOutcome>& tuning_outcomes() const {
    return tuning_outcomes_;
  }

  size_t pending_gpu_jobs() const override;
  size_t pending_cpu_jobs() const;
  size_t pending_jobs() const override {
    return pending_gpu_jobs() + pending_cpu_jobs();
  }
  std::optional<sched::Scheduler::PendingGpuDemand> min_pending_gpu_demand()
      const override;
  int reclaimable_cpus(cluster::NodeId node) const override;
  int preemptions() const { return preemptions_; }
  int migrations() const { return migrations_; }

  int reserved_cores_per_node() const { return reserved_cores_; }
  bool node_in_four_array(cluster::NodeId id) const;

  // ---- snapshot support (src/state) ----
  void save_state(state::Writer* w) const override;
  void load_state(state::Reader* r, const sched::SpecMap& specs) override;
  // Re-arm helpers: re-post one pending event recorded in a snapshot's
  // manifest at its exact absolute time. The periodic ticks are re-armed as
  // fresh chains whose first firing is the manifest time (attach() skipped
  // scheduling them in restore mode — see SchedulerEnv::defer_periodics).
  void rearm_eliminator_tick(double first);
  void rearm_reservation_tick(double first);
  void rearm_tuning_tick(double t, cluster::JobId job, uint64_t generation);

 private:
  // Per-array tenant queues with DRF ordering by the array's dominant
  // resource usage.
  struct ArrayState {
    std::map<cluster::TenantId, std::deque<workload::JobSpec>> queues;
    std::map<cluster::TenantId, int> usage;  // cores or GPUs, by array kind

    size_t pending() const;
    void push_back(const workload::JobSpec& spec);
    void push_front(const workload::JobSpec& spec);
    // Tenants with pending jobs ordered by ascending usage share.
    std::vector<cluster::TenantId> drf_order(int total_capacity) const;
  };

  struct RunningGpu {
    workload::JobSpec spec;
    sched::Placement placement;
    int cores_per_node = 0;
    bool four_array_job = false;   // belongs to the 4-GPU sub-array
    bool cross_borrower = false;   // 1-GPU job running on a 4-GPU node
    uint64_t generation = 0;       // invalidates stale tuning timers
    bool tuning_active = false;
  };

  struct RunningCpu {
    workload::JobSpec spec;
    cluster::NodeId node = 0;
    int cores = 0;
    int borrowed_reserved = 0;     // cores taken from the GPU reservation
    uint64_t start_seq = 0;        // LIFO eviction order
  };

  bool is_four_gpu_job(const workload::JobSpec& spec) const;
  ArrayState& gpu_array_for(const workload::JobSpec& spec);

  // CPU cores on `node` currently usable by the CPU array without touching
  // the (unused part of the) GPU reservation.
  int cpu_array_free_cores(const cluster::Node& node) const;
  int gpu_cores_used_on(const cluster::Node& node) const;

  // Scheduling passes.
  void schedule_gpu_array(ArrayState& array, bool four_array);
  bool try_start_gpu_job(const workload::JobSpec& spec, bool four_array);
  void schedule_cpu_array();

  // Eviction helpers.
  bool evict_cpu_borrowers_for(cluster::NodeId node, int cores_needed);
  bool migrate_cross_borrowers_for(const sched::PlacementRequest& request);
  // Evicts CPU borrowers from in-range nodes that could host `request`
  // afterwards (free GPUs suffice, free cores do not). Returns whether any
  // eviction actually happened — when none did, the follow-up placement
  // query is provably the same failure as before and is skipped.
  bool prepare_nodes_by_eviction(const sched::PlacementRequest& request,
                                 sched::IdRange range);

  // Republishes this node's reservation bias (the part of the GPU
  // reservation not consumed by GPU jobs or borrowers) into the cluster's
  // placement index, keeping the index's adjusted-cores buckets equal to
  // cpu_array_free_cores() for every node.
  void refresh_cpu_bias(cluster::NodeId node);
  void refresh_all_cpu_bias();

  void start_gpu_job(const workload::JobSpec& spec,
                     const sched::Placement& placement, int cores,
                     bool four_array, bool cross_borrower);
  void begin_tuning(cluster::JobId job);
  void schedule_tuning_tick(cluster::JobId job, uint64_t generation);
  void on_tuning_tick(cluster::JobId job, uint64_t generation);
  double expected_utilization(cluster::JobId job) const;
  void update_reservation_from_history();

  CodaConfig config_;
  perfmodel::TrainPerf perf_;
  HistoryLog history_;
  AdaptiveCpuAllocator allocator_;
  std::unique_ptr<ContentionEliminator> eliminator_;

  ArrayState cpu_array_;
  ArrayState four_gpu_array_;
  ArrayState one_gpu_array_;

  std::map<cluster::JobId, RunningGpu> running_gpu_;
  std::map<cluster::JobId, RunningCpu> running_cpu_;
  // Live cross-borrowers (1-GPU jobs on 4-GPU nodes). Usually zero, and
  // every blocked 4-GPU start probes for migration candidates — the counter
  // turns that probe into an O(1) no when there is nothing to migrate.
  int cross_borrower_count_ = 0;

  std::vector<TuningOutcome> tuning_outcomes_;
  std::map<cluster::JobId, TuningOutcome> pending_outcomes_;

  // Incremental per-node accounting (kick() runs after every event; scanning
  // node allocation maps there would dominate the simulation).
  std::vector<int> gpu_cores_on_node_;       // cores held by GPU jobs
  std::vector<int> borrowed_on_node_;        // reserved cores lent to CPU jobs
  std::vector<int> cross_borrowers_on_node_; // resident cross-borrower jobs
  std::vector<std::vector<cluster::JobId>> cpu_jobs_by_node_;

  void note_cpu_job_started(const RunningCpu& rc);
  void note_cpu_job_gone(const RunningCpu& rc);
  void on_eliminator_cpu_resize(cluster::JobId job, cluster::NodeId node,
                                int new_cores);

  int reserved_cores_ = 0;
  int four_array_nodes_ = 0;  // nodes [0, four_array_nodes_) are 4-GPU array
  uint64_t next_seq_ = 0;
  uint64_t next_generation_ = 1;
  int preemptions_ = 0;
  int migrations_ = 0;

  // Sum of borrowed_on_node_: lets a blocked GPU start skip the eviction
  // pass entirely when no CPU job is borrowing reserved cores anywhere
  // (the common case — evicting nothing cannot change the earlier miss).
  int total_borrowed_ = 0;

  // Failed-shape dedup, keyed on the placement index generation. A GPU
  // shape is cached only when its whole try was pure (no eviction or
  // migration mutated anything — the generation did not move), and the
  // cache is valid only while (generation, four_array_nodes_) both match:
  // unlike FIFO/DRF, CODA's eviction overshoot can *grow* a node's free
  // cores mid-kick, so exact-state match is required rather than
  // monotonicity.
  struct FailedGpuShape {
    int nodes = 0;
    int gpus_per_node = 0;
    int cpus_per_node = 0;
    bool four_array = false;
  };
  std::vector<FailedGpuShape> failed_gpu_shapes_;
  uint64_t gpu_failed_gen_ = ~0ULL;
  int gpu_failed_four_nodes_ = -1;

  // CPU-array head requests (core counts) that found no node. Within one
  // schedule_cpu_array() pass both free and adjusted cores only shrink, so
  // failures persist across offer rounds; across kicks they stay valid
  // while the generation (which also tracks bias changes) is unchanged.
  std::vector<int> failed_cpu_reqs_;
  uint64_t cpu_failed_gen_ = ~0ULL;
  int cpu_failed_reserved_ = -1;

  // Scratch for the indexed eviction-candidate collection.
  std::vector<cluster::NodeId> eviction_scratch_;
};

}  // namespace coda::core
