// Snapshot (de)serialization for the CODA scheduler: per-array DRF queues
// and usage shares, running GPU/CPU bookkeeping, the tuning audit trail,
// per-node incremental accounting, the history log, the adaptive allocator's
// live sessions and the eliminator's throttle records.
//
// Queues and running sets reference jobs by id; full JobSpecs come from the
// snapshot's embedded session (SpecMap). The history log is rebuilt by
// replaying record() in record order — its running aggregates fold
// bit-identically in that order (see history.h).
#include "coda/coda_scheduler.h"
#include "state/serde.h"
#include "util/assert.h"

namespace coda::core {

namespace {

const workload::JobSpec* spec_of(state::Reader* r,
                                 const sched::SpecMap& specs,
                                 cluster::JobId id) {
  auto it = specs.find(id);
  if (it == specs.end()) {
    r->fail("CODA state references unknown job " + std::to_string(id));
    return nullptr;
  }
  return &it->second;
}

void save_outcome(state::Writer* w, const char* key,
                  const CodaScheduler::TuningOutcome& o) {
  w->line(key, o.job, static_cast<int>(o.model), o.requested_cpus,
          o.start_cpus, o.final_cpus, o.profile_steps);
}

CodaScheduler::TuningOutcome load_outcome(state::Reader* r, const char* key) {
  CodaScheduler::TuningOutcome o;
  r->expect(key);
  o.job = r->u64();
  o.model = static_cast<perfmodel::ModelId>(r->i32());
  o.requested_cpus = r->i32();
  o.start_cpus = r->i32();
  o.final_cpus = r->i32();
  o.profile_steps = r->i32();
  return o;
}

}  // namespace

void CodaScheduler::save_state(state::Writer* w) const {
  Scheduler::save_state(w);

  w->line("coda_reservation", reserved_cores_, four_array_nodes_);
  w->line("coda_counters", cross_borrower_count_, preemptions_, migrations_,
          next_seq_, next_generation_);

  const auto save_array = [w](const char* key, const ArrayState& array) {
    w->line(key, array.queues.size(), array.usage.size());
    for (const auto& [tenant, queue] : array.queues) {
      w->line("aq", tenant, queue.size());
      for (const workload::JobSpec& spec : queue) {
        w->line("aj", spec.id);
      }
    }
    for (const auto& [tenant, used] : array.usage) {
      w->line("au", tenant, used);
    }
  };
  save_array("cpu_array", cpu_array_);
  save_array("four_gpu_array", four_gpu_array_);
  save_array("one_gpu_array", one_gpu_array_);

  w->line("running_gpu", running_gpu_.size());
  for (const auto& [id, r] : running_gpu_) {
    w->line("rg", id, r.cores_per_node, r.four_array_job, r.cross_borrower,
            r.generation, r.tuning_active, r.placement.nodes.size());
    for (const auto& np : r.placement.nodes) {
      w->line("rgp", np.node, np.cpus, np.gpus);
    }
  }
  w->line("running_cpu", running_cpu_.size());
  for (const auto& [id, r] : running_cpu_) {
    w->line("rc", id, r.node, r.cores, r.borrowed_reserved, r.start_seq);
  }

  w->line("tuning_outcomes", tuning_outcomes_.size());
  for (const TuningOutcome& o : tuning_outcomes_) {
    save_outcome(w, "oc", o);
  }
  w->line("pending_outcomes", pending_outcomes_.size());
  for (const auto& [job, o] : pending_outcomes_) {
    save_outcome(w, "poc", o);
  }

  w->line("coda_nodes", cpu_jobs_by_node_.size());
  for (size_t node = 0; node < cpu_jobs_by_node_.size(); ++node) {
    w->line("nv", node, gpu_cores_on_node_[node], borrowed_on_node_[node],
            cross_borrowers_on_node_[node], cpu_jobs_by_node_[node].size());
    for (cluster::JobId job : cpu_jobs_by_node_[node]) {
      w->line("nj", job);
    }
  }

  w->line("history", history_.records().size());
  for (const HistoryRecord& rec : history_.records()) {
    w->line("hist", rec.tenant, static_cast<int>(rec.category),
            static_cast<int>(rec.model), rec.nodes, rec.gpus_per_node,
            rec.optimal_cores);
  }

  allocator_.save_state(w);
  eliminator_->save_state(w);
}

void CodaScheduler::load_state(state::Reader* r,
                               const sched::SpecMap& specs) {
  CODA_ASSERT_MSG(eliminator_ != nullptr,
                  "load_state requires an attached scheduler");
  Scheduler::load_state(r, specs);

  r->expect("coda_reservation");
  reserved_cores_ = r->i32();
  four_array_nodes_ = r->i32();
  r->expect("coda_counters");
  cross_borrower_count_ = r->i32();
  preemptions_ = r->i32();
  migrations_ = r->i32();
  next_seq_ = r->u64();
  next_generation_ = r->u64();

  const auto load_array = [r, &specs](const char* key, ArrayState* array) {
    array->queues.clear();
    array->usage.clear();
    if (!r->expect(key)) {
      return;
    }
    const uint64_t queues = r->u64();
    const uint64_t usages = r->u64();
    for (uint64_t i = 0; i < queues && r->ok(); ++i) {
      r->expect("aq");
      const cluster::TenantId tenant =
          static_cast<cluster::TenantId>(r->u64());
      auto& queue = array->queues[tenant];
      const uint64_t k = r->u64();
      for (uint64_t j = 0; j < k && r->ok(); ++j) {
        r->expect("aj");
        if (const workload::JobSpec* spec = spec_of(r, specs, r->u64())) {
          queue.push_back(*spec);
        }
      }
    }
    for (uint64_t i = 0; i < usages && r->ok(); ++i) {
      r->expect("au");
      const cluster::TenantId tenant =
          static_cast<cluster::TenantId>(r->u64());
      array->usage[tenant] = r->i32();
    }
  };
  load_array("cpu_array", &cpu_array_);
  load_array("four_gpu_array", &four_gpu_array_);
  load_array("one_gpu_array", &one_gpu_array_);

  r->expect("running_gpu");
  uint64_t n = r->u64();
  running_gpu_.clear();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("rg");
    const cluster::JobId id = r->u64();
    const workload::JobSpec* spec = spec_of(r, specs, id);
    if (spec == nullptr) {
      return;
    }
    RunningGpu rg;
    rg.spec = *spec;
    rg.cores_per_node = r->i32();
    rg.four_array_job = r->b();
    rg.cross_borrower = r->b();
    rg.generation = r->u64();
    rg.tuning_active = r->b();
    const uint64_t np = r->u64();
    for (uint64_t j = 0; j < np && r->ok(); ++j) {
      r->expect("rgp");
      sched::NodePlacement p;
      p.node = static_cast<cluster::NodeId>(r->u64());
      p.cpus = r->i32();
      p.gpus = r->i32();
      rg.placement.nodes.push_back(p);
    }
    running_gpu_[id] = std::move(rg);
  }

  r->expect("running_cpu");
  n = r->u64();
  running_cpu_.clear();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("rc");
    const cluster::JobId id = r->u64();
    const workload::JobSpec* spec = spec_of(r, specs, id);
    if (spec == nullptr) {
      return;
    }
    RunningCpu rc;
    rc.spec = *spec;
    rc.node = static_cast<cluster::NodeId>(r->u64());
    rc.cores = r->i32();
    rc.borrowed_reserved = r->i32();
    rc.start_seq = r->u64();
    running_cpu_[id] = std::move(rc);
  }

  r->expect("tuning_outcomes");
  n = r->u64();
  tuning_outcomes_.clear();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    tuning_outcomes_.push_back(load_outcome(r, "oc"));
  }
  r->expect("pending_outcomes");
  n = r->u64();
  pending_outcomes_.clear();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    TuningOutcome o = load_outcome(r, "poc");
    pending_outcomes_[o.job] = o;
  }

  r->expect("coda_nodes");
  n = r->u64();
  if (r->ok() && n != cpu_jobs_by_node_.size()) {
    r->fail("snapshot node count does not match the attached cluster");
    return;
  }
  for (uint64_t node = 0; node < n && r->ok(); ++node) {
    r->expect("nv");
    if (r->u64() != node && r->ok()) {
      r->fail("per-node rows out of order");
      return;
    }
    gpu_cores_on_node_[node] = r->i32();
    borrowed_on_node_[node] = r->i32();
    cross_borrowers_on_node_[node] = r->i32();
    const uint64_t k = r->u64();
    cpu_jobs_by_node_[node].clear();
    for (uint64_t j = 0; j < k && r->ok(); ++j) {
      r->expect("nj");
      cpu_jobs_by_node_[node].push_back(r->u64());
    }
  }

  r->expect("history");
  n = r->u64();
  CODA_ASSERT_MSG(history_.size() == 0,
                  "load_state requires a fresh history log");
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("hist");
    HistoryRecord rec;
    rec.tenant = static_cast<cluster::TenantId>(r->u64());
    rec.category = static_cast<perfmodel::ModelCategory>(r->i32());
    rec.model = static_cast<perfmodel::ModelId>(r->i32());
    rec.nodes = r->i32();
    rec.gpus_per_node = r->i32();
    rec.optimal_cores = r->i32();
    history_.record(rec);
  }

  allocator_.load_state(r, specs);
  eliminator_->load_state(r);

  // Derived state: the borrowed total and the placement index's per-node
  // bias are not serialized; recompute them from the restored accounting.
  total_borrowed_ = 0;
  for (int b : borrowed_on_node_) {
    total_borrowed_ += b;
  }
  refresh_all_cpu_bias();
}

}  // namespace coda::core
