// Historical job log (paper Sec. V-A step 5): when a job completes, its
// resource usage and owner are recorded "for future use". The adaptive CPU
// allocator seeds N_start from the owner's history in the same model
// category, and the multi-array scheduler sizes its per-node CPU
// reservation from cluster-wide statistics.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "cluster/resources.h"
#include "perfmodel/dnn_model.h"
#include "perfmodel/train_perf.h"

namespace coda::core {

struct HistoryRecord {
  cluster::TenantId tenant = 0;
  perfmodel::ModelCategory category = perfmodel::ModelCategory::kCV;
  perfmodel::ModelId model = perfmodel::ModelId::kAlexnet;
  int nodes = 1;
  int gpus_per_node = 1;
  int optimal_cores = 1;  // per node, as converged by the allocator
};

class HistoryLog {
 public:
  void record(const HistoryRecord& record);

  // N_start seed: the largest converged core count among the owner's past
  // jobs in `category` (paper: "we choose the largest core number"). Jobs
  // with the same GPU shape are preferred when any exist; otherwise any job
  // in the category counts. nullopt when the owner has no history there.
  std::optional<int> start_point(cluster::TenantId tenant,
                                 perfmodel::ModelCategory category,
                                 int nodes, int gpus_per_node) const;

  // Worst-case fallback (Sec. V-B1): the owner did not even provide the
  // category — seed from the owner's history across all categories.
  std::optional<int> start_point_any(cluster::TenantId tenant) const;

  // Cluster-wide average converged cores per GPU; sizes the GPU array's
  // per-node CPU reservation ("derived from historical statistical
  // information", Sec. V-C). nullopt before any GPU job completed.
  std::optional<double> mean_cores_per_gpu() const;

  // Fraction of recorded GPU jobs that used >= 4 GPUs; sizes the 4-GPU
  // sub-array. nullopt when empty.
  std::optional<double> four_gpu_fraction() const;

  size_t size() const { return records_.size(); }
  const std::vector<HistoryRecord>& records() const { return records_; }

 private:
  std::vector<HistoryRecord> records_;
  // (tenant, category) -> indices into records_, for fast start_point.
  std::map<std::pair<cluster::TenantId, int>, std::vector<size_t>> by_owner_;
};

}  // namespace coda::core
