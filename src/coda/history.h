// Historical job log (paper Sec. V-A step 5): when a job completes, its
// resource usage and owner are recorded "for future use". The adaptive CPU
// allocator seeds N_start from the owner's history in the same model
// category, and the multi-array scheduler sizes its per-node CPU
// reservation from cluster-wide statistics.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "cluster/resources.h"
#include "perfmodel/dnn_model.h"
#include "perfmodel/train_perf.h"

namespace coda::core {

struct HistoryRecord {
  cluster::TenantId tenant = 0;
  perfmodel::ModelCategory category = perfmodel::ModelCategory::kCV;
  perfmodel::ModelId model = perfmodel::ModelId::kAlexnet;
  int nodes = 1;
  int gpus_per_node = 1;
  int optimal_cores = 1;  // per node, as converged by the allocator
};

class HistoryLog {
 public:
  void record(const HistoryRecord& record);

  // N_start seed: the largest converged core count among the owner's past
  // jobs in `category` (paper: "we choose the largest core number"). Jobs
  // with the same GPU shape are preferred when any exist; otherwise any job
  // in the category counts. nullopt when the owner has no history there.
  std::optional<int> start_point(cluster::TenantId tenant,
                                 perfmodel::ModelCategory category,
                                 int nodes, int gpus_per_node) const;

  // Worst-case fallback (Sec. V-B1): the owner did not even provide the
  // category — seed from the owner's history across all categories.
  std::optional<int> start_point_any(cluster::TenantId tenant) const;

  // Cluster-wide average converged cores per GPU; sizes the GPU array's
  // per-node CPU reservation ("derived from historical statistical
  // information", Sec. V-C). nullopt before any GPU job completed.
  std::optional<double> mean_cores_per_gpu() const;

  // Fraction of recorded GPU jobs that used >= 4 GPUs; sizes the 4-GPU
  // sub-array. nullopt when empty.
  std::optional<double> four_gpu_fraction() const;

  size_t size() const { return records_.size(); }
  const std::vector<HistoryRecord>& records() const { return records_; }

 private:
  std::vector<HistoryRecord> records_;
  // All queries are aggregates (maxima and sums), so record() folds each
  // entry into running statistics and the lookups stay O(log n) regardless
  // of how much history a tenant accumulates. The sums accumulate in record
  // order — the same order the old full scans added in — so the derived
  // means are bit-identical to recomputing from records_.
  struct OwnerStats {
    int best_any = 0;  // max optimal_cores in this (tenant, category)
    // (nodes, gpus_per_node) -> max optimal_cores with that GPU shape.
    std::map<std::pair<int, int>, int> best_by_shape;
  };
  std::map<std::pair<cluster::TenantId, int>, OwnerStats> by_owner_;
  std::map<cluster::TenantId, int> best_by_tenant_;
  double cores_per_gpu_sum_ = 0.0;
  double four_gpu_weight_ = 0.0;
  double total_gpu_weight_ = 0.0;
};

}  // namespace coda::core
