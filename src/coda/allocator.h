// Adaptive CPU allocator (paper Sec. V-B): picks N_start for a new DNN
// training job, then hill-climbs on measured GPU utilization to the optimal
// core count N_opt in a handful of 90-second profiling steps.
//
// The allocator itself is a pure decision engine: the CODA scheduler drives
// it with measured utilizations and applies the core-count changes it asks
// for. This keeps it independently testable against the performance model.
#pragma once

#include <map>
#include <optional>

#include "coda/history.h"
#include "workload/job.h"

namespace coda::state {
class Writer;
class Reader;
}  // namespace coda::state

namespace coda::core {

// How the tuner searches the core-count axis (ablation of Sec. V-B2's
// design; bench_ablation_search_mode compares them).
enum class SearchMode {
  kHillClimb = 0,  // the paper's method: linear-extrapolation jumps +
                   // halving descent + bisection (default)
  kStepwise,       // classic +/-1 hill climb, no jumps
  kOneShot,        // probe, one linear jump, settle — minimal profiling
};

const char* to_string(SearchMode mode);

struct AllocatorConfig {
  SearchMode search_mode = SearchMode::kHillClimb;
  double profile_step_s = 90.0;  // paper Sec. VI-F: 90 s per profiling step
  int max_profile_steps = 10;    // hard stop for the tuning session
  // Relative utilization improvement below which a change "does not improve
  // GPU utilization" (stopping rule of Sec. V-B2).
  double improvement_eps = 0.004;
  // Utilization treated as "the plateau": used by the linear-extrapolation
  // jump (Sec. V-B: "there is a linear relationship between the GPU
  // utilization and the CPU number allocated to the job"). Models top out
  // at different ceilings (55-78% measured), so this is the cluster-wide
  // estimate; overshoot costs one trim step, undershoot one more jump.
  double plateau_util = 0.65;
  int min_cores = 1;
  int max_cores = 26;  // leave headroom on a 28-core node
};

class AdaptiveCpuAllocator {
 public:
  AdaptiveCpuAllocator(const AllocatorConfig& config, HistoryLog* history)
      : config_(config), history_(history) {}

  const AllocatorConfig& config() const { return config_; }

  // N_start for a job (Sec. V-B1): owner history in the category first;
  // otherwise the category default (CV 3, NLP 5, Speech 5); adjusted by the
  // optional user hints (-1 pipelined, -1 large weights, +1 complex prep).
  // When not even the category is known, falls back to the owner's history
  // across categories, then to a conservative default.
  int start_cores(const workload::JobSpec& spec) const;

  // ---- tuning session (one per running job) ----

  // Begins tuning a job that just started with `start` cores.
  void begin(cluster::JobId job, const workload::JobSpec& spec, int start);

  // Reports the utilization measured over the last profiling step at the
  // current core count. Returns the core count to try next, or nullopt when
  // the session converged (current cores are final). Each call is one
  // profiling step.
  std::optional<int> step(cluster::JobId job, double measured_util);

  // The core count the session currently believes in.
  int current_cores(cluster::JobId job) const;

  // Steps consumed so far (Table II overhead accounting).
  int profile_steps(cluster::JobId job) const;

  bool converged(cluster::JobId job) const;

  // Force-converges the session at `cores` (used when a suggested resize
  // cannot be applied because the node has no free cores).
  void settle(cluster::JobId job, int cores);

  // Drops the session without recording history (job migrated; it will
  // restart and begin a fresh session).
  void cancel(cluster::JobId job);

  // Ends the session (job finished or converged); records N_opt into the
  // history log when the session saw at least one measurement.
  void finish(cluster::JobId job);

  // Whether a tuning session exists for the job.
  bool tracking(cluster::JobId job) const { return sessions_.count(job) > 0; }

  // Snapshot support: serializes every live tuning session (specs are
  // stored by id and rehydrated from the snapshot's embedded session).
  void save_state(state::Writer* w) const;
  void load_state(state::Reader* r,
                  const std::map<cluster::JobId, workload::JobSpec>& specs);

 private:
  enum class Phase {
    kProbeStart,   // waiting for the first measurement at N_start
    kProbeDown,    // trying N_start - 1 (paper: evaluate smaller first)
    kDescend,      // walking down through a flat plateau (over-allocated)
    kBinaryAscend, // bisecting between a bad low point and a good high point
    kAscend,       // walking/jumping up (under-provisioned)
    kTrim,         // at plateau after ascending: try one core fewer
    kDone,
  };

  struct Session {
    workload::JobSpec spec;
    Phase phase = Phase::kProbeStart;
    int current = 1;       // cores currently allocated
    int steps = 0;         // profiling steps consumed
    double start_util = 0; // utilization measured at N_start
    int best_cores = 1;    // best configuration seen so far
    double best_util = 0;
    // kDescend / kBinaryAscend bookkeeping.
    int good_high = 0;     // known-good core count above
    int bad_low = 0;       // known-bad core count below
  };

  std::optional<int> transition(Session& s, double util);

  AllocatorConfig config_;
  HistoryLog* history_;
  std::map<cluster::JobId, Session> sessions_;
};

}  // namespace coda::core
