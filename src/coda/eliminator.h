// Real-time contention eliminator (paper Sec. V-D).
//
// Watches every node's total memory bandwidth (simulated Intel MBM). When a
// node crosses the threshold (75% of capacity by default) AND a co-located
// DNN training job's GPU utilization has dropped below what its current
// allocation should deliver, the eliminator throttles the node's CPU jobs:
// an MBA bandwidth cap on capable nodes, or halving the CPU job's cores on
// nodes without MBA. DNN jobs are never throttled (they have priority and
// do not contend with each other severely, Sec. IV-C).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "cluster/cluster.h"
#include "perfmodel/train_perf.h"
#include "sched/scheduler.h"
#include "telemetry/mbm.h"

namespace coda::state {
class Writer;
class Reader;
}  // namespace coda::state

namespace coda::core {

struct EliminatorConfig {
  bool enabled = true;
  double check_period_s = 10.0;
  double bw_threshold = 0.75;        // fraction of node capacity (Sec. V-D)
  double util_drop_tolerance = 0.03; // GPU util this far below expectation
                                     // counts as "dropped"
  double mba_throttle_factor = 0.5;  // cap = achieved bandwidth x factor

  // Extension beyond the paper (its throttles are permanent for the job's
  // lifetime): release MBA caps and restore halved cores once the node's
  // pressure falls below `release_threshold`. Exercised by
  // bench_ext_throttle_release.
  bool release_when_calm = false;
  double release_threshold = 0.55;
};

// Counters exposed for the Sec. VI-E evaluation.
struct EliminatorStats {
  int checks = 0;
  int nodes_over_threshold = 0;
  int mba_throttles = 0;
  int core_halvings = 0;
  int releases = 0;  // caps cleared / cores restored (extension)
};

class ContentionEliminator {
 public:
  // `expected_util` must return the utilization a GPU job should reach with
  // its current core allocation absent contention (the engine computes it
  // from the performance model); `current_cpu_cores` returns a CPU job's
  // core count on a node.
  // `on_cpu_resize(job, node, new_cores)` fires after a successful
  // core-halving so the owning scheduler can update its accounting.
  using CpuResizeCallback =
      std::function<void(cluster::JobId, cluster::NodeId, int)>;
  // Marks jobs the eliminator must never throttle (user-facing inference,
  // Sec. V-A). Optional; nullptr means "no exempt jobs".
  using UserFacingPredicate = std::function<bool(cluster::JobId)>;

  ContentionEliminator(const EliminatorConfig& config,
                       const sched::SchedulerEnv* env,
                       CpuResizeCallback on_cpu_resize = nullptr,
                       UserFacingPredicate is_user_facing = nullptr)
      : config_(config),
        env_(env),
        on_cpu_resize_(std::move(on_cpu_resize)),
        is_user_facing_(std::move(is_user_facing)) {}

  const EliminatorConfig& config() const { return config_; }
  const EliminatorStats& stats() const { return stats_; }

  // One monitoring pass over every node (call from a periodic simulator
  // event). `expected_util(job)` is the no-contention utilization reference.
  void check_all(
      const std::function<double(cluster::JobId)>& expected_util);

  // Forgets per-job bookkeeping when a job leaves its node for any reason
  // (finish, failure eviction, scheduler abort). Clears a still-live MBA
  // cap so no throttle outlives the job.
  void forget_job(cluster::JobId job);

  // Whether the eliminator currently holds a throttle record for `job` —
  // test hook for the eviction/cleanup paths.
  bool is_throttled(cluster::JobId job) const {
    return throttled_.count(job) > 0;
  }

  // Snapshot support: stats counters and live throttle records. The MBA
  // caps themselves live in the engine's controller and are restored there.
  void save_state(state::Writer* w) const;
  void load_state(state::Reader* r);

 private:
  // `screened_pressure` is the node's pressure as sampled by the pass's
  // batched screen (or a live re-probe once the pass has mutated state).
  // Both return whether they changed cluster state — a cap set, a resize —
  // which forces later nodes in the same pass back onto live probes.
  bool check_node(const cluster::Node& node,
                  const std::function<double(cluster::JobId)>& expected_util,
                  double screened_pressure);
  bool release_node(const cluster::Node& node, double screened_pressure);

  // Jobs this eliminator has acted on, for the release extension.
  struct ThrottleRecord {
    cluster::NodeId node = 0;
    bool via_mba = false;
    int original_cores = 0;  // core-halving path only
  };

  EliminatorConfig config_;
  const sched::SchedulerEnv* env_;
  CpuResizeCallback on_cpu_resize_;
  UserFacingPredicate is_user_facing_;
  EliminatorStats stats_;
  std::map<cluster::JobId, ThrottleRecord> throttled_;
  // Probe scratch reused across check/release passes: the eliminator samples
  // every node every check period, and each sample used to allocate a fresh
  // jobs vector.
  telemetry::NodeBandwidthSample sample_scratch_;
  // Per-pass batched screen (BandwidthSource::pressure_screen): one sparse
  // MBM read — parallel (id, pressure) rows for possibly-nonzero nodes —
  // instead of node_count independent probes.
  std::vector<cluster::NodeId> screen_ids_;
  std::vector<double> pressure_scratch_;
};

}  // namespace coda::core
