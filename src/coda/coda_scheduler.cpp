#include "coda/coda_scheduler.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/logging.h"

namespace coda::core {

// ---------------------------------------------------------------- ArrayState

size_t CodaScheduler::ArrayState::pending() const {
  size_t n = 0;
  for (const auto& [tenant, queue] : queues) {
    n += queue.size();
  }
  return n;
}

void CodaScheduler::ArrayState::push_back(const workload::JobSpec& spec) {
  queues[spec.tenant].push_back(spec);
}

void CodaScheduler::ArrayState::push_front(const workload::JobSpec& spec) {
  queues[spec.tenant].push_front(spec);
}

std::vector<cluster::TenantId> CodaScheduler::ArrayState::drf_order(
    int total_capacity) const {
  std::vector<cluster::TenantId> order;
  for (const auto& [tenant, queue] : queues) {
    if (!queue.empty()) {
      order.push_back(tenant);
    }
  }
  const auto share = [&](cluster::TenantId t) {
    auto it = usage.find(t);
    const int used = it != usage.end() ? it->second : 0;
    return total_capacity > 0 ? static_cast<double>(used) / total_capacity
                              : 0.0;
  };
  std::sort(order.begin(), order.end(),
            [&](cluster::TenantId a, cluster::TenantId b) {
              const double sa = share(a);
              const double sb = share(b);
              if (sa != sb) {
                return sa < sb;
              }
              return a < b;
            });
  return order;
}

// ------------------------------------------------------------ CodaScheduler

CodaScheduler::CodaScheduler(const CodaConfig& config)
    : config_(config), allocator_(config.allocator, &history_) {}

void CodaScheduler::attach(const sched::SchedulerEnv& env) {
  Scheduler::attach(env);
  eliminator_ = std::make_unique<ContentionEliminator>(
      config_.eliminator, &env_,
      [this](cluster::JobId job, cluster::NodeId node, int new_cores) {
        on_eliminator_cpu_resize(job, node, new_cores);
      },
      [this](cluster::JobId job) {
        auto it = running_cpu_.find(job);
        return it != running_cpu_.end() && it->second.spec.user_facing;
      });
  gpu_cores_on_node_.assign(env_.cluster->node_count(), 0);
  borrowed_on_node_.assign(env_.cluster->node_count(), 0);
  cpu_jobs_by_node_.assign(env_.cluster->node_count(), {});
  cross_borrowers_on_node_.assign(env_.cluster->node_count(), 0);

  if (config_.multi_array_enabled) {
    reserved_cores_ = std::clamp(config_.reserved_cores_per_node, 0,
                                 env_.cluster->config().node.cores);
    four_array_nodes_ = static_cast<int>(
        std::lround(config_.four_gpu_node_fraction *
                    static_cast<double>(env_.cluster->node_count())));
  } else {
    reserved_cores_ = 0;
    four_array_nodes_ = 0;
  }
  total_borrowed_ = 0;
  refresh_all_cpu_bias();

  // In restore mode the snapshot manifest re-arms both periodics at their
  // exact next firing times (rearm_* below); scheduling them here too would
  // double-tick.
  if (config_.eliminator.enabled && !env_.defer_periodics) {
    rearm_eliminator_tick(env_.sim->now() + config_.eliminator.check_period_s);
  }
  if (config_.multi_array_enabled &&
      config_.reservation_update_period_s > 0.0 && !env_.defer_periodics) {
    rearm_reservation_tick(env_.sim->now() +
                           config_.reservation_update_period_s);
  }
}

void CodaScheduler::rearm_eliminator_tick(double first) {
  env_.sim->schedule_periodic_at(
      first, config_.eliminator.check_period_s,
      [this] {
        eliminator_->check_all(
            [this](cluster::JobId job) { return expected_utilization(job); });
      },
      simcore::EventTag{simcore::kTagEliminatorTick});
}

void CodaScheduler::rearm_reservation_tick(double first) {
  env_.sim->schedule_periodic_at(
      first, config_.reservation_update_period_s,
      [this] { update_reservation_from_history(); },
      simcore::EventTag{simcore::kTagReservationTick});
}

void CodaScheduler::rearm_tuning_tick(double t, cluster::JobId job,
                                      uint64_t generation) {
  env_.sim->schedule_at(
      t, [this, job, generation] { on_tuning_tick(job, generation); },
      simcore::EventTag{simcore::kTagTuningTick, job, generation});
}

bool CodaScheduler::is_four_gpu_job(const workload::JobSpec& spec) const {
  return config_.multi_array_enabled && spec.total_gpus() >= 4;
}

CodaScheduler::ArrayState& CodaScheduler::gpu_array_for(
    const workload::JobSpec& spec) {
  return is_four_gpu_job(spec) ? four_gpu_array_ : one_gpu_array_;
}

bool CodaScheduler::node_in_four_array(cluster::NodeId id) const {
  return static_cast<int>(id) < four_array_nodes_;
}

void CodaScheduler::submit(const workload::JobSpec& spec) {
  if (spec.is_gpu_job()) {
    gpu_array_for(spec).push_back(spec);
  } else {
    cpu_array_.push_back(spec);
  }
}

size_t CodaScheduler::pending_gpu_jobs() const {
  return four_gpu_array_.pending() + one_gpu_array_.pending();
}

size_t CodaScheduler::pending_cpu_jobs() const {
  return cpu_array_.pending();
}

std::optional<sched::Scheduler::PendingGpuDemand>
CodaScheduler::min_pending_gpu_demand() const {
  std::optional<PendingGpuDemand> best;
  const auto consider = [&](const ArrayState& array) {
    for (const auto& [tenant, queue] : array.queues) {
      if (queue.empty()) {
        continue;
      }
      const workload::JobSpec& spec = queue.front();
      PendingGpuDemand d{spec.train_config.gpus_per_node,
                         allocator_.start_cores(spec)};
      if (!best || d.gpus_per_node < best->gpus_per_node ||
          (d.gpus_per_node == best->gpus_per_node &&
           d.cpus_per_node < best->cpus_per_node)) {
        best = d;
      }
    }
  };
  consider(four_gpu_array_);
  consider(one_gpu_array_);
  return best;
}

int CodaScheduler::reclaimable_cpus(cluster::NodeId node) const {
  // Evicting a borrower frees its whole allocation, not just the borrowed
  // part (the job is aborted and re-queued). User-facing inference is never
  // evicted (Sec. V-A).
  int cores = 0;
  for (cluster::JobId job : cpu_jobs_by_node_[node]) {
    auto it = running_cpu_.find(job);
    CODA_ASSERT(it != running_cpu_.end());
    if (it->second.borrowed_reserved > 0 && !it->second.spec.user_facing) {
      cores += it->second.cores;
    }
  }
  return cores;
}

int CodaScheduler::gpu_cores_used_on(const cluster::Node& node) const {
  return gpu_cores_on_node_[node.id()];
}

int CodaScheduler::cpu_array_free_cores(const cluster::Node& node) const {
  if (node.total_gpus() == 0) {
    // CPU-only servers (Sec. VI-G) belong to the CPU array wholesale — no
    // GPU reservation to respect.
    return node.free_cpus();
  }
  // Physically free cores minus the part of the GPU reservation not yet
  // consumed by GPU jobs or by already-borrowing CPU jobs.
  const int held_for_gpu =
      std::max(0, reserved_cores_ - gpu_cores_on_node_[node.id()] -
                      borrowed_on_node_[node.id()]);
  return std::max(0, node.free_cpus() - held_for_gpu);
}

void CodaScheduler::note_cpu_job_started(const RunningCpu& rc) {
  cpu_jobs_by_node_[rc.node].push_back(rc.spec.id);
  borrowed_on_node_[rc.node] += rc.borrowed_reserved;
  total_borrowed_ += rc.borrowed_reserved;
  refresh_cpu_bias(rc.node);
}

void CodaScheduler::note_cpu_job_gone(const RunningCpu& rc) {
  auto& jobs = cpu_jobs_by_node_[rc.node];
  jobs.erase(std::remove(jobs.begin(), jobs.end(), rc.spec.id), jobs.end());
  borrowed_on_node_[rc.node] -= rc.borrowed_reserved;
  total_borrowed_ -= rc.borrowed_reserved;
  CODA_ASSERT(borrowed_on_node_[rc.node] >= 0);
  refresh_cpu_bias(rc.node);
}

void CodaScheduler::refresh_cpu_bias(cluster::NodeId node) {
  const cluster::Node& n = env_.cluster->node(node);
  int bias = 0;
  if (n.total_gpus() > 0) {
    bias = std::max(0, reserved_cores_ - gpu_cores_on_node_[node] -
                           borrowed_on_node_[node]);
  }
  env_.cluster->placement_index().set_cpu_bias(node, bias);
}

void CodaScheduler::refresh_all_cpu_bias() {
  const size_t n = env_.cluster->node_count();
  for (cluster::NodeId node = 0; node < n; ++node) {
    refresh_cpu_bias(node);
  }
}

void CodaScheduler::on_eliminator_cpu_resize(cluster::JobId job,
                                             cluster::NodeId node,
                                             int new_cores) {
  auto it = running_cpu_.find(job);
  if (it == running_cpu_.end()) {
    return;
  }
  RunningCpu& rc = it->second;
  CODA_ASSERT(rc.node == node);
  const int freed = rc.cores - new_cores;
  cpu_array_.usage[rc.spec.tenant] -= freed;
  // Freed cores return to the reservation first.
  const int returned = std::min(freed, rc.borrowed_reserved);
  rc.borrowed_reserved -= returned;
  borrowed_on_node_[node] -= returned;
  total_borrowed_ -= returned;
  rc.cores = new_cores;
  refresh_cpu_bias(node);
}

// ----------------------------------------------------------------- kick path

void CodaScheduler::kick() {
  schedule_gpu_array(four_gpu_array_, /*four_array=*/true);
  schedule_gpu_array(one_gpu_array_, /*four_array=*/false);
  schedule_cpu_array();
}

void CodaScheduler::schedule_gpu_array(ArrayState& array, bool four_array) {
  while (true) {
    bool started = false;
    for (cluster::TenantId tenant :
         array.drf_order(env_.cluster->total_gpus())) {
      const workload::JobSpec head = array.queues[tenant].front();
      if (try_start_gpu_job(head, four_array)) {
        array.queues[tenant].pop_front();
        started = true;
        break;  // shares changed: recompute order
      }
    }
    if (!started) {
      return;
    }
  }
}

bool CodaScheduler::try_start_gpu_job(const workload::JobSpec& spec,
                                      bool four_array) {
  const int cores = allocator_.start_cores(spec);
  sched::PlacementRequest request;
  request.nodes = spec.train_config.nodes;
  request.gpus_per_node = spec.train_config.gpus_per_node;
  request.cpus_per_node = cores;

  // The sub-arrays are contiguous id ranges: [0, four_array_nodes_) is the
  // 4-GPU array, the rest the 1-GPU array. With multi-array disabled there
  // is one range and the cross steps below are unreachable.
  const cluster::NodeId split =
      static_cast<cluster::NodeId>(four_array_nodes_);
  const sched::IdRange full{};
  const sched::IdRange home =
      !config_.multi_array_enabled
          ? full
          : (four_array ? sched::IdRange{0, split}
                        : sched::IdRange{split, full.hi});
  const sched::IdRange cross = four_array ? sched::IdRange{split, full.hi}
                                          : sched::IdRange{0, split};

  // Failed-shape dedup: a shape that failed an earlier *pure* try (one that
  // evicted and migrated nothing, so the index generation never moved) must
  // fail identically while the cluster and the array split are unchanged.
  // Unlike FIFO/DRF this cannot rely on within-kick monotonicity — eviction
  // overshoot can grow a node's free cores mid-kick — hence the exact
  // (generation, four_array_nodes_) match.
  const auto& index = env_.cluster->placement_index();
  if (index.generation() != gpu_failed_gen_ ||
      four_array_nodes_ != gpu_failed_four_nodes_) {
    failed_gpu_shapes_.clear();
    gpu_failed_gen_ = index.generation();
    gpu_failed_four_nodes_ = four_array_nodes_;
  }
  for (const auto& f : failed_gpu_shapes_) {
    if (f.nodes == request.nodes && f.gpus_per_node == request.gpus_per_node &&
        f.cpus_per_node == request.cpus_per_node &&
        f.four_array == four_array) {
      return false;
    }
  }
  const auto note_pure_failure = [&] {
    if (index.generation() == gpu_failed_gen_) {
      failed_gpu_shapes_.push_back({request.nodes, request.gpus_per_node,
                                    request.cpus_per_node, four_array});
    }
  };

  // 1) Plain placement in the home sub-array.
  if (auto placement = find_placement(*env_.cluster, request, home)) {
    start_gpu_job(spec, *placement, cores, four_array,
                  /*cross_borrower=*/false);
    return true;
  }

  // 2) Home sub-array with eviction of CPU borrowers occupying reserved
  //    cores ("CODA aborts the running CPU job and releases the preempted
  //    CPU cores", Sec. V-C). With no borrowed cores anywhere, or when the
  //    pass evicted nothing, the re-query would repeat step 1's miss
  //    verbatim — skip both.
  if (config_.cpu_preemption_enabled && total_borrowed_ > 0 &&
      prepare_nodes_by_eviction(request, home)) {
    if (auto placement = find_placement(*env_.cluster, request, home)) {
      start_gpu_job(spec, *placement, cores, four_array,
                    /*cross_borrower=*/false);
      return true;
    }
  }

  if (!config_.multi_array_enabled) {
    note_pure_failure();
    return false;
  }

  // 3) Borrow nodes from the other sub-array (Sec. V-C).
  if (auto placement = find_placement(*env_.cluster, request, cross)) {
    start_gpu_job(spec, *placement, cores, four_array,
                  /*cross_borrower=*/!four_array);
    return true;
  }
  if (config_.cpu_preemption_enabled && total_borrowed_ > 0 &&
      prepare_nodes_by_eviction(request, cross)) {
    if (auto placement = find_placement(*env_.cluster, request, cross)) {
      start_gpu_job(spec, *placement, cores, four_array,
                    /*cross_borrower=*/!four_array);
      return true;
    }
  }

  // 4) A 4-GPU job may reclaim its sub-array by live-migrating 1-GPU
  //    borrowers out ("when 4-GPU jobs need to use corresponding resources
  //    again, job migration is performed", Sec. V-C).
  if (four_array && migrate_cross_borrowers_for(request)) {
    if (auto placement = find_placement(*env_.cluster, request, home)) {
      start_gpu_job(spec, *placement, cores, four_array,
                    /*cross_borrower=*/false);
      return true;
    }
  }
  note_pure_failure();
  return false;
}

bool CodaScheduler::evict_cpu_borrowers_for(cluster::NodeId node_id,
                                            int cores_needed) {
  const cluster::Node& node = env_.cluster->node(node_id);
  int deficit = cores_needed - node.free_cpus();
  if (deficit <= 0) {
    return true;
  }
  // Collect borrowers on this node, most recently started first (LIFO).
  std::vector<const RunningCpu*> borrowers;
  for (cluster::JobId job : cpu_jobs_by_node_[node_id]) {
    auto it = running_cpu_.find(job);
    CODA_ASSERT(it != running_cpu_.end());
    // User-facing inference outranks training and is never aborted.
    if (it->second.borrowed_reserved > 0 && !it->second.spec.user_facing) {
      borrowers.push_back(&it->second);
    }
  }
  std::sort(borrowers.begin(), borrowers.end(),
            [](const RunningCpu* a, const RunningCpu* b) {
              return a->start_seq > b->start_seq;
            });
  int reclaimable = 0;
  size_t take = 0;
  for (; take < borrowers.size() && reclaimable < deficit; ++take) {
    reclaimable += borrowers[take]->cores;
  }
  if (reclaimable < deficit) {
    return false;  // even evicting every borrower would not free enough
  }
  for (size_t i = 0; i < take; ++i) {
    const cluster::JobId job = borrowers[i]->spec.id;
    const workload::JobSpec spec = borrowers[i]->spec;
    const auto status = env_.preempt_job(job, /*keep_progress=*/false);
    CODA_ASSERT(status.ok());
    cpu_array_.usage[spec.tenant] -= borrowers[i]->cores;
    note_cpu_job_gone(*borrowers[i]);
    running_cpu_.erase(job);
    // The job leaves the node, so any eliminator throttle on it (MBA cap or
    // halved cores) is void; a stale record would otherwise shadow the job
    // when it restarts and corrupt the release projection.
    eliminator_->forget_job(job);
    // "The suspended CPU job re-enters the array head."
    cpu_array_.push_front(spec);
    ++preemptions_;
  }
  return true;
}

bool CodaScheduler::prepare_nodes_by_eviction(
    const sched::PlacementRequest& request, sched::IdRange range) {
  const int before = preemptions_;
  int prepared = 0;
  if (sched::placement_index_enabled()) {
    // Candidate set snapshot: evicting borrowers on one node never touches
    // another node's (free_gpus, free_cpus), so collecting first and then
    // visiting in ascending id order is step-for-step identical to the
    // linear scan below.
    eviction_scratch_.clear();
    env_.cluster->placement_index().collect_eviction_candidates(
        request.gpus_per_node, request.cpus_per_node, range,
        &eviction_scratch_);
    std::sort(eviction_scratch_.begin(), eviction_scratch_.end());
    for (cluster::NodeId id : eviction_scratch_) {
      if (prepared >= request.nodes) {
        break;
      }
      if (evict_cpu_borrowers_for(id, request.cpus_per_node)) {
        ++prepared;
      }
    }
  } else {
    for (const auto& node : env_.cluster->nodes()) {
      if (prepared >= request.nodes) {
        break;
      }
      if (node.id() < range.lo || node.id() >= range.hi ||
          node.free_gpus() < request.gpus_per_node ||
          node.free_cpus() >= request.cpus_per_node) {
        continue;  // either out of range, unusable, or needs no eviction
      }
      if (evict_cpu_borrowers_for(node.id(), request.cpus_per_node)) {
        ++prepared;
      }
    }
  }
  // Candidates always have a core deficit, so a successful preparation
  // implies at least one actual eviction; no evictions means the cluster is
  // untouched and the caller's re-query would repeat its earlier miss.
  return preemptions_ != before;
}

bool CodaScheduler::migrate_cross_borrowers_for(
    const sched::PlacementRequest& request) {
  // Find 4-GPU-array nodes that would fit the request if their 1-GPU
  // borrowers were migrated away; migrate them (progress preserved).
  if (cross_borrower_count_ == 0) {
    return false;  // nothing to migrate; skip the per-node scan
  }
  int prepared = 0;
  for (const auto& node : env_.cluster->nodes()) {
    if (prepared >= request.nodes) {
      break;
    }
    // Per-node count first: scanning a node's allocation map for borrowers
    // is only worth it when one actually lives there.
    if (cross_borrowers_on_node_[node.id()] == 0 ||
        !node_in_four_array(node.id())) {
      continue;
    }
    std::vector<cluster::JobId> borrowers;
    int gpus_reclaimable = node.free_gpus();
    int cores_reclaimable = node.free_cpus();
    for (const auto& [job, alloc] : node.allocations()) {
      auto it = running_gpu_.find(job);
      if (it != running_gpu_.end() && it->second.cross_borrower) {
        borrowers.push_back(job);
        gpus_reclaimable += alloc.gpus;
        cores_reclaimable += alloc.cpus;
      }
    }
    if (borrowers.empty() || gpus_reclaimable < request.gpus_per_node ||
        cores_reclaimable < request.cpus_per_node) {
      continue;
    }
    for (cluster::JobId job : borrowers) {
      auto it = running_gpu_.find(job);
      CODA_ASSERT(it != running_gpu_.end());
      const workload::JobSpec spec = it->second.spec;
      if (allocator_.tracking(job)) {
        allocator_.cancel(job);
      }
      pending_outcomes_.erase(job);
      one_gpu_array_.usage[spec.tenant] -= spec.total_gpus();
      for (const auto& np : it->second.placement.nodes) {
        gpu_cores_on_node_[np.node] -= np.cpus;
        --cross_borrowers_on_node_[np.node];
        refresh_cpu_bias(np.node);
      }
      --cross_borrower_count_;
      running_gpu_.erase(it);
      const auto status = env_.preempt_job(job, /*keep_progress=*/true);
      CODA_ASSERT(status.ok());
      one_gpu_array_.push_front(spec);
      ++migrations_;
    }
    ++prepared;
  }
  return prepared >= request.nodes;
}

void CodaScheduler::start_gpu_job(const workload::JobSpec& spec,
                                  const sched::Placement& placement,
                                  int cores, bool four_array,
                                  bool cross_borrower) {
  const auto status = env_.start_job(spec.id, placement);
  CODA_ASSERT_MSG(status.ok(), "CODA proposed an infeasible GPU placement");
  RunningGpu r;
  r.spec = spec;
  r.placement = placement;
  r.cores_per_node = cores;
  r.four_array_job = four_array;
  r.cross_borrower = cross_borrower;
  if (cross_borrower) {
    ++cross_borrower_count_;
    for (const auto& np : placement.nodes) {
      ++cross_borrowers_on_node_[np.node];
    }
  }
  r.generation = next_generation_++;
  for (const auto& np : placement.nodes) {
    gpu_cores_on_node_[np.node] += np.cpus;
    refresh_cpu_bias(np.node);
  }
  running_gpu_[spec.id] = std::move(r);
  (four_array ? four_gpu_array_ : one_gpu_array_).usage[spec.tenant] +=
      spec.total_gpus();
  begin_tuning(spec.id);
}

void CodaScheduler::schedule_cpu_array() {
  // CPU jobs may dip into the GPU reservation only while no GPU job waits
  // (Sec. V-C: "If CPU jobs burst and the GPU resource array is relatively
  // idle").
  //
  // Head core-counts that found no node stay cached: within this pass both
  // free and adjusted cores only shrink (starts consume, nothing releases —
  // a borrow-start zeroes its node's adjusted cores), so failures persist
  // across offer rounds; across kicks they hold while the index generation
  // (which also tracks bias changes) and the reservation are unchanged.
  const auto& index = env_.cluster->placement_index();
  if (index.generation() != cpu_failed_gen_ ||
      reserved_cores_ != cpu_failed_reserved_) {
    failed_cpu_reqs_.clear();
  }
  while (true) {
    // Borrowing reserved-but-idle cores is always allowed when preemption
    // can reclaim them: the abort-and-requeue path (Sec. V-C) is what makes
    // the loan safe, not the absence of a GPU backlog.
    const bool borrow_allowed =
        config_.multi_array_enabled ? config_.cpu_preemption_enabled : true;
    bool started = false;
    for (cluster::TenantId tenant :
         cpu_array_.drf_order(env_.cluster->total_cpus())) {
      const workload::JobSpec head = cpu_array_.queues[tenant].front();
      const int req = std::max(1, head.cpu_cores);
      // User-facing inference (Sec. V-A) outranks training: it may use
      // reserved cores like any CPU job, but is never evicted from them —
      // see evict_cpu_borrowers_for. Inference jobs are short, so the
      // reservation hold is transient.
      const bool may_borrow = borrow_allowed;
      if (std::find(failed_cpu_reqs_.begin(), failed_cpu_reqs_.end(), req) !=
          failed_cpu_reqs_.end()) {
        continue;  // this core count already failed in this index state
      }
      // Best fit over the per-node CPU-array budget: lowest
      // (adjusted cores, id) with adjusted >= req; only when no such node
      // exists, lowest (free_cpus, id) with free_cpus >= req (borrowing
      // reserved cores). The index's adjusted table equals
      // cpu_array_free_cores() for every node (see refresh_cpu_bias), and
      // when the adjusted query misses, *every* node with free_cpus >= req
      // is a borrow candidate — so both picks match the linear scan below.
      const cluster::Node* best = nullptr;
      bool best_borrows = false;
      if (sched::placement_index_enabled()) {
        cluster::NodeId pick = index.best_adjusted_fit(req);
        if (pick == cluster::PlacementIndex::kNone && may_borrow) {
          pick = index.best_free_cpu_fit(req);
          best_borrows = pick != cluster::PlacementIndex::kNone;
        }
        if (pick != cluster::PlacementIndex::kNone) {
          best = &env_.cluster->node(pick);
          CODA_ASSERT(best_borrows || cpu_array_free_cores(*best) >= req);
        }
      } else {
        int best_left = 0;
        for (const auto& node : env_.cluster->nodes()) {
          const int normal = cpu_array_free_cores(node);
          if (normal >= req) {
            const int left = normal - req;
            if (best == nullptr || best_borrows || left < best_left) {
              best = &node;
              best_left = left;
              best_borrows = false;
            }
          } else if (may_borrow && node.free_cpus() >= req &&
                     (best == nullptr || best_borrows)) {
            const int left = node.free_cpus() - req;
            if (best == nullptr || left < best_left || !best_borrows) {
              // Prefer non-borrowing nodes; among borrowing ones, best fit.
              if (best == nullptr || best_borrows) {
                best = &node;
                best_left = left;
                best_borrows = true;
              }
            }
          }
        }
      }
      if (best == nullptr) {
        failed_cpu_reqs_.push_back(req);
        continue;  // this tenant's head does not fit; try the next tenant
      }
      sched::Placement placement;
      placement.nodes.push_back(sched::NodePlacement{best->id(), req, 0});
      const int borrowed =
          best_borrows ? req - cpu_array_free_cores(*best) : 0;
      const auto status = env_.start_job(head.id, placement);
      CODA_ASSERT_MSG(status.ok(), "CODA proposed an infeasible CPU placement");
      RunningCpu rc;
      rc.spec = head;
      rc.node = best->id();
      rc.cores = req;
      rc.borrowed_reserved = std::max(0, borrowed);
      rc.start_seq = next_seq_++;
      note_cpu_job_started(rc);
      running_cpu_[head.id] = rc;
      cpu_array_.usage[head.tenant] += req;
      cpu_array_.queues[tenant].pop_front();
      if (config_.static_bw_cap_gbps > 0.0 && !head.user_facing) {
        // Kelp-like static partitioning: cap unconditionally at start.
        // Fails silently on nodes without MBA (Kelp needs the hardware).
        (void)env_.set_bw_cap(best->id(), head.id,
                              config_.static_bw_cap_gbps);
      }
      started = true;
      break;
    }
    if (!started) {
      cpu_failed_gen_ = index.generation();
      cpu_failed_reserved_ = reserved_cores_;
      return;
    }
  }
}

// ------------------------------------------------------------------- tuning

void CodaScheduler::begin_tuning(cluster::JobId job) {
  auto it = running_gpu_.find(job);
  CODA_ASSERT(it != running_gpu_.end());
  RunningGpu& r = it->second;
  allocator_.begin(job, r.spec, r.cores_per_node);
  r.tuning_active = true;
  TuningOutcome outcome;
  outcome.job = job;
  outcome.model = r.spec.model;
  outcome.requested_cpus = r.spec.requested_cpus;
  outcome.start_cpus = r.cores_per_node;
  outcome.final_cpus = r.cores_per_node;
  pending_outcomes_[job] = outcome;
  schedule_tuning_tick(job, r.generation);
}

void CodaScheduler::schedule_tuning_tick(cluster::JobId job,
                                         uint64_t generation) {
  rearm_tuning_tick(env_.sim->now() + config_.allocator.profile_step_s, job,
                    generation);
}

void CodaScheduler::on_tuning_tick(cluster::JobId job, uint64_t generation) {
  auto it = running_gpu_.find(job);
  if (it == running_gpu_.end() || it->second.generation != generation ||
      !it->second.tuning_active) {
    return;  // job finished or migrated; stale timer
  }
  RunningGpu& r = it->second;
  const double util = env_.gpu_util->gpu_utilization(job);
  if (util < 0.0) {
    return;
  }
  auto next = allocator_.step(job, util);

  const auto apply_cores = [&](int cores) -> bool {
    std::vector<std::pair<cluster::NodeId, int>> applied;
    for (const auto& np : r.placement.nodes) {
      const auto status = env_.resize_job(job, np.node, cores);
      if (!status.ok()) {
        for (const auto& [node, old] : applied) {
          const auto rollback = env_.resize_job(job, node, old);
          CODA_ASSERT(rollback.ok());
          gpu_cores_on_node_[node] += old - cores;
          refresh_cpu_bias(node);
        }
        return false;
      }
      applied.emplace_back(np.node, r.cores_per_node);
      gpu_cores_on_node_[np.node] += cores - r.cores_per_node;
      refresh_cpu_bias(np.node);
    }
    r.cores_per_node = cores;
    for (auto& np : r.placement.nodes) {
      np.cpus = cores;
    }
    return true;
  };

  if (next.has_value()) {
    if (apply_cores(*next)) {
      schedule_tuning_tick(job, generation);
      return;
    }
    // The node cannot grant the change: settle where we are.
    allocator_.settle(job, r.cores_per_node);
  }
  // Converged: apply the final choice if it differs.
  int final_cores = allocator_.current_cores(job);
  if (final_cores != r.cores_per_node && !apply_cores(final_cores)) {
    allocator_.settle(job, r.cores_per_node);
    final_cores = r.cores_per_node;
  }
  r.tuning_active = false;
  auto out_it = pending_outcomes_.find(job);
  CODA_ASSERT(out_it != pending_outcomes_.end());
  out_it->second.final_cpus = final_cores;
  out_it->second.profile_steps = allocator_.profile_steps(job);
  tuning_outcomes_.push_back(out_it->second);
  pending_outcomes_.erase(out_it);
  allocator_.finish(job);  // records N_opt into the history log
}

double CodaScheduler::expected_utilization(cluster::JobId job) const {
  auto it = running_gpu_.find(job);
  if (it == running_gpu_.end()) {
    return -1.0;
  }
  const RunningGpu& r = it->second;
  return perf_.gpu_utilization(r.spec.model, r.spec.train_config,
                               r.cores_per_node);
}

void CodaScheduler::update_reservation_from_history() {
  if (auto mean = history_.mean_cores_per_gpu()) {
    const auto& node_cfg = env_.cluster->config().node;
    reserved_cores_ = std::clamp(
        static_cast<int>(std::lround(*mean * node_cfg.gpus)), 2,
        node_cfg.cores - 2);
  }
  if (auto frac = history_.four_gpu_fraction()) {
    // Undersize the 4-GPU sub-array slightly: 4-GPU jobs spilling into the
    // 1-GPU array just borrow nodes, while 1-GPU borrowers in the 4-GPU
    // array get migrated out when reclaimed — undersizing avoids that churn.
    four_array_nodes_ = static_cast<int>(std::lround(
        std::clamp(*frac * 0.8, 0.1, 0.6) *
        static_cast<double>(env_.cluster->node_count())));
  }
  // A new reservation changes every node's bias.
  refresh_all_cpu_bias();
}

// -------------------------------------------------------------- termination

void CodaScheduler::on_job_evicted(const workload::JobSpec& spec) {
  // Node failure killed the job mid-flight: drop every piece of live
  // bookkeeping (no tuning outcome, no history record — the run is void),
  // then re-queue at the head of its array or hand the job to the retry
  // policy (delayed resubmission through the normal submit() path).
  if (spec.is_gpu_job()) {
    auto it = running_gpu_.find(spec.id);
    CODA_ASSERT(it != running_gpu_.end());
    const RunningGpu& r = it->second;
    (r.four_array_job ? four_gpu_array_ : one_gpu_array_)
        .usage[spec.tenant] -= spec.total_gpus();
    for (const auto& np : r.placement.nodes) {
      gpu_cores_on_node_[np.node] -= np.cpus;
      refresh_cpu_bias(np.node);
    }
    if (allocator_.tracking(spec.id)) {
      allocator_.cancel(spec.id);
    }
    pending_outcomes_.erase(spec.id);
    if (r.cross_borrower) {
      --cross_borrower_count_;
      for (const auto& np : r.placement.nodes) {
        --cross_borrowers_on_node_[np.node];
      }
    }
    running_gpu_.erase(it);
    if (retry_after_eviction(spec)) {
      gpu_array_for(spec).push_front(spec);
    }
  } else {
    auto it = running_cpu_.find(spec.id);
    CODA_ASSERT(it != running_cpu_.end());
    cpu_array_.usage[spec.tenant] -= it->second.cores;
    note_cpu_job_gone(it->second);
    running_cpu_.erase(it);
    eliminator_->forget_job(spec.id);
    if (retry_after_eviction(spec)) {
      cpu_array_.push_front(spec);
    }
  }
}

void CodaScheduler::on_job_finished(const workload::JobSpec& spec) {
  if (spec.is_gpu_job()) {
    auto it = running_gpu_.find(spec.id);
    CODA_ASSERT(it != running_gpu_.end());
    const RunningGpu& r = it->second;
    (r.four_array_job ? four_gpu_array_ : one_gpu_array_)
        .usage[spec.tenant] -= spec.total_gpus();
    auto out_it = pending_outcomes_.find(spec.id);
    if (out_it != pending_outcomes_.end()) {
      // Finished mid-tuning: account what it ran with.
      out_it->second.final_cpus = r.cores_per_node;
      out_it->second.profile_steps = allocator_.profile_steps(spec.id);
      tuning_outcomes_.push_back(out_it->second);
      pending_outcomes_.erase(out_it);
    }
    if (allocator_.tracking(spec.id)) {
      allocator_.finish(spec.id);
    }
    for (const auto& np : r.placement.nodes) {
      gpu_cores_on_node_[np.node] -= np.cpus;
      refresh_cpu_bias(np.node);
    }
    if (r.cross_borrower) {
      --cross_borrower_count_;
      for (const auto& np : r.placement.nodes) {
        --cross_borrowers_on_node_[np.node];
      }
    }
    running_gpu_.erase(it);
  } else {
    auto it = running_cpu_.find(spec.id);
    CODA_ASSERT(it != running_cpu_.end());
    cpu_array_.usage[spec.tenant] -= it->second.cores;
    note_cpu_job_gone(it->second);
    running_cpu_.erase(it);
    eliminator_->forget_job(spec.id);
  }
}

}  // namespace coda::core
