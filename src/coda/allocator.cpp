#include "coda/allocator.h"

#include <algorithm>
#include <cmath>

#include "state/serde.h"
#include "util/assert.h"

namespace coda::core {

namespace {

perfmodel::ModelCategory category_of(const workload::JobSpec& spec) {
  return perfmodel::model_params(spec.model).category;
}

}  // namespace

const char* to_string(SearchMode mode) {
  switch (mode) {
    case SearchMode::kHillClimb:
      return "hill-climb";
    case SearchMode::kStepwise:
      return "stepwise";
    case SearchMode::kOneShot:
      return "one-shot";
  }
  return "?";
}

int AdaptiveCpuAllocator::start_cores(const workload::JobSpec& spec) const {
  CODA_ASSERT(spec.is_gpu_job());
  int start = 0;
  bool from_history = false;
  if (spec.hints.category_known) {
    const auto category = category_of(spec);
    if (auto hist = history_->start_point(spec.tenant, category,
                                          spec.train_config.nodes,
                                          spec.train_config.gpus_per_node)) {
      start = *hist;
      from_history = true;
    } else {
      // Category defaults scale with the local GPU count: the per-GPU data
      // pipeline replicates per GPU (Sec. IV-B2's linear relationship).
      start = perfmodel::default_start_cores(category) *
              spec.train_config.gpus_per_node;
    }
  } else if (auto hist = history_->start_point_any(spec.tenant)) {
    // Worst case (Sec. V-B1): no category given — the owner's historical
    // execution information alone is "sufficient to find a reasonable
    // N_start".
    start = *hist;
    from_history = true;
  } else {
    start = 4 * spec.train_config.gpus_per_node;  // conservative default
  }
  // Optional-hint adjustments (Sec. V-B1) refine the *estimated* start;
  // a history-derived start already reflects the owner's converged optimum
  // and is used as-is.
  if (!from_history) {
    if (spec.hints.pipelined) {
      start -= 1;
    }
    if (spec.hints.large_weights) {
      start -= 1;
    }
    if (spec.hints.complex_prep) {
      start += 1;
    }
  }
  return std::clamp(start, config_.min_cores, config_.max_cores);
}

void AdaptiveCpuAllocator::begin(cluster::JobId job,
                                 const workload::JobSpec& spec, int start) {
  CODA_ASSERT(sessions_.count(job) == 0);
  Session s;
  s.spec = spec;
  s.phase = Phase::kProbeStart;
  s.current = std::clamp(start, config_.min_cores, config_.max_cores);
  sessions_[job] = std::move(s);
}

int AdaptiveCpuAllocator::current_cores(cluster::JobId job) const {
  auto it = sessions_.find(job);
  CODA_ASSERT(it != sessions_.end());
  return it->second.current;
}

int AdaptiveCpuAllocator::profile_steps(cluster::JobId job) const {
  auto it = sessions_.find(job);
  return it != sessions_.end() ? it->second.steps : 0;
}

bool AdaptiveCpuAllocator::converged(cluster::JobId job) const {
  auto it = sessions_.find(job);
  CODA_ASSERT(it != sessions_.end());
  return it->second.phase == Phase::kDone;
}

std::optional<int> AdaptiveCpuAllocator::step(cluster::JobId job,
                                              double measured_util) {
  auto it = sessions_.find(job);
  CODA_ASSERT_MSG(it != sessions_.end(), "step() without begin()");
  Session& s = it->second;
  CODA_ASSERT(s.phase != Phase::kDone);
  ++s.steps;

  // Track the best configuration: highest utilization wins; within eps of
  // the maximum, fewer cores win (the "just-enough" objective).
  const double eps = config_.improvement_eps;
  if (measured_util > s.best_util * (1.0 + eps) || s.best_cores == 0) {
    s.best_util = std::max(s.best_util, measured_util);
    s.best_cores = s.current;
  } else if (measured_util >= s.best_util * (1.0 - eps) &&
             s.current < s.best_cores) {
    s.best_cores = s.current;
  }
  s.best_util = std::max(s.best_util, measured_util);

  auto next = transition(s, measured_util);
  if (!next.has_value() || s.steps >= config_.max_profile_steps) {
    // Converged (or step budget exhausted): settle on the best seen.
    s.current = s.best_cores;
    s.phase = Phase::kDone;
    return std::nullopt;
  }
  CODA_ASSERT(*next >= config_.min_cores && *next <= config_.max_cores);
  CODA_ASSERT(*next != s.current);
  s.current = *next;
  return next;
}

std::optional<int> AdaptiveCpuAllocator::transition(Session& s, double util) {
  const double eps = config_.improvement_eps;
  const auto linear_jump_up = [&](int from, double from_util) {
    if (config_.search_mode == SearchMode::kStepwise) {
      return std::min(from + 1, config_.max_cores);  // no jumps
    }
    // Linear-relationship extrapolation (Sec. V-B): in the rising region
    // utilization is ~proportional to cores, so jump straight toward the
    // plateau instead of stepping one core at a time.
    const int target = static_cast<int>(
        std::lround(from * config_.plateau_util / std::max(from_util, 1e-3)));
    return std::clamp(target, from + 1, config_.max_cores);
  };
  const auto descend_step = [&](int from) {
    return config_.search_mode == SearchMode::kStepwise
               ? std::max(config_.min_cores, from - 1)
               : std::max(config_.min_cores, from / 2);
  };

  switch (s.phase) {
    case Phase::kProbeStart: {
      s.start_util = util;
      if (s.current > config_.min_cores) {
        // Paper: "The CPU allocator first evaluates the smaller core number."
        s.phase = Phase::kProbeDown;
        return s.current - 1;
      }
      if (s.current >= config_.max_cores || util >= config_.plateau_util) {
        return std::nullopt;
      }
      s.phase = Phase::kAscend;
      return linear_jump_up(s.current, util);
    }

    case Phase::kProbeDown: {
      if (util >= s.start_util * (1.0 - eps)) {
        // Fewer cores did not hurt: the job was over-allocated; descend.
        s.good_high = s.current;
        const int next = descend_step(s.current);
        if (next == s.current) {
          return std::nullopt;
        }
        s.phase = Phase::kDescend;
        return next;
      }
      // Fewer cores hurt: N_start sits at or below the knee.
      if (s.start_util >= config_.plateau_util ||
          s.current + 1 >= config_.max_cores) {
        return std::nullopt;  // N_start itself is optimal
      }
      s.phase = Phase::kAscend;
      return linear_jump_up(s.current + 1, s.start_util);
    }

    case Phase::kDescend: {
      if (util >= s.best_util * (1.0 - eps)) {
        // Still on the plateau: keep descending.
        s.good_high = s.current;
        const int next = descend_step(s.current);
        if (next == s.current) {
          return std::nullopt;
        }
        return next;
      }
      // Fell off the plateau: bisect between the bad low and the good high.
      s.bad_low = s.current;
      if (s.good_high - s.bad_low <= 1) {
        return std::nullopt;
      }
      s.phase = Phase::kBinaryAscend;
      return (s.bad_low + s.good_high + 1) / 2;
    }

    case Phase::kBinaryAscend: {
      if (util >= s.best_util * (1.0 - eps)) {
        s.good_high = s.current;
      } else {
        s.bad_low = s.current;
      }
      if (s.good_high - s.bad_low <= 1) {
        return std::nullopt;
      }
      const int mid = (s.bad_low + s.good_high + 1) / 2;
      if (mid == s.current) {
        return std::nullopt;
      }
      return mid;
    }

    case Phase::kAscend: {
      const bool improved = util >= s.start_util * (1.0 + eps) &&
                            s.current == s.best_cores;
      if (!improved) {
        return std::nullopt;  // jump did not help; settle on best
      }
      if (config_.search_mode == SearchMode::kOneShot) {
        return std::nullopt;  // one jump only: settle where it landed
      }
      if (util >= config_.plateau_util) {
        // Reached the plateau: try to trim one core.
        if (s.current - 1 >= config_.min_cores) {
          s.phase = Phase::kTrim;
          return s.current - 1;
        }
        return std::nullopt;
      }
      if (s.current >= config_.max_cores) {
        return std::nullopt;
      }
      s.start_util = util;  // new reference for the next improvement test
      return linear_jump_up(s.current, util);
    }

    case Phase::kTrim: {
      if (util >= s.best_util * (1.0 - eps)) {
        if (s.current - 1 >= config_.min_cores) {
          return s.current - 1;  // still as good: keep trimming
        }
      }
      return std::nullopt;  // trimming hurt (or hit the floor): settle
    }

    case Phase::kDone:
      break;
  }
  CODA_UNREACHABLE("bad allocator phase");
}

void AdaptiveCpuAllocator::settle(cluster::JobId job, int cores) {
  auto it = sessions_.find(job);
  CODA_ASSERT(it != sessions_.end());
  it->second.current = cores;
  it->second.best_cores = cores;
  it->second.phase = Phase::kDone;
}

void AdaptiveCpuAllocator::cancel(cluster::JobId job) {
  sessions_.erase(job);
}

void AdaptiveCpuAllocator::finish(cluster::JobId job) {
  auto it = sessions_.find(job);
  if (it == sessions_.end()) {
    return;
  }
  const Session& s = it->second;
  if (s.steps > 0 && s.spec.is_gpu_job()) {
    history_->record(HistoryRecord{
        s.spec.tenant, category_of(s.spec), s.spec.model,
        s.spec.train_config.nodes, s.spec.train_config.gpus_per_node,
        s.best_cores > 0 ? s.best_cores : s.current});
  }
  sessions_.erase(it);
}

// ------------------------------------------------------- snapshot support

void AdaptiveCpuAllocator::save_state(state::Writer* w) const {
  w->line("alloc_sessions", sessions_.size());
  for (const auto& [job, s] : sessions_) {
    w->line("as", job, static_cast<int>(s.phase), s.current, s.steps,
            s.start_util, s.best_cores, s.best_util, s.good_high, s.bad_low);
  }
}

void AdaptiveCpuAllocator::load_state(
    state::Reader* r,
    const std::map<cluster::JobId, workload::JobSpec>& specs) {
  r->expect("alloc_sessions");
  const uint64_t n = r->u64();
  sessions_.clear();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("as");
    const cluster::JobId job = r->u64();
    auto spec_it = specs.find(job);
    if (spec_it == specs.end()) {
      r->fail("tuning session references unknown job " + std::to_string(job));
      return;
    }
    Session s;
    s.spec = spec_it->second;
    const int phase = r->i32();
    if (phase < 0 || phase > static_cast<int>(Phase::kDone)) {
      r->fail("tuning session has invalid phase " + std::to_string(phase));
      return;
    }
    s.phase = static_cast<Phase>(phase);
    s.current = r->i32();
    s.steps = r->i32();
    s.start_util = r->f64();
    s.best_cores = r->i32();
    s.best_util = r->f64();
    s.good_high = r->i32();
    s.bad_low = r->i32();
    sessions_[job] = std::move(s);
  }
}

}  // namespace coda::core
