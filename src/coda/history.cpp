#include "coda/history.h"

#include <algorithm>

namespace coda::core {

void HistoryLog::record(const HistoryRecord& record) {
  by_owner_[{record.tenant, static_cast<int>(record.category)}].push_back(
      records_.size());
  records_.push_back(record);
}

std::optional<int> HistoryLog::start_point(
    cluster::TenantId tenant, perfmodel::ModelCategory category, int nodes,
    int gpus_per_node) const {
  auto it = by_owner_.find({tenant, static_cast<int>(category)});
  if (it == by_owner_.end() || it->second.empty()) {
    return std::nullopt;
  }
  // Prefer records with the same GPU shape; fall back to any in category.
  int best_same_shape = 0;
  int best_any = 0;
  for (size_t idx : it->second) {
    const HistoryRecord& r = records_[idx];
    best_any = std::max(best_any, r.optimal_cores);
    if (r.nodes == nodes && r.gpus_per_node == gpus_per_node) {
      best_same_shape = std::max(best_same_shape, r.optimal_cores);
    }
  }
  return best_same_shape > 0 ? best_same_shape : best_any;
}

std::optional<int> HistoryLog::start_point_any(
    cluster::TenantId tenant) const {
  int best = 0;
  for (const auto& [key, indices] : by_owner_) {
    if (key.first != tenant) {
      continue;
    }
    for (size_t idx : indices) {
      best = std::max(best, records_[idx].optimal_cores);
    }
  }
  if (best == 0) {
    return std::nullopt;
  }
  return best;
}

std::optional<double> HistoryLog::mean_cores_per_gpu() const {
  if (records_.empty()) {
    return std::nullopt;
  }
  double sum = 0.0;
  for (const auto& r : records_) {
    sum += static_cast<double>(r.optimal_cores) / r.gpus_per_node;
  }
  return sum / static_cast<double>(records_.size());
}

std::optional<double> HistoryLog::four_gpu_fraction() const {
  if (records_.empty()) {
    return std::nullopt;
  }
  // Weight by GPU demand, not job count: the sub-array split divides GPUs.
  double four = 0.0;
  double total = 0.0;
  for (const auto& r : records_) {
    const double gpus = r.nodes * r.gpus_per_node;
    total += gpus;
    if (gpus >= 4.0) {
      four += gpus;
    }
  }
  return total > 0.0 ? four / total : 0.0;
}

}  // namespace coda::core
