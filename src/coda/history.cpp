#include "coda/history.h"

#include <algorithm>

namespace coda::core {

void HistoryLog::record(const HistoryRecord& record) {
  records_.push_back(record);

  OwnerStats& stats =
      by_owner_[{record.tenant, static_cast<int>(record.category)}];
  stats.best_any = std::max(stats.best_any, record.optimal_cores);
  int& shape_best =
      stats.best_by_shape[{record.nodes, record.gpus_per_node}];
  shape_best = std::max(shape_best, record.optimal_cores);

  int& tenant_best = best_by_tenant_[record.tenant];
  tenant_best = std::max(tenant_best, record.optimal_cores);

  cores_per_gpu_sum_ +=
      static_cast<double>(record.optimal_cores) / record.gpus_per_node;
  const double gpus = record.nodes * record.gpus_per_node;
  total_gpu_weight_ += gpus;
  if (gpus >= 4.0) {
    four_gpu_weight_ += gpus;
  }
}

std::optional<int> HistoryLog::start_point(
    cluster::TenantId tenant, perfmodel::ModelCategory category, int nodes,
    int gpus_per_node) const {
  auto it = by_owner_.find({tenant, static_cast<int>(category)});
  if (it == by_owner_.end()) {
    return std::nullopt;
  }
  // Prefer records with the same GPU shape; fall back to any in category.
  auto shape_it = it->second.best_by_shape.find({nodes, gpus_per_node});
  if (shape_it != it->second.best_by_shape.end() && shape_it->second > 0) {
    return shape_it->second;
  }
  return it->second.best_any;
}

std::optional<int> HistoryLog::start_point_any(
    cluster::TenantId tenant) const {
  auto it = best_by_tenant_.find(tenant);
  if (it == best_by_tenant_.end() || it->second == 0) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<double> HistoryLog::mean_cores_per_gpu() const {
  if (records_.empty()) {
    return std::nullopt;
  }
  return cores_per_gpu_sum_ / static_cast<double>(records_.size());
}

std::optional<double> HistoryLog::four_gpu_fraction() const {
  if (records_.empty()) {
    return std::nullopt;
  }
  // Weighted by GPU demand, not job count: the sub-array split divides GPUs.
  return total_gpu_weight_ > 0.0 ? four_gpu_weight_ / total_gpu_weight_
                                 : 0.0;
}

}  // namespace coda::core
