#include "coda/eliminator.h"

#include <algorithm>

#include "state/serde.h"
#include "util/assert.h"
#include "util/logging.h"

namespace coda::core {

void ContentionEliminator::save_state(state::Writer* w) const {
  w->line("elim_stats", stats_.checks, stats_.nodes_over_threshold,
          stats_.mba_throttles, stats_.core_halvings, stats_.releases);
  w->line("elim_throttled", throttled_.size());
  for (const auto& [job, rec] : throttled_) {
    w->line("et", job, rec.node, rec.via_mba, rec.original_cores);
  }
}

void ContentionEliminator::load_state(state::Reader* r) {
  r->expect("elim_stats");
  stats_.checks = r->i32();
  stats_.nodes_over_threshold = r->i32();
  stats_.mba_throttles = r->i32();
  stats_.core_halvings = r->i32();
  stats_.releases = r->i32();
  r->expect("elim_throttled");
  const uint64_t n = r->u64();
  throttled_.clear();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("et");
    const cluster::JobId job = r->u64();
    ThrottleRecord rec;
    rec.node = static_cast<cluster::NodeId>(r->u64());
    rec.via_mba = r->b();
    rec.original_cores = r->i32();
    throttled_[job] = rec;
  }
}

void ContentionEliminator::check_all(
    const std::function<double(cluster::JobId)>& expected_util) {
  if (!config_.enabled) {
    return;
  }
  ++stats_.checks;
  const auto& nodes = env_->cluster->nodes();
  // One sparse batched MBM read screens the whole pass: ascending (id,
  // pressure) rows covering every node that could read nonzero — an
  // unlisted node's pressure is exactly 0.0, where check_node is a no-op
  // below the threshold and release_node can only find throttle records on
  // nodes that host jobs (which the screen lists). Visiting the listed
  // nodes therefore makes exactly the decisions the old one-probe-per-node
  // full loop made, at O(occupied) instead of O(cluster) per tick.
  //
  // Acting on a node — a cap, a resize — may shift pressure readings later
  // in the same pass, so after the first action the pass falls back to live
  // per-node probes (a mutation never populates a node the screen skipped:
  // caps and resizes move no job between nodes, so unlisted nodes stay at
  // exactly zero).
  env_->bandwidth->pressure_screen(nodes.size(), &screen_ids_,
                                   &pressure_scratch_);
  bool stale = false;
  size_t i = 0;
  // Fast path while nothing has mutated: the screen value decides both
  // per-node branches outright — check_node is a no-op below bw_threshold,
  // and release_node is a no-op at/above release_threshold or with nothing
  // throttled — so rows failing both predicates are skipped without a
  // call. Only sub-threshold sample_into scratch writes are elided.
  // throttled_ cannot change while !stale (every record mutation flips
  // stale), so hoisting the emptiness test out of the loop is safe.
  const bool may_release = config_.release_when_calm && !throttled_.empty();
  for (; i < screen_ids_.size() && !stale; ++i) {
    const double screened = pressure_scratch_[i];
    const bool check_candidate = screened >= config_.bw_threshold;
    const bool release_candidate =
        may_release && screened < config_.release_threshold;
    if (!check_candidate && !release_candidate) {
      continue;
    }
    const cluster::Node& node = nodes[screen_ids_[i]];
    if (check_node(node, expected_util, screened)) {
      stale = true;
    }
    if (config_.release_when_calm) {
      const double sp =
          stale ? env_->bandwidth->pressure(node.id()) : screened;
      if (release_node(node, sp)) {
        stale = true;
      }
    }
  }
  // A node acted: pressure readings may have shifted, so the rest of the
  // pass falls back to live probes on the remaining screened nodes.
  for (; i < screen_ids_.size(); ++i) {
    const cluster::Node& node = nodes[screen_ids_[i]];
    if (check_node(node, expected_util, env_->bandwidth->pressure(node.id()))) {
      stale = true;
    }
    if (config_.release_when_calm &&
        release_node(node, env_->bandwidth->pressure(node.id()))) {
      stale = true;
    }
  }
}

void ContentionEliminator::forget_job(cluster::JobId job) {
  auto it = throttled_.find(job);
  if (it == throttled_.end()) {
    return;
  }
  // Never let an MBA cap outlive its throttle record: when the job is
  // aborted by the scheduler mid-throttle, a surviving cap would shadow the
  // job's next run on that node. The engine's own stop paths clear a job's
  // caps themselves, so only clear one that is still live (avoids spurious
  // clear events on the ordinary finish path).
  if (it->second.via_mba && env_->bw_cap && env_->clear_bw_cap &&
      env_->bw_cap(it->second.node, job) >= 0.0) {
    env_->clear_bw_cap(it->second.node, job);
  }
  throttled_.erase(it);
}

bool ContentionEliminator::release_node(const cluster::Node& node,
                                        double screened_pressure) {
  if (screened_pressure >= config_.release_threshold) {
    return false;
  }
  env_->bandwidth->sample_into(node.id(), &sample_scratch_);
  const telemetry::NodeBandwidthSample& sample = sample_scratch_;
  // Anti-oscillation guard: only release a throttle when the *projected*
  // pressure — after the job roughly doubles its traffic back — still sits
  // below the trigger threshold. Without this, release/throttle would cycle
  // every check period (likely why the paper keeps throttles permanent).
  double projected = sample.pressure();
  bool mutated = false;
  const auto achieved_of = [&sample](cluster::JobId job) {
    for (const auto& jb : sample.jobs) {
      if (jb.job == job) {
        return jb.gbps;
      }
    }
    return 0.0;
  };
  for (auto it = throttled_.begin(); it != throttled_.end();) {
    if (it->second.node != node.id()) {
      ++it;
      continue;
    }
    const cluster::JobId job = it->first;
    double restored_delta = achieved_of(job) / node.config().mem_bw_gbps;
    if (!it->second.via_mba) {
      // The achieved bandwidth was measured on *halved* cores; restoring
      // original_cores scales the job's traffic back up proportionally.
      // Without this the projection undercounts and releases too eagerly.
      const auto alloc = node.allocation_of(job);
      if (alloc.ok() && alloc->cpus > 0 &&
          it->second.original_cores > alloc->cpus) {
        restored_delta *=
            static_cast<double>(it->second.original_cores) / alloc->cpus;
      }
    }
    if (projected + restored_delta >= config_.bw_threshold) {
      ++it;
      continue;
    }
    if (it->second.via_mba) {
      env_->clear_bw_cap(node.id(), job);
      projected += restored_delta;
      ++stats_.releases;
      mutated = true;
      it = throttled_.erase(it);
      continue;
    }
    // Core-halving path: restore the original cores if the node has room.
    const auto resize =
        env_->resize_job(job, node.id(), it->second.original_cores);
    if (resize.ok()) {
      if (on_cpu_resize_) {
        on_cpu_resize_(job, node.id(), it->second.original_cores);
      }
      projected += restored_delta;
      ++stats_.releases;
      mutated = true;
      it = throttled_.erase(it);
    } else {
      ++it;  // no room yet; retry on a later pass
    }
  }
  return mutated;
}

bool ContentionEliminator::check_node(
    const cluster::Node& node,
    const std::function<double(cluster::JobId)>& expected_util,
    double screened_pressure) {
  // Cheap screen first: most nodes sit below the threshold on most ticks,
  // and the full per-job sample is only needed once one crosses it.
  if (screened_pressure < config_.bw_threshold) {
    return false;
  }
  env_->bandwidth->sample_into(node.id(), &sample_scratch_);
  const telemetry::NodeBandwidthSample& sample = sample_scratch_;

  // Threshold crossed — but only act when a DNN training job actually
  // suffers (Sec. V-D: threshold reached "and the GPU utilization of the
  // DNN training jobs on the node drops").
  bool gpu_job_suffering = false;
  for (const auto& jb : sample.jobs) {
    if (!jb.is_gpu_job) {
      continue;
    }
    const double actual = env_->gpu_util->gpu_utilization(jb.job);
    const double expected = expected_util(jb.job);
    if (actual >= 0.0 && expected > 0.0 &&
        actual < expected * (1.0 - config_.util_drop_tolerance)) {
      gpu_job_suffering = true;
      break;
    }
  }
  if (!gpu_job_suffering) {
    return false;
  }
  ++stats_.nodes_over_threshold;

  // Throttle CPU jobs, biggest bandwidth consumer first. User-facing
  // inference jobs outrank DNN training (Sec. V-A) and are never touched.
  std::vector<telemetry::JobBandwidth> cpu_jobs;
  for (const auto& jb : sample.jobs) {
    if (!jb.is_gpu_job && jb.gbps > 0.0 &&
        (!is_user_facing_ || !is_user_facing_(jb.job))) {
      cpu_jobs.push_back(jb);
    }
  }
  std::sort(cpu_jobs.begin(), cpu_jobs.end(),
            [](const telemetry::JobBandwidth& a,
               const telemetry::JobBandwidth& b) {
              if (a.gbps != b.gbps) {
                return a.gbps > b.gbps;
              }
              return a.job < b.job;
            });

  double excess = sample.total_gbps -
                  config_.bw_threshold * sample.capacity_gbps;
  bool mutated = false;
  for (const auto& jb : cpu_jobs) {
    if (excess <= 0.0) {
      break;
    }
    const double cap = jb.gbps * config_.mba_throttle_factor;
    const auto status = env_->set_bw_cap(node.id(), jb.job, cap);
    if (status.ok()) {
      ++stats_.mba_throttles;
      mutated = true;
      // emplace keeps an existing same-node record (re-tightening a cap is
      // still one throttle), but a record pointing at a *different* node is
      // stale state from a previous life of the job — replace it.
      auto [t_it, inserted] =
          throttled_.emplace(jb.job, ThrottleRecord{node.id(), true, 0});
      if (!inserted && t_it->second.node != node.id()) {
        t_it->second = ThrottleRecord{node.id(), true, 0};
      }
      excess -= jb.gbps - cap;
      CODA_LOG_DEBUG("eliminator: MBA cap %.1f GB/s on job %llu node %u",
                     cap, static_cast<unsigned long long>(jb.job), node.id());
      continue;
    }
    // No MBA on this node: halve the CPU job's cores instead (Sec. V-D).
    const auto alloc = node.allocation_of(jb.job);
    if (!alloc.ok() || alloc->cpus <= 1) {
      continue;
    }
    const int new_cores = std::max(1, alloc->cpus / 2);
    const auto resize = env_->resize_job(jb.job, node.id(), new_cores);
    if (resize.ok()) {
      ++stats_.core_halvings;
      mutated = true;
      // Remember the first (largest) allocation for a later release; as
      // above, a record left over from another node must not survive.
      auto [t_it, inserted] = throttled_.emplace(
          jb.job, ThrottleRecord{node.id(), false, alloc->cpus});
      if (!inserted && t_it->second.node != node.id()) {
        t_it->second = ThrottleRecord{node.id(), false, alloc->cpus};
      }
      if (on_cpu_resize_) {
        on_cpu_resize_(jb.job, node.id(), new_cores);
      }
      // Fewer cores move proportionally less data.
      excess -= jb.gbps * (1.0 - static_cast<double>(new_cores) /
                                     alloc->cpus);
      CODA_LOG_DEBUG("eliminator: halved job %llu to %d cores on node %u",
                     static_cast<unsigned long long>(jb.job), new_cores,
                     node.id());
    }
  }
  return mutated;
}

}  // namespace coda::core
