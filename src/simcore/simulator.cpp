#include "simcore/simulator.h"

#include <limits>
#include <memory>

#include "util/assert.h"

namespace coda::simcore {

EventHandle Simulator::schedule_at(SimTime t, EventFn fn, EventTag tag) {
  CODA_ASSERT_MSG(t >= now_, "cannot schedule an event in the simulated past");
  return queue_.push(t, std::move(fn), tag);
}

EventHandle Simulator::schedule_after(SimTime delay, EventFn fn,
                                      EventTag tag) {
  CODA_ASSERT(delay >= 0.0);
  return queue_.push(now_ + delay, std::move(fn), tag);
}

void Simulator::post_at(SimTime t, EventFn fn, EventTag tag) {
  CODA_ASSERT_MSG(t >= now_, "cannot schedule an event in the simulated past");
  queue_.post(t, std::move(fn), tag);
}

void Simulator::post_after(SimTime delay, EventFn fn, EventTag tag) {
  CODA_ASSERT(delay >= 0.0);
  queue_.post(now_ + delay, std::move(fn), tag);
}

EventHandle Simulator::schedule_periodic(SimTime period, EventFn fn,
                                         EventTag tag) {
  return schedule_periodic_at(now_ + period, period, std::move(fn), tag);
}

EventHandle Simulator::schedule_periodic_at(SimTime first, SimTime period,
                                            EventFn fn, EventTag tag) {
  CODA_ASSERT(period > 0.0);
  CODA_ASSERT_MSG(first >= now_,
                  "cannot schedule an event in the simulated past");
  // The chain re-arms itself after each tick: the queued closure owns the
  // shared state and enqueues a copy of itself, so exactly one link is alive
  // at a time and destroying the queue frees the chain (a lambda capturing a
  // shared_ptr to its own std::function would cycle and leak). One shared
  // `dead` flag stops the whole chain: EventHandle::cancel() sets it, and
  // the next tick bails out without re-arming. The tag rides along on every
  // re-post so the whole chain stays visible to pending_events().
  auto dead = std::make_shared<bool>(false);
  auto user_fn = std::make_shared<EventFn>(std::move(fn));
  struct Tick {
    Simulator* sim;
    std::shared_ptr<bool> dead;
    std::shared_ptr<EventFn> user_fn;
    SimTime period;
    EventTag tag;
    void operator()() const {
      if (*dead) {
        return;
      }
      (*user_fn)();
      if (!*dead) {
        sim->queue_.post(sim->now_ + period, Tick{*this}, tag);
      }
    }
  };
  queue_.post(first, Tick{this, dead, user_fn, period, tag}, tag);
  return EventHandle(std::move(dead));
}

void Simulator::restore_clock(SimTime now, size_t dispatched) {
  CODA_ASSERT_MSG(queue_.empty(),
                  "restore_clock requires an empty event queue");
  CODA_ASSERT(now >= now_);
  now_ = now;
  dispatched_ = dispatched;
}

SimTime Simulator::next_event_time() {
  return queue_.empty() ? std::numeric_limits<SimTime>::infinity()
                        : queue_.next_time();
}

size_t Simulator::run_until(SimTime until) {
  size_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto [t, fn] = queue_.pop();
    CODA_ASSERT(t >= now_);
    now_ = t;
    fn();
    ++n;
    ++dispatched_;
    if (post_dispatch_) {
      post_dispatch_();
    }
  }
  if (now_ < until) {
    now_ = until;  // advance the clock even if the queue drained early
  }
  return n;
}

size_t Simulator::run_all() {
  return run_until(std::numeric_limits<SimTime>::infinity());
}

}  // namespace coda::simcore
