// Registry of EventTag.kind values used across the simulation layers.
//
// The queue itself treats tags as opaque; the values live here (the one
// header every tagging layer already includes) so the snapshot subsystem's
// re-arm manifest has a single enumeration to dispatch on. Every event a
// live session may have pending at a snapshot point MUST carry one of
// these kinds — state::capture_snapshot fails loudly on an untagged live
// event rather than silently dropping it from the manifest.
#pragma once

#include <cstdint>

namespace coda::simcore {

enum EventTagKind : uint32_t {
  kTagNone = 0,            // untagged (post()/push() without a tag)
  kTagArrival = 1,         // a = job id (engine arrival)
  kTagJobFinish = 2,       // a = job id (engine finish event)
  kTagNodeFail = 3,        // a = node id (scheduled outage start)
  kTagNodeRecover = 4,     // a = node id (scheduled outage end)
  kTagMetricsTick = 5,     // engine metrics-sampling periodic
  kTagRetryResubmit = 6,   // a = job id (scheduler retry backoff)
  kTagEliminatorTick = 7,  // CODA eliminator check periodic
  kTagReservationTick = 8, // CODA reservation-update periodic
  kTagTuningTick = 9,      // a = job id, b = tuning generation
};

}  // namespace coda::simcore
