// Discrete-event simulator driving all CODA experiments.
//
// The simulator owns the clock and the event queue. Components schedule
// callbacks at absolute or relative simulated times; run() dispatches them in
// (time, insertion) order until the queue drains or a time limit is hit.
#pragma once

#include <functional>

#include "simcore/event_queue.h"

namespace coda::simcore {

class Simulator {
 public:
  // Current simulated time (seconds since start). Monotonically
  // non-decreasing across event dispatches.
  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `t`; t must be >= now(). The optional
  // tag identifies the event in a snapshot's re-arm manifest (see
  // simcore/event_tags.h); untagged events make pending_events() fail.
  EventHandle schedule_at(SimTime t, EventFn fn, EventTag tag = {});

  // Schedules `fn` after `delay` (>= 0) seconds of simulated time.
  EventHandle schedule_after(SimTime delay, EventFn fn, EventTag tag = {});

  // Fire-and-forget variants: no cancellation handle, no per-event
  // control-block allocation. Use for events that always run (arrivals,
  // metric ticks).
  void post_at(SimTime t, EventFn fn, EventTag tag = {});
  void post_after(SimTime delay, EventFn fn, EventTag tag = {});

  // Schedules `fn` every `period` seconds starting at now() + period, until
  // the returned handle is cancelled or the run ends. The callback observes
  // the tick time via Simulator::now().
  //
  // The returned handle cancels the *whole* periodic chain, not just the
  // next tick.
  EventHandle schedule_periodic(SimTime period, EventFn fn,
                                EventTag tag = {});

  // Periodic chain whose FIRST tick fires at the absolute time `first`
  // (>= now()), then every `period` seconds after. The snapshot restore
  // path re-arms an in-flight periodic with this: the serialized pending
  // tick's time becomes `first`, so the restored chain ticks at the exact
  // instants the original would have.
  EventHandle schedule_periodic_at(SimTime first, SimTime period, EventFn fn,
                                   EventTag tag = {});

  // Appends every live event to `out` in dispatch order; fails when a live
  // event is untagged (see EventQueue::pending_events).
  util::Status pending_events(std::vector<PendingEvent>* out) const {
    return queue_.pending_events(out);
  }

  // Snapshot restore: force the clock and the dispatch counter to the
  // values the snapshotted simulator had. Only legal before any event is
  // scheduled (the queue must be empty) — re-armed events are scheduled
  // after this, at absolute times >= `now`.
  void restore_clock(SimTime now, size_t dispatched);

  // Dispatches events until the queue is empty or simulated time would
  // exceed `until` (events at exactly `until` still run). Returns the number
  // of events dispatched.
  size_t run_until(SimTime until);

  // Dispatches events until the queue is empty. Returns events dispatched.
  size_t run_all();

  // Number of events dispatched since construction.
  size_t dispatched() const { return dispatched_; }

  bool queue_empty() const { return queue_.empty(); }

  // Occupancy of the event control-slot pool (telemetry export).
  EventPool::Stats event_pool_stats() const { return queue_.pool_stats(); }

  // Time of the earliest live event, or +infinity when the queue is empty.
  // Pacing hook for the service layer: a real-time driver sleeps until the
  // wall-clock instant this virtual time maps to. Non-const because peeking
  // lazily drops cancelled heap entries.
  SimTime next_event_time();

  // Installs `fn` to run after every dispatched event, before the clock
  // advances to the next one. The simulation engine uses this to drain its
  // dirty-node set exactly once per dispatch: all mutations an event makes
  // happen at one simulated instant, so batching their recomputes here is
  // observationally identical to recomputing eagerly. Pass nullptr to clear.
  void set_post_dispatch(EventFn fn) { post_dispatch_ = std::move(fn); }

 private:
  SimTime now_ = 0.0;
  EventQueue queue_;
  size_t dispatched_ = 0;
  EventFn post_dispatch_;
};

}  // namespace coda::simcore
