#include "simcore/event_queue.h"

#include <algorithm>

#include "util/assert.h"

namespace coda::simcore {

void EventQueue::push_entry(Entry entry) {
  heap_.push_back(std::move(entry));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++pool_->live_;
}

EventHandle EventQueue::push(SimTime t, EventFn fn, EventTag tag) {
  const uint32_t slot = pool_->alloc();
  const uint64_t gen = pool_->generation(slot);
  push_entry(Entry{t, next_seq_++, std::move(fn), slot, gen, tag});
  return EventHandle(pool_, slot, gen);
}

void EventQueue::post(SimTime t, EventFn fn, EventTag tag) {
  push_entry(
      Entry{t, next_seq_++, std::move(fn), EventPool::kNoSlot, 0, tag});
}

util::Status EventQueue::pending_events(std::vector<PendingEvent>* out) const {
  const size_t first = out->size();
  for (const Entry& entry : heap_) {
    if (stale(entry)) {
      continue;  // lazily-dropped cancel; never fires
    }
    if (entry.tag.kind == 0) {
      return util::Error{
          util::ErrorCode::kFailedPrecondition,
          "live event at t=" + std::to_string(entry.t) +
              " carries no EventTag; it cannot be re-armed from a snapshot"};
    }
    out->push_back(PendingEvent{entry.t, entry.seq, entry.tag});
  }
  std::sort(out->begin() + static_cast<ptrdiff_t>(first), out->end(),
            [](const PendingEvent& a, const PendingEvent& b) {
              if (a.t != b.t) {
                return a.t < b.t;
              }
              return a.seq < b.seq;
            });
  return util::Status::Ok();
}

void EventQueue::drop_cancelled() {
  // Cancelled entries already left the live count (EventPool::cancel);
  // here they just get evicted from the heap.
  while (!heap_.empty() && stale(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  drop_cancelled();
  CODA_ASSERT(!heap_.empty());
  return heap_.front().t;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled();
  CODA_ASSERT(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry top = std::move(heap_.back());
  heap_.pop_back();
  if (top.slot != EventPool::kNoSlot) {
    // Recycle the control slot; the generation bump flips every handle for
    // this event to !pending(), the pooled equivalent of "fired".
    pool_->release(top.slot);
  }
  --pool_->live_;
  return Popped{top.t, std::move(top.fn)};
}

}  // namespace coda::simcore
