#include "simcore/event_queue.h"

#include <algorithm>

#include "util/assert.h"

namespace coda::simcore {

void EventQueue::push_entry(Entry entry) {
  ++pool_->live_;
  route(std::move(entry));
}

void EventQueue::route(Entry&& entry) {
  if (epoch_active_) {
    if (entry.t < near_end_) {
      near_.push_back(std::move(entry));
      std::push_heap(near_.begin(), near_.end(), Later{});
      return;
    }
    const SimTime ring_end =
        far_base_ + static_cast<SimTime>(kFarBuckets) * far_width_;
    if (entry.t < ring_end) {
      size_t idx = static_cast<size_t>((entry.t - far_base_) / far_width_);
      if (idx >= kFarBuckets) {
        idx = kFarBuckets - 1;
      }
      // The division can land one bucket off the true half-open interval
      // [base + idx*w, base + (idx+1)*w); nudge with the same edge
      // expression routing and migration use, so equal times always agree.
      while (idx > 0 &&
             entry.t < far_base_ + static_cast<SimTime>(idx) * far_width_) {
        --idx;
      }
      while (idx + 1 < kFarBuckets &&
             entry.t >=
                 far_base_ + static_cast<SimTime>(idx + 1) * far_width_) {
        ++idx;
      }
      far_[idx].push_back(std::move(entry));
      return;
    }
  }
  overflow_.push_back(std::move(entry));
}

EventHandle EventQueue::push(SimTime t, EventFn fn, EventTag tag) {
  const uint32_t slot = pool_->alloc();
  const uint64_t gen = pool_->generation(slot);
  push_entry(Entry{t, next_seq_++, std::move(fn), slot, gen, tag});
  return EventHandle(pool_, slot, gen);
}

void EventQueue::post(SimTime t, EventFn fn, EventTag tag) {
  push_entry(
      Entry{t, next_seq_++, std::move(fn), EventPool::kNoSlot, 0, tag});
}

util::Status EventQueue::pending_events(std::vector<PendingEvent>* out) const {
  const size_t first = out->size();
  const auto append = [&](const std::vector<Entry>& entries) -> util::Status {
    for (const Entry& entry : entries) {
      if (stale(entry)) {
        continue;  // lazily-dropped cancel; never fires
      }
      if (entry.tag.kind == 0) {
        return util::Error{
            util::ErrorCode::kFailedPrecondition,
            "live event at t=" + std::to_string(entry.t) +
                " carries no EventTag; it cannot be re-armed from a snapshot"};
      }
      out->push_back(PendingEvent{entry.t, entry.seq, entry.tag});
    }
    return util::Status::Ok();
  };
  if (auto s = append(near_); !s.ok()) {
    return s;
  }
  for (const auto& bucket : far_) {
    if (auto s = append(bucket); !s.ok()) {
      return s;
    }
  }
  if (auto s = append(overflow_); !s.ok()) {
    return s;
  }
  std::sort(out->begin() + static_cast<ptrdiff_t>(first), out->end(),
            [](const PendingEvent& a, const PendingEvent& b) {
              if (a.t != b.t) {
                return a.t < b.t;
              }
              return a.seq < b.seq;
            });
  return util::Status::Ok();
}

void EventQueue::refill() {
  for (;;) {
    // Cancelled entries already left the live count (EventPool::cancel);
    // here they just get evicted as they surface.
    while (!near_.empty() && stale(near_.front())) {
      std::pop_heap(near_.begin(), near_.end(), Later{});
      near_.pop_back();
    }
    if (!near_.empty()) {
      return;
    }
    if (epoch_active_ && far_cursor_ < kFarBuckets) {
      // Migrate the next ring bucket wholesale. Every unmigrated bucket
      // holds only times >= its lower edge, so extending near_end_ to this
      // bucket's upper edge keeps the near heap's top the global minimum.
      std::vector<Entry>& bucket = far_[far_cursor_];
      near_end_ =
          far_base_ + static_cast<SimTime>(far_cursor_ + 1) * far_width_;
      ++far_cursor_;
      for (Entry& entry : bucket) {
        if (!stale(entry)) {
          near_.push_back(std::move(entry));
        }
      }
      bucket.clear();
      std::make_heap(near_.begin(), near_.end(), Later{});
      continue;
    }
    rebuild_epoch();
  }
}

void EventQueue::rebuild_epoch() {
  overflow_.erase(
      std::remove_if(overflow_.begin(), overflow_.end(),
                     [this](const Entry& entry) { return stale(entry); }),
      overflow_.end());
  CODA_ASSERT_MSG(!overflow_.empty(),
                  "refill with no live event anywhere in the queue");
  SimTime min_t = overflow_.front().t;
  SimTime max_t = min_t;
  for (const Entry& entry : overflow_) {
    min_t = std::min(min_t, entry.t);
    max_t = std::max(max_t, entry.t);
  }
  far_base_ = min_t;
  // The relative margin keeps max_t strictly inside the last bucket (it
  // dwarfs double rounding); the floor handles a single-instant overflow.
  far_width_ = std::max(
      (max_t - min_t) * (1.0 + 1e-9) / static_cast<SimTime>(kFarBuckets),
      1e-6);
  far_cursor_ = 0;
  near_end_ = far_base_;
  epoch_active_ = true;
  std::vector<Entry> pending;
  pending.swap(overflow_);
  for (Entry& entry : pending) {
    route(std::move(entry));
  }
  CODA_ASSERT(overflow_.empty());  // the fresh ring must span every entry
}

void EventQueue::reset_structures() {
  near_.clear();
  for (auto& bucket : far_) {
    bucket.clear();
  }
  overflow_.clear();
  epoch_active_ = false;
  far_cursor_ = 0;
  near_end_ = 0.0;
}

SimTime EventQueue::next_time() {
  CODA_ASSERT(pool_->live_ > 0);
  refill();
  return near_.front().t;
}

EventQueue::Popped EventQueue::pop() {
  CODA_ASSERT(pool_->live_ > 0);
  refill();
  std::pop_heap(near_.begin(), near_.end(), Later{});
  Entry top = std::move(near_.back());
  near_.pop_back();
  if (top.slot != EventPool::kNoSlot) {
    // Recycle the control slot; the generation bump flips every handle for
    // this event to !pending(), the pooled equivalent of "fired".
    pool_->release(top.slot);
  }
  --pool_->live_;
  if (pool_->live_ == 0) {
    // Nothing live remains (stale leftovers at most): reset the epoch so
    // the next batch of submissions sizes a fresh ring for its own span.
    reset_structures();
  }
  return Popped{top.t, std::move(top.fn)};
}

}  // namespace coda::simcore
