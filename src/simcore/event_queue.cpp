#include "simcore/event_queue.h"

#include "util/assert.h"

namespace coda::simcore {

EventHandle EventQueue::push(SimTime t, EventFn fn) {
  auto cancelled = std::make_shared<bool>(false);
  heap_.push(Entry{t, next_seq_++, std::move(fn), cancelled});
  return EventHandle(std::move(cancelled));
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && *heap_.top().cancelled) {
    heap_.pop();
  }
}

bool EventQueue::empty() {
  drop_cancelled();
  return heap_.empty();
}

SimTime EventQueue::next_time() {
  drop_cancelled();
  CODA_ASSERT(!heap_.empty());
  return heap_.top().t;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled();
  CODA_ASSERT(!heap_.empty());
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the small parts and move the functor by re-wrapping.
  Entry top = heap_.top();
  heap_.pop();
  *top.cancelled = true;  // mark fired so handles report !pending()
  return Popped{top.t, std::move(top.fn)};
}

size_t EventQueue::live_count() const {
  // Count non-cancelled entries; requires copying the heap (tests only).
  auto copy = heap_;
  size_t n = 0;
  while (!copy.empty()) {
    if (!*copy.top().cancelled) {
      ++n;
    }
    copy.pop();
  }
  return n;
}

}  // namespace coda::simcore
