// Cancellable priority event queue for the discrete-event simulator.
//
// Events are ordered by (time, insertion sequence): ties in simulated time
// resolve in schedule order, which keeps runs bit-for-bit deterministic.
// Cancellation is lazy — a cancelled entry stays in the heap and is skipped
// at pop time — so cancel is O(1) and pop stays O(log n) amortized.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace coda::simcore {

using SimTime = double;  // simulated seconds since experiment start

using EventFn = std::function<void()>;

// Handle to a scheduled event; lets callers cancel it before it fires.
// Copyable; all copies refer to the same scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  // True while the event is scheduled and not yet fired/cancelled.
  bool pending() const { return state_ && !*state_; }

  // Cancels the event if still pending; no-op otherwise.
  void cancel() {
    if (state_) {
      *state_ = true;
    }
  }

 private:
  friend class EventQueue;
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> state)
      : state_(std::move(state)) {}

  std::shared_ptr<bool> state_;  // true once cancelled or fired
};

class EventQueue {
 public:
  // Enqueues `fn` at simulated time `t`. Times may be scheduled in any order
  // but must not precede the last popped time (checked by the Simulator).
  EventHandle push(SimTime t, EventFn fn);

  // True when no live (non-cancelled) events remain.
  bool empty();

  // Time of the earliest live event; requires !empty().
  SimTime next_time();

  // Pops and returns the earliest live event; requires !empty().
  struct Popped {
    SimTime t;
    EventFn fn;
  };
  Popped pop();

  // Number of live events (O(n): debugging/tests only).
  size_t live_count() const;

 private:
  struct Entry {
    SimTime t;
    uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) {
        return a.t > b.t;
      }
      return a.seq > b.seq;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace coda::simcore
