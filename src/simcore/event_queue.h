// Cancellable priority event queue for the discrete-event simulator.
//
// Events are ordered by (time, insertion sequence): ties in simulated time
// resolve in schedule order, which keeps runs bit-for-bit deterministic.
// Cancellation is lazy — a cancelled entry stays queued and is skipped when
// it surfaces — so cancel is O(1) and pop stays O(log n) amortized.
//
// Storage is a two-level calendar hierarchy instead of one global heap:
// a small "near" binary heap holds only events before near_end_, a ring of
// equal-width far buckets covers the current epoch beyond it, and an
// unsorted overflow holds everything past the ring. Steady-state pushes
// into the future append to a far bucket in O(1) instead of paying
// O(log E) against every queued event; buckets migrate into the near heap
// one at a time as the simulation reaches them. Routing is strict on
// t < near_end_ and bucket edges are computed with one shared expression,
// so equal-time events always land in the same structure and dispatch
// order is identical to the single-heap implementation, event for event.
//
// Two scheduling paths exist: push() hands back an EventHandle backed by a
// pooled generation slot (no per-event heap allocation in steady state),
// while post() is for the common fire-and-forget case and allocates no
// per-event state beyond the functor itself.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/result.h"

namespace coda::simcore {

using SimTime = double;  // simulated seconds since experiment start

using EventFn = std::function<void()>;

// Identity of a scheduled event, carried alongside the callback so a live
// session can be snapshotted: callbacks cannot be serialized, but a
// (kind, a, b) triple plus the fire time is enough for the owning layer to
// re-create the exact closure on restore (the re-arm manifest). kind 0
// means untagged; see simcore/event_tags.h for the kind registry.
struct EventTag {
  uint32_t kind = 0;
  uint64_t a = 0;
  uint64_t b = 0;
};

// One live queue entry as seen by the snapshot subsystem: fire time, the
// insertion sequence (relative order under time ties), and the tag.
struct PendingEvent {
  SimTime t = 0.0;
  uint64_t seq = 0;
  EventTag tag;
};

// Slab pool of event control slots. Each slot is just a generation counter:
// a (slot, generation) pair names one scheduled event, and the pair goes
// stale — meaning "fired or cancelled" — the moment the slot's generation
// is bumped. Slots recycle through a free list, so after warm-up push()
// allocates nothing; bumping the generation on release makes recycled slots
// safe against stale handles (ABA). The pool is shared (shared_ptr) between
// the queue and every outstanding EventHandle, so handles that outlive the
// queue stay harmless, exactly like the old per-event control blocks.
class EventPool {
 public:
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  // Claims a slot (growing by one slab when the free list is empty) and
  // returns its index; the current generation names this allocation.
  uint32_t alloc() {
    if (free_.empty()) {
      grow();
    }
    const uint32_t idx = free_.back();
    free_.pop_back();
    ++in_use_;
    return idx;
  }

  uint64_t generation(uint32_t idx) const {
    return chunks_[idx / kChunkSlots][idx % kChunkSlots];
  }

  // Invalidates every outstanding (idx, generation) reference and recycles
  // the slot. Called when the event fires or is cancelled.
  void release(uint32_t idx) {
    ++chunks_[idx / kChunkSlots][idx % kChunkSlots];
    free_.push_back(idx);
    --in_use_;
  }

  // Cancel path used by EventHandle: succeeds only while (idx, g) is still
  // current, releasing the slot and dropping the live-event count.
  bool cancel(uint32_t idx, uint64_t g) {
    if (generation(idx) != g) {
      return false;  // already fired or cancelled
    }
    release(idx);
    --live_;
    return true;
  }

  struct Stats {
    size_t live_events = 0;   // scheduled & not fired/cancelled (incl. post)
    size_t slots_in_use = 0;  // pooled control slots currently claimed
    size_t slots_free = 0;    // recycled slots awaiting reuse
    size_t chunks = 0;        // slabs allocated over the pool's lifetime
  };
  Stats stats() const {
    return Stats{live_, in_use_, free_.size(), chunks_.size()};
  }

 private:
  friend class EventQueue;
  static constexpr size_t kChunkSlots = 256;

  void grow() {
    auto chunk = std::make_unique<uint64_t[]>(kChunkSlots);
    const uint32_t base = static_cast<uint32_t>(chunks_.size() * kChunkSlots);
    for (size_t i = 0; i < kChunkSlots; ++i) {
      chunk[i] = 0;
      free_.push_back(base + static_cast<uint32_t>(kChunkSlots - 1 - i));
    }
    chunks_.push_back(std::move(chunk));
  }

  std::vector<std::unique_ptr<uint64_t[]>> chunks_;  // slot generations
  std::vector<uint32_t> free_;
  size_t in_use_ = 0;
  size_t live_ = 0;  // live events in the owning queue, pooled or post()ed
};

// Handle to a scheduled event; lets callers cancel it before it fires.
// Copyable; all copies refer to the same scheduled event. Two backings
// exist: pooled (queue push — slot index + generation into the shared
// EventPool) and a plain shared flag (the Simulator's periodic ticks,
// which manage their own liveness).
class EventHandle {
 public:
  EventHandle() = default;

  // True while the event is scheduled and not yet fired/cancelled.
  bool pending() const {
    if (pool_) {
      return pool_->generation(idx_) == gen_;
    }
    return state_ && !*state_;
  }

  // Cancels the event if still pending; no-op otherwise.
  void cancel() {
    if (pool_) {
      pool_->cancel(idx_, gen_);
    } else if (state_ && !*state_) {
      *state_ = true;
    }
  }

 private:
  friend class EventQueue;
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> state)
      : state_(std::move(state)) {}
  EventHandle(std::shared_ptr<EventPool> pool, uint32_t idx, uint64_t gen)
      : pool_(std::move(pool)), idx_(idx), gen_(gen) {}

  std::shared_ptr<bool> state_;      // periodic ticks: true once cancelled
  std::shared_ptr<EventPool> pool_;  // pushed events: generation slot pool
  uint32_t idx_ = EventPool::kNoSlot;
  uint64_t gen_ = 0;
};

class EventQueue {
 public:
  // Enqueues `fn` at simulated time `t`. Times may be scheduled in any order
  // but must not precede the last popped time (checked by the Simulator).
  EventHandle push(SimTime t, EventFn fn, EventTag tag = {});

  // Enqueues `fn` at `t` with no cancellation handle: the event will fire
  // exactly once. Avoids claiming a control slot.
  void post(SimTime t, EventFn fn, EventTag tag = {});

  // Appends every live (non-cancelled) entry to `out` in dispatch order
  // ((t, seq) ascending). Fails with kFailedPrecondition when any live
  // entry is untagged — such an event cannot be re-armed from a snapshot,
  // and dropping it silently would corrupt the restored session.
  util::Status pending_events(std::vector<PendingEvent>* out) const;

  // True when no live (non-cancelled) events remain.
  bool empty() const { return pool_->live_ == 0; }

  // Time of the earliest live event; requires !empty().
  SimTime next_time();

  // Pops and returns the earliest live event; requires !empty().
  struct Popped {
    SimTime t;
    EventFn fn;
  };
  Popped pop();

  // Number of live events; O(1).
  size_t live_count() const { return pool_->live_; }

  // Control-slot pool occupancy; telemetry reads this through the Simulator.
  EventPool::Stats pool_stats() const { return pool_->stats(); }

 private:
  struct Entry {
    SimTime t;
    uint64_t seq;
    EventFn fn;
    uint32_t slot;  // EventPool::kNoSlot for post()ed events
    uint64_t gen;   // pool generation at push time
    EventTag tag;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) {
        return a.t > b.t;
      }
      return a.seq > b.seq;
    }
  };

  // A pushed entry whose slot generation moved on is cancelled: the handle
  // released the slot before the event fired.
  bool stale(const Entry& entry) const {
    return entry.slot != EventPool::kNoSlot &&
           pool_->generation(entry.slot) != entry.gen;
  }

  static constexpr size_t kFarBuckets = 256;

  void push_entry(Entry entry);
  // Files an entry into near heap / far ring / overflow by its time.
  void route(Entry&& entry);
  // Ensures the near heap's top is the earliest live event, migrating far
  // buckets (and re-seeding the epoch from overflow) as needed. Requires a
  // live event to exist.
  void refill();
  // Spreads the overflow across a fresh ring epoch sized to its time span.
  void rebuild_epoch();
  // Live count hit zero: drop any leftover cancelled entries and reset the
  // epoch so the next batch starts clean.
  void reset_structures();

  std::vector<Entry> near_;     // min-heap over (t, seq); times < near_end_
  std::vector<std::vector<Entry>> far_ =
      std::vector<std::vector<Entry>>(kFarBuckets);  // calendar ring
  std::vector<Entry> overflow_;  // past the ring, or no epoch active
  SimTime near_end_ = 0.0;       // near/far routing boundary (strict <)
  SimTime far_base_ = 0.0;       // ring epoch start
  SimTime far_width_ = 0.0;      // per-bucket width of the current epoch
  size_t far_cursor_ = 0;        // next ring bucket to migrate
  bool epoch_active_ = false;
  uint64_t next_seq_ = 0;
  std::shared_ptr<EventPool> pool_ = std::make_shared<EventPool>();
};

}  // namespace coda::simcore
