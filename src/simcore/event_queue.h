// Cancellable priority event queue for the discrete-event simulator.
//
// Events are ordered by (time, insertion sequence): ties in simulated time
// resolve in schedule order, which keeps runs bit-for-bit deterministic.
// Cancellation is lazy — a cancelled entry stays in the heap and is skipped
// at pop time — so cancel is O(1) and pop stays O(log n) amortized.
//
// Two scheduling paths exist: push() hands back an EventHandle (one shared
// control block per event), while post() is for the common fire-and-forget
// case and allocates no per-event state beyond the functor itself.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/result.h"

namespace coda::simcore {

using SimTime = double;  // simulated seconds since experiment start

using EventFn = std::function<void()>;

// Identity of a scheduled event, carried alongside the callback so a live
// session can be snapshotted: callbacks cannot be serialized, but a
// (kind, a, b) triple plus the fire time is enough for the owning layer to
// re-create the exact closure on restore (the re-arm manifest). kind 0
// means untagged; see simcore/event_tags.h for the kind registry.
struct EventTag {
  uint32_t kind = 0;
  uint64_t a = 0;
  uint64_t b = 0;
};

// One live queue entry as seen by the snapshot subsystem: fire time, the
// insertion sequence (relative order under time ties), and the tag.
struct PendingEvent {
  SimTime t = 0.0;
  uint64_t seq = 0;
  EventTag tag;
};

// Handle to a scheduled event; lets callers cancel it before it fires.
// Copyable; all copies refer to the same scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  // True while the event is scheduled and not yet fired/cancelled.
  bool pending() const { return state_ && !*state_; }

  // Cancels the event if still pending; no-op otherwise.
  void cancel() {
    if (state_ && !*state_) {
      *state_ = true;
      if (live_) {
        --*live_;
      }
    }
  }

 private:
  friend class EventQueue;
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> state)
      : state_(std::move(state)) {}
  EventHandle(std::shared_ptr<bool> state, std::shared_ptr<size_t> live)
      : state_(std::move(state)), live_(std::move(live)) {}

  std::shared_ptr<bool> state_;  // true once cancelled or fired
  // Owning queue's live-event counter; decremented on a successful cancel.
  // Shared so a handle outliving its queue stays harmless.
  std::shared_ptr<size_t> live_;
};

class EventQueue {
 public:
  // Enqueues `fn` at simulated time `t`. Times may be scheduled in any order
  // but must not precede the last popped time (checked by the Simulator).
  EventHandle push(SimTime t, EventFn fn, EventTag tag = {});

  // Enqueues `fn` at `t` with no cancellation handle: the event will fire
  // exactly once. Avoids the per-event control-block allocation.
  void post(SimTime t, EventFn fn, EventTag tag = {});

  // Appends every live (non-cancelled) entry to `out` in dispatch order
  // ((t, seq) ascending). Fails with kFailedPrecondition when any live
  // entry is untagged — such an event cannot be re-armed from a snapshot,
  // and dropping it silently would corrupt the restored session.
  util::Status pending_events(std::vector<PendingEvent>* out) const;

  // True when no live (non-cancelled) events remain.
  bool empty() const { return *live_ == 0; }

  // Time of the earliest live event; requires !empty().
  SimTime next_time();

  // Pops and returns the earliest live event; requires !empty().
  struct Popped {
    SimTime t;
    EventFn fn;
  };
  Popped pop();

  // Number of live events; O(1).
  size_t live_count() const { return *live_; }

 private:
  struct Entry {
    SimTime t;
    uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;  // null for post()ed events
    EventTag tag;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) {
        return a.t > b.t;
      }
      return a.seq > b.seq;
    }
  };

  void drop_cancelled();
  void push_entry(Entry entry);

  std::vector<Entry> heap_;  // min-heap via std::push_heap/pop_heap + Later
  uint64_t next_seq_ = 0;
  std::shared_ptr<size_t> live_ = std::make_shared<size_t>(0);
};

}  // namespace coda::simcore
