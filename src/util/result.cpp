#include "util/result.h"

namespace coda::util {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kResourceExhausted:
      return "resource_exhausted";
    case ErrorCode::kFailedPrecondition:
      return "failed_precondition";
    case ErrorCode::kParseError:
      return "parse_error";
    case ErrorCode::kIoError:
      return "io_error";
    case ErrorCode::kPermissionDenied:
      return "permission_denied";
  }
  return "unknown";
}

}  // namespace coda::util
