// ASCII table renderer shared by all benchmark binaries so every
// table/figure reproduction prints in one consistent, diff-friendly format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace coda::util {

// Column-aligned table with a header row, optional title and footnotes.
//
//   Table t("Fig. 10 | GPU utilization");
//   t.set_header({"scheduler", "active rate", "utilization"});
//   t.add_row({"FIFO", "83.5%", "45.4%"});
//   t.print(std::cout);
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_title(std::string title) { title_ = std::move(title); }
  void set_header(std::vector<std::string> header);
  // Rows may be ragged; short rows are padded with empty cells.
  void add_row(std::vector<std::string> row);
  // Footnotes print below the table, prefixed with "note: ".
  void add_note(std::string note);

  size_t row_count() const { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace coda::util
