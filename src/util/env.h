// Strict environment-variable parsing shared by every knob that reads a
// number from the environment (CODA_JOBS, the CODA_SERVE_* service limits).
//
// The old pattern — std::atoi and silently falling back — turned typos like
// CODA_JOBS=abc or CODA_JOBS=0 into "use all cores" with no hint that the
// setting was ignored. These helpers demand the whole value parse, enforce a
// lower bound, and log one warning naming the variable and the rejected
// value before falling back.
#pragma once

#include <string>

#include "util/result.h"

namespace coda::util {

// Parses `text` as a base-10 integer. The entire string must be consumed
// (no trailing junk), the value must fit a long long, and it must be
// >= min_value. Fails with kParseError / kInvalidArgument otherwise.
Result<long long> parse_strict_int(const std::string& text,
                                   long long min_value);

// Same contract for doubles: whole-string parse, no overflow (ERANGE),
// value >= min_value. Accepts anything strtod does (including hexfloats).
Result<double> parse_strict_double(const std::string& text, double min_value);

// Full-u64-range strict parse (seeds, job ids). Rejects negative input
// up front — strtoull would silently wrap it.
Result<unsigned long long> parse_strict_u64(const std::string& text);

// Reads integer env var `name`. Returns `fallback` when the variable is
// unset or empty. When it is set but malformed or below `min_value`, logs a
// warning naming the variable and the rejected value, then returns
// `fallback`.
int env_int(const char* name, int fallback, int min_value = 1);

// Same contract for doubles (used by pacing/rate knobs).
double env_double(const char* name, double fallback, double min_value);

}  // namespace coda::util
