// Time-series container for metric samples (t, value) plus resampling and
// time-weighted aggregation helpers used by the evaluation harness.
#pragma once

#include <cstddef>
#include <vector>

namespace coda::util {

struct TimePoint {
  double t = 0.0;
  double value = 0.0;
};

// Append-only series of (time, value) samples with non-decreasing timestamps.
class TimeSeries {
 public:
  void add(double t, double value);

  // Pre-sizes the backing storage (amortizes away reallocation for series
  // whose sample count is known up front, e.g. fixed-period metric ticks).
  void reserve(size_t n) { points_.reserve(n); }

  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }
  const std::vector<TimePoint>& points() const { return points_; }
  const TimePoint& at(size_t i) const { return points_[i]; }

  // Plain (unweighted) mean of the sampled values.
  double mean() const;
  double min() const;
  double max() const;

  // Mean of values whose timestamps fall in [t_lo, t_hi).
  double mean_in_window(double t_lo, double t_hi) const;

  // Piecewise-constant (sample-and-hold) time-weighted average over
  // [t_lo, t_hi): each sample's value holds until the next sample. This is
  // the right average for utilization-style series where samples are state
  // snapshots rather than instantaneous measurements.
  double time_weighted_mean(double t_lo, double t_hi) const;

  // Down-samples to fixed buckets of width `bucket` covering [t_lo, t_hi),
  // averaging the samples inside each bucket (empty buckets carry the
  // previous bucket's value; leading empties carry the first sample). Used to
  // print compact trend tables for week-long runs.
  std::vector<TimePoint> resample(double t_lo, double t_hi,
                                  double bucket) const;

 private:
  std::vector<TimePoint> points_;
};

}  // namespace coda::util
