// Descriptive statistics used throughout the evaluation harness: running
// moments, percentiles, empirical CDFs, and fixed-bin histograms.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace coda::util {

// Streaming mean/variance/min/max (Welford). O(1) memory; suitable for
// metric accumulation over long simulations.
class RunningStats {
 public:
  void add(double x);
  // Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const;
  // Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample set with linear interpolation between order
// statistics. `q` in [0, 1]. Requires a non-empty vector; the input is copied
// and sorted internally.
double percentile(std::vector<double> values, double q);

// Computes several percentiles in one sort pass.
std::vector<double> percentiles(std::vector<double> values,
                                const std::vector<double>& qs);

// Empirical CDF over a sample set. Built once, then queried for
// P(X <= x) or inverted for quantiles; also exports plot-ready points.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  size_t count() const { return sorted_.size(); }
  // Fraction of samples <= x.
  double fraction_at_most(double x) const;
  // Smallest sample value v with fraction_at_most(v) >= q, q in (0, 1].
  double quantile(double q) const;

  // Evaluates the CDF at each of `xs`, returning matching fractions. Useful
  // for printing fixed-grid CDF tables in benches.
  std::vector<double> evaluate(const std::vector<double>& xs) const;

  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp into
// the first/last bin so mass is never dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void add(double x, double weight = 1.0);

  size_t bin_count() const { return counts_.size(); }
  double bin_lo(size_t i) const;
  double bin_hi(size_t i) const;
  double count(size_t i) const { return counts_[i]; }
  double total() const { return total_; }
  // Fraction of total mass in bin i (0 when empty).
  double fraction(size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace coda::util
