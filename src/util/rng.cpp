#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace coda::util {

uint64_t splitmix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

Rng Rng::fork(uint64_t tag) const {
  // Mix the parent state with the tag through SplitMix64 to derive a child
  // seed; distinct tags give unrelated streams.
  uint64_t sm = s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[2], 31) ^ s_[3] ^
                (tag * 0x2545F4914F6CDD1DULL + 0x9E3779B97F4A7C15ULL);
  return Rng(splitmix64(sm));
}

uint64_t Rng::next_u64() {
  // xoshiro256** core step.
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CODA_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  CODA_ASSERT(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw = next_u64();
  while (draw >= limit) {
    draw = next_u64();
  }
  return lo + static_cast<int64_t>(draw % span);
}

bool Rng::bernoulli(double p) {
  CODA_ASSERT(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

double Rng::exponential(double lambda) {
  CODA_ASSERT(lambda > 0.0);
  // -log(1-U) avoids log(0) since uniform() < 1.
  return -std::log1p(-uniform()) / lambda;
}

double Rng::normal(double mean, double stddev) {
  CODA_ASSERT(stddev >= 0.0);
  double u1 = uniform();
  while (u1 == 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::bounded_pareto(double lo, double hi, double alpha) {
  CODA_ASSERT(lo > 0.0 && hi > lo && alpha > 0.0);
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse-CDF of the bounded Pareto distribution.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

size_t Rng::weighted_index(const std::vector<double>& weights) {
  CODA_ASSERT(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CODA_ASSERT(w >= 0.0);
    total += w;
  }
  CODA_ASSERT(total > 0.0);
  double draw = uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // numerical edge: landed exactly on `total`
}

}  // namespace coda::util
