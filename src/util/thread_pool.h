// A tiny reusable fork-join pool for deterministic data-parallel phases.
//
// The pool spawns its workers once (construction) and reuses them for every
// run() call, so the per-batch cost is one mutex/condvar round-trip instead
// of thread creation. run(fn) invokes fn(worker_index) on `size()` logical
// workers: indices 1..size()-1 on the pooled threads and index 0 on the
// calling thread, which participates instead of idling. run() returns only
// after every worker finished, so callers may treat it as a barrier and
// freely read whatever the workers wrote.
//
// The pool makes no fairness or ordering promises between workers inside a
// batch; callers that need determinism must partition their work statically
// by worker index (the engine's parallel flush does exactly that).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coda::util {

class ThreadPool {
 public:
  // `threads` is the total logical worker count including the caller;
  // values < 1 are clamped to 1 (run() degenerates to a plain call).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total logical workers, including the calling thread.
  int size() const { return size_; }

  // Runs fn(worker) for worker in [0, size()); blocks until all complete.
  // Not reentrant and not thread-safe: one run() at a time, from one thread.
  void run(const std::function<void(int)>& fn);

 private:
  void worker_loop(int worker);

  int size_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals a new epoch (or shutdown)
  std::condition_variable done_cv_;   // signals batch completion
  const std::function<void(int)>* fn_ = nullptr;  // valid during an epoch
  uint64_t epoch_ = 0;      // bumped per run(); workers wait for a new value
  int outstanding_ = 0;     // pooled workers still inside the current batch
  bool shutdown_ = false;
};

}  // namespace coda::util
