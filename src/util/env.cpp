#include "util/env.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

#include "util/logging.h"
#include "util/strings.h"

namespace coda::util {

Result<long long> parse_strict_int(const std::string& text,
                                   long long min_value) {
  if (text.empty()) {
    return Error{ErrorCode::kParseError, "empty value"};
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) {
    return Error{ErrorCode::kParseError,
                 strfmt("'%s' is not an integer", text.c_str())};
  }
  if (errno == ERANGE) {
    return Error{ErrorCode::kParseError,
                 strfmt("'%s' is out of range", text.c_str())};
  }
  if (v < min_value) {
    return Error{ErrorCode::kInvalidArgument,
                 strfmt("%lld is below the minimum %lld", v, min_value)};
  }
  return v;
}

Result<double> parse_strict_double(const std::string& text,
                                   double min_value) {
  if (text.empty()) {
    return Error{ErrorCode::kParseError, "empty value"};
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return Error{ErrorCode::kParseError,
                 strfmt("'%s' is not a number", text.c_str())};
  }
  if (errno == ERANGE) {
    return Error{ErrorCode::kParseError,
                 strfmt("'%s' is out of range", text.c_str())};
  }
  if (v < min_value) {
    return Error{ErrorCode::kInvalidArgument,
                 strfmt("%g is below the minimum %g", v, min_value)};
  }
  return v;
}

Result<unsigned long long> parse_strict_u64(const std::string& text) {
  if (text.empty() || text[0] == '-') {
    return Error{ErrorCode::kParseError,
                 strfmt("'%s' is not an unsigned integer", text.c_str())};
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    return Error{ErrorCode::kParseError,
                 strfmt("'%s' is not an unsigned integer", text.c_str())};
  }
  return v;
}

int env_int(const char* name, int fallback, int min_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') {
    return fallback;
  }
  auto parsed = parse_strict_int(raw, min_value);
  if (!parsed.ok()) {
    CODA_LOG_WARN("ignoring %s=%s (%s); using %d", name, raw,
                  parsed.error().message.c_str(), fallback);
    return fallback;
  }
  const long long v = *parsed;
  if (v > std::numeric_limits<int>::max()) {
    CODA_LOG_WARN("ignoring %s=%s (does not fit an int); using %d", name, raw,
                  fallback);
    return fallback;
  }
  return static_cast<int>(v);
}

double env_double(const char* name, double fallback, double min_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') {
    return fallback;
  }
  auto parsed = parse_strict_double(raw, min_value);
  if (!parsed.ok()) {
    CODA_LOG_WARN("ignoring %s=%s (not a number >= %g); using %g", name, raw,
                  min_value, fallback);
    return fallback;
  }
  return *parsed;
}

}  // namespace coda::util
