// Minimal CSV reader/writer used for trace import/export. Only the subset we
// need: comma separator, no quoting (trace fields are numeric or simple
// identifiers), first row is a header.
#pragma once

#include <string>
#include <vector>

#include "util/result.h"

namespace coda::util {

struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  // Index of a header column; kNotFound error when absent.
  Result<size_t> column(const std::string& name) const;
};

// Parses CSV text. Fails with kParseError if any row has a different field
// count than the header.
Result<CsvDocument> parse_csv(const std::string& text);

// Reads and parses a CSV file; kIoError if unreadable.
Result<CsvDocument> read_csv_file(const std::string& path);

// Serializes a document (no escaping; callers must not embed commas).
std::string to_csv(const CsvDocument& doc);

// Writes a document to a file; kIoError on failure.
Status write_csv_file(const std::string& path, const CsvDocument& doc);

}  // namespace coda::util
