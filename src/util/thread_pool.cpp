#include "util/thread_pool.h"

namespace coda::util {

ThreadPool::ThreadPool(int threads) : size_(threads < 1 ? 1 : threads) {
  threads_.reserve(static_cast<size_t>(size_ - 1));
  for (int w = 1; w < size_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run(const std::function<void(int)>& fn) {
  if (size_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    outstanding_ = size_ - 1;
    ++epoch_;
  }
  work_cv_.notify_all();
  fn(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
  fn_ = nullptr;
}

void ThreadPool::worker_loop(int worker) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
      fn = fn_;
    }
    (*fn)(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace coda::util
