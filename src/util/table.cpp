#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace coda::util {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void Table::add_note(std::string note) { notes_.push_back(std::move(note)); }

void Table::print(std::ostream& os) const {
  // Compute per-column widths over header + all rows.
  size_t n_cols = header_.size();
  for (const auto& row : rows_) {
    n_cols = std::max(n_cols, row.size());
  }
  std::vector<size_t> widths(n_cols, 0);
  const auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) {
    widen(row);
  }

  size_t total = 0;
  for (size_t w : widths) {
    total += w + 3;
  }
  const std::string rule(total > 1 ? total - 1 : 1, '-');

  if (!title_.empty()) {
    os << "== " << title_ << " ==\n";
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < n_cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < n_cols) {
        os << " | ";
      }
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    os << rule << '\n';
  }
  for (const auto& row : rows_) {
    emit(row);
  }
  for (const auto& note : notes_) {
    os << "note: " << note << '\n';
  }
  os << '\n';
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace coda::util
