#include "util/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cmath>

#include "util/assert.h"

namespace coda::util {

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  CODA_ASSERT(needed >= 0);
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(const std::string& s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  size_t b = 0;
  size_t e = s.size();
  while (b < e && is_space(s[b])) {
    ++b;
  }
  while (e > b && is_space(s[e - 1])) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string format_duration(double seconds) {
  if (seconds < 0.0) {
    return "-" + format_duration(-seconds);
  }
  if (seconds < 60.0) {
    return strfmt("%.1fs", seconds);
  }
  if (seconds < 3600.0) {
    const int m = static_cast<int>(seconds / 60.0);
    const int s = static_cast<int>(std::fmod(seconds, 60.0));
    return strfmt("%dm%02ds", m, s);
  }
  const int h = static_cast<int>(seconds / 3600.0);
  const int m = static_cast<int>(std::fmod(seconds, 3600.0) / 60.0);
  return strfmt("%dh%02dm", h, m);
}

std::string format_percent(double fraction) {
  return strfmt("%.1f%%", fraction * 100.0);
}

}  // namespace coda::util
