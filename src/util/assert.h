// Lightweight contract-checking macros for the CODA library.
//
// Programming errors (violated invariants, broken preconditions) abort the
// process with a source location; they are never reported through return
// values. Recoverable conditions use util::Result<T> instead (see result.h).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace coda::util::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "CODA_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace coda::util::detail

// Always-on assertion: checks `expr` in every build type. The simulator is a
// research artifact; silent corruption is worse than an abort.
#define CODA_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::coda::util::detail::assert_fail(#expr, __FILE__, __LINE__, "");    \
    }                                                                      \
  } while (false)

// Assertion with an explanatory message shown on failure.
#define CODA_ASSERT_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::coda::util::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                      \
  } while (false)

// Marks unreachable control flow.
#define CODA_UNREACHABLE(msg)                                              \
  ::coda::util::detail::assert_fail("unreachable", __FILE__, __LINE__, (msg))
