#include "util/timeseries.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace coda::util {

void TimeSeries::add(double t, double value) {
  CODA_ASSERT_MSG(points_.empty() || t >= points_.back().t,
                  "TimeSeries timestamps must be non-decreasing");
  points_.push_back({t, value});
}

double TimeSeries::mean() const {
  if (points_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const auto& p : points_) {
    sum += p.value;
  }
  return sum / static_cast<double>(points_.size());
}

double TimeSeries::min() const {
  if (points_.empty()) {
    return 0.0;
  }
  double m = points_.front().value;
  for (const auto& p : points_) {
    m = std::min(m, p.value);
  }
  return m;
}

double TimeSeries::max() const {
  if (points_.empty()) {
    return 0.0;
  }
  double m = points_.front().value;
  for (const auto& p : points_) {
    m = std::max(m, p.value);
  }
  return m;
}

double TimeSeries::mean_in_window(double t_lo, double t_hi) const {
  double sum = 0.0;
  size_t n = 0;
  for (const auto& p : points_) {
    if (p.t >= t_lo && p.t < t_hi) {
      sum += p.value;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double TimeSeries::time_weighted_mean(double t_lo, double t_hi) const {
  CODA_ASSERT(t_hi > t_lo);
  if (points_.empty()) {
    return 0.0;
  }
  double integral = 0.0;
  double covered = 0.0;
  for (size_t i = 0; i < points_.size(); ++i) {
    const double seg_start = std::max(points_[i].t, t_lo);
    const double seg_end =
        std::min(i + 1 < points_.size() ? points_[i + 1].t : t_hi, t_hi);
    if (seg_end > seg_start) {
      integral += points_[i].value * (seg_end - seg_start);
      covered += seg_end - seg_start;
    }
  }
  return covered > 0.0 ? integral / covered : 0.0;
}

std::vector<TimePoint> TimeSeries::resample(double t_lo, double t_hi,
                                            double bucket) const {
  CODA_ASSERT(bucket > 0.0 && t_hi > t_lo);
  const size_t n_buckets =
      static_cast<size_t>(std::ceil((t_hi - t_lo) / bucket));
  std::vector<double> sums(n_buckets, 0.0);
  std::vector<size_t> counts(n_buckets, 0);
  for (const auto& p : points_) {
    if (p.t < t_lo || p.t >= t_hi) {
      continue;
    }
    const auto idx = static_cast<size_t>((p.t - t_lo) / bucket);
    sums[std::min(idx, n_buckets - 1)] += p.value;
    counts[std::min(idx, n_buckets - 1)] += 1;
  }
  std::vector<TimePoint> out;
  out.reserve(n_buckets);
  double carry = points_.empty() ? 0.0 : points_.front().value;
  for (size_t i = 0; i < n_buckets; ++i) {
    const double v =
        counts[i] > 0 ? sums[i] / static_cast<double>(counts[i]) : carry;
    carry = v;
    out.push_back({t_lo + bucket * (static_cast<double>(i) + 0.5), v});
  }
  return out;
}

}  // namespace coda::util
