// Deterministic pseudo-random number generation for the simulator.
//
// All stochastic behaviour in CODA experiments (trace synthesis, arrival
// jitter, runtime draws) flows through util::Rng so that a seed fully
// determines an experiment. The generator is xoshiro256** seeded via
// SplitMix64, which is fast, has a 2^256-1 period, and passes BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace coda::util {

// SplitMix64 step: used for seeding and as a cheap stateless mixer.
uint64_t splitmix64(uint64_t& state);

class Rng {
 public:
  // Seeds the generator deterministically from a single 64-bit seed.
  explicit Rng(uint64_t seed);

  // Derives an independent child stream. Children with distinct tags are
  // statistically independent of each other and of the parent; used to give
  // each workload component its own stream so adding draws to one component
  // does not perturb another.
  Rng fork(uint64_t tag) const;

  // Raw 64 random bits.
  uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t uniform_int(int64_t lo, int64_t hi);

  // Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  // Exponential with rate lambda (> 0); mean 1/lambda. Used for Poisson
  // inter-arrival gaps.
  double exponential(double lambda);

  // Standard normal via Box-Muller (no cached spare: keeps state minimal and
  // fork semantics simple).
  double normal(double mean, double stddev);

  // Log-normal: exp(N(mu, sigma)). Natural fit for job-runtime tails.
  double lognormal(double mu, double sigma);

  // Bounded Pareto on [lo, hi] with shape alpha (> 0): heavy-tailed draws for
  // CPU-job runtimes.
  double bounded_pareto(double lo, double hi, double alpha);

  // Samples an index in [0, weights.size()) with probability proportional to
  // weights[i]. Requires a non-empty vector with non-negative weights summing
  // to a positive value.
  size_t weighted_index(const std::vector<double>& weights);

  // Raw xoshiro256** state, for session snapshots. There is no hidden state
  // beyond these four words (normal() caches no spare), so save/restore of
  // the words resumes the stream bit-exactly.
  std::array<uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<uint64_t, 4>& state) {
    for (size_t i = 0; i < 4; ++i) {
      s_[i] = state[i];
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace coda::util
