#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace coda::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::mean() const { return count_ > 0 ? mean_ : 0.0; }

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ > 0 ? min_ : 0.0; }

double RunningStats::max() const { return count_ > 0 ? max_ : 0.0; }

double percentile(std::vector<double> values, double q) {
  CODA_ASSERT(!values.empty());
  CODA_ASSERT(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

std::vector<double> percentiles(std::vector<double> values,
                                const std::vector<double>& qs) {
  CODA_ASSERT(!values.empty());
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    CODA_ASSERT(q >= 0.0 && q <= 1.0);
    const double pos = q * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out.push_back(values[lo] + (values[hi] - values[lo]) * frac);
  }
  return out;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::fraction_at_most(double x) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  CODA_ASSERT(!sorted_.empty());
  CODA_ASSERT(q > 0.0 && q <= 1.0);
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank == 0 ? 0 : rank - 1, sorted_.size() - 1)];
}

std::vector<double> EmpiricalCdf::evaluate(
    const std::vector<double>& xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    out.push_back(fraction_at_most(x));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  CODA_ASSERT(hi > lo);
  CODA_ASSERT(bins > 0);
}

void Histogram::add(double x, double weight) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>(std::floor((x - lo_) / width));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  counts_[static_cast<size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(size_t i) const {
  CODA_ASSERT(i < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(size_t i) const {
  CODA_ASSERT(i < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

double Histogram::fraction(size_t i) const {
  CODA_ASSERT(i < counts_.size());
  return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

}  // namespace coda::util
