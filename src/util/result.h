// Minimal expected-style result type used for recoverable errors across
// module boundaries (GCC 12 does not ship std::expected).
//
// A Result<T> either holds a value of T or an Error{code, message}. Errors
// are for conditions a caller can reasonably handle (job not found, resource
// exhausted, malformed trace row); invariant violations use CODA_ASSERT.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/assert.h"

namespace coda::util {

// Broad error categories; the message carries the specifics.
enum class ErrorCode {
  kInvalidArgument,
  kNotFound,
  kResourceExhausted,
  kFailedPrecondition,
  kParseError,
  kIoError,
  kPermissionDenied,
};

// Human-readable name for an ErrorCode (stable, used in logs and tests).
const char* to_string(ErrorCode code);

struct Error {
  ErrorCode code = ErrorCode::kInvalidArgument;
  std::string message;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or an Error keeps call sites terse:
  //   return 42;                      (success)
  //   return Error{code, "..."};      (failure)
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  // Value access requires ok(); violating that is a programming error.
  const T& value() const& {
    CODA_ASSERT_MSG(ok(), error().message.c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    CODA_ASSERT_MSG(ok(), error().message.c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    CODA_ASSERT_MSG(ok(), error().message.c_str());
    return std::get<T>(std::move(data_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Error access requires !ok().
  const Error& error() const {
    CODA_ASSERT(!ok());
    return std::get<Error>(data_);
  }

  // Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

// Result<void> analogue for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    CODA_ASSERT(failed_);
    return error_;
  }

  static Status Ok() { return Status(); }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace coda::util
