// Small string/formatting helpers (GCC 12 lacks <format>; benches and logs
// use these printf-style wrappers instead).
#pragma once

#include <string>
#include <vector>

namespace coda::util {

// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> split(const std::string& s, char sep);

// Strips ASCII whitespace from both ends.
std::string trim(const std::string& s);

// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

// Renders seconds as a compact human-readable duration ("3.2s", "14m06s",
// "2h15m"); used in bench tables.
std::string format_duration(double seconds);

// Renders a fraction as a percentage with one decimal ("62.1%").
std::string format_percent(double fraction);

}  // namespace coda::util
