#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace coda::util {

Result<size_t> CsvDocument::column(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) {
      return i;
    }
  }
  return Error{ErrorCode::kNotFound, "no CSV column named '" + name + "'"};
}

Result<CsvDocument> parse_csv(const std::string& text) {
  CsvDocument doc;
  std::istringstream in(text);
  std::string line;
  bool first = true;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (trim(line).empty()) {
      continue;
    }
    auto fields = split(line, ',');
    if (first) {
      doc.header = std::move(fields);
      first = false;
      continue;
    }
    if (fields.size() != doc.header.size()) {
      return Error{ErrorCode::kParseError,
                   strfmt("CSV line %zu has %zu fields, header has %zu",
                          line_no, fields.size(), doc.header.size())};
    }
    doc.rows.push_back(std::move(fields));
  }
  if (first) {
    return Error{ErrorCode::kParseError, "CSV input is empty"};
  }
  return doc;
}

Result<CsvDocument> read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Error{ErrorCode::kIoError, "cannot open '" + path + "' for read"};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str());
}

std::string to_csv(const CsvDocument& doc) {
  std::string out = join(doc.header, ",") + "\n";
  for (const auto& row : doc.rows) {
    out += join(row, ",") + "\n";
  }
  return out;
}

Status write_csv_file(const std::string& path, const CsvDocument& doc) {
  std::ofstream out(path);
  if (!out) {
    return Error{ErrorCode::kIoError, "cannot open '" + path + "' for write"};
  }
  out << to_csv(doc);
  if (!out) {
    return Error{ErrorCode::kIoError, "write to '" + path + "' failed"};
  }
  return Status::Ok();
}

}  // namespace coda::util
