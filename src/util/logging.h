// Leveled logging with a process-wide minimum level. The simulator runs
// hundreds of thousands of scheduling decisions; logging defaults to kWarn
// so benches stay quiet, and tests/examples can raise verbosity.
#pragma once

#include <string>

#include "util/strings.h"

namespace coda::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Sets the process-wide minimum level (messages below it are dropped).
void set_log_level(LogLevel level);
LogLevel log_level();

// Emits one log line to stderr if `level` >= the process minimum.
void log_message(LogLevel level, const std::string& message);

}  // namespace coda::util

#define CODA_LOG_DEBUG(...)                        \
  ::coda::util::log_message(::coda::util::LogLevel::kDebug, \
                            ::coda::util::strfmt(__VA_ARGS__))
#define CODA_LOG_INFO(...)                        \
  ::coda::util::log_message(::coda::util::LogLevel::kInfo, \
                            ::coda::util::strfmt(__VA_ARGS__))
#define CODA_LOG_WARN(...)                        \
  ::coda::util::log_message(::coda::util::LogLevel::kWarn, \
                            ::coda::util::strfmt(__VA_ARGS__))
#define CODA_LOG_ERROR(...)                        \
  ::coda::util::log_message(::coda::util::LogLevel::kError, \
                            ::coda::util::strfmt(__VA_ARGS__))
