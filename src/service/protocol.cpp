#include "service/protocol.h"

#include <algorithm>

#include "util/env.h"
#include "util/strings.h"

namespace coda::service {

namespace {

// Splits "VERB rest-of-line" (rest may itself contain spaces: CSV rows).
void split_verb(const std::string& line, std::string* verb,
                std::string* rest) {
  const size_t sp = line.find(' ');
  if (sp == std::string::npos) {
    *verb = line;
    rest->clear();
  } else {
    *verb = line.substr(0, sp);
    *rest = line.substr(sp + 1);
  }
}

std::string sanitize(std::string s) {
  std::replace(s.begin(), s.end(), '\n', ' ');
  std::replace(s.begin(), s.end(), '\r', ' ');
  return s;
}

util::Result<util::ErrorCode> code_from_string(const std::string& name) {
  using util::ErrorCode;
  for (ErrorCode code :
       {ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
        ErrorCode::kResourceExhausted, ErrorCode::kFailedPrecondition,
        ErrorCode::kParseError, ErrorCode::kIoError}) {
    if (name == util::to_string(code)) {
      return code;
    }
  }
  return util::Error{ErrorCode::kParseError,
                     "unknown error code '" + name + "'"};
}

}  // namespace

const char* to_string(Verb verb) {
  switch (verb) {
    case Verb::kPing:
      return "PING";
    case Verb::kSubmit:
      return "SUBMIT";
    case Verb::kStatus:
      return "STATUS";
    case Verb::kCluster:
      return "CLUSTER";
    case Verb::kMetrics:
      return "METRICS";
    case Verb::kDrain:
      return "DRAIN";
    case Verb::kShutdown:
      return "SHUTDOWN";
  }
  return "?";
}

util::Result<Request> parse_request(const std::string& line) {
  std::string verb;
  std::string rest;
  split_verb(util::trim(line), &verb, &rest);
  Request req;
  if (verb == "PING" || verb == "CLUSTER" || verb == "METRICS" ||
      verb == "DRAIN" || verb == "SHUTDOWN") {
    if (!rest.empty()) {
      return util::Error{util::ErrorCode::kParseError,
                         verb + " takes no argument"};
    }
    req.verb = verb == "PING"      ? Verb::kPing
               : verb == "CLUSTER" ? Verb::kCluster
               : verb == "METRICS" ? Verb::kMetrics
               : verb == "DRAIN"   ? Verb::kDrain
                                   : Verb::kShutdown;
    return req;
  }
  if (verb == "SUBMIT") {
    if (rest.empty()) {
      return util::Error{util::ErrorCode::kParseError,
                         "SUBMIT needs a CSV job row"};
    }
    req.verb = Verb::kSubmit;
    req.arg = rest;
    return req;
  }
  if (verb == "STATUS") {
    auto id = util::parse_strict_int(util::trim(rest), 0);
    if (!id.ok()) {
      return util::Error{util::ErrorCode::kParseError,
                         "STATUS needs a job id: " + id.error().message};
    }
    req.verb = Verb::kStatus;
    req.arg = util::trim(rest);
    req.job_id = static_cast<uint64_t>(*id);
    return req;
  }
  return util::Error{util::ErrorCode::kParseError,
                     "unknown verb '" + verb + "'"};
}

std::string format_ok(const std::string& payload) {
  return payload.empty() ? "OK" : "OK " + sanitize(payload);
}

std::string format_err(util::ErrorCode code, const std::string& message) {
  return std::string("ERR ") + util::to_string(code) + " " +
         sanitize(message);
}

std::string format_busy(int retry_after_ms) {
  return util::strfmt("BUSY retry-after-ms=%d", retry_after_ms);
}

util::Result<Response> parse_response(const std::string& line) {
  std::string head;
  std::string rest;
  split_verb(line, &head, &rest);
  Response resp;
  if (head == "OK") {
    resp.kind = Response::Kind::kOk;
    resp.payload = rest;
    return resp;
  }
  if (head == "ERR") {
    std::string code_name;
    std::string message;
    split_verb(rest, &code_name, &message);
    auto code = code_from_string(code_name);
    if (!code.ok()) {
      return code.error();
    }
    resp.kind = Response::Kind::kErr;
    resp.code = *code;
    resp.payload = message;
    return resp;
  }
  if (head == "BUSY") {
    constexpr const char* kKey = "retry-after-ms=";
    if (rest.rfind(kKey, 0) != 0) {
      return util::Error{util::ErrorCode::kParseError,
                         "BUSY without retry-after-ms"};
    }
    auto ms = util::parse_strict_int(rest.substr(std::string(kKey).size()), 0);
    if (!ms.ok()) {
      return util::Error{util::ErrorCode::kParseError,
                         "bad retry-after-ms: " + ms.error().message};
    }
    resp.kind = Response::Kind::kBusy;
    resp.retry_after_ms = static_cast<int>(*ms);
    return resp;
  }
  return util::Error{util::ErrorCode::kParseError,
                     "unrecognized response '" + head + "'"};
}

bool LineReader::feed(const char* data, size_t n,
                      std::vector<std::string>* lines) {
  if (poisoned_) {
    return false;
  }
  size_t start = 0;
  for (size_t i = 0; i < n; ++i) {
    if (data[i] != '\n') {
      continue;
    }
    buffer_.append(data + start, i - start);
    start = i + 1;
    if (buffer_.size() > max_line_bytes_) {
      poisoned_ = true;
      return false;
    }
    // Tolerate CRLF clients.
    if (!buffer_.empty() && buffer_.back() == '\r') {
      buffer_.pop_back();
    }
    lines->push_back(std::move(buffer_));
    buffer_.clear();
  }
  buffer_.append(data + start, n - start);
  if (buffer_.size() > max_line_bytes_) {
    poisoned_ = true;
    return false;
  }
  return true;
}

}  // namespace coda::service
