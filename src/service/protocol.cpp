#include "service/protocol.h"

#include <algorithm>
#include <cctype>

#include "util/env.h"
#include "util/strings.h"

namespace coda::service {

namespace {

// Splits "VERB rest-of-line" (rest may itself contain spaces: CSV rows).
// Views into the caller's line — no copies on the per-command hot path.
void split_verb(std::string_view line, std::string_view* verb,
                std::string_view* rest) {
  const size_t sp = line.find(' ');
  if (sp == std::string_view::npos) {
    *verb = line;
    *rest = std::string_view();
  } else {
    *verb = line.substr(0, sp);
    *rest = line.substr(sp + 1);
  }
}

std::string_view trim_view(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

// Strict non-negative integer parse on a view (digits only, no sign, no
// surrounding junk); false on overflow or empty input.
bool parse_uint_view(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) {
    return false;
  }
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

std::string sanitize(std::string s) {
  std::replace(s.begin(), s.end(), '\n', ' ');
  std::replace(s.begin(), s.end(), '\r', ' ');
  return s;
}

util::Result<util::ErrorCode> code_from_string(const std::string& name) {
  using util::ErrorCode;
  for (ErrorCode code :
       {ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
        ErrorCode::kResourceExhausted, ErrorCode::kFailedPrecondition,
        ErrorCode::kParseError, ErrorCode::kIoError,
        ErrorCode::kPermissionDenied}) {
    if (name == util::to_string(code)) {
      return code;
    }
  }
  return util::Error{ErrorCode::kParseError,
                     "unknown error code '" + name + "'"};
}

}  // namespace

const char* to_string(Verb verb) {
  switch (verb) {
    case Verb::kPing:
      return "PING";
    case Verb::kSubmit:
      return "SUBMIT";
    case Verb::kStatus:
      return "STATUS";
    case Verb::kCluster:
      return "CLUSTER";
    case Verb::kMetrics:
      return "METRICS";
    case Verb::kDrain:
      return "DRAIN";
    case Verb::kShutdown:
      return "SHUTDOWN";
    case Verb::kAuth:
      return "AUTH";
    case Verb::kSnapshot:
      return "SNAPSHOT";
  }
  return "?";
}

util::Result<Request> parse_request(std::string_view line) {
  std::string_view verb;
  std::string_view rest;
  split_verb(trim_view(line), &verb, &rest);
  Request req;
  if (verb == "PING" || verb == "CLUSTER" || verb == "METRICS" ||
      verb == "SNAPSHOT" || verb == "DRAIN" || verb == "SHUTDOWN") {
    if (!rest.empty()) {
      return util::Error{util::ErrorCode::kParseError,
                         std::string(verb) + " takes no argument"};
    }
    req.verb = verb == "PING"       ? Verb::kPing
               : verb == "CLUSTER"  ? Verb::kCluster
               : verb == "METRICS"  ? Verb::kMetrics
               : verb == "SNAPSHOT" ? Verb::kSnapshot
               : verb == "DRAIN"    ? Verb::kDrain
                                    : Verb::kShutdown;
    return req;
  }
  if (verb == "AUTH") {
    const std::string_view token = trim_view(rest);
    if (token.empty()) {
      return util::Error{util::ErrorCode::kParseError, "AUTH needs a token"};
    }
    req.verb = Verb::kAuth;
    req.arg = std::string(token);
    return req;
  }
  if (verb == "SUBMIT") {
    if (rest.empty()) {
      return util::Error{util::ErrorCode::kParseError,
                         "SUBMIT needs a CSV job row"};
    }
    req.verb = Verb::kSubmit;
    req.arg = std::string(rest);
    return req;
  }
  if (verb == "STATUS") {
    const std::string_view id_view = trim_view(rest);
    uint64_t id = 0;
    if (!parse_uint_view(id_view, &id)) {
      return util::Error{util::ErrorCode::kParseError,
                         "STATUS needs a job id"};
    }
    req.verb = Verb::kStatus;
    req.arg = std::string(id_view);
    req.job_id = id;
    return req;
  }
  return util::Error{util::ErrorCode::kParseError,
                     "unknown verb '" + std::string(verb) + "'"};
}

util::Result<Envelope> parse_envelope(std::string_view line) {
  Envelope env;
  std::string_view rest = trim_view(line);
  bool saw_cid = false;
  bool saw_shard = false;
  while (true) {
    std::string_view head;
    std::string_view tail;
    split_verb(rest, &head, &tail);
    const bool is_cid = head == "CID";
    const bool is_shard = head == "SHARD";
    if (!is_cid && !is_shard) {
      break;
    }
    if ((is_cid && saw_cid) || (is_shard && saw_shard)) {
      return util::Error{util::ErrorCode::kParseError,
                         "duplicate " + std::string(head) + " prefix"};
    }
    std::string_view value;
    std::string_view after;
    split_verb(tail, &value, &after);
    uint64_t parsed = 0;
    if (!parse_uint_view(value, &parsed)) {
      return util::Error{util::ErrorCode::kParseError,
                         std::string(head) + " needs an unsigned integer"};
    }
    if (is_cid) {
      saw_cid = true;
      env.has_cid = true;
      env.cid = parsed;
    } else {
      saw_shard = true;
      if (parsed > 1'000'000) {
        return util::Error{util::ErrorCode::kParseError,
                           "SHARD index out of range"};
      }
      env.shard = static_cast<int>(parsed);
    }
    rest = after;
  }
  auto req = parse_request(rest);
  if (!req.ok()) {
    return req.error();
  }
  env.request = std::move(*req);
  return env;
}

uint64_t tenant_of_csv_row(std::string_view csv_row) {
  // trace_io column order: id,tenant,kind,...
  const size_t first = csv_row.find(',');
  if (first == std::string_view::npos) {
    return 0;
  }
  const size_t second = csv_row.find(',', first + 1);
  const std::string_view field = trim_view(
      csv_row.substr(first + 1, second == std::string_view::npos
                                    ? std::string_view::npos
                                    : second - first - 1));
  uint64_t tenant = 0;
  return parse_uint_view(field, &tenant) ? tenant : 0;
}

std::string format_ok(const std::string& payload) {
  return payload.empty() ? "OK" : "OK " + sanitize(payload);
}

std::string format_err(util::ErrorCode code, const std::string& message) {
  return std::string("ERR ") + util::to_string(code) + " " +
         sanitize(message);
}

std::string format_busy(int retry_after_ms) {
  return util::strfmt("BUSY retry-after-ms=%d", retry_after_ms);
}

util::Result<Response> parse_response(std::string_view line) {
  std::string_view head;
  std::string_view rest;
  split_verb(line, &head, &rest);
  Response resp;
  if (head == "OK") {
    resp.kind = Response::Kind::kOk;
    resp.payload = std::string(rest);
    return resp;
  }
  if (head == "ERR") {
    std::string_view code_name;
    std::string_view message;
    split_verb(rest, &code_name, &message);
    auto code = code_from_string(std::string(code_name));
    if (!code.ok()) {
      return code.error();
    }
    resp.kind = Response::Kind::kErr;
    resp.code = *code;
    resp.payload = std::string(message);
    return resp;
  }
  if (head == "BUSY") {
    constexpr std::string_view kKey = "retry-after-ms=";
    if (rest.substr(0, kKey.size()) != kKey) {
      return util::Error{util::ErrorCode::kParseError,
                         "BUSY without retry-after-ms"};
    }
    uint64_t ms = 0;
    if (!parse_uint_view(rest.substr(kKey.size()), &ms)) {
      return util::Error{util::ErrorCode::kParseError, "bad retry-after-ms"};
    }
    resp.kind = Response::Kind::kBusy;
    resp.retry_after_ms = static_cast<int>(ms);
    return resp;
  }
  return util::Error{util::ErrorCode::kParseError,
                     "unrecognized response '" + std::string(head) + "'"};
}

util::Result<TaggedResponse> parse_tagged_response(std::string_view line) {
  TaggedResponse tagged;
  std::string_view body = line;
  if (body.substr(0, 4) == "CID ") {
    std::string_view head;
    std::string_view rest;
    split_verb(body.substr(4), &head, &rest);
    uint64_t cid = 0;
    if (!parse_uint_view(head, &cid)) {
      return util::Error{util::ErrorCode::kParseError, "bad CID echo"};
    }
    tagged.has_cid = true;
    tagged.cid = cid;
    body = rest;
  }
  auto resp = parse_response(body);
  if (!resp.ok()) {
    return resp.error();
  }
  tagged.response = std::move(*resp);
  return tagged;
}

bool LineReader::feed(const char* data, size_t n,
                      std::vector<std::string>* lines) {
  return feed_views(data, n, [lines](std::string_view line) {
    lines->emplace_back(line);
  });
}

}  // namespace coda::service
