#include "service/restore.h"

#include <sys/stat.h>

#include <utility>

#include "util/strings.h"
#include "workload/trace_io.h"

namespace coda::service {

namespace {

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

util::Result<RestoredShard> restore_shard(const std::string& snapshot_path,
                                          const std::string& journal_path) {
  auto snap = state::load_snapshot_file(snapshot_path);
  if (!snap.ok()) {
    return snap.error();
  }
  auto embedded = parse_journal(snap->session_text);
  if (!embedded.ok()) {
    return util::Error{embedded.error().code,
                       "snapshot's embedded session: " +
                           embedded.error().message};
  }
  auto trace = journal_trace(*embedded);
  if (!trace.ok()) {
    return trace.error();
  }

  auto restored = state::restore_session(*snap, embedded->session.policy,
                                         embedded->session.config, *trace);
  if (!restored.ok()) {
    return restored.error();
  }

  RestoredShard out;
  out.scheduler = std::move(restored->scheduler);
  out.engine = std::move(restored->engine);
  out.session = std::move(embedded->session);
  out.session_text = std::move(snap->session_text);
  out.base_jobs = trace->size() - embedded->submissions.size();
  out.accepted_submits = snap->meta.accepted;
  out.next_auto_id = snap->meta.next_auto_id;
  out.snapshot_seq = snap->meta.seq;
  out.resume_vt = snap->meta.virtual_time;

  // The truncated journal's tail: submissions acknowledged after the
  // snapshot. Missing file = nothing was accepted after the capture.
  if (!journal_path.empty() && file_exists(journal_path)) {
    auto tail = load_journal(journal_path);
    if (!tail.ok()) {
      return tail.error();
    }
    for (const JournalEntry& entry : tail->submissions) {
      if (entry.virtual_time <= out.resume_vt) {
        return util::Error{
            util::ErrorCode::kFailedPrecondition,
            util::strfmt("journal entry for job %llu at vt %g predates the "
                         "snapshot (vt %g): journal and snapshot are from "
                         "different truncation epochs",
                         static_cast<unsigned long long>(entry.job_id),
                         entry.virtual_time, out.resume_vt)};
      }
      auto spec = workload::job_from_csv_row(entry.csv_row);
      if (!spec.ok()) {
        return spec.error();
      }
      spec->id = entry.job_id;
      spec->submit_time = entry.virtual_time;
      out.engine->inject(*spec, entry.virtual_time);
      out.session_text += format_submit_entry(entry.virtual_time,
                                              entry.job_id, entry.csv_row);
      ++out.accepted_submits;
      if (entry.job_id >= out.next_auto_id) {
        out.next_auto_id = entry.job_id + 1;
      }
    }
  }
  return out;
}

util::Result<sim::ExperimentReport> replay_from_snapshot(
    const std::string& snapshot_path, const std::string& journal_path) {
  auto shard = restore_shard(snapshot_path, journal_path);
  if (!shard.ok()) {
    return shard.error();
  }
  const double horizon = shard->session.config.horizon_s;
  shard->engine->run_until(horizon);
  shard->engine->drain(horizon + shard->session.config.drain_slack_s);
  return sim::build_report(shard->session.policy, *shard->engine,
                           shard->base_jobs + shard->accepted_submits,
                           horizon, shard->scheduler.coda);
}

}  // namespace coda::service
