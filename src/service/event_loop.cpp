#include "service/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#define CODA_SERVICE_HAVE_EPOLL 1
#else
#define CODA_SERVICE_HAVE_EPOLL 0
#endif

namespace coda::service {

namespace {

bool force_poll_backend() {
  const char* v = std::getenv("CODA_SERVE_FORCE_POLL");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

#if CODA_SERVICE_HAVE_EPOLL
uint32_t epoll_mask(bool want_read, bool want_write) {
  uint32_t events = 0;
  if (want_read) {
    events |= EPOLLIN;
  }
  if (want_write) {
    events |= EPOLLOUT;
  }
  return events;
}
#endif

short poll_mask(bool want_read, bool want_write) {
  short events = 0;
  if (want_read) {
    events |= POLLIN;
  }
  if (want_write) {
    events |= POLLOUT;
  }
  return events;
}

}  // namespace

Poller::Poller() {
#if CODA_SERVICE_HAVE_EPOLL
  if (!force_poll_backend()) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  }
#endif
  backend_ok_ = true;  // the poll backend needs no setup
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
  }
}

bool Poller::add(int fd, uint64_t tag, bool want_read, bool want_write) {
#if CODA_SERVICE_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.u64 = tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return false;
    }
  }
#endif
  // The registry is kept in both backends: epoll needs it only for del()
  // symmetry, but keeping it uniform makes mod() failures diagnosable.
  watches_.push_back({fd, tag, want_read, want_write});
  return true;
}

bool Poller::mod(int fd, uint64_t tag, bool want_read, bool want_write) {
  for (auto& w : watches_) {
    if (w.fd == fd) {
      w.tag = tag;
      w.want_read = want_read;
      w.want_write = want_write;
#if CODA_SERVICE_HAVE_EPOLL
      if (epoll_fd_ >= 0) {
        epoll_event ev{};
        ev.events = epoll_mask(want_read, want_write);
        ev.data.u64 = tag;
        return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
      }
#endif
      return true;
    }
  }
  return false;
}

void Poller::del(int fd) {
#if CODA_SERVICE_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  for (size_t i = 0; i < watches_.size(); ++i) {
    if (watches_[i].fd == fd) {
      watches_[i] = watches_.back();
      watches_.pop_back();
      return;
    }
  }
}

int Poller::wait(int timeout_ms, std::vector<PollEvent>* out) {
  out->clear();
#if CODA_SERVICE_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    // scratch_ doubles as raw storage for epoll_event (trivially copyable,
    // no alignment stricter than uint64_t on the platforms we build for).
    const size_t cap = watches_.empty() ? 16 : watches_.size() + 1;
    const size_t words =
        (cap * sizeof(epoll_event) + sizeof(uint64_t) - 1) / sizeof(uint64_t);
    scratch_.resize(words);
    auto* events = reinterpret_cast<epoll_event*>(scratch_.data());
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, events, static_cast<int>(cap), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      return -1;
    }
    out->reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      PollEvent ev;
      ev.tag = events[i].data.u64;
      ev.readable = (events[i].events & EPOLLIN) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.hangup = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
      out->push_back(ev);
    }
    return n;
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(watches_.size());
  for (const auto& w : watches_) {
    pfds.push_back({w.fd, poll_mask(w.want_read, w.want_write), 0});
  }
  int n;
  do {
    n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    return -1;
  }
  for (size_t i = 0; i < pfds.size(); ++i) {
    if (pfds[i].revents == 0) {
      continue;
    }
    PollEvent ev;
    ev.tag = watches_[i].tag;
    ev.readable = (pfds[i].revents & POLLIN) != 0;
    ev.writable = (pfds[i].revents & POLLOUT) != 0;
    ev.hangup = (pfds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
    out->push_back(ev);
  }
  return static_cast<int>(out->size());
}

WakeupFd::WakeupFd() {
#if CODA_SERVICE_HAVE_EPOLL
  const int efd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (efd >= 0) {
    read_fd_ = efd;
    write_fd_ = efd;
    return;
  }
#endif
  int fds[2];
  if (::pipe(fds) == 0) {
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
    read_fd_ = fds[0];
    write_fd_ = fds[1];
  }
}

WakeupFd::~WakeupFd() {
  if (read_fd_ >= 0) {
    ::close(read_fd_);
  }
  if (write_fd_ >= 0 && write_fd_ != read_fd_) {
    ::close(write_fd_);
  }
}

void WakeupFd::notify() {
  if (write_fd_ < 0) {
    return;
  }
  // One syscall per doorbell ring, not per notify: once armed, further
  // notifies are already covered by the pending readable event.
  if (armed_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  const uint64_t one = 1;
  ssize_t rc;
  do {
    rc = ::write(write_fd_, &one, sizeof(one));
  } while (rc < 0 && errno == EINTR);
  // EAGAIN means the counter/pipe is already pending a wakeup — coalesced.
}

void WakeupFd::drain() {
  if (read_fd_ < 0) {
    return;
  }
  // Disarm before reading: a notify() that lands mid-drain re-arms and
  // writes again, so its wakeup is never lost.
  armed_.store(false, std::memory_order_release);
  uint64_t buf[64];
  while (true) {
    const ssize_t n = ::read(read_fd_, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0 || static_cast<size_t>(n) < sizeof(buf)) {
      return;
    }
  }
}

}  // namespace coda::service
