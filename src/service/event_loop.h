// Readiness polling for the codad I/O thread.
//
// `Poller` wraps epoll (Linux) with a poll(2) fallback selected at runtime
// (non-Linux builds, epoll_create failure, or CODA_SERVE_FORCE_POLL=1 for
// exercising the fallback on Linux). Both backends are level-triggered: a
// socket with unread bytes or unflushed output keeps reporting ready, so
// the event loop never needs to remember partial progress across waits.
//
// `WakeupFd` is the cross-thread doorbell: engine threads notify() it after
// posting completions and the I/O thread holds its fd in the poller, so a
// blocked epoll_wait returns as soon as any shard finishes work. eventfd on
// Linux, a nonblocking self-pipe elsewhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace coda::service {

struct PollEvent {
  uint64_t tag = 0;       // caller-chosen id registered with add()
  bool readable = false;
  bool writable = false;
  bool hangup = false;    // EPOLLHUP/EPOLLERR — drain then drop the fd
};

class Poller {
 public:
  Poller();
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  bool ok() const { return backend_ok_; }
  bool using_epoll() const { return epoll_fd_ >= 0; }

  bool add(int fd, uint64_t tag, bool want_read, bool want_write);
  bool mod(int fd, uint64_t tag, bool want_read, bool want_write);
  void del(int fd);

  // Blocks up to timeout_ms (0 polls, negative blocks indefinitely) and
  // fills `out` (cleared first). Returns the event count, 0 on timeout,
  // -1 on a non-EINTR error.
  int wait(int timeout_ms, std::vector<PollEvent>* out);

 private:
  struct Watch {
    int fd = -1;
    uint64_t tag = 0;
    bool want_read = false;
    bool want_write = false;
  };

  int epoll_fd_ = -1;        // < 0 selects the poll(2) backend
  bool backend_ok_ = false;
  std::vector<Watch> watches_;      // poll backend registry
  std::vector<uint64_t> scratch_;   // epoll_event storage (opaque here)
};

class WakeupFd {
 public:
  WakeupFd();
  ~WakeupFd();
  WakeupFd(const WakeupFd&) = delete;
  WakeupFd& operator=(const WakeupFd&) = delete;

  bool ok() const { return read_fd_ >= 0; }
  int fd() const { return read_fd_; }

  // Wakes a poller blocked on fd(). Safe from any thread; coalesces.
  void notify();
  // Consumes pending notifications so level-triggered polling settles.
  void drain();

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;  // == read_fd_ for eventfd
  std::atomic<bool> armed_{false};  // wakeup already pending in the fd
};

}  // namespace coda::service
