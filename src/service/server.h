// codad's serving core: a live cluster controller around the deterministic
// sim::ClusterEngine, sharded N ways behind one epoll event loop.
//
// Threading model (one rule: the I/O thread never touches a simulator):
//   - one I/O thread runs a level-triggered epoll (poll fallback) loop over
//     the nonblocking listener, a wakeup fd, and every connection. It
//     accepts, frames lines, parses request envelopes, routes each command
//     to its shard's bounded mailbox, and flushes per-connection write
//     buffers. Clients may pipeline arbitrarily many requests; replies
//     without a CID are reordered back into request order, replies with a
//     CID are written the moment their shard completes them.
//   - N engine threads (--shards / CODA_SERVE_SHARDS), each owning an
//     independent ClusterEngine, mailbox, and journal. Between event
//     batches a shard drains its mailbox, answers queries from engine
//     state, and stages accepted SUBMITs; at the end of the batch the
//     journal is flushed ONCE (group commit), the staged jobs are
//     injected, and only then are the replies handed to the I/O thread —
//     an acknowledged SUBMIT is always durable.
//   - backpressure is explicit: a full shard mailbox is answered
//     `BUSY retry-after-ms=...` by the I/O thread alone, and a connection
//     whose write buffer outgrows its cap is dropped.
//
// Determinism (per shard): accepted submissions are injected at
// nextafter(now()) — an instant strictly after every event the shard's
// engine has dispatched and strictly before every event still queued — so
// an offline replay that pre-posts the journaled arrivals dispatches the
// exact same event sequence. DRAIN finishes each shard through the same
// run_until(horizon) + drain(horizon + slack) path as sim::run_experiment
// and builds the final report with the shared sim::build_report, which is
// why every shard's journal replay reproduces that shard's live report
// byte-for-byte.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "service/event_loop.h"
#include "service/journal.h"
#include "service/mailbox.h"
#include "service/protocol.h"
#include "sim/experiment.h"
#include "util/result.h"

namespace coda::service {

// Per-process service limits, overridable via strict CODA_SERVE_* env knobs
// (shared parser with CODA_JOBS; malformed values warn and fall back).
struct ServiceLimits {
  int admission_capacity = 1024;  // CODA_SERVE_QUEUE: per-shard mailbox bound
  int max_connections = 64;       // CODA_SERVE_MAX_CONNS
  int max_line_bytes = 1 << 16;   // CODA_SERVE_MAX_LINE: framing limit
  int retry_after_ms = 100;       // advertised in BUSY responses
  int shards = 1;                 // CODA_SERVE_SHARDS: engine shard count

  static ServiceLimits from_env();
};

struct ServerConfig {
  SessionSpec session;          // policy + experiment config + base trace
  // Journal path stem: with 1 shard the journal lands at journal_path and
  // the report at report_path (default journal_path + ".report"); with N>1
  // shards, shard k journals to journal_path + ".shard<k>" and reports to
  // the matching ".shard<k>.report". Empty disables journaling.
  std::string journal_path;
  std::string report_path;      // single-shard only; empty: journal + ".report"
  // Listener: set exactly one. TCP binds 127.0.0.1 (port 0 = ephemeral,
  // resolved port available after start()).
  std::string unix_socket_path;
  int tcp_port = -1;
  // Shared secret (--auth-token / CODA_SERVE_TOKEN). When non-empty, a
  // connection must AUTH before anything but PING; GET /metrics answers
  // 401. Empty disables authentication.
  std::string auth_token;
  // --journal-fsync: group commits fsync (not just fflush) before SUBMITs
  // are acknowledged. Snapshot files are always fsynced before the journal
  // is truncated, independent of this knob.
  bool journal_fsync = false;
  // --restore: each shard looks for the latest `<journal>.SNAP.<seq>` next
  // to its journal and resumes from it (snapshot + journal tail) instead of
  // starting at virtual time zero. Without a snapshot the shard starts
  // fresh. Requires journaling.
  bool restore = false;
  // Automatic snapshot + journal compaction, checked between event batches
  // on each shard (0 disables a trigger; both off by default). A snapshot
  // is taken exactly like the SNAPSHOT verb — capture, fsync, truncate the
  // journal — once this much simulated time passed since the last one
  // (--snapshot-every-sim-hours / CODA_SERVE_SNAP_SIM_HOURS) or the
  // journal file outgrew this many MB (--snapshot-journal-mb /
  // CODA_SERVE_SNAP_JOURNAL_MB). Requires journaling; a failed attempt
  // disables further automatic snapshots on that shard (manual SNAPSHOT
  // still works).
  double snapshot_every_sim_hours = 0.0;
  double snapshot_journal_mb = 0.0;
  ServiceLimits limits;
};

// Monotonic serving-layer counters, visible in METRICS and GET /metrics.
// `conn_rejected` is the accept-queue overflow signal: connections the
// daemon turned away with BUSY because max_connections was reached.
struct ServeCounters {
  uint64_t conn_accepted = 0;
  uint64_t conn_rejected = 0;   // over max_connections -> BUSY + close
  uint64_t conn_dropped = 0;    // protocol violation / write-buffer overflow
  uint64_t accept_errors = 0;   // accept(2) failures (EMFILE etc.)
  uint64_t commands_routed = 0; // commands handed to shard mailboxes
  uint64_t busy_rejections = 0; // commands bounced BUSY off a full mailbox
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the listener, spawns the engine shards and the I/O thread. The
  // session's horizon must be resolved (> 0).
  util::Status start();

  // Blocks until the server has shut down (SHUTDOWN verb or
  // request_shutdown) and joins every thread.
  void wait();

  // Initiates a graceful stop from outside the protocol (signal handlers
  // route here): drains every shard if needed, writes the final reports,
  // closes every connection. Thread-safe, idempotent, non-blocking.
  void request_shutdown();

  // True once every shard has drained.
  bool drained() const;
  // Serialized final report of shard `shard` (sim::serialize_report form);
  // empty before that shard drains. Byte-identical to what
  // replay_journal_file() of that shard's journal serializes to.
  std::string report_text(int shard = 0) const;
  int shard_count() const { return static_cast<int>(shards_.size()); }
  // Resolved TCP port (after start(), TCP listeners only).
  int tcp_port() const { return resolved_port_; }
  ServeCounters counters() const;

 private:
  struct Broadcast;
  struct Command;
  struct Completion;
  struct Conn;
  struct EngineState;
  struct Shard;

  void io_main();
  void engine_main(Shard& shard);
  void handle_command(Shard& shard, EngineState& es, Command& cmd,
                      std::vector<Completion>* done);
  void commit_staged(EngineState& es, std::vector<Completion>* done);
  // Captures a snapshot and truncates the shard's journal; returns the OK
  // payload text (seq, path, vt, sizes). Shared by the SNAPSHOT verb and
  // the automatic between-batches trigger.
  util::Result<std::string> take_snapshot(Shard& shard, EngineState& es);
  void maybe_auto_snapshot(Shard& shard, EngineState& es);
  void finish_broadcast(Command& cmd, std::string part,
                        std::vector<Completion>* done);
  void do_drain(Shard& shard, EngineState& es);
  void post_completions(std::vector<Completion>* done);

  // ---- I/O-thread helpers (only ever called from io_main) ----
  void accept_ready();
  void flush_route_pending();
  void conn_readable(Conn& conn);
  void conn_writable(Conn& conn);
  void process_line(Conn& conn, std::string_view line);
  void route_command(Conn& conn, Envelope env);
  void local_reply(Conn& conn, uint64_t ordered_seq, bool has_cid,
                   uint64_t cid, std::string line);
  void deliver(Conn& conn, const Completion& completion);
  void flush_ordered(Conn& conn);
  void enqueue_line(Conn& conn, bool has_cid, uint64_t cid,
                    const std::string& line);
  void try_flush(Conn& conn);
  void update_write_interest(Conn& conn);
  void drop_conn(uint64_t conn_id);
  void maybe_finish_conn(Conn& conn);
  void handle_http_line(Conn& conn, std::string_view line);
  void final_flush_and_close();

  ServerConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  int listen_fd_ = -1;
  int resolved_port_ = -1;
  std::thread io_thread_;

  // Engine -> I/O completion channel (unbounded on purpose: every entry
  // answers a command already admitted through a bounded mailbox).
  std::mutex completion_mu_;
  std::vector<Completion> completions_;
  WakeupFd wakeup_;
  std::atomic<int> engines_running_{0};

  std::atomic<bool> stop_{false};
  mutable std::mutex report_mu_;
  std::vector<std::string> report_texts_;   // indexed by shard

  mutable std::mutex counter_mu_;
  ServeCounters counters_;

  // I/O-thread-only state (no locks): live connections by id.
  struct IoState;
  std::unique_ptr<IoState> io_;

  bool started_ = false;
};

}  // namespace coda::service
