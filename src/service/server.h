// codad's serving core: a live cluster controller around the deterministic
// sim::ClusterEngine.
//
// Threading model (one rule: I/O threads never touch the simulator):
//   - one engine thread owns the ClusterEngine and paces virtual time
//     against the wall clock (speedup = sim-seconds per wall-second;
//     <= 0 runs as fast as possible). Between event batches it drains the
//     command mailbox: queries answer from engine state, accepted SUBMITs
//     are injected at the current virtual instant and appended to the
//     journal.
//   - one acceptor thread plus one thread per connection parse the line
//     protocol and push commands into the bounded mailbox; each command
//     carries a reply slot its connection blocks on. A full mailbox is
//     answered `BUSY retry-after-ms=...` by the connection thread alone —
//     explicit admission control with no unbounded buffering.
//
// Determinism: accepted submissions are injected at
// nextafter(sim.now()) — an instant strictly after every event the engine
// has dispatched and strictly before every event still queued — so an
// offline replay that pre-posts the journaled arrivals dispatches the
// exact same event sequence. DRAIN finishes the run through the same
// run_until(horizon) + drain(horizon + slack) path as sim::run_experiment
// and builds the final report with the shared sim::build_report, which is
// why the journal replay reproduces the live report byte-for-byte.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/journal.h"
#include "service/mailbox.h"
#include "service/protocol.h"
#include "sim/experiment.h"
#include "util/result.h"

namespace coda::service {

// Per-process service limits, overridable via strict CODA_SERVE_* env knobs
// (shared parser with CODA_JOBS; malformed values warn and fall back).
struct ServiceLimits {
  int admission_capacity = 1024;  // CODA_SERVE_QUEUE: mailbox bound
  int max_connections = 64;       // CODA_SERVE_MAX_CONNS
  int max_line_bytes = 1 << 16;   // CODA_SERVE_MAX_LINE: framing limit
  int retry_after_ms = 100;       // advertised in BUSY responses

  static ServiceLimits from_env();
};

struct ServerConfig {
  SessionSpec session;          // policy + experiment config + base trace
  std::string journal_path;     // empty disables journaling
  std::string report_path;      // empty: journal_path + ".report"
  // Listener: set exactly one. TCP binds 127.0.0.1 (port 0 = ephemeral,
  // resolved port available after start()).
  std::string unix_socket_path;
  int tcp_port = -1;
  ServiceLimits limits;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the listener, spawns the engine and acceptor threads. The
  // session's horizon must be resolved (> 0).
  util::Status start();

  // Blocks until the server has shut down (SHUTDOWN verb or
  // request_shutdown) and joins every thread.
  void wait();

  // Initiates a graceful stop from outside the protocol (signal handlers
  // route here): drains the engine if needed, writes the final report,
  // closes every connection. Thread-safe, idempotent, non-blocking.
  void request_shutdown();

  bool drained() const;
  // Serialized final report (sim::serialize_report form); empty before the
  // session drains. Byte-identical to what replay_journal_file() of this
  // session's journal serializes to.
  std::string report_text() const;
  // Resolved TCP port (after start(), TCP listeners only).
  int tcp_port() const { return resolved_port_; }

 private:
  struct ReplySlot;
  struct Command;
  struct EngineState;

  // Per-connection bookkeeping, guarded by conn_mu_. fd is tombstoned to
  // -1 before the connection thread closes it so close_all_connections()
  // never shutdown()s a recycled descriptor; done flips last so the
  // acceptor can reap (join + erase) the finished thread.
  struct ConnState {
    int fd = -1;
    bool done = false;
  };
  struct Connection {
    std::thread thread;
    std::shared_ptr<ConnState> state;
  };

  void engine_main();
  void acceptor_main();
  void connection_main(int fd, std::shared_ptr<ConnState> state);
  void handle_command(EngineState& es, Command& cmd);
  void do_drain(EngineState& es);
  void close_all_connections();
  void reap_connections();

  ServerConfig config_;
  std::unique_ptr<Mailbox<Command>> mailbox_;

  int listen_fd_ = -1;
  int resolved_port_ = -1;
  std::thread engine_thread_;
  std::thread acceptor_thread_;
  std::mutex conn_mu_;
  std::vector<Connection> connections_;
  std::atomic<int> active_connections_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  mutable std::mutex report_mu_;
  std::string report_text_;
  std::string drain_summary_;
  bool started_ = false;
};

}  // namespace coda::service
