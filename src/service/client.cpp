#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "util/stats.h"
#include "util/strings.h"

namespace coda::service {

namespace {

bool write_all(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

util::Error sys_error(const char* what) {
  return util::Error{util::ErrorCode::kIoError,
                     util::strfmt("%s: %s", what, std::strerror(errno))};
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      reader_(std::move(other.reader_)),
      pending_lines_(std::move(other.pending_lines_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    pending_lines_ = std::move(other.pending_lines_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Result<Client> Client::connect(const Endpoint& endpoint) {
  Client client;
  if (!endpoint.unix_socket_path.empty()) {
    client.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (client.fd_ < 0) {
      return sys_error("socket");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return util::Error{util::ErrorCode::kInvalidArgument,
                         "unix socket path too long"};
    }
    std::strncpy(addr.sun_path, endpoint.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(client.fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return sys_error(endpoint.unix_socket_path.c_str());
    }
    return client;
  }
  if (endpoint.tcp_port >= 0) {
    client.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (client.fd_ < 0) {
      return sys_error("socket");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(endpoint.tcp_port));
    if (::connect(client.fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return sys_error("connect");
    }
    // Command lines are tiny; Nagle would serialize the benchmark on RTT.
    const int one = 1;
    ::setsockopt(client.fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return client;
  }
  return util::Error{util::ErrorCode::kInvalidArgument,
                     "endpoint has neither a unix path nor a tcp port"};
}

util::Result<Response> Client::call(const std::string& request_line) {
  if (fd_ < 0) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       "client is not connected"};
  }
  const std::string framed = request_line + "\n";
  if (!write_all(fd_, framed.data(), framed.size())) {
    return sys_error("send");
  }
  // Responses arrive strictly in request order; pending_lines_ holds any
  // lines a previous oversized read already framed.
  while (pending_lines_.empty()) {
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return util::Error{util::ErrorCode::kIoError,
                         "server closed the connection"};
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return sys_error("recv");
    }
    if (!reader_.feed(buf, static_cast<size_t>(n), &pending_lines_)) {
      return util::Error{util::ErrorCode::kParseError,
                         "response line too long"};
    }
  }
  std::string line = std::move(pending_lines_.front());
  pending_lines_.erase(pending_lines_.begin());
  return parse_response(line);
}

util::Status Client::send(const std::string& request_line) {
  if (fd_ < 0) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       "client is not connected"};
  }
  const std::string framed = request_line + "\n";
  if (!write_all(fd_, framed.data(), framed.size())) {
    return sys_error("send");
  }
  return util::Status::Ok();
}

util::Status Client::send_framed(const std::string& data) {
  if (fd_ < 0) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       "client is not connected"};
  }
  if (!write_all(fd_, data.data(), data.size())) {
    return sys_error("send");
  }
  return util::Status::Ok();
}

util::Result<TaggedResponse> Client::recv_tagged() {
  if (fd_ < 0) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       "client is not connected"};
  }
  while (pending_lines_.empty()) {
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return util::Error{util::ErrorCode::kIoError,
                         "server closed the connection"};
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return sys_error("recv");
    }
    if (!reader_.feed(buf, static_cast<size_t>(n), &pending_lines_)) {
      return util::Error{util::ErrorCode::kParseError,
                         "response line too long"};
    }
  }
  std::string line = std::move(pending_lines_.front());
  pending_lines_.erase(pending_lines_.begin());
  return parse_tagged_response(line);
}

util::Result<Response> Client::status(uint64_t job_id) {
  return call(util::strfmt("STATUS %llu",
                           static_cast<unsigned long long>(job_id)));
}

// ------------------------------------------------------------- bench mode

util::Result<BenchReport> run_bench(const Endpoint& endpoint,
                                    const BenchOptions& options) {
  if (options.connections < 1 || options.duration_s <= 0.0) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "bench needs >= 1 connection and a positive duration"};
  }
  if (options.pipeline < 1) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "bench pipeline depth must be >= 1"};
  }
  struct WorkerStats {
    size_t sent = 0;
    size_t ok = 0;
    size_t busy = 0;
    size_t errors = 0;
    std::vector<double> latencies_ms;
    // Parallel per-shard latency buckets (index = SHARD prefix used);
    // everything lands in bucket 0 when no prefixes are in play.
    std::vector<std::vector<double>> shard_latencies_ms;
    std::vector<size_t> shard_ok;
  };
  const int n_workers = options.connections;
  const int n_buckets = std::max(1, options.shards);
  std::vector<WorkerStats> stats(static_cast<size_t>(n_workers));
  std::vector<Client> clients;
  clients.reserve(static_cast<size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) {
    auto client = Client::connect(endpoint);
    if (!client.ok()) {
      return client.error();
    }
    if (!options.auth_token.empty()) {
      auto authed = client->auth(options.auth_token);
      if (!authed.ok()) {
        return authed.error();
      }
      if (!authed->ok()) {
        return util::Error{authed->code, "AUTH refused: " + authed->payload};
      }
    }
    clients.push_back(std::move(*client));
  }

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto stop_at =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_s));
  const double per_conn_rate =
      options.rate > 0.0 ? options.rate / n_workers : 0.0;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n_workers));
  for (int w = 0; w < n_workers; ++w) {
    threads.emplace_back([&, w] {
      WorkerStats& s = stats[static_cast<size_t>(w)];
      Client& client = clients[static_cast<size_t>(w)];
      s.latencies_ms.reserve(1 << 16);
      s.shard_latencies_ms.resize(static_cast<size_t>(n_buckets));
      s.shard_ok.assign(static_cast<size_t>(n_buckets), 0);

      // Every request carries a CID, so replies may complete out of order
      // across shards; `inflight` pairs each reply back to its send time
      // and shard bucket.
      struct Outstanding {
        Clock::time_point t0;
        int bucket = 0;
      };
      std::unordered_map<uint64_t, Outstanding> inflight;
      inflight.reserve(static_cast<size_t>(options.pipeline) * 2);
      uint64_t next_cid = 1;
      auto next_send = Clock::now();
      bool dead = false;
      std::string batch;
      batch.reserve(static_cast<size_t>(options.pipeline) *
                    (options.request_line.size() + 48));
      std::vector<std::pair<uint64_t, int>> batched;  // cid, bucket
      batched.reserve(static_cast<size_t>(options.pipeline));

      while (!dead) {
        const bool timed_out = Clock::now() >= stop_at;
        if (timed_out && inflight.empty()) {
          break;
        }
        // Build the whole window top-up as one buffer and write it with a
        // single send(2): at depth 16 that is one syscall instead of 16.
        batch.clear();
        batched.clear();
        while (!timed_out && inflight.size() + batched.size() <
                                 static_cast<size_t>(options.pipeline)) {
          if (per_conn_rate > 0.0) {
            if (inflight.empty() && batched.empty()) {
              std::this_thread::sleep_until(next_send);
            } else if (Clock::now() < next_send) {
              break;  // not due yet; reap a reply instead of spinning
            }
            next_send += std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(1.0 / per_conn_rate));
          }
          const uint64_t cid = next_cid++;
          const int bucket =
              options.shards > 0
                  ? static_cast<int>(cid % static_cast<uint64_t>(n_buckets))
                  : 0;
          char prefix[48];
          int n = std::snprintf(prefix, sizeof(prefix), "CID %llu ",
                                static_cast<unsigned long long>(cid));
          batch.append(prefix, static_cast<size_t>(n));
          if (options.shards > 0) {
            n = std::snprintf(prefix, sizeof(prefix), "SHARD %d ", bucket);
            batch.append(prefix, static_cast<size_t>(n));
          }
          batch += options.request_line;
          batch += '\n';
          batched.emplace_back(cid, bucket);
        }
        if (!batched.empty()) {
          // One timestamp for the window: the commands hit the wire
          // together, so they share their send instant.
          const auto t0 = Clock::now();
          if (!client.send_framed(batch).ok()) {
            ++s.errors;
            dead = true;
            break;
          }
          for (const auto& [cid, bucket] : batched) {
            inflight.emplace(cid, Outstanding{t0, bucket});
            ++s.sent;
          }
        }
        if (inflight.empty()) {
          continue;
        }
        // ...then reap one completion.
        auto tagged = client.recv_tagged();
        const auto t1 = Clock::now();
        if (!tagged.ok()) {
          ++s.errors;
          break;  // dead socket; abandon this worker's window
        }
        auto it = tagged->has_cid ? inflight.find(tagged->cid)
                                  : inflight.end();
        if (it == inflight.end()) {
          ++s.errors;  // reply we cannot pair (protocol violation)
          continue;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - it->second.t0)
                .count();
        const size_t bucket = static_cast<size_t>(it->second.bucket);
        inflight.erase(it);
        s.latencies_ms.push_back(ms);
        s.shard_latencies_ms[bucket].push_back(ms);
        switch (tagged->response.kind) {
          case Response::Kind::kOk:
            ++s.ok;
            ++s.shard_ok[bucket];
            break;
          case Response::Kind::kBusy:
            ++s.busy;
            break;
          case Response::Kind::kErr:
            ++s.errors;
            break;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  BenchReport report;
  std::vector<double> all_latencies;
  std::vector<std::vector<double>> bucket_latencies(
      static_cast<size_t>(n_buckets));
  std::vector<size_t> bucket_ok(static_cast<size_t>(n_buckets), 0);
  for (const auto& s : stats) {
    report.sent += s.sent;
    report.ok += s.ok;
    report.busy += s.busy;
    report.errors += s.errors;
    all_latencies.insert(all_latencies.end(), s.latencies_ms.begin(),
                         s.latencies_ms.end());
    for (size_t b = 0; b < s.shard_latencies_ms.size(); ++b) {
      bucket_latencies[b].insert(bucket_latencies[b].end(),
                                 s.shard_latencies_ms[b].begin(),
                                 s.shard_latencies_ms[b].end());
      bucket_ok[b] += s.shard_ok[b];
    }
  }
  report.wall_s = wall;
  report.throughput = wall > 0.0 ? static_cast<double>(report.ok) / wall : 0.0;
  if (!all_latencies.empty()) {
    auto ps = util::percentiles(all_latencies, {0.5, 0.99, 1.0});
    report.p50_ms = ps[0];
    report.p99_ms = ps[1];
    report.max_ms = ps[2];
  }
  if (options.shards > 0) {
    report.shard_stats.resize(static_cast<size_t>(n_buckets));
    for (size_t b = 0; b < static_cast<size_t>(n_buckets); ++b) {
      auto& out = report.shard_stats[b];
      out.ok = bucket_ok[b];
      out.throughput =
          wall > 0.0 ? static_cast<double>(bucket_ok[b]) / wall : 0.0;
      if (!bucket_latencies[b].empty()) {
        auto ps = util::percentiles(bucket_latencies[b], {0.5, 0.99});
        out.p50_ms = ps[0];
        out.p99_ms = ps[1];
      }
    }
  }
  return report;
}

}  // namespace coda::service
