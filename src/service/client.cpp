#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/stats.h"
#include "util/strings.h"

namespace coda::service {

namespace {

bool write_all(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

util::Error sys_error(const char* what) {
  return util::Error{util::ErrorCode::kIoError,
                     util::strfmt("%s: %s", what, std::strerror(errno))};
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      reader_(std::move(other.reader_)),
      pending_lines_(std::move(other.pending_lines_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    pending_lines_ = std::move(other.pending_lines_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Result<Client> Client::connect(const Endpoint& endpoint) {
  Client client;
  if (!endpoint.unix_socket_path.empty()) {
    client.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (client.fd_ < 0) {
      return sys_error("socket");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return util::Error{util::ErrorCode::kInvalidArgument,
                         "unix socket path too long"};
    }
    std::strncpy(addr.sun_path, endpoint.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(client.fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return sys_error(endpoint.unix_socket_path.c_str());
    }
    return client;
  }
  if (endpoint.tcp_port >= 0) {
    client.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (client.fd_ < 0) {
      return sys_error("socket");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(endpoint.tcp_port));
    if (::connect(client.fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return sys_error("connect");
    }
    // Command lines are tiny; Nagle would serialize the benchmark on RTT.
    const int one = 1;
    ::setsockopt(client.fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return client;
  }
  return util::Error{util::ErrorCode::kInvalidArgument,
                     "endpoint has neither a unix path nor a tcp port"};
}

util::Result<Response> Client::call(const std::string& request_line) {
  if (fd_ < 0) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       "client is not connected"};
  }
  const std::string framed = request_line + "\n";
  if (!write_all(fd_, framed.data(), framed.size())) {
    return sys_error("send");
  }
  // Responses arrive strictly in request order; pending_lines_ holds any
  // lines a previous oversized read already framed.
  while (pending_lines_.empty()) {
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return util::Error{util::ErrorCode::kIoError,
                         "server closed the connection"};
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return sys_error("recv");
    }
    if (!reader_.feed(buf, static_cast<size_t>(n), &pending_lines_)) {
      return util::Error{util::ErrorCode::kParseError,
                         "response line too long"};
    }
  }
  std::string line = std::move(pending_lines_.front());
  pending_lines_.erase(pending_lines_.begin());
  return parse_response(line);
}

util::Result<Response> Client::status(uint64_t job_id) {
  return call(util::strfmt("STATUS %llu",
                           static_cast<unsigned long long>(job_id)));
}

// ------------------------------------------------------------- bench mode

util::Result<BenchReport> run_bench(const Endpoint& endpoint,
                                    const BenchOptions& options) {
  if (options.connections < 1 || options.duration_s <= 0.0) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "bench needs >= 1 connection and a positive duration"};
  }
  struct WorkerStats {
    size_t sent = 0;
    size_t ok = 0;
    size_t busy = 0;
    size_t errors = 0;
    std::vector<double> latencies_ms;
  };
  const int n_workers = options.connections;
  std::vector<WorkerStats> stats(static_cast<size_t>(n_workers));
  std::vector<Client> clients;
  clients.reserve(static_cast<size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) {
    auto client = Client::connect(endpoint);
    if (!client.ok()) {
      return client.error();
    }
    clients.push_back(std::move(*client));
  }

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto stop_at =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_s));
  const double per_conn_rate =
      options.rate > 0.0 ? options.rate / n_workers : 0.0;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n_workers));
  for (int w = 0; w < n_workers; ++w) {
    threads.emplace_back([&, w] {
      WorkerStats& s = stats[static_cast<size_t>(w)];
      Client& client = clients[static_cast<size_t>(w)];
      s.latencies_ms.reserve(1 << 16);
      auto next_send = Clock::now();
      while (Clock::now() < stop_at) {
        if (per_conn_rate > 0.0) {
          std::this_thread::sleep_until(next_send);
          next_send += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(1.0 / per_conn_rate));
        }
        const auto t0 = Clock::now();
        auto resp = client.call(options.request_line);
        const auto t1 = Clock::now();
        ++s.sent;
        if (!resp.ok()) {
          ++s.errors;
          break;  // dead socket; stop this worker
        }
        s.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        switch (resp->kind) {
          case Response::Kind::kOk:
            ++s.ok;
            break;
          case Response::Kind::kBusy:
            ++s.busy;
            break;
          case Response::Kind::kErr:
            ++s.errors;
            break;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  BenchReport report;
  std::vector<double> all_latencies;
  for (const auto& s : stats) {
    report.sent += s.sent;
    report.ok += s.ok;
    report.busy += s.busy;
    report.errors += s.errors;
    all_latencies.insert(all_latencies.end(), s.latencies_ms.begin(),
                         s.latencies_ms.end());
  }
  report.wall_s = wall;
  report.throughput = wall > 0.0 ? static_cast<double>(report.ok) / wall : 0.0;
  if (!all_latencies.empty()) {
    auto ps = util::percentiles(all_latencies, {0.5, 0.99, 1.0});
    report.p50_ms = ps[0];
    report.p99_ms = ps[1];
    report.max_ms = ps[2];
  }
  return report;
}

}  // namespace coda::service
