// Client side of the codad wire protocol: blocking request/response over a
// Unix-domain or localhost TCP socket, plus the load-generator used by
// `coda_ctl bench`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "util/result.h"

namespace coda::service {

// Listener address: exactly one of the two forms.
struct Endpoint {
  std::string unix_socket_path;  // non-empty selects AF_UNIX
  int tcp_port = -1;             // >= 0 selects 127.0.0.1:<port>
};

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static util::Result<Client> connect(const Endpoint& endpoint);

  bool connected() const { return fd_ >= 0; }
  void close();

  // Sends one request line and blocks for the matching response line.
  util::Result<Response> call(const std::string& request_line);

  // ---- pipelined API ----
  // send() writes a framed request line without waiting; recv_tagged()
  // blocks for the next response line and returns it with its CID echo (if
  // any). A caller that tags requests with distinct `CID <n>` prefixes can
  // keep many in flight and match replies as they complete, including
  // out-of-order completions across shards. Do not interleave with call(),
  // which assumes strict request-order replies.
  util::Status send(const std::string& request_line);
  // Writes pre-framed bytes (caller supplies the '\n' after every line) in
  // one syscall — the load generator batches a whole pipeline window this
  // way instead of paying a send(2) per command.
  util::Status send_framed(const std::string& data);
  util::Result<TaggedResponse> recv_tagged();

  // Convenience verbs.
  util::Result<Response> ping() { return call("PING"); }
  util::Result<Response> auth(const std::string& token) {
    return call("AUTH " + token);
  }
  util::Result<Response> snapshot() { return call("SNAPSHOT"); }
  util::Result<Response> submit_row(const std::string& csv_row) {
    return call("SUBMIT " + csv_row);
  }
  util::Result<Response> status(uint64_t job_id);
  util::Result<Response> cluster() { return call("CLUSTER"); }
  util::Result<Response> metrics() { return call("METRICS"); }
  util::Result<Response> drain() { return call("DRAIN"); }
  util::Result<Response> shutdown() { return call("SHUTDOWN"); }

 private:
  int fd_ = -1;
  LineReader reader_{1 << 20};
  std::vector<std::string> pending_lines_;
};

// ---- load generator (`coda_ctl bench`) ----

struct BenchOptions {
  int connections = 4;
  double duration_s = 5.0;
  // Target aggregate command rate (commands/sec) across all connections;
  // <= 0 runs closed-loop (each connection fires as fast as replies come
  // back).
  double rate = 0.0;
  // Request line every worker repeats; PING measures the pure
  // mailbox/engine round trip.
  std::string request_line = "PING";
  // Outstanding CID-tagged requests per connection. 1 = classic
  // request/response; larger depths pipeline and measure the event loop
  // rather than the RTT.
  int pipeline = 1;
  // > 0 spreads requests round-robin over `SHARD 0..shards-1` prefixes and
  // reports a per-shard breakdown; 0 leaves routing to the server.
  int shards = 0;
  // Sent as `AUTH <token>` on every connection before the workload starts
  // (daemons with --auth-token). Empty sends nothing.
  std::string auth_token;
};

struct BenchReport {
  size_t sent = 0;
  size_t ok = 0;
  size_t busy = 0;
  size_t errors = 0;
  double wall_s = 0.0;
  double throughput = 0.0;  // ok responses per second
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;

  // Per-shard breakdown when BenchOptions::shards > 0 (index = shard).
  struct ShardStats {
    size_t ok = 0;
    double throughput = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
  };
  std::vector<ShardStats> shard_stats;
};

// Opens `connections` sockets and hammers the daemon for `duration_s`,
// measuring per-command round-trip latency. BUSY responses count separately
// (they are the backpressure path, not an error).
util::Result<BenchReport> run_bench(const Endpoint& endpoint,
                                    const BenchOptions& options);

}  // namespace coda::service
