// Wire protocol between codad and its clients: a line-delimited text
// protocol over a Unix-domain or localhost TCP socket.
//
// Grammar (one request line -> one response line, '\n'-terminated):
//
//   line     := [envelope] request
//   envelope := ("CID" SP uint | "SHARD" SP uint)*   ; each at most once
//   request  := "PING"
//             | "AUTH" SP token              ; shared-secret authentication
//             | "SUBMIT" SP csv-row          ; trace_io column order
//             | "STATUS" SP job-id
//             | "CLUSTER"
//             | "METRICS"
//             | "SNAPSHOT"
//             | "DRAIN"
//             | "SHUTDOWN"
//   response := ["CID" SP uint SP] body       ; CID echoed iff sent
//   body     := "OK" [SP payload]
//             | "ERR" SP code SP message     ; code = util::ErrorCode name
//             | "BUSY" SP "retry-after-ms=" int
//
// Pipelining: a client may write any number of request lines before
// reading replies. Replies to requests *without* a CID come back in
// request order (the server reorders across shards); replies to requests
// *with* a CID are written as soon as their shard completes them — out of
// order across shards — and the echoed CID pairs them with their request.
//
// Authentication: when the daemon is started with a shared secret
// (--auth-token / CODA_SERVE_TOKEN), a connection must send `AUTH <token>`
// before anything but PING; every other verb on an unauthenticated
// connection answers `ERR PermissionDenied ...`. AUTH is handled entirely
// on the I/O thread (it is connection state, not engine state). Without a
// configured secret AUTH is an accepted no-op.
//
// Snapshots: `SNAPSHOT` asks the target shard to capture a deterministic
// state snapshot (state/snapshot.h) between dispatches, write it durably
// next to the journal, and truncate the journal back to its header. The
// reply reports `seq=<n> path=<file> vt=<hexfloat> bytes=<n>`.
//
// Sharding: `SHARD <k>` routes the request to engine shard k (each shard
// is an independent ClusterEngine with its own journal). Without the
// prefix, SUBMIT routes by the row's tenant id (tenant mod shards) and
// every other verb goes to shard 0; DRAIN and SHUTDOWN without a prefix
// broadcast to every shard and answer once all shards finish.
//
// Payloads are space-separated `key=value` pairs. Messages never contain
// newlines (sanitized on format). Framing is byte-stream tolerant: the
// LineReader accumulates partial reads, yields complete lines, and rejects
// lines longer than the per-connection limit.
//
// The same listener also answers `GET /metrics` as minimal HTTP/1.0 with
// an OpenMetrics body (per-shard labels); see server.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace coda::service {

enum class Verb {
  kPing = 0,
  kSubmit,
  kStatus,
  kCluster,
  kMetrics,
  kDrain,
  kShutdown,
  kAuth,      // connection-level; never routed to a shard
  kSnapshot,
};

const char* to_string(Verb verb);

struct Request {
  Verb verb = Verb::kPing;
  // SUBMIT: the raw CSV job row (kept verbatim — it is what the journal
  // records and what the offline replay re-parses, so the daemon never
  // re-serializes it). STATUS: the decimal job id. AUTH: the token.
  std::string arg;
  uint64_t job_id = 0;  // parsed STATUS argument
};

// Parses one request line (no trailing newline). Fails with kParseError on
// unknown verbs, missing or malformed arguments. Takes a view: the hot
// serving path parses without copying the line.
util::Result<Request> parse_request(std::string_view line);

// A request plus its routing/correlation envelope.
struct Envelope {
  Request request;
  int shard = -1;        // explicit SHARD prefix; -1 = unrouted (default)
  bool has_cid = false;
  uint64_t cid = 0;      // valid iff has_cid
};

// Parses the optional `CID n` / `SHARD k` prefixes (any order, each at
// most once) followed by the request itself.
util::Result<Envelope> parse_envelope(std::string_view line);

// Extracts the tenant id from a SUBMIT csv row without a full JobSpec
// parse (column 2 of the trace_io layout). Returns 0 on malformed rows —
// the full parser rejects those later; routing just needs determinism.
uint64_t tenant_of_csv_row(std::string_view csv_row);

// ---- responses ----

struct Response {
  enum class Kind { kOk = 0, kErr, kBusy };
  Kind kind = Kind::kOk;
  std::string payload;             // OK payload or ERR message
  util::ErrorCode code = util::ErrorCode::kInvalidArgument;  // ERR only
  int retry_after_ms = 0;          // BUSY only

  bool ok() const { return kind == Kind::kOk; }
};

// Formatting: one line, no trailing newline, embedded newlines replaced by
// spaces so a malicious message cannot forge extra protocol lines.
std::string format_ok(const std::string& payload);
std::string format_err(util::ErrorCode code, const std::string& message);
std::string format_busy(int retry_after_ms);

// Parses a response line (client side).
util::Result<Response> parse_response(std::string_view line);

// A response plus the correlation id the server echoed (if any).
struct TaggedResponse {
  Response response;
  bool has_cid = false;
  uint64_t cid = 0;
};

// Parses a response line that may carry a `CID n` prefix.
util::Result<TaggedResponse> parse_tagged_response(std::string_view line);

// ---- framing ----

// Incremental line framer. feed() accepts arbitrary byte chunks (partial
// lines, many lines at once — whatever the socket read returned) and
// appends every completed line (without its '\n') to `lines`. A line longer
// than `max_line_bytes` poisons the reader: feed() returns false from then
// on and the connection should be dropped.
class LineReader {
 public:
  explicit LineReader(size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  bool feed(const char* data, size_t n, std::vector<std::string>* lines);

  // Zero-copy variant used by the server's hot read path: `fn` is invoked
  // with a view of every completed line. A line contained entirely in
  // `data` is viewed in place — no allocation; only a line spanning reads
  // touches the carry buffer. Views are valid just for the callback.
  template <typename Fn>
  bool feed_views(const char* data, size_t n, Fn&& fn) {
    if (poisoned_) {
      return false;
    }
    size_t start = 0;
    for (size_t i = 0; i < n; ++i) {
      if (data[i] != '\n') {
        continue;
      }
      std::string_view line;
      if (buffer_.empty()) {
        line = std::string_view(data + start, i - start);
      } else {
        buffer_.append(data + start, i - start);
        line = buffer_;
      }
      if (line.size() > max_line_bytes_) {
        poisoned_ = true;
        return false;
      }
      start = i + 1;
      // Tolerate CRLF clients.
      if (!line.empty() && line.back() == '\r') {
        line.remove_suffix(1);
      }
      fn(line);
      buffer_.clear();
    }
    buffer_.append(data + start, n - start);
    if (buffer_.size() > max_line_bytes_) {
      poisoned_ = true;
      return false;
    }
    return true;
  }

  bool poisoned() const { return poisoned_; }
  // Bytes buffered waiting for their terminating newline.
  size_t pending_bytes() const { return buffer_.size(); }

 private:
  size_t max_line_bytes_;  // non-const so LineReader stays movable
  std::string buffer_;
  bool poisoned_ = false;
};

}  // namespace coda::service
