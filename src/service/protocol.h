// Wire protocol between codad and its clients: a line-delimited text
// protocol over a Unix-domain or localhost TCP socket.
//
// Grammar (one request line -> one response line, '\n'-terminated):
//
//   request  := "PING"
//             | "SUBMIT" SP csv-row          ; trace_io column order
//             | "STATUS" SP job-id
//             | "CLUSTER"
//             | "METRICS"
//             | "DRAIN"
//             | "SHUTDOWN"
//   response := "OK" [SP payload]
//             | "ERR" SP code SP message     ; code = util::ErrorCode name
//             | "BUSY" SP "retry-after-ms=" int
//
// Payloads are space-separated `key=value` pairs. Messages never contain
// newlines (sanitized on format). Framing is byte-stream tolerant: the
// LineReader accumulates partial reads, yields complete lines, and rejects
// lines longer than the per-connection limit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace coda::service {

enum class Verb {
  kPing = 0,
  kSubmit,
  kStatus,
  kCluster,
  kMetrics,
  kDrain,
  kShutdown,
};

const char* to_string(Verb verb);

struct Request {
  Verb verb = Verb::kPing;
  // SUBMIT: the raw CSV job row (kept verbatim — it is what the journal
  // records and what the offline replay re-parses, so the daemon never
  // re-serializes it). STATUS: the decimal job id.
  std::string arg;
  uint64_t job_id = 0;  // parsed STATUS argument
};

// Parses one request line (no trailing newline). Fails with kParseError on
// unknown verbs, missing or malformed arguments.
util::Result<Request> parse_request(const std::string& line);

// ---- responses ----

struct Response {
  enum class Kind { kOk = 0, kErr, kBusy };
  Kind kind = Kind::kOk;
  std::string payload;             // OK payload or ERR message
  util::ErrorCode code = util::ErrorCode::kInvalidArgument;  // ERR only
  int retry_after_ms = 0;          // BUSY only

  bool ok() const { return kind == Kind::kOk; }
};

// Formatting: one line, no trailing newline, embedded newlines replaced by
// spaces so a malicious message cannot forge extra protocol lines.
std::string format_ok(const std::string& payload);
std::string format_err(util::ErrorCode code, const std::string& message);
std::string format_busy(int retry_after_ms);

// Parses a response line (client side).
util::Result<Response> parse_response(const std::string& line);

// ---- framing ----

// Incremental line framer. feed() accepts arbitrary byte chunks (partial
// lines, many lines at once — whatever the socket read returned) and
// appends every completed line (without its '\n') to `lines`. A line longer
// than `max_line_bytes` poisons the reader: feed() returns false from then
// on and the connection should be dropped.
class LineReader {
 public:
  explicit LineReader(size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  bool feed(const char* data, size_t n, std::vector<std::string>* lines);
  bool poisoned() const { return poisoned_; }
  // Bytes buffered waiting for their terminating newline.
  size_t pending_bytes() const { return buffer_.size(); }

 private:
  size_t max_line_bytes_;  // non-const so LineReader stays movable
  std::string buffer_;
  bool poisoned_ = false;
};

}  // namespace coda::service
