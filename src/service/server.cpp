#include "service/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <unordered_map>

#include "service/restore.h"
#include "sim/report_io.h"
#include "state/snapshot.h"
#include "telemetry/metrics.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/strings.h"
#include "workload/trace_io.h"

namespace coda::service {

namespace {

using SteadyClock = std::chrono::steady_clock;

// Poller tags for the two non-connection fds; connection ids start above.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kFirstConnId = 2;

// A connection whose peer stops reading accumulates replies here; past this
// the connection is dropped rather than buffering without bound.
constexpr size_t kMaxOutbufBytes = 8u << 20;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Best-effort blocking-ish write used only for pre-connection rejections
// (the socket buffer of a fresh connection always has room for one line).
void write_line_best_effort(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  (void)::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL);
}

std::string http_response(int status, const char* reason,
                          const std::string& content_type,
                          const std::string& body) {
  std::string resp = util::strfmt("HTTP/1.0 %d %s\r\n", status, reason);
  if (!content_type.empty()) {
    resp += "Content-Type: " + content_type + "\r\n";
  }
  resp += util::strfmt("Content-Length: %zu\r\n", body.size());
  resp += "Connection: close\r\n\r\n";
  resp += body;
  return resp;
}

constexpr const char* kOpenMetricsType =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

}  // namespace

ServiceLimits ServiceLimits::from_env() {
  ServiceLimits limits;
  limits.admission_capacity =
      util::env_int("CODA_SERVE_QUEUE", limits.admission_capacity, 1);
  limits.max_connections =
      util::env_int("CODA_SERVE_MAX_CONNS", limits.max_connections, 1);
  limits.max_line_bytes =
      util::env_int("CODA_SERVE_MAX_LINE", limits.max_line_bytes, 256);
  limits.retry_after_ms =
      util::env_int("CODA_SERVE_RETRY_MS", limits.retry_after_ms, 1);
  limits.shards = util::env_int("CODA_SERVE_SHARDS", limits.shards, 1);
  return limits;
}

// Fan-out state for DRAIN/SHUTDOWN/GET-metrics without a SHARD prefix: one
// slot per shard, combined into a single reply by whoever finishes last.
struct Server::Broadcast {
  enum class Kind { kDrain = 0, kShutdown, kHttpMetrics };
  Kind kind = Kind::kDrain;
  std::mutex mu;
  std::vector<std::string> parts;
  size_t remaining = 0;
};

struct Server::Command {
  Request request;
  uint64_t conn_id = 0;
  // Reply-order slot for requests without a CID (see Conn). Unused (0) for
  // CID-tagged requests, which are delivered on completion.
  uint64_t ordered_seq = 0;
  bool has_cid = false;
  uint64_t cid = 0;
  bool http = false;  // reply is an HTTP body, not a protocol line
  int shard = 0;
  std::shared_ptr<Broadcast> broadcast;  // null = unicast
};

struct Server::Completion {
  uint64_t conn_id = 0;
  uint64_t ordered_seq = 0;
  bool has_cid = false;
  uint64_t cid = 0;
  bool http = false;
  std::string line;  // protocol line, or the HTTP body when http
};

// Per-connection bookkeeping, owned exclusively by the I/O thread.
struct Server::Conn {
  explicit Conn(size_t max_line_bytes) : reader(max_line_bytes) {}

  int fd = -1;
  uint64_t id = 0;
  LineReader reader;

  std::string outbuf;
  size_t outoff = 0;
  bool want_write = false;

  // Reply ordering. Every request without a CID is assigned the next
  // ordered_seq; completions for those wait in pending_ordered until every
  // earlier non-CID reply has been written, so a client that pipelines
  // plain requests across shards still reads replies in request order.
  uint64_t next_ordered_seq = 0;
  uint64_t next_flush_seq = 0;
  std::map<uint64_t, std::string> pending_ordered;

  size_t inflight = 0;      // commands routed to shards, reply not delivered
  bool authed = false;      // passed AUTH (always false until then when a
                            // token is configured; unused otherwise)
  bool http = false;        // first line was an HTTP request
  bool http_sent = false;   // HTTP reply enqueued; close once flushed
  bool read_closed = false; // EOF from peer; flush remaining replies, close
  bool dead = false;        // swept (poller.del + close + erase) after phase
};

struct Server::Shard {
  int index = 0;
  std::unique_ptr<Mailbox<Command>> mailbox;
  std::thread thread;
  std::atomic<bool> drained{false};
};

// Engine-thread-local state; exists only for its shard thread's lifetime.
struct Server::EngineState {
  sim::PolicyScheduler scheduler;
  std::unique_ptr<sim::ClusterEngine> engine;
  JournalWriter journal;
  // The shard's own session spec: config_.session on a fresh start, the
  // snapshot's embedded header on --restore. Drain and journal truncation
  // use this, never config_.session, so a restored shard finishes under
  // exactly the knobs it was captured with.
  SessionSpec session;
  // The complete journal text of the session so far (header + every
  // accepted S-line), maintained across truncations: this is the blob a
  // SNAPSHOT embeds so the snapshot alone names every job its state
  // references, even after earlier truncations discarded the file's lines.
  std::string session_text;
  size_t base_jobs = 0;
  size_t accepted_submits = 0;
  uint64_t next_auto_id = 1;
  uint64_t snapshot_seq = 0;  // last snapshot written (restored included)
  double resume_vt = 0.0;     // pacing origin: 0 fresh, snapshot vt restored
  // Auto-snapshot bookkeeping: virtual time of the last snapshot (manual or
  // automatic; restore seeds it with the resumed instant), and a latch that
  // stops retry spam after a failed automatic attempt.
  double last_snap_vt = 0.0;
  bool auto_snap_failed = false;
  double horizon = 0.0;
  bool drained = false;
  std::string drain_summary;
  // Set when a journal append/flush fails (the writer poisons itself):
  // later submissions are refused rather than accepted unjournaled, which
  // would silently break replay equivalence.
  bool journal_failed = false;

  // Group-commit staging: SUBMITs accepted in the current mailbox batch.
  // Their journal entries are buffered, their jobs NOT yet injected, and
  // their replies withheld until commit_staged() flushes the journal once
  // for the whole batch.
  struct StagedSubmit {
    workload::JobSpec spec;
    std::string csv_row;  // verbatim row, appended to session_text on commit
    double virtual_time = 0.0;
    bool journaled = false;
    Command cmd;  // reply routing (request payload unused)
  };
  std::vector<StagedSubmit> staged;
};

struct Server::IoState {
  Poller poller;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
  uint64_t next_conn_id = kFirstConnId;
  std::vector<PollEvent> events;
  std::vector<Completion> ready;
  std::vector<uint64_t> dead_scratch;
  // Per-shard routing batches: unicast commands parsed during this tick,
  // handed to each shard's mailbox in ONE locked batch per tick instead of
  // a lock + wakeup per command.
  std::vector<std::vector<Command>> route_pending;
  bool accepting = true;
};

Server::Server(ServerConfig config) : config_(std::move(config)) {}

Server::~Server() {
  request_shutdown();
  wait();
}

util::Status Server::start() {
  if (started_) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       "server already started"};
  }
  if (config_.session.config.horizon_s <= 0.0) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "session horizon must be resolved (> 0)"};
  }
  if (config_.limits.shards < 1) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "shard count must be >= 1"};
  }
  const bool unix_listener = !config_.unix_socket_path.empty();
  if (unix_listener == (config_.tcp_port >= 0)) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "set exactly one of unix_socket_path / tcp_port"};
  }
  if (!wakeup_.ok()) {
    return util::Error{util::ErrorCode::kIoError,
                       "cannot create wakeup descriptor"};
  }

  // Validate the base trace before anything goes live: the engine threads
  // have no way to report a parse error back to the caller.
  if (!config_.session.base_trace_csv.empty()) {
    auto parsed = workload::trace_from_csv(config_.session.base_trace_csv);
    if (!parsed.ok()) {
      return parsed.error();
    }
  }

  if (unix_listener) {
    sockaddr_un addr{};
    if (config_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return util::Error{util::ErrorCode::kInvalidArgument,
                         "unix socket path too long"};
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return util::Error{util::ErrorCode::kIoError,
                         util::strfmt("socket: %s", std::strerror(errno))};
    }
    ::unlink(config_.unix_socket_path.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return util::Error{
          util::ErrorCode::kIoError,
          util::strfmt("bind %s: %s", config_.unix_socket_path.c_str(),
                       std::strerror(errno))};
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return util::Error{util::ErrorCode::kIoError,
                         util::strfmt("socket: %s", std::strerror(errno))};
    }
    // SO_REUSEADDR on the loopback listener only lets a restarted daemon
    // rebind its fixed port through TIME_WAIT; it cannot hijack a live
    // listener (Linux requires SO_REUSEPORT for that, which we do not set).
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(config_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return util::Error{
          util::ErrorCode::kIoError,
          util::strfmt("bind 127.0.0.1:%d: %s", config_.tcp_port,
                       std::strerror(errno))};
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    resolved_port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  // Full kernel accept queue: connection bursts wait there instead of
  // being refused; what the daemon itself turns away (max_connections) is
  // counted in ServeCounters rather than dropped silently.
  if (::listen(listen_fd_, SOMAXCONN) != 0 || !set_nonblocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Error{util::ErrorCode::kIoError,
                       util::strfmt("listen: %s", std::strerror(errno))};
  }

  const int n_shards = config_.limits.shards;
  report_texts_.assign(static_cast<size_t>(n_shards), std::string());
  shards_.clear();
  for (int k = 0; k < n_shards; ++k) {
    auto shard = std::make_unique<Shard>();
    shard->index = k;
    shard->mailbox = std::make_unique<Mailbox<Command>>(
        static_cast<size_t>(config_.limits.admission_capacity));
    shards_.push_back(std::move(shard));
  }
  engines_running_.store(n_shards);
  started_ = true;
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->thread = std::thread([this, s] { engine_main(*s); });
  }
  io_thread_ = std::thread([this] { io_main(); });
  return util::Status::Ok();
}

void Server::request_shutdown() {
  stop_.store(true);
  wakeup_.notify();
}

bool Server::drained() const {
  for (const auto& shard : shards_) {
    if (!shard->drained.load()) {
      return false;
    }
  }
  return !shards_.empty();
}

std::string Server::report_text(int shard) const {
  std::lock_guard<std::mutex> lock(report_mu_);
  if (shard < 0 || static_cast<size_t>(shard) >= report_texts_.size()) {
    return std::string();
  }
  return report_texts_[static_cast<size_t>(shard)];
}

ServeCounters Server::counters() const {
  std::lock_guard<std::mutex> lock(counter_mu_);
  return counters_;
}

void Server::wait() {
  if (!started_) {
    return;
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) {
      shard->thread.join();
    }
  }
  if (io_thread_.joinable()) {
    io_thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!config_.unix_socket_path.empty()) {
    ::unlink(config_.unix_socket_path.c_str());
  }
  started_ = false;
}

// --------------------------------------------------------- engine threads

namespace {

std::string shard_journal_path(const ServerConfig& config, int shard) {
  if (config.journal_path.empty()) {
    return std::string();
  }
  if (config.limits.shards == 1) {
    return config.journal_path;
  }
  return util::strfmt("%s.shard%d", config.journal_path.c_str(), shard);
}

std::string shard_report_path(const ServerConfig& config, int shard) {
  if (config.limits.shards == 1) {
    if (!config.report_path.empty()) {
      return config.report_path;
    }
    return config.journal_path.empty() ? std::string()
                                       : config.journal_path + ".report";
  }
  if (!config.report_path.empty()) {
    return util::strfmt("%s.shard%d", config.report_path.c_str(), shard);
  }
  const std::string journal = shard_journal_path(config, shard);
  return journal.empty() ? std::string() : journal + ".report";
}

}  // namespace

util::Result<std::string> Server::take_snapshot(Shard& shard,
                                                EngineState& es) {
  const std::string journal_path = shard_journal_path(config_, shard.index);
  const auto t0 = SteadyClock::now();
  state::SnapshotMeta meta;
  meta.seq = es.snapshot_seq + 1;
  meta.virtual_time = es.engine->sim().now();
  meta.dispatched = es.engine->sim().dispatched();
  meta.accepted = es.accepted_submits;
  meta.next_auto_id = es.next_auto_id;
  auto blob = state::capture_snapshot(meta, es.session_text, *es.engine,
                                      *es.scheduler.scheduler);
  if (!blob.ok()) {
    return blob.error();
  }
  const std::string snap_path =
      util::strfmt("%s.SNAP.%llu", journal_path.c_str(),
                   static_cast<unsigned long long>(meta.seq));
  // The snapshot always reaches disk (fsync inside) before the journal
  // loses a byte; a crash between the two leaves snapshot + full
  // journal, which restore_shard rejects only if they disagree.
  if (auto status = state::write_file_durable(snap_path, *blob);
      !status.ok()) {
    return status.error();
  }
  es.journal.close();
  struct stat st {};
  const uint64_t old_bytes = ::stat(journal_path.c_str(), &st) == 0
                                 ? static_cast<uint64_t>(st.st_size)
                                 : 0;
  auto reopened = JournalWriter::open(journal_path, es.session);
  if (!reopened.ok()) {
    es.journal_failed = true;
    return util::Error{reopened.error().code,
                       "journal truncation failed: " +
                           reopened.error().message};
  }
  es.journal = std::move(*reopened);
  es.journal.set_fsync(config_.journal_fsync);
  es.snapshot_seq = meta.seq;
  es.last_snap_vt = meta.virtual_time;
  const std::string header = serialize_session_header(es.session);
  const uint64_t truncated =
      old_bytes > header.size() ? old_bytes - header.size() : 0;
  const double snapshot_ms =
      std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
          .count();
  auto& metrics = es.engine->metrics_mut();
  metrics.increment("snapshots_taken");
  metrics.increment("journal_truncated_bytes",
                    static_cast<double>(truncated));
  metrics.set("snapshot_ms", snapshot_ms);
  return util::strfmt(
      "seq=%llu path=%s vt=%a bytes=%zu truncated=%llu ms=%.3f",
      static_cast<unsigned long long>(meta.seq), snap_path.c_str(),
      meta.virtual_time, blob->size(),
      static_cast<unsigned long long>(truncated), snapshot_ms);
}

void Server::maybe_auto_snapshot(Shard& shard, EngineState& es) {
  const double every_s = config_.snapshot_every_sim_hours * 3600.0;
  const double cap_bytes = config_.snapshot_journal_mb * 1024.0 * 1024.0;
  if (every_s <= 0.0 && cap_bytes <= 0.0) {
    return;
  }
  if (es.drained || es.auto_snap_failed || es.journal_failed ||
      !es.journal.is_open()) {
    return;
  }
  const bool vt_due =
      every_s > 0.0 && es.engine->sim().now() - es.last_snap_vt >= every_s;
  const bool bytes_due =
      cap_bytes > 0.0 &&
      static_cast<double>(es.journal.bytes()) >= cap_bytes;
  if (!vt_due && !bytes_due) {
    return;
  }
  auto payload = take_snapshot(shard, es);
  if (payload.ok()) {
    CODA_LOG_INFO("shard %d auto-snapshot %s", shard.index,
                  payload->c_str());
  } else {
    es.auto_snap_failed = true;
    CODA_LOG_ERROR(
        "shard %d auto-snapshot failed (disabled for this shard): %s",
        shard.index, payload.error().message.c_str());
  }
}

void Server::engine_main(Shard& shard) {
  EngineState es;
  const std::string journal_path = shard_journal_path(config_, shard.index);

  bool restored = false;
  if (config_.restore && !journal_path.empty()) {
    auto latest = state::find_latest_snapshot(journal_path + ".SNAP.");
    if (latest.ok()) {
      const auto t0 = SteadyClock::now();
      auto resumed = restore_shard(*latest, journal_path);
      if (resumed.ok()) {
        es.scheduler = std::move(resumed->scheduler);
        es.engine = std::move(resumed->engine);
        es.session = std::move(resumed->session);
        es.session_text = std::move(resumed->session_text);
        es.base_jobs = resumed->base_jobs;
        es.accepted_submits = resumed->accepted_submits;
        es.next_auto_id = resumed->next_auto_id;
        es.snapshot_seq = resumed->snapshot_seq;
        es.resume_vt = resumed->resume_vt;
        es.last_snap_vt = resumed->resume_vt;
        es.horizon = es.session.config.horizon_s;
        const double restore_ms =
            std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
                .count();
        es.engine->metrics_mut().set("restore_ms", restore_ms);
        es.engine->metrics_mut().set(
            "snapshots_taken", static_cast<double>(es.snapshot_seq));
        restored = true;
        CODA_LOG_INFO("shard %d restored from %s (vt=%.3f, %.1f ms)",
                      shard.index, latest->c_str(), es.resume_vt, restore_ms);
      } else {
        CODA_LOG_ERROR("shard %d restore from %s failed: %s; starting fresh",
                       shard.index, latest->c_str(),
                       resumed.error().message.c_str());
      }
    } else {
      CODA_LOG_WARN("shard %d: no snapshot matches %s.SNAP.*; starting fresh",
                    shard.index, journal_path.c_str());
    }
  }

  if (!restored) {
    es.session = config_.session;
    es.scheduler =
        sim::make_policy_scheduler(es.session.policy, es.session.config);
    es.engine = std::make_unique<sim::ClusterEngine>(
        es.session.config.engine, es.scheduler.scheduler.get());
    es.horizon = es.session.config.horizon_s;
    es.session_text = serialize_session_header(es.session);

    if (!es.session.base_trace_csv.empty()) {
      auto trace = workload::trace_from_csv(es.session.base_trace_csv);
      // start() pre-validated the text; a failure here is a programming
      // error.
      es.engine->load_trace(*trace);
      es.base_jobs = trace->size();
      for (const auto& spec : *trace) {
        es.next_auto_id = std::max(es.next_auto_id, spec.id + 1);
      }
    }

    // Same call, same place in the setup order as sim::run_experiment
    // (after the trace, before the first run_until): a live session with
    // failure injection pre-posts the exact outage schedule its replay
    // will. A restored shard must NOT repeat this — the pending outages
    // were captured in the snapshot's manifest and already re-armed.
    sim::schedule_failures(es.engine.get(), es.session.config, es.horizon);
  }

  if (!journal_path.empty()) {
    auto journal = restored
                       ? JournalWriter::open_append(journal_path)
                       : JournalWriter::open(journal_path, es.session);
    if (journal.ok()) {
      es.journal = std::move(*journal);
      es.journal.set_fsync(config_.journal_fsync);
    } else {
      CODA_LOG_ERROR("shard %d journal disabled: %s", shard.index,
                     journal.error().message.c_str());
    }
  }

  const double speedup = es.session.speedup;
  const bool paced = speedup > 0.0;
  const auto wall_start = SteadyClock::now();
  std::vector<Command> batch;
  std::vector<Completion> done;

  while (!stop_.load()) {
    if (!es.drained) {
      double target = es.horizon;
      if (paced) {
        const double elapsed =
            std::chrono::duration<double>(SteadyClock::now() - wall_start)
                .count();
        // Pacing resumes from the snapshot instant: a restored shard picks
        // up mid-session instead of stalling until wall time catches up
        // with the captured virtual clock.
        target = std::min(es.horizon, es.resume_vt + elapsed * speedup);
      }
      if (target > es.engine->sim().now()) {
        es.engine->run_until(target);
      }
      // Between batches nothing is staged and no event is mid-flight — the
      // same instant the SNAPSHOT verb captures at.
      maybe_auto_snapshot(shard, es);
    }

    // Wake on the next command, the next due simulation event, or a 200 ms
    // heartbeat (which also bounds shutdown latency).
    auto deadline = SteadyClock::now() + std::chrono::milliseconds(200);
    if (paced && !es.drained) {
      const double next_t = es.engine->sim().next_event_time();
      if (next_t <= es.horizon) {
        const auto due =
            wall_start + std::chrono::duration_cast<SteadyClock::duration>(
                             std::chrono::duration<double>(
                                 (next_t - es.resume_vt) / speedup));
        deadline = std::min(deadline, std::max(due, SteadyClock::now()));
      }
    }

    batch.clear();
    done.clear();
    shard.mailbox->drain_until(&batch, deadline);
    // Answer every drained command even if one of them is SHUTDOWN: a
    // command whose completion never reaches the I/O thread would leave
    // its client blocked forever.
    for (auto& cmd : batch) {
      handle_command(shard, es, cmd, &done);
    }
    commit_staged(es, &done);
    post_completions(&done);
  }

  // Graceful exit: finish the session even on SIGTERM so the journal's
  // report exists, then answer everything still queued. Closing the
  // mailbox first makes late try_push fail (-> ERR shutting-down at the
  // I/O thread), so no command can slip in after the final sweep and hang
  // its client.
  done.clear();
  commit_staged(es, &done);  // loop exited between batches; normally empty
  if (!es.drained) {
    do_drain(shard, es);
  }
  shard.mailbox->close();
  batch.clear();
  shard.mailbox->drain(&batch);
  for (auto& cmd : batch) {
    handle_command(shard, es, cmd, &done);
  }
  commit_staged(es, &done);
  post_completions(&done);
  engines_running_.fetch_sub(1);
  wakeup_.notify();
}

void Server::post_completions(std::vector<Completion>* done) {
  if (done->empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    for (auto& c : *done) {
      completions_.push_back(std::move(c));
    }
  }
  done->clear();
  wakeup_.notify();
}

// Completes this shard's slot of a fan-out command; the last shard to
// finish composes the combined reply (and, for SHUTDOWN, flips the global
// stop flag — every shard has acknowledged by then).
void Server::finish_broadcast(Command& cmd, std::string part,
                              std::vector<Completion>* done) {
  Broadcast& b = *cmd.broadcast;
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(b.mu);
    b.parts[static_cast<size_t>(cmd.shard)] = std::move(part);
    last = --b.remaining == 0;
  }
  if (!last) {
    return;
  }
  Completion c;
  c.conn_id = cmd.conn_id;
  c.ordered_seq = cmd.ordered_seq;
  c.has_cid = cmd.has_cid;
  c.cid = cmd.cid;
  c.http = cmd.http;
  switch (b.kind) {
    case Broadcast::Kind::kDrain: {
      std::string joined;
      for (size_t i = 0; i < b.parts.size(); ++i) {
        if (i > 0) {
          joined += " | ";
        }
        joined += b.parts[i];
      }
      c.line = format_ok(joined);
      break;
    }
    case Broadcast::Kind::kShutdown:
      c.line = format_ok("bye");
      break;
    case Broadcast::Kind::kHttpMetrics: {
      for (auto& p : b.parts) {
        c.line += p;
      }
      break;
    }
  }
  done->push_back(std::move(c));
  if (b.kind == Broadcast::Kind::kShutdown) {
    stop_.store(true);
    wakeup_.notify();
  }
}

void Server::do_drain(Shard& shard, EngineState& es) {
  // Mirror sim::run_experiment's finish exactly: any divergence here would
  // break the journal replay's byte-identity guarantee.
  es.engine->run_until(es.horizon);
  es.engine->drain(es.horizon + es.session.config.drain_slack_s);
  const sim::ExperimentReport report = sim::build_report(
      es.session.policy, *es.engine, es.base_jobs + es.accepted_submits,
      es.horizon, es.scheduler.coda);
  std::string text = sim::serialize_report(report);

  const std::string report_path = shard_report_path(config_, shard.index);
  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::binary);
    out << text;
    if (!out) {
      CODA_LOG_ERROR("failed to write report to %s", report_path.c_str());
    }
  }
  if (es.journal.is_open()) {
    es.journal.note(util::strfmt(
        "drained: completed %zu/%zu, %zu live submissions",
        report.completed, report.submitted, es.accepted_submits));
    es.journal.close();
  }
  es.drain_summary = util::strfmt(
      "shard=%d drained completed=%zu submitted=%zu abandoned=%zu vt=%.1f%s%s",
      shard.index, report.completed, report.submitted, report.abandoned,
      es.engine->sim().now(), report_path.empty() ? "" : " report=",
      report_path.c_str());
  {
    std::lock_guard<std::mutex> lock(report_mu_);
    report_texts_[static_cast<size_t>(shard.index)] = std::move(text);
  }
  es.drained = true;
  shard.drained.store(true);
}

// Flushes the journal once for every SUBMIT staged in this batch, then
// injects the now-durable jobs and releases their replies. On a flush
// failure nothing is injected: the journal is poisoned and every staged
// submission is refused, so an acknowledged job is always both durable and
// present in the engine.
void Server::commit_staged(EngineState& es, std::vector<Completion>* done) {
  if (es.staged.empty()) {
    return;
  }
  bool flush_failed = false;
  if (es.journal.is_open()) {
    if (auto status = es.journal.flush(); !status.ok()) {
      es.journal_failed = true;
      flush_failed = true;
      CODA_LOG_ERROR("journal group flush failed: %s",
                     status.error().message.c_str());
    }
  }
  for (auto& staged : es.staged) {
    Completion c;
    c.conn_id = staged.cmd.conn_id;
    c.ordered_seq = staged.cmd.ordered_seq;
    c.has_cid = staged.cmd.has_cid;
    c.cid = staged.cmd.cid;
    if (staged.journaled && flush_failed) {
      c.line = format_err(util::ErrorCode::kIoError,
                          "journal flush failed; submission not accepted");
    } else {
      es.engine->inject(staged.spec, staged.virtual_time);
      es.accepted_submits += 1;
      es.session_text += format_submit_entry(staged.virtual_time,
                                             staged.spec.id, staged.csv_row);
      // Hot path: one snprintf into a stack buffer instead of strfmt's
      // measure-allocate-format plus the format_ok concatenation.
      char buf[64];
      const int n = std::snprintf(
          buf, sizeof(buf), "OK id=%llu vt=%.3f",
          static_cast<unsigned long long>(staged.spec.id),
          staged.virtual_time);
      c.line.assign(buf, static_cast<size_t>(n));
    }
    done->push_back(std::move(c));
  }
  es.staged.clear();
}

void Server::handle_command(Shard& shard, EngineState& es, Command& cmd,
                            std::vector<Completion>* done) {
  const Request& req = cmd.request;
  const sim::ClusterEngine& engine = *es.engine;
  auto reply = [&](std::string line) {
    Completion c;
    c.conn_id = cmd.conn_id;
    c.ordered_seq = cmd.ordered_seq;
    c.has_cid = cmd.has_cid;
    c.cid = cmd.cid;
    c.line = std::move(line);
    done->push_back(std::move(c));
  };

  switch (req.verb) {
    case Verb::kPing: {
      char buf[64];
      const int n = std::snprintf(buf, sizeof(buf), "OK pong shard=%d vt=%.3f",
                                  shard.index, engine.sim().now());
      reply(std::string(buf, static_cast<size_t>(n)));
      break;
    }

    case Verb::kSubmit: {
      if (es.drained) {
        reply(format_err(util::ErrorCode::kFailedPrecondition,
                         "session drained; submissions closed"));
        break;
      }
      if (es.journal_failed) {
        reply(format_err(util::ErrorCode::kFailedPrecondition,
                         "journal failed; submissions closed"));
        break;
      }
      auto spec = workload::job_from_csv_row(req.arg);
      if (!spec.ok()) {
        reply(format_err(spec.error().code, spec.error().message));
        break;
      }
      uint64_t id = spec->id;
      if (id == 0) {
        id = es.next_auto_id;
      }
      bool duplicate = engine.records().count(id) > 0;
      for (const auto& staged : es.staged) {
        duplicate = duplicate || staged.spec.id == id;
      }
      if (duplicate) {
        reply(format_err(
            util::ErrorCode::kFailedPrecondition,
            util::strfmt("job id %llu already exists",
                         static_cast<unsigned long long>(id))));
        break;
      }
      // Inject strictly after everything already dispatched and strictly
      // before everything still queued: the replay's pre-posted arrival
      // lands at the same point of the event sequence. now() cannot move
      // between staging and commit (no events run inside a batch), so the
      // instant recorded here is the instant the job is injected at.
      const double vt = std::nextafter(
          engine.sim().now(), std::numeric_limits<double>::infinity());
      EngineState::StagedSubmit staged;
      if (es.journal.is_open()) {
        // Journal first (write-ahead): an unjournaled accepted job would
        // silently break replay equivalence. The entry is only buffered;
        // commit_staged() flushes once per batch and withholds the reply
        // until the entry is durable.
        if (auto status = es.journal.append_submit(vt, id, req.arg);
            !status.ok()) {
          es.journal_failed = true;
          reply(format_err(status.error().code, status.error().message));
          break;
        }
        staged.journaled = true;
      }
      staged.spec = std::move(*spec);
      staged.spec.id = id;
      staged.spec.submit_time = vt;
      staged.csv_row = req.arg;
      staged.virtual_time = vt;
      staged.cmd = cmd;
      es.staged.push_back(std::move(staged));
      es.next_auto_id = std::max(es.next_auto_id, id + 1);
      break;  // reply deferred to commit_staged()
    }

    case Verb::kStatus: {
      commit_staged(es, done);  // same-batch SUBMITs must be visible
      const auto& records = engine.records();
      auto it = records.find(req.job_id);
      if (it == records.end()) {
        reply(format_err(util::ErrorCode::kNotFound,
                         "unknown job " + req.arg));
        break;
      }
      const sim::JobRecord& r = it->second;
      const char* state = r.completed          ? "completed"
                          : r.abandoned        ? "abandoned"
                          : r.first_start_time < 0.0 ? "pending"
                                                     : "active";
      reply(format_ok(util::strfmt(
          "id=%llu state=%s kind=%s submitted=%.3f started=%.3f "
          "finished=%.3f queue_s=%.3f preempts=%d restarts=%d",
          static_cast<unsigned long long>(req.job_id), state,
          workload::to_string(r.spec.kind), r.submit_time,
          r.first_start_time, r.finish_time, r.queue_time_total,
          r.preempt_count, r.restart_count)));
      break;
    }

    case Verb::kCluster: {
      commit_staged(es, done);
      const auto& cluster = engine.cluster();
      reply(format_ok(util::strfmt(
          "shard=%d vt=%.3f nodes=%zu cpus=%d/%d gpus=%d/%d running=%zu "
          "finished=%zu abandoned=%zu",
          shard.index, engine.sim().now(), cluster.node_count(),
          cluster.used_cpus(), cluster.total_cpus(), cluster.used_gpus(),
          cluster.total_gpus(), engine.running_jobs(),
          engine.finished_jobs(), engine.abandoned_jobs())));
      break;
    }

    case Verb::kMetrics: {
      commit_staged(es, done);
      if (cmd.http) {
        // One OpenMetrics block per shard; the I/O thread prepends the
        // serving-layer block and appends the EOF marker.
        const std::string labels = util::strfmt("shard=\"%d\"", shard.index);
        std::string block = telemetry::format_openmetrics(
            telemetry::snapshot(engine.metrics()), labels);
        block += util::strfmt("# TYPE coda_shard_virtual_time gauge\n"
                              "coda_shard_virtual_time{%s} %.6f\n",
                              labels.c_str(), engine.sim().now());
        block += util::strfmt("# TYPE coda_shard_drained gauge\n"
                              "coda_shard_drained{%s} %d\n",
                              labels.c_str(), es.drained ? 1 : 0);
        finish_broadcast(cmd, std::move(block), done);
        break;
      }
      const std::string snap =
          telemetry::format_snapshot(telemetry::snapshot(engine.metrics()));
      reply(format_ok(util::strfmt("shard=%d vt=%.3f drained=%d ",
                                   shard.index, engine.sim().now(),
                                   es.drained ? 1 : 0) +
                      snap));
      break;
    }

    case Verb::kSnapshot: {
      // Same-batch SUBMITs become part of the snapshot (and their journal
      // entries durable) before the capture.
      commit_staged(es, done);
      if (es.drained) {
        reply(format_err(util::ErrorCode::kFailedPrecondition,
                         "session drained; nothing live to snapshot"));
        break;
      }
      const std::string journal_path =
          shard_journal_path(config_, shard.index);
      if (journal_path.empty()) {
        reply(format_err(util::ErrorCode::kFailedPrecondition,
                         "snapshots require a journal (--journal)"));
        break;
      }
      if (!es.journal.is_open()) {
        reply(format_err(util::ErrorCode::kFailedPrecondition,
                         "journal failed; cannot truncate safely"));
        break;
      }
      auto payload = take_snapshot(shard, es);
      if (!payload.ok()) {
        reply(format_err(payload.error().code, payload.error().message));
        break;
      }
      reply(format_ok(*payload));
      break;
    }

    case Verb::kAuth:
      // AUTH is connection state, resolved on the I/O thread; one reaching
      // a shard is a routing bug, but answer it rather than hang a client.
      reply(format_err(util::ErrorCode::kInvalidArgument,
                       "AUTH is handled per connection"));
      break;

    case Verb::kDrain: {
      commit_staged(es, done);
      if (!es.drained) {
        do_drain(shard, es);
      }
      if (cmd.broadcast) {
        finish_broadcast(cmd, es.drain_summary, done);
      } else {
        reply(format_ok(es.drain_summary));
      }
      break;
    }

    case Verb::kShutdown:
      // The drain itself happens after the serving loop exits (every shard
      // sees stop_ and finishes through the same do_drain path); the reply
      // only acknowledges the order, exactly like SIGTERM.
      commit_staged(es, done);
      if (cmd.broadcast) {
        finish_broadcast(cmd, "bye", done);
      } else {
        stop_.store(true);
        wakeup_.notify();
        reply(format_ok("bye"));
      }
      break;
  }
}

// ------------------------------------------------------------- I/O thread

void Server::io_main() {
  io_ = std::make_unique<IoState>();
  IoState& io = *io_;
  io.route_pending.resize(shards_.size());
  io.poller.add(listen_fd_, kListenTag, true, false);
  io.poller.add(wakeup_.fd(), kWakeTag, true, false);

  while (true) {
    const bool stopping = stop_.load();
    if (stopping && io.accepting) {
      io.accepting = false;
      io.poller.del(listen_fd_);
    }

    io.poller.wait(stopping ? 20 : 200, &io.events);
    for (const PollEvent& ev : io.events) {
      if (ev.tag == kListenTag) {
        if (io.accepting) {
          accept_ready();
        }
        continue;
      }
      if (ev.tag == kWakeTag) {
        wakeup_.drain();
        continue;
      }
      auto it = io.conns.find(ev.tag);
      if (it == io.conns.end()) {
        continue;  // swept earlier this tick
      }
      Conn& conn = *it->second;
      if (conn.dead) {
        continue;
      }
      if (ev.readable || (ev.hangup && !conn.read_closed)) {
        conn_readable(conn);
      }
      if (conn.dead) {
        continue;
      }
      if (ev.writable) {
        conn_writable(conn);
      }
      if (ev.hangup && !ev.readable && !ev.writable) {
        conn.dead = true;
      }
    }

    // Hand this tick's parsed commands to the shards, one batch per shard.
    flush_route_pending();

    // Deliver everything the shards completed since the last tick.
    io.ready.clear();
    {
      std::lock_guard<std::mutex> lock(completion_mu_);
      io.ready.swap(completions_);
    }
    for (const Completion& c : io.ready) {
      auto it = io.conns.find(c.conn_id);
      if (it == io.conns.end()) {
        continue;  // connection died with commands in flight
      }
      Conn& conn = *it->second;
      if (conn.inflight > 0) {
        --conn.inflight;
      }
      deliver(conn, c);
    }

    // One flush pass over every live connection: everything the tick
    // enqueued (completions above, local replies during event handling)
    // goes out in a single send(2) per connection.
    for (const auto& [id, conn] : io.conns) {
      if (!conn->dead) {
        try_flush(*conn);
        maybe_finish_conn(*conn);
      }
    }

    // Sweep connections marked dead during this tick.
    io.dead_scratch.clear();
    for (const auto& [id, conn] : io.conns) {
      if (conn->dead) {
        io.dead_scratch.push_back(id);
      }
    }
    for (uint64_t id : io.dead_scratch) {
      drop_conn(id);
    }

    if (stopping && engines_running_.load() == 0) {
      // Every shard has exited, so no further completions can appear.
      // Anything still waiting to be routed gets its shutting-down answer
      // (the closed mailboxes reject the whole batch), then drain the
      // completion queue one last time, flush, and leave.
      flush_route_pending();
      io.ready.clear();
      {
        std::lock_guard<std::mutex> lock(completion_mu_);
        io.ready.swap(completions_);
      }
      for (const Completion& c : io.ready) {
        auto it = io.conns.find(c.conn_id);
        if (it != io.conns.end() && !it->second->dead) {
          deliver(*it->second, c);
        }
      }
      final_flush_and_close();
      break;
    }
  }
  io_.reset();
}

void Server::accept_ready() {
  IoState& io = *io_;
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return;
      }
      std::lock_guard<std::mutex> lock(counter_mu_);
      ++counters_.accept_errors;
      return;
    }
    if (io.conns.size() >=
        static_cast<size_t>(config_.limits.max_connections)) {
      // Accept-queue overflow at the daemon level: turned away loudly
      // (BUSY + counter) instead of lingering in the kernel backlog.
      write_line_best_effort(fd, format_busy(config_.limits.retry_after_ms));
      ::close(fd);
      std::lock_guard<std::mutex> lock(counter_mu_);
      ++counters_.conn_rejected;
      continue;
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      std::lock_guard<std::mutex> lock(counter_mu_);
      ++counters_.accept_errors;
      continue;
    }
    if (config_.unix_socket_path.empty()) {
      // Server replies are tiny; without this they ride Nagle and every
      // non-pipelined caller pays ~40 ms of delayed-ACK p99.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    auto conn = std::make_unique<Conn>(
        static_cast<size_t>(config_.limits.max_line_bytes));
    conn->fd = fd;
    conn->id = io.next_conn_id++;
    if (!io.poller.add(fd, conn->id, true, false)) {
      ::close(fd);
      std::lock_guard<std::mutex> lock(counter_mu_);
      ++counters_.accept_errors;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(counter_mu_);
      ++counters_.conn_accepted;
    }
    io.conns.emplace(conn->id, std::move(conn));
  }
}

void Server::conn_readable(Conn& conn) {
  char buf[16384];
  const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
  if (n == 0) {
    conn.read_closed = true;
    maybe_finish_conn(conn);
    return;
  }
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return;
    }
    conn.dead = true;
    return;
  }
  const bool fed =
      conn.reader.feed_views(buf, static_cast<size_t>(n),
                             [this, &conn](std::string_view line) {
                               if (!conn.dead) {
                                 process_line(conn, line);
                               }
                             });
  if (!fed) {
    enqueue_line(conn, false, 0,
                 format_err(util::ErrorCode::kInvalidArgument,
                            "line exceeds per-connection limit"));
    conn.read_closed = true;
    {
      std::lock_guard<std::mutex> lock(counter_mu_);
      ++counters_.conn_dropped;
    }
    try_flush(conn);
    maybe_finish_conn(conn);
    return;
  }
  try_flush(conn);
  maybe_finish_conn(conn);
}

void Server::conn_writable(Conn& conn) {
  try_flush(conn);
  maybe_finish_conn(conn);
}

void Server::process_line(Conn& conn, std::string_view line) {
  if (conn.http) {
    handle_http_line(conn, line);
    return;
  }
  if (line.empty()) {
    return;
  }
  if (line.substr(0, 4) == "GET " && conn.next_ordered_seq == 0 &&
      conn.inflight == 0) {
    conn.http = true;
    handle_http_line(conn, line);
    return;
  }
  auto env = parse_envelope(line);
  if (!env.ok()) {
    local_reply(conn, conn.next_ordered_seq++, false, 0,
                format_err(env.error().code, env.error().message));
    return;
  }
  route_command(conn, std::move(*env));
}

// First line of an HTTP connection: `GET <path> HTTP/1.x`. The request is
// answered immediately (a GET has no body worth waiting for); header lines
// that trickle in afterwards land here again and are ignored.
void Server::handle_http_line(Conn& conn, std::string_view line) {
  if (conn.http_sent || conn.inflight > 0) {
    return;  // headers after the request line
  }
  std::string_view path;
  {
    const size_t sp = line.find(' ');
    const size_t sp2 = line.find(' ', sp + 1);
    if (sp != std::string_view::npos) {
      path = line.substr(sp + 1, sp2 == std::string_view::npos
                                     ? std::string_view::npos
                                     : sp2 - sp - 1);
    }
  }
  if (path != "/metrics") {
    conn.outbuf += http_response(404, "Not Found", "text/plain",
                                 "only /metrics is served\n");
    conn.http_sent = true;
    update_write_interest(conn);
    return;
  }
  // HTTP/1.0 scrapes cannot carry the protocol's AUTH exchange; with a
  // token configured the scrape endpoint is simply closed off.
  if (!config_.auth_token.empty()) {
    conn.outbuf += http_response(401, "Unauthorized", "text/plain",
                                 "authentication required\n");
    conn.http_sent = true;
    update_write_interest(conn);
    return;
  }
  // Fan the scrape out to every shard; the last one composes the body.
  auto broadcast = std::make_shared<Broadcast>();
  broadcast->kind = Broadcast::Kind::kHttpMetrics;
  broadcast->parts.resize(shards_.size());
  broadcast->remaining = shards_.size();
  conn.inflight += 1;
  bool any_pushed = false;
  for (auto& shard : shards_) {
    Command cmd;
    cmd.request.verb = Verb::kMetrics;
    cmd.conn_id = conn.id;
    cmd.http = true;
    cmd.shard = shard->index;
    cmd.broadcast = broadcast;
    if (shard->mailbox->try_push(std::move(cmd))) {
      any_pushed = true;
    } else {
      Command failed;
      failed.conn_id = conn.id;
      failed.http = true;
      failed.shard = shard->index;
      failed.broadcast = broadcast;
      std::vector<Completion> done;
      finish_broadcast(failed,
                       util::strfmt("# shard %d unavailable\n", shard->index),
                       &done);
      for (Completion& c : done) {
        if (conn.inflight > 0) {
          --conn.inflight;
        }
        deliver(conn, c);
      }
    }
  }
  (void)any_pushed;
}

void Server::route_command(Conn& conn, Envelope env) {
  const int n_shards = static_cast<int>(shards_.size());
  const Verb verb = env.request.verb;
  const uint64_t ordered_seq =
      env.has_cid ? 0 : conn.next_ordered_seq++;

  // AUTH is connection state: resolved here, never routed to a shard.
  // With no configured token it is an accepted no-op, so clients can send
  // it unconditionally.
  if (verb == Verb::kAuth) {
    if (config_.auth_token.empty() || env.request.arg == config_.auth_token) {
      conn.authed = true;
      local_reply(conn, ordered_seq, env.has_cid, env.cid,
                  format_ok("authenticated"));
    } else {
      local_reply(conn, ordered_seq, env.has_cid, env.cid,
                  format_err(util::ErrorCode::kPermissionDenied,
                             "bad auth token"));
    }
    return;
  }
  // Everything but PING requires AUTH first when a token is configured.
  // Refused commands never reach a shard — an unauthenticated client
  // cannot even fill a mailbox slot.
  if (!config_.auth_token.empty() && !conn.authed && verb != Verb::kPing) {
    local_reply(conn, ordered_seq, env.has_cid, env.cid,
                format_err(util::ErrorCode::kPermissionDenied,
                           "authenticate with AUTH <token>"));
    return;
  }

  if (env.shard >= n_shards) {
    local_reply(conn, ordered_seq, env.has_cid, env.cid,
                format_err(util::ErrorCode::kInvalidArgument,
                           util::strfmt("shard %d out of range (0..%d)",
                                        env.shard, n_shards - 1)));
    return;
  }
  if (stop_.load()) {
    local_reply(conn, ordered_seq, env.has_cid, env.cid,
                format_err(util::ErrorCode::kFailedPrecondition,
                           "server shutting down"));
    return;
  }

  // SHUTDOWN always stops the whole daemon; DRAIN without an explicit
  // shard finishes every shard. Both fan out and answer once. Pending
  // unicast batches are flushed first so a pipelined SUBMIT ... DRAIN from
  // one connection reaches the shard in that order.
  if (verb == Verb::kShutdown || (verb == Verb::kDrain && env.shard < 0)) {
    flush_route_pending();
    auto broadcast = std::make_shared<Broadcast>();
    broadcast->kind = verb == Verb::kShutdown ? Broadcast::Kind::kShutdown
                                              : Broadcast::Kind::kDrain;
    broadcast->parts.resize(static_cast<size_t>(n_shards));
    broadcast->remaining = static_cast<size_t>(n_shards);
    conn.inflight += 1;
    for (auto& shard : shards_) {
      Command cmd;
      cmd.request = env.request;
      cmd.conn_id = conn.id;
      cmd.ordered_seq = ordered_seq;
      cmd.has_cid = env.has_cid;
      cmd.cid = env.cid;
      cmd.shard = shard->index;
      cmd.broadcast = broadcast;
      if (!shard->mailbox->try_push(std::move(cmd))) {
        // This shard cannot take the command (full or closed); complete
        // its slot from here so the fan-in still converges.
        Command failed;
        failed.conn_id = conn.id;
        failed.ordered_seq = ordered_seq;
        failed.has_cid = env.has_cid;
        failed.cid = env.cid;
        failed.shard = shard->index;
        failed.broadcast = broadcast;
        std::vector<Completion> done;
        finish_broadcast(
            failed, util::strfmt("shard=%d unavailable", shard->index),
            &done);
        for (Completion& c : done) {
          if (conn.inflight > 0) {
            --conn.inflight;
          }
          deliver(conn, c);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(counter_mu_);
      ++counters_.commands_routed;
    }
    return;
  }

  // Unicast routing: explicit SHARD prefix wins; otherwise SUBMIT routes
  // by the row's tenant id and every other verb goes to shard 0.
  int shard_index = env.shard;
  if (shard_index < 0) {
    shard_index =
        verb == Verb::kSubmit && n_shards > 1
            ? static_cast<int>(tenant_of_csv_row(env.request.arg) %
                               static_cast<uint64_t>(n_shards))
            : 0;
  }
  Command cmd;
  cmd.request = std::move(env.request);
  cmd.conn_id = conn.id;
  cmd.ordered_seq = ordered_seq;
  cmd.has_cid = env.has_cid;
  cmd.cid = env.cid;
  cmd.shard = shard_index;
  conn.inflight += 1;
  io_->route_pending[static_cast<size_t>(shard_index)].push_back(
      std::move(cmd));
}

// Pushes this tick's per-shard command batches, each under one mailbox
// lock. try_push_batch accepts a prefix, so per-connection order survives:
// a rejected command only ever has rejected commands after it.
void Server::flush_route_pending() {
  IoState& io = *io_;
  uint64_t routed = 0;
  uint64_t busy = 0;
  for (size_t k = 0; k < io.route_pending.size(); ++k) {
    auto& pending = io.route_pending[k];
    if (pending.empty()) {
      continue;
    }
    const size_t accepted = shards_[k]->mailbox->try_push_batch(&pending);
    routed += accepted;
    if (accepted < pending.size()) {
      const bool stopping = stop_.load() || shards_[k]->mailbox->closed();
      for (size_t i = accepted; i < pending.size(); ++i) {
        Command& cmd = pending[i];
        auto it = io.conns.find(cmd.conn_id);
        if (it == io.conns.end()) {
          continue;
        }
        Conn& conn = *it->second;
        if (conn.inflight > 0) {
          --conn.inflight;
        }
        if (stopping) {
          // Terminating, not overloaded: a BUSY here would invite the
          // client to retry against a server that will never answer.
          local_reply(conn, cmd.ordered_seq, cmd.has_cid, cmd.cid,
                      format_err(util::ErrorCode::kFailedPrecondition,
                                 "server shutting down"));
        } else {
          // Admission queue full: explicit backpressure, never unbounded
          // buffering.
          local_reply(conn, cmd.ordered_seq, cmd.has_cid, cmd.cid,
                      format_busy(config_.limits.retry_after_ms));
          ++busy;
        }
      }
    }
    pending.clear();
  }
  if (routed > 0 || busy > 0) {
    std::lock_guard<std::mutex> lock(counter_mu_);
    counters_.commands_routed += routed;
    counters_.busy_rejections += busy;
  }
}

// Immediate reply produced by the I/O thread itself (parse error, BUSY,
// shutdown refusals). Runs through the same ordering machinery as engine
// completions so pipelined clients still see request-order replies.
void Server::local_reply(Conn& conn, uint64_t ordered_seq, bool has_cid,
                         uint64_t cid, std::string line) {
  Completion c;
  c.conn_id = conn.id;
  c.ordered_seq = ordered_seq;
  c.has_cid = has_cid;
  c.cid = cid;
  c.line = std::move(line);
  deliver(conn, c);
}

void Server::deliver(Conn& conn, const Completion& completion) {
  if (conn.dead) {
    return;
  }
  if (completion.http) {
    // The completion body is the concatenated per-shard blocks; prepend
    // the serving-layer block and close the exposition.
    const ServeCounters snap = counters();
    std::string body;
    body += "# TYPE coda_serve_connections_active gauge\n";
    body += util::strfmt("coda_serve_connections_active %zu\n",
                         io_ ? io_->conns.size() : size_t{0});
    body += "# TYPE coda_serve_connections_accepted_total counter\n";
    body += util::strfmt("coda_serve_connections_accepted_total %llu\n",
                         static_cast<unsigned long long>(snap.conn_accepted));
    body += "# TYPE coda_serve_connections_rejected_total counter\n";
    body += util::strfmt("coda_serve_connections_rejected_total %llu\n",
                         static_cast<unsigned long long>(snap.conn_rejected));
    body += "# TYPE coda_serve_connections_dropped_total counter\n";
    body += util::strfmt("coda_serve_connections_dropped_total %llu\n",
                         static_cast<unsigned long long>(snap.conn_dropped));
    body += "# TYPE coda_serve_accept_errors_total counter\n";
    body += util::strfmt("coda_serve_accept_errors_total %llu\n",
                         static_cast<unsigned long long>(snap.accept_errors));
    body += "# TYPE coda_serve_commands_routed_total counter\n";
    body += util::strfmt("coda_serve_commands_routed_total %llu\n",
                         static_cast<unsigned long long>(snap.commands_routed));
    body += "# TYPE coda_serve_busy_rejections_total counter\n";
    body += util::strfmt("coda_serve_busy_rejections_total %llu\n",
                         static_cast<unsigned long long>(snap.busy_rejections));
    body += completion.line;
    body += "# EOF\n";
    conn.outbuf += http_response(200, "OK", kOpenMetricsType, body);
    conn.http_sent = true;
    try_flush(conn);
    maybe_finish_conn(conn);
    return;
  }
  if (completion.has_cid) {
    // Correlated reply: written the moment it completes, even if plain
    // requests sent earlier are still in flight on another shard.
    enqueue_line(conn, true, completion.cid, completion.line);
  } else {
    conn.pending_ordered[completion.ordered_seq] = completion.line;
    flush_ordered(conn);
  }
  // No flush here: replies only accumulate in the outbuf. io_main flushes
  // every touched connection once per tick — with a pipelining client that
  // is one send(2) for a whole window of replies instead of one each.
}

void Server::flush_ordered(Conn& conn) {
  auto it = conn.pending_ordered.begin();
  while (it != conn.pending_ordered.end() &&
         it->first == conn.next_flush_seq) {
    enqueue_line(conn, false, 0, it->second);
    it = conn.pending_ordered.erase(it);
    ++conn.next_flush_seq;
  }
}

void Server::enqueue_line(Conn& conn, bool has_cid, uint64_t cid,
                          const std::string& line) {
  if (conn.dead) {
    return;
  }
  const size_t pending = conn.outbuf.size() - conn.outoff;
  if (pending + line.size() > kMaxOutbufBytes) {
    conn.dead = true;
    std::lock_guard<std::mutex> lock(counter_mu_);
    ++counters_.conn_dropped;
    return;
  }
  if (has_cid) {
    char prefix[32];
    const int n = std::snprintf(prefix, sizeof(prefix), "CID %llu ",
                                static_cast<unsigned long long>(cid));
    conn.outbuf.append(prefix, static_cast<size_t>(n));
  }
  conn.outbuf += line;
  conn.outbuf += '\n';
}

void Server::try_flush(Conn& conn) {
  if (conn.dead) {
    return;
  }
  while (conn.outoff < conn.outbuf.size()) {
    const ssize_t w =
        ::send(conn.fd, conn.outbuf.data() + conn.outoff,
               conn.outbuf.size() - conn.outoff, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      conn.dead = true;
      return;
    }
    conn.outoff += static_cast<size_t>(w);
  }
  if (conn.outoff >= conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.outoff = 0;
  } else if (conn.outoff > (64u << 10)) {
    conn.outbuf.erase(0, conn.outoff);
    conn.outoff = 0;
  }
  update_write_interest(conn);
}

void Server::update_write_interest(Conn& conn) {
  if (conn.dead || io_ == nullptr) {
    return;
  }
  const bool want_write = conn.outoff < conn.outbuf.size();
  if (want_write != conn.want_write) {
    conn.want_write = want_write;
    io_->poller.mod(conn.fd, conn.id, !conn.read_closed, want_write);
  }
}

void Server::maybe_finish_conn(Conn& conn) {
  if (conn.dead) {
    return;
  }
  const bool flushed = conn.outoff >= conn.outbuf.size();
  if (conn.http_sent && flushed) {
    conn.dead = true;  // HTTP/1.0: one response, then close
    return;
  }
  if (conn.read_closed && flushed && conn.inflight == 0 &&
      conn.pending_ordered.empty()) {
    conn.dead = true;
  }
}

void Server::drop_conn(uint64_t conn_id) {
  IoState& io = *io_;
  auto it = io.conns.find(conn_id);
  if (it == io.conns.end()) {
    return;
  }
  io.poller.del(it->second->fd);
  ::close(it->second->fd);
  io.conns.erase(it);
}

// Shutdown epilogue: give every connection a short bounded window to take
// its remaining reply bytes, then close everything. Peers that are not
// reading see a clean close instead of a hang.
void Server::final_flush_and_close() {
  IoState& io = *io_;
  const auto deadline = SteadyClock::now() + std::chrono::seconds(1);
  while (SteadyClock::now() < deadline) {
    bool any_pending = false;
    for (auto& [id, conn] : io.conns) {
      if (conn->dead) {
        continue;
      }
      try_flush(*conn);
      if (!conn->dead && conn->outoff < conn->outbuf.size()) {
        any_pending = true;
      }
    }
    if (!any_pending) {
      break;
    }
    io.poller.wait(10, &io.events);
  }
  for (auto& [id, conn] : io.conns) {
    io.poller.del(conn->fd);
    ::close(conn->fd);
  }
  io.conns.clear();
}

}  // namespace coda::service
