#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>

#include "sim/report_io.h"
#include "telemetry/metrics.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/strings.h"
#include "workload/trace_io.h"

namespace coda::service {

namespace {

using SteadyClock = std::chrono::steady_clock;

// Short-write tolerant send loop; MSG_NOSIGNAL keeps a dead peer from
// killing the process with SIGPIPE.
bool write_all(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

bool write_line(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  return write_all(fd, framed.data(), framed.size());
}

}  // namespace

ServiceLimits ServiceLimits::from_env() {
  ServiceLimits limits;
  limits.admission_capacity =
      util::env_int("CODA_SERVE_QUEUE", limits.admission_capacity, 1);
  limits.max_connections =
      util::env_int("CODA_SERVE_MAX_CONNS", limits.max_connections, 1);
  limits.max_line_bytes =
      util::env_int("CODA_SERVE_MAX_LINE", limits.max_line_bytes, 256);
  limits.retry_after_ms =
      util::env_int("CODA_SERVE_RETRY_MS", limits.retry_after_ms, 1);
  return limits;
}

// One-shot rendezvous between a connection thread and the engine thread.
struct Server::ReplySlot {
  std::mutex mu;
  std::condition_variable cv;
  std::string line;
  bool ready = false;

  void set(std::string response) {
    {
      std::lock_guard<std::mutex> lock(mu);
      line = std::move(response);
      ready = true;
    }
    cv.notify_one();
  }

  std::string take() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return ready; });
    return std::move(line);
  }
};

struct Server::Command {
  Request request;
  std::shared_ptr<ReplySlot> reply;
};

// Engine-thread-local state; exists only for the engine thread's lifetime.
struct Server::EngineState {
  sim::PolicyScheduler scheduler;
  std::unique_ptr<sim::ClusterEngine> engine;
  JournalWriter journal;
  size_t base_jobs = 0;
  size_t accepted_submits = 0;
  uint64_t next_auto_id = 1;
  double horizon = 0.0;
  // Set when a journal append fails (the writer poisons itself): later
  // submissions are refused rather than accepted unjournaled, which would
  // silently break replay equivalence.
  bool journal_failed = false;
};

Server::Server(ServerConfig config) : config_(std::move(config)) {}

Server::~Server() {
  request_shutdown();
  wait();
}

util::Status Server::start() {
  if (started_) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       "server already started"};
  }
  if (config_.session.config.horizon_s <= 0.0) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "session horizon must be resolved (> 0)"};
  }
  const bool unix_listener = !config_.unix_socket_path.empty();
  if (unix_listener == (config_.tcp_port >= 0)) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "set exactly one of unix_socket_path / tcp_port"};
  }

  // Validate the base trace before anything goes live: the engine thread
  // has no way to report a parse error back to the caller.
  if (!config_.session.base_trace_csv.empty()) {
    auto parsed = workload::trace_from_csv(config_.session.base_trace_csv);
    if (!parsed.ok()) {
      return parsed.error();
    }
  }

  if (unix_listener) {
    sockaddr_un addr{};
    if (config_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return util::Error{util::ErrorCode::kInvalidArgument,
                         "unix socket path too long"};
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return util::Error{util::ErrorCode::kIoError,
                         util::strfmt("socket: %s", std::strerror(errno))};
    }
    ::unlink(config_.unix_socket_path.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return util::Error{
          util::ErrorCode::kIoError,
          util::strfmt("bind %s: %s", config_.unix_socket_path.c_str(),
                       std::strerror(errno))};
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return util::Error{util::ErrorCode::kIoError,
                         util::strfmt("socket: %s", std::strerror(errno))};
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(config_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return util::Error{
          util::ErrorCode::kIoError,
          util::strfmt("bind 127.0.0.1:%d: %s", config_.tcp_port,
                       std::strerror(errno))};
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    resolved_port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Error{util::ErrorCode::kIoError,
                       util::strfmt("listen: %s", std::strerror(errno))};
  }

  mailbox_ = std::make_unique<Mailbox<Command>>(
      static_cast<size_t>(config_.limits.admission_capacity));
  started_ = true;
  engine_thread_ = std::thread([this] { engine_main(); });
  acceptor_thread_ = std::thread([this] { acceptor_main(); });
  return util::Status::Ok();
}

void Server::request_shutdown() { stop_.store(true); }

bool Server::drained() const { return drained_.load(); }

std::string Server::report_text() const {
  std::lock_guard<std::mutex> lock(report_mu_);
  return report_text_;
}

void Server::wait() {
  if (!started_) {
    return;
  }
  if (engine_thread_.joinable()) {
    engine_thread_.join();
  }
  if (acceptor_thread_.joinable()) {
    acceptor_thread_.join();
  }
  close_all_connections();
  std::vector<Connection> remaining;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    remaining.swap(connections_);
  }
  for (auto& conn : remaining) {
    if (conn.thread.joinable()) {
      conn.thread.join();
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!config_.unix_socket_path.empty()) {
    ::unlink(config_.unix_socket_path.c_str());
  }
  started_ = false;
}

void Server::close_all_connections() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto& conn : connections_) {
    if (conn.state->fd >= 0) {
      ::shutdown(conn.state->fd, SHUT_RDWR);
    }
  }
}

// Joins and discards every finished connection thread so a long-running
// daemon does not accumulate one dead thread handle per connection ever
// accepted. Joining happens outside conn_mu_; a done thread has nothing
// left to run, so each join returns immediately.
void Server::reap_connections() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if (it->state->done) {
        finished.push_back(std::move(it->thread));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& t : finished) {
    if (t.joinable()) {
      t.join();
    }
  }
}

// --------------------------------------------------------- engine thread

void Server::engine_main() {
  EngineState es;
  es.scheduler =
      sim::make_policy_scheduler(config_.session.policy, config_.session.config);
  es.engine = std::make_unique<sim::ClusterEngine>(
      config_.session.config.engine, es.scheduler.scheduler.get());
  es.horizon = config_.session.config.horizon_s;

  if (!config_.session.base_trace_csv.empty()) {
    auto trace = workload::trace_from_csv(config_.session.base_trace_csv);
    // start() pre-validated the text; a failure here is a programming error.
    es.engine->load_trace(*trace);
    es.base_jobs = trace->size();
    for (const auto& spec : *trace) {
      es.next_auto_id = std::max(es.next_auto_id, spec.id + 1);
    }
  }

  if (!config_.journal_path.empty()) {
    auto journal = JournalWriter::open(config_.journal_path, config_.session);
    if (journal.ok()) {
      es.journal = std::move(*journal);
    } else {
      CODA_LOG_ERROR("journal disabled: %s",
                     journal.error().message.c_str());
    }
  }

  const double speedup = config_.session.speedup;
  const bool paced = speedup > 0.0;
  const auto wall_start = SteadyClock::now();
  std::vector<Command> batch;

  while (!stop_.load()) {
    if (!drained_.load()) {
      double target = es.horizon;
      if (paced) {
        const double elapsed =
            std::chrono::duration<double>(SteadyClock::now() - wall_start)
                .count();
        target = std::min(es.horizon, elapsed * speedup);
      }
      if (target > es.engine->sim().now()) {
        es.engine->run_until(target);
      }
    }

    // Wake on the next command, the next due simulation event, or a 200 ms
    // heartbeat (which also bounds shutdown latency).
    auto deadline = SteadyClock::now() + std::chrono::milliseconds(200);
    if (paced && !drained_.load()) {
      const double next_t = es.engine->sim().next_event_time();
      if (next_t <= es.horizon) {
        const auto due =
            wall_start + std::chrono::duration_cast<SteadyClock::duration>(
                             std::chrono::duration<double>(next_t / speedup));
        deadline = std::min(deadline, std::max(due, SteadyClock::now()));
      }
    }

    batch.clear();
    mailbox_->drain_until(&batch, deadline);
    // Answer every drained command even if one of them is SHUTDOWN: a
    // command whose ReplySlot is never set would block its connection
    // thread forever and deadlock wait().
    for (auto& cmd : batch) {
      handle_command(es, cmd);
    }
  }

  // Graceful exit: finish the session even on SIGTERM so the journal's
  // report exists, then answer everything still queued. Closing the
  // mailbox first makes late try_push fail (-> ERR shutting-down at the
  // connection), so no command can slip in after the final sweep and hang
  // its client.
  if (!drained_.load()) {
    do_drain(es);
  }
  mailbox_->close();
  batch.clear();
  mailbox_->drain(&batch);
  for (auto& cmd : batch) {
    handle_command(es, cmd);
  }
}

void Server::do_drain(EngineState& es) {
  draining_.store(true);
  // Mirror sim::run_experiment's finish exactly: any divergence here would
  // break the journal replay's byte-identity guarantee.
  es.engine->run_until(es.horizon);
  es.engine->drain(es.horizon + config_.session.config.drain_slack_s);
  const sim::ExperimentReport report = sim::build_report(
      config_.session.policy, *es.engine, es.base_jobs + es.accepted_submits,
      es.horizon, es.scheduler.coda);
  std::string text = sim::serialize_report(report);

  std::string report_path = config_.report_path;
  if (report_path.empty() && !config_.journal_path.empty()) {
    report_path = config_.journal_path + ".report";
  }
  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::binary);
    out << text;
    if (!out) {
      CODA_LOG_ERROR("failed to write report to %s", report_path.c_str());
    }
  }
  if (es.journal.is_open()) {
    es.journal.note(util::strfmt(
        "drained: completed %zu/%zu, %zu live submissions",
        report.completed, report.submitted, es.accepted_submits));
    es.journal.close();
  }
  {
    std::lock_guard<std::mutex> lock(report_mu_);
    report_text_ = std::move(text);
    drain_summary_ = util::strfmt(
        "drained completed=%zu submitted=%zu abandoned=%zu vt=%.1f%s%s",
        report.completed, report.submitted, report.abandoned,
        es.engine->sim().now(),
        report_path.empty() ? "" : " report=", report_path.c_str());
  }
  drained_.store(true);
}

void Server::handle_command(EngineState& es, Command& cmd) {
  const Request& req = cmd.request;
  const sim::ClusterEngine& engine = *es.engine;
  std::string resp;
  switch (req.verb) {
    case Verb::kPing:
      resp = format_ok(util::strfmt("pong vt=%.3f", engine.sim().now()));
      break;

    case Verb::kSubmit: {
      if (draining_.load() || drained_.load()) {
        resp = format_err(util::ErrorCode::kFailedPrecondition,
                          "session drained; submissions closed");
        break;
      }
      if (es.journal_failed) {
        resp = format_err(util::ErrorCode::kFailedPrecondition,
                          "journal failed; submissions closed");
        break;
      }
      auto spec = workload::job_from_csv_row(req.arg);
      if (!spec.ok()) {
        resp = format_err(spec.error().code, spec.error().message);
        break;
      }
      uint64_t id = spec->id;
      if (id == 0) {
        id = es.next_auto_id;
      }
      if (engine.records().count(id) > 0) {
        resp = format_err(
            util::ErrorCode::kFailedPrecondition,
            util::strfmt("job id %llu already exists",
                         static_cast<unsigned long long>(id)));
        break;
      }
      // Inject strictly after everything already dispatched and strictly
      // before everything still queued: the replay's pre-posted arrival
      // lands at the same point of the event sequence.
      const double vt = std::nextafter(
          engine.sim().now(), std::numeric_limits<double>::infinity());
      if (es.journal.is_open()) {
        // Journal first (write-ahead): an unjournaled accepted job would
        // silently break replay equivalence.
        if (auto status = es.journal.append_submit(vt, id, req.arg);
            !status.ok()) {
          es.journal_failed = true;
          resp = format_err(status.error().code, status.error().message);
          break;
        }
      }
      spec->id = id;
      spec->submit_time = vt;
      es.engine->inject(*spec, vt);
      es.accepted_submits += 1;
      es.next_auto_id = std::max(es.next_auto_id, id + 1);
      resp = format_ok(util::strfmt(
          "id=%llu vt=%.3f", static_cast<unsigned long long>(id), vt));
      break;
    }

    case Verb::kStatus: {
      const auto& records = engine.records();
      auto it = records.find(req.job_id);
      if (it == records.end()) {
        resp = format_err(util::ErrorCode::kNotFound,
                          "unknown job " + req.arg);
        break;
      }
      const sim::JobRecord& r = it->second;
      const char* state = r.completed          ? "completed"
                          : r.abandoned        ? "abandoned"
                          : r.first_start_time < 0.0 ? "pending"
                                                     : "active";
      resp = format_ok(util::strfmt(
          "id=%llu state=%s kind=%s submitted=%.3f started=%.3f "
          "finished=%.3f queue_s=%.3f preempts=%d restarts=%d",
          static_cast<unsigned long long>(req.job_id), state,
          workload::to_string(r.spec.kind), r.submit_time,
          r.first_start_time, r.finish_time, r.queue_time_total,
          r.preempt_count, r.restart_count));
      break;
    }

    case Verb::kCluster: {
      const auto& cluster = engine.cluster();
      resp = format_ok(util::strfmt(
          "vt=%.3f nodes=%zu cpus=%d/%d gpus=%d/%d running=%zu "
          "finished=%zu abandoned=%zu",
          engine.sim().now(), cluster.node_count(), cluster.used_cpus(),
          cluster.total_cpus(), cluster.used_gpus(), cluster.total_gpus(),
          engine.running_jobs(), engine.finished_jobs(),
          engine.abandoned_jobs()));
      break;
    }

    case Verb::kMetrics: {
      const std::string snap =
          telemetry::format_snapshot(telemetry::snapshot(engine.metrics()));
      resp = format_ok(util::strfmt("vt=%.3f drained=%d ",
                                    engine.sim().now(),
                                    drained_.load() ? 1 : 0) +
                       snap);
      break;
    }

    case Verb::kDrain: {
      if (!drained_.load()) {
        do_drain(es);
      }
      std::lock_guard<std::mutex> lock(report_mu_);
      resp = format_ok(drain_summary_);
      break;
    }

    case Verb::kShutdown:
      stop_.store(true);
      resp = format_ok("bye");
      break;
  }
  cmd.reply->set(std::move(resp));
}

// ----------------------------------------------------------- I/O threads

void Server::acceptor_main() {
  while (!stop_.load()) {
    reap_connections();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    if (active_connections_.load() >= config_.limits.max_connections) {
      (void)write_line(fd, format_busy(config_.limits.retry_after_ms));
      ::close(fd);
      continue;
    }
    active_connections_.fetch_add(1);
    auto state = std::make_shared<ConnState>();
    state->fd = fd;
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.push_back(
        {std::thread([this, fd, state] { connection_main(fd, state); }),
         state});
  }
}

void Server::connection_main(int fd, std::shared_ptr<ConnState> state) {
  LineReader reader(static_cast<size_t>(config_.limits.max_line_bytes));
  std::vector<std::string> lines;
  char buf[4096];
  bool open = true;
  while (open && !stop_.load()) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      break;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    lines.clear();
    if (!reader.feed(buf, static_cast<size_t>(n), &lines)) {
      (void)write_line(fd, format_err(util::ErrorCode::kInvalidArgument,
                                      "line exceeds per-connection limit"));
      break;
    }
    for (const auto& line : lines) {
      if (line.empty()) {
        continue;
      }
      auto req = parse_request(line);
      std::string resp;
      if (!req.ok()) {
        resp = format_err(req.error().code, req.error().message);
      } else {
        auto slot = std::make_shared<ReplySlot>();
        if (!mailbox_->try_push({*req, slot})) {
          if (stop_.load() || mailbox_->closed()) {
            // Terminating, not overloaded: a BUSY here would invite the
            // client to retry against a server that will never answer.
            resp = format_err(util::ErrorCode::kFailedPrecondition,
                              "server shutting down");
          } else {
            // Admission queue full: explicit backpressure, never
            // unbounded buffering.
            resp = format_busy(config_.limits.retry_after_ms);
          }
        } else {
          resp = slot->take();
        }
      }
      if (!write_line(fd, resp)) {
        open = false;
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    state->fd = -1;
  }
  ::close(fd);
  active_connections_.fetch_sub(1);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    state->done = true;
  }
}

}  // namespace coda::service
