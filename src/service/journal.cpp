#include "service/journal.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/strings.h"
#include "workload/trace_io.h"

namespace coda::service {

namespace {

constexpr const char* kMagic = "CODA_JOURNAL";
constexpr const char* kVersion = "v1";

util::Error io_error(const std::string& path, const char* what) {
  return util::Error{util::ErrorCode::kIoError,
                     util::strfmt("journal '%s': %s (%s)", path.c_str(), what,
                                  std::strerror(errno))};
}

util::Error parse_error(const std::string& what) {
  return util::Error{util::ErrorCode::kParseError, "journal: " + what};
}

// Splits one line into "key" and "rest" on the first space.
void split_key(const std::string& line, std::string* key, std::string* rest) {
  const size_t sp = line.find(' ');
  if (sp == std::string::npos) {
    *key = line;
    rest->clear();
  } else {
    *key = line.substr(0, sp);
    *rest = line.substr(sp + 1);
  }
}

util::Result<double> parse_hexfloat(const std::string& s) {
  if (s.empty()) {
    return parse_error("empty number");
  }
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return parse_error("'" + s + "' is not a number");
  }
  return v;
}

util::Result<long long> parse_ll(const std::string& s) {
  if (s.empty()) {
    return parse_error("empty integer");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) {
    return parse_error("'" + s + "' is not an integer");
  }
  return v;
}

// Full-u64-range parser: noise_seed and job ids are written with %llu, so
// values >= 2^63 must round-trip (strtoll would reject them with ERANGE).
util::Result<unsigned long long> parse_ull(const std::string& s) {
  // strtoull silently wraps negative input, so reject it up front.
  if (s.empty() || s[0] == '-') {
    return parse_error("'" + s + "' is not an unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) {
    return parse_error("'" + s + "' is not an unsigned integer");
  }
  return v;
}

util::Result<sim::Policy> policy_from_string(const std::string& name) {
  for (sim::Policy p :
       {sim::Policy::kFifo, sim::Policy::kDrf, sim::Policy::kCoda}) {
    if (name == sim::to_string(p)) {
      return p;
    }
  }
  return parse_error("unknown policy '" + name + "'");
}

}  // namespace

JournalWriter::~JournalWriter() { close(); }

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : file_(other.file_) {
  other.file_ = nullptr;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    close();
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

void JournalWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

util::Result<JournalWriter> JournalWriter::open(const std::string& path,
                                                const SessionSpec& session) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return io_error(path, "cannot open for write");
  }
  const auto& eng = session.config.engine;
  std::string header;
  header += util::strfmt("%s %s\n", kMagic, kVersion);
  header += util::strfmt("policy %s\n", sim::to_string(session.policy));
  header += util::strfmt("nodes %d\n", eng.cluster.node_count);
  header += util::strfmt("metrics_period %a\n", eng.metrics_period_s);
  header += util::strfmt("frag_min_cpus %d\n", eng.frag_min_cpus);
  header += util::strfmt("noise_stddev %a\n", eng.util_noise_stddev);
  header += util::strfmt("noise_seed %llu\n",
                         static_cast<unsigned long long>(eng.noise_seed));
  header += util::strfmt("horizon %a\n", session.config.horizon_s);
  header += util::strfmt("drain_slack %a\n", session.config.drain_slack_s);
  header += util::strfmt("speedup %a\n", session.speedup);
  header += util::strfmt("base_trace_bytes %zu\n",
                         session.base_trace_csv.size());
  header += session.base_trace_csv;
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
      std::fflush(f) != 0) {
    std::fclose(f);
    return io_error(path, "header write failed");
  }
  JournalWriter writer;
  writer.file_ = f;
  return writer;
}

util::Status JournalWriter::append_submit(double virtual_time,
                                          uint64_t job_id,
                                          const std::string& csv_row) {
  if (file_ == nullptr) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       "journal is closed"};
  }
  const std::string line = util::strfmt(
      "S %a %llu ", virtual_time, static_cast<unsigned long long>(job_id)) +
      csv_row + "\n";
  // Group commit: no fflush here — flush() covers the whole batch. A short
  // fwrite still poisons the journal so a later append cannot concatenate
  // onto a torn line and produce a file that parses to the wrong session.
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    close();
    return util::Error{util::ErrorCode::kIoError, "journal append failed"};
  }
  return util::Status::Ok();
}

util::Status JournalWriter::flush() {
  if (file_ == nullptr) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       "journal is closed"};
  }
  if (std::fflush(file_) != 0) {
    // Entries since the last good flush may be torn on disk; poison the
    // writer so the server stops acknowledging submissions.
    close();
    return util::Error{util::ErrorCode::kIoError, "journal flush failed"};
  }
  return util::Status::Ok();
}

void JournalWriter::note(const std::string& comment) {
  if (file_ == nullptr) {
    return;
  }
  std::string line = "# " + comment + "\n";
  (void)std::fwrite(line.data(), 1, line.size(), file_);
  (void)std::fflush(file_);
}

util::Result<JournalSession> parse_journal(const std::string& text) {
  JournalSession out;
  size_t pos = 0;
  auto next_line = [&]() -> util::Result<std::string> {
    if (pos >= text.size()) {
      return parse_error("unexpected end of file");
    }
    const size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      return parse_error("unterminated line");
    }
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };

  // ---- magic ----
  auto magic = next_line();
  if (!magic.ok()) {
    return magic.error();
  }
  if (*magic != std::string(kMagic) + " " + kVersion) {
    return parse_error("bad magic/version line '" + *magic + "'");
  }

  // ---- header key/value lines, terminated by base_trace_bytes ----
  auto& cfg = out.session.config;
  bool saw_horizon = false;
  while (true) {
    auto line = next_line();
    if (!line.ok()) {
      return line.error();
    }
    std::string key;
    std::string rest;
    split_key(*line, &key, &rest);
    if (key == "policy") {
      auto p = policy_from_string(rest);
      if (!p.ok()) {
        return p.error();
      }
      out.session.policy = *p;
    } else if (key == "nodes") {
      auto v = parse_ll(rest);
      if (!v.ok()) {
        return v.error();
      }
      cfg.engine.cluster.node_count = static_cast<int>(*v);
    } else if (key == "metrics_period") {
      auto v = parse_hexfloat(rest);
      if (!v.ok()) {
        return v.error();
      }
      cfg.engine.metrics_period_s = *v;
    } else if (key == "frag_min_cpus") {
      auto v = parse_ll(rest);
      if (!v.ok()) {
        return v.error();
      }
      cfg.engine.frag_min_cpus = static_cast<int>(*v);
    } else if (key == "noise_stddev") {
      auto v = parse_hexfloat(rest);
      if (!v.ok()) {
        return v.error();
      }
      cfg.engine.util_noise_stddev = *v;
    } else if (key == "noise_seed") {
      auto v = parse_ull(rest);
      if (!v.ok()) {
        return v.error();
      }
      cfg.engine.noise_seed = static_cast<uint64_t>(*v);
    } else if (key == "horizon") {
      auto v = parse_hexfloat(rest);
      if (!v.ok()) {
        return v.error();
      }
      cfg.horizon_s = *v;
      saw_horizon = true;
    } else if (key == "drain_slack") {
      auto v = parse_hexfloat(rest);
      if (!v.ok()) {
        return v.error();
      }
      cfg.drain_slack_s = *v;
    } else if (key == "speedup") {
      auto v = parse_hexfloat(rest);
      if (!v.ok()) {
        return v.error();
      }
      out.session.speedup = *v;
    } else if (key == "base_trace_bytes") {
      auto v = parse_ll(rest);
      if (!v.ok()) {
        return v.error();
      }
      const size_t n = static_cast<size_t>(*v);
      if (pos + n > text.size()) {
        return parse_error("truncated base trace");
      }
      out.session.base_trace_csv = text.substr(pos, n);
      pos += n;
      break;  // entries follow
    } else {
      return parse_error("unknown header key '" + key + "'");
    }
  }
  if (!saw_horizon || cfg.horizon_s <= 0.0) {
    return parse_error("missing or non-positive horizon");
  }

  // ---- entries ----
  while (pos < text.size()) {
    auto line = next_line();
    if (!line.ok()) {
      return line.error();
    }
    if (line->empty() || (*line)[0] == '#') {
      continue;
    }
    std::string tag;
    std::string rest;
    split_key(*line, &tag, &rest);
    if (tag != "S") {
      return parse_error("unknown entry tag '" + tag + "'");
    }
    std::string vt_str;
    std::string after_vt;
    split_key(rest, &vt_str, &after_vt);
    std::string id_str;
    std::string row;
    split_key(after_vt, &id_str, &row);
    auto vt = parse_hexfloat(vt_str);
    if (!vt.ok()) {
      return vt.error();
    }
    auto id = parse_ull(id_str);
    if (!id.ok()) {
      return id.error();
    }
    if (row.empty()) {
      return parse_error("malformed submission entry");
    }
    out.submissions.push_back(
        {*vt, static_cast<uint64_t>(*id), std::move(row)});
  }
  return out;
}

util::Result<JournalSession> load_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Error{util::ErrorCode::kIoError,
                       "cannot open journal '" + path + "'"};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_journal(buf.str());
}

util::Result<std::vector<workload::JobSpec>> journal_trace(
    const JournalSession& journal) {
  std::vector<workload::JobSpec> trace;
  if (!journal.session.base_trace_csv.empty()) {
    auto base = workload::trace_from_csv(journal.session.base_trace_csv);
    if (!base.ok()) {
      return base.error();
    }
    trace = std::move(base).value();
  }
  trace.reserve(trace.size() + journal.submissions.size());
  for (const auto& entry : journal.submissions) {
    auto spec = workload::job_from_csv_row(entry.csv_row);
    if (!spec.ok()) {
      return spec.error();
    }
    spec->id = entry.job_id;
    spec->submit_time = entry.virtual_time;
    trace.push_back(std::move(*spec));
  }
  return trace;
}

util::Result<sim::ExperimentReport> replay_journal(
    const JournalSession& journal) {
  auto trace = journal_trace(journal);
  if (!trace.ok()) {
    return trace.error();
  }
  return sim::run_experiment(journal.session.policy, *trace,
                             journal.session.config);
}

util::Result<sim::ExperimentReport> replay_journal_file(
    const std::string& path) {
  auto journal = load_journal(path);
  if (!journal.ok()) {
    return journal.error();
  }
  return replay_journal(*journal);
}

}  // namespace coda::service
