#include "service/journal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

#include "util/strings.h"
#include "workload/trace_io.h"

namespace coda::service {

namespace {

constexpr const char* kMagic = "CODA_JOURNAL";
constexpr const char* kVersionV1 = "v1";
constexpr const char* kVersionV2 = "v2";

// Every ExperimentConfig field outside the nine legacy header keys, as
// `config.<name>` lines. This X-macro is the single source of truth for
// the v2 config block: the writer and the parser both expand it, so the
// two can never enumerate different field sets. When a config struct
// grows a field, add it here AND to experiment_cache_key in
// sim/report_cache.cpp — tests/config_coverage_test.cpp's sizeof
// tripwires fail the build until both are updated.
//
// X(key, member) where `member` is a path inside sim::ExperimentConfig;
// the member's type picks the wire encoding (hexfloat double, int,
// 0/1 bool, u64, or the allocator SearchMode enum integer).
#define CODA_JOURNAL_V2_FIELDS(X)                                            \
  X("config.cluster.node.cores", engine.cluster.node.cores)                  \
  X("config.cluster.node.gpus", engine.cluster.node.gpus)                    \
  X("config.cluster.node.mem_bw_gbps", engine.cluster.node.mem_bw_gbps)     \
  X("config.cluster.node.pcie_gbps", engine.cluster.node.pcie_gbps)         \
  X("config.cluster.node.llc_mb", engine.cluster.node.llc_mb)               \
  X("config.cluster.node.mba_capable", engine.cluster.node.mba_capable)     \
  X("config.cluster.mba_fraction", engine.cluster.mba_fraction)             \
  X("config.cluster.cpu_only_nodes", engine.cluster.cpu_only_node_count)    \
  X("config.cluster.cpu_only_node.cores", engine.cluster.cpu_only_node.cores) \
  X("config.cluster.cpu_only_node.gpus", engine.cluster.cpu_only_node.gpus) \
  X("config.cluster.cpu_only_node.mem_bw_gbps",                             \
    engine.cluster.cpu_only_node.mem_bw_gbps)                               \
  X("config.cluster.cpu_only_node.pcie_gbps",                               \
    engine.cluster.cpu_only_node.pcie_gbps)                                 \
  X("config.cluster.cpu_only_node.llc_mb",                                  \
    engine.cluster.cpu_only_node.llc_mb)                                    \
  X("config.cluster.cpu_only_node.mba_capable",                             \
    engine.cluster.cpu_only_node.mba_capable)                               \
  X("config.engine.record_events", engine.record_events)                    \
  X("config.engine.incremental_recompute", engine.incremental_recompute)    \
  X("config.retry.enabled", retry.enabled)                                  \
  X("config.retry.backoff_base_s", retry.backoff_base_s)                    \
  X("config.retry.backoff_max_s", retry.backoff_max_s)                      \
  X("config.retry.max_retries", retry.max_retries)                          \
  X("config.failures.node_mtbf_s", failures.node_mtbf_s)                    \
  X("config.failures.outage_s", failures.outage_s)                          \
  X("config.failures.seed", failures.seed)                                  \
  X("config.coda.allocator.search_mode", coda.allocator.search_mode)        \
  X("config.coda.allocator.profile_step_s", coda.allocator.profile_step_s)  \
  X("config.coda.allocator.max_profile_steps",                              \
    coda.allocator.max_profile_steps)                                       \
  X("config.coda.allocator.improvement_eps",                                \
    coda.allocator.improvement_eps)                                         \
  X("config.coda.allocator.plateau_util", coda.allocator.plateau_util)      \
  X("config.coda.allocator.min_cores", coda.allocator.min_cores)            \
  X("config.coda.allocator.max_cores", coda.allocator.max_cores)            \
  X("config.coda.eliminator.enabled", coda.eliminator.enabled)              \
  X("config.coda.eliminator.check_period_s", coda.eliminator.check_period_s) \
  X("config.coda.eliminator.bw_threshold", coda.eliminator.bw_threshold)    \
  X("config.coda.eliminator.util_drop_tolerance",                           \
    coda.eliminator.util_drop_tolerance)                                    \
  X("config.coda.eliminator.mba_throttle_factor",                           \
    coda.eliminator.mba_throttle_factor)                                    \
  X("config.coda.eliminator.release_when_calm",                             \
    coda.eliminator.release_when_calm)                                      \
  X("config.coda.eliminator.release_threshold",                             \
    coda.eliminator.release_threshold)                                      \
  X("config.coda.reserved_cores_per_node", coda.reserved_cores_per_node)    \
  X("config.coda.four_gpu_node_fraction", coda.four_gpu_node_fraction)      \
  X("config.coda.reservation_update_period_s",                              \
    coda.reservation_update_period_s)                                       \
  X("config.coda.multi_array_enabled", coda.multi_array_enabled)            \
  X("config.coda.cpu_preemption_enabled", coda.cpu_preemption_enabled)      \
  X("config.coda.static_bw_cap_gbps", coda.static_bw_cap_gbps)

constexpr size_t kV2FieldCount = 0
#define CODA_COUNT_FIELD(key, member) +1
    CODA_JOURNAL_V2_FIELDS(CODA_COUNT_FIELD)
#undef CODA_COUNT_FIELD
    ;

util::Error io_error(const std::string& path, const char* what) {
  return util::Error{util::ErrorCode::kIoError,
                     util::strfmt("journal '%s': %s (%s)", path.c_str(), what,
                                  std::strerror(errno))};
}

util::Error parse_error(const std::string& what) {
  return util::Error{util::ErrorCode::kParseError, "journal: " + what};
}

// Splits one line into "key" and "rest" on the first space.
void split_key(const std::string& line, std::string* key, std::string* rest) {
  const size_t sp = line.find(' ');
  if (sp == std::string::npos) {
    *key = line;
    rest->clear();
  } else {
    *key = line.substr(0, sp);
    *rest = line.substr(sp + 1);
  }
}

util::Result<double> parse_hexfloat(const std::string& s) {
  if (s.empty()) {
    return parse_error("empty number");
  }
  // Same endptr/ERANGE discipline as workload/trace_io: errno must be
  // cleared first (strtod only sets it), and an out-of-range value is an
  // error — "1e999" parsing as HUGE_VAL would silently replay a different
  // session instead of failing loudly.
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return parse_error("'" + s + "' is not a number");
  }
  if (errno == ERANGE) {
    return parse_error("'" + s + "' is out of range");
  }
  return v;
}

util::Result<long long> parse_ll(const std::string& s) {
  if (s.empty()) {
    return parse_error("empty integer");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) {
    return parse_error("'" + s + "' is not an integer");
  }
  return v;
}

// Full-u64-range parser: noise_seed and job ids are written with %llu, so
// values >= 2^63 must round-trip (strtoll would reject them with ERANGE).
util::Result<unsigned long long> parse_ull(const std::string& s) {
  // strtoull silently wraps negative input, so reject it up front.
  if (s.empty() || s[0] == '-') {
    return parse_error("'" + s + "' is not an unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) {
    return parse_error("'" + s + "' is not an unsigned integer");
  }
  return v;
}

util::Result<sim::Policy> policy_from_string(const std::string& name) {
  for (sim::Policy p :
       {sim::Policy::kFifo, sim::Policy::kDrf, sim::Policy::kCoda}) {
    if (name == sim::to_string(p)) {
      return p;
    }
  }
  return parse_error("unknown policy '" + name + "'");
}

// ---- config.* wire encoding, one overload pair per member type ----

std::string format_value(double v) { return util::strfmt("%a", v); }
std::string format_value(int v) { return util::strfmt("%d", v); }
std::string format_value(bool v) { return v ? "1" : "0"; }
std::string format_value(uint64_t v) {
  return util::strfmt("%llu", static_cast<unsigned long long>(v));
}
std::string format_value(core::SearchMode v) {
  return format_value(static_cast<int>(v));
}

util::Status assign_value(const std::string& key, const std::string& s,
                          double* out) {
  auto v = parse_hexfloat(s);
  if (!v.ok()) {
    return parse_error("bad value for '" + key + "': " +
                       v.error().message);
  }
  *out = *v;
  return util::Status::Ok();
}

util::Status assign_value(const std::string& key, const std::string& s,
                          int* out) {
  auto v = parse_ll(s);
  if (!v.ok() || *v < std::numeric_limits<int>::min() ||
      *v > std::numeric_limits<int>::max()) {
    return parse_error("bad value for '" + key + "': '" + s +
                       "' is not an int");
  }
  *out = static_cast<int>(*v);
  return util::Status::Ok();
}

util::Status assign_value(const std::string& key, const std::string& s,
                          bool* out) {
  if (s == "0") {
    *out = false;
  } else if (s == "1") {
    *out = true;
  } else {
    return parse_error("bad value for '" + key + "': '" + s +
                       "' is not 0 or 1");
  }
  return util::Status::Ok();
}

util::Status assign_value(const std::string& key, const std::string& s,
                          uint64_t* out) {
  auto v = parse_ull(s);
  if (!v.ok()) {
    return parse_error("bad value for '" + key + "': " +
                       v.error().message);
  }
  *out = static_cast<uint64_t>(*v);
  return util::Status::Ok();
}

util::Status assign_value(const std::string& key, const std::string& s,
                          core::SearchMode* out) {
  int raw = 0;
  if (auto status = assign_value(key, s, &raw); !status.ok()) {
    return status;
  }
  if (raw < static_cast<int>(core::SearchMode::kHillClimb) ||
      raw > static_cast<int>(core::SearchMode::kOneShot)) {
    return parse_error("bad value for '" + key + "': search mode " + s +
                       " out of range");
  }
  *out = static_cast<core::SearchMode>(raw);
  return util::Status::Ok();
}

// Dispatches one `config.<name> <value>` line into the ExperimentConfig.
// `seen` records which listed fields the header provided so the caller can
// reject a v2 header that omits any (or repeats one).
util::Status parse_config_field(const std::string& key,
                                const std::string& rest,
                                sim::ExperimentConfig* cfg,
                                std::set<std::string>* seen) {
#define CODA_PARSE_FIELD(wire_key, member)                   \
  if (key == wire_key) {                                     \
    if (!seen->insert(key).second) {                         \
      return parse_error("duplicate config key '" + key + "'"); \
    }                                                        \
    return assign_value(key, rest, &cfg->member);            \
  }
  CODA_JOURNAL_V2_FIELDS(CODA_PARSE_FIELD)
#undef CODA_PARSE_FIELD
  return parse_error("unknown config key '" + key + "'");
}

// The first listed field `seen` is missing, for the error message.
std::string first_missing_config_field(const std::set<std::string>& seen) {
#define CODA_CHECK_FIELD(wire_key, member)   \
  if (seen.count(wire_key) == 0) {           \
    return wire_key;                         \
  }
  CODA_JOURNAL_V2_FIELDS(CODA_CHECK_FIELD)
#undef CODA_CHECK_FIELD
  return std::string();
}

}  // namespace

JournalWriter::~JournalWriter() { close(); }

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : file_(other.file_), fsync_(other.fsync_) {
  other.file_ = nullptr;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    close();
    file_ = other.file_;
    fsync_ = other.fsync_;
    other.file_ = nullptr;
  }
  return *this;
}

void JournalWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::string serialize_session_header(const SessionSpec& session) {
  const auto& eng = session.config.engine;
  std::string header;
  header += util::strfmt("%s %s\n", kMagic, kVersionV2);
  header += util::strfmt("policy %s\n", sim::to_string(session.policy));
  header += util::strfmt("nodes %d\n", eng.cluster.node_count);
  header += util::strfmt("metrics_period %a\n", eng.metrics_period_s);
  header += util::strfmt("frag_min_cpus %d\n", eng.frag_min_cpus);
  header += util::strfmt("noise_stddev %a\n", eng.util_noise_stddev);
  header += util::strfmt("noise_seed %llu\n",
                         static_cast<unsigned long long>(eng.noise_seed));
  header += util::strfmt("horizon %a\n", session.config.horizon_s);
  header += util::strfmt("drain_slack %a\n", session.config.drain_slack_s);
  header += util::strfmt("speedup %a\n", session.speedup);
#define CODA_WRITE_FIELD(wire_key, member)                              \
  header += wire_key " " +                                              \
            format_value(session.config.member) + "\n";
  CODA_JOURNAL_V2_FIELDS(CODA_WRITE_FIELD)
#undef CODA_WRITE_FIELD
  header += util::strfmt("base_trace_bytes %zu\n",
                         session.base_trace_csv.size());
  header += session.base_trace_csv;
  return header;
}

util::Result<JournalWriter> JournalWriter::open(const std::string& path,
                                                const SessionSpec& session) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return io_error(path, "cannot open for write");
  }
  const std::string header = serialize_session_header(session);
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
      std::fflush(f) != 0) {
    std::fclose(f);
    return io_error(path, "header write failed");
  }
  JournalWriter writer;
  writer.file_ = f;
  return writer;
}

util::Result<JournalWriter> JournalWriter::open_append(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return io_error(path, "cannot open for append");
  }
  JournalWriter writer;
  writer.file_ = f;
  return writer;
}

std::string format_submit_entry(double virtual_time, uint64_t job_id,
                                const std::string& csv_row) {
  return util::strfmt("S %a %llu ", virtual_time,
                      static_cast<unsigned long long>(job_id)) +
         csv_row + "\n";
}

util::Status JournalWriter::append_submit(double virtual_time,
                                          uint64_t job_id,
                                          const std::string& csv_row) {
  if (file_ == nullptr) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       "journal is closed"};
  }
  const std::string line = format_submit_entry(virtual_time, job_id, csv_row);
  // Group commit: no fflush here — flush() covers the whole batch. A short
  // fwrite still poisons the journal so a later append cannot concatenate
  // onto a torn line and produce a file that parses to the wrong session.
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    close();
    return util::Error{util::ErrorCode::kIoError, "journal append failed"};
  }
  return util::Status::Ok();
}

util::Status JournalWriter::flush() {
  if (file_ == nullptr) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       "journal is closed"};
  }
  if (std::fflush(file_) != 0) {
    // Entries since the last good flush may be torn on disk; poison the
    // writer so the server stops acknowledging submissions.
    close();
    return util::Error{util::ErrorCode::kIoError, "journal flush failed"};
  }
  if (fsync_ && fsync(fileno(file_)) != 0) {
    close();
    return util::Error{util::ErrorCode::kIoError, "journal fsync failed"};
  }
  return util::Status::Ok();
}

void JournalWriter::note(const std::string& comment) {
  if (file_ == nullptr) {
    return;
  }
  std::string line = "# " + comment + "\n";
  (void)std::fwrite(line.data(), 1, line.size(), file_);
  (void)std::fflush(file_);
}

util::Result<JournalSession> parse_journal(const std::string& text) {
  JournalSession out;
  size_t pos = 0;
  auto next_line = [&]() -> util::Result<std::string> {
    if (pos >= text.size()) {
      return parse_error("unexpected end of file");
    }
    const size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      return parse_error("unterminated line");
    }
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };

  // ---- magic ----
  auto magic = next_line();
  if (!magic.ok()) {
    return magic.error();
  }
  bool is_v2 = false;
  if (*magic == std::string(kMagic) + " " + kVersionV2) {
    is_v2 = true;
  } else if (*magic != std::string(kMagic) + " " + kVersionV1) {
    return parse_error("bad magic/version line '" + *magic + "'");
  }

  // ---- header key/value lines, terminated by base_trace_bytes ----
  auto& cfg = out.session.config;
  bool saw_horizon = false;
  std::set<std::string> seen_config;
  while (true) {
    auto line = next_line();
    if (!line.ok()) {
      return line.error();
    }
    std::string key;
    std::string rest;
    split_key(*line, &key, &rest);
    if (key == "policy") {
      auto p = policy_from_string(rest);
      if (!p.ok()) {
        return p.error();
      }
      out.session.policy = *p;
    } else if (key == "nodes") {
      auto v = parse_ll(rest);
      if (!v.ok()) {
        return v.error();
      }
      cfg.engine.cluster.node_count = static_cast<int>(*v);
    } else if (key == "metrics_period") {
      auto v = parse_hexfloat(rest);
      if (!v.ok()) {
        return v.error();
      }
      cfg.engine.metrics_period_s = *v;
    } else if (key == "frag_min_cpus") {
      auto v = parse_ll(rest);
      if (!v.ok()) {
        return v.error();
      }
      cfg.engine.frag_min_cpus = static_cast<int>(*v);
    } else if (key == "noise_stddev") {
      auto v = parse_hexfloat(rest);
      if (!v.ok()) {
        return v.error();
      }
      cfg.engine.util_noise_stddev = *v;
    } else if (key == "noise_seed") {
      auto v = parse_ull(rest);
      if (!v.ok()) {
        return v.error();
      }
      cfg.engine.noise_seed = static_cast<uint64_t>(*v);
    } else if (key == "horizon") {
      auto v = parse_hexfloat(rest);
      if (!v.ok()) {
        return v.error();
      }
      cfg.horizon_s = *v;
      saw_horizon = true;
    } else if (key == "drain_slack") {
      auto v = parse_hexfloat(rest);
      if (!v.ok()) {
        return v.error();
      }
      cfg.drain_slack_s = *v;
    } else if (key == "speedup") {
      auto v = parse_hexfloat(rest);
      if (!v.ok()) {
        return v.error();
      }
      out.session.speedup = *v;
    } else if (is_v2 && key.compare(0, 7, "config.") == 0) {
      if (auto status = parse_config_field(key, rest, &cfg, &seen_config);
          !status.ok()) {
        return status.error();
      }
    } else if (key == "base_trace_bytes") {
      // A v2 header must provide every listed config field: a journal from
      // a *newer* writer would fail above on its unknown key, and one with
      // fields stripped (truncation, hand edits) must not silently replay
      // under defaults.
      if (is_v2 && seen_config.size() != kV2FieldCount) {
        return parse_error(util::strfmt(
            "v2 header has %zu of %zu config fields (first missing: %s)",
            seen_config.size(), kV2FieldCount,
            first_missing_config_field(seen_config).c_str()));
      }
      auto v = parse_ll(rest);
      if (!v.ok()) {
        return v.error();
      }
      const size_t n = static_cast<size_t>(*v);
      if (pos + n > text.size()) {
        return parse_error("truncated base trace");
      }
      out.session.base_trace_csv = text.substr(pos, n);
      pos += n;
      break;  // entries follow
    } else {
      return parse_error("unknown header key '" + key + "'");
    }
  }
  if (!saw_horizon || cfg.horizon_s <= 0.0) {
    return parse_error("missing or non-positive horizon");
  }

  // ---- entries ----
  while (pos < text.size()) {
    auto line = next_line();
    if (!line.ok()) {
      return line.error();
    }
    if (line->empty() || (*line)[0] == '#') {
      continue;
    }
    std::string tag;
    std::string rest;
    split_key(*line, &tag, &rest);
    if (tag != "S") {
      return parse_error("unknown entry tag '" + tag + "'");
    }
    std::string vt_str;
    std::string after_vt;
    split_key(rest, &vt_str, &after_vt);
    std::string id_str;
    std::string row;
    split_key(after_vt, &id_str, &row);
    auto vt = parse_hexfloat(vt_str);
    if (!vt.ok()) {
      return vt.error();
    }
    auto id = parse_ull(id_str);
    if (!id.ok()) {
      return id.error();
    }
    if (row.empty()) {
      return parse_error("malformed submission entry");
    }
    out.submissions.push_back(
        {*vt, static_cast<uint64_t>(*id), std::move(row)});
  }
  return out;
}

util::Result<JournalSession> load_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Error{util::ErrorCode::kIoError,
                       "cannot open journal '" + path + "'"};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_journal(buf.str());
}

util::Result<std::vector<workload::JobSpec>> journal_trace(
    const JournalSession& journal) {
  std::vector<workload::JobSpec> trace;
  if (!journal.session.base_trace_csv.empty()) {
    auto base = workload::trace_from_csv(journal.session.base_trace_csv);
    if (!base.ok()) {
      return base.error();
    }
    trace = std::move(base).value();
  }
  trace.reserve(trace.size() + journal.submissions.size());
  for (const auto& entry : journal.submissions) {
    auto spec = workload::job_from_csv_row(entry.csv_row);
    if (!spec.ok()) {
      return spec.error();
    }
    spec->id = entry.job_id;
    spec->submit_time = entry.virtual_time;
    trace.push_back(std::move(*spec));
  }
  return trace;
}

util::Result<sim::ExperimentReport> replay_journal(
    const JournalSession& journal) {
  auto trace = journal_trace(journal);
  if (!trace.ok()) {
    return trace.error();
  }
  return sim::run_experiment(journal.session.policy, *trace,
                             journal.session.config);
}

util::Result<sim::ExperimentReport> replay_journal_file(
    const std::string& path) {
  auto journal = load_journal(path);
  if (!journal.ok()) {
    return journal.error();
  }
  return replay_journal(*journal);
}

}  // namespace coda::service
