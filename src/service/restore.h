// Service-side snapshot restore: glue between the opaque state/snapshot
// container and the journal format the daemon embeds in it.
//
// A SNAPSHOT captures the shard's full live state plus a `session_text`
// blob — a complete journal (header + every accepted S-line) covering
// every job the state references — and then truncates the on-disk journal
// back to its header. Restoring therefore has two inputs:
//
//   1. the snapshot file: parsed here via service::parse_journal into the
//      session's policy/config/trace, then handed to state::restore_session
//      which rebuilds the engine, scheduler, RNG streams, clock and event
//      queue bit-for-bit;
//   2. the truncated journal's tail: S-lines accepted *after* the snapshot,
//      re-injected at their exact recorded virtual times (every journaled
//      instant is strictly after all dispatched events — the same argument
//      that makes full-journal replay byte-identical).
//
// The result resumes exactly where the uninterrupted session would be: the
// drained report is byte-identical, whether the resume happens inside a
// restarted codad (--restore) or offline (coda_cli replay --snapshot).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "service/journal.h"
#include "sim/experiment.h"
#include "state/snapshot.h"
#include "util/result.h"

namespace coda::service {

// A shard session rebuilt from a snapshot plus its journal tail, ready to
// keep serving (codad --restore) or to finish offline (replay).
struct RestoredShard {
  // Scheduler before engine: the engine holds a pointer into the scheduler
  // and must be destroyed first.
  sim::PolicyScheduler scheduler;
  std::unique_ptr<sim::ClusterEngine> engine;
  SessionSpec session;          // parsed from the embedded journal header
  std::string session_text;     // embedded journal + re-appended tail lines
  size_t base_jobs = 0;         // jobs in the embedded base trace
  uint64_t accepted_submits = 0;  // snapshot's count + journal-tail entries
  uint64_t next_auto_id = 1;
  uint64_t snapshot_seq = 0;
  double resume_vt = 0.0;       // virtual clock at the snapshot
};

// Loads `snapshot_path`, rebuilds the session, then (when `journal_path` is
// non-empty) injects the journal's post-snapshot tail. Fails loudly on a
// tail entry at or before the snapshot instant — that means the journal
// and snapshot are from different truncation epochs, and replaying it
// would double-inject a job.
util::Result<RestoredShard> restore_shard(const std::string& snapshot_path,
                                          const std::string& journal_path);

// restore_shard + run the session to its horizon and drain, returning the
// final report — byte-identical to the uninterrupted session's (and to a
// full-journal replay's), but starting from the snapshot instant instead
// of virtual time zero.
util::Result<sim::ExperimentReport> replay_from_snapshot(
    const std::string& snapshot_path, const std::string& journal_path);

}  // namespace coda::service
