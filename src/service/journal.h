// Deterministic command journal: the daemon's write-ahead record of every
// accepted state-changing command, sufficient to re-execute the whole live
// session offline and reproduce its ExperimentReport byte-identically.
//
// Format (line-oriented text):
//
//   CODA_JOURNAL v1
//   policy <FIFO|DRF|CODA>
//   nodes <int>
//   metrics_period <hexfloat>
//   frag_min_cpus <int>
//   noise_stddev <hexfloat>
//   noise_seed <u64>
//   horizon <hexfloat>
//   drain_slack <hexfloat>
//   speedup <hexfloat>
//   base_trace_bytes <N>
//   <N raw bytes: the base trace CSV exactly as the daemon parsed it>
//   S <hexfloat virtual-time> <job-id> <raw SUBMIT csv row>
//   ...
//   # free-form comment lines are ignored
//
// Two invariants make replay exact:
//  1. Text is the source of truth. The daemon parses the base trace and
//     every SUBMIT row from text and journals that text verbatim; replay
//     parses the same bytes through the same parser, so no double ever
//     round-trips through a lossy re-serialization.
//  2. Injection instants are exact. Virtual times are hexfloats, so the
//     replay injects at bit-identical times, and the paced server only
//     injects at fully-caught-up instants (see server.cpp), which makes
//     pre-posted replay arrivals dispatch in the same order.
//
// v1 scope: scheduler/retry/failure knobs beyond the header fields are the
// library defaults; the version gate recomputes nothing silently — a future
// field change must bump v1.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "util/result.h"
#include "workload/job.h"

namespace coda::service {

// Everything needed to re-run a session offline.
struct SessionSpec {
  sim::Policy policy = sim::Policy::kCoda;
  sim::ExperimentConfig config;   // horizon_s must be resolved (> 0)
  double speedup = 3600.0;        // sim-seconds per wall-second (pacing)
  std::string base_trace_csv;     // verbatim CSV text (may be empty)
};

struct JournalEntry {
  double virtual_time = 0.0;      // injection instant
  uint64_t job_id = 0;            // id assigned by the daemon
  std::string csv_row;            // the SUBMIT row, verbatim
};

struct JournalSession {
  SessionSpec session;
  std::vector<JournalEntry> submissions;
};

// Append-only journal writer with group commit: append_submit() buffers
// (libc stream buffer, no syscall-per-append), flush() forces everything
// buffered to the OS once per drained command batch. The serving loop
// replies to a SUBMIT only after the flush that covers it, so a crashed
// daemon leaves a replayable prefix of exactly the acknowledged entries.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // Creates/truncates `path` and writes the session header (flushed).
  static util::Result<JournalWriter> open(const std::string& path,
                                          const SessionSpec& session);

  // Buffers one submission entry; durable only after the next flush().
  // A short write poisons the writer (no appends after a torn line).
  util::Status append_submit(double virtual_time, uint64_t job_id,
                             const std::string& csv_row);
  // Group commit: pushes every buffered append to the OS. A failure
  // poisons the writer — entries buffered since the last successful flush
  // must be treated as lost.
  util::Status flush();
  // Appends a '#' comment line (ignored by the parser), flushed.
  void note(const std::string& comment);
  void close();
  bool is_open() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
};

// Parses a journal file (header, base trace, submissions).
util::Result<JournalSession> load_journal(const std::string& path);
util::Result<JournalSession> parse_journal(const std::string& text);

// Builds the combined trace a replay feeds the engine: base trace first
// (submit order preserved), then each journaled submission with its id and
// exact virtual-time submit instant.
util::Result<std::vector<workload::JobSpec>> journal_trace(
    const JournalSession& journal);

// Re-executes the session offline through sim::run_experiment. For any
// journal produced by a live codad session, the returned report serializes
// byte-identically to the report the daemon wrote at drain.
util::Result<sim::ExperimentReport> replay_journal(
    const JournalSession& journal);
util::Result<sim::ExperimentReport> replay_journal_file(
    const std::string& path);

}  // namespace coda::service
