// Deterministic command journal: the daemon's write-ahead record of every
// accepted state-changing command, sufficient to re-execute the whole live
// session offline and reproduce its ExperimentReport byte-identically.
//
// Format (line-oriented text):
//
//   CODA_JOURNAL v2
//   policy <FIFO|DRF|CODA>
//   nodes <int>
//   metrics_period <hexfloat>
//   frag_min_cpus <int>
//   noise_stddev <hexfloat>
//   noise_seed <u64>
//   horizon <hexfloat>
//   drain_slack <hexfloat>
//   speedup <hexfloat>
//   config.<field> <value>        (one line per remaining config field)
//   ...
//   base_trace_bytes <N>
//   <N raw bytes: the base trace CSV exactly as the daemon parsed it>
//   S <hexfloat virtual-time> <job-id> <raw SUBMIT csv row>
//   ...
//   # free-form comment lines are ignored
//
// The `config.` block records every sim::ExperimentConfig field the nine
// legacy keys above don't cover: the full cluster node shape (incl.
// CPU-only nodes and the MBA fraction), record_events /
// incremental_recompute, sched::RetryPolicy, sim::FailureConfig and every
// core::CodaConfig / AllocatorConfig / EliminatorConfig knob. Doubles are
// hexfloats, bools are 0/1, the allocator search mode is its enum integer.
// The single source of truth for the block is the CODA_JOURNAL_V2_FIELDS
// X-macro in journal.cpp: writer and parser expand the same list, the v2
// parser rejects unknown `config.*` keys AND headers missing any listed
// field, and tests/config_coverage_test.cpp trips at compile time when a
// config struct grows a field the list (or the report cache key) doesn't
// enumerate — a knob can never be dropped silently again.
//
// Three invariants make replay exact:
//  1. Text is the source of truth. The daemon parses the base trace and
//     every SUBMIT row from text and journals that text verbatim; replay
//     parses the same bytes through the same parser, so no double ever
//     round-trips through a lossy re-serialization.
//  2. Injection instants are exact. Virtual times are hexfloats, so the
//     replay injects at bit-identical times, and the paced server only
//     injects at fully-caught-up instants (see server.cpp), which makes
//     pre-posted replay arrivals dispatch in the same order.
//  3. The header is the complete ExperimentConfig. A codad started with a
//     non-default retry policy, failure injection, or any CodaConfig
//     ablation replays under exactly those knobs (failure outages are
//     pre-posted by the shared sim::schedule_failures in both paths).
//
// Backward compatibility: v1 files (which recorded only the nine legacy
// keys) still parse; every config field takes its library default, which
// is exactly what the v1 daemon ran with.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "util/result.h"
#include "workload/job.h"

namespace coda::service {

// Everything needed to re-run a session offline.
struct SessionSpec {
  sim::Policy policy = sim::Policy::kCoda;
  sim::ExperimentConfig config;   // horizon_s must be resolved (> 0)
  double speedup = 3600.0;        // sim-seconds per wall-second (pacing)
  std::string base_trace_csv;     // verbatim CSV text (may be empty)
};

struct JournalEntry {
  double virtual_time = 0.0;      // injection instant
  uint64_t job_id = 0;            // id assigned by the daemon
  std::string csv_row;            // the SUBMIT row, verbatim
};

struct JournalSession {
  SessionSpec session;
  std::vector<JournalEntry> submissions;
};

// Append-only journal writer with group commit: append_submit() buffers
// (libc stream buffer, no syscall-per-append), flush() forces everything
// buffered to the OS once per drained command batch. The serving loop
// replies to a SUBMIT only after the flush that covers it, so a crashed
// daemon leaves a replayable prefix of exactly the acknowledged entries.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // Creates/truncates `path` and writes the session header (flushed).
  static util::Result<JournalWriter> open(const std::string& path,
                                          const SessionSpec& session);

  // Opens an existing journal for appending without touching its contents.
  // Used on --restore: the truncated journal already carries the header and
  // the post-snapshot tail; the resumed daemon keeps appending to it.
  static util::Result<JournalWriter> open_append(const std::string& path);

  // Buffers one submission entry; durable only after the next flush().
  // A short write poisons the writer (no appends after a torn line).
  util::Status append_submit(double virtual_time, uint64_t job_id,
                             const std::string& csv_row);
  // Group commit: pushes every buffered append to the OS. A failure
  // poisons the writer — entries buffered since the last successful flush
  // must be treated as lost.
  util::Status flush();
  // Appends a '#' comment line (ignored by the parser), flushed.
  void note(const std::string& comment);
  void close();
  bool is_open() const { return file_ != nullptr; }

  // When enabled, every successful flush() also fsyncs the file descriptor
  // (--journal-fsync): an acknowledged SUBMIT survives power loss, not just
  // a daemon crash. Off by default — fflush-to-OS matches the v1 behavior.
  void set_fsync(bool enabled) { fsync_ = enabled; }
  bool fsync_enabled() const { return fsync_; }

  // Current journal size in bytes (header + appends, buffered included);
  // 0 when closed. Drives --snapshot-journal-mb auto-compaction.
  uint64_t bytes() const {
    if (file_ == nullptr) {
      return 0;
    }
    const long pos = std::ftell(file_);
    return pos > 0 ? static_cast<uint64_t>(pos) : 0;
  }

 private:
  std::FILE* file_ = nullptr;
  bool fsync_ = false;
};

// The exact v2 header text JournalWriter::open writes for `session`
// (magic through the base trace bytes). Exposed so tests can assert the
// round trip without a file: parse_journal(serialize_session_header(s))
// must reproduce every config field bit-for-bit.
std::string serialize_session_header(const SessionSpec& session);

// The exact one-line text append_submit writes for an entry, '\n' included.
// The server accumulates these to build the session blob a SNAPSHOT embeds
// (header + every accepted entry), so the embedded text is byte-identical
// to what an untruncated journal would contain.
std::string format_submit_entry(double virtual_time, uint64_t job_id,
                                const std::string& csv_row);

// Parses a journal file (header, base trace, submissions). Accepts v2 and,
// for journals from the previous release, v1 (config fields default).
util::Result<JournalSession> load_journal(const std::string& path);
util::Result<JournalSession> parse_journal(const std::string& text);

// Builds the combined trace a replay feeds the engine: base trace first
// (submit order preserved), then each journaled submission with its id and
// exact virtual-time submit instant.
util::Result<std::vector<workload::JobSpec>> journal_trace(
    const JournalSession& journal);

// Re-executes the session offline through sim::run_experiment. For any
// journal produced by a live codad session, the returned report serializes
// byte-identically to the report the daemon wrote at drain.
util::Result<sim::ExperimentReport> replay_journal(
    const JournalSession& journal);
util::Result<sim::ExperimentReport> replay_journal_file(
    const std::string& path);

}  // namespace coda::service
