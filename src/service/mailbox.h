// Bounded MPSC mailbox between the service I/O threads and the single
// engine thread.
//
// Producers (connection threads) try_push accepted commands; the one
// consumer (the engine thread) drains the whole queue between simulation
// events. The bound is the admission queue: when it is full, try_push fails
// and the connection answers `BUSY retry-after-ms=...` without ever touching
// the simulator — explicit backpressure instead of unbounded buffering.
//
// Ordering guarantee: drain order is push order (single FIFO under one
// mutex). Commands from one connection therefore execute in the order the
// client sent them; commands from different connections interleave in
// arrival order, which is also the order the journal records.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace coda::service {

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(size_t capacity) : capacity_(capacity) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  // Enqueues `item` unless the mailbox is full or closed. Returns whether
  // the item was accepted; wakes the consumer on success.
  bool try_push(T item) {
    bool was_empty = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      was_empty = items_.empty();
      items_.push_back(std::move(item));
    }
    // The consumer only sleeps when the queue is empty, so a push onto a
    // non-empty queue has nobody to wake.
    if (was_empty) {
      cv_.notify_one();
    }
    return true;
  }

  // Moves a prefix of `items` in under ONE lock acquisition and at most one
  // consumer wakeup — the producer-side half of batch processing. Returns
  // how many items were accepted (less than items->size() when the bound or
  // a close cuts the batch short); accepted items are left moved-from.
  size_t try_push_batch(std::vector<T>* items) {
    if (items->empty()) {
      return 0;
    }
    size_t accepted = 0;
    bool was_empty = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return 0;
      }
      was_empty = items_.empty();
      while (accepted < items->size() && items_.size() < capacity_) {
        items_.push_back(std::move((*items)[accepted]));
        ++accepted;
      }
    }
    if (was_empty && accepted > 0) {
      cv_.notify_one();
    }
    return accepted;
  }

  // Moves every queued item into `out` (appended). Non-blocking.
  size_t drain(std::vector<T>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    return drain_locked(out);
  }

  // Blocks until the mailbox is non-empty, closed, or `deadline` passes,
  // then drains. Returns the number of items appended to `out`.
  size_t drain_until(std::vector<T>* out,
                     std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_until(lock, deadline,
                   [this] { return closed_ || !items_.empty(); });
    return drain_locked(out);
  }

  // Closes the mailbox: subsequent try_push fails and blocked consumers
  // wake. Already-queued items stay drainable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  size_t drain_locked(std::vector<T>* out) {
    const size_t n = items_.size();
    for (auto& item : items_) {
      out->push_back(std::move(item));
    }
    items_.clear();
    return n;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace coda::service
