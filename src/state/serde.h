// Line-oriented, deterministic text (de)serialization primitives for the
// snapshot subsystem (src/state).
//
// Format conventions (shared with the service journal): one record per
// '\n'-terminated line, a leading key token followed by space-separated
// value tokens; doubles as C hexfloats ("%a" — bit-exact round trips),
// bools as 0/1, integers in decimal. Writer and Reader are symmetric: a
// section written as a sequence of line() calls reads back as the same
// sequence of expect()/value calls, and any mismatch (wrong key, missing
// token, malformed number) poisons the Reader with a line-numbered error
// instead of propagating garbage into a restored engine.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

#include "util/result.h"

namespace coda::state {

class Writer {
 public:
  // Appends `key` followed by each value as a space-separated token and a
  // terminating newline. Value types: floating point -> hexfloat, bool ->
  // 0/1, signed/unsigned integers -> decimal, string-ish -> verbatim token
  // (must not contain whitespace or newlines).
  template <typename... Ts>
  void line(std::string_view key, Ts&&... values) {
    out_.append(key.data(), key.size());
    (put(std::forward<Ts>(values)), ...);
    out_.push_back('\n');
  }

  // Appends raw bytes verbatim (length-prefixed blobs; the caller writes
  // the length on its own line first).
  void raw(std::string_view bytes) { out_.append(bytes.data(), bytes.size()); }

  const std::string& text() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void put_f64(double v);
  void put_u64(uint64_t v);
  void put_i64(int64_t v);
  void put_token(std::string_view token);

  template <typename T>
  void put(T&& v) {
    using D = std::decay_t<T>;
    if constexpr (std::is_same_v<D, bool>) {
      put_u64(v ? 1 : 0);
    } else if constexpr (std::is_floating_point_v<D>) {
      put_f64(static_cast<double>(v));
    } else if constexpr (std::is_enum_v<D>) {
      put_i64(static_cast<int64_t>(v));
    } else if constexpr (std::is_integral_v<D> && std::is_unsigned_v<D>) {
      put_u64(static_cast<uint64_t>(v));
    } else if constexpr (std::is_integral_v<D>) {
      put_i64(static_cast<int64_t>(v));
    } else {
      put_token(std::string_view(v));
    }
  }

  std::string out_;
};

// Sticky-error token reader over a serialized text. Usage:
//
//   Reader r(text);
//   if (!r.expect("magic")) ...            // next line, key must match
//   uint64_t n = r.u64();                  // next token on the line
//   for (size_t i = 0; i < n && r.ok(); ++i) { ... }
//   if (auto st = r.status(); !st.ok()) return st.error();
//
// After the first failure every getter returns a zero value and ok() is
// false; status() carries the first error with its line number. Loops must
// therefore guard on ok() — a corrupt count cannot spin them forever.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  // Advances to the next non-empty line; false at end of input (not an
  // error — callers that require a line use expect()).
  bool next();
  // next() + requires the line's key to equal `key`; poisons on mismatch
  // or end of input. Returns ok().
  bool expect(std::string_view key);
  std::string_view key() const { return key_; }

  // Next whitespace-separated value token on the current line. Missing or
  // malformed tokens poison the reader and return zero values.
  double f64();
  uint64_t u64();
  int64_t i64();
  int i32() { return static_cast<int>(i64()); }
  bool b();
  std::string_view token();

  // Consumes exactly `n` raw bytes starting right after the current line's
  // newline (length-prefixed blob payload). Poisons on truncated input.
  std::string_view bytes(size_t n);

  bool ok() const { return !failed_; }
  util::Status status() const;
  size_t line_number() const { return line_no_; }

  // Unconsumed tail of the input (everything after the current line). The
  // snapshot container uses it to split one file into independently parsed
  // sections without copying the text up front.
  std::string_view remainder() const { return text_.substr(pos_); }

  // Records an external validation failure at the current line (e.g. an
  // unknown job id) through the same sticky-error channel.
  void fail(const std::string& message);

 private:
  std::string_view text_;
  size_t pos_ = 0;        // start of the unconsumed remainder
  std::string_view key_;  // first token of the current line
  std::string_view rest_; // unconsumed value tokens of the current line
  size_t line_no_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace coda::state
