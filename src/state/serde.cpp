#include "state/serde.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace coda::state {

namespace {

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }

std::string_view strip(std::string_view s) {
  while (!s.empty() && is_space(s.front())) {
    s.remove_prefix(1);
  }
  while (!s.empty() && is_space(s.back())) {
    s.remove_suffix(1);
  }
  return s;
}

// Pops the next whitespace-separated token off `*rest`; empty view when the
// line is exhausted.
std::string_view pop_token(std::string_view* rest) {
  std::string_view s = *rest;
  while (!s.empty() && is_space(s.front())) {
    s.remove_prefix(1);
  }
  size_t end = 0;
  while (end < s.size() && !is_space(s[end])) {
    ++end;
  }
  *rest = s.substr(end);
  return s.substr(0, end);
}

// The strto* family needs NUL-terminated input; tokens are short, so a
// stack copy is cheap and keeps the Reader zero-copy elsewhere.
constexpr size_t kMaxNumToken = 63;

bool copy_token(std::string_view token, char* buf) {
  if (token.empty() || token.size() > kMaxNumToken) {
    return false;
  }
  for (size_t i = 0; i < token.size(); ++i) {
    buf[i] = token[i];
  }
  buf[token.size()] = '\0';
  return true;
}

bool parse_f64(std::string_view token, double* out) {
  char buf[kMaxNumToken + 1];
  if (!copy_token(token, buf)) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  if (end != buf + token.size() || errno == ERANGE) {
    return false;
  }
  *out = value;
  return true;
}

bool parse_u64(std::string_view token, uint64_t* out) {
  char buf[kMaxNumToken + 1];
  if (!copy_token(token, buf) || token[0] == '-' || token[0] == '+') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(buf, &end, 10);
  if (end != buf + token.size() || errno == ERANGE) {
    return false;
  }
  *out = static_cast<uint64_t>(value);
  return true;
}

bool parse_i64(std::string_view token, int64_t* out) {
  char buf[kMaxNumToken + 1];
  if (!copy_token(token, buf)) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf, &end, 10);
  if (end != buf + token.size() || errno == ERANGE) {
    return false;
  }
  *out = static_cast<int64_t>(value);
  return true;
}

}  // namespace

void Writer::put_f64(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %a", v);
  out_.append(buf);
}

void Writer::put_u64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %llu",
                static_cast<unsigned long long>(v));
  out_.append(buf);
}

void Writer::put_i64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %lld", static_cast<long long>(v));
  out_.append(buf);
}

void Writer::put_token(std::string_view token) {
  out_.push_back(' ');
  out_.append(token.data(), token.size());
}

bool Reader::next() {
  if (failed_) {
    return false;
  }
  while (pos_ < text_.size()) {
    const size_t eol = text_.find('\n', pos_);
    const size_t end = eol == std::string_view::npos ? text_.size() : eol;
    std::string_view line = strip(text_.substr(pos_, end - pos_));
    pos_ = eol == std::string_view::npos ? text_.size() : eol + 1;
    ++line_no_;
    if (line.empty()) {
      continue;
    }
    rest_ = line;
    key_ = pop_token(&rest_);
    return true;
  }
  key_ = std::string_view();
  rest_ = std::string_view();
  return false;
}

bool Reader::expect(std::string_view key) {
  if (!next()) {
    if (!failed_) {
      fail("unexpected end of input; expected '" + std::string(key) + "'");
    }
    return false;
  }
  if (key_ != key) {
    fail("expected key '" + std::string(key) + "', got '" +
         std::string(key_) + "'");
    return false;
  }
  return true;
}

double Reader::f64() {
  double value = 0.0;
  const std::string_view tok = token();
  if (!failed_ && !parse_f64(tok, &value)) {
    fail("bad float token '" + std::string(tok) + "'");
    return 0.0;
  }
  return value;
}

uint64_t Reader::u64() {
  uint64_t value = 0;
  const std::string_view tok = token();
  if (!failed_ && !parse_u64(tok, &value)) {
    fail("bad unsigned token '" + std::string(tok) + "'");
    return 0;
  }
  return value;
}

int64_t Reader::i64() {
  int64_t value = 0;
  const std::string_view tok = token();
  if (!failed_ && !parse_i64(tok, &value)) {
    fail("bad integer token '" + std::string(tok) + "'");
    return 0;
  }
  return value;
}

bool Reader::b() {
  const uint64_t value = u64();
  if (!failed_ && value > 1) {
    fail("bad bool token (want 0/1)");
    return false;
  }
  return value != 0;
}

std::string_view Reader::token() {
  if (failed_) {
    return std::string_view();
  }
  const std::string_view tok = pop_token(&rest_);
  if (tok.empty()) {
    fail("missing value token on line with key '" + std::string(key_) + "'");
  }
  return tok;
}

std::string_view Reader::bytes(size_t n) {
  if (failed_) {
    return std::string_view();
  }
  if (text_.size() - pos_ < n) {
    fail("truncated blob: want " + std::to_string(n) + " bytes, have " +
         std::to_string(text_.size() - pos_));
    return std::string_view();
  }
  const std::string_view out = text_.substr(pos_, n);
  pos_ += n;
  // Blob payloads end mid-line from the reader's perspective; count the
  // newlines they contain so later errors still report useful lines.
  for (char c : out) {
    if (c == '\n') {
      ++line_no_;
    }
  }
  return out;
}

util::Status Reader::status() const {
  if (!failed_) {
    return util::Status::Ok();
  }
  return util::Error{util::ErrorCode::kParseError,
                     "snapshot parse error at line " +
                         std::to_string(line_no_) + ": " + error_};
}

void Reader::fail(const std::string& message) {
  if (failed_) {
    return;
  }
  failed_ = true;
  error_ = message;
}

}  // namespace coda::state
