// Deterministic session snapshots: serialize a complete live simulation
// session (engine + scheduler + RNG streams + virtual clock + pending
// events) and reconstruct it so the resumed run reproduces the
// uninterrupted session's final report byte-identically.
//
// Container format (line-oriented text, see state/serde.h):
//
//   CODA_SNAPSHOT 1
//   meta <seq> <vt hexfloat> <dispatched> <accepted> <next_auto_id>
//   session_bytes <N>
//   <N raw bytes: a full journal text — header + S-lines — covering every
//    job the serialized state references. Opaque to this layer; the service
//    (or any caller) parses it with service::parse_journal and feeds the
//    resulting trace back into restore_session.>
//   <engine section   — sim::ClusterEngine::save_state>
//   <scheduler section — sched::Scheduler::save_state (policy-specific)>
//   manifest <n>
//   event <t hexfloat> <kind> <a> <b>     (n rows, (t, seq) ascending)
//   END
//
// Pending simulator events are never serialized as callbacks: each live
// event's (time, tag) pair goes into the manifest and restore_session
// re-creates the exact closure through the owning layer's rearm_* helper.
// Re-posting in manifest order reproduces the relative dispatch order of
// time ties (fresh insertion sequences ascend with the manifest).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/experiment.h"
#include "util/result.h"

namespace coda::state {

struct SnapshotMeta {
  uint64_t seq = 0;             // snapshot sequence within the session
  double virtual_time = 0.0;    // simulator clock at capture
  uint64_t dispatched = 0;      // simulator dispatch counter at capture
  // Service-layer counters carried through restore (zero offline): SUBMITs
  // accepted so far and the daemon's next auto-assigned job id.
  uint64_t accepted = 0;
  uint64_t next_auto_id = 0;
};

// A parsed snapshot container. `session_text` is the embedded journal;
// `body` is the engine/scheduler/manifest tail, parsed by restore_session.
struct Snapshot {
  SnapshotMeta meta;
  std::string session_text;
  std::string body;
};

// Serializes a quiescent live session (no event mid-dispatch; the engine
// flushes its own dirty state). Fails with kFailedPrecondition when a live
// pending event carries no tag — such an event cannot be re-armed, and
// dropping it silently would corrupt the restored session.
util::Result<std::string> capture_snapshot(const SnapshotMeta& meta,
                                           std::string_view session_text,
                                           const sim::ClusterEngine& engine,
                                           const sched::Scheduler& scheduler);

// Parses the container (meta + embedded session + body). The body is
// validated structurally by restore_session, not here.
util::Result<Snapshot> parse_snapshot(std::string_view text);
util::Result<Snapshot> load_snapshot_file(const std::string& path);

// A reconstructed session, ready to resume: scheduler first so the engine
// (which holds a pointer into it) is destroyed before it.
struct RestoredSession {
  sim::PolicyScheduler scheduler;
  std::unique_ptr<sim::ClusterEngine> engine;
  SnapshotMeta meta;
};

// Rebuilds the live session a snapshot captured. `policy`/`config` must be
// the session's own (from the embedded journal header) and `trace` the
// combined job list of the embedded session (service::journal_trace) —
// every job id the serialized state references must appear in it. On
// return the engine's clock, state and event queue match the captured
// session exactly; run_until / drain continue it bit-for-bit.
util::Result<RestoredSession> restore_session(
    const Snapshot& snapshot, sim::Policy policy,
    const sim::ExperimentConfig& config,
    const std::vector<workload::JobSpec>& trace);

// Durably writes `bytes` to `path`: write to a temp sibling, fsync, rename.
// A crash mid-write leaves the previous file (or nothing), never a torn
// snapshot.
util::Status write_file_durable(const std::string& path,
                                std::string_view bytes);

// Scans `prefix`'s directory for files named `<prefix><seq>` (decimal
// digits only) and returns the path with the largest sequence; kNotFound
// when none exist.
util::Result<std::string> find_latest_snapshot(const std::string& prefix);

}  // namespace coda::state
