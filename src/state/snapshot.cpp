#include "state/snapshot.h"

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "coda/coda_scheduler.h"
#include "simcore/event_tags.h"
#include "state/serde.h"
#include "util/strings.h"

namespace coda::state {

namespace {

// v2: the engine stats line grew the parallel-flush counters (PR 9).
constexpr uint64_t kVersion = 2;

util::Error precondition(const std::string& msg) {
  return util::Error{util::ErrorCode::kFailedPrecondition, msg};
}

}  // namespace

util::Result<std::string> capture_snapshot(const SnapshotMeta& meta,
                                           std::string_view session_text,
                                           const sim::ClusterEngine& engine,
                                           const sched::Scheduler& scheduler) {
  // Collect the manifest first: an untagged live event fails the capture
  // before any serialization work happens.
  std::vector<simcore::PendingEvent> pending;
  if (auto status = engine.sim().pending_events(&pending); !status.ok()) {
    return status.error();
  }

  Writer w;
  w.line("CODA_SNAPSHOT", kVersion);
  w.line("meta", meta.seq, meta.virtual_time, meta.dispatched, meta.accepted,
         meta.next_auto_id);
  w.line("session_bytes", session_text.size());
  w.raw(session_text);
  engine.save_state(&w);
  scheduler.save_state(&w);
  w.line("manifest", pending.size());
  for (const simcore::PendingEvent& e : pending) {
    w.line("event", e.t, e.tag.kind, e.tag.a, e.tag.b);
  }
  w.line("END");
  return w.take();
}

util::Result<Snapshot> parse_snapshot(std::string_view text) {
  Reader r(text);
  if (r.expect("CODA_SNAPSHOT") && r.u64() != kVersion && r.ok()) {
    r.fail("unsupported snapshot version");
  }
  Snapshot snap;
  r.expect("meta");
  snap.meta.seq = r.u64();
  snap.meta.virtual_time = r.f64();
  snap.meta.dispatched = r.u64();
  snap.meta.accepted = r.u64();
  snap.meta.next_auto_id = r.u64();
  r.expect("session_bytes");
  const uint64_t n = r.u64();
  snap.session_text = std::string(r.bytes(n));
  if (auto status = r.status(); !status.ok()) {
    return status.error();
  }
  snap.body = std::string(r.remainder());
  return snap;
}

util::Result<Snapshot> load_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Error{util::ErrorCode::kNotFound,
                       "cannot open snapshot: " + path};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_snapshot(buffer.str());
}

util::Result<RestoredSession> restore_session(
    const Snapshot& snapshot, sim::Policy policy,
    const sim::ExperimentConfig& config,
    const std::vector<workload::JobSpec>& trace) {
  sched::SpecMap specs;
  for (const workload::JobSpec& spec : trace) {
    if (!specs.emplace(spec.id, spec).second) {
      return precondition(util::strfmt(
          "duplicate job id %llu in the restore trace",
          static_cast<unsigned long long>(spec.id)));
    }
  }

  RestoredSession out;
  out.meta = snapshot.meta;
  out.scheduler = sim::make_policy_scheduler(policy, config);
  out.engine = std::make_unique<sim::ClusterEngine>(
      config.engine, out.scheduler.scheduler.get(), /*restore_mode=*/true);
  out.engine->sim().restore_clock(snapshot.meta.virtual_time,
                                  snapshot.meta.dispatched);

  Reader r(snapshot.body);
  if (auto status = out.engine->load_state(&r, specs); !status.ok()) {
    return status.error();
  }
  out.scheduler.scheduler->load_state(&r, specs);

  // Re-arm the manifest in serialized ((t, seq) ascending) order: the fresh
  // insertion sequences ascend with it, so relative order under time ties
  // matches the captured queue.
  r.expect("manifest");
  const uint64_t n = r.u64();
  for (uint64_t i = 0; i < n && r.ok(); ++i) {
    r.expect("event");
    const double t = r.f64();
    const uint32_t kind = static_cast<uint32_t>(r.u64());
    const uint64_t a = r.u64();
    const uint64_t b = r.u64();
    if (!r.ok()) {
      break;
    }
    switch (kind) {
      case simcore::kTagArrival:
        out.engine->rearm_arrival(t, a);
        break;
      case simcore::kTagJobFinish:
        out.engine->rearm_finish(t, a);
        break;
      case simcore::kTagNodeFail:
        out.engine->rearm_outage_fail(t, static_cast<cluster::NodeId>(a));
        break;
      case simcore::kTagNodeRecover:
        out.engine->rearm_outage_recover(t, static_cast<cluster::NodeId>(a));
        break;
      case simcore::kTagMetricsTick:
        out.engine->rearm_metrics_tick(t);
        break;
      case simcore::kTagRetryResubmit: {
        auto it = specs.find(a);
        if (it == specs.end()) {
          r.fail("retry manifest entry references an unknown job");
          break;
        }
        out.scheduler.scheduler->rearm_retry(t, it->second);
        break;
      }
      case simcore::kTagEliminatorTick:
      case simcore::kTagReservationTick:
      case simcore::kTagTuningTick:
        if (out.scheduler.coda == nullptr) {
          r.fail("CODA manifest entry under a non-CODA policy");
          break;
        }
        if (kind == simcore::kTagEliminatorTick) {
          out.scheduler.coda->rearm_eliminator_tick(t);
        } else if (kind == simcore::kTagReservationTick) {
          out.scheduler.coda->rearm_reservation_tick(t);
        } else {
          out.scheduler.coda->rearm_tuning_tick(t, a, b);
        }
        break;
      default:
        r.fail("manifest entry with unknown event kind " +
               std::to_string(kind));
        break;
    }
  }
  r.expect("END");
  if (auto status = r.status(); !status.ok()) {
    return status.error();
  }
  return out;
}

util::Status write_file_durable(const std::string& path,
                                std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return util::Error{util::ErrorCode::kIoError,
                       "cannot create " + tmp};
  }
  const bool wrote =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                           bytes.size();
  const bool synced = wrote && std::fflush(f) == 0 && fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!synced) {
    std::remove(tmp.c_str());
    return util::Error{util::ErrorCode::kIoError,
                       "short write to " + tmp};
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Error{util::ErrorCode::kIoError,
                       "cannot rename " + tmp + " to " + path};
  }
  return util::Status::Ok();
}

util::Result<std::string> find_latest_snapshot(const std::string& prefix) {
  const size_t slash = prefix.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : prefix.substr(0, slash);
  const std::string base =
      slash == std::string::npos ? prefix : prefix.substr(slash + 1);

  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    return util::Error{util::ErrorCode::kNotFound,
                       "cannot open directory " + dir};
  }
  bool found = false;
  uint64_t best_seq = 0;
  std::string best_name;
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() <= base.size() || name.compare(0, base.size(), base) != 0) {
      continue;
    }
    const std::string suffix = name.substr(base.size());
    uint64_t seq = 0;
    bool numeric = true;
    for (char c : suffix) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      seq = seq * 10 + static_cast<uint64_t>(c - '0');
    }
    if (!numeric) {
      continue;
    }
    if (!found || seq > best_seq) {
      found = true;
      best_seq = seq;
      best_name = name;
    }
  }
  closedir(d);
  if (!found) {
    return util::Error{util::ErrorCode::kNotFound,
                       "no snapshot matches " + prefix};
  }
  return dir + "/" + best_name;
}

}  // namespace coda::state
