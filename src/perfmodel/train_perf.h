// Analytic training-performance model: iteration time, GPU utilization,
// throughput and shared-resource demands for a DNN job as a function of its
// model, its training configuration (aNbG, batch size) and the CPU cores
// allocated to it.
//
// Core structure (paper Sec. IV-A, Fig. 4): each iteration pipelines a
// CPU-side data-preparation stage against the GPU compute stage, so
//
//   prep_time(c) = prep_serial + prep_work / min(c, parallel_limit)
//   iter_time(c) = max(gpu_phase, prep_time(c)) + overhead      (pipelined)
//   gpu_util(c)  = gpu_phase / iter_time(c)  (x slight over-allocation decay)
//
// The optimal core count is the knee where prep drops below the GPU phase —
// allocating more cores no longer helps, matching Fig. 3's rise-then-plateau
// curves and the allocator's stopping rule.
#pragma once

#include <string>

#include "perfmodel/dnn_model.h"

namespace coda::perfmodel {

// Training configuration in the paper's aNbG notation.
struct TrainConfig {
  int nodes = 1;          // a: number of servers
  int gpus_per_node = 1;  // b / a: GPUs used on each server
  int batch_size = 0;     // 0 => the model's default batch size
  double net_gbps = 1.25; // inter-node link, GB/s (paper: 10 Gb/s Infiniband)

  int total_gpus() const { return nodes * gpus_per_node; }
  // "1N4G"-style label used in tables.
  std::string name() const;
};

// Convenience constructors for the configurations the paper evaluates.
TrainConfig config_1n1g(int batch_size = 0);
TrainConfig config_1n4g(int batch_size = 0);
// Canonical multi-node configuration (2 nodes x 2 GPUs); see DESIGN.md.
TrainConfig config_2n4g(int batch_size = 0);

// Externally-imposed slowdowns from node-level shared-resource contention,
// produced by NodeContentionModel (contention.h). Defaults mean "no
// contention".
struct ContentionFactors {
  double prep_inflation = 1.0;  // multiplies the CPU prep stage (>= 1)
  double gpu_inflation = 1.0;   // multiplies the GPU phase (PCIe pressure)
};

class TrainPerf {
 public:
  // CPU data-preparation stage time per iteration on one node (seconds),
  // given `cores` allocated on that node.
  double prep_time(ModelId id, const TrainConfig& cfg, int cores,
                   const ContentionFactors& contention = {}) const;

  // GPU compute phase per iteration, including multi-node gradient
  // synchronization slowdown and PCIe-pressure inflation.
  double gpu_phase_time(ModelId id, const TrainConfig& cfg,
                        const ContentionFactors& contention = {}) const;

  // Wall-clock time per training iteration.
  double iter_time(ModelId id, const TrainConfig& cfg, int cores,
                   const ContentionFactors& contention = {}) const;

  // GPU utilization in [0, 1]: fraction of the iteration the GPU computes,
  // with a slight decay past the optimum (Fig. 3: "drops slightly" when a
  // job holds more cores than it needs).
  double gpu_utilization(ModelId id, const TrainConfig& cfg, int cores,
                         const ContentionFactors& contention = {}) const;

  // Iterations per second (per job, not per GPU).
  double throughput(ModelId id, const TrainConfig& cfg, int cores,
                    const ContentionFactors& contention = {}) const;

  // Samples (sequences/images/audio snippets) per second.
  double samples_per_second(ModelId id, const TrainConfig& cfg, int cores,
                            const ContentionFactors& contention = {}) const;

  // Peak DRAM bandwidth demand on ONE node (GB/s) when the job runs with
  // `cores` cores there (Fig. 6). Demand scales with the achieved data rate:
  // a core-starved job moves less data per second.
  double mem_bw_demand_gbps(ModelId id, const TrainConfig& cfg,
                            int cores) const;

  // Average PCIe bandwidth demand on one node (GB/s), Sec. IV-C3.
  double pcie_demand_gbps(ModelId id, const TrainConfig& cfg,
                          int cores) const;

  // LLC working-set footprint on one node (MB).
  double llc_demand_mb(ModelId id, const TrainConfig& cfg) const;

  // Smallest core count that achieves within `tolerance` (relative) of the
  // best reachable GPU utilization, searching 1..max_cores. This is the
  // ground-truth optimum the adaptive allocator tries to discover online.
  int optimal_cores(ModelId id, const TrainConfig& cfg, int max_cores = 28,
                    double tolerance = 0.01) const;

 private:
  // Smallest core count where prep no longer bounds the pipeline (the knee
  // of the utilization curve); max_cores when prep never fits.
  int saturation_cores(ModelId id, const TrainConfig& cfg,
                       const ContentionFactors& contention,
                       int max_cores) const;

  double batch_ratio(ModelId id, const TrainConfig& cfg) const;
};

}  // namespace coda::perfmodel
