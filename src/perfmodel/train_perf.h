// Analytic training-performance model: iteration time, GPU utilization,
// throughput and shared-resource demands for a DNN job as a function of its
// model, its training configuration (aNbG, batch size) and the CPU cores
// allocated to it.
//
// Core structure (paper Sec. IV-A, Fig. 4): each iteration pipelines a
// CPU-side data-preparation stage against the GPU compute stage, so
//
//   prep_time(c) = prep_serial + prep_work / min(c, parallel_limit)
//   iter_time(c) = max(gpu_phase, prep_time(c)) + overhead      (pipelined)
//   gpu_util(c)  = gpu_phase / iter_time(c)  (x slight over-allocation decay)
//
// The optimal core count is the knee where prep drops below the GPU phase —
// allocating more cores no longer helps, matching Fig. 3's rise-then-plateau
// curves and the allocator's stopping rule.
//
// Hot path (see DESIGN.md "Hot path & memoization"): every engine rate
// update funnels through iter_time / gpu_utilization, so the model keeps a
// small interned table of per-(model, TrainConfig) invariants (batch-ratio
// powers, effective prep work, uncontended GPU phase, the uncontended knee
// and optimum) and memoizes full evaluations on (cores, exact contention
// factor bits). Memoized results are bit-for-bit identical to the reference
// arithmetic — set_memoize(false) switches an instance to the original
// unmemoized code path, and tests/perf_equivalence_test.cpp asserts equality
// across the model zoo. An instance is NOT thread-safe (the caches mutate on
// const evaluations); every engine/scheduler owns its own instance, which
// matches how the parallel runner shards experiments across threads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "perfmodel/dnn_model.h"

namespace coda::perfmodel {

// Training configuration in the paper's aNbG notation.
struct TrainConfig {
  int nodes = 1;          // a: number of servers
  int gpus_per_node = 1;  // b / a: GPUs used on each server
  int batch_size = 0;     // 0 => the model's default batch size
  double net_gbps = 1.25; // inter-node link, GB/s (paper: 10 Gb/s Infiniband)

  int total_gpus() const { return nodes * gpus_per_node; }
  // "1N4G"-style label used in tables.
  std::string name() const;
};

// Convenience constructors for the configurations the paper evaluates.
TrainConfig config_1n1g(int batch_size = 0);
TrainConfig config_1n4g(int batch_size = 0);
// Canonical multi-node configuration (2 nodes x 2 GPUs); see DESIGN.md.
TrainConfig config_2n4g(int batch_size = 0);

// Externally-imposed slowdowns from node-level shared-resource contention,
// produced by NodeContentionModel (contention.h). Defaults mean "no
// contention".
struct ContentionFactors {
  double prep_inflation = 1.0;  // multiplies the CPU prep stage (>= 1)
  double gpu_inflation = 1.0;   // multiplies the GPU phase (PCIe pressure)
};

class TrainPerf {
 public:
  // Memoization telemetry; surfaced as perf_cache_* metric counters by the
  // simulation engine and printed by bench_engine_micro.
  struct CacheStats {
    uint64_t hits = 0;             // full evaluations served from the memo
    uint64_t misses = 0;           // full evaluations computed and stored
    uint64_t invariant_builds = 0; // distinct (model, config) entries built
    double hit_rate() const {
      const uint64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / total : 0.0;
    }
  };

  TrainPerf() = default;

  // CPU data-preparation stage time per iteration on one node (seconds),
  // given `cores` allocated on that node.
  double prep_time(ModelId id, const TrainConfig& cfg, int cores,
                   const ContentionFactors& contention = {}) const;

  // GPU compute phase per iteration, including multi-node gradient
  // synchronization slowdown and PCIe-pressure inflation.
  double gpu_phase_time(ModelId id, const TrainConfig& cfg,
                        const ContentionFactors& contention = {}) const;

  // Wall-clock time per training iteration.
  double iter_time(ModelId id, const TrainConfig& cfg, int cores,
                   const ContentionFactors& contention = {}) const;

  // GPU utilization in [0, 1]: fraction of the iteration the GPU computes,
  // with a slight decay past the optimum (Fig. 3: "drops slightly" when a
  // job holds more cores than it needs).
  double gpu_utilization(ModelId id, const TrainConfig& cfg, int cores,
                         const ContentionFactors& contention = {}) const;

  // Iterations per second (per job, not per GPU).
  double throughput(ModelId id, const TrainConfig& cfg, int cores,
                    const ContentionFactors& contention = {}) const;

  // Samples (sequences/images/audio snippets) per second.
  double samples_per_second(ModelId id, const TrainConfig& cfg, int cores,
                            const ContentionFactors& contention = {}) const;

  // Peak DRAM bandwidth demand on ONE node (GB/s) when the job runs with
  // `cores` cores there (Fig. 6). Demand scales with the achieved data rate:
  // a core-starved job moves less data per second.
  double mem_bw_demand_gbps(ModelId id, const TrainConfig& cfg,
                            int cores) const;

  // Average PCIe bandwidth demand on one node (GB/s), Sec. IV-C3.
  double pcie_demand_gbps(ModelId id, const TrainConfig& cfg,
                          int cores) const;

  // LLC working-set footprint on one node (MB).
  double llc_demand_mb(ModelId id, const TrainConfig& cfg) const;

  // Smallest core count that achieves within `tolerance` (relative) of the
  // best reachable GPU utilization, searching 1..max_cores. This is the
  // ground-truth optimum the adaptive allocator tries to discover online.
  int optimal_cores(ModelId id, const TrainConfig& cfg, int max_cores = 28,
                    double tolerance = 0.01) const;

  // Toggles memoization (on by default). Turning it off clears every cache
  // and routes evaluations through the original unmemoized arithmetic; the
  // equivalence suite uses this as the bit-exact reference.
  void set_memoize(bool on);
  bool memoize() const { return memoize_; }
  const CacheStats& cache_stats() const { return stats_; }

 private:
  // ---- interned per-(model, config) invariants ----
  struct InvKey {
    int model = 0;
    int nodes = 0;
    int gpus_per_node = 0;
    int batch_size = 0;
    uint64_t net_bits = 0;  // bit pattern of net_gbps
    bool operator==(const InvKey& o) const {
      return model == o.model && nodes == o.nodes &&
             gpus_per_node == o.gpus_per_node &&
             batch_size == o.batch_size && net_bits == o.net_bits;
    }
  };
  struct InvKeyHash {
    size_t operator()(const InvKey& k) const;
  };

  // One full evaluation of the pipeline at (cores, contention factors).
  struct EvalKey {
    int cores = 0;
    // Exact bit patterns of the contention factors. Quantization happens
    // only in the HASH (low mantissa bits dropped so near-identical factors
    // land in the same bucket); equality is exact, so a hit can never return
    // a value computed from different inputs.
    uint64_t prep_bits = 0;
    uint64_t gpu_bits = 0;
    bool operator==(const EvalKey& o) const {
      return cores == o.cores && prep_bits == o.prep_bits &&
             gpu_bits == o.gpu_bits;
    }
  };
  struct EvalKeyHash {
    size_t operator()(const EvalKey& k) const;
  };
  struct EvalEntry {
    double prep = 0.0;
    double gpu = 0.0;
    double iter = 0.0;
    double util = 0.0;
  };

  struct Invariants {
    // Effective parallelizable prep work (batch power x multi-GPU sharing x
    // multi-node collapse) and the uncontended GPU phase, both computed with
    // the reference arithmetic so downstream expressions are bit-identical.
    double prep_work = 0.0;
    double gpu_base = 0.0;
    double mem_per_gpu = 0.0;   // mem_bw_gbps x (BS/def)^mem_bs_exp
    double pcie_per_gpu = 0.0;  // pcie_gbps x (BS/def)^mem_bs_exp
    int opt_cores = -1;         // optimal_cores(default args); -1 = unfilled
    double iter_at_opt = 0.0;   // uncontended iter_time at opt_cores
    std::unordered_map<EvalKey, EvalEntry, EvalKeyHash> evals;
  };

  const Invariants& invariants(ModelId id, const TrainConfig& cfg) const;
  const EvalEntry& evaluate(ModelId id, const TrainConfig& cfg, int cores,
                            const ContentionFactors& contention) const;
  // Closed-form/early-exit contended knee over the cached invariants;
  // bit-identical to the reference linear scan.
  int saturation_cores_fast(const ModelParams& p, const Invariants& inv,
                            const ContentionFactors& contention,
                            int max_cores) const;

  // ---- reference (unmemoized) arithmetic: the original implementation ----
  double ref_prep_time(ModelId id, const TrainConfig& cfg, int cores,
                       const ContentionFactors& contention) const;
  double ref_gpu_phase_time(ModelId id, const TrainConfig& cfg,
                            const ContentionFactors& contention) const;
  double ref_iter_time(ModelId id, const TrainConfig& cfg, int cores,
                       const ContentionFactors& contention) const;
  double ref_gpu_utilization(ModelId id, const TrainConfig& cfg, int cores,
                             const ContentionFactors& contention) const;
  int ref_saturation_cores(ModelId id, const TrainConfig& cfg,
                           const ContentionFactors& contention,
                           int max_cores) const;
  int ref_optimal_cores(ModelId id, const TrainConfig& cfg, int max_cores,
                        double tolerance) const;

  double batch_ratio(ModelId id, const TrainConfig& cfg) const;

  bool memoize_ = true;
  mutable CacheStats stats_;
  // node-based map: Invariants addresses stay stable across rehashes.
  mutable std::unordered_map<InvKey, std::unique_ptr<Invariants>, InvKeyHash>
      interned_;
  // One-entry lookup cache: evaluations cluster heavily on one (model, cfg).
  mutable InvKey last_key_;
  mutable Invariants* last_entry_ = nullptr;
};

}  // namespace coda::perfmodel
