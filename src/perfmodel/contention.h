// Node-level shared-resource contention resolution.
//
// Given every co-located job's footprint on one node (memory bandwidth, LLC,
// PCIe), computes each job's achieved bandwidth and slowdown factors. This
// is the simulated stand-in for the physical DRAM/LLC/PCIe arbitration the
// paper measures in Sec. IV-C:
//   * bandwidth is shared proportionally once total demand exceeds capacity;
//   * queueing delay grows with node pressure and hurts latency-sensitive
//     prep pipelines (NLP models, Fig. 7) even when their own demand is tiny;
//   * LLC contention is modelled but near-zero for every model (paper);
//   * PCIe pressure inflates the GPU phase only near saturation (Sec. IV-C3).
#pragma once

#include <vector>

#include "cluster/node.h"
#include "perfmodel/train_perf.h"

namespace coda::perfmodel {

// One job's demand on a node's shared resources, plus its sensitivities.
struct ResourceFootprint {
  cluster::JobId job = 0;
  bool is_gpu_job = false;

  double mem_bw_gbps = 0.0;      // unconstrained DRAM bandwidth demand
  double mem_bw_cap_gbps = -1.0; // MBA throttle cap; < 0 means unthrottled
  double pcie_gbps = 0.0;
  double llc_mb = 0.0;

  // GPU-job sensitivities (from ModelParams); ignored for CPU jobs.
  double bw_latency_sensitivity = 0.0;
  double bw_share_dependence = 0.0;
  double llc_sensitivity = 0.0;

  // CPU-job property: fraction of its work that is bandwidth-bound (Amdahl
  // argument of the throttling slowdown). Ignored for GPU jobs.
  double bw_bound_fraction = 0.0;
};

// Per-job outcome of contention resolution.
struct JobContention {
  cluster::JobId job = 0;
  double achieved_bw_gbps = 0.0;   // what MBM would report for this job
  ContentionFactors factors;       // feed into TrainPerf for GPU jobs
  double cpu_rate_factor = 1.0;    // progress multiplier for CPU jobs
};

// Node-wide outcome.
struct NodeContentionReport {
  double total_demand_gbps = 0.0;  // post-throttle total demand
  double mem_pressure = 0.0;       // total_demand / node capacity
  double llc_pressure = 0.0;       // sum(llc_mb) / node LLC
  double pcie_total_gbps = 0.0;
  std::vector<JobContention> jobs; // same order as the input footprints
};

class NodeContentionModel {
 public:
  struct Params {
    // Pressure above which DRAM queueing latency starts to bite; chosen to
    // coincide with the paper's 75% eliminator threshold.
    double latency_knee_pressure = 0.75;
    // PCIe inflation starts at this fraction of link capacity and grows
    // linearly with `pcie_inflation_slope` (calibrated to the 5-10%
    // degradation of Alexnet/Resnet50 co-location, Sec. IV-C3).
    double pcie_knee_fraction = 0.8;
    double pcie_inflation_slope = 0.5;
  };

  NodeContentionModel() = default;
  explicit NodeContentionModel(const Params& params) : params_(params) {}

  const Params& params() const { return params_; }

  // Resolves contention among `footprints` on a node with `config`'s
  // capacities. Pure function of its inputs; deterministic.
  NodeContentionReport resolve(
      const cluster::NodeConfig& config,
      const std::vector<ResourceFootprint>& footprints) const;

  // Allocation-free variant: overwrites `out` in place, reusing its jobs
  // vector's capacity. The engine keeps one report per node and re-resolves
  // on every population change — this keeps that hot path off the heap.
  void resolve_into(const cluster::NodeConfig& config,
                    const std::vector<ResourceFootprint>& footprints,
                    NodeContentionReport* out) const;

 private:
  Params params_;
};

}  // namespace coda::perfmodel
