// The eight representative DNN training workloads of the paper (Table I) and
// their calibrated performance parameters.
//
// The paper characterizes real training runs on GTX 1080Ti servers; we have
// no GPU cluster, so each model is represented by an analytic pipelined
// CPU->GPU iteration model whose constants are calibrated so the *published*
// characterization re-emerges: optimal core counts (Fig. 5), memory-bandwidth
// demands (Fig. 6), contention sensitivities (Fig. 7), PCIe behaviour
// (Sec. IV-C3) and multi-node degradation (Sec. IV-B2). Unit tests in
// tests/perfmodel_test.cpp assert each published fact against the model.
#pragma once

#include <array>
#include <string>

namespace coda::perfmodel {

enum class ModelId {
  kAlexnet = 0,
  kVgg16,
  kInceptionV3,
  kResnet50,
  kBiAttFlow,   // "BAT" in the paper
  kTransformer,
  kWavenet,
  kDeepSpeech,
};

inline constexpr int kModelCount = 8;

// All model ids, in Table I order (iteration helper for sweeps/tests).
constexpr std::array<ModelId, kModelCount> kAllModels = {
    ModelId::kAlexnet,     ModelId::kVgg16,       ModelId::kInceptionV3,
    ModelId::kResnet50,    ModelId::kBiAttFlow,   ModelId::kTransformer,
    ModelId::kWavenet,     ModelId::kDeepSpeech,
};

enum class ModelCategory { kCV = 0, kNLP, kSpeech };

const char* to_string(ModelId id);
const char* to_string(ModelCategory category);

// Calibrated per-model constants. All times are per training iteration at
// the default batch size on a single GPU.
struct ModelParams {
  ModelId id;
  const char* name;
  ModelCategory category;

  // --- iteration pipeline ---
  double gpu_time_s;        // GPU compute phase (forward+backward+update)
  double prep_work_core_s;  // parallelizable CPU prep work, core-seconds/GPU
  double prep_serial_s;     // non-parallelizable prep per iteration
  int prep_parallel_limit;  // cores beyond this give no prep speedup
  double overhead_s;        // per-iteration launch/update overhead (caps
                            // achievable GPU utilization below 100%)
  double util_ceiling;      // maximum SM utilization the model's kernels
                            // reach even with a perfect input pipeline
                            // (measured GPU util in Fig. 3 tops out well
                            // below 100% and differs per model)
  bool pipelined;           // prep of batch k+1 overlaps compute of batch k

  // --- batch-size scaling (exponents on BS / default_batch) ---
  int default_batch;
  int max_batch;
  double multi_gpu_prep_slope;  // per-node prep work with g local GPUs is
                                // prep_work x (1 + slope x (g-1)); decode
                                // results and augmentation pipelines are
                                // partially shared across GPUs, so the
                                // growth slope is sub-linear and
                                // model-specific (Sec. IV-B2)
  double gpu_bs_exp;    // gpu_time ~ (BS/def)^gpu_bs_exp
  double prep_bs_exp;   // prep_work ~ (BS/def)^prep_bs_exp
  double mem_bs_exp;    // bandwidth demand ~ (BS/def)^mem_bs_exp

  // --- shared-resource footprint (at default BS, per GPU) ---
  double mem_bw_gbps;    // peak DRAM bandwidth demand (Fig. 6)
  double pcie_gbps;      // average PCIe demand (Sec. IV-C3)
  double llc_mb;         // working-set LLC occupancy

  // --- contention sensitivity (Fig. 7) ---
  double bw_latency_sensitivity;  // prep slowdown per unit of node-level
                                  // bandwidth pressure above threshold
  double bw_share_dependence;     // exponent: how bandwidth-bound prep is
                                  // (1 = fully, 0 = not at all)
  double llc_sensitivity;         // ~0 for every model (paper finding)

  // --- multi-node behaviour (Sec. IV-B2) ---
  double weights_gb;              // model size (drives gradient traffic)
  double multi_node_slowdown;     // iteration slowdown vs single node
                                  // (paper: 25-30% throughput loss)
  double multi_node_prep_scale;   // effective prep work scale in multi-node
                                  // runs: the input pipeline idles at global
                                  // synchronization barriers, so measured
                                  // CPU demand collapses to <= 2 cores
};

// Parameter table lookup (Table I order). Never fails: ModelId is an enum.
const ModelParams& model_params(ModelId id);

// N_start defaults of Sec. V-B1: 3 for CV, 5 for NLP, 5 for Speech.
int default_start_cores(ModelCategory category);

}  // namespace coda::perfmodel
