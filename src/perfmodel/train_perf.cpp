#include "perfmodel/train_perf.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/assert.h"
#include "util/strings.h"

namespace coda::perfmodel {

namespace {

// Utilization decay per core held beyond the saturation knee (Fig. 3: GPU
// utilization "drops slightly" past the optimum — framework worker threads
// beyond the pipeline's needs add scheduling noise).
constexpr double kOverAllocDecayPerCore = 0.004;

// The engine's contended-evaluation scans never exceed this core count (the
// reference knee scan searched 1..64).
constexpr int kKneeScanMax = 64;

// Contention factors are continuous, but in practice the contention model
// emits a small recurring set of values (1.0 exactly on every uncontended
// node). The memo key keeps the EXACT factor bits; only the hash drops the
// low `kQuantMantissaBits` mantissa bits (epsilon ~2^-32 relative) so that
// factors differing by noise-level ulps share a bucket. Because equality is
// exact, quantization can only affect bucket collisions — never which value
// a lookup returns — so memoized results are bit-identical by construction.
constexpr int kQuantMantissaBits = 20;

uint64_t bits_of(double x) {
  uint64_t b;
  static_assert(sizeof(b) == sizeof(x));
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

uint64_t quantize_bits(uint64_t b) {
  return b & ~((uint64_t{1} << kQuantMantissaBits) - 1);
}

uint64_t mix_hash(uint64_t h, uint64_t v) {
  // splitmix64-style mixing.
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

}  // namespace

std::string TrainConfig::name() const {
  return util::strfmt("%dN%dG", nodes, nodes * gpus_per_node);
}

TrainConfig config_1n1g(int batch_size) {
  return TrainConfig{1, 1, batch_size};
}

TrainConfig config_1n4g(int batch_size) {
  return TrainConfig{1, 4, batch_size};
}

TrainConfig config_2n4g(int batch_size) {
  return TrainConfig{2, 2, batch_size};
}

size_t TrainPerf::InvKeyHash::operator()(const InvKey& k) const {
  uint64_t h = 0x243f6a8885a308d3ull;
  h = mix_hash(h, static_cast<uint64_t>(k.model));
  h = mix_hash(h, static_cast<uint64_t>(k.nodes));
  h = mix_hash(h, static_cast<uint64_t>(k.gpus_per_node));
  h = mix_hash(h, static_cast<uint64_t>(k.batch_size));
  h = mix_hash(h, k.net_bits);
  return static_cast<size_t>(h);
}

size_t TrainPerf::EvalKeyHash::operator()(const EvalKey& k) const {
  uint64_t h = 0x13198a2e03707344ull;
  h = mix_hash(h, static_cast<uint64_t>(k.cores));
  h = mix_hash(h, quantize_bits(k.prep_bits));
  h = mix_hash(h, quantize_bits(k.gpu_bits));
  return static_cast<size_t>(h);
}

double TrainPerf::batch_ratio(ModelId id, const TrainConfig& cfg) const {
  const ModelParams& p = model_params(id);
  const int bs = cfg.batch_size > 0 ? cfg.batch_size : p.default_batch;
  return static_cast<double>(bs) / p.default_batch;
}

// --------------------------------------------------------------- reference
// The original unmemoized arithmetic. Every cached quantity below is
// produced by these exact expressions (same operations, same order), which
// is what makes the memoized path bit-identical; the equivalence suite
// asserts it stays that way.

double TrainPerf::ref_prep_time(ModelId id, const TrainConfig& cfg, int cores,
                                const ContentionFactors& contention) const {
  CODA_ASSERT(cores >= 1);
  CODA_ASSERT(cfg.nodes >= 1 && cfg.gpus_per_node >= 1);
  const ModelParams& p = model_params(id);
  const double bs = batch_ratio(id, cfg);
  // Parallelizable prep work on one node: one data pipeline per local GPU,
  // with partially-shared decode/augmentation across GPUs (sub-linear
  // per-model growth slope, Sec. IV-B2).
  const double gpu_scale =
      1.0 + p.multi_gpu_prep_slope * (cfg.gpus_per_node - 1);
  double work = p.prep_work_core_s * std::pow(bs, p.prep_bs_exp) * gpu_scale;
  if (cfg.nodes > 1) {
    // Network-gated input pipeline: in multi-node runs the loader idles at
    // global synchronization barriers, so the effective per-iteration CPU
    // work observed is far smaller (Sec. IV-B2: measured multi-node CPU
    // demand collapses to <= 2 cores).
    work *= p.multi_node_prep_scale;
  }
  const int usable = std::min(cores, p.prep_parallel_limit);
  const double t = p.prep_serial_s + work / usable;
  return t * std::max(1.0, contention.prep_inflation);
}

double TrainPerf::ref_gpu_phase_time(
    ModelId id, const TrainConfig& cfg,
    const ContentionFactors& contention) const {
  const ModelParams& p = model_params(id);
  const double bs = batch_ratio(id, cfg);
  double t = p.gpu_time_s * std::pow(bs, p.gpu_bs_exp);
  if (cfg.nodes > 1) {
    // Exposed gradient-synchronization cost over the 10 Gb/s interconnect
    // (calibrated to the paper's 25-30% degradation vs 1N4G). Slower links
    // expose proportionally more of the communication.
    const double link_scale = 1.25 / std::max(cfg.net_gbps, 1e-3);
    t *= 1.0 + (p.multi_node_slowdown - 1.0) * link_scale;
  }
  return t * std::max(1.0, contention.gpu_inflation);
}

double TrainPerf::ref_iter_time(ModelId id, const TrainConfig& cfg, int cores,
                                const ContentionFactors& contention) const {
  const ModelParams& p = model_params(id);
  const double prep = ref_prep_time(id, cfg, cores, contention);
  const double gpu = ref_gpu_phase_time(id, cfg, contention);
  const double body = p.pipelined ? std::max(prep, gpu) : prep + gpu;
  return body + p.overhead_s;
}

int TrainPerf::ref_saturation_cores(ModelId id, const TrainConfig& cfg,
                                    const ContentionFactors& contention,
                                    int max_cores) const {
  const double gpu = ref_gpu_phase_time(id, cfg, contention);
  for (int c = 1; c <= max_cores; ++c) {
    if (ref_prep_time(id, cfg, c, contention) <= gpu) {
      return c;
    }
  }
  return max_cores;
}

double TrainPerf::ref_gpu_utilization(
    ModelId id, const TrainConfig& cfg, int cores,
    const ContentionFactors& contention) const {
  const double gpu = ref_gpu_phase_time(id, cfg, contention);
  const double iter = ref_iter_time(id, cfg, cores, contention);
  const int knee =
      ref_saturation_cores(id, cfg, contention, /*max_cores=*/kKneeScanMax);
  const double decay =
      1.0 - kOverAllocDecayPerCore * std::max(0, cores - knee);
  // util_ceiling: even a perfectly-fed GPU tops out below 100% SM
  // utilization (kernel efficiency differs per model, Fig. 3).
  const double ceiling = model_params(id).util_ceiling;
  return std::clamp(gpu / iter * decay * ceiling, 0.0, 1.0);
}

int TrainPerf::ref_optimal_cores(ModelId id, const TrainConfig& cfg,
                                 int max_cores, double tolerance) const {
  CODA_ASSERT(max_cores >= 1);
  double best = 0.0;
  for (int c = 1; c <= max_cores; ++c) {
    best = std::max(best, ref_gpu_utilization(id, cfg, c, {}));
  }
  for (int c = 1; c <= max_cores; ++c) {
    if (ref_gpu_utilization(id, cfg, c, {}) >= best * (1.0 - tolerance)) {
      return c;
    }
  }
  CODA_UNREACHABLE("optimal_cores: no core count reached best utilization");
}

// ------------------------------------------------------------- memoization

const TrainPerf::Invariants& TrainPerf::invariants(
    ModelId id, const TrainConfig& cfg) const {
  InvKey key;
  key.model = static_cast<int>(id);
  key.nodes = cfg.nodes;
  key.gpus_per_node = cfg.gpus_per_node;
  key.batch_size = cfg.batch_size;
  key.net_bits = bits_of(cfg.net_gbps);
  if (last_entry_ != nullptr && key == last_key_) {
    return *last_entry_;
  }
  auto it = interned_.find(key);
  if (it == interned_.end()) {
    CODA_ASSERT(cfg.nodes >= 1 && cfg.gpus_per_node >= 1);
    auto inv = std::make_unique<Invariants>();
    const ModelParams& p = model_params(id);
    const double bs = batch_ratio(id, cfg);
    // Same expression chain as ref_prep_time / ref_gpu_phase_time so the
    // cached values carry identical bits.
    const double gpu_scale =
        1.0 + p.multi_gpu_prep_slope * (cfg.gpus_per_node - 1);
    double work = p.prep_work_core_s * std::pow(bs, p.prep_bs_exp) * gpu_scale;
    if (cfg.nodes > 1) {
      work *= p.multi_node_prep_scale;
    }
    inv->prep_work = work;
    double gpu = p.gpu_time_s * std::pow(bs, p.gpu_bs_exp);
    if (cfg.nodes > 1) {
      const double link_scale = 1.25 / std::max(cfg.net_gbps, 1e-3);
      gpu *= 1.0 + (p.multi_node_slowdown - 1.0) * link_scale;
    }
    inv->gpu_base = gpu;
    inv->mem_per_gpu = p.mem_bw_gbps * std::pow(bs, p.mem_bs_exp);
    inv->pcie_per_gpu = p.pcie_gbps * std::pow(bs, p.mem_bs_exp);
    inv->evals.reserve(128);
    ++stats_.invariant_builds;
    it = interned_.emplace(key, std::move(inv)).first;
  }
  last_key_ = key;
  last_entry_ = it->second.get();
  return *last_entry_;
}

int TrainPerf::saturation_cores_fast(const ModelParams& p,
                                     const Invariants& inv,
                                     const ContentionFactors& contention,
                                     int max_cores) const {
  // Reference predicate, over cached invariants:
  //   prep(c) = (serial + work / min(c, limit)) * max(1, prep_inflation)
  //   knee    = smallest c in 1..max with prep(c) <= gpu, else max.
  // prep(c) is (weakly) monotone nonincreasing in c — FP division and
  // addition are monotone — so a closed-form candidate plus a short exact
  // walk lands on the same index the linear scan would.
  const double pi = std::max(1.0, contention.prep_inflation);
  const double gpu = inv.gpu_base * std::max(1.0, contention.gpu_inflation);
  const auto prep_at = [&](int c) {
    const int usable = std::min(c, p.prep_parallel_limit);
    const double t = p.prep_serial_s + inv.prep_work / usable;
    return t * pi;
  };
  if (prep_at(1) <= gpu) {
    return 1;
  }
  const int limit = std::min(max_cores, p.prep_parallel_limit);
  if (prep_at(limit) > gpu) {
    // Early exit: prep is constant past the parallel limit, so no core
    // count in range fits under the GPU phase.
    return max_cores;
  }
  // Closed form: prep(c) <= gpu  <=>  work / c <= gpu / pi - serial.
  const double headroom = gpu / pi - p.prep_serial_s;
  int c = headroom > 0.0
              ? static_cast<int>(std::ceil(inv.prep_work / headroom))
              : limit;
  c = std::clamp(c, 2, limit);
  // FP rounding can put the candidate one step off the scan's answer;
  // walk with the exact predicate (monotone, so this terminates at the
  // true boundary in a step or two).
  while (c > 1 && prep_at(c - 1) <= gpu) {
    --c;
  }
  while (c < limit && prep_at(c) > gpu) {
    ++c;
  }
  return c;
}

const TrainPerf::EvalEntry& TrainPerf::evaluate(
    ModelId id, const TrainConfig& cfg, int cores,
    const ContentionFactors& contention) const {
  CODA_ASSERT(cores >= 1);
  const Invariants& inv = invariants(id, cfg);
  // invariants() is the only interned_ mutator, so inv stays valid while we
  // insert into its eval map (node-based containers, stable addresses).
  auto& evals = const_cast<Invariants&>(inv).evals;
  EvalKey key;
  key.cores = cores;
  key.prep_bits = bits_of(contention.prep_inflation);
  key.gpu_bits = bits_of(contention.gpu_inflation);
  auto it = evals.find(key);
  if (it != evals.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  const ModelParams& p = model_params(id);
  EvalEntry e;
  // Bit-identical to ref_prep_time / ref_gpu_phase_time / ref_iter_time /
  // ref_gpu_utilization, with the batch-power products replayed from the
  // invariant table and the knee scan replaced by the closed form.
  const int usable = std::min(cores, p.prep_parallel_limit);
  const double t = p.prep_serial_s + inv.prep_work / usable;
  e.prep = t * std::max(1.0, contention.prep_inflation);
  e.gpu = inv.gpu_base * std::max(1.0, contention.gpu_inflation);
  const double body = p.pipelined ? std::max(e.prep, e.gpu) : e.prep + e.gpu;
  e.iter = body + p.overhead_s;
  const int knee = saturation_cores_fast(p, inv, contention, kKneeScanMax);
  const double decay =
      1.0 - kOverAllocDecayPerCore * std::max(0, cores - knee);
  e.util = std::clamp(e.gpu / e.iter * decay * p.util_ceiling, 0.0, 1.0);
  return evals.emplace(key, e).first->second;
}

// ------------------------------------------------------------- public API

double TrainPerf::prep_time(ModelId id, const TrainConfig& cfg, int cores,
                            const ContentionFactors& contention) const {
  if (!memoize_) {
    return ref_prep_time(id, cfg, cores, contention);
  }
  return evaluate(id, cfg, cores, contention).prep;
}

double TrainPerf::gpu_phase_time(ModelId id, const TrainConfig& cfg,
                                 const ContentionFactors& contention) const {
  if (!memoize_) {
    return ref_gpu_phase_time(id, cfg, contention);
  }
  const Invariants& inv = invariants(id, cfg);
  return inv.gpu_base * std::max(1.0, contention.gpu_inflation);
}

double TrainPerf::iter_time(ModelId id, const TrainConfig& cfg, int cores,
                            const ContentionFactors& contention) const {
  if (!memoize_) {
    return ref_iter_time(id, cfg, cores, contention);
  }
  return evaluate(id, cfg, cores, contention).iter;
}

double TrainPerf::gpu_utilization(ModelId id, const TrainConfig& cfg,
                                  int cores,
                                  const ContentionFactors& contention) const {
  if (!memoize_) {
    return ref_gpu_utilization(id, cfg, cores, contention);
  }
  return evaluate(id, cfg, cores, contention).util;
}

double TrainPerf::throughput(ModelId id, const TrainConfig& cfg, int cores,
                             const ContentionFactors& contention) const {
  return 1.0 / iter_time(id, cfg, cores, contention);
}

double TrainPerf::samples_per_second(
    ModelId id, const TrainConfig& cfg, int cores,
    const ContentionFactors& contention) const {
  const ModelParams& p = model_params(id);
  const int bs = cfg.batch_size > 0 ? cfg.batch_size : p.default_batch;
  // Every GPU consumes one batch per iteration (data parallelism).
  return throughput(id, cfg, cores, contention) * bs * cfg.total_gpus();
}

double TrainPerf::mem_bw_demand_gbps(ModelId id, const TrainConfig& cfg,
                                     int cores) const {
  // Per-GPU peak demand at the optimal allocation, scaled by batch size
  // (Fig. 6) and by the achieved iteration rate: a core-starved job issues
  // iterations more slowly and therefore moves less data per second.
  if (!memoize_) {
    const ModelParams& p = model_params(id);
    const double bs = batch_ratio(id, cfg);
    const double per_gpu = p.mem_bw_gbps * std::pow(bs, p.mem_bs_exp);
    const int opt = optimal_cores(id, cfg);
    const double rate_scale =
        iter_time(id, cfg, opt) / iter_time(id, cfg, cores);
    return per_gpu * cfg.gpus_per_node * std::min(1.0, rate_scale);
  }
  const Invariants& inv = invariants(id, cfg);
  if (inv.opt_cores < 0) {
    optimal_cores(id, cfg);  // fills opt_cores/iter_at_opt
  }
  const double rate_scale =
      inv.iter_at_opt / evaluate(id, cfg, cores, {}).iter;
  return inv.mem_per_gpu * cfg.gpus_per_node * std::min(1.0, rate_scale);
}

double TrainPerf::pcie_demand_gbps(ModelId id, const TrainConfig& cfg,
                                   int cores) const {
  if (!memoize_) {
    const ModelParams& p = model_params(id);
    const double bs = batch_ratio(id, cfg);
    const double per_gpu = p.pcie_gbps * std::pow(bs, p.mem_bs_exp);
    const int opt = optimal_cores(id, cfg);
    const double rate_scale =
        iter_time(id, cfg, opt) / iter_time(id, cfg, cores);
    return per_gpu * cfg.gpus_per_node * std::min(1.0, rate_scale);
  }
  const Invariants& inv = invariants(id, cfg);
  if (inv.opt_cores < 0) {
    optimal_cores(id, cfg);
  }
  const double rate_scale =
      inv.iter_at_opt / evaluate(id, cfg, cores, {}).iter;
  return inv.pcie_per_gpu * cfg.gpus_per_node * std::min(1.0, rate_scale);
}

double TrainPerf::llc_demand_mb(ModelId id, const TrainConfig& cfg) const {
  return model_params(id).llc_mb * cfg.gpus_per_node;
}

int TrainPerf::optimal_cores(ModelId id, const TrainConfig& cfg,
                             int max_cores, double tolerance) const {
  CODA_ASSERT(max_cores >= 1);
  if (!memoize_) {
    return ref_optimal_cores(id, cfg, max_cores, tolerance);
  }
  constexpr int kDefaultMaxCores = 28;
  constexpr double kDefaultTolerance = 0.01;
  const bool default_args =
      max_cores == kDefaultMaxCores && tolerance == kDefaultTolerance;
  const Invariants& inv = invariants(id, cfg);
  if (default_args && inv.opt_cores >= 0) {
    return inv.opt_cores;
  }
  double best = 0.0;
  for (int c = 1; c <= max_cores; ++c) {
    best = std::max(best, evaluate(id, cfg, c, {}).util);
  }
  for (int c = 1; c <= max_cores; ++c) {
    if (evaluate(id, cfg, c, {}).util >= best * (1.0 - tolerance)) {
      if (default_args) {
        auto& mut = const_cast<Invariants&>(inv);
        mut.opt_cores = c;
        mut.iter_at_opt = evaluate(id, cfg, c, {}).iter;
      }
      return c;
    }
  }
  CODA_UNREACHABLE("optimal_cores: no core count reached best utilization");
}

void TrainPerf::set_memoize(bool on) {
  memoize_ = on;
  interned_.clear();
  last_entry_ = nullptr;
  stats_ = CacheStats{};
}

}  // namespace coda::perfmodel
