#include "perfmodel/train_perf.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/strings.h"

namespace coda::perfmodel {

namespace {

// Utilization decay per core held beyond the saturation knee (Fig. 3: GPU
// utilization "drops slightly" past the optimum — framework worker threads
// beyond the pipeline's needs add scheduling noise).
constexpr double kOverAllocDecayPerCore = 0.004;

}  // namespace

std::string TrainConfig::name() const {
  return util::strfmt("%dN%dG", nodes, nodes * gpus_per_node);
}

TrainConfig config_1n1g(int batch_size) {
  return TrainConfig{1, 1, batch_size};
}

TrainConfig config_1n4g(int batch_size) {
  return TrainConfig{1, 4, batch_size};
}

TrainConfig config_2n4g(int batch_size) {
  return TrainConfig{2, 2, batch_size};
}

double TrainPerf::batch_ratio(ModelId id, const TrainConfig& cfg) const {
  const ModelParams& p = model_params(id);
  const int bs = cfg.batch_size > 0 ? cfg.batch_size : p.default_batch;
  return static_cast<double>(bs) / p.default_batch;
}

double TrainPerf::prep_time(ModelId id, const TrainConfig& cfg, int cores,
                            const ContentionFactors& contention) const {
  CODA_ASSERT(cores >= 1);
  CODA_ASSERT(cfg.nodes >= 1 && cfg.gpus_per_node >= 1);
  const ModelParams& p = model_params(id);
  const double bs = batch_ratio(id, cfg);
  // Parallelizable prep work on one node: one data pipeline per local GPU,
  // with partially-shared decode/augmentation across GPUs (sub-linear
  // per-model growth slope, Sec. IV-B2).
  const double gpu_scale =
      1.0 + p.multi_gpu_prep_slope * (cfg.gpus_per_node - 1);
  double work = p.prep_work_core_s * std::pow(bs, p.prep_bs_exp) * gpu_scale;
  if (cfg.nodes > 1) {
    // Network-gated input pipeline: in multi-node runs the loader idles at
    // global synchronization barriers, so the effective per-iteration CPU
    // work observed is far smaller (Sec. IV-B2: measured multi-node CPU
    // demand collapses to <= 2 cores).
    work *= p.multi_node_prep_scale;
  }
  const int usable = std::min(cores, p.prep_parallel_limit);
  const double t = p.prep_serial_s + work / usable;
  return t * std::max(1.0, contention.prep_inflation);
}

double TrainPerf::gpu_phase_time(ModelId id, const TrainConfig& cfg,
                                 const ContentionFactors& contention) const {
  const ModelParams& p = model_params(id);
  const double bs = batch_ratio(id, cfg);
  double t = p.gpu_time_s * std::pow(bs, p.gpu_bs_exp);
  if (cfg.nodes > 1) {
    // Exposed gradient-synchronization cost over the 10 Gb/s interconnect
    // (calibrated to the paper's 25-30% degradation vs 1N4G). Slower links
    // expose proportionally more of the communication.
    const double link_scale = 1.25 / std::max(cfg.net_gbps, 1e-3);
    t *= 1.0 + (p.multi_node_slowdown - 1.0) * link_scale;
  }
  return t * std::max(1.0, contention.gpu_inflation);
}

double TrainPerf::iter_time(ModelId id, const TrainConfig& cfg, int cores,
                            const ContentionFactors& contention) const {
  const ModelParams& p = model_params(id);
  const double prep = prep_time(id, cfg, cores, contention);
  const double gpu = gpu_phase_time(id, cfg, contention);
  const double body = p.pipelined ? std::max(prep, gpu) : prep + gpu;
  return body + p.overhead_s;
}

int TrainPerf::saturation_cores(ModelId id, const TrainConfig& cfg,
                                const ContentionFactors& contention,
                                int max_cores) const {
  const double gpu = gpu_phase_time(id, cfg, contention);
  for (int c = 1; c <= max_cores; ++c) {
    if (prep_time(id, cfg, c, contention) <= gpu) {
      return c;
    }
  }
  return max_cores;
}

double TrainPerf::gpu_utilization(ModelId id, const TrainConfig& cfg,
                                  int cores,
                                  const ContentionFactors& contention) const {
  const double gpu = gpu_phase_time(id, cfg, contention);
  const double iter = iter_time(id, cfg, cores, contention);
  const int knee = saturation_cores(id, cfg, contention, /*max_cores=*/64);
  const double decay =
      1.0 - kOverAllocDecayPerCore * std::max(0, cores - knee);
  // util_ceiling: even a perfectly-fed GPU tops out below 100% SM
  // utilization (kernel efficiency differs per model, Fig. 3).
  const double ceiling = model_params(id).util_ceiling;
  return std::clamp(gpu / iter * decay * ceiling, 0.0, 1.0);
}

double TrainPerf::throughput(ModelId id, const TrainConfig& cfg, int cores,
                             const ContentionFactors& contention) const {
  return 1.0 / iter_time(id, cfg, cores, contention);
}

double TrainPerf::samples_per_second(
    ModelId id, const TrainConfig& cfg, int cores,
    const ContentionFactors& contention) const {
  const ModelParams& p = model_params(id);
  const int bs = cfg.batch_size > 0 ? cfg.batch_size : p.default_batch;
  // Every GPU consumes one batch per iteration (data parallelism).
  return throughput(id, cfg, cores, contention) * bs * cfg.total_gpus();
}

double TrainPerf::mem_bw_demand_gbps(ModelId id, const TrainConfig& cfg,
                                     int cores) const {
  const ModelParams& p = model_params(id);
  const double bs = batch_ratio(id, cfg);
  // Per-GPU peak demand at the optimal allocation, scaled by batch size
  // (Fig. 6) and by the achieved iteration rate: a core-starved job issues
  // iterations more slowly and therefore moves less data per second.
  const double per_gpu = p.mem_bw_gbps * std::pow(bs, p.mem_bs_exp);
  const int opt = optimal_cores(id, cfg);
  const double rate_scale =
      iter_time(id, cfg, opt) / iter_time(id, cfg, cores);
  return per_gpu * cfg.gpus_per_node * std::min(1.0, rate_scale);
}

double TrainPerf::pcie_demand_gbps(ModelId id, const TrainConfig& cfg,
                                   int cores) const {
  const ModelParams& p = model_params(id);
  const double bs = batch_ratio(id, cfg);
  const double per_gpu = p.pcie_gbps * std::pow(bs, p.mem_bs_exp);
  const int opt = optimal_cores(id, cfg);
  const double rate_scale =
      iter_time(id, cfg, opt) / iter_time(id, cfg, cores);
  return per_gpu * cfg.gpus_per_node * std::min(1.0, rate_scale);
}

double TrainPerf::llc_demand_mb(ModelId id, const TrainConfig& cfg) const {
  return model_params(id).llc_mb * cfg.gpus_per_node;
}

int TrainPerf::optimal_cores(ModelId id, const TrainConfig& cfg,
                             int max_cores, double tolerance) const {
  CODA_ASSERT(max_cores >= 1);
  double best = 0.0;
  for (int c = 1; c <= max_cores; ++c) {
    best = std::max(best, gpu_utilization(id, cfg, c));
  }
  for (int c = 1; c <= max_cores; ++c) {
    if (gpu_utilization(id, cfg, c) >= best * (1.0 - tolerance)) {
      return c;
    }
  }
  CODA_UNREACHABLE("optimal_cores: no core count reached best utilization");
}

}  // namespace coda::perfmodel
