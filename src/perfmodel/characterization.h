// Plot-ready characterization sweeps over the model zoo: the data behind
// Figs. 3, 5, 6 and 7 as structured tables, plus a CSV exporter so the
// figures can be regenerated with any plotting tool
// (`coda_cli characterize --out DIR`).
#pragma once

#include <string>
#include <vector>

#include "perfmodel/train_perf.h"
#include "util/result.h"

namespace coda::perfmodel {

// Fig. 3: one point of the speed/utilization-vs-cores curve.
struct CoreSweepPoint {
  ModelId model = ModelId::kAlexnet;
  std::string config;     // "1N1G" / "1N4G"
  int cores = 0;
  double samples_per_s = 0.0;
  double gpu_util = 0.0;
};

// Fig. 5 + Fig. 6: per model x configuration x batch summary.
struct ConfigSummary {
  ModelId model = ModelId::kAlexnet;
  std::string config;
  bool max_batch = false;
  int optimal_cores = 0;
  double mem_bw_gbps = 0.0;   // at the optimum
  double pcie_gbps = 0.0;
  double peak_util = 0.0;
};

// Fig. 7: normalized performance under a HEAT antagonist.
struct ContentionPoint {
  ModelId model = ModelId::kAlexnet;
  int heat_threads = 0;
  double normalized_perf = 0.0;  // vs solo at optimal cores
};

// Sweeps cores 1..max_cores for every model under 1N1G and 1N4G (Fig. 3).
std::vector<CoreSweepPoint> core_sweep(int max_cores = 16);

// Optimal cores + resource demands for every model across the evaluated
// configurations and batch sizes (Figs. 5 and 6).
std::vector<ConfigSummary> config_summaries();

// Normalized 1N1G performance against HEAT at each thread count (Fig. 7).
std::vector<ContentionPoint> contention_sweep(
    const std::vector<int>& heat_threads = {0, 4, 8, 12, 16, 20, 24, 28});

// Writes fig3_cores.csv, fig5_fig6_summary.csv and fig7_contention.csv
// under `directory`.
util::Status save_characterization_csv(const std::string& directory);

}  // namespace coda::perfmodel
