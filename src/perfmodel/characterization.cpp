#include "perfmodel/characterization.h"

#include "perfmodel/contention.h"
#include "util/csv.h"
#include "util/strings.h"

namespace coda::perfmodel {

std::vector<CoreSweepPoint> core_sweep(int max_cores) {
  TrainPerf perf;
  std::vector<CoreSweepPoint> out;
  for (ModelId m : kAllModels) {
    for (const auto cfg : {config_1n1g(), config_1n4g()}) {
      for (int c = 1; c <= max_cores; ++c) {
        out.push_back(CoreSweepPoint{m, cfg.name(), c,
                                     perf.samples_per_second(m, cfg, c),
                                     perf.gpu_utilization(m, cfg, c)});
      }
    }
  }
  return out;
}

std::vector<ConfigSummary> config_summaries() {
  TrainPerf perf;
  std::vector<ConfigSummary> out;
  for (ModelId m : kAllModels) {
    const auto& params = model_params(m);
    for (const auto base : {config_1n1g(), TrainConfig{1, 2, 0},
                            config_1n4g(), config_2n4g()}) {
      for (bool max_batch : {false, true}) {
        TrainConfig cfg = base;
        if (max_batch) {
          cfg.batch_size = params.max_batch;
        }
        const int opt = perf.optimal_cores(m, cfg);
        out.push_back(ConfigSummary{
            m, base.name(), max_batch, opt,
            perf.mem_bw_demand_gbps(m, cfg, opt),
            perf.pcie_demand_gbps(m, cfg, opt),
            perf.gpu_utilization(m, cfg, opt)});
      }
    }
  }
  return out;
}

std::vector<ContentionPoint> contention_sweep(
    const std::vector<int>& heat_threads) {
  TrainPerf perf;
  NodeContentionModel contention;
  const cluster::NodeConfig node;
  std::vector<ContentionPoint> out;
  for (ModelId m : kAllModels) {
    const auto cfg = config_1n1g();
    const int opt = perf.optimal_cores(m, cfg);
    const double solo = perf.throughput(m, cfg, opt);
    const auto& params = model_params(m);

    ResourceFootprint self;
    self.job = 1;
    self.is_gpu_job = true;
    self.mem_bw_gbps = perf.mem_bw_demand_gbps(m, cfg, opt);
    self.pcie_gbps = perf.pcie_demand_gbps(m, cfg, opt);
    self.llc_mb = perf.llc_demand_mb(m, cfg);
    self.bw_latency_sensitivity = params.bw_latency_sensitivity;
    self.bw_share_dependence = params.bw_share_dependence;
    self.llc_sensitivity = params.llc_sensitivity;

    for (int threads : heat_threads) {
      std::vector<ResourceFootprint> footprints = {self};
      if (threads > 0) {
        // Mirrors workload::HeatParams' defaults (8 GB/s and 1.2 MB LLC per
        // thread, 90% bandwidth-bound); perfmodel cannot depend on workload,
        // and tests/perfmodel_test.cpp pins the two in sync.
        ResourceFootprint antagonist;
        antagonist.job = 2;
        antagonist.mem_bw_gbps = 8.0 * threads;
        antagonist.llc_mb = 1.2 * threads;
        antagonist.bw_bound_fraction = 0.9;
        footprints.push_back(antagonist);
      }
      const auto report = contention.resolve(node, footprints);
      out.push_back(ContentionPoint{
          m, threads,
          perf.throughput(m, cfg, opt, report.jobs[0].factors) / solo});
    }
  }
  return out;
}

util::Status save_characterization_csv(const std::string& directory) {
  {
    util::CsvDocument doc;
    doc.header = {"model", "config", "cores", "samples_per_s", "gpu_util"};
    for (const auto& p : core_sweep()) {
      doc.rows.push_back({to_string(p.model), p.config,
                          std::to_string(p.cores),
                          util::strfmt("%.2f", p.samples_per_s),
                          util::strfmt("%.4f", p.gpu_util)});
    }
    if (auto status =
            util::write_csv_file(directory + "/fig3_cores.csv", doc);
        !status.ok()) {
      return status;
    }
  }
  {
    util::CsvDocument doc;
    doc.header = {"model",       "config",   "max_batch", "optimal_cores",
                  "mem_bw_gbps", "pcie_gbps", "peak_util"};
    for (const auto& s : config_summaries()) {
      doc.rows.push_back({to_string(s.model), s.config,
                          s.max_batch ? "1" : "0",
                          std::to_string(s.optimal_cores),
                          util::strfmt("%.2f", s.mem_bw_gbps),
                          util::strfmt("%.2f", s.pcie_gbps),
                          util::strfmt("%.4f", s.peak_util)});
    }
    if (auto status = util::write_csv_file(
            directory + "/fig5_fig6_summary.csv", doc);
        !status.ok()) {
      return status;
    }
  }
  {
    util::CsvDocument doc;
    doc.header = {"model", "heat_threads", "normalized_perf"};
    for (const auto& p : contention_sweep()) {
      doc.rows.push_back({to_string(p.model),
                          std::to_string(p.heat_threads),
                          util::strfmt("%.4f", p.normalized_perf)});
    }
    return util::write_csv_file(directory + "/fig7_contention.csv", doc);
  }
}

}  // namespace coda::perfmodel
