#include "perfmodel/contention.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace coda::perfmodel {

NodeContentionReport NodeContentionModel::resolve(
    const cluster::NodeConfig& config,
    const std::vector<ResourceFootprint>& footprints) const {
  NodeContentionReport report;
  resolve_into(config, footprints, &report);
  return report;
}

void NodeContentionModel::resolve_into(
    const cluster::NodeConfig& config,
    const std::vector<ResourceFootprint>& footprints,
    NodeContentionReport* out) const {
  NodeContentionReport& report = *out;
  report.jobs.clear();
  report.jobs.reserve(footprints.size());

  // Pass 1: node-wide totals after MBA throttling.
  double demand = 0.0;
  double llc = 0.0;
  double pcie = 0.0;
  for (const auto& fp : footprints) {
    const double eff = fp.mem_bw_cap_gbps >= 0.0
                           ? std::min(fp.mem_bw_gbps, fp.mem_bw_cap_gbps)
                           : fp.mem_bw_gbps;
    demand += eff;
    llc += fp.llc_mb;
    pcie += fp.pcie_gbps;
  }
  report.total_demand_gbps = demand;
  report.mem_pressure =
      config.mem_bw_gbps > 0.0 ? demand / config.mem_bw_gbps : 0.0;
  report.llc_pressure = config.llc_mb > 0.0 ? llc / config.llc_mb : 0.0;
  report.pcie_total_gbps = pcie;

  // Proportional bandwidth sharing once demand exceeds capacity.
  const double share =
      report.mem_pressure > 1.0 ? 1.0 / report.mem_pressure : 1.0;
  // DRAM queueing latency penalty above the knee (affects every consumer on
  // the node, independent of its own share — this is how tiny-footprint NLP
  // jobs still lose >= 50% under HEAT pressure, Fig. 7).
  const double latency_excess =
      std::max(0.0, report.mem_pressure - params_.latency_knee_pressure);
  // LLC pressure penalty beyond full occupancy.
  const double llc_excess = std::max(0.0, report.llc_pressure - 1.0);
  // PCIe inflation near link saturation.
  const double pcie_fraction =
      config.pcie_gbps > 0.0 ? pcie / config.pcie_gbps : 0.0;
  const double pcie_excess =
      std::max(0.0, pcie_fraction - params_.pcie_knee_fraction);

  // Pass 2: per-job outcomes.
  for (const auto& fp : footprints) {
    JobContention jc;
    jc.job = fp.job;
    const double eff = fp.mem_bw_cap_gbps >= 0.0
                           ? std::min(fp.mem_bw_gbps, fp.mem_bw_cap_gbps)
                           : fp.mem_bw_gbps;
    jc.achieved_bw_gbps = eff * share;

    if (fp.is_gpu_job) {
      // Bandwidth-share starvation: prep slows by (demand/achieved)^dep.
      const double starvation =
          share < 1.0 ? std::pow(1.0 / share, fp.bw_share_dependence) : 1.0;
      const double latency = 1.0 + fp.bw_latency_sensitivity * latency_excess;
      const double llc_penalty = 1.0 + fp.llc_sensitivity * llc_excess;
      jc.factors.prep_inflation = starvation * latency * llc_penalty;
      jc.factors.gpu_inflation =
          1.0 + params_.pcie_inflation_slope * pcie_excess;
    } else {
      // CPU job: Amdahl slowdown of its bandwidth-bound fraction. Throttling
      // (cap below demand) and sharing both reduce achieved bandwidth.
      const double f = std::clamp(fp.bw_bound_fraction, 0.0, 1.0);
      const double ratio = fp.mem_bw_gbps > 0.0 && jc.achieved_bw_gbps > 0.0
                               ? fp.mem_bw_gbps / jc.achieved_bw_gbps
                               : 1.0;
      jc.cpu_rate_factor = 1.0 / ((1.0 - f) + f * std::max(1.0, ratio));
      CODA_ASSERT(jc.cpu_rate_factor <= 1.0 + 1e-12);
    }
    report.jobs.push_back(jc);
  }
}

}  // namespace coda::perfmodel
