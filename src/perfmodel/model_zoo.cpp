#include "perfmodel/dnn_model.h"

#include "util/assert.h"

namespace coda::perfmodel {

namespace {

// Calibration notes (see DESIGN.md Sec. 3 and tests/perfmodel_test.cpp):
//  * 1N1G optimal cores = smallest c with prep_serial + prep_work/c <=
//    gpu_time. Chosen to match Fig. 5: Alexnet 6, VGG16 3, InceptionV3 2,
//    Resnet50 3, BAT 5, Transformer 2, Wavenet 6, DeepSpeech 4 — the paper's
//    qualitative ordering ("the simpler the CV network, the more CPUs";
//    Transformer is the only model already optimal at 2 cores in 1N1G).
//  * mem_bw_gbps matches Fig. 6's ordering: CV demand anti-correlated with
//    complexity (Alexnet highest), NLP tiny, Wavenet > DeepSpeech.
//  * bw_latency_sensitivity / bw_share_dependence reproduce Fig. 7: NLP
//    models lose >= 50% under HEAT pressure, Alexnet is bandwidth-bound,
//    VGG/Inception/Resnet are insensitive, DeepSpeech > Wavenet.
//  * util_ceiling: the measured GPU utilization each model tops out at
//    even when the input pipeline keeps up (kernel/SM efficiency); chosen
//    so the cluster-average utilization at optimal allocation lands near
//    the paper's CODA headline (62.1%) and at the owners' 1-2-cores-per-GPU
//    requests near the FIFO headline (45.4%).
//  * multi_node_slowdown calibrated so end-to-end multi-node throughput
//    lands 25-30% below 1N4G (Sec. IV-B2);
//    multi_node_prep_scale models the network-gated input pipeline that
//    makes measured multi-node CPU demand collapse to <= 2 cores.
constexpr ModelParams kZoo[kModelCount] = {
    // Alexnet: simplest CV net — shortest GPU iteration, heaviest relative
    // prep, biggest bandwidth + PCIe footprint. The only CV model whose CPU
    // demand grows with batch size (Fig. 5).
    {ModelId::kAlexnet, "Alexnet", ModelCategory::kCV,
     /*gpu_time_s=*/0.060, /*prep_work_core_s=*/0.320, /*prep_serial_s=*/0.004,
     /*prep_parallel_limit=*/26, /*overhead_s=*/0.003,
     /*util_ceiling=*/0.55, /*pipelined=*/true,
     /*default_batch=*/256, /*max_batch=*/512,
     /*multi_gpu_prep_slope=*/0.39,
     /*gpu_bs_exp=*/0.90, /*prep_bs_exp=*/1.10, /*mem_bs_exp=*/0.20,
     /*mem_bw_gbps=*/14.0, /*pcie_gbps=*/8.0, /*llc_mb=*/6.0,
     /*bw_latency_sensitivity=*/0.30, /*bw_share_dependence=*/0.80,
     /*llc_sensitivity=*/0.02,
     /*weights_gb=*/0.24, /*multi_node_slowdown=*/1.43,
     /*multi_node_prep_scale=*/0.20},
    // VGG16: large dense CV net — long GPU iteration hides prep easily.
    {ModelId::kVgg16, "VGG16", ModelCategory::kCV,
     0.220, 0.600, 0.004, 26, 0.008, 0.78, true,
     64, 128, 0.44, 1.00, 1.00, 0.10,
     6.0, 3.0, 8.0,
     0.05, 0.15, 0.02,
     0.53, 1.37, 0.20},
    // InceptionV3: deepest compute per byte of the CV set — lowest CPU and
    // bandwidth demand.
    {ModelId::kInceptionV3, "InceptionV3", ModelCategory::kCV,
     0.160, 0.300, 0.004, 26, 0.006, 0.72, true,
     64, 128, 0.50, 1.00, 1.00, 0.10,
     5.0, 2.0, 7.0,
     0.05, 0.15, 0.02,
     0.10, 1.33, 0.20},
    // Resnet50: moderate CV net; second PCIe-heavy model of Sec. IV-C3.
    {ModelId::kResnet50, "Resnet50", ModelCategory::kCV,
     0.130, 0.360, 0.004, 26, 0.005, 0.70, true,
     64, 256, 0.44, 1.00, 1.00, 0.10,
     8.0, 8.0, 7.5,
     0.05, 0.20, 0.02,
     0.10, 1.35, 0.20},
    // Bi-att-Flow (BAT): NLP reader — heavy per-iteration vector prep on the
    // CPU, tiny bandwidth footprint, very contention-latency sensitive.
    {ModelId::kBiAttFlow, "BAT", ModelCategory::kNLP,
     0.350, 1.620, 0.006, 26, 0.010, 0.62, true,
     60, 120, 0.40, 1.00, 1.00, 0.00,
     2.0, 0.5, 3.0,
     1.30, 0.10, 0.02,
     0.09, 1.42, 0.20},
    // Transformer: the one model already optimal at 2 cores in 1N1G (Fig. 3);
    // most latency-sensitive under bandwidth pressure (Fig. 7).
    {ModelId::kTransformer, "Transformer", ModelCategory::kNLP,
     0.300, 0.550, 0.006, 26, 0.009, 0.68, true,
     4096, 8192, 0.50, 1.00, 1.00, 0.00,
     1.5, 0.5, 3.5,
     1.40, 0.10, 0.02,
     0.25, 1.38, 0.20},
    // Wavenet: speech synthesis — audio re-cut each iteration gives it the
    // highest Speech CPU demand, and bandwidth that grows with batch size.
    {ModelId::kWavenet, "Wavenet", ModelCategory::kSpeech,
     0.250, 1.400, 0.005, 26, 0.008, 0.60, true,
     8, 32, 0.39, 1.00, 1.00, 0.60,
     9.0, 0.8, 5.0,
     0.35, 0.50, 0.02,
     0.12, 1.41, 0.20},
    // DeepSpeech: no audio re-cut — lighter prep than Wavenet but more
    // latency-sensitive to contention (Fig. 7).
    {ModelId::kDeepSpeech, "DeepSpeech", ModelCategory::kSpeech,
     0.300, 1.000, 0.005, 26, 0.009, 0.64, true,
     32, 64, 0.42, 1.00, 1.00, 0.00,
     4.0, 0.8, 4.5,
     0.95, 0.20, 0.02,
     0.15, 1.36, 0.20},
};

}  // namespace

const char* to_string(ModelId id) { return model_params(id).name; }

const char* to_string(ModelCategory category) {
  switch (category) {
    case ModelCategory::kCV:
      return "CV";
    case ModelCategory::kNLP:
      return "NLP";
    case ModelCategory::kSpeech:
      return "Speech";
  }
  return "?";
}

const ModelParams& model_params(ModelId id) {
  const auto idx = static_cast<size_t>(id);
  CODA_ASSERT(idx < kModelCount);
  const ModelParams& p = kZoo[idx];
  CODA_ASSERT(p.id == id);
  return p;
}

int default_start_cores(ModelCategory category) {
  switch (category) {
    case ModelCategory::kCV:
      return 3;
    case ModelCategory::kNLP:
      return 5;
    case ModelCategory::kSpeech:
      return 5;
  }
  CODA_UNREACHABLE("bad category");
}

}  // namespace coda::perfmodel
