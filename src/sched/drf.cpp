#include "sched/drf.h"

#include <algorithm>

#include "util/assert.h"

namespace coda::sched {

void DrfScheduler::submit(const workload::JobSpec& spec) {
  tenants_[spec.tenant].queue.push_back(spec);
  if (spec.is_gpu_job()) {
    ++gpu_pending_;
  }
}

void DrfScheduler::on_job_finished(const workload::JobSpec& spec) {
  auto it = tenants_.find(spec.tenant);
  CODA_ASSERT(it != tenants_.end());
  const auto req = baseline_request(spec);
  it->second.allocated -=
      cluster::ResourceVector{req.cpus_per_node * req.nodes,
                              req.gpus_per_node * req.nodes};
  CODA_ASSERT(it->second.allocated.non_negative());
}

void DrfScheduler::on_job_evicted(const workload::JobSpec& spec) {
  // Release the accounting exactly like a finish, then re-queue at the
  // tenant's head (or hand the job to the retry policy).
  on_job_finished(spec);
  if (!retry_after_eviction(spec)) {
    return;
  }
  tenants_[spec.tenant].queue.push_front(spec);
  if (spec.is_gpu_job()) {
    ++gpu_pending_;
  }
}

size_t DrfScheduler::pending() const {
  size_t n = 0;
  for (const auto& [id, state] : tenants_) {
    n += state.queue.size();
  }
  return n;
}

std::optional<sched::Scheduler::PendingGpuDemand>
DrfScheduler::min_pending_gpu_demand() const {
  std::optional<PendingGpuDemand> best;
  for (const auto& [id, state] : tenants_) {
    // Any tenant's head may be offered resources next.
    if (state.queue.empty() || !state.queue.front().is_gpu_job()) {
      continue;
    }
    const auto& spec = state.queue.front();
    PendingGpuDemand d{spec.train_config.gpus_per_node,
                       std::max(1, spec.requested_cpus)};
    if (!best || d.gpus_per_node < best->gpus_per_node ||
        (d.gpus_per_node == best->gpus_per_node &&
         d.cpus_per_node < best->cpus_per_node)) {
      best = d;
    }
  }
  return best;
}

double DrfScheduler::dominant_share(cluster::TenantId tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return 0.0;
  }
  const auto& alloc = it->second.allocated;
  const double cpu_share =
      static_cast<double>(alloc.cpus) / env_.cluster->total_cpus();
  const double gpu_share =
      static_cast<double>(alloc.gpus) / env_.cluster->total_gpus();
  return std::max(cpu_share, gpu_share);
}

void DrfScheduler::kick() {
  // Progressive filling: repeatedly pick the lowest-dominant-share tenant
  // whose head job fits. A tenant whose head does not fit is skipped this
  // round (no cross-tenant head-of-line blocking), but its own queue stays
  // FIFO.
  //
  // Shapes that failed placement stay cached while the placement-index
  // generation is unchanged: within a kick capacity only shrinks (rounds
  // only start jobs), so a failure in one round still holds in the next,
  // and a kick that begins with the cluster untouched since the last one
  // inherits the previous kick's failures wholesale.
  const auto& index = env_.cluster->placement_index();
  if (index.generation() != failed_gen_) {
    failed_shapes_.clear();
  }
  while (true) {
    // Order tenants with pending jobs by (dominant share, id).
    std::vector<cluster::TenantId> order;
    for (const auto& [id, state] : tenants_) {
      if (!state.queue.empty()) {
        order.push_back(id);
      }
    }
    std::sort(order.begin(), order.end(),
              [this](cluster::TenantId a, cluster::TenantId b) {
                const double sa = dominant_share(a);
                const double sb = dominant_share(b);
                if (sa != sb) {
                  return sa < sb;
                }
                return a < b;
              });
    bool started = false;
    const auto already_failed = [this](const PlacementRequest& req) {
      for (const auto& f : failed_shapes_) {
        if (f.nodes == req.nodes && f.gpus_per_node == req.gpus_per_node &&
            f.cpus_per_node == req.cpus_per_node) {
          return true;
        }
      }
      return false;
    };
    for (cluster::TenantId id : order) {
      TenantState& state = tenants_[id];
      const workload::JobSpec& head = state.queue.front();
      const auto req = baseline_request(head);
      if (already_failed(req)) {
        continue;
      }
      auto placement = find_placement(*env_.cluster, req);
      if (!placement.has_value()) {
        failed_shapes_.push_back(req);
        continue;
      }
      const auto status = env_.start_job(head.id, *placement);
      CODA_ASSERT_MSG(status.ok(), "DRF proposed an infeasible placement");
      state.allocated +=
          cluster::ResourceVector{req.cpus_per_node * req.nodes,
                                  req.gpus_per_node * req.nodes};
      if (head.is_gpu_job()) {
        --gpu_pending_;
      }
      state.queue.pop_front();
      started = true;
      break;  // shares changed; recompute the order
    }
    if (!started) {
      failed_gen_ = index.generation();
      return;
    }
  }
}

}  // namespace coda::sched
