// DRF baseline: Dominant Resource Fairness across tenants (Ghodsi et al.,
// NSDI'11), the second comparison point of the paper's evaluation.
//
// Each tenant's dominant share is its maximum share across the two
// schedulable resources (CPU cores, GPUs). The scheduler repeatedly offers
// the next start to the tenant with the smallest dominant share whose
// head-of-queue job fits; within a tenant, jobs stay FIFO. GPU jobs receive
// the cores their owner requested — like FIFO, nothing adapts.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "sched/placement.h"
#include "sched/scheduler.h"

namespace coda::sched {

class DrfScheduler : public Scheduler {
 public:
  const char* name() const override { return "DRF"; }

  void submit(const workload::JobSpec& spec) override;
  void on_job_finished(const workload::JobSpec& spec) override;
  void on_job_evicted(const workload::JobSpec& spec) override;
  void kick() override;

  size_t pending() const;
  size_t pending_jobs() const override { return pending(); }
  size_t pending_gpu_jobs() const override { return gpu_pending_; }
  std::optional<PendingGpuDemand> min_pending_gpu_demand() const override;
  // Current dominant share of one tenant (tests / Fig. 12 analysis).
  double dominant_share(cluster::TenantId tenant) const;

  void save_state(state::Writer* w) const override;
  void load_state(state::Reader* r, const SpecMap& specs) override;

 private:
  struct TenantState {
    std::deque<workload::JobSpec> queue;
    cluster::ResourceVector allocated;
  };

  std::map<cluster::TenantId, TenantState> tenants_;
  size_t gpu_pending_ = 0;
  // Request shapes that failed placement, valid while the cluster's
  // placement-index generation stays at failed_gen_. Offer rounds within a
  // kick only start jobs (capacity shrinks monotonically), so failures
  // carry across rounds and — when nothing in the cluster changed — across
  // whole kicks.
  std::vector<PlacementRequest> failed_shapes_;
  uint64_t failed_gen_ = ~0ULL;
};

}  // namespace coda::sched
