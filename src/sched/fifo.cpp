#include "sched/fifo.h"

#include "util/assert.h"

namespace coda::sched {

void FifoScheduler::submit(const workload::JobSpec& spec) {
  queue_.push_back(spec);
  if (spec.is_gpu_job()) {
    ++gpu_pending_;
  }
}

void FifoScheduler::on_job_finished(const workload::JobSpec&) {}

void FifoScheduler::on_job_evicted(const workload::JobSpec& spec) {
  if (!retry_after_eviction(spec)) {
    // Delayed resubmission (or abandonment) handled by the retry policy.
    return;
  }
  // Victims of a node failure go back to the head of the queue.
  queue_.push_front(spec);
  if (spec.is_gpu_job()) {
    ++gpu_pending_;
  }
}

void FifoScheduler::kick() {
  // One pass over the backfill window in arrival order: start everything
  // that fits right now. Jobs that do not fit stay queued in place; with
  // window == 1 this degenerates to strict head-of-line-blocking FIFO.
  //
  // Free capacity only shrinks during the pass (starts allocate, nothing
  // releases), and node feasibility is monotone in free resources — so once
  // a request shape fails, every identical shape later in the window must
  // fail too and its placement search can be skipped. Backlogged queues
  // repeat a handful of shapes hundreds of times per kick. The failed set
  // even survives across kicks: it is only stale once the cluster actually
  // changed, which the placement-index generation tracks exactly.
  int examined = 0;
  const auto& index = env_.cluster->placement_index();
  if (index.generation() != failed_gen_) {
    failed_shapes_.clear();
  }
  const auto already_failed = [this](const PlacementRequest& req) {
    for (const auto& f : failed_shapes_) {
      if (f.nodes == req.nodes && f.gpus_per_node == req.gpus_per_node &&
          f.cpus_per_node == req.cpus_per_node) {
        return true;
      }
    }
    return false;
  };
  for (auto it = queue_.begin();
       it != queue_.end() && examined < backfill_window_; ++examined) {
    const PlacementRequest request = baseline_request(*it);
    if (already_failed(request)) {
      ++it;
      continue;
    }
    auto placement = find_placement(*env_.cluster, request);
    if (!placement.has_value()) {
      failed_shapes_.push_back(request);
      ++it;
      continue;
    }
    const auto status = env_.start_job(it->id, *placement);
    CODA_ASSERT_MSG(status.ok(), "FIFO proposed an infeasible placement");
    if (it->is_gpu_job()) {
      --gpu_pending_;
    }
    it = queue_.erase(it);
  }
  failed_gen_ = index.generation();
}

std::optional<sched::Scheduler::PendingGpuDemand>
FifoScheduler::min_pending_gpu_demand() const {
  // Smallest per-node demand among GPU jobs inside the backfill window —
  // the jobs this policy could actually start next.
  std::optional<PendingGpuDemand> best;
  int examined = 0;
  for (const auto& spec : queue_) {
    if (examined++ >= backfill_window_) {
      break;
    }
    if (!spec.is_gpu_job()) {
      continue;
    }
    PendingGpuDemand d{spec.train_config.gpus_per_node,
                       std::max(1, spec.requested_cpus)};
    if (!best || d.gpus_per_node < best->gpus_per_node ||
        (d.gpus_per_node == best->gpus_per_node &&
         d.cpus_per_node < best->cpus_per_node)) {
      best = d;
    }
  }
  return best;
}

}  // namespace coda::sched
