// FIFO baseline: one global queue in strict arrival order with bounded
// backfill — the paper's production SLURM configuration (Sec. III-A) and the
// first comparison point of the evaluation (Sec. VI). SLURM's default
// scheduler backfills: jobs behind a blocked head may start when they fit,
// scanning a bounded window of the queue. A window of 1 recovers strict
// head-of-line-blocking FIFO.
//
// GPU jobs receive exactly the CPU cores their owner requested; nothing
// adapts, nothing is throttled. This is what produces the pathologies the
// paper measures: GPU fragmentation from over-asking jobs and long GPU-job
// queueing behind bursts of CPU jobs.
#pragma once

#include <list>

#include "sched/placement.h"
#include "sched/scheduler.h"

namespace coda::sched {

class FifoScheduler : public Scheduler {
 public:
  // `backfill_window`: how many queued jobs a scheduling pass may examine
  // (in arrival order) before giving up; 1 = strict FIFO.
  explicit FifoScheduler(int backfill_window = 256)
      : backfill_window_(backfill_window) {}

  const char* name() const override { return "FIFO"; }

  void submit(const workload::JobSpec& spec) override;
  void on_job_finished(const workload::JobSpec& spec) override;
  void on_job_evicted(const workload::JobSpec& spec) override;
  void kick() override;

  size_t pending() const { return queue_.size(); }
  size_t pending_jobs() const override { return queue_.size(); }
  size_t pending_gpu_jobs() const override { return gpu_pending_; }
  std::optional<PendingGpuDemand> min_pending_gpu_demand() const override;

  void save_state(state::Writer* w) const override;
  void load_state(state::Reader* r, const SpecMap& specs) override;

 private:
  int backfill_window_;
  // std::list, not deque: backfill erases from the middle of the queue, and
  // a deque erase copies every JobSpec between the gap and the nearer end —
  // quadratic during failure-storm backlogs. Iteration order is identical.
  std::list<workload::JobSpec> queue_;
  size_t gpu_pending_ = 0;
  // Request shapes that failed placement, valid while the cluster's
  // placement-index generation stays at failed_gen_. Free capacity only
  // shrinks during a kick (starts allocate, nothing releases), so failures
  // recorded mid-kick still hold at kick exit; if no cluster mutation
  // happens between kicks the whole set carries over and repeat shapes
  // skip their placement search entirely.
  std::vector<PlacementRequest> failed_shapes_;
  uint64_t failed_gen_ = ~0ULL;
};

}  // namespace coda::sched
