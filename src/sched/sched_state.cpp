// Snapshot (de)serialization for the base Scheduler and the FIFO/DRF
// baselines. Queue contents are written as job-id sequences in queue order;
// load_state rehydrates the full JobSpecs from the snapshot's embedded
// session (SpecMap), so specs are stored exactly once per session.
#include <algorithm>

#include "sched/drf.h"
#include "sched/fifo.h"
#include "sched/scheduler.h"
#include "state/serde.h"

namespace coda::sched {

namespace {

// Looks up a job id from a serialized queue; poisons the reader when the
// embedded session does not know the job (corrupt or mismatched snapshot).
const workload::JobSpec* spec_of(state::Reader* r, const SpecMap& specs,
                                 cluster::JobId id) {
  auto it = specs.find(id);
  if (it == specs.end()) {
    r->fail("serialized state references unknown job " + std::to_string(id));
    return nullptr;
  }
  return &it->second;
}

}  // namespace

void Scheduler::save_state(state::Writer* w) const {
  // unordered_map: emit sorted by id so equal states serialize identically.
  std::vector<std::pair<cluster::JobId, int>> evictions(evictions_.begin(),
                                                        evictions_.end());
  std::sort(evictions.begin(), evictions.end());
  w->line("retry_evictions", evictions.size());
  for (const auto& [id, count] : evictions) {
    w->line("evx", id, count);
  }
}

void Scheduler::load_state(state::Reader* r, const SpecMap& /*specs*/) {
  r->expect("retry_evictions");
  const uint64_t n = r->u64();
  evictions_.clear();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("evx");
    const cluster::JobId id = r->u64();
    evictions_[id] = r->i32();
  }
}

// ----------------------------------------------------------------- FIFO

void FifoScheduler::save_state(state::Writer* w) const {
  Scheduler::save_state(w);
  w->line("fifo_queue", queue_.size());
  for (const workload::JobSpec& spec : queue_) {
    w->line("fq", spec.id);
  }
  w->line("fifo_gpu_pending", gpu_pending_);
}

void FifoScheduler::load_state(state::Reader* r, const SpecMap& specs) {
  Scheduler::load_state(r, specs);
  r->expect("fifo_queue");
  const uint64_t n = r->u64();
  queue_.clear();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("fq");
    if (const workload::JobSpec* spec = spec_of(r, specs, r->u64())) {
      queue_.push_back(*spec);
    }
  }
  r->expect("fifo_gpu_pending");
  gpu_pending_ = r->u64();
}

// ------------------------------------------------------------------ DRF

void DrfScheduler::save_state(state::Writer* w) const {
  Scheduler::save_state(w);
  w->line("drf_tenants", tenants_.size());
  for (const auto& [tenant, st] : tenants_) {
    w->line("ten", tenant, st.allocated.cpus, st.allocated.gpus,
            st.queue.size());
    for (const workload::JobSpec& spec : st.queue) {
      w->line("tq", spec.id);
    }
  }
  w->line("drf_gpu_pending", gpu_pending_);
}

void DrfScheduler::load_state(state::Reader* r, const SpecMap& specs) {
  Scheduler::load_state(r, specs);
  r->expect("drf_tenants");
  const uint64_t n = r->u64();
  tenants_.clear();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("ten");
    const cluster::TenantId tenant = static_cast<cluster::TenantId>(r->u64());
    TenantState& st = tenants_[tenant];
    st.allocated.cpus = r->i32();
    st.allocated.gpus = r->i32();
    const uint64_t k = r->u64();
    for (uint64_t j = 0; j < k && r->ok(); ++j) {
      r->expect("tq");
      if (const workload::JobSpec* spec = spec_of(r, specs, r->u64())) {
        st.queue.push_back(*spec);
      }
    }
  }
  r->expect("drf_gpu_pending");
  gpu_pending_ = r->u64();
}

}  // namespace coda::sched
