// Placement search: find nodes for a job's resource request.
//
// All policies use best-fit packing (choose the feasible node that leaves
// the fewest free GPUs, then the fewest free cores) so that baseline-vs-CODA
// differences come from the *scheduling policy*, not the packer.
#pragma once

#include <functional>
#include <optional>

#include "cluster/cluster.h"
#include "sched/scheduler.h"
#include "workload/job.h"

namespace coda::sched {

// Restricts which nodes a search may use; return true to allow.
using NodeFilter = std::function<bool(const cluster::Node&)>;

// Always-true filter.
NodeFilter any_node();

// How many CPU cores a placement should give the job on each node.
// For GPU jobs this is the paper's per-node core count (requested by the
// owner under the baselines, assigned by the CPU allocator under CODA).
struct PlacementRequest {
  int nodes = 1;          // distinct nodes required
  int gpus_per_node = 0;  // GPUs on each node (0 for CPU jobs)
  int cpus_per_node = 1;  // cores on each node
};

// Builds the request implied by a JobSpec under baseline scheduling (the
// owner's own CPU ask). CODA overrides cpus_per_node.
PlacementRequest baseline_request(const workload::JobSpec& spec);

// Finds a best-fit placement, or nullopt when the filtered cluster cannot
// host the request right now. Deterministic: ties break on node id.
std::optional<Placement> find_placement(const cluster::Cluster& cluster,
                                        const PlacementRequest& request,
                                        const NodeFilter& filter = any_node());

// Counts how many requests of this shape could start right now (capacity
// probes used by array rebalancing); stops counting at `limit`.
int count_feasible(const cluster::Cluster& cluster,
                   const PlacementRequest& request, const NodeFilter& filter,
                   int limit);

}  // namespace coda::sched
