// Placement search: find nodes for a job's resource request.
//
// All policies use best-fit packing (choose the feasible node that leaves
// the fewest free GPUs, then the fewest free cores) so that baseline-vs-CODA
// differences come from the *scheduling policy*, not the packer.
#pragma once

#include <functional>
#include <optional>

#include "cluster/cluster.h"
#include "sched/scheduler.h"
#include "workload/job.h"

namespace coda::sched {

// Restricts which nodes a search may use; return true to allow.
using NodeFilter = std::function<bool(const cluster::Node&)>;

// Always-true filter.
NodeFilter any_node();

// How many CPU cores a placement should give the job on each node.
// For GPU jobs this is the paper's per-node core count (requested by the
// owner under the baselines, assigned by the CPU allocator under CODA).
struct PlacementRequest {
  int nodes = 1;          // distinct nodes required
  int gpus_per_node = 0;  // GPUs on each node (0 for CPU jobs)
  int cpus_per_node = 1;  // cores on each node
};

// Builds the request implied by a JobSpec under baseline scheduling (the
// owner's own CPU ask). CODA overrides cpus_per_node.
PlacementRequest baseline_request(const workload::JobSpec& spec);

// Half-open node-id interval a search is restricted to. Every structural
// node restriction the schedulers use (CODA's four-GPU/one-GPU arrays) is
// an id threshold, which lets the search run on the cluster's placement
// index instead of a full scan.
using IdRange = cluster::PlacementIndex::IdRange;

// Finds a best-fit placement over all nodes (or an id range), or nullopt
// when the cluster cannot host the request right now. Deterministic: ties
// break on node id. Served from the cluster's placement index unless it is
// disabled (CODA_NO_PLACEMENT_INDEX=1 or set_placement_index_enabled) —
// both paths return bit-identical results.
std::optional<Placement> find_placement(const cluster::Cluster& cluster,
                                        const PlacementRequest& request);
std::optional<Placement> find_placement(const cluster::Cluster& cluster,
                                        const PlacementRequest& request,
                                        IdRange range);

// Arbitrary-predicate variant: always a linear scan (the index cannot
// answer opaque filters). Kept for callers with genuinely ad-hoc
// restrictions; the hot scheduler paths use the overloads above.
std::optional<Placement> find_placement(const cluster::Cluster& cluster,
                                        const PlacementRequest& request,
                                        const NodeFilter& filter);

// Counts how many requests of this shape could start right now (capacity
// probes used by array rebalancing); stops counting at `limit`. The IdRange
// overload answers from bucket counts; the NodeFilter overload scans.
int count_feasible(const cluster::Cluster& cluster,
                   const PlacementRequest& request, IdRange range, int limit);
int count_feasible(const cluster::Cluster& cluster,
                   const PlacementRequest& request, const NodeFilter& filter,
                   int limit);

// Runtime switch between the indexed and linear-scan search paths. The
// index is maintained either way, so toggling is safe at any time; the
// scale bench uses it to measure both implementations side by side.
bool placement_index_enabled();
void set_placement_index_enabled(bool enabled);

}  // namespace coda::sched
