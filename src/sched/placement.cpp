#include "sched/placement.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "util/assert.h"

namespace coda::sched {

namespace {

bool read_index_enabled_from_env() {
  const char* v = std::getenv("CODA_NO_PLACEMENT_INDEX");
  return v == nullptr || v[0] == '\0' || std::string_view(v) == "0";
}

bool& index_enabled_flag() {
  static bool enabled = read_index_enabled_from_env();
  return enabled;
}

}  // namespace

bool placement_index_enabled() { return index_enabled_flag(); }

void set_placement_index_enabled(bool enabled) {
  index_enabled_flag() = enabled;
}

NodeFilter any_node() {
  return [](const cluster::Node&) { return true; };
}

PlacementRequest baseline_request(const workload::JobSpec& spec) {
  PlacementRequest req;
  if (spec.is_gpu_job()) {
    req.nodes = spec.train_config.nodes;
    req.gpus_per_node = spec.train_config.gpus_per_node;
    req.cpus_per_node = std::max(1, spec.requested_cpus);
  } else {
    req.nodes = 1;
    req.gpus_per_node = 0;
    req.cpus_per_node = std::max(1, spec.cpu_cores);
  }
  return req;
}

namespace {

// Best-fit score: prefer nodes that would be left with the fewest free GPUs,
// then the fewest free cores (pack tightly, keep big holes open for big
// jobs). Lower is better.
struct Candidate {
  const cluster::Node* node = nullptr;
  int free_gpus_after = 0;
  int free_cpus_after = 0;

  bool operator<(const Candidate& other) const {
    if (free_gpus_after != other.free_gpus_after) {
      return free_gpus_after < other.free_gpus_after;
    }
    if (free_cpus_after != other.free_cpus_after) {
      return free_cpus_after < other.free_cpus_after;
    }
    return node->id() < other.node->id();
  }
};

// Linear-scan search shared by the NodeFilter overload and the index-off
// fallback; `pred` is any callable over const Node&.
template <typename Pred>
std::optional<Placement> find_placement_linear(const cluster::Cluster& cluster,
                                               const PlacementRequest& request,
                                               Pred&& pred) {
  // Single-node requests (every CPU job and most GPU jobs) dominate the
  // schedulers' probe traffic: pick the best-fit node in one pass with no
  // candidate buffer at all. The comparator is a strict total order (ties
  // break on node id), so the running minimum is exactly sort()[0].
  if (request.nodes == 1) {
    Candidate best;
    for (const auto& node : cluster.nodes()) {
      if (!pred(node) ||
          !node.can_fit(request.cpus_per_node, request.gpus_per_node)) {
        continue;
      }
      Candidate c{&node, node.free_gpus() - request.gpus_per_node,
                  node.free_cpus() - request.cpus_per_node};
      if (best.node == nullptr || c < best) {
        best = c;
      }
    }
    if (best.node == nullptr) {
      return std::nullopt;
    }
    Placement placement;
    placement.nodes.push_back(NodePlacement{
        best.node->id(), request.cpus_per_node, request.gpus_per_node});
    return placement;
  }
  // Multi-node: rank every feasible node, take the best `nodes`. The
  // scratch buffer is reused across calls (one per runner thread); only the
  // leading `request.nodes` entries need to be ordered, and partial_sort
  // selects the same prefix as a full sort under a total order.
  static thread_local std::vector<Candidate> candidates;
  candidates.clear();
  for (const auto& node : cluster.nodes()) {
    if (!pred(node)) {
      continue;
    }
    if (!node.can_fit(request.cpus_per_node, request.gpus_per_node)) {
      continue;
    }
    candidates.push_back(
        Candidate{&node, node.free_gpus() - request.gpus_per_node,
                  node.free_cpus() - request.cpus_per_node});
  }
  if (static_cast<int>(candidates.size()) < request.nodes) {
    return std::nullopt;
  }
  std::partial_sort(candidates.begin(),
                    candidates.begin() + request.nodes, candidates.end());
  Placement placement;
  for (int i = 0; i < request.nodes; ++i) {
    placement.nodes.push_back(NodePlacement{candidates[static_cast<size_t>(i)].node->id(),
                                            request.cpus_per_node,
                                            request.gpus_per_node});
  }
  return placement;
}

// Capacity probe shared by the NodeFilter overload and the index-off
// fallback: how many *disjoint* placements fit, assuming each node can host
// floor(free/need) copies.
template <typename Pred>
int count_feasible_linear(const cluster::Cluster& cluster,
                          const PlacementRequest& request, Pred&& pred,
                          int limit) {
  int total_slots = 0;
  for (const auto& node : cluster.nodes()) {
    if (!pred(node)) {
      continue;
    }
    int by_cpu = request.cpus_per_node > 0
                     ? node.free_cpus() / request.cpus_per_node
                     : limit;
    int by_gpu = request.gpus_per_node > 0
                     ? node.free_gpus() / request.gpus_per_node
                     : limit;
    total_slots += std::min(by_cpu, by_gpu);
    if (total_slots / request.nodes >= limit) {
      return limit;
    }
  }
  return std::min(limit, total_slots / request.nodes);
}

bool in_range(const cluster::Node& node, IdRange range) {
  return node.id() >= range.lo && node.id() < range.hi;
}

}  // namespace

std::optional<Placement> find_placement(const cluster::Cluster& cluster,
                                        const PlacementRequest& request) {
  return find_placement(cluster, request, IdRange{});
}

std::optional<Placement> find_placement(const cluster::Cluster& cluster,
                                        const PlacementRequest& request,
                                        IdRange range) {
  CODA_ASSERT(request.nodes >= 1);
  CODA_ASSERT(request.cpus_per_node >= 1 || request.gpus_per_node >= 1);
  if (!placement_index_enabled()) {
    return find_placement_linear(
        cluster, request,
        [range](const cluster::Node& node) { return in_range(node, range); });
  }
  // Bucket probe: the index walks (free_gpus, free_cpus, id) ascending from
  // the request's demand, which is exactly the best-fit preference order, so
  // the first `nodes` feasible ids it yields are the linear scan's answer.
  static thread_local std::vector<cluster::NodeId> ids;
  ids.clear();
  const size_t got = cluster.placement_index().collect_best_fit(
      request.gpus_per_node, request.cpus_per_node, range,
      static_cast<size_t>(request.nodes), &ids);
  if (got < static_cast<size_t>(request.nodes)) {
    return std::nullopt;
  }
  Placement placement;
  for (cluster::NodeId id : ids) {
    placement.nodes.push_back(
        NodePlacement{id, request.cpus_per_node, request.gpus_per_node});
  }
  return placement;
}

std::optional<Placement> find_placement(const cluster::Cluster& cluster,
                                        const PlacementRequest& request,
                                        const NodeFilter& filter) {
  CODA_ASSERT(request.nodes >= 1);
  CODA_ASSERT(request.cpus_per_node >= 1 || request.gpus_per_node >= 1);
  return find_placement_linear(cluster, request, filter);
}

int count_feasible(const cluster::Cluster& cluster,
                   const PlacementRequest& request, IdRange range, int limit) {
  if (!placement_index_enabled()) {
    return count_feasible_linear(
        cluster, request,
        [range](const cluster::Node& node) { return in_range(node, range); },
        limit);
  }
  const long long stop =
      static_cast<long long>(limit) * static_cast<long long>(request.nodes);
  const long long total = cluster.placement_index().feasible_slots(
      request.gpus_per_node, request.cpus_per_node, range, limit, stop);
  const long long count = total / request.nodes;
  return static_cast<int>(std::min<long long>(limit, count));
}

int count_feasible(const cluster::Cluster& cluster,
                   const PlacementRequest& request, const NodeFilter& filter,
                   int limit) {
  return count_feasible_linear(cluster, request, filter, limit);
}

}  // namespace coda::sched
