#include "sched/placement.h"

#include <algorithm>

#include "util/assert.h"

namespace coda::sched {

NodeFilter any_node() {
  return [](const cluster::Node&) { return true; };
}

PlacementRequest baseline_request(const workload::JobSpec& spec) {
  PlacementRequest req;
  if (spec.is_gpu_job()) {
    req.nodes = spec.train_config.nodes;
    req.gpus_per_node = spec.train_config.gpus_per_node;
    req.cpus_per_node = std::max(1, spec.requested_cpus);
  } else {
    req.nodes = 1;
    req.gpus_per_node = 0;
    req.cpus_per_node = std::max(1, spec.cpu_cores);
  }
  return req;
}

namespace {

// Best-fit score: prefer nodes that would be left with the fewest free GPUs,
// then the fewest free cores (pack tightly, keep big holes open for big
// jobs). Lower is better.
struct Candidate {
  const cluster::Node* node = nullptr;
  int free_gpus_after = 0;
  int free_cpus_after = 0;

  bool operator<(const Candidate& other) const {
    if (free_gpus_after != other.free_gpus_after) {
      return free_gpus_after < other.free_gpus_after;
    }
    if (free_cpus_after != other.free_cpus_after) {
      return free_cpus_after < other.free_cpus_after;
    }
    return node->id() < other.node->id();
  }
};

}  // namespace

std::optional<Placement> find_placement(const cluster::Cluster& cluster,
                                        const PlacementRequest& request,
                                        const NodeFilter& filter) {
  CODA_ASSERT(request.nodes >= 1);
  CODA_ASSERT(request.cpus_per_node >= 1 || request.gpus_per_node >= 1);
  // Single-node requests (every CPU job and most GPU jobs) dominate the
  // schedulers' probe traffic: pick the best-fit node in one pass with no
  // candidate buffer at all. The comparator is a strict total order (ties
  // break on node id), so the running minimum is exactly sort()[0].
  if (request.nodes == 1) {
    Candidate best;
    for (const auto& node : cluster.nodes()) {
      if (!filter(node) ||
          !node.can_fit(request.cpus_per_node, request.gpus_per_node)) {
        continue;
      }
      Candidate c{&node, node.free_gpus() - request.gpus_per_node,
                  node.free_cpus() - request.cpus_per_node};
      if (best.node == nullptr || c < best) {
        best = c;
      }
    }
    if (best.node == nullptr) {
      return std::nullopt;
    }
    Placement placement;
    placement.nodes.push_back(NodePlacement{
        best.node->id(), request.cpus_per_node, request.gpus_per_node});
    return placement;
  }
  // Multi-node: rank every feasible node, take the best `nodes`. The
  // scratch buffer is reused across calls (one per runner thread); only the
  // leading `request.nodes` entries need to be ordered, and partial_sort
  // selects the same prefix as a full sort under a total order.
  static thread_local std::vector<Candidate> candidates;
  candidates.clear();
  for (const auto& node : cluster.nodes()) {
    if (!filter(node)) {
      continue;
    }
    if (!node.can_fit(request.cpus_per_node, request.gpus_per_node)) {
      continue;
    }
    candidates.push_back(
        Candidate{&node, node.free_gpus() - request.gpus_per_node,
                  node.free_cpus() - request.cpus_per_node});
  }
  if (static_cast<int>(candidates.size()) < request.nodes) {
    return std::nullopt;
  }
  std::partial_sort(candidates.begin(),
                    candidates.begin() + request.nodes, candidates.end());
  Placement placement;
  for (int i = 0; i < request.nodes; ++i) {
    placement.nodes.push_back(NodePlacement{candidates[static_cast<size_t>(i)].node->id(),
                                            request.cpus_per_node,
                                            request.gpus_per_node});
  }
  return placement;
}

int count_feasible(const cluster::Cluster& cluster,
                   const PlacementRequest& request, const NodeFilter& filter,
                   int limit) {
  // Capacity probe: how many *disjoint* placements fit, assuming each node
  // can host floor(free/need) copies.
  int total_slots = 0;
  for (const auto& node : cluster.nodes()) {
    if (!filter(node)) {
      continue;
    }
    int by_cpu = request.cpus_per_node > 0
                     ? node.free_cpus() / request.cpus_per_node
                     : limit;
    int by_gpu = request.gpus_per_node > 0
                     ? node.free_gpus() / request.gpus_per_node
                     : limit;
    total_slots += std::min(by_cpu, by_gpu);
    if (total_slots / request.nodes >= limit) {
      return limit;
    }
  }
  return std::min(limit, total_slots / request.nodes);
}

}  // namespace coda::sched
