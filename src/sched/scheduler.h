// Scheduler plug-in interface.
//
// The simulation engine (sim/engine.h) drives a Scheduler through three
// entry points — submit(), on_job_finished(), kick() — and hands it a
// SchedulerEnv of callbacks for acting on the cluster: starting jobs on
// chosen nodes, preempting jobs, resizing a job's CPU allocation, and
// reading live telemetry (GPU utilization, per-node bandwidth). Baselines
// (FIFO, DRF) and CODA implement the same interface, so every experiment
// can swap policies without touching the engine.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "simcore/event_tags.h"
#include "simcore/simulator.h"
#include "telemetry/mbm.h"
#include "util/result.h"
#include "workload/job.h"

namespace coda::state {
class Writer;
class Reader;
}  // namespace coda::state

namespace coda::sched {

// Job id -> full spec, for rehydrating serialized scheduler state (queues
// and running sets reference jobs by id; the snapshot's embedded session
// supplies the specs).
using SpecMap = std::map<cluster::JobId, workload::JobSpec>;

// Where a job runs: one entry per node it occupies.
struct NodePlacement {
  cluster::NodeId node = 0;
  int cpus = 0;
  int gpus = 0;
};

// How a scheduler re-admits jobs evicted by node failures. Disabled by
// default: victims re-enter the queue immediately (the legacy behavior,
// byte-identical for failure-free runs). Enabled, each eviction of a job
// delays its resubmission by backoff_base_s * 2^(evictions-1), clamped to
// backoff_max_s; past max_retries the job is abandoned via
// SchedulerEnv::abandon_job. Gang semantics come for free: the engine
// already evicts a multi-node job wholesale when any of its nodes fails,
// so the whole gang backs off and resubmits as one unit.
struct RetryPolicy {
  bool enabled = false;
  double backoff_base_s = 30.0;   // delay before the first retry
  double backoff_max_s = 3600.0;  // cap on exponential growth
  int max_retries = 8;            // restarts allowed before abandoning
};

struct Placement {
  std::vector<NodePlacement> nodes;

  int total_cpus() const {
    int n = 0;
    for (const auto& p : nodes) {
      n += p.cpus;
    }
    return n;
  }
  int total_gpus() const {
    int n = 0;
    for (const auto& p : nodes) {
      n += p.gpus;
    }
    return n;
  }
};

// Callbacks and services the engine provides to a scheduler. All pointers
// outlive the scheduler; callbacks must only be invoked from engine-driven
// entry points or simulator events (single-threaded discrete-event model).
struct SchedulerEnv {
  simcore::Simulator* sim = nullptr;
  const cluster::Cluster* cluster = nullptr;

  // Snapshot-restore mode: attach() must NOT schedule its periodic events
  // (eliminator checks, reservation updates). The restore path re-arms them
  // at their exact next firing times from the snapshot manifest instead —
  // a construct-then-cancel dance would leave a dead queue entry that still
  // fires as a no-op and perturbs the dispatch count.
  bool defer_periodics = false;

  // Starts a pending job on the given placement. The engine validates and
  // performs the node allocations; the scheduler must propose a feasible
  // placement (checked).
  std::function<util::Status(cluster::JobId, const Placement&)> start_job;

  // Stops a running job and returns it to "pending" state. When
  // `keep_progress` is false the job's work done so far is lost (the
  // paper's CPU-job abort); when true it is preserved (container migration
  // of GPU jobs between sub-arrays). The scheduler is responsible for
  // re-queueing the job afterwards.
  std::function<util::Status(cluster::JobId, bool keep_progress)> preempt_job;

  // Changes the CPU cores a running job holds on one node (adaptive
  // allocation / core-halving fallback). Fails if the node lacks free cores.
  std::function<util::Status(cluster::JobId, cluster::NodeId, int new_cpus)>
      resize_job;

  // Live telemetry probes (simulated nvidia-smi and Intel MBM).
  telemetry::GpuUtilSource* gpu_util = nullptr;
  telemetry::BandwidthSource* bandwidth = nullptr;

  // Simulated Intel MBA caps: set_bw_cap fails on non-MBA nodes.
  std::function<util::Status(cluster::NodeId, cluster::JobId, double)>
      set_bw_cap;
  std::function<void(cluster::NodeId, cluster::JobId)> clear_bw_cap;
  // Current cap for (node, job); < 0 means uncapped. Lets components tell a
  // live cap from one the engine already dropped (job stop paths clear all
  // of a job's caps) without emitting spurious clear events.
  std::function<double(cluster::NodeId, cluster::JobId)> bw_cap;

  // Permanently gives up on an evicted job whose retry budget is exhausted.
  // The engine closes the job's accounting and reports it as abandoned; the
  // scheduler must already have dropped it from its own queues.
  std::function<void(cluster::JobId)> abandon_job;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual const char* name() const = 0;

  // Called once by the engine before the run starts.
  virtual void attach(const SchedulerEnv& env) { env_ = env; }

  // A new job arrived. Implementations enqueue it; the engine calls kick()
  // right after.
  virtual void submit(const workload::JobSpec& spec) = 0;

  // A running job completed (or was preempted by this scheduler and already
  // re-queued). Bookkeeping hook; the engine calls kick() right after.
  virtual void on_job_finished(const workload::JobSpec& spec) = 0;

  // The ENGINE forcibly preempted a running job (node failure). The
  // scheduler must clean its bookkeeping and re-queue the job; the engine
  // calls kick() after delivering every eviction of the failure. Never
  // called for preemptions the scheduler itself initiated via
  // env_.preempt_job.
  virtual void on_job_evicted(const workload::JobSpec& spec) = 0;

  // Try to start pending jobs given current cluster state. Must be
  // idempotent when nothing can start.
  virtual void kick() = 0;

  // Jobs currently queued (all kinds) — metrics hook.
  virtual size_t pending_jobs() const = 0;

  // GPU jobs currently queued — drives the paper's "active rate when jobs
  // queue up" metric (Fig. 10).
  virtual size_t pending_gpu_jobs() const = 0;

  // The most easily placed pending GPU job's per-node demand (fewest GPUs,
  // then fewest cores) among jobs this policy could start next. Backs the
  // fragmentation metric of Sec. VI-C: an idle GPU counts as fragmented
  // when its node cannot host even this demand. nullopt when no GPU job is
  // pending (or the policy cannot start one next, e.g. FIFO blocked behind
  // a CPU job).
  struct PendingGpuDemand {
    int gpus_per_node = 0;
    int cpus_per_node = 0;
  };
  virtual std::optional<PendingGpuDemand> min_pending_gpu_demand() const = 0;

  // CPU cores on `node` this policy could reclaim on demand for a GPU job
  // (CODA's preemptible borrowers). Idle GPUs next to reclaimable cores are
  // not fragmented — a pending GPU job would trigger the eviction. Baselines
  // cannot reclaim anything.
  virtual int reclaimable_cpus(cluster::NodeId /*node*/) const { return 0; }

  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  // ---- snapshot support (src/state) ----
  // Serializes every policy field that affects future decisions (queues in
  // order, shares, retry counts). Derived classes write the base section
  // first, then their own; load_state mirrors the exact write sequence.
  // Configuration (backfill windows, CODA knobs) is NOT serialized — the
  // snapshot's embedded session reconstructs the scheduler before loading.
  virtual void save_state(state::Writer* w) const;
  virtual void load_state(state::Reader* r, const SpecMap& specs);

  // Re-posts one retry-backoff resubmission recorded in a snapshot manifest
  // at its exact absolute simulated time. The closure matches the one
  // retry_after_eviction posts, so the restored event dispatches
  // identically.
  void rearm_retry(double t, const workload::JobSpec& spec) {
    env_.sim->post_at(
        t,
        [this, spec] {
          submit(spec);
          kick();
        },
        simcore::EventTag{simcore::kTagRetryResubmit, spec.id});
  }

  // Evictions survived so far by one job (0 if never evicted) — test hook.
  int eviction_count(cluster::JobId id) const {
    auto it = evictions_.find(id);
    return it == evictions_.end() ? 0 : it->second;
  }

 protected:
  // Routes an engine-forced eviction through the retry policy. Returns true
  // when the caller should requeue the job immediately (policy disabled).
  // Otherwise the job either resubmits itself after an exponential-backoff
  // delay — through the implementation's normal submit()+kick() path — or,
  // past the retry cap, is abandoned via env_.abandon_job.
  bool retry_after_eviction(const workload::JobSpec& spec) {
    if (!retry_.enabled) {
      return true;
    }
    const int attempt = ++evictions_[spec.id];
    if (attempt > retry_.max_retries) {
      evictions_.erase(spec.id);
      if (env_.abandon_job) {
        env_.abandon_job(spec.id);
      }
      return false;
    }
    const double delay = std::min(
        retry_.backoff_base_s * std::ldexp(1.0, attempt - 1),
        retry_.backoff_max_s);
    env_.sim->post_after(
        delay,
        [this, spec] {
          submit(spec);
          kick();
        },
        simcore::EventTag{simcore::kTagRetryResubmit, spec.id});
    return false;
  }

  SchedulerEnv env_;
  RetryPolicy retry_;
  std::unordered_map<cluster::JobId, int> evictions_;
};

}  // namespace coda::sched
