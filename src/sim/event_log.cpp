#include "sim/event_log.h"

#include "util/csv.h"
#include "util/strings.h"

namespace coda::sim {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kArrival:
      return "arrival";
    case EventKind::kStart:
      return "start";
    case EventKind::kFinish:
      return "finish";
    case EventKind::kPreempt:
      return "preempt";
    case EventKind::kEvict:
      return "evict";
    case EventKind::kResize:
      return "resize";
    case EventKind::kBwCap:
      return "bw_cap";
    case EventKind::kBwCapClear:
      return "bw_cap_clear";
    case EventKind::kNodeFail:
      return "node_fail";
    case EventKind::kNodeRecover:
      return "node_recover";
    case EventKind::kAbandon:
      return "abandon";
  }
  return "?";
}

size_t EventLog::count(EventKind kind) const {
  size_t n = 0;
  for (const auto& event : events_) {
    n += event.kind == kind ? 1 : 0;
  }
  return n;
}

std::vector<Event> EventLog::for_job(cluster::JobId job) const {
  std::vector<Event> out;
  for (const auto& event : events_) {
    if (event.job == job) {
      out.push_back(event);
    }
  }
  return out;
}

util::Status EventLog::save_csv(const std::string& path) const {
  util::CsvDocument doc;
  doc.header = {"t", "kind", "job", "node", "value"};
  doc.rows.reserve(events_.size());
  for (const auto& event : events_) {
    doc.rows.push_back({
        util::strfmt("%.3f", event.t),
        to_string(event.kind),
        util::strfmt("%llu", static_cast<unsigned long long>(event.job)),
        util::strfmt("%d", event.node),
        util::strfmt("%.3f", event.value),
    });
  }
  return util::write_csv_file(path, doc);
}

}  // namespace coda::sim
