// Persistent, content-addressed cache of ExperimentReports shared by every
// bench binary. A cache key is a hash of everything that determines a
// replay's outcome — the full trace contents, the policy, the engine and
// CODA configuration, and the report-format schema version — so the ~24
// bench binaries stop re-simulating identical week replays.
//
// Entries live one-per-file under the cache directory ($CODA_CACHE_DIR, or
// ./.report_cache/ — i.e. <build>/.report_cache/ when benches run from the
// build tree). Files carry a schema version and a payload checksum; corrupt
// or stale entries are detected on load and silently treated as misses.
// CODA_NO_CACHE=1 disables the cache entirely (cold-run timing).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/experiment.h"
#include "util/result.h"

namespace coda::sim {

// FNV-1a 64-bit accumulator used to derive cache keys. Doubles are mixed by
// bit pattern, so any config/trace change — however small — changes the key.
class CacheKeyHasher {
 public:
  void mix_bytes(const void* data, size_t n);
  void mix(uint64_t v) { mix_bytes(&v, sizeof(v)); }
  void mix(int64_t v) { mix_bytes(&v, sizeof(v)); }
  void mix(int v) { mix(static_cast<int64_t>(v)); }
  void mix(bool v) { mix(static_cast<int64_t>(v ? 1 : 0)); }
  void mix(double v);
  void mix(const std::string& s);

  // 16-hex-digit digest; used as the cache file name.
  std::string hex() const;

 private:
  uint64_t state_ = 0xcbf29ce484222325ull;
};

// Key for one (policy, trace, config) replay. Hashes every JobSpec in the
// trace plus every EngineConfig/CodaConfig field and kReportFormatVersion.
std::string experiment_cache_key(Policy policy,
                                 const std::vector<workload::JobSpec>& trace,
                                 const ExperimentConfig& config);

class ReportCache {
 public:
  // `directory` empty => default_dir(). The directory is created lazily on
  // the first store.
  explicit ReportCache(std::string directory = {});

  // $CODA_CACHE_DIR, or ".report_cache" relative to the working directory.
  static std::string default_dir();

  const std::string& directory() const { return dir_; }
  bool enabled() const { return enabled_; }
  std::string path_for(const std::string& key) const;

  // Returns the cached report for `key`, or nullopt on miss — including
  // every failure mode (absent file, wrong schema, checksum mismatch,
  // parse error). A corrupt entry is deleted so the rerun can replace it.
  std::optional<ExperimentReport> load(const std::string& key) const;

  // Persists `report` under `key` (atomic write-then-rename, so concurrent
  // bench binaries never observe a half-written entry).
  util::Status store(const std::string& key,
                     const ExperimentReport& report) const;

 private:
  std::string dir_;
  bool enabled_ = true;  // false when CODA_NO_CACHE=1
};

}  // namespace coda::sim
