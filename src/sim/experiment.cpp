#include "sim/experiment.h"

#include <algorithm>

#include "sched/drf.h"
#include "sched/fifo.h"
#include "util/assert.h"
#include "util/rng.h"

namespace coda::sim {

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::kFifo:
      return "FIFO";
    case Policy::kDrf:
      return "DRF";
    case Policy::kCoda:
      return "CODA";
  }
  return "?";
}

workload::TraceConfig standard_week_trace(uint64_t seed) {
  workload::TraceConfig cfg;
  cfg.seed = seed;
  cfg.duration_s = 7.0 * 86400.0;
  // One week. The CPU-job count follows the paper's daily rate (75,000 per
  // month); the GPU-job count is scaled so the 400-GPU cluster reaches the
  // paper's saturation regime — their absolute count (25,000/month) reflects
  // private job sizes we cannot observe, and an under-loaded cluster would
  // make every scheduler look alike.
  cfg.cpu_jobs = 17500;
  cfg.gpu_jobs = 8750;
  return cfg;
}

PolicyScheduler make_policy_scheduler(Policy policy,
                                      const ExperimentConfig& config) {
  PolicyScheduler out;
  switch (policy) {
    case Policy::kFifo:
      out.scheduler = std::make_unique<sched::FifoScheduler>();
      break;
    case Policy::kDrf:
      out.scheduler = std::make_unique<sched::DrfScheduler>();
      break;
    case Policy::kCoda: {
      auto owned = std::make_unique<core::CodaScheduler>(config.coda);
      out.coda = owned.get();
      out.scheduler = std::move(owned);
      break;
    }
  }
  out.scheduler->set_retry_policy(config.retry);
  return out;
}

ExperimentReport run_experiment(Policy policy,
                                const std::vector<workload::JobSpec>& trace,
                                const ExperimentConfig& config) {
  PolicyScheduler ps = make_policy_scheduler(policy, config);
  ClusterEngine engine(config.engine, ps.scheduler.get());
  engine.load_trace(trace);

  double horizon = config.horizon_s;
  if (horizon <= 0.0) {
    for (const auto& spec : trace) {
      horizon = std::max(horizon, spec.submit_time);
    }
  }

  schedule_failures(&engine, config, horizon);

  engine.run_until(horizon);
  engine.drain(horizon + config.drain_slack_s);

  return build_report(policy, engine, trace.size(), horizon, ps.coda);
}

void schedule_failures(ClusterEngine* engine, const ExperimentConfig& config,
                       double horizon) {
  if (!config.failures.enabled()) {
    return;
  }
  // Poisson node churn over the trace window. Overlapping outages on one
  // node collapse harmlessly: fail_node/recover_node reject the redundant
  // transition and schedule_node_outage ignores the status.
  util::Rng rng(config.failures.seed);
  const int nodes = config.engine.cluster.node_count;
  double t = rng.exponential(1.0 / config.failures.node_mtbf_s);
  while (t < horizon) {
    const auto node =
        static_cast<cluster::NodeId>(rng.uniform_int(0, nodes - 1));
    engine->schedule_node_outage(node, t, config.failures.outage_s);
    t += rng.exponential(1.0 / config.failures.node_mtbf_s);
  }
}

ExperimentReport build_report(Policy policy, const ClusterEngine& engine,
                              size_t submitted, double horizon,
                              const core::CodaScheduler* coda) {
  ExperimentReport report;
  report.scheduler = to_string(policy);
  report.horizon_s = horizon;
  report.submitted = submitted;
  report.completed = engine.finished_jobs();
  report.abandoned = engine.abandoned_jobs();
  report.node_failures = engine.node_failures();
  report.events_dispatched = engine.sim().dispatched();

  const auto& metrics = engine.metrics();
  report.gpu_active_series = metrics.series("gpu_active_rate");
  report.gpu_util_series = metrics.series("gpu_util_active");
  report.cpu_active_series = metrics.series("cpu_active_rate");
  report.cpu_util_series = metrics.series("cpu_util_active");
  report.gpu_active_rate =
      report.gpu_active_series.time_weighted_mean(0.0, horizon);
  report.gpu_util_active =
      report.gpu_util_series.time_weighted_mean(0.0, horizon);
  report.gpu_util_overall = report.gpu_active_rate * report.gpu_util_active;
  report.cpu_active_rate =
      report.cpu_active_series.time_weighted_mean(0.0, horizon);
  report.cpu_util_active =
      report.cpu_util_series.time_weighted_mean(0.0, horizon);
  report.frag_rate =
      metrics.series("gpu_frag_rate").time_weighted_mean(0.0, horizon);
  report.frag_case2_rate =
      metrics.series("gpu_frag_case2_rate").time_weighted_mean(0.0, horizon);

  // Conditional metrics over samples with a GPU-job backlog (the metric
  // ticks are aligned across series, so pair by index).
  const auto& pending_gpu = metrics.series("pending_gpu_jobs");
  const auto& frag = metrics.series("gpu_frag_rate");
  CODA_ASSERT(pending_gpu.size() == report.gpu_active_series.size());
  double active_sum = 0.0;
  double frag_sum = 0.0;
  size_t queued_samples = 0;
  size_t window_samples = 0;
  for (size_t i = 0; i < pending_gpu.size(); ++i) {
    if (pending_gpu.at(i).t > horizon) {
      break;
    }
    ++window_samples;
    if (pending_gpu.at(i).value > 0.0) {
      active_sum += report.gpu_active_series.at(i).value;
      frag_sum += frag.at(i).value;
      ++queued_samples;
    }
  }
  if (queued_samples > 0) {
    report.gpu_active_when_queued =
        active_sum / static_cast<double>(queued_samples);
    report.frag_when_queued = frag_sum / static_cast<double>(queued_samples);
  }
  if (window_samples > 0) {
    report.queued_time_fraction =
        static_cast<double>(queued_samples) / window_samples;
  }

  const double end = engine.sim().now();
  for (const auto& [id, record] : engine.records()) {
    report.records.push_back(record);
    report.evictions += record.evict_count;
    report.restarts += record.restart_count;
    report.busy_gpu_s += record.busy_gpu_s;
    report.busy_core_s += record.busy_core_s;
    report.wasted_gpu_s += record.wasted_gpu_s;
    report.wasted_core_s += record.wasted_core_s;
    // Queueing time until first start; censor at the end of the run for
    // jobs that never started.
    const double queue = record.first_start_time >= 0.0
                             ? record.first_start_time - record.submit_time
                             : end - record.submit_time;
    if (record.spec.is_gpu_job()) {
      report.gpu_queue_times.push_back(queue);
    } else {
      report.cpu_queue_times.push_back(queue);
    }
    report.queue_by_tenant[record.spec.tenant].push_back(queue);
  }

  if (report.busy_gpu_s > 0.0) {
    report.gpu_goodput = 1.0 - report.wasted_gpu_s / report.busy_gpu_s;
  }
  if (report.busy_core_s > 0.0) {
    report.cpu_goodput = 1.0 - report.wasted_core_s / report.busy_core_s;
  }

  if (coda != nullptr) {
    report.tuning_outcomes = coda->tuning_outcomes();
    report.eliminator_stats = coda->eliminator_stats();
    report.preemptions = coda->preemptions();
    report.migrations = coda->migrations();
  }
  return report;
}

}  // namespace coda::sim
