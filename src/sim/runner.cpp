#include "sim/runner.h"

#include <atomic>
#include <thread>

#include "util/assert.h"
#include "util/env.h"

namespace coda::sim {

Runner::Runner(int workers) {
  workers_ = workers > 0 ? workers : default_workers();
}

int Runner::default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw > 0 ? static_cast<int>(hw) : 1;
  // Strict parse: CODA_JOBS=abc/0/-3 warns (naming the rejected value) and
  // falls back to hardware concurrency instead of being silently ignored.
  return util::env_int("CODA_JOBS", fallback, 1);
}

std::vector<ExperimentReport> Runner::run(const std::vector<Job>& jobs,
                                          ReportCache* cache) const {
  std::vector<ExperimentReport> results(jobs.size());

  // Resolve cache hits first; only misses go to the pool.
  std::vector<size_t> pending;
  std::vector<std::string> keys(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    CODA_ASSERT_MSG(jobs[i].trace != nullptr, "Runner::Job missing trace");
    if (cache != nullptr && cache->enabled()) {
      keys[i] =
          experiment_cache_key(jobs[i].policy, *jobs[i].trace, jobs[i].config);
      if (auto hit = cache->load(keys[i])) {
        results[i] = std::move(*hit);
        continue;
      }
    }
    pending.push_back(i);
  }

  const int n_workers =
      static_cast<int>(std::min<size_t>(pending.size(),
                                        static_cast<size_t>(workers_)));
  if (n_workers <= 1) {
    for (size_t i : pending) {
      results[i] =
          run_experiment(jobs[i].policy, *jobs[i].trace, jobs[i].config);
    }
  } else {
    // Work-stealing by atomic index: jobs vary wildly in cost (CODA week
    // replays are ~4x a FIFO one), so static partitioning would idle
    // workers. Results land in pre-sized slots; no locking needed.
    std::atomic<size_t> next{0};
    auto worker = [&] {
      while (true) {
        const size_t slot = next.fetch_add(1, std::memory_order_relaxed);
        if (slot >= pending.size()) {
          return;
        }
        const size_t i = pending[slot];
        results[i] =
            run_experiment(jobs[i].policy, *jobs[i].trace, jobs[i].config);
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(n_workers));
    for (int t = 0; t < n_workers; ++t) {
      threads.emplace_back(worker);
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }

  if (cache != nullptr && cache->enabled()) {
    for (size_t i : pending) {
      (void)cache->store(keys[i], results[i]);  // best-effort persistence
    }
  }
  return results;
}

}  // namespace coda::sim
