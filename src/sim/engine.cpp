#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "sched/placement.h"
#include "simcore/event_tags.h"
#include "util/assert.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/strings.h"

namespace coda::sim {

ClusterEngine::ClusterEngine(const EngineConfig& config,
                             sched::Scheduler* scheduler, bool restore_mode)
    : config_(config),
      scheduler_(scheduler),
      cluster_(config.cluster),
      mba_(&cluster_),
      noise_rng_(config.noise_seed),
      event_log_(config.record_events) {
  jobs_on_node_.resize(cluster_.node_count());
  occupied_nodes_.reset(cluster_.node_count());
  node_bw_caps_.reserve(cluster_.node_count());
  for (const auto& node : cluster_.nodes()) {
    node_bw_caps_.push_back(node.config().mem_bw_gbps);
  }
  node_reports_.resize(cluster_.node_count());
  for (auto& list : jobs_on_node_) {
    list.reserve(16);  // a 28-core node rarely hosts more residents
  }
  footprints_scratch_.reserve(32);
  node_dirty_.assign(cluster_.node_count(), 0);
  dirty_nodes_.reserve(cluster_.node_count());
  // Parallel dirty-node flush. Not an ExperimentConfig knob on purpose: the
  // thread count never changes results (the equivalence suite asserts it),
  // so it must not enter journal headers or report-cache keys.
  engine_threads_ = util::env_int("CODA_ENGINE_THREADS", 1, 1);
  if (engine_threads_ > 1) {
    flush_pool_ = std::make_unique<util::ThreadPool>(engine_threads_);
    workers_.reserve(static_cast<size_t>(engine_threads_));
    for (int w = 0; w < engine_threads_; ++w) {
      auto ws = std::make_unique<WorkerState>();
      ws->contention = contention_;  // same params as the serial model
      ws->footprints.reserve(32);
      workers_.push_back(std::move(ws));
    }
  }
  if (config_.incremental_recompute) {
    // Drain the dirty set after every dispatched event: each event's
    // mutations happen at one simulated instant, so one recompute per
    // touched node at the end of the dispatch observes the same state the
    // eager path's last recompute would.
    sim_.set_post_dispatch([this] { flush_dirty_nodes(); });
  }

  series_.gpu_active = &metrics_.series_mut("gpu_active_rate");
  series_.cpu_active = &metrics_.series_mut("cpu_active_rate");
  series_.gpu_frag = &metrics_.series_mut("gpu_frag_rate");
  series_.gpu_frag_case2 = &metrics_.series_mut("gpu_frag_case2_rate");
  series_.pending_jobs = &metrics_.series_mut("pending_jobs");
  series_.pending_gpu_jobs = &metrics_.series_mut("pending_gpu_jobs");
  series_.gpu_util_active = &metrics_.series_mut("gpu_util_active");
  series_.cpu_util_active = &metrics_.series_mut("cpu_util_active");
  series_.mem_pressure = &metrics_.series_mut("mem_pressure_mean");

  sched::SchedulerEnv env;
  env.sim = &sim_;
  env.cluster = &cluster_;
  env.defer_periodics = restore_mode;
  env.start_job = [this](cluster::JobId id, const sched::Placement& p) {
    return start_job(id, p);
  };
  env.preempt_job = [this](cluster::JobId id, bool keep) {
    return preempt_job(id, keep);
  };
  env.resize_job = [this](cluster::JobId id, cluster::NodeId node,
                          int cpus) { return resize_job(id, node, cpus); };
  env.gpu_util = this;
  env.bandwidth = this;
  env.set_bw_cap = [this](cluster::NodeId node, cluster::JobId id,
                          double cap) {
    auto status = mba_.set_cap(node, id, cap);
    if (status.ok()) {
      event_log_.record(sim_.now(), EventKind::kBwCap, id,
                        static_cast<int>(node), cap);
      mark_node_dirty(node);
    }
    return status;
  };
  env.clear_bw_cap = [this](cluster::NodeId node, cluster::JobId id) {
    mba_.clear_cap(node, id);
    event_log_.record(sim_.now(), EventKind::kBwCapClear, id,
                      static_cast<int>(node));
    mark_node_dirty(node);
  };
  env.bw_cap = [this](cluster::NodeId node, cluster::JobId id) {
    return mba_.cap(node, id);
  };
  env.abandon_job = [this](cluster::JobId id) { abandon_job(id); };
  scheduler_->attach(env);

  if (!restore_mode) {
    rearm_metrics_tick(config_.metrics_period_s);
  }
}

void ClusterEngine::rearm_metrics_tick(double first) {
  sim_.schedule_periodic_at(first, config_.metrics_period_s,
                            [this] { sample_metrics(); },
                            simcore::EventTag{simcore::kTagMetricsTick});
}

ClusterEngine::~ClusterEngine() = default;

double ClusterEngine::total_work_of(const workload::JobSpec& spec) const {
  return spec.is_gpu_job() ? spec.iterations : spec.cpu_work_core_s;
}

void ClusterEngine::load_trace(const std::vector<workload::JobSpec>& trace) {
  for (const auto& spec : trace) {
    inject(spec, spec.submit_time);
  }
}

void ClusterEngine::inject(const workload::JobSpec& spec, double t) {
  CODA_ASSERT_MSG(records_.count(spec.id) == 0, "duplicate job id injected");
  JobRecord record;
  record.spec = spec;
  record.submit_time = t;
  records_[spec.id] = std::move(record);
  const cluster::JobId id = spec.id;
  sim_.post_at(t, [this, id] { on_arrival(id); },
               simcore::EventTag{simcore::kTagArrival, id});
}

void ClusterEngine::rearm_arrival(double t, cluster::JobId id) {
  CODA_ASSERT_MSG(records_.count(id) > 0,
                  "re-arming an arrival for an unknown job");
  sim_.post_at(t, [this, id] { on_arrival(id); },
               simcore::EventTag{simcore::kTagArrival, id});
}

void ClusterEngine::on_arrival(cluster::JobId id) {
  auto it = records_.find(id);
  CODA_ASSERT(it != records_.end());
  pending_since_[id] = sim_.now();
  ++submitted_count_;
  event_log_.record(sim_.now(), EventKind::kArrival, id);
  scheduler_->submit(it->second.spec);
  scheduler_->kick();
}

void ClusterEngine::run_until(double until) {
  // Mutations made through the direct API (tests injecting failures, the
  // service layer) land between dispatches; sync before the queue advances.
  flush_dirty_nodes();
  sim_.run_until(until);
}

void ClusterEngine::drain(double hard_cap) {
  // Periodic metric/eliminator events keep the queue non-empty forever, so
  // advance in chunks and stop once every submitted job completed or was
  // abandoned by the retry policy.
  flush_dirty_nodes();
  while (sim_.now() < hard_cap &&
         finished_count_ + abandoned_count_ < records_.size()) {
    sim_.run_until(std::min(hard_cap, sim_.now() + 6.0 * 3600.0));
  }
}

// ------------------------------------------------------ scheduler callbacks

util::Status ClusterEngine::start_job(cluster::JobId id,
                                      const sched::Placement& placement) {
  auto rec_it = records_.find(id);
  if (rec_it == records_.end()) {
    return util::Error{util::ErrorCode::kNotFound,
                       util::strfmt("unknown job %llu",
                                    static_cast<unsigned long long>(id))};
  }
  if (running_.count(id) > 0) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       "job is already running"};
  }
  if (placement.nodes.empty()) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "placement has no nodes"};
  }
  // Allocate on every node, rolling back on failure.
  for (size_t i = 0; i < placement.nodes.size(); ++i) {
    const auto& np = placement.nodes[i];
    auto status = cluster_.node(np.node).allocate(id, np.cpus, np.gpus);
    if (!status.ok()) {
      for (size_t j = 0; j < i; ++j) {
        auto release = cluster_.node(placement.nodes[j].node).release(id);
        CODA_ASSERT(release.ok());
      }
      return status;
    }
  }

  JobRecord& record = rec_it->second;
  RunningJob job;
  job.id = id;
  job.spec = &record.spec;
  job.placement = placement;
  auto rem_it = remaining_work_.find(id);
  job.remaining = rem_it != remaining_work_.end()
                      ? rem_it->second
                      : total_work_of(record.spec);
  // The start state is durable: a fresh job restarts from zero anyway, and
  // a restarted one resumes from persisted (checkpointed) progress.
  job.ckpt_remaining = job.remaining;
  job.last_update = sim_.now();
  auto [it, inserted] = running_.emplace(id, std::move(job));
  CODA_ASSERT(inserted);
  RunningJob& running = it->second;
  // Build the flat per-node vector to its final (sorted) size before any
  // Resident caches a PerNodeState address: push_back after that point
  // would reallocate the buffer out from under the resident lists.
  running.nodes.reserve(placement.nodes.size());
  for (const auto& np : placement.nodes) {
    running.nodes.emplace_back(np.node, PerNodeState{});
  }
  std::sort(running.nodes.begin(), running.nodes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& np : placement.nodes) {
    PerNodeState& st = *node_state(running, np.node);
    st.cpus = np.cpus;
    rebuild_footprint(running, np.node);
    jobs_on_node_[np.node].push_back(Resident{id, &running, &st});
    if (jobs_on_node_[np.node].size() == 1) {
      occupied_nodes_.insert(np.node);
    }
  }
  for (const auto& np : placement.nodes) {
    mark_node_dirty(np.node);
  }

  // Queueing accounting.
  auto pend_it = pending_since_.find(id);
  CODA_ASSERT(pend_it != pending_since_.end());
  record.queue_time_total += sim_.now() - pend_it->second;
  if (record.first_start_time < 0.0) {
    record.first_start_time = sim_.now();
  }
  if (record.evict_count > record.restart_count) {
    // This start is the recovery from a node-failure eviction (migrations
    // and scheduler preemptions do not count as restarts).
    ++record.restart_count;
  }
  pending_since_.erase(pend_it);
  event_log_.record(sim_.now(), EventKind::kStart, id,
                    static_cast<int>(placement.nodes.front().node),
                    placement.total_cpus());
  return util::Status::Ok();
}

util::Status ClusterEngine::preempt_job(cluster::JobId id,
                                        bool keep_progress) {
  auto status = stop_running_job(id, keep_progress);
  if (status.ok()) {
    event_log_.record(sim_.now(), EventKind::kPreempt, id, -1,
                      keep_progress ? 1.0 : 0.0);
  }
  return status;
}

util::Status ClusterEngine::stop_running_job(cluster::JobId id,
                                             bool keep_progress) {
  auto it = running_.find(id);
  if (it == running_.end()) {
    return util::Error{util::ErrorCode::kNotFound, "job is not running"};
  }
  RunningJob& job = it->second;
  advance_progress(job);
  JobRecord& record = records_[id];
  record.busy_core_s += job.busy_core_s;
  record.busy_gpu_s += job.busy_gpu_s;
  if (keep_progress) {
    remaining_work_[id] = job.remaining;
  } else {
    // Everything computed since the last durable point is discarded:
    // charge it as wasted work and roll back to the checkpoint (or to
    // nothing for a job that never checkpoints).
    record.wasted_core_s += job.ckpt_busy_core_s;
    record.wasted_gpu_s += job.ckpt_busy_gpu_s;
    if (job.spec->checkpointing()) {
      remaining_work_[id] = job.ckpt_remaining;
    } else {
      remaining_work_.erase(id);
    }
  }
  job.finish_event.cancel();
  std::vector<cluster::NodeId> affected;
  for (const auto& np : job.placement.nodes) {
    auto& list = jobs_on_node_[np.node];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [id](const Resident& r) { return r.id == id; }),
               list.end());
    if (list.empty()) {
      occupied_nodes_.erase(np.node);
    }
    auto release = cluster_.node(np.node).release(id);
    CODA_ASSERT(release.ok());
    affected.push_back(np.node);
  }
  mba_.clear_job(id);
  running_.erase(it);
  for (cluster::NodeId node : affected) {
    mark_node_dirty(node);
  }
  record.preempt_count += 1;
  pending_since_[id] = sim_.now();
  return util::Status::Ok();
}

util::Status ClusterEngine::resize_job(cluster::JobId id,
                                       cluster::NodeId node, int new_cpus) {
  auto it = running_.find(id);
  if (it == running_.end()) {
    return util::Error{util::ErrorCode::kNotFound, "job is not running"};
  }
  RunningJob& job = it->second;
  PerNodeState* st = node_state(job, node);
  if (st == nullptr) {
    return util::Error{util::ErrorCode::kNotFound,
                       "job holds nothing on that node"};
  }
  auto status = cluster_.node(node).resize_cpus(id, new_cpus);
  if (!status.ok()) {
    return status;
  }
  st->cpus = new_cpus;
  for (auto& np : job.placement.nodes) {
    if (np.node == node) {
      np.cpus = new_cpus;
    }
  }
  rebuild_footprint(job, node);
  mark_node_dirty(node);
  event_log_.record(sim_.now(), EventKind::kResize, id,
                    static_cast<int>(node), new_cpus);
  return util::Status::Ok();
}

util::Status ClusterEngine::fail_node(cluster::NodeId node_id) {
  cluster::Node& node = cluster_.node(node_id);
  if (node.failed()) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       "node is already down"};
  }
  // Evict every resident job (multi-node jobs die wholesale: the failed
  // leg takes the gang down). Snapshot ids first: eviction mutates lists.
  std::vector<cluster::JobId> victims;
  victims.reserve(jobs_on_node_[node_id].size());
  for (const Resident& r : jobs_on_node_[node_id]) {
    victims.push_back(r.id);
  }
  for (cluster::JobId id : victims) {
    if (running_.count(id) == 0) {
      continue;  // already evicted as another leg of a multi-node job
    }
    const workload::JobSpec spec = records_.at(id).spec;
    auto status = stop_running_job(id, /*keep_progress=*/false);
    CODA_ASSERT(status.ok());
    records_.at(id).evict_count += 1;
    event_log_.record(sim_.now(), EventKind::kEvict, id,
                      static_cast<int>(node_id));
    scheduler_->on_job_evicted(spec);
  }
  node.set_failed(true);
  ++node_failures_;
  event_log_.record(sim_.now(), EventKind::kNodeFail, 0,
                    static_cast<int>(node_id));
  metrics_.increment("node_failures");
  scheduler_->kick();
  return util::Status::Ok();
}

util::Status ClusterEngine::recover_node(cluster::NodeId node_id) {
  cluster::Node& node = cluster_.node(node_id);
  if (!node.failed()) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       "node is not down"};
  }
  node.set_failed(false);
  event_log_.record(sim_.now(), EventKind::kNodeRecover, 0,
                    static_cast<int>(node_id));
  scheduler_->kick();
  return util::Status::Ok();
}

void ClusterEngine::schedule_node_outage(cluster::NodeId node, double at,
                                         double outage_s) {
  CODA_ASSERT(outage_s > 0.0);
  rearm_outage_fail(at, node);
  rearm_outage_recover(at + outage_s, node);
}

void ClusterEngine::rearm_outage_fail(double t, cluster::NodeId node) {
  sim_.post_at(t, [this, node] { (void)fail_node(node); },
               simcore::EventTag{simcore::kTagNodeFail, node});
}

void ClusterEngine::rearm_outage_recover(double t, cluster::NodeId node) {
  sim_.post_at(t, [this, node] { (void)recover_node(node); },
               simcore::EventTag{simcore::kTagNodeRecover, node});
}

void ClusterEngine::finish_job(cluster::JobId id) {
  auto it = running_.find(id);
  CODA_ASSERT(it != running_.end());
  RunningJob& job = it->second;
  advance_progress(job);

  JobRecord& record = records_[id];
  record.finish_time = sim_.now();
  record.completed = true;
  record.final_cpus = job.placement.nodes.front().cpus;
  record.busy_core_s += job.busy_core_s;
  record.busy_gpu_s += job.busy_gpu_s;

  std::vector<cluster::NodeId> affected;
  for (const auto& np : job.placement.nodes) {
    auto& list = jobs_on_node_[np.node];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [id](const Resident& r) { return r.id == id; }),
               list.end());
    if (list.empty()) {
      occupied_nodes_.erase(np.node);
    }
    auto release = cluster_.node(np.node).release(id);
    CODA_ASSERT(release.ok());
    affected.push_back(np.node);
  }
  mba_.clear_job(id);
  running_.erase(it);
  remaining_work_.erase(id);
  ++finished_count_;
  event_log_.record(sim_.now(), EventKind::kFinish, id);
  for (cluster::NodeId node : affected) {
    mark_node_dirty(node);
  }
  scheduler_->on_job_finished(record.spec);
  scheduler_->kick();
}

void ClusterEngine::abandon_job(cluster::JobId id) {
  auto it = records_.find(id);
  CODA_ASSERT_MSG(it != records_.end(), "abandoning an unknown job");
  JobRecord& record = it->second;
  CODA_ASSERT_MSG(!record.completed && !record.abandoned,
                  "abandoning a finished job");
  CODA_ASSERT_MSG(running_.count(id) == 0, "abandoning a running job");
  record.abandoned = true;
  auto pend_it = pending_since_.find(id);
  if (pend_it != pending_since_.end()) {
    record.queue_time_total += sim_.now() - pend_it->second;
    pending_since_.erase(pend_it);
  }
  remaining_work_.erase(id);
  ++abandoned_count_;
  event_log_.record(sim_.now(), EventKind::kAbandon, id);
  metrics_.increment("jobs_abandoned");
}

// ----------------------------------------------------- contention and rates

ClusterEngine::PerNodeState* ClusterEngine::node_state(RunningJob& job,
                                                       cluster::NodeId node) {
  for (auto& [n, st] : job.nodes) {
    if (n == node) {
      return &st;
    }
  }
  return nullptr;
}

void ClusterEngine::rebuild_footprint(RunningJob& job, cluster::NodeId node) {
  PerNodeState& st = *node_state(job, node);
  perfmodel::ResourceFootprint& fp = st.footprint;
  fp.job = job.id;
  const workload::JobSpec& spec = *job.spec;
  if (spec.is_gpu_job()) {
    const auto& params = perfmodel::model_params(spec.model);
    fp.is_gpu_job = true;
    fp.mem_bw_gbps =
        perf_.mem_bw_demand_gbps(spec.model, spec.train_config, st.cpus);
    fp.pcie_gbps =
        perf_.pcie_demand_gbps(spec.model, spec.train_config, st.cpus);
    fp.llc_mb = perf_.llc_demand_mb(spec.model, spec.train_config);
    fp.bw_latency_sensitivity = params.bw_latency_sensitivity;
    fp.bw_share_dependence = params.bw_share_dependence;
    fp.llc_sensitivity = params.llc_sensitivity;
    fp.mem_bw_cap_gbps = -1.0;  // DNN jobs are never throttled
  } else {
    fp.is_gpu_job = false;
    // A CPU job shrunk by the eliminator moves proportionally less data.
    const double scale =
        spec.cpu_cores > 0
            ? static_cast<double>(st.cpus) / spec.cpu_cores
            : 1.0;
    fp.mem_bw_gbps = spec.mem_bw_gbps * std::min(1.0, scale);
    fp.pcie_gbps = 0.0;
    fp.llc_mb = spec.llc_mb;
    fp.bw_bound_fraction = spec.bw_bound_fraction;
  }
}

void ClusterEngine::mark_node_dirty(cluster::NodeId node) {
  if (!config_.incremental_recompute) {
    recompute_node(node);
    return;
  }
  // Rates are piecewise constant and integrated lazily, so progress must be
  // brought up to now() at exactly the instants the eager path would have
  // (each advance rounds; a different partition of the same interval gives
  // different low bits). All of this dispatch's later mutations happen at
  // the same now(), making the deferred recompute's advance a no-op.
  for (const Resident& r : jobs_on_node_[node]) {
    advance_progress(*r.job);
  }
  if (!node_dirty_[node]) {
    node_dirty_[node] = 1;
    dirty_nodes_.push_back(node);
  }
}

void ClusterEngine::flush_dirty_nodes() {
  if (dirty_nodes_.empty()) {
    return;
  }
  ++stats_.dirty_flushes;
  // Ascending node order keeps the recompute sequence — and with it the
  // finish-event insertion order — independent of mutation order.
  std::sort(dirty_nodes_.begin(), dirty_nodes_.end());

  // Narrow flushes (the single-node arrival/finish steady state) stay on
  // the serial path: fanning out two nodes costs more in pool wake-ups
  // than the resolve itself. Both paths produce identical bits, so the
  // threshold is purely a performance choice.
  constexpr size_t kParallelFlushThreshold = 4;
  if (flush_pool_ == nullptr ||
      dirty_nodes_.size() < kParallelFlushThreshold) {
    for (cluster::NodeId node : dirty_nodes_) {
      node_dirty_[node] = 0;
      recompute_node(node);
    }
    dirty_nodes_.clear();
    return;
  }

  // Phase 1 (parallel): contention resolves + perf-model evaluations, all
  // of it pure w.r.t. the state the apply phase orders on.
  parallel_partition_phase();

  // Phase 2 (serial apply, ascending node order): commit report rows into
  // per-node state and update rates in *exactly* the serial engine's
  // (node, resident) order. update_rate on a multi-node job reads its other
  // legs' factors — possibly pre-update, if those nodes come later in this
  // very flush — so the intermediate rates, and with them the finish-event
  // cancel/push sequence and every (time, seq) tie-break downstream, only
  // reproduce the serial engine if the commits interleave identically.
  // That is why this phase cannot fan out.
  for (size_t k = 0; k < dirty_nodes_.size(); ++k) {
    const cluster::NodeId node = dirty_nodes_[k];
    node_dirty_[node] = 0;
    ++stats_.node_recomputes;
    const auto& report = node_reports_[node];
    const std::vector<Resident>& residents = jobs_on_node_[node];
    CODA_ASSERT(report.jobs.size() == residents.size());
    const std::vector<StagedEval>& staged = staged_evals_[k];
    for (size_t i = 0; i < report.jobs.size(); ++i) {
      CODA_ASSERT(report.jobs[i].job == residents[i].id);
      PerNodeState& st = *residents[i].state;
      st.factors = report.jobs[i].factors;
      st.cpu_rate_factor = report.jobs[i].cpu_rate_factor;
      st.achieved_bw = report.jobs[i].achieved_bw_gbps;
      const StagedEval& ev = staged[i];
      if (ev.valid) {
        st.eval_cpus = ev.cpus;
        st.eval_prep_bits = ev.prep_bits;
        st.eval_gpu_bits = ev.gpu_bits;
        st.eval_iter = ev.iter;
        st.eval_util = ev.util;
        st.eval_prep = ev.prep;
      }
      update_rate(*residents[i].job);
    }
  }
  dirty_nodes_.clear();
}

void ClusterEngine::parallel_partition_phase() {
  const size_t n = dirty_nodes_.size();
  if (staged_evals_.size() < n) {
    staged_evals_.resize(n);
  }
  const int nw = flush_pool_->size();
  flush_pool_->run([&](int w) {
    // Static contiguous slices: deterministic, and cheap to account.
    const size_t begin = n * static_cast<size_t>(w) / nw;
    const size_t end = n * (static_cast<size_t>(w) + 1) / nw;
    WorkerState& ws = *workers_[static_cast<size_t>(w)];
    for (size_t k = begin; k < end; ++k) {
      const cluster::NodeId node = dirty_nodes_[k];
      const std::vector<Resident>& residents = jobs_on_node_[node];
      std::vector<perfmodel::ResourceFootprint>& fps = ws.footprints;
      fps.clear();
      for (const Resident& r : residents) {
        PerNodeState& st = *r.state;
        if (!st.footprint.is_gpu_job) {
          // Safe to write from a worker: this (job, node) state belongs to
          // exactly one node, and nodes partition across workers.
          st.footprint.mem_bw_cap_gbps = mba_.cap(node, r.id);
        }
        fps.push_back(st.footprint);
      }
      ws.contention.resolve_into(cluster_.node(node).config(), fps,
                                 &node_reports_[node]);
      const auto& report = node_reports_[node];
      std::vector<StagedEval>& staged = staged_evals_[k];
      staged.assign(residents.size(), StagedEval{});
      for (size_t i = 0; i < residents.size(); ++i) {
        const Resident& r = residents[i];
        const workload::JobSpec& spec = *r.job->spec;
        if (!spec.is_gpu_job()) {
          continue;
        }
        PerNodeState& st = *r.state;
        const int cores = std::max(1, st.cpus);
        const perfmodel::ContentionFactors& f = report.jobs[i].factors;
        uint64_t prep_bits;
        uint64_t gpu_bits;
        std::memcpy(&prep_bits, &f.prep_inflation, sizeof(prep_bits));
        std::memcpy(&gpu_bits, &f.gpu_inflation, sizeof(gpu_bits));
        if (st.eval_cpus == cores && st.eval_prep_bits == prep_bits &&
            st.eval_gpu_bits == gpu_bits) {
          continue;  // the resident's eval cache already matches
        }
        StagedEval& ev = staged[i];
        ev.valid = true;
        ev.cpus = cores;
        ev.prep_bits = prep_bits;
        ev.gpu_bits = gpu_bits;
        ev.iter = ws.perf.iter_time(spec.model, spec.train_config, cores, f);
        ev.util =
            ws.perf.gpu_utilization(spec.model, spec.train_config, cores, f);
        ev.prep = ws.perf.prep_time(spec.model, spec.train_config, cores, f);
      }
    }
  });

  // Imbalance accounting over the deterministic static partition.
  ++stats_.parallel_flushes;
  stats_.parallel_flush_nodes += n;
  uint64_t max_residents = 0;
  for (int w = 0; w < nw; ++w) {
    const size_t begin = n * static_cast<size_t>(w) / nw;
    const size_t end = n * (static_cast<size_t>(w) + 1) / nw;
    uint64_t count = 0;
    for (size_t k = begin; k < end; ++k) {
      count += jobs_on_node_[dirty_nodes_[k]].size();
    }
    max_residents = std::max(max_residents, count);
    stats_.parallel_worker_sum_residents += count;
  }
  stats_.parallel_worker_max_residents += max_residents;
}

void ClusterEngine::recompute_node(cluster::NodeId node) {
  ++stats_.node_recomputes;
  std::vector<perfmodel::ResourceFootprint>& footprints = footprints_scratch_;
  footprints.clear();
  const std::vector<Resident>& residents = jobs_on_node_[node];
  for (const Resident& r : residents) {
    PerNodeState& st = *r.state;
    if (!st.footprint.is_gpu_job) {
      st.footprint.mem_bw_cap_gbps = mba_.cap(node, r.id);  // live MBA view
    }
    footprints.push_back(st.footprint);
  }
  contention_.resolve_into(cluster_.node(node).config(), footprints,
                           &node_reports_[node]);
  const auto& report = node_reports_[node];
  // resolve_into emits one row per footprint in input order, so the rows
  // zip with the resident list — no per-row job lookup.
  CODA_ASSERT(report.jobs.size() == residents.size());
  for (size_t i = 0; i < report.jobs.size(); ++i) {
    CODA_ASSERT(report.jobs[i].job == residents[i].id);
    PerNodeState& st = *residents[i].state;
    st.factors = report.jobs[i].factors;
    st.cpu_rate_factor = report.jobs[i].cpu_rate_factor;
    st.achieved_bw = report.jobs[i].achieved_bw_gbps;
    update_rate(*residents[i].job);
  }
}

void ClusterEngine::advance_progress(RunningJob& job) {
  const double dt = sim_.now() - job.last_update;
  if (dt > 0.0) {
    job.remaining = std::max(0.0, job.remaining - job.rate * dt);
    const double cores = static_cast<double>(job.placement.total_cpus());
    const double gpus = static_cast<double>(job.spec->total_gpus());
    job.busy_core_s += dt * cores;
    job.busy_gpu_s += dt * gpus;
    job.ckpt_busy_core_s += dt * cores;
    job.ckpt_busy_gpu_s += dt * gpus;
    if (job.spec->checkpointing()) {
      // Rates are piecewise constant between advance_progress calls, so the
      // last checkpoint boundary inside this segment can be reconstructed
      // exactly: `since` seconds ago, when `rate * since` less work was done.
      job.time_since_ckpt += dt;
      const double interval = job.spec->checkpoint_interval_s;
      if (job.time_since_ckpt >= interval) {
        const double since = std::fmod(job.time_since_ckpt, interval);
        job.ckpt_remaining = job.remaining + job.rate * since;
        job.time_since_ckpt = since;
        job.ckpt_busy_core_s = since * cores;
        job.ckpt_busy_gpu_s = since * gpus;
      }
    }
  }
  job.last_update = sim_.now();
}

void ClusterEngine::update_rate(RunningJob& job) {
  advance_progress(job);
  ++stats_.rate_updates;
  const double old_rate = job.rate;
  const workload::JobSpec& spec = *job.spec;
  if (spec.is_gpu_job()) {
    // The slowest node gates a synchronous data-parallel job.
    double iter = 0.0;
    double util = 1.0;
    for (auto& [node, st] : job.nodes) {
      const int cores = std::max(1, st.cpus);
      uint64_t prep_bits;
      uint64_t gpu_bits;
      std::memcpy(&prep_bits, &st.factors.prep_inflation, sizeof(prep_bits));
      std::memcpy(&gpu_bits, &st.factors.gpu_inflation, sizeof(gpu_bits));
      if (st.eval_cpus != cores || st.eval_prep_bits != prep_bits ||
          st.eval_gpu_bits != gpu_bits) {
        st.eval_iter = perf_.iter_time(spec.model, spec.train_config, cores,
                                       st.factors);
        st.eval_util = perf_.gpu_utilization(spec.model, spec.train_config,
                                             cores, st.factors);
        st.eval_prep = perf_.prep_time(spec.model, spec.train_config, cores,
                                       st.factors);
        st.eval_cpus = cores;
        st.eval_prep_bits = prep_bits;
        st.eval_gpu_bits = gpu_bits;
      }
      iter = std::max(iter, st.eval_iter);
      util = std::min(util, st.eval_util);
    }
    CODA_ASSERT(iter > 0.0);
    job.rate = 1.0 / iter;
    job.gpu_util = util;
  } else {
    const auto& st = job.nodes.front().second;
    job.rate = std::max(1, st.cpus) * st.cpu_rate_factor;
    job.gpu_util = 0.0;
  }
  if (spec.checkpointing() && spec.checkpoint_overhead_s > 0.0) {
    // Writing a checkpoint stalls compute for overhead_s out of every
    // interval_s of wall time; amortize the stall into the rate.
    job.rate *= spec.checkpoint_interval_s /
                (spec.checkpoint_interval_s + spec.checkpoint_overhead_s);
  }
  // An unchanged rate leaves the finish instant where it is: the pending
  // event's time equals now + remaining/rate in exact arithmetic (and with
  // LESS accumulated rounding — it was anchored when the rate last actually
  // changed). Skipping the cancel + re-push keeps neighbor-rate refreshes —
  // the bulk of recompute work on uncontended nodes — entirely off the heap.
  // Exact equality, not epsilon: a rate that moved even one ulp must move
  // its event, or determinism across recompute orders is lost.
  if (job.rate == old_rate && job.finish_event.pending()) {
    ++stats_.reschedules_skipped;
    return;
  }
  reschedule_finish(job);
}

void ClusterEngine::reschedule_finish(RunningJob& job) {
  job.finish_event.cancel();
  CODA_ASSERT(job.rate > 0.0);
  ++stats_.reschedules;
  const double dt = job.remaining / job.rate;
  const cluster::JobId id = job.id;
  job.finish_event =
      sim_.schedule_after(dt, [this, id] { finish_job(id); },
                          simcore::EventTag{simcore::kTagJobFinish, id});
}

void ClusterEngine::rearm_finish(double t, cluster::JobId id) {
  RunningJob& job = running_.at(id);
  job.finish_event =
      sim_.schedule_at(t, [this, id] { finish_job(id); },
                       simcore::EventTag{simcore::kTagJobFinish, id});
}

// ----------------------------------------------------------------- probes

telemetry::NodeBandwidthSample ClusterEngine::sample(
    cluster::NodeId node) const {
  telemetry::NodeBandwidthSample s;
  sample_into(node, &s);
  return s;
}

void ClusterEngine::sample_into(cluster::NodeId node,
                                telemetry::NodeBandwidthSample* out) const {
  ensure_synced();
  out->node = node;
  out->capacity_gbps = cluster_.node(node).config().mem_bw_gbps;
  out->total_gbps = 0.0;
  out->jobs.clear();
  const auto& report = node_reports_[node];
  for (const auto& jc : report.jobs) {
    auto it = running_.find(jc.job);
    if (it == running_.end()) {
      continue;  // finished since the last recompute
    }
    telemetry::JobBandwidth jb;
    jb.job = jc.job;
    jb.is_gpu_job = it->second.spec->is_gpu_job();
    jb.gbps = jc.achieved_bw_gbps;
    // Totalled from the surviving rows, not report.total_demand_gbps: a job
    // that finished since the last recompute must not haunt the probe.
    out->total_gbps += jb.gbps;
    out->jobs.push_back(jb);
  }
}

double ClusterEngine::pressure(cluster::NodeId node) const {
  ensure_synced();
  const double cap = node_bw_caps_[node];
  if (cap <= 0.0) {
    return 0.0;
  }
  // After the flush every report row is a live job (finish/evict mark the
  // node dirty), so summing the report directly matches sample_into's
  // live-filtered total — same rows, same order, same bits — without the
  // per-row running_ lookups. The eliminator screens every node with this
  // each tick; keeping it allocation- and lookup-free is what makes the
  // periodic full-cluster scan cheap.
  double total = 0.0;
  for (const auto& jc : node_reports_[node].jobs) {
    total += jc.achieved_bw_gbps;
  }
  return total / cap;
}

void ClusterEngine::pressure_screen(size_t node_count,
                                    std::vector<cluster::NodeId>* ids,
                                    std::vector<double>* out) const {
  ensure_synced();
  // After the sync, a node outside occupied_nodes_ has an empty report, and
  // an empty report sums to pressure +0.0 exactly (0.0 / cap, or the cap<=0
  // early-out) — so listing only occupied nodes satisfies the screen
  // contract. The occupied set is bounded by the running-job count, not N,
  // which keeps the eliminator's periodic screen off the 10k-node wall.
  ids->clear();
  out->clear();
  for (cluster::NodeId id = occupied_nodes_.next_at_least(0);
       id != cluster::IdBitmap::kNone &&
       id < static_cast<cluster::NodeId>(node_count);
       id = occupied_nodes_.next_at_least(id + 1)) {
    const double cap = node_bw_caps_[id];
    double total = 0.0;
    if (cap > 0.0) {
      for (const auto& jc : node_reports_[id].jobs) {
        total += jc.achieved_bw_gbps;
      }
    }
    ids->push_back(id);
    out->push_back(cap > 0.0 ? total / cap : 0.0);
  }
}

double ClusterEngine::gpu_utilization(cluster::JobId job) const {
  ensure_synced();
  auto it = running_.find(job);
  if (it == running_.end() || !it->second.spec->is_gpu_job()) {
    return -1.0;
  }
  double util = it->second.gpu_util;
  if (config_.util_noise_stddev > 0.0) {
    // Jittered probe: what a real 90 s utilization sample looks like.
    util *= 1.0 + noise_rng_.normal(0.0, config_.util_noise_stddev);
  }
  return std::clamp(util, 0.0, 1.0);
}

double ClusterEngine::expected_gpu_utilization(cluster::JobId job) const {
  ensure_synced();
  auto it = running_.find(job);
  if (it == running_.end() || !it->second.spec->is_gpu_job()) {
    return -1.0;
  }
  const RunningJob& r = it->second;
  double util = 1.0;
  for (const auto& [node, st] : r.nodes) {
    util = std::min(util, perf_.gpu_utilization(r.spec->model,
                                                r.spec->train_config,
                                                std::max(1, st.cpus)));
  }
  return util;
}

// ----------------------------------------------------------------- metrics

void ClusterEngine::sample_metrics() {
  flush_dirty_nodes();
  const double t = sim_.now();
  series_.gpu_active->add(t, cluster_.gpu_active_rate());
  series_.cpu_active->add(t, cluster_.cpu_active_rate());

  // Fragmentation (Sec. VI-C): idle GPUs that cannot serve even the most
  // easily placed pending GPU job. The paper's headline numbers are
  // *case 1* — the node has the GPUs but lacks CPU cores; *case 2* — the
  // node lacks enough adjacent GPUs — is tracked separately (the multi-array
  // scheduler is the paper's fix for it). Zero when nothing is pending: an
  // idle GPU without demand is spare capacity, not waste.
  double frag_cpu = 0.0;
  double frag_adjacency = 0.0;
  if (auto demand = scheduler_->min_pending_gpu_demand()) {
    long long cpu_starved = 0;
    long long adjacency = 0;
    if (sched::placement_index_enabled()) {
      // Bucket-count form of the scan below. Adjacency is a pure sum over
      // the (free_gpus < demand) buckets; failed nodes sit at (0, 0) and are
      // excluded by both forms. The starved side only needs nodes with
      // free_gpus >= demand.gpus AND free_cpus < demand.cpus — since
      // reclaimable_cpus() is a sum of core counts (never negative), a node
      // with free_cpus >= demand.cpus can never satisfy the starvation
      // predicate — and that candidate set is exactly the eviction-candidate
      // bucket walk. Integer sums are order-free, so this matches the full
      // scan bit for bit.
      const auto& index = cluster_.placement_index();
      adjacency = index.free_gpu_sum_below(demand->gpus_per_node);
      frag_scratch_.clear();
      index.collect_eviction_candidates(demand->gpus_per_node,
                                        demand->cpus_per_node, {},
                                        &frag_scratch_);
      for (const cluster::NodeId id : frag_scratch_) {
        const cluster::Node& node = cluster_.node(id);
        if (node.free_cpus() + scheduler_->reclaimable_cpus(id) <
            demand->cpus_per_node) {
          cpu_starved += node.free_gpus();
        }
      }
    } else {
      for (const auto& node : cluster_.nodes()) {
        if (node.free_gpus() == 0) {
          continue;
        }
        if (node.free_gpus() < demand->gpus_per_node) {
          adjacency += node.free_gpus();
        } else if (node.free_cpus() +
                       scheduler_->reclaimable_cpus(node.id()) <
                   demand->cpus_per_node) {
          cpu_starved += node.free_gpus();
        }
      }
    }
    frag_cpu = static_cast<double>(cpu_starved) / cluster_.total_gpus();
    frag_adjacency = static_cast<double>(adjacency) / cluster_.total_gpus();
  }
  series_.gpu_frag->add(t, frag_cpu);
  series_.gpu_frag_case2->add(t, frag_adjacency);
  series_.pending_jobs->add(
      t, static_cast<double>(scheduler_->pending_jobs()));
  series_.pending_gpu_jobs->add(
      t, static_cast<double>(scheduler_->pending_gpu_jobs()));

  // GPU utilization averaged over *active* GPUs (the paper's definition);
  // CPU utilization over active cores.
  double gpu_util_weighted = 0.0;
  int active_gpus = 0;
  double cpu_busy = 0.0;
  int active_cores = 0;
  for (const auto& [id, job] : running_) {
    const workload::JobSpec& spec = *job.spec;
    if (spec.is_gpu_job()) {
      const int gpus = spec.total_gpus();
      gpu_util_weighted += job.gpu_util * gpus;
      active_gpus += gpus;
      for (const auto& [node, st] : job.nodes) {
        // update_rate keeps the eval cache in sync with (cpus, factors)
        // whenever rates are fresh — which flush_dirty_nodes() above just
        // guaranteed — so the prep stage costs no model lookup here. The
        // bit-compare fallback covers any path that mutated state without a
        // rate update; it returns the identical value either way.
        uint64_t prep_bits;
        uint64_t gpu_bits;
        std::memcpy(&prep_bits, &st.factors.prep_inflation,
                    sizeof(prep_bits));
        std::memcpy(&gpu_bits, &st.factors.gpu_inflation, sizeof(gpu_bits));
        const bool cached = st.eval_cpus == std::max(1, st.cpus) &&
                            st.eval_prep_bits == prep_bits &&
                            st.eval_gpu_bits == gpu_bits;
        const double prep =
            cached ? st.eval_prep
                   : perf_.prep_time(spec.model, spec.train_config,
                                     std::max(1, st.cpus), st.factors);
        const double iter = 1.0 / job.rate;
        cpu_busy += st.cpus * std::min(1.0, prep / iter);
        active_cores += st.cpus;
      }
    } else {
      const auto& st = job.nodes.front().second;
      cpu_busy += st.cpus * st.cpu_rate_factor;
      active_cores += st.cpus;
    }
  }
  series_.gpu_util_active->add(
      t, active_gpus > 0 ? gpu_util_weighted / active_gpus : 0.0);
  series_.cpu_util_active->add(
      t, active_cores > 0 ? cpu_busy / active_cores : 0.0);

  // Unoccupied nodes hold an empty report with mem_pressure exactly +0.0;
  // adding +0.0 never changes a non-negative sum's bits, so summing the
  // occupied nodes in ascending id order matches the old full-vector scan.
  double pressure = 0.0;
  for (cluster::NodeId id = occupied_nodes_.next_at_least(0);
       id != cluster::IdBitmap::kNone;
       id = occupied_nodes_.next_at_least(id + 1)) {
    pressure += std::min(1.0, node_reports_[id].mem_pressure);
  }
  series_.mem_pressure->add(
      t, pressure / static_cast<double>(node_reports_.size()));

  // Hot-path accounting, republished as gauges so reports (and the micro
  // bench) can read cache effectiveness without new plumbing. The slots
  // resolve on the first tick and then every later tick is a plain store.
  if (gauges_.perf_cache_hits == nullptr) {
    gauges_.perf_cache_hits = &metrics_.gauge_ref("perf_cache_hits");
    gauges_.perf_cache_misses = &metrics_.gauge_ref("perf_cache_misses");
    gauges_.node_recomputes = &metrics_.gauge_ref("engine_node_recomputes");
    gauges_.rate_updates = &metrics_.gauge_ref("engine_rate_updates");
    gauges_.reschedules_skipped =
        &metrics_.gauge_ref("engine_reschedules_skipped");
    gauges_.dirty_flushes = &metrics_.gauge_ref("engine_dirty_flushes");
    gauges_.parallel_flushes = &metrics_.gauge_ref("engine_parallel_flushes");
    gauges_.parallel_flush_nodes =
        &metrics_.gauge_ref("engine_parallel_flush_nodes");
    gauges_.event_pool_live = &metrics_.gauge_ref("event_pool_live");
    gauges_.event_pool_slots_in_use =
        &metrics_.gauge_ref("event_pool_slots_in_use");
    gauges_.event_pool_slots_free =
        &metrics_.gauge_ref("event_pool_slots_free");
    gauges_.event_pool_chunks = &metrics_.gauge_ref("event_pool_chunks");
    gauges_.placement_index_probes =
        &metrics_.gauge_ref("placement_index_probes");
    gauges_.placement_index_rebuilds =
        &metrics_.gauge_ref("placement_index_rebuilds");
    gauges_.event_queue_depth = &metrics_.gauge_ref("event_queue_depth");
  }
  const perfmodel::TrainPerf::CacheStats& cs = perf_.cache_stats();
  *gauges_.perf_cache_hits = static_cast<double>(cs.hits);
  *gauges_.perf_cache_misses = static_cast<double>(cs.misses);
  *gauges_.node_recomputes = static_cast<double>(stats_.node_recomputes);
  *gauges_.rate_updates = static_cast<double>(stats_.rate_updates);
  *gauges_.reschedules_skipped =
      static_cast<double>(stats_.reschedules_skipped);
  *gauges_.dirty_flushes = static_cast<double>(stats_.dirty_flushes);
  // Parallel-flush fan-out accounting: how many flushes were wide enough to
  // take the pooled path, how many nodes they drained, and how evenly the
  // static partition spread the resident recomputes (max vs mean per-flush
  // worker load — identical when perfectly balanced).
  *gauges_.parallel_flushes = static_cast<double>(stats_.parallel_flushes);
  *gauges_.parallel_flush_nodes =
      static_cast<double>(stats_.parallel_flush_nodes);
  if (stats_.parallel_flushes > 0) {
    if (gauges_.parallel_worker_residents_max == nullptr) {
      gauges_.parallel_worker_residents_max =
          &metrics_.gauge_ref("engine_parallel_worker_residents_max");
      gauges_.parallel_worker_residents_mean =
          &metrics_.gauge_ref("engine_parallel_worker_residents_mean");
    }
    const double flushes = static_cast<double>(stats_.parallel_flushes);
    *gauges_.parallel_worker_residents_max =
        static_cast<double>(stats_.parallel_worker_max_residents) / flushes;
    *gauges_.parallel_worker_residents_mean =
        static_cast<double>(stats_.parallel_worker_sum_residents) /
        (flushes * static_cast<double>(engine_threads_));
  }
  // Event control-slot pool occupancy (steady-state allocs/event proxy:
  // chunks stops growing once the pool covers the live-event high-water
  // mark, after which push() allocates nothing).
  const simcore::EventPool::Stats ps = sim_.event_pool_stats();
  *gauges_.event_pool_live = static_cast<double>(ps.live_events);
  *gauges_.event_pool_slots_in_use = static_cast<double>(ps.slots_in_use);
  *gauges_.event_pool_slots_free = static_cast<double>(ps.slots_free);
  *gauges_.event_pool_chunks = static_cast<double>(ps.chunks);
  // Placement-index query volume and the queue's live depth: together they
  // say whether a slow shard is scheduler-bound (probes per event high) or
  // event-bound (deep queue).
  const cluster::PlacementIndex::Stats& is =
      cluster_.placement_index().stats();
  *gauges_.placement_index_probes = static_cast<double>(is.probes);
  *gauges_.placement_index_rebuilds = static_cast<double>(is.rebuilds);
  *gauges_.event_queue_depth = static_cast<double>(ps.live_events);
}

}  // namespace coda::sim
