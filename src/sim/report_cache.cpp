#include "sim/report_cache.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "sim/report_io.h"
#include "util/strings.h"

namespace coda::sim {

namespace {

constexpr const char* kCacheMagic = "CODA_REPORT_CACHE";

uint64_t fnv1a(const char* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

// The mix_* functions below must enumerate every ExperimentConfig field —
// a missed knob makes the cache return a stale report for a changed
// config. The journal's CODA_JOURNAL_V2_FIELDS X-macro (service/
// journal.cpp) enumerates the same surface; tests/config_coverage_test.cpp
// trips at compile time when a config struct grows a field, pointing at
// both sites.
void mix_node_config(CacheKeyHasher& h, const cluster::NodeConfig& node) {
  h.mix(node.cores);
  h.mix(node.gpus);
  h.mix(node.mem_bw_gbps);
  h.mix(node.pcie_gbps);
  h.mix(node.llc_mb);
  h.mix(node.mba_capable);
}

void mix_engine_config(CacheKeyHasher& h, const EngineConfig& cfg) {
  h.mix(cfg.cluster.node_count);
  mix_node_config(h, cfg.cluster.node);
  h.mix(cfg.cluster.mba_fraction);
  h.mix(cfg.cluster.cpu_only_node_count);
  mix_node_config(h, cfg.cluster.cpu_only_node);
  h.mix(cfg.metrics_period_s);
  h.mix(cfg.frag_min_cpus);
  h.mix(cfg.util_noise_stddev);
  h.mix(cfg.noise_seed);
  h.mix(cfg.record_events);
  h.mix(cfg.incremental_recompute);
}

void mix_coda_config(CacheKeyHasher& h, const core::CodaConfig& cfg) {
  h.mix(static_cast<int>(cfg.allocator.search_mode));
  h.mix(cfg.allocator.profile_step_s);
  h.mix(cfg.allocator.max_profile_steps);
  h.mix(cfg.allocator.improvement_eps);
  h.mix(cfg.allocator.plateau_util);
  h.mix(cfg.allocator.min_cores);
  h.mix(cfg.allocator.max_cores);
  h.mix(cfg.eliminator.enabled);
  h.mix(cfg.eliminator.check_period_s);
  h.mix(cfg.eliminator.bw_threshold);
  h.mix(cfg.eliminator.util_drop_tolerance);
  h.mix(cfg.eliminator.mba_throttle_factor);
  h.mix(cfg.eliminator.release_when_calm);
  h.mix(cfg.eliminator.release_threshold);
  h.mix(cfg.reserved_cores_per_node);
  h.mix(cfg.four_gpu_node_fraction);
  h.mix(cfg.reservation_update_period_s);
  h.mix(cfg.multi_array_enabled);
  h.mix(cfg.cpu_preemption_enabled);
  h.mix(cfg.static_bw_cap_gbps);
}

void mix_spec(CacheKeyHasher& h, const workload::JobSpec& spec) {
  h.mix(spec.id);
  h.mix(static_cast<uint64_t>(spec.tenant));
  h.mix(static_cast<int>(spec.kind));
  h.mix(spec.submit_time);
  h.mix(static_cast<int>(spec.model));
  h.mix(spec.train_config.nodes);
  h.mix(spec.train_config.gpus_per_node);
  h.mix(spec.train_config.batch_size);
  h.mix(spec.train_config.net_gbps);
  h.mix(spec.iterations);
  h.mix(spec.requested_cpus);
  h.mix(spec.hints.category_known);
  h.mix(spec.hints.pipelined);
  h.mix(spec.hints.large_weights);
  h.mix(spec.hints.complex_prep);
  h.mix(spec.cpu_cores);
  h.mix(spec.cpu_work_core_s);
  h.mix(spec.mem_bw_gbps);
  h.mix(spec.bw_bound_fraction);
  h.mix(spec.llc_mb);
  h.mix(spec.user_facing);
  h.mix(spec.checkpoint_interval_s);
  h.mix(spec.checkpoint_overhead_s);
}

}  // namespace

void CacheKeyHasher::mix_bytes(const void* data, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    state_ ^= bytes[i];
    state_ *= 0x100000001b3ull;
  }
}

void CacheKeyHasher::mix(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  mix(bits);
}

void CacheKeyHasher::mix(const std::string& s) {
  mix(s.size());
  mix_bytes(s.data(), s.size());
}

std::string CacheKeyHasher::hex() const {
  return util::strfmt("%016llx", static_cast<unsigned long long>(state_));
}

std::string experiment_cache_key(Policy policy,
                                 const std::vector<workload::JobSpec>& trace,
                                 const ExperimentConfig& config) {
  CacheKeyHasher h;
  h.mix(kReportFormatVersion);
  h.mix(static_cast<int>(policy));
  mix_engine_config(h, config.engine);
  mix_coda_config(h, config.coda);
  h.mix(config.horizon_s);
  h.mix(config.drain_slack_s);
  h.mix(config.retry.enabled);
  h.mix(config.retry.backoff_base_s);
  h.mix(config.retry.backoff_max_s);
  h.mix(config.retry.max_retries);
  h.mix(config.failures.node_mtbf_s);
  h.mix(config.failures.outage_s);
  h.mix(config.failures.seed);
  h.mix(trace.size());
  for (const auto& spec : trace) {
    mix_spec(h, spec);
  }
  return h.hex();
}

ReportCache::ReportCache(std::string directory) : dir_(std::move(directory)) {
  if (dir_.empty()) {
    dir_ = default_dir();
  }
  const char* off = std::getenv("CODA_NO_CACHE");
  if (off != nullptr && off[0] != '\0' && off[0] != '0') {
    enabled_ = false;
  }
}

std::string ReportCache::default_dir() {
  const char* env = std::getenv("CODA_CACHE_DIR");
  if (env != nullptr && env[0] != '\0') {
    return env;
  }
  return ".report_cache";
}

std::string ReportCache::path_for(const std::string& key) const {
  return dir_ + "/" + key + ".report";
}

std::optional<ExperimentReport> ReportCache::load(
    const std::string& key) const {
  if (!enabled_) {
    return std::nullopt;
  }
  const std::string path = path_for(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string file = buffer.str();

  // Header: "CODA_REPORT_CACHE <schema> <payload-bytes> <payload-fnv1a>\n".
  const size_t header_end = file.find('\n');
  bool valid = header_end != std::string::npos;
  if (valid) {
    std::istringstream header(file.substr(0, header_end));
    std::string magic;
    int schema = -1;
    size_t payload_bytes = 0;
    unsigned long long checksum = 0;
    header >> magic >> schema >> payload_bytes >> std::hex >> checksum;
    const char* payload = file.c_str() + header_end + 1;
    const size_t actual_bytes = file.size() - header_end - 1;
    valid = !header.fail() && magic == kCacheMagic &&
            schema == kReportFormatVersion && payload_bytes == actual_bytes &&
            checksum == fnv1a(payload, actual_bytes);
    if (valid) {
      auto report = deserialize_report(file.substr(header_end + 1));
      if (report.ok()) {
        return std::move(report).value();
      }
    }
  }
  // Corrupt or stale: drop the entry so the recomputed report replaces it.
  std::error_code ec;
  std::filesystem::remove(path, ec);
  return std::nullopt;
}

util::Status ReportCache::store(const std::string& key,
                                const ExperimentReport& report) const {
  if (!enabled_) {
    return util::Status::Ok();
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return util::Error{util::ErrorCode::kIoError,
                       "cannot create cache dir " + dir_};
  }
  const std::string payload = serialize_report(report);
  const std::string header = util::strfmt(
      "%s %d %zu %016llx\n", kCacheMagic, kReportFormatVersion, payload.size(),
      static_cast<unsigned long long>(fnv1a(payload.data(), payload.size())));

  // Write-then-rename keeps concurrent readers (other bench binaries) from
  // ever seeing a partial entry.
  const std::string tmp = util::strfmt(
      "%s.tmp.%d", path_for(key).c_str(), static_cast<int>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return util::Error{util::ErrorCode::kIoError, "cannot write " + tmp};
    }
    out << header << payload;
    if (!out) {
      return util::Error{util::ErrorCode::kIoError, "short write to " + tmp};
    }
  }
  std::filesystem::rename(tmp, path_for(key), ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return util::Error{util::ErrorCode::kIoError,
                       "cannot publish cache entry for " + key};
  }
  return util::Status::Ok();
}

}  // namespace coda::sim
