// Snapshot (de)serialization for ClusterEngine (see engine.h, "snapshot
// support"). Everything mutable is serialized — no recompute-on-load: the
// per-node eval caches, contention factors and reports restore to the exact
// doubles the live engine held, so the first post-restore event observes
// bit-identical state. Node allocations, MBA caps, metrics and the event
// log restore by replaying their own mutation APIs (allocate/set_cap/set/
// add/record), which fold deterministically in serialized order.
//
// Pending simulator events are NOT handled here: save_state captures a
// quiescent engine (between dispatches, dirty nodes flushed) and the
// snapshot's re-arm manifest re-posts events through the rearm_* helpers.
#include <algorithm>
#include <array>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.h"
#include "state/serde.h"
#include "util/assert.h"

namespace coda::sim {

void ClusterEngine::save_state(state::Writer* w) const {
  // Capture at a quiescent point: derived state (rates, reports) must be in
  // sync with the allocations being serialized.
  ensure_synced();

  const auto rng_state = noise_rng_.state();
  w->line("rng", rng_state[0], rng_state[1], rng_state[2], rng_state[3]);
  w->line("counts", finished_count_, abandoned_count_, submitted_count_,
          node_failures_);
  w->line("stats", stats_.node_recomputes, stats_.rate_updates,
          stats_.reschedules, stats_.reschedules_skipped,
          stats_.dirty_flushes, stats_.parallel_flushes,
          stats_.parallel_flush_nodes, stats_.parallel_worker_max_residents,
          stats_.parallel_worker_sum_residents);

  w->line("records", records_.size());
  for (const auto& [id, rec] : records_) {
    w->line("rec", id, rec.submit_time, rec.first_start_time, rec.finish_time,
            rec.queue_time_total, rec.preempt_count, rec.final_cpus,
            rec.completed, rec.evict_count, rec.restart_count, rec.abandoned,
            rec.busy_core_s, rec.busy_gpu_s, rec.wasted_core_s,
            rec.wasted_gpu_s);
  }

  w->line("pending", pending_since_.size());
  for (const auto& [id, since] : pending_since_) {
    w->line("pend", id, since);
  }
  w->line("remaining", remaining_work_.size());
  for (const auto& [id, rem] : remaining_work_) {
    w->line("rem", id, rem);
  }

  w->line("nodes", cluster_.node_count());
  for (size_t n = 0; n < cluster_.node_count(); ++n) {
    const cluster::Node& node = cluster_.node(static_cast<cluster::NodeId>(n));
    w->line("node", n, node.failed(), node.allocations().size());
    for (const auto& [job, alloc] : node.allocations()) {
      w->line("alloc", job, alloc.cpus, alloc.gpus);
    }
  }

  w->line("running", running_.size());
  for (const auto& [id, job] : running_) {
    w->line("run", id, job.remaining, job.rate, job.last_update, job.gpu_util,
            job.ckpt_remaining, job.time_since_ckpt, job.busy_core_s,
            job.busy_gpu_s, job.ckpt_busy_core_s, job.ckpt_busy_gpu_s,
            job.placement.nodes.size());
    // Placement order is semantic (nodes.front() names the lead node) —
    // serialized verbatim, separately from the sorted per-node state map.
    for (const auto& np : job.placement.nodes) {
      w->line("place", np.node, np.cpus, np.gpus);
    }
    for (const auto& [node, st] : job.nodes) {
      const perfmodel::ResourceFootprint& fp = st.footprint;
      w->line("pstate", node, st.cpus, fp.is_gpu_job, fp.mem_bw_gbps,
              fp.mem_bw_cap_gbps, fp.pcie_gbps, fp.llc_mb,
              fp.bw_latency_sensitivity, fp.bw_share_dependence,
              fp.llc_sensitivity, fp.bw_bound_fraction,
              st.factors.prep_inflation, st.factors.gpu_inflation,
              st.cpu_rate_factor, st.achieved_bw, st.eval_cpus,
              st.eval_prep_bits, st.eval_gpu_bits, st.eval_iter, st.eval_util,
              st.eval_prep);
    }
  }

  // Resident lists in their live (insertion) order: recompute_node walks
  // them in order, and report rows zip against them.
  for (size_t n = 0; n < jobs_on_node_.size(); ++n) {
    w->line("res", n, jobs_on_node_[n].size());
    for (const Resident& r : jobs_on_node_[n]) {
      w->line("rid", r.id);
    }
  }

  for (size_t n = 0; n < node_reports_.size(); ++n) {
    const perfmodel::NodeContentionReport& rep = node_reports_[n];
    w->line("rep", n, rep.total_demand_gbps, rep.mem_pressure,
            rep.llc_pressure, rep.pcie_total_gbps, rep.jobs.size());
    for (const perfmodel::JobContention& jc : rep.jobs) {
      w->line("rj", jc.job, jc.achieved_bw_gbps, jc.factors.prep_inflation,
              jc.factors.gpu_inflation, jc.cpu_rate_factor);
    }
  }

  w->line("mba", mba_.caps().size());
  for (const auto& [key, cap] : mba_.caps()) {
    w->line("cap", key.first, key.second, cap);
  }

  w->line("counters", metrics_.counters().size());
  for (const auto& [name, value] : metrics_.counters()) {
    w->line("ctr", name, value);
  }
  w->line("series", metrics_.all_series().size());
  for (const auto& [name, series] : metrics_.all_series()) {
    w->line("ser", name, series.size());
    for (const util::TimePoint& p : series.points()) {
      w->line("pt", p.t, p.value);
    }
  }

  w->line("eventlog", event_log_.size());
  for (const Event& e : event_log_.events()) {
    w->line("ev", e.t, static_cast<int>(e.kind), e.job, e.node, e.value);
  }
}

util::Status ClusterEngine::load_state(
    state::Reader* r,
    const std::map<cluster::JobId, workload::JobSpec>& specs) {
  CODA_ASSERT_MSG(records_.empty() && running_.empty(),
                  "load_state requires a restore-mode engine with no trace");

  r->expect("rng");
  std::array<uint64_t, 4> rng_state;
  for (uint64_t& word : rng_state) {
    word = r->u64();
  }
  noise_rng_.set_state(rng_state);

  r->expect("counts");
  finished_count_ = r->u64();
  abandoned_count_ = r->u64();
  submitted_count_ = r->u64();
  node_failures_ = r->i32();
  r->expect("stats");
  stats_.node_recomputes = r->u64();
  stats_.rate_updates = r->u64();
  stats_.reschedules = r->u64();
  stats_.reschedules_skipped = r->u64();
  stats_.dirty_flushes = r->u64();
  stats_.parallel_flushes = r->u64();
  stats_.parallel_flush_nodes = r->u64();
  stats_.parallel_worker_max_residents = r->u64();
  stats_.parallel_worker_sum_residents = r->u64();

  r->expect("records");
  uint64_t n = r->u64();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("rec");
    const cluster::JobId id = r->u64();
    auto spec_it = specs.find(id);
    if (spec_it == specs.end()) {
      r->fail("engine record references unknown job " + std::to_string(id));
      break;
    }
    JobRecord rec;
    rec.spec = spec_it->second;
    rec.submit_time = r->f64();
    rec.first_start_time = r->f64();
    rec.finish_time = r->f64();
    rec.queue_time_total = r->f64();
    rec.preempt_count = r->i32();
    rec.final_cpus = r->i32();
    rec.completed = r->b();
    rec.evict_count = r->i32();
    rec.restart_count = r->i32();
    rec.abandoned = r->b();
    rec.busy_core_s = r->f64();
    rec.busy_gpu_s = r->f64();
    rec.wasted_core_s = r->f64();
    rec.wasted_gpu_s = r->f64();
    records_[id] = std::move(rec);
  }

  r->expect("pending");
  n = r->u64();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("pend");
    const cluster::JobId id = r->u64();
    pending_since_[id] = r->f64();
  }
  r->expect("remaining");
  n = r->u64();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("rem");
    const cluster::JobId id = r->u64();
    remaining_work_[id] = r->f64();
  }

  r->expect("nodes");
  n = r->u64();
  if (r->ok() && n != cluster_.node_count()) {
    r->fail("snapshot node count does not match the engine's cluster");
  }
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("node");
    if (r->u64() != i && r->ok()) {
      r->fail("node rows out of order");
      break;
    }
    const bool failed = r->b();
    const uint64_t allocs = r->u64();
    cluster::Node& node = cluster_.node(static_cast<cluster::NodeId>(i));
    for (uint64_t j = 0; j < allocs && r->ok(); ++j) {
      r->expect("alloc");
      const cluster::JobId job = r->u64();
      const int cpus = r->i32();
      const int gpus = r->i32();
      if (!r->ok()) {
        break;
      }
      if (auto status = node.allocate(job, cpus, gpus); !status.ok()) {
        r->fail("allocation replay failed: " + status.error().message);
        break;
      }
    }
    node.set_failed(failed);
  }

  r->expect("running");
  n = r->u64();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("run");
    const cluster::JobId id = r->u64();
    auto rec_it = records_.find(id);
    if (rec_it == records_.end()) {
      r->fail("running job without a record: " + std::to_string(id));
      break;
    }
    RunningJob job;
    job.id = id;
    job.spec = &rec_it->second.spec;  // stable: map node address
    job.remaining = r->f64();
    job.rate = r->f64();
    job.last_update = r->f64();
    job.gpu_util = r->f64();
    job.ckpt_remaining = r->f64();
    job.time_since_ckpt = r->f64();
    job.busy_core_s = r->f64();
    job.busy_gpu_s = r->f64();
    job.ckpt_busy_core_s = r->f64();
    job.ckpt_busy_gpu_s = r->f64();
    const uint64_t np = r->u64();
    job.placement.nodes.reserve(np);
    job.nodes.reserve(np);
    for (uint64_t j = 0; j < np && r->ok(); ++j) {
      r->expect("place");
      sched::NodePlacement p;
      p.node = static_cast<cluster::NodeId>(r->u64());
      p.cpus = r->i32();
      p.gpus = r->i32();
      job.placement.nodes.push_back(p);
    }
    for (uint64_t j = 0; j < np && r->ok(); ++j) {
      r->expect("pstate");
      const cluster::NodeId node = static_cast<cluster::NodeId>(r->u64());
      PerNodeState st;
      st.cpus = r->i32();
      perfmodel::ResourceFootprint& fp = st.footprint;
      fp.job = id;
      fp.is_gpu_job = r->b();
      fp.mem_bw_gbps = r->f64();
      fp.mem_bw_cap_gbps = r->f64();
      fp.pcie_gbps = r->f64();
      fp.llc_mb = r->f64();
      fp.bw_latency_sensitivity = r->f64();
      fp.bw_share_dependence = r->f64();
      fp.llc_sensitivity = r->f64();
      fp.bw_bound_fraction = r->f64();
      st.factors.prep_inflation = r->f64();
      st.factors.gpu_inflation = r->f64();
      st.cpu_rate_factor = r->f64();
      st.achieved_bw = r->f64();
      st.eval_cpus = r->i32();
      st.eval_prep_bits = r->u64();
      st.eval_gpu_bits = r->u64();
      st.eval_iter = r->f64();
      st.eval_util = r->f64();
      st.eval_prep = r->f64();
      job.nodes.emplace_back(node, st);
    }
    // pstate rows were serialized in ascending node order, but sort anyway:
    // the flat vector's order is an invariant, not a serialization accident.
    std::sort(job.nodes.begin(), job.nodes.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    // finish_event stays empty here; the snapshot manifest re-arms it via
    // rearm_finish at the exact serialized firing time.
    running_.emplace(id, std::move(job));
  }

  for (size_t node = 0; node < jobs_on_node_.size() && r->ok(); ++node) {
    r->expect("res");
    if (r->u64() != node && r->ok()) {
      r->fail("resident rows out of order");
      break;
    }
    const uint64_t k = r->u64();
    for (uint64_t j = 0; j < k && r->ok(); ++j) {
      r->expect("rid");
      const cluster::JobId id = r->u64();
      auto run_it = running_.find(id);
      if (run_it == running_.end()) {
        r->fail("resident references a non-running job");
        break;
      }
      PerNodeState* st = node_state(run_it->second,
                                    static_cast<cluster::NodeId>(node));
      if (st == nullptr) {
        r->fail("resident references a node the job does not occupy");
        break;
      }
      jobs_on_node_[node].push_back(Resident{id, &run_it->second, st});
    }
    if (!jobs_on_node_[node].empty()) {
      occupied_nodes_.insert(static_cast<cluster::NodeId>(node));
    }
  }

  for (size_t node = 0; node < node_reports_.size() && r->ok(); ++node) {
    r->expect("rep");
    if (r->u64() != node && r->ok()) {
      r->fail("report rows out of order");
      break;
    }
    perfmodel::NodeContentionReport& rep = node_reports_[node];
    rep.total_demand_gbps = r->f64();
    rep.mem_pressure = r->f64();
    rep.llc_pressure = r->f64();
    rep.pcie_total_gbps = r->f64();
    const uint64_t k = r->u64();
    rep.jobs.clear();
    for (uint64_t j = 0; j < k && r->ok(); ++j) {
      r->expect("rj");
      perfmodel::JobContention jc;
      jc.job = r->u64();
      jc.achieved_bw_gbps = r->f64();
      jc.factors.prep_inflation = r->f64();
      jc.factors.gpu_inflation = r->f64();
      jc.cpu_rate_factor = r->f64();
      rep.jobs.push_back(jc);
    }
  }

  r->expect("mba");
  n = r->u64();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("cap");
    const cluster::NodeId node = static_cast<cluster::NodeId>(r->u64());
    const cluster::JobId job = r->u64();
    const double cap = r->f64();
    if (!r->ok()) {
      break;
    }
    if (auto status = mba_.set_cap(node, job, cap); !status.ok()) {
      r->fail("MBA cap replay failed: " + status.error().message);
      break;
    }
  }

  r->expect("counters");
  n = r->u64();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("ctr");
    const std::string name(r->token());
    metrics_.set(name, r->f64());
  }
  r->expect("series");
  n = r->u64();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("ser");
    const std::string name(r->token());
    util::TimeSeries& series = metrics_.series_mut(name);
    const uint64_t k = r->u64();
    for (uint64_t j = 0; j < k && r->ok(); ++j) {
      r->expect("pt");
      const double t = r->f64();
      series.add(t, r->f64());
    }
  }

  r->expect("eventlog");
  n = r->u64();
  if (r->ok() && n > 0 && !event_log_.enabled()) {
    r->fail("snapshot carries an event log but record_events is off");
  }
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    r->expect("ev");
    const double t = r->f64();
    const EventKind kind = static_cast<EventKind>(r->i32());
    const cluster::JobId job = r->u64();
    const int node = r->i32();
    event_log_.record(t, kind, job, node, r->f64());
  }

  return r->status();
}

}  // namespace coda::sim
