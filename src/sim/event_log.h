// Scheduling-decision audit trail: every externally-visible action the
// engine takes (arrivals, starts, finishes, preemptions, failure evictions,
// resizes, bandwidth caps, node outages) with its simulated timestamp.
// Off by default; enable via EngineConfig::record_events for debugging,
// post-hoc analysis or CSV export.
#pragma once

#include <string>
#include <vector>

#include "cluster/resources.h"
#include "util/result.h"

namespace coda::sim {

enum class EventKind {
  kArrival = 0,
  kStart,
  kFinish,
  kPreempt,      // scheduler-initiated stop (abort or migration)
  kEvict,        // engine-initiated stop (node failure)
  kResize,       // CPU core-count change
  kBwCap,        // MBA cap set
  kBwCapClear,   // MBA cap removed
  kNodeFail,
  kNodeRecover,
  kAbandon,      // retry cap exhausted; job permanently given up
};

const char* to_string(EventKind kind);

struct Event {
  double t = 0.0;
  EventKind kind = EventKind::kArrival;
  cluster::JobId job = 0;     // 0 for node-level events
  int node = -1;              // -1 when no single node applies
  double value = 0.0;         // cores, GB/s cap, ... by kind
};

class EventLog {
 public:
  explicit EventLog(bool enabled = false) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  void record(double t, EventKind kind, cluster::JobId job, int node = -1,
              double value = 0.0) {
    if (enabled_) {
      events_.push_back(Event{t, kind, job, node, value});
    }
  }

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  // Number of recorded events of one kind.
  size_t count(EventKind kind) const;

  // Events touching one job, in order.
  std::vector<Event> for_job(cluster::JobId job) const;

  // CSV export: t,kind,job,node,value.
  util::Status save_csv(const std::string& path) const;

 private:
  bool enabled_;
  std::vector<Event> events_;
};

}  // namespace coda::sim
