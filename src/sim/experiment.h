// One-call experiment runner: replay a trace under a scheduling policy and
// collect the aggregates the paper's evaluation reports. Shared by the
// benchmark binaries, the examples, and the integration tests.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "coda/coda_scheduler.h"
#include "sim/engine.h"
#include "workload/trace_gen.h"

namespace coda::sim {

enum class Policy { kFifo = 0, kDrf, kCoda };

const char* to_string(Policy policy);

// Random node-outage injection over the trace window. Failure instants are
// Poisson (cluster-wide MTBF), the struck node uniform, and everything is
// drawn from `seed` — the same config replays identically.
struct FailureConfig {
  double node_mtbf_s = 0.0;  // mean time between failures; 0 disables
  double outage_s = 600.0;   // downtime per failure
  uint64_t seed = 2024;

  bool enabled() const { return node_mtbf_s > 0.0; }
};

struct ExperimentConfig {
  EngineConfig engine;
  core::CodaConfig coda;     // used when policy == kCoda
  double horizon_s = 0.0;    // trace window end; 0 => max submit time
  double drain_slack_s = 2.0 * 86400.0;  // extra time to let jobs finish
  sched::RetryPolicy retry;  // eviction backoff/abandon (any policy)
  FailureConfig failures;    // node churn injected over [0, horizon]
};

// Aggregated outcome of one replay.
struct ExperimentReport {
  std::string scheduler;
  size_t submitted = 0;
  size_t completed = 0;
  // Simulator events this replay dispatched; perf accounting (events/sec).
  size_t events_dispatched = 0;
  double horizon_s = 0.0;

  // Failure & recovery accounting — all zero (goodput 1) without failures.
  size_t abandoned = 0;    // retry budget exhausted, never completed
  int node_failures = 0;
  int evictions = 0;       // engine-forced job evictions
  int restarts = 0;        // successful post-eviction starts
  double busy_gpu_s = 0.0;     // GPU-seconds spent running
  double busy_core_s = 0.0;    // core-seconds spent running
  double wasted_gpu_s = 0.0;   // subset discarded by evictions
  double wasted_core_s = 0.0;
  double gpu_goodput = 1.0;    // 1 - wasted_gpu_s / busy_gpu_s
  double cpu_goodput = 1.0;    // 1 - wasted_core_s / busy_core_s

  // Fig. 10 headline metrics, time-weighted over the trace window.
  double gpu_active_rate = 0.0;
  double gpu_util_active = 0.0;   // per active GPU (paper's utilization)
  double gpu_util_overall = 0.0;  // active rate x utilization
  double cpu_active_rate = 0.0;
  double cpu_util_active = 0.0;
  double frag_rate = 0.0;         // Sec. VI-C case 1 (CPU-starved GPUs)
  double frag_case2_rate = 0.0;   // Sec. VI-C case 2 (GPU adjacency)
  // Same metrics restricted to samples where GPU jobs were queued — the
  // paper's "when the jobs queue up for the resource allocation" framing.
  double gpu_active_when_queued = 0.0;
  double frag_when_queued = 0.0;
  double queued_time_fraction = 0.0;  // fraction of samples with a backlog

  // Queueing samples (Fig. 11/12); censored jobs (never started) count with
  // their waiting time up to the horizon.
  std::vector<double> gpu_queue_times;
  std::vector<double> cpu_queue_times;
  std::map<cluster::TenantId, std::vector<double>> queue_by_tenant;

  // Per-job drill-down (Fig. 13) and the CODA audit trail (Fig. 14/Tbl. II).
  std::vector<JobRecord> records;
  std::vector<core::CodaScheduler::TuningOutcome> tuning_outcomes;
  core::EliminatorStats eliminator_stats;
  int preemptions = 0;
  int migrations = 0;

  // Time series kept for trend plots (Fig. 1 / Fig. 10 curves).
  util::TimeSeries gpu_active_series;
  util::TimeSeries gpu_util_series;
  util::TimeSeries cpu_active_series;
  util::TimeSeries cpu_util_series;
};

// Replays `trace` under `policy` and aggregates the report.
ExperimentReport run_experiment(Policy policy,
                                const std::vector<workload::JobSpec>& trace,
                                const ExperimentConfig& config = {});

// Pre-posts the Poisson node-outage schedule drawn from config.failures
// onto the engine (no-op when failures are disabled). Must run after
// load_trace and before the first run_until. Shared by run_experiment and
// the live codad shards so a journaled session with failure injection
// replays the exact same outages bit-for-bit.
void schedule_failures(ClusterEngine* engine, const ExperimentConfig& config,
                       double horizon);

// A scheduler instantiated for `policy`, plus a typed view of it when the
// policy is CODA (the report pulls tuning/eliminator telemetry off it).
struct PolicyScheduler {
  std::unique_ptr<sched::Scheduler> scheduler;
  core::CodaScheduler* coda = nullptr;  // non-null iff policy == kCoda
};
PolicyScheduler make_policy_scheduler(Policy policy,
                                      const ExperimentConfig& config);

// Aggregates a *finished* engine (run to `horizon` and drained) into the
// report run_experiment returns. Shared by the offline replay path and the
// live service daemon so both produce byte-identical reports for identical
// engine histories: every field — including censoring at sim().now() —
// derives from the same code. `submitted` is the number of jobs handed to
// the engine (trace plus any live injections).
ExperimentReport build_report(Policy policy, const ClusterEngine& engine,
                              size_t submitted, double horizon,
                              const core::CodaScheduler* coda);

// The evaluation's standard downscaled trace: one week at the paper's daily
// job rate (the full month runs in the same shape but 4x slower), on the
// 80-node / 400-GPU cluster.
workload::TraceConfig standard_week_trace(uint64_t seed = 42);

}  // namespace coda::sim
