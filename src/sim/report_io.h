// CSV export of experiment reports: plot-ready files for the time series,
// the per-job queueing samples and the headline summary. Lets users
// regenerate the paper's figures with their plotting tool of choice.
#pragma once

#include <string>

#include "sim/experiment.h"
#include "util/result.h"

namespace coda::sim {

// Writes three files under `directory`:
//   <prefix>_summary.csv  — one row of headline metrics
//   <prefix>_series.csv   — t, gpu_active, gpu_util, cpu_active, cpu_util
//   <prefix>_jobs.csv     — per-job kind/tenant/queue/processing/latency
// Fails with kIoError when the directory is not writable.
util::Status save_report_csv(const ExperimentReport& report,
                             const std::string& directory,
                             const std::string& prefix);

}  // namespace coda::sim
