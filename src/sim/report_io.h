// Report persistence: CSV export of experiment reports (plot-ready files
// for the time series, the per-job queueing samples and the headline
// summary) plus a lossless text (de)serialization of the whole
// ExperimentReport used by the on-disk report cache (report_cache.h).
#pragma once

#include <string>

#include "sim/experiment.h"
#include "util/result.h"

namespace coda::sim {

// Writes three files under `directory`:
//   <prefix>_summary.csv  — one row of headline metrics
//   <prefix>_series.csv   — t, gpu_active, gpu_util, cpu_active, cpu_util
//   <prefix>_jobs.csv     — per-job kind/tenant/queue/processing/latency
// Fails with kIoError when the directory is not writable.
util::Status save_report_csv(const ExperimentReport& report,
                             const std::string& directory,
                             const std::string& prefix);

// Version of the full-report text format below. Bump whenever the
// serialized field set changes; the report cache treats version mismatches
// as misses and recomputes.
// v2: checkpoint fields in JobSpec; failure/recovery accounting (evictions,
// restarts, abandoned, busy/wasted resource-seconds, goodput).
inline constexpr int kReportFormatVersion = 2;

// Serializes every field of `report` into a line-oriented text blob.
// Doubles are written as C hexfloats, so deserialize_report() round-trips
// bit-for-bit: serialize(deserialize(s)) == s and two reports are equal iff
// their serializations are byte-identical.
std::string serialize_report(const ExperimentReport& report);

// Parses a blob produced by serialize_report. Fails with kParseError on any
// structural damage (wrong magic/version, truncation, malformed fields).
util::Result<ExperimentReport> deserialize_report(const std::string& text);

}  // namespace coda::sim
