// Thread-pool experiment runner: executes a batch of independent
// (policy, config, trace) replays on worker threads and returns the reports
// in submission order.
//
// Each run_experiment() is fully self-contained (own engine, own RNG
// streams), so a parallel batch is byte-identical to running the same jobs
// serially — tests assert this on serialized reports. Worker count defaults
// to std::thread::hardware_concurrency(), overridable with the CODA_JOBS
// environment variable; CODA_JOBS=1 degenerates to inline serial execution
// with no threads spawned.
//
// When given a ReportCache the runner resolves hits up front, simulates
// only the misses, and persists their reports afterwards.
#pragma once

#include <vector>

#include "sim/experiment.h"
#include "sim/report_cache.h"

namespace coda::sim {

class Runner {
 public:
  struct Job {
    Policy policy = Policy::kFifo;
    // Not owned; must outlive run(). Shared across jobs in the common
    // many-policies-one-trace sweep, so the batch holds one trace copy.
    const std::vector<workload::JobSpec>* trace = nullptr;
    ExperimentConfig config;
  };

  // workers <= 0 selects default_workers().
  explicit Runner(int workers = 0);

  // CODA_JOBS if set (clamped to >= 1), else hardware_concurrency().
  static int default_workers();

  int workers() const { return workers_; }

  // Executes every job; results[i] corresponds to jobs[i]. With a cache,
  // hits skip simulation entirely and misses are stored after running.
  std::vector<ExperimentReport> run(const std::vector<Job>& jobs,
                                    ReportCache* cache = nullptr) const;

 private:
  int workers_ = 1;
};

}  // namespace coda::sim
