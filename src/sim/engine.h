// ClusterEngine: the discrete-event simulation of the multi-tenant GPU
// cluster. Binds the cluster model, the DNN performance model, the
// contention model, simulated MBM/MBA telemetry and a pluggable scheduler
// into one runnable experiment.
//
// Mechanics: jobs carry total work (training iterations for GPU jobs,
// core-seconds for CPU jobs) and progress at piecewise-constant rates. Any
// event that changes a node's population or allocations (start, finish,
// preemption, resize, MBA cap) re-resolves that node's contention, updates
// the affected jobs' rates exactly (integrating progress up to now) and
// re-schedules their completion events. Everything is deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "perfmodel/contention.h"
#include "sim/event_log.h"
#include "util/rng.h"
#include "perfmodel/train_perf.h"
#include "sched/scheduler.h"
#include "simcore/simulator.h"
#include "telemetry/mba.h"
#include "telemetry/mbm.h"
#include "telemetry/metrics.h"
#include "util/thread_pool.h"
#include "workload/job.h"

namespace coda::state {
class Writer;
class Reader;
}  // namespace coda::state

namespace coda::sim {

struct EngineConfig {
  cluster::ClusterConfig cluster;
  double metrics_period_s = 60.0;
  // A node's idle GPUs count as fragmented when fewer than this many cores
  // remain free beside them (Sec. VI-C, fragmentation case 1).
  int frag_min_cpus = 2;

  // Multiplicative Gaussian noise on the GPU-utilization *probe* (the
  // nvidia-smi stand-in): real 90-second utilization samples jitter, and
  // the adaptive allocator must survive that. 0 = noiseless. Noise only
  // affects what schedulers observe, never the true progress rates, and is
  // drawn deterministically from `noise_seed`.
  double util_noise_stddev = 0.0;
  uint64_t noise_seed = 12345;

  // Record every externally-visible scheduling action into an EventLog
  // (see sim/event_log.h). Off by default: a month-long replay produces
  // hundreds of thousands of events.
  bool record_events = false;

  // Batch node recomputes behind a dirty set drained once per dispatched
  // event (and lazily before any telemetry read) instead of re-resolving
  // contention on every placement/eviction/throttle mutation. Keep on; the
  // eager path exists as the bit-exact reference for the equivalence suite
  // (tests/perf_equivalence_test.cpp) and for debugging.
  bool incremental_recompute = true;
};

// Per-job lifecycle record; the raw material for every queueing/latency
// figure in the evaluation.
struct JobRecord {
  workload::JobSpec spec;
  double submit_time = 0.0;
  double first_start_time = -1.0;  // -1 while never started
  double finish_time = -1.0;       // -1 while unfinished
  double queue_time_total = 0.0;   // total time spent pending
  int preempt_count = 0;
  int final_cpus = 0;              // cores per node at finish
  bool completed = false;

  // ---- failure/recovery accounting ----
  int evict_count = 0;      // engine-forced evictions (node failures)
  int restart_count = 0;    // starts that followed an eviction
  bool abandoned = false;   // retry budget exhausted; never completed
  // Resource-seconds consumed while running, and the subset whose progress
  // was discarded by evictions (rolled back past a checkpoint, or lost
  // entirely without one). goodput = 1 - wasted / busy.
  double busy_core_s = 0.0;
  double busy_gpu_s = 0.0;
  double wasted_core_s = 0.0;
  double wasted_gpu_s = 0.0;

  // Queueing delay until the first start (the paper's queuing time).
  double initial_queue_time() const {
    return first_start_time >= 0.0 ? first_start_time - submit_time : -1.0;
  }
  double end_to_end_latency() const {
    return finish_time >= 0.0 ? finish_time - submit_time : -1.0;
  }
};

class ClusterEngine : public telemetry::BandwidthSource,
                      public telemetry::GpuUtilSource {
 public:
  // `restore_mode` constructs the engine for state::restore_session: the
  // metrics periodic is not scheduled here (the snapshot manifest re-arms
  // it at its exact next firing time) and the scheduler's attach() sees
  // SchedulerEnv::defer_periodics so its own periodics wait for re-arming
  // too. A restore-mode engine must be populated via load_state before use.
  ClusterEngine(const EngineConfig& config, sched::Scheduler* scheduler,
                bool restore_mode = false);
  ~ClusterEngine() override;

  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  // Registers a whole trace: arrival events are scheduled at each job's
  // submit_time. Call before run().
  void load_trace(const std::vector<workload::JobSpec>& trace);

  // Injects a single job arriving at time `t` (>= now). Tests/examples.
  void inject(const workload::JobSpec& spec, double t);

  // ---- failure injection ----
  // Fails a node now: every resident job is evicted (progress rolls back to
  // its last checkpoint, or to zero for non-checkpointing jobs), the
  // scheduler is notified per job via on_job_evicted, and the node accepts
  // no allocations until recover_node. Multi-node jobs die wholesale (gang
  // semantics). Fails with kFailedPrecondition if the node is already down.
  util::Status fail_node(cluster::NodeId node);
  // Brings a failed node back and kicks the scheduler.
  util::Status recover_node(cluster::NodeId node);
  // Convenience: schedules a fail at `at` and a recovery `outage_s` later.
  void schedule_node_outage(cluster::NodeId node, double at,
                            double outage_s);
  int node_failures() const { return node_failures_; }

  // Runs the simulation until simulated time `until`.
  void run_until(double until);
  // Keeps running until every submitted job finished (or was abandoned by
  // the retry policy) or `hard_cap` is hit.
  void drain(double hard_cap);

  simcore::Simulator& sim() { return sim_; }
  const simcore::Simulator& sim() const { return sim_; }
  cluster::Cluster& cluster() { return cluster_; }
  const cluster::Cluster& cluster() const { return cluster_; }
  const telemetry::MetricRegistry& metrics() const { return metrics_; }
  const std::map<cluster::JobId, JobRecord>& records() const {
    return records_;
  }
  size_t running_jobs() const { return running_.size(); }
  size_t finished_jobs() const { return finished_count_; }
  size_t abandoned_jobs() const { return abandoned_count_; }
  const EventLog& event_log() const { return event_log_; }
  const perfmodel::TrainPerf& perf() const { return perf_; }

  // Hot-path accounting (events/sec companions; see bench_engine_micro).
  // Republished as metric counters every metrics tick.
  struct EngineStats {
    uint64_t node_recomputes = 0;      // contention re-resolutions
    uint64_t rate_updates = 0;         // per-job rate recomputations
    uint64_t reschedules = 0;          // finish events (re)scheduled
    uint64_t reschedules_skipped = 0;  // rate unchanged -> event kept
    uint64_t dirty_flushes = 0;        // dirty-set drains that did work
    // Parallel-flush accounting (engine_threads > 1). A flush wide enough
    // to fan out counts once here; per-flush worker load (residents
    // recomputed per worker slice) accumulates so telemetry can report
    // imbalance as running max/mean.
    uint64_t parallel_flushes = 0;
    uint64_t parallel_flush_nodes = 0;
    uint64_t parallel_worker_max_residents = 0;  // sum of per-flush maxima
    uint64_t parallel_worker_sum_residents = 0;  // all residents recomputed
  };
  const EngineStats& engine_stats() const { return stats_; }

  // Worker count for the parallel dirty-node flush (CODA_ENGINE_THREADS).
  int engine_threads() const { return engine_threads_; }

  // ---- telemetry interfaces (simulated MBM / nvidia-smi) ----
  telemetry::NodeBandwidthSample sample(cluster::NodeId node) const override;
  void sample_into(cluster::NodeId node,
                   telemetry::NodeBandwidthSample* out) const override;
  double pressure(cluster::NodeId node) const override;
  // Whole-cluster screen: one sync, then (id, pressure) rows for occupied
  // nodes only — every unlisted node reads pressure exactly +0.0. This is
  // the eliminator's per-tick scan; listing only occupied nodes keeps it
  // O(running jobs) instead of O(cluster).
  void pressure_screen(size_t node_count,
                       std::vector<cluster::NodeId>* ids,
                       std::vector<double>* out) const override;
  double gpu_utilization(cluster::JobId job) const override;

  // No-contention utilization a running GPU job should reach with its
  // current cores (the eliminator's reference); -1 for unknown jobs.
  double expected_gpu_utilization(cluster::JobId job) const;

  // ---- snapshot support (src/state, engine_state.cpp) ----
  // Serializes the complete mutable engine state at a quiescent point
  // (between event dispatches, dirty nodes flushed): job records, running
  // jobs with their exact progress/rate/eval-cache state, node allocations
  // and failure flags, contention reports, MBA caps, metrics, RNG stream
  // and the event log. Pending simulator events are NOT serialized here —
  // they go into the snapshot's re-arm manifest (simulator pending_events).
  void save_state(state::Writer* w) const;
  // Mirror image; `specs` maps job ids back to full JobSpecs (the engine
  // stores state by id). Requires a restore-mode-constructed engine with no
  // trace loaded. The caller re-arms manifest events afterwards.
  util::Status load_state(state::Reader* r,
                          const std::map<cluster::JobId,
                                         workload::JobSpec>& specs);
  // Re-arm helpers: re-post one pending simulator event recorded in a
  // snapshot manifest at its exact absolute time.
  void rearm_arrival(double t, cluster::JobId id);
  void rearm_finish(double t, cluster::JobId id);
  void rearm_outage_fail(double t, cluster::NodeId node);
  void rearm_outage_recover(double t, cluster::NodeId node);
  void rearm_metrics_tick(double first);

  // Mutable registry access for host-layer counters (the service daemon
  // accounts snapshot/restore operations next to the engine's own metrics).
  telemetry::MetricRegistry& metrics_mut() { return metrics_; }

 private:
  struct PerNodeState {
    int cpus = 0;
    perfmodel::ResourceFootprint footprint;
    perfmodel::ContentionFactors factors;
    double cpu_rate_factor = 1.0;
    double achieved_bw = 0.0;
    // One-entry eval cache: iter/util at (cpus, exact factor bits). A
    // neighbor's recompute usually leaves this job's inputs untouched, and
    // the bit-compare then skips even the perf model's memo hashtable.
    int eval_cpus = -1;
    uint64_t eval_prep_bits = 0;
    uint64_t eval_gpu_bits = 0;
    double eval_iter = 0.0;
    double eval_util = 0.0;
    double eval_prep = 0.0;  // prep-stage time; metrics ticks read it
  };

  struct RunningJob {
    cluster::JobId id = 0;
    const workload::JobSpec* spec = nullptr;  // owned by records_
    sched::Placement placement;
    // Per-node state, sorted by node id (the recompute/serialize iteration
    // order). Flat storage: a job has at most a handful of legs, so a
    // contiguous vector beats a node-based map on every hot iteration. The
    // vector is built to its final size in start_job/load_state *before*
    // any Resident caches a PerNodeState address, and legs never change
    // count afterwards, so those addresses stay stable.
    std::vector<std::pair<cluster::NodeId, PerNodeState>> nodes;
    double remaining = 0.0;    // iterations (GPU) or core-seconds (CPU)
    double rate = 0.0;         // per simulated second
    double last_update = 0.0;
    double gpu_util = 0.0;     // cached, refreshed on every rate update
    simcore::EventHandle finish_event;

    // ---- checkpoint state (per running stint) ----
    // `remaining` at the last durable point: the stint's start, or the most
    // recent checkpoint boundary crossed since. Eviction rolls back here.
    double ckpt_remaining = 0.0;
    double time_since_ckpt = 0.0;  // running seconds past that point
    // Resource-seconds this stint (flushed into the JobRecord at stop),
    // and since the last durable point (the wasted-work charge on evict).
    double busy_core_s = 0.0;
    double busy_gpu_s = 0.0;
    double ckpt_busy_core_s = 0.0;
    double ckpt_busy_gpu_s = 0.0;
  };

  // Scheduler-facing callbacks (wired into SchedulerEnv).
  util::Status start_job(cluster::JobId id, const sched::Placement& p);
  util::Status preempt_job(cluster::JobId id, bool keep_progress);
  // Shared stop-and-release path behind preempt_job and fail_node.
  util::Status stop_running_job(cluster::JobId id, bool keep_progress);
  util::Status resize_job(cluster::JobId id, cluster::NodeId node,
                          int new_cpus);

  void on_arrival(cluster::JobId id);
  void finish_job(cluster::JobId id);
  // Scheduler gave up on an evicted job (retry cap). Closes accounting.
  void abandon_job(cluster::JobId id);

  // The job's state on `node`, or nullptr when it holds nothing there.
  // Linear scan: jobs span at most a few legs.
  static PerNodeState* node_state(RunningJob& job, cluster::NodeId node);
  // Rebuilds the job's shared-resource footprint on one node (after a start
  // or a core-count change there).
  void rebuild_footprint(RunningJob& job, cluster::NodeId node);
  // Re-resolves contention on a node and updates every resident job's rate.
  void recompute_node(cluster::NodeId node);
  // Marks a node's contention state stale after a mutation. Incremental
  // mode integrates resident jobs' progress now (rates are piecewise
  // constant, so the integration points must match the eager path bit for
  // bit) and defers the recompute to flush_dirty_nodes(); eager mode
  // recomputes immediately.
  void mark_node_dirty(cluster::NodeId node);
  // Drains the dirty set in ascending node order. Runs after every event
  // dispatch and lazily (via ensure_synced) before any read that consumes
  // rates or contention reports. Wide flushes fan the pure partition work
  // out across the engine thread pool; the apply phase — rate updates,
  // reschedules, stats — always runs serially in node-id order, which is
  // what keeps reports bit-identical to the single-threaded engine.
  void flush_dirty_nodes();
  // Const probes (telemetry samples, snapshot save) sync derived state
  // through this wrapper: observable semantics match the eager path, hence
  // the logical constness lives here, in one documented const_cast, instead
  // of being smeared across flush_dirty_nodes itself.
  void ensure_synced() const {
    const_cast<ClusterEngine*>(this)->flush_dirty_nodes();
  }
  // Parallel partition phase over the (sorted) dirty set: each worker takes
  // a contiguous slice of nodes, resolves contention into node_reports_ and
  // stages perf-model evaluations at the new factors, using only
  // worker-local models and scratch. Pure with respect to engine state the
  // other workers (or the later apply phase's ordering) can observe.
  void parallel_partition_phase();
  void update_rate(RunningJob& job);
  void advance_progress(RunningJob& job);
  void reschedule_finish(RunningJob& job);
  double total_work_of(const workload::JobSpec& spec) const;

  void sample_metrics();

  EngineConfig config_;
  sched::Scheduler* scheduler_;
  simcore::Simulator sim_;
  cluster::Cluster cluster_;
  perfmodel::TrainPerf perf_;
  perfmodel::NodeContentionModel contention_;
  telemetry::MbaController mba_;
  telemetry::MetricRegistry metrics_;
  mutable util::Rng noise_rng_;
  EventLog event_log_;

  std::map<cluster::JobId, JobRecord> records_;
  std::map<cluster::JobId, RunningJob> running_;
  // One resident job on one node. Caches the RunningJob and PerNodeState
  // addresses (stable: both live in std::map nodes) so the recompute path
  // never pays the two map lookups per resident; entries are removed before
  // the owning RunningJob is erased.
  struct Resident {
    cluster::JobId id = 0;
    RunningJob* job = nullptr;
    PerNodeState* state = nullptr;
  };
  // Jobs resident on each node (GPU jobs may appear on several nodes).
  std::vector<std::vector<Resident>> jobs_on_node_;
  // Ids with a non-empty resident list, maintained on the same transitions
  // as jobs_on_node_. After a flush, a node outside this set has an empty
  // contention report (pressure exactly +0.0), which lets the periodic
  // whole-cluster scans (pressure_all, the mem-pressure mean) iterate
  // occupied nodes only instead of all N — bit-identical, since skipped
  // nodes contribute literal zeros.
  cluster::IdBitmap occupied_nodes_;
  // Per-node memory bandwidth capacity, copied out of the immutable node
  // configs at construction so the periodic pressure screen reads a flat
  // array instead of chasing Node::config() per occupied node.
  std::vector<double> node_bw_caps_;
  // Last contention report per node (backs the MBM sample()).
  std::vector<perfmodel::NodeContentionReport> node_reports_;
  std::map<cluster::JobId, double> pending_since_;
  std::map<cluster::JobId, double> remaining_work_;  // preserved on migration

  // Scratch buffer for recompute_node (reused across calls to avoid a
  // per-event allocation on the hottest engine path).
  std::vector<perfmodel::ResourceFootprint> footprints_scratch_;

  // Scratch for sample_metrics' index-backed fragmentation walk (candidate
  // node ids with enough free GPUs but possibly too few cores).
  std::vector<cluster::NodeId> frag_scratch_;

  // Dirty-node batching (incremental_recompute): per-node staleness bits
  // plus the insertion list flushed (sorted) once per event dispatch.
  std::vector<uint8_t> node_dirty_;
  std::vector<cluster::NodeId> dirty_nodes_;

  // ---- parallel flush (CODA_ENGINE_THREADS > 1) ----
  // A GPU resident's perf-model evaluation at its node's *new* contention
  // factors, computed in the partition phase by a worker-local TrainPerf.
  // The apply phase copies it into the resident's one-entry eval cache just
  // before update_rate, so the serial phase never touches the perf model.
  // The values are bit-identical to what the serial engine would compute
  // (the memoized model's documented contract), so only the *ordering* of
  // the apply phase matters for determinism — and that stays serial.
  struct StagedEval {
    bool valid = false;  // false: existing cache entry already matches
    int cpus = 0;
    uint64_t prep_bits = 0;
    uint64_t gpu_bits = 0;
    double iter = 0.0;
    double util = 0.0;
    double prep = 0.0;
  };
  // Everything one worker needs so the partition phase shares nothing
  // mutable: its own contention model, perf-model memo shard and footprint
  // scratch. Allocated once; memo shards warm up across flushes.
  struct WorkerState {
    perfmodel::NodeContentionModel contention;
    perfmodel::TrainPerf perf;
    std::vector<perfmodel::ResourceFootprint> footprints;
  };
  int engine_threads_ = 1;
  std::unique_ptr<util::ThreadPool> flush_pool_;  // null when threads == 1
  std::vector<std::unique_ptr<WorkerState>> workers_;
  // staged_evals_[k][i]: staged eval for resident i of dirty_nodes_[k].
  // Outer capacity persists across flushes; inner vectors recycle too.
  std::vector<std::vector<StagedEval>> staged_evals_;

  EngineStats stats_;

  // Metric series resolved once at construction; sample_metrics runs every
  // tick and must not pay a map<string> lookup per series.
  struct MetricSeries {
    util::TimeSeries* gpu_active = nullptr;
    util::TimeSeries* cpu_active = nullptr;
    util::TimeSeries* gpu_frag = nullptr;
    util::TimeSeries* gpu_frag_case2 = nullptr;
    util::TimeSeries* pending_jobs = nullptr;
    util::TimeSeries* pending_gpu_jobs = nullptr;
    util::TimeSeries* gpu_util_active = nullptr;
    util::TimeSeries* cpu_util_active = nullptr;
    util::TimeSeries* mem_pressure = nullptr;
  };
  MetricSeries series_;

  // Gauge slots resolved lazily on the first metrics tick (not in the
  // constructor: gauges live in the serialized counters map, and creating
  // them before the first tick would change pre-tick snapshot bytes).
  // Stores through these pointers replace a string construction plus map
  // lookup per gauge per tick — sample_metrics is allocation-free.
  struct MetricGauges {
    double* perf_cache_hits = nullptr;
    double* perf_cache_misses = nullptr;
    double* node_recomputes = nullptr;
    double* rate_updates = nullptr;
    double* reschedules_skipped = nullptr;
    double* dirty_flushes = nullptr;
    double* parallel_flushes = nullptr;
    double* parallel_flush_nodes = nullptr;
    // Published only once a parallel flush happened (their own lazy pair):
    // a serial run's metrics must not grow zero-valued imbalance gauges.
    double* parallel_worker_residents_max = nullptr;
    double* parallel_worker_residents_mean = nullptr;
    double* event_pool_live = nullptr;
    double* event_pool_slots_in_use = nullptr;
    double* event_pool_slots_free = nullptr;
    double* event_pool_chunks = nullptr;
    double* placement_index_probes = nullptr;
    double* placement_index_rebuilds = nullptr;
    double* event_queue_depth = nullptr;
  };
  MetricGauges gauges_;

  size_t finished_count_ = 0;
  size_t abandoned_count_ = 0;
  size_t submitted_count_ = 0;
  int node_failures_ = 0;
};

}  // namespace coda::sim
