#include "sim/report_io.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/csv.h"
#include "util/strings.h"

namespace coda::sim {

util::Status save_report_csv(const ExperimentReport& report,
                             const std::string& directory,
                             const std::string& prefix) {
  const std::string base = directory + "/" + prefix;

  // ---- summary ----
  util::CsvDocument summary;
  summary.header = {"scheduler",       "submitted",
                    "completed",       "horizon_s",
                    "gpu_active_rate", "gpu_util_active",
                    "gpu_util_overall", "cpu_active_rate",
                    "cpu_util_active", "frag_rate",
                    "frag_case2_rate", "gpu_active_when_queued",
                    "preemptions",     "migrations",
                    "mba_throttles",   "core_halvings",
                    "abandoned",       "node_failures",
                    "evictions",       "restarts",
                    "gpu_goodput",     "cpu_goodput"};
  summary.rows.push_back({
      report.scheduler,
      util::strfmt("%zu", report.submitted),
      util::strfmt("%zu", report.completed),
      util::strfmt("%.1f", report.horizon_s),
      util::strfmt("%.4f", report.gpu_active_rate),
      util::strfmt("%.4f", report.gpu_util_active),
      util::strfmt("%.4f", report.gpu_util_overall),
      util::strfmt("%.4f", report.cpu_active_rate),
      util::strfmt("%.4f", report.cpu_util_active),
      util::strfmt("%.4f", report.frag_rate),
      util::strfmt("%.4f", report.frag_case2_rate),
      util::strfmt("%.4f", report.gpu_active_when_queued),
      util::strfmt("%d", report.preemptions),
      util::strfmt("%d", report.migrations),
      util::strfmt("%d", report.eliminator_stats.mba_throttles),
      util::strfmt("%d", report.eliminator_stats.core_halvings),
      util::strfmt("%zu", report.abandoned),
      util::strfmt("%d", report.node_failures),
      util::strfmt("%d", report.evictions),
      util::strfmt("%d", report.restarts),
      util::strfmt("%.4f", report.gpu_goodput),
      util::strfmt("%.4f", report.cpu_goodput),
  });
  if (auto status = util::write_csv_file(base + "_summary.csv", summary);
      !status.ok()) {
    return status;
  }

  // ---- time series (all sampled on the same metric ticks) ----
  util::CsvDocument series;
  series.header = {"t", "gpu_active", "gpu_util", "cpu_active", "cpu_util"};
  const size_t n = report.gpu_active_series.size();
  for (size_t i = 0; i < n; ++i) {
    series.rows.push_back({
        util::strfmt("%.1f", report.gpu_active_series.at(i).t),
        util::strfmt("%.4f", report.gpu_active_series.at(i).value),
        util::strfmt("%.4f", report.gpu_util_series.at(i).value),
        util::strfmt("%.4f", report.cpu_active_series.at(i).value),
        util::strfmt("%.4f", report.cpu_util_series.at(i).value),
    });
  }
  if (auto status = util::write_csv_file(base + "_series.csv", series);
      !status.ok()) {
    return status;
  }

  // ---- per-job outcomes ----
  util::CsvDocument jobs;
  jobs.header = {"job",        "kind",       "tenant",     "submit_s",
                 "queue_s",    "processing_s", "latency_s", "preempts",
                 "final_cpus", "completed",  "evictions",  "restarts",
                 "abandoned",  "wasted_core_s", "wasted_gpu_s"};
  for (const auto& record : report.records) {
    const double processing =
        record.completed ? record.finish_time - record.first_start_time
                         : -1.0;
    jobs.rows.push_back({
        util::strfmt("%llu",
                     static_cast<unsigned long long>(record.spec.id)),
        workload::to_string(record.spec.kind),
        util::strfmt("%u", record.spec.tenant),
        util::strfmt("%.1f", record.submit_time),
        util::strfmt("%.1f", record.queue_time_total),
        util::strfmt("%.1f", processing),
        util::strfmt("%.1f", record.end_to_end_latency()),
        util::strfmt("%d", record.preempt_count),
        util::strfmt("%d", record.final_cpus),
        record.completed ? "1" : "0",
        util::strfmt("%d", record.evict_count),
        util::strfmt("%d", record.restart_count),
        record.abandoned ? "1" : "0",
        util::strfmt("%.1f", record.wasted_core_s),
        util::strfmt("%.1f", record.wasted_gpu_s),
    });
  }
  return util::write_csv_file(base + "_jobs.csv", jobs);
}

// ---------------------------------------------------- full-report text form

namespace {

constexpr const char* kMagic = "CODA_REPORT";

// Append-only text builder: snprintf into a stack buffer, no temporary
// std::string per token (a week-long report serializes ~1M tokens).
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void word(const char* s) { sep(); out_->append(s); }
  void str(const std::string& s) { sep(); out_->append(s); }
  void u64(uint64_t v) { fmt("%llu", static_cast<unsigned long long>(v)); }
  void i(int v) { fmt("%d", v); }
  void zu(size_t v) { fmt("%zu", v); }
  // Hexfloat: exact binary round trip through strtod.
  void d(double v) { fmt("%a", v); }
  void nl() {
    out_->push_back('\n');
    line_start_ = true;
  }

 private:
  void sep() {
    if (!line_start_) {
      out_->push_back(' ');
    }
    line_start_ = false;
  }
  template <typename... Args>
  void fmt(const char* f, Args... args) {
    sep();
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, args...);
    out_->append(buf);
  }

  std::string* out_;
  bool line_start_ = true;
};

// Token cursor over the serialized blob. Reads are whitespace-delimited;
// every helper sets failed_ instead of aborting so corrupt cache files
// surface as a clean parse error.
class Cursor {
 public:
  explicit Cursor(const std::string& text)
      : p_(text.c_str()), end_(text.c_str() + text.size()) {}

  bool failed() const { return failed_; }

  std::string word() {
    skip_ws();
    const char* start = p_;
    while (p_ < end_ && !std::isspace(static_cast<unsigned char>(*p_))) {
      ++p_;
    }
    if (p_ == start) {
      failed_ = true;
      return {};
    }
    return std::string(start, p_);
  }

  bool expect(const char* w) {
    if (word() != w) {
      failed_ = true;
    }
    return !failed_;
  }

  double d() {
    skip_ws();
    char* next = nullptr;
    const double v = std::strtod(p_, &next);
    if (next == p_) {
      failed_ = true;
      return 0.0;
    }
    p_ = next;
    return v;
  }

  long long ll() {
    skip_ws();
    char* next = nullptr;
    const long long v = std::strtoll(p_, &next, 10);
    if (next == p_) {
      failed_ = true;
      return 0;
    }
    p_ = next;
    return v;
  }

  uint64_t u64() { return static_cast<uint64_t>(ll()); }
  int i() { return static_cast<int>(ll()); }
  size_t zu() { return static_cast<size_t>(ll()); }
  bool b() { return ll() != 0; }

 private:
  void skip_ws() {
    while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_))) {
      ++p_;
    }
  }

  const char* p_;
  const char* end_;
  bool failed_ = false;
};

void write_series(Writer& w, const char* name,
                  const util::TimeSeries& series) {
  w.word("series");
  w.word(name);
  w.zu(series.size());
  for (const auto& p : series.points()) {
    w.d(p.t);
    w.d(p.value);
  }
  w.nl();
}

bool read_series(Cursor& c, const char* name, util::TimeSeries* out) {
  if (!c.expect("series") || !c.expect(name)) {
    return false;
  }
  const size_t n = c.zu();
  out->reserve(std::min<size_t>(n, 1u << 20));
  for (size_t i = 0; i < n; ++i) {
    const double t = c.d();
    const double v = c.d();
    // Reject out-of-order timestamps here: TimeSeries::add asserts on them,
    // and a truncated/corrupt file must surface as a parse error instead.
    if (c.failed() ||
        (out->size() > 0 && t < out->at(out->size() - 1).t)) {
      return false;
    }
    out->add(t, v);
  }
  return !c.failed();
}

void write_doubles(Writer& w, const char* name,
                   const std::vector<double>& values) {
  w.word(name);
  w.zu(values.size());
  for (double v : values) {
    w.d(v);
  }
  w.nl();
}

bool read_doubles(Cursor& c, const char* name, std::vector<double>* out) {
  if (!c.expect(name)) {
    return false;
  }
  const size_t n = c.zu();
  out->reserve(std::min<size_t>(n, 1u << 20));
  for (size_t i = 0; i < n && !c.failed(); ++i) {
    out->push_back(c.d());
  }
  return !c.failed();
}

void write_spec(Writer& w, const workload::JobSpec& spec) {
  w.u64(spec.id);
  w.u64(spec.tenant);
  w.i(static_cast<int>(spec.kind));
  w.d(spec.submit_time);
  w.i(static_cast<int>(spec.model));
  w.i(spec.train_config.nodes);
  w.i(spec.train_config.gpus_per_node);
  w.i(spec.train_config.batch_size);
  w.d(spec.train_config.net_gbps);
  w.d(spec.iterations);
  w.i(spec.requested_cpus);
  w.i(spec.hints.category_known ? 1 : 0);
  w.i(spec.hints.pipelined ? 1 : 0);
  w.i(spec.hints.large_weights ? 1 : 0);
  w.i(spec.hints.complex_prep ? 1 : 0);
  w.i(spec.cpu_cores);
  w.d(spec.cpu_work_core_s);
  w.d(spec.mem_bw_gbps);
  w.d(spec.bw_bound_fraction);
  w.d(spec.llc_mb);
  w.i(spec.user_facing ? 1 : 0);
  w.d(spec.checkpoint_interval_s);
  w.d(spec.checkpoint_overhead_s);
}

workload::JobSpec read_spec(Cursor& c) {
  workload::JobSpec spec;
  spec.id = c.u64();
  spec.tenant = static_cast<cluster::TenantId>(c.u64());
  spec.kind = static_cast<workload::JobKind>(c.i());
  spec.submit_time = c.d();
  spec.model = static_cast<perfmodel::ModelId>(c.i());
  spec.train_config.nodes = c.i();
  spec.train_config.gpus_per_node = c.i();
  spec.train_config.batch_size = c.i();
  spec.train_config.net_gbps = c.d();
  spec.iterations = c.d();
  spec.requested_cpus = c.i();
  spec.hints.category_known = c.b();
  spec.hints.pipelined = c.b();
  spec.hints.large_weights = c.b();
  spec.hints.complex_prep = c.b();
  spec.cpu_cores = c.i();
  spec.cpu_work_core_s = c.d();
  spec.mem_bw_gbps = c.d();
  spec.bw_bound_fraction = c.d();
  spec.llc_mb = c.d();
  spec.user_facing = c.b();
  spec.checkpoint_interval_s = c.d();
  spec.checkpoint_overhead_s = c.d();
  return spec;
}

util::Error parse_error(const std::string& what) {
  return util::Error{util::ErrorCode::kParseError,
                     "report deserialization failed: " + what};
}

}  // namespace

std::string serialize_report(const ExperimentReport& report) {
  std::string out;
  // Rough pre-size: ~64 tokens per record line dominates.
  out.reserve(256 + report.records.size() * 320);
  Writer w(&out);

  w.word(kMagic);
  w.i(kReportFormatVersion);
  w.nl();
  w.word("scheduler");
  w.str(report.scheduler);
  w.nl();
  w.word("counts");
  w.zu(report.submitted);
  w.zu(report.completed);
  w.zu(report.events_dispatched);
  w.i(report.preemptions);
  w.i(report.migrations);
  w.zu(report.abandoned);
  w.i(report.node_failures);
  w.i(report.evictions);
  w.i(report.restarts);
  w.nl();
  w.word("scalars");
  w.d(report.horizon_s);
  w.d(report.gpu_active_rate);
  w.d(report.gpu_util_active);
  w.d(report.gpu_util_overall);
  w.d(report.cpu_active_rate);
  w.d(report.cpu_util_active);
  w.d(report.frag_rate);
  w.d(report.frag_case2_rate);
  w.d(report.gpu_active_when_queued);
  w.d(report.frag_when_queued);
  w.d(report.queued_time_fraction);
  w.d(report.busy_gpu_s);
  w.d(report.busy_core_s);
  w.d(report.wasted_gpu_s);
  w.d(report.wasted_core_s);
  w.d(report.gpu_goodput);
  w.d(report.cpu_goodput);
  w.nl();
  w.word("eliminator");
  w.i(report.eliminator_stats.checks);
  w.i(report.eliminator_stats.nodes_over_threshold);
  w.i(report.eliminator_stats.mba_throttles);
  w.i(report.eliminator_stats.core_halvings);
  w.i(report.eliminator_stats.releases);
  w.nl();

  write_doubles(w, "gpu_queue_times", report.gpu_queue_times);
  write_doubles(w, "cpu_queue_times", report.cpu_queue_times);

  w.word("tenants");
  w.zu(report.queue_by_tenant.size());
  w.nl();
  for (const auto& [tenant, times] : report.queue_by_tenant) {
    w.word("tenant");
    w.u64(tenant);
    w.zu(times.size());
    for (double v : times) {
      w.d(v);
    }
    w.nl();
  }

  w.word("records");
  w.zu(report.records.size());
  w.nl();
  for (const auto& record : report.records) {
    write_spec(w, record.spec);
    w.d(record.submit_time);
    w.d(record.first_start_time);
    w.d(record.finish_time);
    w.d(record.queue_time_total);
    w.i(record.preempt_count);
    w.i(record.final_cpus);
    w.i(record.completed ? 1 : 0);
    w.i(record.evict_count);
    w.i(record.restart_count);
    w.i(record.abandoned ? 1 : 0);
    w.d(record.busy_core_s);
    w.d(record.busy_gpu_s);
    w.d(record.wasted_core_s);
    w.d(record.wasted_gpu_s);
    w.nl();
  }

  w.word("tuning_outcomes");
  w.zu(report.tuning_outcomes.size());
  w.nl();
  for (const auto& outcome : report.tuning_outcomes) {
    w.u64(outcome.job);
    w.i(static_cast<int>(outcome.model));
    w.i(outcome.requested_cpus);
    w.i(outcome.start_cpus);
    w.i(outcome.final_cpus);
    w.i(outcome.profile_steps);
    w.nl();
  }

  write_series(w, "gpu_active", report.gpu_active_series);
  write_series(w, "gpu_util", report.gpu_util_series);
  write_series(w, "cpu_active", report.cpu_active_series);
  write_series(w, "cpu_util", report.cpu_util_series);
  w.word("end");
  w.nl();
  return out;
}

util::Result<ExperimentReport> deserialize_report(const std::string& text) {
  Cursor c(text);
  if (!c.expect(kMagic)) {
    return parse_error("bad magic");
  }
  if (c.i() != kReportFormatVersion || c.failed()) {
    return parse_error("format version mismatch");
  }

  ExperimentReport report;
  if (!c.expect("scheduler")) {
    return parse_error("missing scheduler");
  }
  report.scheduler = c.word();
  if (!c.expect("counts")) {
    return parse_error("missing counts");
  }
  report.submitted = c.zu();
  report.completed = c.zu();
  report.events_dispatched = c.zu();
  report.preemptions = c.i();
  report.migrations = c.i();
  report.abandoned = c.zu();
  report.node_failures = c.i();
  report.evictions = c.i();
  report.restarts = c.i();
  if (!c.expect("scalars")) {
    return parse_error("missing scalars");
  }
  report.horizon_s = c.d();
  report.gpu_active_rate = c.d();
  report.gpu_util_active = c.d();
  report.gpu_util_overall = c.d();
  report.cpu_active_rate = c.d();
  report.cpu_util_active = c.d();
  report.frag_rate = c.d();
  report.frag_case2_rate = c.d();
  report.gpu_active_when_queued = c.d();
  report.frag_when_queued = c.d();
  report.queued_time_fraction = c.d();
  report.busy_gpu_s = c.d();
  report.busy_core_s = c.d();
  report.wasted_gpu_s = c.d();
  report.wasted_core_s = c.d();
  report.gpu_goodput = c.d();
  report.cpu_goodput = c.d();
  if (!c.expect("eliminator")) {
    return parse_error("missing eliminator stats");
  }
  report.eliminator_stats.checks = c.i();
  report.eliminator_stats.nodes_over_threshold = c.i();
  report.eliminator_stats.mba_throttles = c.i();
  report.eliminator_stats.core_halvings = c.i();
  report.eliminator_stats.releases = c.i();

  if (!read_doubles(c, "gpu_queue_times", &report.gpu_queue_times) ||
      !read_doubles(c, "cpu_queue_times", &report.cpu_queue_times)) {
    return parse_error("bad queue-time vectors");
  }

  if (!c.expect("tenants")) {
    return parse_error("missing tenants");
  }
  const size_t n_tenants = c.zu();
  for (size_t i = 0; i < n_tenants && !c.failed(); ++i) {
    if (!c.expect("tenant")) {
      return parse_error("bad tenant entry");
    }
    const auto tenant = static_cast<cluster::TenantId>(c.u64());
    const size_t n = c.zu();
    auto& times = report.queue_by_tenant[tenant];
    times.reserve(n);
    for (size_t j = 0; j < n && !c.failed(); ++j) {
      times.push_back(c.d());
    }
  }

  if (!c.expect("records")) {
    return parse_error("missing records");
  }
  const size_t n_records = c.zu();
  report.records.reserve(n_records);
  for (size_t i = 0; i < n_records && !c.failed(); ++i) {
    JobRecord record;
    record.spec = read_spec(c);
    record.submit_time = c.d();
    record.first_start_time = c.d();
    record.finish_time = c.d();
    record.queue_time_total = c.d();
    record.preempt_count = c.i();
    record.final_cpus = c.i();
    record.completed = c.b();
    record.evict_count = c.i();
    record.restart_count = c.i();
    record.abandoned = c.b();
    record.busy_core_s = c.d();
    record.busy_gpu_s = c.d();
    record.wasted_core_s = c.d();
    record.wasted_gpu_s = c.d();
    report.records.push_back(std::move(record));
  }

  if (!c.expect("tuning_outcomes")) {
    return parse_error("missing tuning outcomes");
  }
  const size_t n_outcomes = c.zu();
  report.tuning_outcomes.reserve(n_outcomes);
  for (size_t i = 0; i < n_outcomes && !c.failed(); ++i) {
    core::CodaScheduler::TuningOutcome outcome;
    outcome.job = c.u64();
    outcome.model = static_cast<perfmodel::ModelId>(c.i());
    outcome.requested_cpus = c.i();
    outcome.start_cpus = c.i();
    outcome.final_cpus = c.i();
    outcome.profile_steps = c.i();
    report.tuning_outcomes.push_back(outcome);
  }

  if (!read_series(c, "gpu_active", &report.gpu_active_series) ||
      !read_series(c, "gpu_util", &report.gpu_util_series) ||
      !read_series(c, "cpu_active", &report.cpu_active_series) ||
      !read_series(c, "cpu_util", &report.cpu_util_series)) {
    return parse_error("bad time series");
  }
  if (!c.expect("end")) {
    return parse_error("missing end marker");
  }
  if (c.failed()) {
    return parse_error("truncated input");
  }
  return report;
}

}  // namespace coda::sim
