#include "sim/report_io.h"

#include "util/csv.h"
#include "util/strings.h"

namespace coda::sim {

util::Status save_report_csv(const ExperimentReport& report,
                             const std::string& directory,
                             const std::string& prefix) {
  const std::string base = directory + "/" + prefix;

  // ---- summary ----
  util::CsvDocument summary;
  summary.header = {"scheduler",       "submitted",
                    "completed",       "horizon_s",
                    "gpu_active_rate", "gpu_util_active",
                    "gpu_util_overall", "cpu_active_rate",
                    "cpu_util_active", "frag_rate",
                    "frag_case2_rate", "gpu_active_when_queued",
                    "preemptions",     "migrations",
                    "mba_throttles",   "core_halvings"};
  summary.rows.push_back({
      report.scheduler,
      util::strfmt("%zu", report.submitted),
      util::strfmt("%zu", report.completed),
      util::strfmt("%.1f", report.horizon_s),
      util::strfmt("%.4f", report.gpu_active_rate),
      util::strfmt("%.4f", report.gpu_util_active),
      util::strfmt("%.4f", report.gpu_util_overall),
      util::strfmt("%.4f", report.cpu_active_rate),
      util::strfmt("%.4f", report.cpu_util_active),
      util::strfmt("%.4f", report.frag_rate),
      util::strfmt("%.4f", report.frag_case2_rate),
      util::strfmt("%.4f", report.gpu_active_when_queued),
      util::strfmt("%d", report.preemptions),
      util::strfmt("%d", report.migrations),
      util::strfmt("%d", report.eliminator_stats.mba_throttles),
      util::strfmt("%d", report.eliminator_stats.core_halvings),
  });
  if (auto status = util::write_csv_file(base + "_summary.csv", summary);
      !status.ok()) {
    return status;
  }

  // ---- time series (all sampled on the same metric ticks) ----
  util::CsvDocument series;
  series.header = {"t", "gpu_active", "gpu_util", "cpu_active", "cpu_util"};
  const size_t n = report.gpu_active_series.size();
  for (size_t i = 0; i < n; ++i) {
    series.rows.push_back({
        util::strfmt("%.1f", report.gpu_active_series.at(i).t),
        util::strfmt("%.4f", report.gpu_active_series.at(i).value),
        util::strfmt("%.4f", report.gpu_util_series.at(i).value),
        util::strfmt("%.4f", report.cpu_active_series.at(i).value),
        util::strfmt("%.4f", report.cpu_util_series.at(i).value),
    });
  }
  if (auto status = util::write_csv_file(base + "_series.csv", series);
      !status.ok()) {
    return status;
  }

  // ---- per-job outcomes ----
  util::CsvDocument jobs;
  jobs.header = {"job",        "kind",       "tenant",     "submit_s",
                 "queue_s",    "processing_s", "latency_s", "preempts",
                 "final_cpus", "completed"};
  for (const auto& record : report.records) {
    const double processing =
        record.completed ? record.finish_time - record.first_start_time
                         : -1.0;
    jobs.rows.push_back({
        util::strfmt("%llu",
                     static_cast<unsigned long long>(record.spec.id)),
        workload::to_string(record.spec.kind),
        util::strfmt("%u", record.spec.tenant),
        util::strfmt("%.1f", record.submit_time),
        util::strfmt("%.1f", record.queue_time_total),
        util::strfmt("%.1f", processing),
        util::strfmt("%.1f", record.end_to_end_latency()),
        util::strfmt("%d", record.preempt_count),
        util::strfmt("%d", record.final_cpus),
        record.completed ? "1" : "0",
    });
  }
  return util::write_csv_file(base + "_jobs.csv", jobs);
}

}  // namespace coda::sim
