// The full simulated cluster: a fixed set of nodes plus aggregate
// resource-accounting queries used by schedulers and the metrics pipeline.
#pragma once

#include <vector>

#include "cluster/node.h"
#include "cluster/placement_index.h"
#include "util/result.h"

namespace coda::cluster {

struct ClusterConfig {
  int node_count = 80;          // the paper's cluster: ~80 servers, 400 GPUs
  NodeConfig node;
  // Fraction of nodes (from node id 0 upward) that support Intel MBA; the
  // paper notes MBA "only works on the latest CPU", so mixed fleets are the
  // realistic case and exercise the eliminator's core-halving fallback.
  double mba_fraction = 0.5;

  // Larger private clusters mix GPU servers with plain CPU servers
  // (Sec. VI-G). CPU-only nodes are appended after the GPU nodes and get
  // ids [node_count, node_count + cpu_only_node_count).
  int cpu_only_node_count = 0;
  NodeConfig cpu_only_node = NodeConfig{.cores = 28, .gpus = 0};
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  // Nodes hold a back-pointer into the placement index, so a cluster is
  // pinned to its address for life.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  size_t node_count() const { return nodes_.size(); }
  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  std::vector<Node>& nodes() { return nodes_; }
  const std::vector<Node>& nodes() const { return nodes_; }

  // Aggregate capacities and usage across all nodes. Usage is maintained
  // incrementally: every node holds a back-pointer to used_totals_ and
  // folds its allocate/resize/release deltas in, so these are O(1) reads
  // (integer arithmetic — identical to summing the nodes).
  int total_cpus() const { return totals_.cpus; }
  int total_gpus() const { return totals_.gpus; }
  int used_cpus() const { return used_totals_.cpus; }
  int used_gpus() const { return used_totals_.gpus; }

  // Paper Eq. (1): fraction of GPUs (CPU cores) currently allocated to jobs.
  double gpu_active_rate() const;
  double cpu_active_rate() const;

  // GPU fragmentation as defined in §VI-C case 1: the fraction of *idle*
  // GPUs that sit on nodes whose remaining CPU cores are fewer than
  // `min_cpus_per_gpu_job` — GPUs that exist but cannot be matched with
  // enough CPU to host a training job.
  double gpu_fragmentation_rate(int min_cpus_per_gpu_job) const;

  // Releases a job from every node that hosts it (multi-node jobs hold
  // allocations on several nodes). Returns how many nodes released it.
  int release_everywhere(JobId job);

  // The incrementally maintained free-resource index. Derived state, kept
  // in lock-step with the nodes; mutable because const query paths bump
  // its live stats and the CODA scheduler (which only sees a const
  // cluster) publishes reservation bias through it.
  PlacementIndex& placement_index() const { return index_; }

 private:
  ClusterConfig config_;
  std::vector<Node> nodes_;
  ResourceVector totals_;
  ResourceVector used_totals_;   // running sum of every node's used_
  mutable PlacementIndex index_;
};

}  // namespace coda::cluster
