// Incrementally maintained free-resource index over the cluster's nodes.
//
// Every node lives in exactly one bucket of an exact (free_gpus, free_cpus)
// grid; each bucket is a two-level bitmap over node ids. Node mutations
// (allocate / resize / release / failure) re-bucket the node in O(1) word
// operations, and best-fit placement queries walk buckets in the scheduler's
// exact preference order — fewest free GPUs, then fewest free cores, then
// lowest node id — instead of scanning all N nodes. The index is pure derived
// state: it is rebuilt from the nodes on construction and restore, carries a
// generation counter for failed-shape dedup in the schedulers, and is never
// serialized.
//
// Two side tables ride along for the CODA CPU array:
//   - a marginal free_cpus table (any GPU state) answering the borrow-path
//     query "lowest (free_cpus, id) with free_cpus >= k", and
//   - an adjusted-cores table bucketing each node by
//     max(0, free_cpus - bias), where the scheduler publishes per-node bias
//     (the GPU-array reservation hold) via set_cpu_bias(). This answers the
//     CPU array's non-borrow best-fit without re-deriving scheduler state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/resources.h"

namespace coda::cluster {

// Fixed-capacity set of node ids: one bit per id plus a one-bit-per-word
// summary level, so membership updates are O(1) and "first id >= from" skips
// empty regions 4096 ids at a time. No allocation after reset().
class IdBitmap {
 public:
  static constexpr NodeId kNone = 0xFFFFFFFFu;

  void reset(size_t capacity);
  void insert(NodeId id);
  void erase(NodeId id);
  bool contains(NodeId id) const;
  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Smallest member >= from, or kNone.
  NodeId next_at_least(NodeId from) const;
  // Members in [lo, hi).
  size_t count_in_range(NodeId lo, NodeId hi) const;

 private:
  std::vector<uint64_t> words_;
  std::vector<uint64_t> summary_;  // bit w set iff words_[w] != 0
  size_t capacity_ = 0;
  size_t count_ = 0;
};

class PlacementIndex {
 public:
  // Live-only query/maintenance counters (never serialized; restores and
  // snapshots must stay byte-identical to the linear-scan implementation).
  struct Stats {
    uint64_t probes = 0;    // placement/count/candidate queries answered
    uint64_t rebuilds = 0;  // full reset()s (construction, restore replay)
  };

  // Half-open id interval a query is restricted to. Default covers all ids.
  struct IdRange {
    NodeId lo = 0;
    NodeId hi = 0xFFFFFFFFu;
  };

  // Sizes the grid for nodes with up to max_gpus/max_cpus free units and
  // places every id in the (0, 0) bucket with zero bias. Counts as a
  // rebuild; callers then publish real per-node values via node_changed().
  void reset(int max_gpus, int max_cpus, size_t node_count);

  // Publishes a node's current (free_gpus, free_cpus). No-op (and no
  // generation bump) when the bucket key is unchanged.
  void node_changed(NodeId id, int free_gpus, int free_cpus);

  // Publishes the CODA reservation hold for a node (adjusted free cores =
  // max(0, free_cpus - bias)). Bumps the generation when the adjusted
  // bucket actually moves.
  void set_cpu_bias(NodeId id, int bias);
  int cpu_bias(NodeId id) const { return bias_[id]; }

  // Monotonic counter of observable state changes; schedulers key their
  // failed-shape caches on it.
  uint64_t generation() const { return generation_; }

  size_t node_count() const { return key_gpus_.size(); }
  const Stats& stats() const { return stats_; }

  // Appends up to `want` node ids feasible for (gpus, cpus) within `range`,
  // in exact best-fit order: ascending (free_gpus, free_cpus, id). Returns
  // how many ids were appended.
  size_t collect_best_fit(int gpus, int cpus, IdRange range, size_t want,
                          std::vector<NodeId>* out) const;

  // Sum over in-range nodes of per-node slot counts
  //   min(gpus > 0 ? free_gpus / gpus : per_node_cap,
  //       cpus > 0 ? free_cpus / cpus : per_node_cap)
  // stopping early once the running total reaches `stop_at` (the caller's
  // limit * group size). Matches count_feasible's early-exit value.
  long long feasible_slots(int gpus, int cpus, IdRange range,
                           long long per_node_cap, long long stop_at) const;

  // Lowest (adjusted cores, id) with adjusted >= cpus, or kNone. The CODA
  // CPU array's non-borrow best fit.
  NodeId best_adjusted_fit(int cpus) const;

  // Lowest (free_cpus, id) with free_cpus >= cpus regardless of GPU state,
  // or kNone. The CODA CPU array's borrow fallback.
  NodeId best_free_cpu_fit(int cpus) const;

  // Appends every in-range id with free_gpus >= gpus and free_cpus <
  // cpus_below (bucket order, NOT id-sorted — callers sort). The CODA
  // preemption scan's candidate set: nodes that could host the GPU shape if
  // CPU borrowers were evicted.
  void collect_eviction_candidates(int gpus, int cpus_below, IdRange range,
                                   std::vector<NodeId>* out) const;

  // Sum over all nodes with 0 < free_gpus < gpus of their free_gpus — the
  // adjacency-fragmentation numerator (idle GPUs on nodes too sparse to host
  // the easiest pending shape). Pure bucket-count arithmetic, O(grid).
  long long free_gpu_sum_below(int gpus) const;

  static constexpr NodeId kNone = IdBitmap::kNone;

 private:
  int bucket_of(int free_gpus, int free_cpus) const {
    return free_gpus * (max_cpus_ + 1) + free_cpus;
  }
  int adjusted_of(int free_cpus, int bias) const {
    const int adj = free_cpus - bias;
    return adj > 0 ? adj : 0;
  }

  int max_gpus_ = 0;
  int max_cpus_ = 0;
  std::vector<IdBitmap> buckets_;       // (free_gpus, free_cpus) grid
  std::vector<IdBitmap> cpu_marginal_;  // by free_cpus, any GPU state
  std::vector<IdBitmap> adjusted_;      // by max(0, free_cpus - bias)
  std::vector<int> key_gpus_;           // current bucket key per node
  std::vector<int> key_cpus_;
  std::vector<int> bias_;
  uint64_t generation_ = 0;
  mutable Stats stats_;
};

}  // namespace coda::cluster
