#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace coda::cluster {

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  CODA_ASSERT(config.node_count > 0);
  CODA_ASSERT(config.cpu_only_node_count >= 0);
  CODA_ASSERT(config.cpu_only_node.gpus == 0);
  CODA_ASSERT(config.mba_fraction >= 0.0 && config.mba_fraction <= 1.0);
  nodes_.reserve(
      static_cast<size_t>(config.node_count + config.cpu_only_node_count));
  const int mba_nodes = static_cast<int>(
      std::lround(config.mba_fraction * config.node_count));
  for (int i = 0; i < config.node_count; ++i) {
    NodeConfig nc = config.node;
    nc.mba_capable = i < mba_nodes;
    nodes_.emplace_back(static_cast<NodeId>(i), nc);
    totals_ += ResourceVector{nc.cores, nc.gpus};
  }
  for (int i = 0; i < config.cpu_only_node_count; ++i) {
    NodeConfig nc = config.cpu_only_node;
    nc.mba_capable = false;  // plain CPU servers in the paper's fleets are
                             // the older machines without MBA
    nodes_.emplace_back(static_cast<NodeId>(config.node_count + i), nc);
    totals_ += ResourceVector{nc.cores, nc.gpus};
  }
  const int max_gpus = std::max(config.node.gpus, config.cpu_only_node.gpus);
  const int max_cpus = std::max(config.node.cores, config.cpu_only_node.cores);
  index_.reset(max_gpus, max_cpus, nodes_.size());
  for (auto& node : nodes_) {
    index_.node_changed(node.id(), node.free_gpus(), node.free_cpus());
    node.set_index(&index_);
    node.set_used_totals(&used_totals_);
  }
}

Node& Cluster::node(NodeId id) {
  CODA_ASSERT(id < nodes_.size());
  return nodes_[id];
}

const Node& Cluster::node(NodeId id) const {
  CODA_ASSERT(id < nodes_.size());
  return nodes_[id];
}

double Cluster::gpu_active_rate() const {
  return totals_.gpus > 0
             ? static_cast<double>(used_gpus()) / totals_.gpus
             : 0.0;
}

double Cluster::cpu_active_rate() const {
  return totals_.cpus > 0
             ? static_cast<double>(used_cpus()) / totals_.cpus
             : 0.0;
}

double Cluster::gpu_fragmentation_rate(int min_cpus_per_gpu_job) const {
  int fragmented = 0;
  for (const auto& node : nodes_) {
    if (node.free_gpus() > 0 && node.free_cpus() < min_cpus_per_gpu_job) {
      fragmented += node.free_gpus();
    }
  }
  return totals_.gpus > 0 ? static_cast<double>(fragmented) / totals_.gpus
                          : 0.0;
}

int Cluster::release_everywhere(JobId job) {
  int released = 0;
  for (auto& node : nodes_) {
    if (node.hosts(job)) {
      auto status = node.release(job);
      CODA_ASSERT(status.ok());
      ++released;
    }
  }
  return released;
}

}  // namespace coda::cluster
