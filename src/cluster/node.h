// A single server in the simulated GPU cluster.
//
// Mirrors the paper's hardware: PCIe multi-GPU boxes with two Xeon Gold 6132
// sockets (28 cores), a shared memory-bandwidth domain, a shared PCIe 3.0
// domain, and optionally Intel MBA bandwidth-throttling support (the paper's
// eliminator falls back to core-halving on nodes without MBA).
#pragma once

#include <map>
#include <vector>

#include "cluster/resources.h"
#include "util/result.h"

namespace coda::cluster {

class PlacementIndex;

struct NodeConfig {
  int cores = 28;               // 2 sockets x 14 cores (Xeon Gold 6132)
  int gpus = 5;                 // 400 GPUs / 80 nodes in the paper's cluster
  double mem_bw_gbps = 150.0;   // achievable DRAM bandwidth per node
  double pcie_gbps = 16.0;      // PCIe 3.0 x16 host<->device domain
  double llc_mb = 38.5;         // 2 x 19.25 MB last-level cache
  bool mba_capable = true;      // supports Memory Bandwidth Allocation
};

// Per-job allocation entry on one node.
struct Allocation {
  JobId job = 0;
  int cpus = 0;
  int gpus = 0;
};

class Node {
 public:
  Node(NodeId id, const NodeConfig& config) : id_(id), config_(config) {}

  NodeId id() const { return id_; }
  const NodeConfig& config() const { return config_; }

  int total_cpus() const { return config_.cores; }
  int total_gpus() const { return config_.gpus; }
  int used_cpus() const { return used_.cpus; }
  int used_gpus() const { return used_.gpus; }
  // A failed node offers no free capacity (its allocations must already
  // have been evicted by the engine).
  int free_cpus() const { return failed_ ? 0 : config_.cores - used_.cpus; }
  int free_gpus() const { return failed_ ? 0 : config_.gpus - used_.gpus; }

  // True when the node can host an additional (cpus, gpus) allocation.
  bool can_fit(int cpus, int gpus) const {
    return !failed_ && cpus <= free_cpus() && gpus <= free_gpus();
  }

  // Failure injection: a failed node accepts no allocations and reports no
  // free capacity until it recovers.
  bool failed() const { return failed_; }
  void set_failed(bool failed);

  // Attaches the cluster's free-resource index; every successful mutation
  // republishes this node's (free_gpus, free_cpus) through it. Bare nodes
  // (unit tests) run unindexed.
  void set_index(PlacementIndex* index) { index_ = index; }

  // Attaches the cluster's aggregate used-resource accumulator; every
  // successful allocate/resize/release folds its integer delta in, keeping
  // Cluster::used_cpus()/used_gpus() O(1). Bare nodes run untracked.
  void set_used_totals(ResourceVector* totals) { used_totals_ = totals; }

  // Reserves (cpus, gpus) for `job`. Fails with kResourceExhausted when the
  // request does not fit and kFailedPrecondition when the job already holds
  // an allocation here (grow/shrink must go through resize()).
  util::Status allocate(JobId job, int cpus, int gpus);

  // Changes the CPU count of an existing allocation (the adaptive allocator
  // tunes cores at runtime; GPUs never change mid-job). Fails when the job
  // has no allocation here or the delta does not fit.
  util::Status resize_cpus(JobId job, int new_cpus);

  // Releases the job's allocation. Fails with kNotFound if absent.
  util::Status release(JobId job);

  // Allocation held by `job`, or kNotFound.
  util::Result<Allocation> allocation_of(JobId job) const;

  bool hosts(JobId job) const { return allocations_.count(job) > 0; }
  const std::map<JobId, Allocation>& allocations() const {
    return allocations_;
  }

  // Jobs currently holding >= 1 GPU here (training jobs).
  std::vector<JobId> gpu_jobs() const;
  // Jobs holding CPUs but no GPUs here (CPU jobs).
  std::vector<JobId> cpu_only_jobs() const;

 private:
  // Republishes (free_gpus, free_cpus) to the placement index, if attached.
  void publish_free();

  NodeId id_;
  NodeConfig config_;
  ResourceVector used_;
  bool failed_ = false;
  std::map<JobId, Allocation> allocations_;  // ordered for determinism
  PlacementIndex* index_ = nullptr;
  ResourceVector* used_totals_ = nullptr;  // cluster-wide used accumulator
};

}  // namespace coda::cluster
