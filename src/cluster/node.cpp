#include "cluster/node.h"

#include "cluster/placement_index.h"
#include "util/strings.h"

namespace coda::cluster {

void Node::publish_free() {
  if (index_ != nullptr) {
    index_->node_changed(id_, free_gpus(), free_cpus());
  }
}

void Node::set_failed(bool failed) {
  failed_ = failed;
  publish_free();
}

util::Status Node::allocate(JobId job, int cpus, int gpus) {
  if (cpus < 0 || gpus < 0 || (cpus == 0 && gpus == 0)) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "allocation must request a positive amount"};
  }
  if (failed_) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       util::strfmt("node %u has failed", id_)};
  }
  if (allocations_.count(job) > 0) {
    return util::Error{
        util::ErrorCode::kFailedPrecondition,
        util::strfmt("job %llu already allocated on node %u",
                     static_cast<unsigned long long>(job), id_)};
  }
  if (!can_fit(cpus, gpus)) {
    return util::Error{
        util::ErrorCode::kResourceExhausted,
        util::strfmt("node %u cannot fit %d cpus / %d gpus (free %d/%d)", id_,
                     cpus, gpus, free_cpus(), free_gpus())};
  }
  allocations_[job] = Allocation{job, cpus, gpus};
  used_ += ResourceVector{cpus, gpus};
  if (used_totals_ != nullptr) {
    *used_totals_ += ResourceVector{cpus, gpus};
  }
  publish_free();
  return util::Status::Ok();
}

util::Status Node::resize_cpus(JobId job, int new_cpus) {
  auto it = allocations_.find(job);
  if (it == allocations_.end()) {
    return util::Error{util::ErrorCode::kNotFound,
                       util::strfmt("job %llu not on node %u",
                                    static_cast<unsigned long long>(job),
                                    id_)};
  }
  if (new_cpus < 0) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "cpu count must be non-negative"};
  }
  const int delta = new_cpus - it->second.cpus;
  if (delta > free_cpus()) {
    return util::Error{
        util::ErrorCode::kResourceExhausted,
        util::strfmt("node %u cannot grow job by %d cpus (free %d)", id_,
                     delta, free_cpus())};
  }
  it->second.cpus = new_cpus;
  used_.cpus += delta;
  if (used_totals_ != nullptr) {
    used_totals_->cpus += delta;
  }
  publish_free();
  return util::Status::Ok();
}

util::Status Node::release(JobId job) {
  auto it = allocations_.find(job);
  if (it == allocations_.end()) {
    return util::Error{util::ErrorCode::kNotFound,
                       util::strfmt("job %llu not on node %u",
                                    static_cast<unsigned long long>(job),
                                    id_)};
  }
  used_ -= ResourceVector{it->second.cpus, it->second.gpus};
  CODA_ASSERT(used_.non_negative());
  if (used_totals_ != nullptr) {
    *used_totals_ -= ResourceVector{it->second.cpus, it->second.gpus};
  }
  allocations_.erase(it);
  publish_free();
  return util::Status::Ok();
}

util::Result<Allocation> Node::allocation_of(JobId job) const {
  auto it = allocations_.find(job);
  if (it == allocations_.end()) {
    return util::Error{util::ErrorCode::kNotFound,
                       util::strfmt("job %llu not on node %u",
                                    static_cast<unsigned long long>(job),
                                    id_)};
  }
  return it->second;
}

std::vector<JobId> Node::gpu_jobs() const {
  std::vector<JobId> out;
  for (const auto& [job, alloc] : allocations_) {
    if (alloc.gpus > 0) {
      out.push_back(job);
    }
  }
  return out;
}

std::vector<JobId> Node::cpu_only_jobs() const {
  std::vector<JobId> out;
  for (const auto& [job, alloc] : allocations_) {
    if (alloc.gpus == 0) {
      out.push_back(job);
    }
  }
  return out;
}

}  // namespace coda::cluster
