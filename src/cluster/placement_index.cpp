#include "cluster/placement_index.h"

#include <bit>

#include "util/assert.h"

namespace coda::cluster {

namespace {
constexpr size_t kWordBits = 64;
}  // namespace

void IdBitmap::reset(size_t capacity) {
  capacity_ = capacity;
  count_ = 0;
  const size_t words = (capacity + kWordBits - 1) / kWordBits;
  const size_t summary = (words + kWordBits - 1) / kWordBits;
  words_.assign(words, 0);
  summary_.assign(summary, 0);
}

void IdBitmap::insert(NodeId id) {
  CODA_ASSERT(id < capacity_);
  const size_t w = id / kWordBits;
  const uint64_t bit = 1ULL << (id % kWordBits);
  CODA_ASSERT((words_[w] & bit) == 0);
  if (words_[w] == 0) {
    summary_[w / kWordBits] |= 1ULL << (w % kWordBits);
  }
  words_[w] |= bit;
  ++count_;
}

void IdBitmap::erase(NodeId id) {
  CODA_ASSERT(id < capacity_);
  const size_t w = id / kWordBits;
  const uint64_t bit = 1ULL << (id % kWordBits);
  CODA_ASSERT((words_[w] & bit) != 0);
  words_[w] &= ~bit;
  if (words_[w] == 0) {
    summary_[w / kWordBits] &= ~(1ULL << (w % kWordBits));
  }
  --count_;
}

bool IdBitmap::contains(NodeId id) const {
  if (id >= capacity_) {
    return false;
  }
  return (words_[id / kWordBits] >> (id % kWordBits)) & 1ULL;
}

NodeId IdBitmap::next_at_least(NodeId from) const {
  if (count_ == 0 || from >= capacity_) {
    return kNone;
  }
  size_t w = from / kWordBits;
  const uint64_t first = words_[w] & (~0ULL << (from % kWordBits));
  if (first != 0) {
    return static_cast<NodeId>(w * kWordBits + std::countr_zero(first));
  }
  // Skip empty words via the summary level.
  ++w;
  while (w < words_.size()) {
    const size_t sw = w / kWordBits;
    const uint64_t sbits = summary_[sw] & (~0ULL << (w % kWordBits));
    if (sbits != 0) {
      const size_t nw = sw * kWordBits + std::countr_zero(sbits);
      return static_cast<NodeId>(nw * kWordBits +
                                 std::countr_zero(words_[nw]));
    }
    w = (sw + 1) * kWordBits;
  }
  return kNone;
}

size_t IdBitmap::count_in_range(NodeId lo, NodeId hi) const {
  if (hi > capacity_) {
    hi = static_cast<NodeId>(capacity_);
  }
  if (lo >= hi || count_ == 0) {
    return 0;
  }
  if (lo == 0 && hi == capacity_) {
    return count_;
  }
  const size_t wlo = lo / kWordBits;
  const size_t whi = (hi - 1) / kWordBits;
  const uint64_t mask_lo = ~0ULL << (lo % kWordBits);
  const uint64_t mask_hi = ~0ULL >> (kWordBits - 1 - ((hi - 1) % kWordBits));
  if (wlo == whi) {
    return std::popcount(words_[wlo] & mask_lo & mask_hi);
  }
  size_t n = std::popcount(words_[wlo] & mask_lo);
  for (size_t w = wlo + 1; w < whi; ++w) {
    n += std::popcount(words_[w]);
  }
  n += std::popcount(words_[whi] & mask_hi);
  return n;
}

void PlacementIndex::reset(int max_gpus, int max_cpus, size_t node_count) {
  CODA_ASSERT(max_gpus >= 0 && max_cpus >= 0);
  max_gpus_ = max_gpus;
  max_cpus_ = max_cpus;
  buckets_.assign(static_cast<size_t>(max_gpus + 1) * (max_cpus + 1),
                  IdBitmap{});
  cpu_marginal_.assign(static_cast<size_t>(max_cpus + 1), IdBitmap{});
  adjusted_.assign(static_cast<size_t>(max_cpus + 1), IdBitmap{});
  for (auto& b : buckets_) {
    b.reset(node_count);
  }
  for (auto& b : cpu_marginal_) {
    b.reset(node_count);
  }
  for (auto& b : adjusted_) {
    b.reset(node_count);
  }
  key_gpus_.assign(node_count, 0);
  key_cpus_.assign(node_count, 0);
  bias_.assign(node_count, 0);
  for (NodeId id = 0; id < node_count; ++id) {
    buckets_[bucket_of(0, 0)].insert(id);
    cpu_marginal_[0].insert(id);
    adjusted_[0].insert(id);
  }
  ++generation_;
  ++stats_.rebuilds;
}

void PlacementIndex::node_changed(NodeId id, int free_gpus, int free_cpus) {
  CODA_ASSERT(id < key_gpus_.size());
  CODA_ASSERT(free_gpus >= 0 && free_gpus <= max_gpus_);
  CODA_ASSERT(free_cpus >= 0 && free_cpus <= max_cpus_);
  int& kg = key_gpus_[id];
  int& kc = key_cpus_[id];
  if (kg == free_gpus && kc == free_cpus) {
    return;
  }
  buckets_[bucket_of(kg, kc)].erase(id);
  buckets_[bucket_of(free_gpus, free_cpus)].insert(id);
  if (kc != free_cpus) {
    cpu_marginal_[kc].erase(id);
    cpu_marginal_[free_cpus].insert(id);
    const int old_adj = adjusted_of(kc, bias_[id]);
    const int new_adj = adjusted_of(free_cpus, bias_[id]);
    if (old_adj != new_adj) {
      adjusted_[old_adj].erase(id);
      adjusted_[new_adj].insert(id);
    }
  }
  kg = free_gpus;
  kc = free_cpus;
  ++generation_;
}

void PlacementIndex::set_cpu_bias(NodeId id, int bias) {
  CODA_ASSERT(id < bias_.size());
  CODA_ASSERT(bias >= 0);
  const int old_adj = adjusted_of(key_cpus_[id], bias_[id]);
  const int new_adj = adjusted_of(key_cpus_[id], bias);
  bias_[id] = bias;
  if (old_adj != new_adj) {
    adjusted_[old_adj].erase(id);
    adjusted_[new_adj].insert(id);
    ++generation_;
  }
}

size_t PlacementIndex::collect_best_fit(int gpus, int cpus, IdRange range,
                                        size_t want,
                                        std::vector<NodeId>* out) const {
  ++stats_.probes;
  CODA_ASSERT(gpus >= 1 || cpus >= 1);
  if (gpus > max_gpus_ || cpus > max_cpus_) {
    return 0;
  }
  size_t appended = 0;
  for (int g = gpus; g <= max_gpus_ && appended < want; ++g) {
    for (int c = cpus; c <= max_cpus_ && appended < want; ++c) {
      const IdBitmap& b = buckets_[bucket_of(g, c)];
      if (b.empty()) {
        continue;
      }
      NodeId id = b.next_at_least(range.lo);
      while (id < range.hi && appended < want) {
        out->push_back(id);
        ++appended;
        id = b.next_at_least(id + 1);
      }
    }
  }
  return appended;
}

long long PlacementIndex::feasible_slots(int gpus, int cpus, IdRange range,
                                         long long per_node_cap,
                                         long long stop_at) const {
  ++stats_.probes;
  CODA_ASSERT(gpus >= 1 || cpus >= 1);
  long long total = 0;
  if (gpus > max_gpus_ || cpus > max_cpus_) {
    return 0;
  }
  const int g0 = gpus > 0 ? gpus : 0;
  const int c0 = cpus > 0 ? cpus : 0;
  for (int g = g0; g <= max_gpus_; ++g) {
    for (int c = c0; c <= max_cpus_; ++c) {
      const IdBitmap& b = buckets_[bucket_of(g, c)];
      if (b.empty()) {
        continue;
      }
      const size_t n = b.count_in_range(range.lo, range.hi);
      if (n == 0) {
        continue;
      }
      const long long by_gpu = gpus > 0 ? g / gpus : per_node_cap;
      const long long by_cpu = cpus > 0 ? c / cpus : per_node_cap;
      const long long slots = by_gpu < by_cpu ? by_gpu : by_cpu;
      total += slots * static_cast<long long>(n);
      if (total >= stop_at) {
        return total;
      }
    }
  }
  return total;
}

NodeId PlacementIndex::best_adjusted_fit(int cpus) const {
  ++stats_.probes;
  for (int c = cpus; c <= max_cpus_; ++c) {
    const IdBitmap& b = adjusted_[c];
    if (!b.empty()) {
      return b.next_at_least(0);
    }
  }
  return kNone;
}

NodeId PlacementIndex::best_free_cpu_fit(int cpus) const {
  ++stats_.probes;
  for (int c = cpus; c <= max_cpus_; ++c) {
    const IdBitmap& b = cpu_marginal_[c];
    if (!b.empty()) {
      return b.next_at_least(0);
    }
  }
  return kNone;
}

void PlacementIndex::collect_eviction_candidates(
    int gpus, int cpus_below, IdRange range, std::vector<NodeId>* out) const {
  ++stats_.probes;
  if (gpus > max_gpus_) {
    return;
  }
  const int c_hi = cpus_below < max_cpus_ + 1 ? cpus_below : max_cpus_ + 1;
  for (int g = gpus; g <= max_gpus_; ++g) {
    for (int c = 0; c < c_hi; ++c) {
      const IdBitmap& b = buckets_[bucket_of(g, c)];
      if (b.empty()) {
        continue;
      }
      NodeId id = b.next_at_least(range.lo);
      while (id < range.hi) {
        out->push_back(id);
        id = b.next_at_least(id + 1);
      }
    }
  }
}

long long PlacementIndex::free_gpu_sum_below(int gpus) const {
  ++stats_.probes;
  const int g_hi = gpus < max_gpus_ + 1 ? gpus : max_gpus_ + 1;
  long long total = 0;
  for (int g = 1; g < g_hi; ++g) {
    size_t nodes_at_g = 0;
    for (int c = 0; c <= max_cpus_; ++c) {
      nodes_at_g += buckets_[bucket_of(g, c)].count();
    }
    total += static_cast<long long>(g) * static_cast<long long>(nodes_at_g);
  }
  return total;
}

}  // namespace coda::cluster
