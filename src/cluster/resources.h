// Resource vectors shared by the cluster model and the schedulers.
#pragma once

#include <cstdint>

namespace coda::cluster {

using JobId = uint64_t;
using NodeId = uint32_t;
using TenantId = uint32_t;

// A (cores, GPUs) demand or allocation. CPU cores and GPUs are the two
// schedulable resources in the paper's cluster; memory bandwidth is a
// *shared* (non-partitioned) resource handled by the contention model.
struct ResourceVector {
  int cpus = 0;
  int gpus = 0;

  ResourceVector operator+(const ResourceVector& o) const {
    return {cpus + o.cpus, gpus + o.gpus};
  }
  ResourceVector operator-(const ResourceVector& o) const {
    return {cpus - o.cpus, gpus - o.gpus};
  }
  ResourceVector& operator+=(const ResourceVector& o) {
    cpus += o.cpus;
    gpus += o.gpus;
    return *this;
  }
  ResourceVector& operator-=(const ResourceVector& o) {
    cpus -= o.cpus;
    gpus -= o.gpus;
    return *this;
  }
  bool operator==(const ResourceVector& o) const = default;

  // True when every component fits inside `capacity`.
  bool fits_within(const ResourceVector& capacity) const {
    return cpus <= capacity.cpus && gpus <= capacity.gpus;
  }
  bool non_negative() const { return cpus >= 0 && gpus >= 0; }
};

}  // namespace coda::cluster
